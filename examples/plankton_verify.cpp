// plankton_verify: command-line configuration verifier.
//
//   plankton_verify <config-file> <policy> [options]
//
// Policies:
//   reach <src,...>                 every source delivers (all ECMP branches)
//   loop                            no forwarding loop anywhere
//   blackhole [<src,...>]           no source traffic hits a drop
//   bounded <limit> <src,...>       all paths within <limit> hops
//   waypoint <src,...> <wp,...>     all paths cross one of the waypoints
//
// Options:
//   --failures <k>     verify under at most k link failures (default 0)
//   --cores <n>        worker threads (default 1)
//   --shards <n>       worker *processes*: fork n shard workers and stream
//                      PEC outcomes/verdicts over the coordinator wire
//                      protocol (default 0 = in-process). Verdicts are
//                      bit-identical to the in-process run at any n.
//   --address <ip>     verify only the PEC containing <ip> (default: all)
//   --no-pec-dedup     disable batch PEC verification (exploring one
//                      representative per isomorphic PEC class; on by
//                      default, verdicts identical either way)
//   --no-por           disable dynamic partial-order reduction (sleep +
//                      source sets; on by default for exhaustive engines,
//                      verdicts identical either way)
//   --all-violations   keep searching after the first counterexample
//   --trails           print counterexample event traces
//   --visited <kind>   visited backend: exact | hash-compact | bitstate
//   --scheduler <s>    PEC scheduler: steal (work-stealing) | pool (fixed)
//   --engine <e>       exploration strategy: dfs | bfs | priority |
//                      random-restart | single (single-execution simulation)
//   --engine-seed <n>  seed for the random-restart engine (default 1)
//   --simulation       follow one execution path (Batfish-style; may miss
//                      order-dependent violations); alias for --engine single
//   --deadline-ms <t>  whole-run wall-clock budget; tripping it yields the
//                      INCONCLUSIVE verdict (exit 2), never a spurious hold
//   --budget-states <n> cap stored states per PEC exploration
//   --budget-bytes <n>  approximate model-memory cap per PEC exploration
//   --degrade-visited  under memory pressure, migrate the exact visited set
//                      to hash-compact instead of stopping (the run then
//                      self-reports as non-exhaustive)
//   --fault-plan <p>   deterministic shard fault injection (sched/fault.hpp
//                      syntax, e.g. 'crash@2;slot=1'); also read from
//                      PLANKTON_FAULT_PLAN when the flag is absent
//   --tcp-workers <a>  comma-separated host:port list of pre-started
//                      plankton_worker daemons; shard workers connect there
//                      instead of forking (falls back to fork if the policy
//                      has no spec form)
//   --split-export     intra-PEC work export: big PECs donate frontier
//                      halves back to the coordinator for re-dispatch to
//                      idle shards. Verdicts and the deduplicated violation
//                      set are preserved; state counts are not bit-identical
//
// Exit code: 0 = policy holds (exhaustive), 1 = violated,
//            2 = inconclusive (budget tripped / lossy search; no violation
//                found but the search was partial), 3 = usage/config error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "config/parser.hpp"
#include "core/verifier.hpp"

namespace {

using namespace plankton;

std::vector<NodeId> parse_node_list(const Network& net, const std::string& arg) {
  std::vector<NodeId> out;
  std::stringstream ss(arg);
  std::string name;
  while (std::getline(ss, name, ',')) {
    const auto id = net.find_device(name);
    if (!id) throw std::runtime_error("unknown device '" + name + "'");
    out.push_back(*id);
  }
  if (out.empty()) throw std::runtime_error("empty device list");
  return out;
}

int usage() {
  std::fprintf(stderr,
               "usage: plankton_verify <config> <policy> [args] [--failures k] "
               "[--cores n] [--shards n] [--address ip] [--no-pec-dedup] "
               "[--no-por] [--all-violations] "
               "[--trails] "
               "[--visited exact|hash-compact|bitstate] [--scheduler steal|pool] "
               "[--engine dfs|bfs|priority|random-restart|single] "
               "[--engine-seed n] [--simulation] "
               "[--deadline-ms t] [--budget-states n] [--budget-bytes n] "
               "[--degrade-visited] [--fault-plan p] "
               "[--tcp-workers host:port[,...]] [--split-export]\n"
               "policies: reach <srcs> | loop | blackhole [srcs] | "
               "bounded <limit> <srcs> | waypoint <srcs> <wps>\n");
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  std::ifstream file(argv[1]);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 3;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  bool fault_plan_given = false;

  try {
    ParsedNetwork parsed = parse_network_config(buffer.str());
    Network& net = parsed.net;
    for (const auto& warning : net.validate()) {
      std::fprintf(stderr, "config warning: %s\n", warning.c_str());
    }

    // Split positional policy args from options.
    std::vector<std::string> pos;
    VerifyOptions opts;
    std::optional<IpAddr> address;
    bool trails = false;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--failures" && i + 1 < argc) {
        opts.explore.max_failures = std::atoi(argv[++i]);
      } else if (arg == "--cores" && i + 1 < argc) {
        opts.cores = std::atoi(argv[++i]);
      } else if (arg == "--shards" && i + 1 < argc) {
        opts.shards = std::atoi(argv[++i]);
        if (opts.shards < 1) throw std::runtime_error("bad --shards");
        opts.scheduler = sched::SchedulerKind::kMultiProcess;
      } else if (arg == "--address" && i + 1 < argc) {
        address = IpAddr::parse(argv[++i]);
        if (!address) throw std::runtime_error("bad --address");
      } else if (arg == "--no-pec-dedup") {
        opts.pec_dedup = false;
      } else if (arg == "--no-por") {
        opts.explore.por = false;
      } else if (arg == "--all-violations") {
        opts.explore.find_all_violations = true;
      } else if (arg == "--trails") {
        trails = true;
      } else if (arg == "--simulation") {
        opts.explore.simulation = true;
      } else if (arg == "--engine" && i + 1 < argc) {
        SearchEngineKind kind;
        if (!parse_search_engine(argv[++i], kind)) {
          throw std::runtime_error(std::string("bad --engine '") + argv[i] + "'");
        }
        // Last --engine wins: a non-simulation engine clears a previous
        // `single` (ExploreOptions::simulation takes precedence otherwise).
        if (kind == SearchEngineKind::kSingleExecution) {
          opts.explore.simulation = true;
        } else {
          opts.explore.simulation = false;
          opts.explore.engine_kind = kind;
        }
      } else if (arg == "--engine-seed" && i + 1 < argc) {
        opts.explore.engine_seed =
            static_cast<std::uint64_t>(std::atoll(argv[++i]));
      } else if (arg == "--deadline-ms" && i + 1 < argc) {
        const long long ms = std::atoll(argv[++i]);
        if (ms <= 0) throw std::runtime_error("bad --deadline-ms");
        opts.budget.deadline = std::chrono::milliseconds(ms);
      } else if (arg == "--budget-states" && i + 1 < argc) {
        const long long n = std::atoll(argv[++i]);
        if (n <= 0) throw std::runtime_error("bad --budget-states");
        opts.budget.max_states = static_cast<std::uint64_t>(n);
      } else if (arg == "--budget-bytes" && i + 1 < argc) {
        const long long n = std::atoll(argv[++i]);
        if (n <= 0) throw std::runtime_error("bad --budget-bytes");
        opts.budget.max_bytes = static_cast<std::size_t>(n);
      } else if (arg == "--degrade-visited") {
        opts.budget.degrade_visited = true;
      } else if (arg == "--tcp-workers" && i + 1 < argc) {
        std::stringstream ss(argv[++i]);
        std::string addr;
        while (std::getline(ss, addr, ',')) {
          if (!addr.empty()) opts.shard_workers.push_back(addr);
        }
        if (opts.shard_workers.empty()) {
          throw std::runtime_error("bad --tcp-workers");
        }
        opts.shard_transport = ShardTransportKind::kTcp;
      } else if (arg == "--split-export") {
        opts.shard_split_export = true;
      } else if (arg == "--fault-plan" && i + 1 < argc) {
        std::string perr;
        if (!sched::parse_fault_plan(argv[++i], opts.shard_fault_plan, perr)) {
          throw std::runtime_error("bad --fault-plan: " + perr);
        }
        fault_plan_given = true;
      } else if (arg == "--visited" && i + 1 < argc) {
        const std::string kind = argv[++i];
        if (kind == "exact") {
          opts.explore.visited = VisitedKind::kExact;
        } else if (kind == "hash-compact") {
          opts.explore.visited = VisitedKind::kHashCompact;
        } else if (kind == "bitstate") {
          opts.explore.visited = VisitedKind::kBitstate;
        } else {
          throw std::runtime_error("bad --visited '" + kind + "'");
        }
      } else if (arg == "--scheduler" && i + 1 < argc) {
        const std::string s = argv[++i];
        if (s == "steal") {
          opts.scheduler = sched::SchedulerKind::kWorkStealing;
        } else if (s == "pool") {
          opts.scheduler = sched::SchedulerKind::kFixedPool;
        } else {
          throw std::runtime_error("bad --scheduler '" + s + "'");
        }
      } else if (arg.rfind("--", 0) == 0) {
        return usage();
      } else {
        pos.push_back(arg);
      }
    }
    if (pos.empty()) return usage();

    if (!fault_plan_given) {
      if (const char* env = std::getenv("PLANKTON_FAULT_PLAN")) {
        std::string perr;
        if (!sched::parse_fault_plan(env, opts.shard_fault_plan, perr)) {
          throw std::runtime_error("bad PLANKTON_FAULT_PLAN: " + perr);
        }
      }
    }

    std::unique_ptr<Policy> policy;
    const std::string& kind = pos[0];
    if (kind == "reach" && pos.size() == 2) {
      policy = std::make_unique<ReachabilityPolicy>(parse_node_list(net, pos[1]));
    } else if (kind == "loop" && pos.size() == 1) {
      policy = std::make_unique<LoopFreedomPolicy>();
    } else if (kind == "blackhole") {
      std::vector<NodeId> sources;
      if (pos.size() == 2) sources = parse_node_list(net, pos[1]);
      policy = std::make_unique<BlackholeFreedomPolicy>(std::move(sources));
    } else if (kind == "bounded" && pos.size() == 3) {
      policy = std::make_unique<BoundedPathLengthPolicy>(
          parse_node_list(net, pos[2]),
          static_cast<std::uint32_t>(std::atoi(pos[1].c_str())));
    } else if (kind == "waypoint" && pos.size() == 3) {
      policy = std::make_unique<WaypointPolicy>(parse_node_list(net, pos[1]),
                                                parse_node_list(net, pos[2]));
    } else {
      return usage();
    }

    Verifier verifier(net, opts);
    std::printf("network: %zu devices, %zu links; %zu PECs (%zu routed)\n",
                net.topo.node_count(), net.topo.link_count(),
                verifier.pecs().pecs.size(), verifier.pecs().routed().size());
    const VerifyResult result =
        address ? verifier.verify_address(*address, *policy)
                : verifier.verify(*policy);

    const char* verdict_text = "HOLDS";
    if (result.verdict == Verdict::kViolated) {
      verdict_text = "VIOLATED";
    } else if (result.verdict == Verdict::kInconclusive) {
      verdict_text = "INCONCLUSIVE";
    }
    std::printf("policy %s: %s%s\n", policy->name().c_str(), verdict_text,
                result.timed_out ? " (incomplete: timed out)" : "");
    std::printf("PECs verified: %zu (+%zu support), converged states: %llu, "
                "wall: %.2f ms, model memory: %.2f MB\n",
                result.pecs_verified, result.pecs_support,
                static_cast<unsigned long long>(result.total.converged_states),
                static_cast<double>(result.wall.count()) / 1e6,
                static_cast<double>(result.total.model_bytes()) / 1e6);
    if (result.verdict == Verdict::kInconclusive) {
      std::printf("inconclusive: budget tripped = %s, %zu PEC(s) partial, "
                  "search %s, %llu budget checks\n",
                  to_string(result.budget_tripped),
                  result.pecs_inconclusive,
                  result.exhaustive ? "exhaustive" : "non-exhaustive",
                  static_cast<unsigned long long>(result.total.budget_checks));
    }
    if (result.total.por_pruned + result.total.por_source_sets > 0) {
      std::printf("partial-order reduction: %llu moves pruned, %llu source "
                  "sets, footprints %.2f ms\n",
                  static_cast<unsigned long long>(result.total.por_pruned),
                  static_cast<unsigned long long>(result.total.por_source_sets),
                  static_cast<double>(result.total.por_footprint_time.count()) /
                      1e6);
    }
    if (opts.pec_dedup && result.pec_classes > 0) {
      std::printf("PEC classes: %zu over %zu target PECs (%zu translated, "
                  "%zu re-run natively; fingerprinting %.2f ms)\n",
                  result.pec_classes, result.pecs_verified,
                  result.pecs_deduped, result.dedup_reruns,
                  static_cast<double>(result.dedup_fingerprint_time.count()) / 1e6);
    }
    if (opts.shards > 0) {
      const auto& sh = result.shard;
      std::printf("shards: %zu workers, %llu frames / %.2f KB sent, "
                  "%llu frames / %.2f KB received (%.2f KB outcomes), "
                  "%llu reassigned, %llu respawned\n",
                  sh.tasks_per_shard.size(),
                  static_cast<unsigned long long>(sh.frames_sent),
                  static_cast<double>(sh.bytes_sent) / 1e3,
                  static_cast<unsigned long long>(sh.frames_received),
                  static_cast<double>(sh.bytes_received) / 1e3,
                  static_cast<double>(sh.outcome_bytes_sent +
                                      sh.outcome_bytes_received) / 1e3,
                  static_cast<unsigned long long>(sh.tasks_reassigned),
                  static_cast<unsigned long long>(sh.workers_respawned));
      if (sh.splits_exported + sh.subtasks_dispatched > 0) {
        std::printf("split export: %llu frontier splits, %llu subtasks "
                    "dispatched, %llu completed, %llu stale\n",
                    static_cast<unsigned long long>(sh.splits_exported),
                    static_cast<unsigned long long>(sh.subtasks_dispatched),
                    static_cast<unsigned long long>(sh.subtasks_completed),
                    static_cast<unsigned long long>(sh.subtasks_stale));
      }
      for (std::size_t w = 0; w < sh.tasks_per_shard.size(); ++w) {
        std::printf("  shard %zu: %llu tasks\n", w,
                    static_cast<unsigned long long>(sh.tasks_per_shard[w]));
      }
    }
    for (const auto& rep : result.reports) {
      for (const auto& v : rep.result.violations) {
        std::printf("\nviolation in PEC %s: %s\n", rep.pec_str.c_str(),
                    v.message.c_str());
        if (!v.failures.empty()) {
          std::printf("  under failed links %s\n", v.failures.str().c_str());
        }
        if (trails) std::printf("%s", v.trail_text.c_str());
      }
    }
    switch (result.verdict) {
      case Verdict::kHolds: return 0;
      case Verdict::kViolated: return 1;
      case Verdict::kInconclusive: return 2;
      case Verdict::kError: break;
    }
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  }
}
