// plankton_worker: remote shard worker daemon. Listens on a loopback TCP
// port and serves one shard-coordinator connection at a time: each
// connection bootstraps the verification plan from the coordinator's
// kBootstrap blob (rendered config + policy spec + exploration options),
// answers with the locally derived plan hash, then runs the ordinary shard
// worker session until kShutdown/EOF. Point a coordinator at it with
// `plankton_verify --shards N --tcp-workers host:port[,host:port...]`.
//
//   plankton_worker --tcp 7421
//   plankton_worker --tcp 7421 --once       # serve one session, then exit
//
// Exit codes: 0 clean (--once session done or SIGTERM-free loop never
// exits), 3 setup/usage error. Per-session protocol failures are logged
// and the daemon keeps accepting.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/verifier.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: plankton_worker --tcp <port> [--once]\n"
               "serves shard-coordinator bootstrap connections on loopback\n");
}

int listen_tcp(int port, std::string& error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    error = std::string("bind/listen tcp port ") + std::to_string(port) + ": " +
            std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tcp") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "plankton_worker: --tcp needs a value\n");
        return 3;
      }
      port = std::atoi(argv[++i]);
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "plankton_worker: unknown flag '%s'\n", arg.c_str());
      usage();
      return 3;
    }
  }
  if (port <= 0 || port > 65535) {
    usage();
    return 3;
  }
  // A coordinator that dies mid-write must surface as EPIPE on this worker,
  // not a SIGPIPE that kills the daemon (serve_shard_worker_session sets
  // this too; doing it before the first accept closes the race).
  ::signal(SIGPIPE, SIG_IGN);

  std::string error;
  const int listen_fd = listen_tcp(port, error);
  if (listen_fd < 0) {
    std::fprintf(stderr, "plankton_worker: %s\n", error.c_str());
    return 3;
  }
  std::fprintf(stderr, "plankton_worker: listening on 127.0.0.1:%d\n", port);
  for (;;) {
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "plankton_worker: accept: %s\n",
                   std::strerror(errno));
      ::close(listen_fd);
      return 3;
    }
    const int rc = plankton::serve_shard_worker_session(conn);
    ::close(conn);
    if (rc != 0) {
      std::fprintf(stderr, "plankton_worker: session ended with code %d\n", rc);
    }
    if (once) break;
  }
  ::close(listen_fd);
  return 0;
}
