// Data-center BGP waypoint audit (the paper's §5 "very high degree of
// non-determinism" scenario, Fig. 7c).
//
// An RFC 7938 fabric runs eBGP on every link with one private ASN per
// device. The operator intends all inter-rack traffic to cross one of a set
// of monitoring aggregation switches, but multipath is disabled and no route
// maps steer the routes: with age-based tie-breaking, whether traffic
// crosses a waypoint depends on the order advertisements arrive. Plankton
// enumerates the convergence orders and produces a violating event sequence.
#include <cstdio>

#include "core/verifier.hpp"
#include "workload/fat_tree.hpp"

int main() {
  using namespace plankton;
  FatTreeOptions opts;
  opts.k = 4;
  opts.routing = FatTreeOptions::Routing::kBgpRfc7938;
  const FatTree ft = make_fat_tree(opts);
  std::printf("RFC 7938 fabric: k=%d, %zu devices, %zu links, eBGP everywhere\n",
              ft.k, ft.net.topo.node_count(), ft.net.topo.link_count());

  // Monitoring waypoints: one aggregation switch per pod (deliberately not
  // all of them — the misconfigured fabric can route around them).
  std::vector<NodeId> waypoints;
  for (int pod = 0; pod < ft.k; ++pod) waypoints.push_back(ft.agg_at(pod, 0));
  std::printf("waypoints:");
  for (const NodeId w : waypoints) std::printf(" %s", ft.net.topo.name(w).c_str());
  std::printf("\n\n");

  // Traffic from every other edge switch to rack 0-0's prefix must cross a
  // waypoint.
  std::vector<NodeId> sources;
  for (std::size_t i = 1; i < ft.edges.size(); ++i) sources.push_back(ft.edges[i]);
  const WaypointPolicy policy(sources, waypoints);

  VerifyOptions vo;
  vo.cores = 2;
  Verifier verifier(ft.net, vo);
  const VerifyResult r = verifier.verify_address(ft.edge_prefixes[0].addr(), policy);

  std::printf("policy 'all paths to %s cross a waypoint': %s\n",
              ft.edge_prefixes[0].str().c_str(), r.holds ? "HOLDS" : "VIOLATED");
  std::printf("converged states checked: %llu (suppressed as equivalent: %llu)\n",
              static_cast<unsigned long long>(r.total.policy_checks),
              static_cast<unsigned long long>(r.total.suppressed_checks));
  std::printf("deterministic steps: %llu, branch points: %llu, wall: %.2f ms\n\n",
              static_cast<unsigned long long>(r.total.det_steps),
              static_cast<unsigned long long>(r.total.nondet_branches),
              static_cast<double>(r.wall.count()) / 1e6);

  for (const auto& rep : r.reports) {
    for (const auto& v : rep.result.violations) {
      std::printf("violating convergence order (%s):\n%s\n", v.message.c_str(),
                  v.trail_text.c_str());
      return 0;  // one counterexample is enough for the demo
    }
  }
  return 0;
}
