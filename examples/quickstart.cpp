// Quickstart: parse a configuration, verify policies, inspect results.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The network: a small dual-core enterprise pod. r1/r2 are cores, r3/r4 are
// access routers. r4 originates a server subnet into OSPF; r3 carries a
// recursive static route for a legacy prefix pointing at r2's loopback.
#include <cstdio>
#include <string>

#include "config/parser.hpp"
#include "core/verifier.hpp"

namespace {

constexpr const char* kConfig = R"(
# devices
node r1 loopback 1.1.1.1
node r2 loopback 2.2.2.2
node r3 loopback 3.3.3.3
node r4 loopback 4.4.4.4

# physical links (IGP costs)
link r1 r2 cost 1
link r1 r3 cost 10
link r1 r4 cost 10
link r2 r3 cost 10
link r2 r4 cost 10

# OSPF everywhere; r4 originates the server subnet
ospf r1 enable
ospf r2 enable
ospf r3 enable
ospf r4 originate 10.20.0.0/24

# legacy prefix reached via r2 (recursive static: next hop is a loopback)
static r3 192.168.7.0/24 via-ip 2.2.2.2
ospf r2 originate 192.168.7.0/24
)";

void report(const char* what, const plankton::VerifyResult& r,
            const plankton::Network& net) {
  std::printf("%-34s %s", what, r.holds ? "HOLDS" : "VIOLATED");
  std::printf("  [%zu/%zu PECs checked, %llu converged states, %.2f ms]\n",
              r.pecs_verified, r.pecs_total,
              static_cast<unsigned long long>(r.total.converged_states),
              static_cast<double>(r.wall.count()) / 1e6);
  if (!r.holds) std::printf("    -> %s\n", r.first_violation(net.topo).c_str());
}

}  // namespace

int main() {
  using namespace plankton;
  ParsedNetwork parsed = parse_network_config(kConfig);
  Network& net = parsed.net;

  const auto problems = net.validate();
  for (const auto& p : problems) std::printf("config warning: %s\n", p.c_str());

  VerifyOptions opts;
  opts.explore.max_failures = 1;  // environment: at most one link failure
  opts.cores = 2;
  Verifier verifier(net, opts);

  std::printf("PECs computed: %zu (%zu routed)\n", verifier.pecs().pecs.size(),
              verifier.pecs().routed().size());

  // 1. Every router reaches the server subnet, even under any 1 failure.
  std::vector<NodeId> all;
  for (NodeId n = 0; n < net.topo.node_count(); ++n) all.push_back(n);
  const ReachabilityPolicy reach(all);
  report("reachability (k=1)",
         verifier.verify_address(IpAddr(10, 20, 0, 5), reach), net);

  // 2. The recursive static route on r3 delivers, even under any 1 failure.
  const ReachabilityPolicy legacy({*net.find_device("r3")});
  report("legacy prefix via recursive static",
         verifier.verify_address(IpAddr(192, 168, 7, 1), legacy), net);

  // 3. No forwarding loops anywhere in the header space.
  const LoopFreedomPolicy loops;
  report("loop freedom (k=1)", verifier.verify(loops), net);

  // 4. Paths to the server subnet stay within one hop — this FAILS (r3 needs
  //    two hops), demonstrating counterexample trails.
  const BoundedPathLengthPolicy bounded(all, 1);
  const VerifyResult r = verifier.verify_address(IpAddr(10, 20, 0, 5), bounded);
  report("bounded path length <= 1 (k=1)", r, net);
  for (const auto& rep : r.reports) {
    for (const auto& v : rep.result.violations) {
      std::printf("\ncounterexample trail (PEC %s):\n%s", rep.pec_str.c_str(),
                  v.trail_text.c_str());
    }
  }
  return 0;
}
