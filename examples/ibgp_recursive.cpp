// iBGP over OSPF: dependency-aware scheduling in action (paper §3.2, Fig. 5).
//
// An AS runs OSPF internally; border routers form an iBGP mesh carrying an
// externally-learned prefix. Packets to that prefix resolve recursively
// through the IGP's loopback routes, so the loopback PECs must be verified
// before the iBGP PEC. This example prints the PEC dependency structure and
// then verifies delivery of the external prefix end to end.
#include <cstdio>

#include "core/verifier.hpp"
#include "workload/as_topo.hpp"

int main() {
  using namespace plankton;
  AsTopo topo = make_as_topo("example-as", 36);
  const IbgpOverlay overlay = add_ibgp_mesh(topo, 6);
  std::printf("AS with %zu devices; iBGP mesh of %zu speakers; external prefix %s\n",
              topo.net.topo.node_count(), overlay.speakers.size(),
              overlay.external.str().c_str());

  Verifier verifier(topo.net, {});
  const PecDependencies& deps = verifier.deps();
  std::size_t dep_edges = 0;
  std::size_t max_scc = 0;
  for (const auto& d : deps.depends_on) dep_edges += d.size();
  for (const auto& scc : deps.sccs) max_scc = std::max(max_scc, scc.size());
  std::printf("PECs: %zu, dependency edges: %zu, SCCs: %zu (largest: %zu)\n",
              verifier.pecs().pecs.size(), dep_edges, deps.sccs.size(), max_scc);

  const PecId external_pec = verifier.pecs().find(overlay.external.addr());
  std::printf("external PEC depends on %zu loopback PECs\n\n",
              deps.depends_on[external_pec].size());

  const ReachabilityPolicy policy(
      {overlay.speakers.begin(), overlay.speakers.end()});
  const VerifyResult r = verifier.verify_address(overlay.external.addr(), policy);
  std::printf("external prefix delivered from every speaker: %s\n",
              r.holds ? "YES" : "NO");
  if (!r.holds) {
    std::printf("  %s\n", r.first_violation(topo.net.topo).c_str());
  }
  std::printf("PECs verified: %zu (+%zu upstream support runs)\n",
              r.pecs_verified, r.pecs_support);
  std::printf("wall: %.2f ms\n", static_cast<double>(r.wall.count()) / 1e6);

  // Same audit under a single link failure: failure choices are coordinated
  // between the loopback PECs and the iBGP PEC (§3.2).
  VerifyOptions vo;
  vo.explore.max_failures = 1;
  Verifier v2(topo.net, vo);
  const VerifyResult r2 = v2.verify_address(overlay.external.addr(), policy);
  std::printf("\nunder any single link failure: %s (wall %.2f ms)\n",
              r2.holds ? "STILL DELIVERED" : "VIOLATED",
              static_cast<double>(r2.wall.count()) / 1e6);
  if (!r2.holds) {
    std::printf("  %s\n", r2.first_violation(topo.net.topo).c_str());
  }
  return 0;
}
