// plankton_serve: long-running verification daemon. Holds a parsed network
// resident behind a Unix/TCP socket (PKS1 framing), answers policy queries
// through the fingerprint-keyed verdict cache, and re-verifies only the PECs
// a config delta moved. Drive it with plankton_client.
//
//   plankton_serve --socket /tmp/plankton.sock --cache /tmp/plankton.cache
//   plankton_serve --tcp 7411 --all-violations
//   plankton_serve --socket /tmp/p.sock --journal /tmp/p.journal
//
// With --journal every accepted load/delta is appended + fsync'd to a PKJ1
// write-ahead journal before it is acked, and a restart replays the journal
// so a kill -9 loses nothing that was acknowledged.
//
// Exit codes: 0 clean shutdown (kShutdown frame or SIGTERM/SIGINT drain),
// 3 setup/usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/server.hpp"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: plankton_serve [--socket <path>] [--tcp <port>]\n"
      "                      [--cache <path>] [--journal <path>] [--cores <n>]\n"
      "                      [--all-violations] [--no-pec-dedup] [--no-por]\n"
      "                      [--deadline-ms <n>] [--budget-states <n>]\n"
      "                      [--max-clients <n>] [--read-deadline-ms <n>]\n"
      "                      [--idle-timeout-ms <n>] [--fault-plan <plan>]\n"
      "at least one of --socket/--tcp is required\n");
}

}  // namespace

int main(int argc, char** argv) {
  using plankton::serve::ServerOptions;
  ServerOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "plankton_serve: %s needs a value\n", arg.c_str());
        std::exit(3);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      opts.unix_path = value();
    } else if (arg == "--tcp") {
      opts.tcp_port = std::atoi(value());
    } else if (arg == "--cache") {
      opts.cache_path = value();
    } else if (arg == "--journal") {
      opts.journal_path = value();
    } else if (arg == "--max-clients") {
      opts.max_clients = static_cast<std::size_t>(std::atol(value()));
    } else if (arg == "--read-deadline-ms") {
      opts.read_deadline_ms = std::atoi(value());
    } else if (arg == "--idle-timeout-ms") {
      opts.idle_timeout_ms = std::atoi(value());
    } else if (arg == "--fault-plan") {
      std::string fault_error;
      if (!plankton::sched::parse_fault_plan(value(), opts.fault_plan,
                                             fault_error)) {
        std::fprintf(stderr, "plankton_serve: %s\n", fault_error.c_str());
        return 3;
      }
    } else if (arg == "--cores") {
      opts.verify.cores = std::atoi(value());
    } else if (arg == "--all-violations") {
      opts.verify.explore.find_all_violations = true;
    } else if (arg == "--no-pec-dedup") {
      opts.verify.pec_dedup = false;
    } else if (arg == "--no-por") {
      opts.verify.explore.por = false;
    } else if (arg == "--deadline-ms") {
      opts.verify.budget.deadline = std::chrono::milliseconds(std::atol(value()));
    } else if (arg == "--budget-states") {
      opts.verify.budget.max_states = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "plankton_serve: unknown flag '%s'\n", arg.c_str());
      usage();
      return 3;
    }
  }
  if (opts.unix_path.empty() && opts.tcp_port == 0) {
    usage();
    return 3;
  }
  return plankton::serve::run_server(opts);
}
