// plankton_serve: long-running verification daemon. Holds a parsed network
// resident behind a Unix/TCP socket (PKS1 framing), answers policy queries
// through the fingerprint-keyed verdict cache, and re-verifies only the PECs
// a config delta moved. Drive it with plankton_client.
//
//   plankton_serve --socket /tmp/plankton.sock --cache /tmp/plankton.cache
//   plankton_serve --tcp 7411 --all-violations
//
// Exit codes: 0 clean shutdown (kShutdown frame), 3 setup/usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/server.hpp"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: plankton_serve [--socket <path>] [--tcp <port>]\n"
      "                      [--cache <path>] [--cores <n>]\n"
      "                      [--all-violations] [--no-pec-dedup] [--no-por]\n"
      "                      [--deadline-ms <n>] [--budget-states <n>]\n"
      "at least one of --socket/--tcp is required\n");
}

}  // namespace

int main(int argc, char** argv) {
  using plankton::serve::ServerOptions;
  ServerOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "plankton_serve: %s needs a value\n", arg.c_str());
        std::exit(3);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      opts.unix_path = value();
    } else if (arg == "--tcp") {
      opts.tcp_port = std::atoi(value());
    } else if (arg == "--cache") {
      opts.cache_path = value();
    } else if (arg == "--cores") {
      opts.verify.cores = std::atoi(value());
    } else if (arg == "--all-violations") {
      opts.verify.explore.find_all_violations = true;
    } else if (arg == "--no-pec-dedup") {
      opts.verify.pec_dedup = false;
    } else if (arg == "--no-por") {
      opts.verify.explore.por = false;
    } else if (arg == "--deadline-ms") {
      opts.verify.budget.deadline = std::chrono::milliseconds(std::atol(value()));
    } else if (arg == "--budget-states") {
      opts.verify.budget.max_states = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "plankton_serve: unknown flag '%s'\n", arg.c_str());
      usage();
      return 3;
    }
  }
  if (opts.unix_path.empty() && opts.tcp_port == 0) {
    usage();
    return 3;
  }
  return plankton::serve::run_server(opts);
}
