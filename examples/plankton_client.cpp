// plankton_client: CLI for the plankton_serve daemon.
//
//   plankton_client --socket <path>|--tcp <port> <command> [args]
//
// Commands:
//   load <config-file>           make the config resident
//   query <policy-spec...>       e.g. `query loop`, `query reach r1 r2`
//                                [--failures <n>] anywhere after `query`
//   delta <delta-file>           apply line edits: `add <line>` / `del <line>`
//   stats                        print verdict-cache counters
//   shutdown                     persist the cache and stop the daemon
//
// Exit codes mirror plankton_verify: 0 holds / command ok, 1 violated,
// 2 inconclusive, 3 usage/transport/config error.
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/server.hpp"

namespace {

using namespace plankton;
using namespace plankton::serve;

bool read_file(const std::string& path, std::string& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  out = ss.str();
  return true;
}

/// Round trip: send one frame, wait for the reply frame.
bool rpc(int fd, sched::MsgType type, const std::string& payload,
         sched::Frame& reply, std::string& error) {
  if (!send_frame(fd, type, payload)) {
    error = "send failed";
    return false;
  }
  sched::FrameDecoder decoder;
  return recv_frame(fd, decoder, reply, error);
}

int print_reply(const sched::Frame& frame) {
  VerdictReplyMsg m;
  if (frame.type != sched::MsgType::kVerdictReply ||
      !decode_verdict_reply(frame.payload, m)) {
    std::fprintf(stderr, "plankton_client: malformed reply\n");
    return 3;
  }
  if (!m.ok) {
    std::fprintf(stderr, "plankton_client: daemon error: %s\n", m.error.c_str());
    return 3;
  }
  std::printf(
      "verdict=%s targets=%llu cache_hits=%llu reverified=%llu moved=%llu "
      "wall_ms=%.3f\n",
      to_string(static_cast<Verdict>(m.verdict)),
      static_cast<unsigned long long>(m.targets),
      static_cast<unsigned long long>(m.cache_hits),
      static_cast<unsigned long long>(m.reverified),
      static_cast<unsigned long long>(m.moved),
      static_cast<double>(m.wall_ns) / 1e6);
  for (const ViolationText& v : m.violations) {
    std::printf("violation PEC %s: %s\n", v.pec.c_str(), v.message.c_str());
  }
  switch (static_cast<Verdict>(m.verdict)) {
    case Verdict::kHolds: return 0;
    case Verdict::kViolated: return 1;
    case Verdict::kInconclusive: return 2;
    case Verdict::kError: return 3;
  }
  return 3;
}

int usage() {
  std::fprintf(stderr,
               "usage: plankton_client --socket <path>|--tcp <port> "
               "load <file> | query <spec...> [--failures n] | "
               "delta <file> | stats | shutdown\n");
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  std::string unix_path;
  int tcp_port = 0;
  int i = 1;
  while (i < argc && argv[i][0] == '-') {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      unix_path = argv[++i];
    } else if (arg == "--tcp" && i + 1 < argc) {
      tcp_port = std::atoi(argv[++i]);
    } else {
      return usage();
    }
    ++i;
  }
  if (i >= argc || (unix_path.empty() && tcp_port == 0)) return usage();
  const std::string command = argv[i++];

  std::string error;
  const int fd = unix_path.empty() ? connect_tcp(tcp_port, error)
                                   : connect_unix(unix_path, error);
  if (fd < 0) {
    std::fprintf(stderr, "plankton_client: %s\n", error.c_str());
    return 3;
  }
  sched::Frame reply;
  int rc = 3;
  if (command == "load") {
    if (i >= argc) return usage();
    LoadNetMsg m;
    if (!read_file(argv[i], m.config_text)) {
      std::fprintf(stderr, "plankton_client: cannot read '%s'\n", argv[i]);
      ::close(fd);
      return 3;
    }
    if (rpc(fd, sched::MsgType::kLoadNet, encode_load_net(m), reply, error)) {
      rc = print_reply(reply);
    }
  } else if (command == "query") {
    QueryMsg m;
    std::string spec;
    for (; i < argc; ++i) {
      if (std::strcmp(argv[i], "--failures") == 0 && i + 1 < argc) {
        m.max_failures = static_cast<std::uint32_t>(std::atoi(argv[++i]));
        continue;
      }
      if (!spec.empty()) spec += ' ';
      spec += argv[i];
    }
    if (spec.empty()) return usage();
    m.policy_spec = spec;
    if (rpc(fd, sched::MsgType::kQuery, encode_query(m), reply, error)) {
      rc = print_reply(reply);
    }
  } else if (command == "delta") {
    if (i >= argc) return usage();
    std::string text;
    if (!read_file(argv[i], text)) {
      std::fprintf(stderr, "plankton_client: cannot read '%s'\n", argv[i]);
      ::close(fd);
      return 3;
    }
    ApplyDeltaMsg m;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty() || line[0] == '#') continue;
      DeltaOp op;
      if (line.rfind("add ", 0) == 0) {
        op.add = true;
        op.line = line.substr(4);
      } else if (line.rfind("del ", 0) == 0) {
        op.add = false;
        op.line = line.substr(4);
      } else {
        std::fprintf(stderr, "plankton_client: bad delta line '%s'\n",
                     line.c_str());
        ::close(fd);
        return 3;
      }
      m.ops.push_back(std::move(op));
    }
    if (rpc(fd, sched::MsgType::kApplyDelta, encode_apply_delta(m), reply,
            error)) {
      rc = print_reply(reply);
    }
  } else if (command == "stats") {
    if (rpc(fd, sched::MsgType::kCacheStats, "", reply, error)) {
      CacheStatsMsg m;
      if (reply.type == sched::MsgType::kCacheStats &&
          decode_cache_stats(reply.payload, m)) {
        std::printf(
            "entries=%llu hits=%llu misses=%llu nonclean_bypass=%llu "
            "insertions=%llu warm_loaded=%llu\n",
            static_cast<unsigned long long>(m.entries),
            static_cast<unsigned long long>(m.hits),
            static_cast<unsigned long long>(m.misses),
            static_cast<unsigned long long>(m.nonclean_bypass),
            static_cast<unsigned long long>(m.insertions),
            static_cast<unsigned long long>(m.warm_loaded));
        rc = 0;
      } else {
        error = "malformed stats reply";
      }
    }
  } else if (command == "shutdown") {
    if (rpc(fd, sched::MsgType::kShutdown, "", reply, error)) rc = 0;
  } else {
    ::close(fd);
    return usage();
  }
  if (rc == 3 && !error.empty()) {
    std::fprintf(stderr, "plankton_client: %s\n", error.c_str());
  }
  ::close(fd);
  return rc;
}
