// plankton_client: CLI for the plankton_serve daemon.
//
//   plankton_client --socket <path>|--tcp <port> <command> [args]
//
// Commands:
//   load <config-file>           make the config resident
//   query <policy-spec...>       e.g. `query loop`, `query reach r1 r2`
//                                [--failures <n>] anywhere after `query`
//   delta <delta-file>           apply line edits: `add <line>` / `del <line>`
//   stats                        print verdict-cache counters
//   shutdown                     persist the cache and stop the daemon
//
// Connection failures are retried with doubling backoff (--retries,
// --retry-delay-ms) before giving up — a daemon mid-restart is reached by
// the next attempt instead of failing the script driving this client.
//
// Exit codes mirror plankton_verify: 0 holds / command ok, 1 violated,
// 2 inconclusive, 3 usage/config/daemon error, 4 daemon unreachable after
// all retries (distinct so callers can tell "the verdict is bad" from "the
// daemon is down").
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"

namespace {

using namespace plankton;
using namespace plankton::serve;

bool read_file(const std::string& path, std::string& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  out = ss.str();
  return true;
}

/// Round trip: send one frame, wait for the reply frame.
bool rpc(int fd, sched::MsgType type, const std::string& payload,
         sched::Frame& reply, std::string& error) {
  if (!send_frame(fd, type, payload)) {
    error = "send failed";
    return false;
  }
  sched::FrameDecoder decoder;
  return recv_frame(fd, decoder, reply, error);
}

int print_reply(const sched::Frame& frame) {
  VerdictReplyMsg m;
  if (frame.type != sched::MsgType::kVerdictReply ||
      !decode_verdict_reply(frame.payload, m)) {
    std::fprintf(stderr, "plankton_client: malformed reply\n");
    return 3;
  }
  if (!m.ok) {
    std::fprintf(stderr, "plankton_client: daemon error: %s\n", m.error.c_str());
    return 3;
  }
  std::printf(
      "verdict=%s targets=%llu cache_hits=%llu reverified=%llu moved=%llu "
      "wall_ms=%.3f\n",
      to_string(static_cast<Verdict>(m.verdict)),
      static_cast<unsigned long long>(m.targets),
      static_cast<unsigned long long>(m.cache_hits),
      static_cast<unsigned long long>(m.reverified),
      static_cast<unsigned long long>(m.moved),
      static_cast<double>(m.wall_ns) / 1e6);
  for (const ViolationText& v : m.violations) {
    std::printf("violation PEC %s: %s\n", v.pec.c_str(), v.message.c_str());
  }
  switch (static_cast<Verdict>(m.verdict)) {
    case Verdict::kHolds: return 0;
    case Verdict::kViolated: return 1;
    case Verdict::kInconclusive: return 2;
    case Verdict::kError: return 3;
  }
  return 3;
}

int usage() {
  std::fprintf(stderr,
               "usage: plankton_client --socket <path>|--tcp <port> "
               "[--retries n] [--retry-delay-ms n] "
               "load <file> | query <spec...> [--failures n] | "
               "delta <file> | stats | shutdown\n");
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  std::string unix_path;
  int tcp_port = 0;
  int retries = 3;
  int retry_delay_ms = 100;
  int i = 1;
  while (i < argc && argv[i][0] == '-') {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      unix_path = argv[++i];
    } else if (arg == "--tcp" && i + 1 < argc) {
      tcp_port = std::atoi(argv[++i]);
    } else if (arg == "--retries" && i + 1 < argc) {
      retries = std::max(0, std::atoi(argv[++i]));
    } else if (arg == "--retry-delay-ms" && i + 1 < argc) {
      retry_delay_ms = std::max(1, std::atoi(argv[++i]));
    } else {
      return usage();
    }
    ++i;
  }
  if (i >= argc || (unix_path.empty() && tcp_port == 0)) return usage();
  const std::string command = argv[i++];

  // Bounded connect retry with doubling backoff (capped at 2 s a hop): a
  // daemon that is restarting — journal replay included — comes back within
  // a few hops. Exhaustion is exit 4, the "daemon unreachable" code.
  std::string error;
  const auto connect_once = [&]() {
    return unix_path.empty() ? connect_tcp(tcp_port, error)
                             : connect_unix(unix_path, error);
  };
  int fd = connect_once();
  for (int attempt = 0; fd < 0 && attempt < retries; ++attempt) {
    const int delay = std::min(retry_delay_ms << std::min(attempt, 10), 2000);
    std::fprintf(stderr, "plankton_client: %s (retrying in %dms)\n",
                 error.c_str(), delay);
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    fd = connect_once();
  }
  if (fd < 0) {
    std::fprintf(stderr, "plankton_client: daemon unreachable: %s\n",
                 error.c_str());
    return 4;
  }
  sched::Frame reply;
  int rc = 3;
  bool transport_failed = false;
  // Idempotent requests (load/query/stats) survive a mid-request connection
  // loss by reconnecting and resending; delta and shutdown are not resent —
  // a lost reply leaves their outcome unknown, which exit 4 reports.
  const auto do_rpc = [&](sched::MsgType type, const std::string& payload,
                          bool idempotent) {
    for (int attempt = 0;; ++attempt) {
      if (rpc(fd, type, payload, reply, error)) return true;
      if (!idempotent || attempt >= retries) {
        transport_failed = true;
        return false;
      }
      const int delay =
          std::min(retry_delay_ms << std::min(attempt, 10), 2000);
      std::fprintf(stderr, "plankton_client: %s (retrying in %dms)\n",
                   error.c_str(), delay);
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      ::close(fd);
      fd = connect_once();
      if (fd < 0) {
        transport_failed = true;
        return false;
      }
    }
  };
  if (command == "load") {
    if (i >= argc) return usage();
    LoadNetMsg m;
    if (!read_file(argv[i], m.config_text)) {
      std::fprintf(stderr, "plankton_client: cannot read '%s'\n", argv[i]);
      ::close(fd);
      return 3;
    }
    if (do_rpc(sched::MsgType::kLoadNet, encode_load_net(m), true)) {
      rc = print_reply(reply);
    }
  } else if (command == "query") {
    QueryMsg m;
    std::string spec;
    for (; i < argc; ++i) {
      if (std::strcmp(argv[i], "--failures") == 0 && i + 1 < argc) {
        m.max_failures = static_cast<std::uint32_t>(std::atoi(argv[++i]));
        continue;
      }
      if (!spec.empty()) spec += ' ';
      spec += argv[i];
    }
    if (spec.empty()) return usage();
    m.policy_spec = spec;
    if (do_rpc(sched::MsgType::kQuery, encode_query(m), true)) {
      rc = print_reply(reply);
    }
  } else if (command == "delta") {
    if (i >= argc) return usage();
    std::string text;
    if (!read_file(argv[i], text)) {
      std::fprintf(stderr, "plankton_client: cannot read '%s'\n", argv[i]);
      ::close(fd);
      return 3;
    }
    ApplyDeltaMsg m;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty() || line[0] == '#') continue;
      DeltaOp op;
      if (line.rfind("add ", 0) == 0) {
        op.add = true;
        op.line = line.substr(4);
      } else if (line.rfind("del ", 0) == 0) {
        op.add = false;
        op.line = line.substr(4);
      } else {
        std::fprintf(stderr, "plankton_client: bad delta line '%s'\n",
                     line.c_str());
        ::close(fd);
        return 3;
      }
      m.ops.push_back(std::move(op));
    }
    if (do_rpc(sched::MsgType::kApplyDelta, encode_apply_delta(m), false)) {
      rc = print_reply(reply);
    }
  } else if (command == "stats") {
    if (do_rpc(sched::MsgType::kCacheStats, "", true)) {
      CacheStatsMsg m;
      if (reply.type == sched::MsgType::kCacheStats &&
          decode_cache_stats(reply.payload, m)) {
        std::printf(
            "entries=%llu hits=%llu misses=%llu nonclean_bypass=%llu "
            "insertions=%llu warm_loaded=%llu\n",
            static_cast<unsigned long long>(m.entries),
            static_cast<unsigned long long>(m.hits),
            static_cast<unsigned long long>(m.misses),
            static_cast<unsigned long long>(m.nonclean_bypass),
            static_cast<unsigned long long>(m.insertions),
            static_cast<unsigned long long>(m.warm_loaded));
        rc = 0;
      } else {
        error = "malformed stats reply";
      }
    }
  } else if (command == "shutdown") {
    if (do_rpc(sched::MsgType::kShutdown, "", false)) rc = 0;
  } else {
    ::close(fd);
    return usage();
  }
  if (transport_failed) {
    std::fprintf(stderr, "plankton_client: daemon unreachable: %s\n",
                 error.c_str());
    if (fd >= 0) ::close(fd);
    return 4;
  }
  if (rc == 3 && !error.empty()) {
    std::fprintf(stderr, "plankton_client: %s\n", error.c_str());
  }
  ::close(fd);
  return rc;
}
