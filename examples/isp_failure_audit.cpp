// ISP failure audit (the paper's §5 RocketFuel experiments, Fig. 7d).
//
// Loads a synthetic AS topology (deterministic stand-in for RocketFuel),
// picks an ingress PoP, and checks that every destination prefix in the AS
// stays reachable from the ingress under any single link failure — reporting
// which failure breaks which destination when the policy does not hold.
#include <cstdio>
#include <string>

#include "core/verifier.hpp"
#include "workload/as_topo.hpp"

int main(int argc, char** argv) {
  using namespace plankton;
  const std::string as_name = argc > 1 ? argv[1] : "AS3967";
  AsTopo topo = make_as_topo(as_name);
  std::printf("%s: %zu devices, %zu links, OSPF with weighted links\n",
              as_name.c_str(), topo.net.topo.node_count(),
              topo.net.topo.link_count());

  // Ingress: first PoP with more than one incident link (as in the paper).
  NodeId ingress = kNoNode;
  for (NodeId n = static_cast<NodeId>(topo.backbone.size());
       n < topo.net.topo.node_count(); ++n) {
    if (topo.net.topo.neighbors(n).size() > 1) {
      ingress = n;
      break;
    }
  }
  if (ingress == kNoNode) ingress = topo.backbone[0];
  std::printf("ingress: %s\n\n", topo.net.topo.name(ingress).c_str());

  VerifyOptions vo;
  vo.explore.max_failures = 1;
  vo.explore.find_all_violations = false;
  vo.cores = 4;
  Verifier verifier(topo.net, vo);
  const ReachabilityPolicy policy({ingress});
  const VerifyResult r = verifier.verify(policy);

  std::printf("destination PECs audited: %zu\n", r.pecs_verified);
  std::printf("failure scenarios explored: %llu\n",
              static_cast<unsigned long long>(r.total.failure_sets));
  std::printf("all destinations reachable under any 1 failure: %s\n",
              r.holds ? "YES" : "NO");
  if (!r.holds) {
    std::printf("  first violation: %s\n", r.first_violation(topo.net.topo).c_str());
  }
  std::printf("wall time: %.2f ms, model memory: %.2f MB\n",
              static_cast<double>(r.wall.count()) / 1e6,
              static_cast<double>(r.total.model_bytes()) / 1e6);
  return 0;
}
