// Trail replay (counterexample validation) and Batfish-style simulation mode
// (Fig. 1: single-execution tools miss multi-stable-state violations).
#include <gtest/gtest.h>

#include "core/verifier.hpp"
#include "pec/pec.hpp"
#include "rpvp/replay.hpp"
#include "workload/external.hpp"
#include "workload/fat_tree.hpp"
#include "workload/ring.hpp"

namespace plankton {
namespace {

/// The 3-node wedgie from test_bgp_semantics (two stable states).
Network make_wedgie() {
  Network net;
  const NodeId cust = net.add_device("customer");
  const NodeId bak = net.add_device("backup");
  const NodeId pri = net.add_device("primary");
  net.topo.add_link(cust, bak);
  net.topo.add_link(cust, pri);
  net.topo.add_link(bak, pri);
  for (NodeId n = 0; n < 3; ++n) {
    net.device(n).bgp.emplace();
    net.device(n).bgp->asn = 65000 + n;
  }
  auto session = [&net](NodeId a, NodeId b) {
    BgpSession sa;
    sa.peer = b;
    net.device(a).bgp->sessions.push_back(sa);
    BgpSession sb;
    sb.peer = a;
    net.device(b).bgp->sessions.push_back(sb);
  };
  session(cust, bak);
  session(cust, pri);
  session(bak, pri);
  net.device(cust).bgp->originated.push_back(*Prefix::parse("10.7.0.0/16"));
  RouteMapClause depress;
  depress.action.set_local_pref = 50;
  net.device(bak).bgp->session_with(cust)->import.clauses.push_back(depress);
  RouteMapClause lift;
  lift.action.set_local_pref = 200;
  net.device(pri).bgp->session_with(bak)->import.clauses.push_back(lift);
  return net;
}

TEST(Replay, ReproducesWedgieViolation) {
  const Network net = make_wedgie();
  const PecSet pecs = compute_pecs(net);
  const Pec& pec = pecs.pecs[pecs.routed()[0]];
  const BoundedPathLengthPolicy policy({2 /* primary */}, 1);
  Explorer ex(net, pec, make_tasks(net, pec), policy, {});
  const ExploreResult r = ex.run();
  ASSERT_FALSE(r.holds);
  ASSERT_FALSE(r.violations.empty());

  const ReplayResult replay = replay_trail(net, pec, r.violations[0].trail);
  ASSERT_TRUE(replay.ok) << replay.error;
  // The replayed data plane exhibits the violation: primary's path to the
  // customer is 2 hops (via backup), not 1.
  const WalkStats w = walk_from(replay.dp, 2);
  EXPECT_TRUE(w.delivered_any);
  EXPECT_EQ(w.max_hops, 2u);
}

TEST(Replay, ReproducesFailureInducedViolation) {
  const Network net = make_ring(6);
  const PecSet pecs = compute_pecs(net);
  const Pec& pec = pecs.pecs[pecs.routed()[0]];
  const ReachabilityPolicy policy({3});
  ExploreOptions opts;
  opts.max_failures = 2;
  Explorer ex(net, pec, make_tasks(net, pec), policy, opts);
  const ExploreResult r = ex.run();
  ASSERT_FALSE(r.holds);
  ASSERT_FALSE(r.violations.empty());

  const ReplayResult replay = replay_trail(net, pec, r.violations[0].trail);
  ASSERT_TRUE(replay.ok) << replay.error;
  EXPECT_EQ(replay.failures.count(), r.violations[0].failures.count());
  const WalkStats w = walk_from(replay.dp, 3);
  EXPECT_FALSE(w.delivered_all) << "replay must reproduce the unreachability";
}

TEST(Replay, RejectsCorruptedTrail) {
  const Network net = make_wedgie();
  const PecSet pecs = compute_pecs(net);
  const Pec& pec = pecs.pecs[pecs.routed()[0]];
  Trail bogus;
  TrailEvent ev;
  ev.kind = TrailEvent::Kind::kSelect;
  ev.phase = 0;
  ev.node = 1;
  ev.peer = 2;
  bogus.events.push_back(ev);  // select before any kBeginPrefix
  const ReplayResult replay = replay_trail(net, pec, bogus);
  EXPECT_FALSE(replay.ok);
  EXPECT_FALSE(replay.error.empty());
}

TEST(Simulation, MissesWedgieThatModelCheckingFinds) {
  // Fig. 1's point: a single-execution (Batfish-style) run can land in the
  // intended state and miss the wedged one.
  const Network net = make_wedgie();
  const PecSet pecs = compute_pecs(net);
  const Pec& pec = pecs.pecs[pecs.routed()[0]];
  const BoundedPathLengthPolicy policy({2}, 1);

  ExploreOptions full;
  Explorer model_checker(net, pec, make_tasks(net, pec), policy, full);
  EXPECT_FALSE(model_checker.run().holds) << "model checking finds the wedgie";

  // Simulation explores exactly one execution; across both det-node pick
  // orders at least one lands in the intended state. We assert the weaker,
  // deterministic property: simulation checks exactly one converged state.
  ExploreOptions sim;
  sim.simulation = true;
  Explorer simulator(net, pec, make_tasks(net, pec), policy, sim);
  const ExploreResult r = simulator.run();
  EXPECT_EQ(r.stats.converged_states, 1u);
  EXPECT_EQ(r.stats.policy_checks + r.stats.suppressed_checks, 1u);
}

TEST(Simulation, AgreesOnDeterministicNetworks) {
  // On OSPF (deterministic convergence) simulation and full exploration are
  // equivalent.
  FatTreeOptions o;
  o.k = 4;
  const FatTree ft = make_fat_tree(o);
  const LoopFreedomPolicy policy;
  VerifyOptions full;
  VerifyOptions sim;
  sim.explore.simulation = true;
  EXPECT_EQ(Verifier(ft.net, full).verify(policy).holds,
            Verifier(ft.net, sim).verify(policy).holds);
}

TEST(ExternalPeer, StubOriginatesAndSteers) {
  // Two border routers, each with an external peer for the same prefix; the
  // customer peer gets local-pref 200 (preferred) vs the provider's 80.
  Network net;
  const NodeId b1 = net.add_device("b1");
  const NodeId b2 = net.add_device("b2");
  net.topo.add_link(b1, b2);
  for (const NodeId b : {b1, b2}) {
    net.device(b).bgp.emplace();
    net.device(b).bgp->asn = 65010 + b;
  }
  BgpSession s1;
  s1.peer = b2;
  net.device(b1).bgp->sessions.push_back(s1);
  BgpSession s2;
  s2.peer = b1;
  net.device(b2).bgp->sessions.push_back(s2);

  const Prefix ext = *Prefix::parse("203.0.113.0/24");
  ExternalPeerOptions customer;
  customer.asn = 64901;
  customer.import_local_pref = 200;
  const NodeId cust = add_external_peer(net, b1, ext, customer);
  ExternalPeerOptions provider;
  provider.asn = 64902;
  provider.import_local_pref = 80;
  add_external_peer(net, b2, ext, provider);
  ASSERT_TRUE(net.validate().empty());

  // All internal traffic must exit via b1's customer peer.
  Verifier v(net, {});
  const WaypointPolicy policy({b2}, {cust});
  EXPECT_TRUE(v.verify_address(ext.addr(), policy).holds);
}

TEST(ExternalPeer, RequiresBgpAttachment) {
  Network net;
  net.add_device("plain");
  EXPECT_THROW(add_external_peer(net, 0, *Prefix::parse("10.0.0.0/8"), {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace plankton
