// Multi-process shard coordinator (sched/shard.*): wire framing fuzz,
// coordinator data flow, cross-process determinism, and crash recovery.
//
// The headline guarantees under test:
//   · --shards {1,2,4} × {dfs, bfs, priority} produce verdicts, violation
//     multisets, and state counts bit-identical to the in-process
//     scheduler, on the seeded random_net corpus and on the paper's Fig. 6
//     and fat-tree workloads (corpus scales with PLANKTON_DIFF_SEEDS);
//   · a worker SIGKILLed mid-task is detected, its task reassigned, and the
//     run still converges to the identical result;
//   · the framing decoder survives truncated, corrupt, and hostile-length
//     input without crashing or allocating absurd buffers (the
//     test_outcome_store.cpp corrupt-input pattern, extended to frames).
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <limits>
#include <set>
#include <string>
#include <thread>

#include "core/verifier.hpp"
#include "pec/pec.hpp"
#include "sched/shard.hpp"
#include "serve/serve.hpp"
#include "support/figure6.hpp"
#include "support/random_net.hpp"
#include "workload/enterprise.hpp"
#include "workload/fat_tree.hpp"
#include "workload/ring.hpp"

namespace plankton {
namespace {

using testsupport::Figure6;
using testsupport::RandomInstance;
using testsupport::make_random_instance;

// ---------------------------------------------------------------------------
// Framing + payload codecs (no processes involved)
// ---------------------------------------------------------------------------

sched::ViolationMsg sample_violation() {
  sched::ViolationMsg v;
  v.pec = 7;
  v.failed_links = {1, 4, 9};
  v.message = "loop R1 -> R2 -> R1";
  v.trail_text = "  [0] R2 adopts 10.0.0.0/16 via R1\n";
  return v;
}

sched::TaskDoneMsg sample_done() {
  sched::TaskDoneMsg d;
  d.task = 42;
  sched::PecDoneMsg p;
  p.pec = 7;
  p.holds = 0;
  p.stats.states_explored = 1234;
  p.stats.states_stored = 99;
  p.stats.bytes_visited = 4096;
  p.stats.elapsed = std::chrono::nanoseconds(5555);
  d.pecs.push_back(p);
  p.pec = 8;
  p.holds = 1;
  d.pecs.push_back(p);
  return d;
}

/// A representative multi-frame stream: assign + delivery + violation + done
/// + shutdown.
std::string sample_stream() {
  std::string s;
  sched::TaskAssignMsg assign;
  assign.task = 3;
  assign.evict = {2, 5};
  sched::encode_frame(s, sched::MsgType::kTaskAssign,
                      sched::encode_task_assign(assign));
  sched::OutcomeDeliveryMsg od;
  od.pec = 5;
  od.outcomes_wire = std::string("\x31\x4f\x4b\x50", 4) + "payload-ish";
  sched::encode_frame(s, sched::MsgType::kOutcomeDelivery,
                      sched::encode_outcome_delivery(od));
  sched::encode_frame(s, sched::MsgType::kViolationReport,
                      sched::encode_violation(sample_violation()));
  sched::encode_frame(s, sched::MsgType::kTaskDone,
                      sched::encode_task_done(sample_done()));
  sched::encode_frame(s, sched::MsgType::kShutdown, "");
  return s;
}

TEST(ShardFraming, RoundTripsByteByByte) {
  const std::string stream = sample_stream();
  sched::FrameDecoder dec;
  std::vector<sched::Frame> frames;
  // Worst-case delivery: one byte at a time, draining after every feed.
  for (const char c : stream) {
    dec.feed(&c, 1);
    sched::Frame f;
    while (dec.next(f) == sched::FrameDecoder::Status::kFrame) {
      frames.push_back(f);
    }
  }
  ASSERT_EQ(frames.size(), 5u);
  EXPECT_EQ(frames[0].type, sched::MsgType::kTaskAssign);
  EXPECT_EQ(frames[4].type, sched::MsgType::kShutdown);
  EXPECT_TRUE(frames[4].payload.empty());

  sched::TaskAssignMsg assign;
  ASSERT_TRUE(sched::decode_task_assign(frames[0].payload, assign));
  EXPECT_EQ(assign.task, 3u);
  EXPECT_EQ(assign.evict, (std::vector<PecId>{2, 5}));

  sched::ViolationMsg v;
  ASSERT_TRUE(sched::decode_violation(frames[2].payload, v));
  const sched::ViolationMsg ref = sample_violation();
  EXPECT_EQ(v.pec, ref.pec);
  EXPECT_EQ(v.failed_links, ref.failed_links);
  EXPECT_EQ(v.message, ref.message);
  EXPECT_EQ(v.trail_text, ref.trail_text);

  sched::TaskDoneMsg d;
  ASSERT_TRUE(sched::decode_task_done(frames[3].payload, d));
  const sched::TaskDoneMsg dref = sample_done();
  ASSERT_EQ(d.pecs.size(), dref.pecs.size());
  EXPECT_EQ(d.task, dref.task);
  EXPECT_EQ(d.pecs[0].holds, 0);
  EXPECT_EQ(d.pecs[0].stats.states_explored, 1234u);
  EXPECT_EQ(d.pecs[0].stats.bytes_visited, 4096u);
  EXPECT_EQ(d.pecs[0].stats.elapsed.count(), 5555);
}

TEST(ShardFraming, TruncationNeverYieldsAFrameBeyondTheCut) {
  const std::string stream = sample_stream();
  // Count the frames a full parse yields up to each cut point; a truncated
  // stream must yield exactly the complete frames before the cut and then
  // kNeedMore — never an error, never a phantom frame.
  for (std::size_t cut = 0; cut < stream.size(); ++cut) {
    sched::FrameDecoder dec;
    dec.feed(stream.data(), cut);
    sched::Frame f;
    sched::FrameDecoder::Status st;
    std::size_t frames = 0;
    while ((st = dec.next(f)) == sched::FrameDecoder::Status::kFrame) ++frames;
    EXPECT_EQ(st, sched::FrameDecoder::Status::kNeedMore) << "cut at " << cut;
    EXPECT_LE(frames, 5u);
  }
}

TEST(ShardFraming, RejectsCorruptHeaders) {
  const auto expect_poisoned = [](std::string stream, const char* what) {
    sched::FrameDecoder dec;
    dec.feed(stream.data(), stream.size());
    sched::Frame f;
    sched::FrameDecoder::Status st;
    while ((st = dec.next(f)) == sched::FrameDecoder::Status::kFrame) {
    }
    EXPECT_EQ(st, sched::FrameDecoder::Status::kError) << what;
    // Poisoned is permanent: feeding valid bytes cannot resurrect it.
    std::string good;
    sched::encode_frame(good, sched::MsgType::kShutdown, "");
    dec.feed(good.data(), good.size());
    EXPECT_EQ(dec.next(f), sched::FrameDecoder::Status::kError) << what;
  };

  std::string bad_magic = sample_stream();
  bad_magic[0] ^= 0x5a;
  expect_poisoned(bad_magic, "bad magic");

  std::string bad_version = sample_stream();
  bad_version[4] = 0x7f;
  expect_poisoned(bad_version, "unsupported version");

  std::string bad_type = sample_stream();
  bad_type[6] = 0x6e;  // type 0x..6e: far outside the enum
  expect_poisoned(bad_type, "unknown type");

  // Hostile length: a header claiming an 2^62-byte payload must be rejected
  // up front (no buffering until OOM).
  std::string hostile;
  const std::uint32_t magic = sched::kFrameMagic;
  const std::uint16_t version = sched::kFrameVersion;
  const std::uint16_t type = 1;
  const std::uint64_t huge = std::uint64_t{1} << 62;
  hostile.append(reinterpret_cast<const char*>(&magic), 4);
  hostile.append(reinterpret_cast<const char*>(&version), 2);
  hostile.append(reinterpret_cast<const char*>(&type), 2);
  hostile.append(reinterpret_cast<const char*>(&huge), 8);
  expect_poisoned(hostile, "oversized payload");
}

TEST(ShardFraming, RejectsFramesAfterShutdown) {
  // kShutdown is terminal for a stream: a late kHeartbeat (or anything else)
  // framed after it must poison the decoder, not be processed.
  const auto poisoned_after_shutdown = [](sched::MsgType late_type,
                                          const char* what) {
    std::string stream;
    sched::encode_frame(stream, sched::MsgType::kHeartbeat, "");
    sched::encode_frame(stream, sched::MsgType::kShutdown, "");
    sched::encode_frame(stream, late_type, "");
    sched::FrameDecoder dec;
    dec.feed(stream.data(), stream.size());
    sched::Frame f;
    EXPECT_EQ(dec.next(f), sched::FrameDecoder::Status::kFrame) << what;
    EXPECT_EQ(f.type, sched::MsgType::kHeartbeat) << what;
    EXPECT_EQ(dec.next(f), sched::FrameDecoder::Status::kFrame) << what;
    EXPECT_EQ(f.type, sched::MsgType::kShutdown) << what;
    EXPECT_EQ(dec.next(f), sched::FrameDecoder::Status::kError) << what;
    EXPECT_NE(dec.error().find("after shutdown"), std::string::npos) << what;
    // Permanent, like every other poisoning.
    std::string good;
    sched::encode_frame(good, sched::MsgType::kHeartbeat, "");
    dec.feed(good.data(), good.size());
    EXPECT_EQ(dec.next(f), sched::FrameDecoder::Status::kError) << what;
  };
  poisoned_after_shutdown(sched::MsgType::kHeartbeat, "heartbeat");
  poisoned_after_shutdown(sched::MsgType::kShutdown, "double shutdown");
  poisoned_after_shutdown(sched::MsgType::kQuery, "serve query");

  // The same bytes arriving one at a time must poison at the same point.
  std::string stream;
  sched::encode_frame(stream, sched::MsgType::kShutdown, "");
  sched::encode_frame(stream, sched::MsgType::kHeartbeat, "heartbeat-payload");
  sched::FrameDecoder dec;
  sched::Frame f;
  std::size_t frames = 0;
  bool errored = false;
  for (const char c : stream) {
    dec.feed(&c, 1);
    sched::FrameDecoder::Status st;
    while ((st = dec.next(f)) == sched::FrameDecoder::Status::kFrame) ++frames;
    if (st == sched::FrameDecoder::Status::kError) {
      errored = true;
      break;
    }
  }
  EXPECT_EQ(frames, 1u);
  EXPECT_TRUE(errored);
}

TEST(ShardFraming, ServeFrameTypesRoundTrip) {
  // MsgType 7..11 (the serve daemon's frames) ride the same decoder; a
  // type one past kSubtaskDone (the last cluster frame) is still rejected.
  std::string stream;
  sched::encode_frame(stream, sched::MsgType::kLoadNet, "cfg");
  sched::encode_frame(stream, sched::MsgType::kApplyDelta, "ops");
  sched::encode_frame(stream, sched::MsgType::kQuery, "spec");
  sched::encode_frame(stream, sched::MsgType::kVerdictReply, "verdict");
  sched::encode_frame(stream, sched::MsgType::kCacheStats, "");
  sched::FrameDecoder dec;
  dec.feed(stream.data(), stream.size());
  sched::Frame f;
  for (const auto expected :
       {sched::MsgType::kLoadNet, sched::MsgType::kApplyDelta,
        sched::MsgType::kQuery, sched::MsgType::kVerdictReply,
        sched::MsgType::kCacheStats}) {
    ASSERT_EQ(dec.next(f), sched::FrameDecoder::Status::kFrame);
    EXPECT_EQ(f.type, expected);
  }
  EXPECT_EQ(dec.next(f), sched::FrameDecoder::Status::kNeedMore);

  std::string bad;
  const std::uint32_t magic = sched::kFrameMagic;
  const std::uint16_t version = sched::kFrameVersion;
  const std::uint16_t type = 17;  // one past kSubtaskDone
  const std::uint64_t len = 0;
  bad.append(reinterpret_cast<const char*>(&magic), 4);
  bad.append(reinterpret_cast<const char*>(&version), 2);
  bad.append(reinterpret_cast<const char*>(&type), 2);
  bad.append(reinterpret_cast<const char*>(&len), 8);
  sched::FrameDecoder dec2;
  dec2.feed(bad.data(), bad.size());
  EXPECT_EQ(dec2.next(f), sched::FrameDecoder::Status::kError);
}

TEST(ShardFraming, PayloadDecodersRejectCorruptInput) {
  const std::string assign = sched::encode_task_assign({3, {2, 5}});
  const std::string violation = sched::encode_violation(sample_violation());
  const std::string done = sched::encode_task_done(sample_done());
  sched::OutcomeDeliveryMsg odm;
  odm.pec = 5;
  odm.outcomes_wire = "nested-bytes";
  const std::string delivery = sched::encode_outcome_delivery(odm);

  // Every strict prefix of a valid payload must be rejected (decoders are
  // exact inverses: trailing garbage is rejected too).
  sched::TaskAssignMsg a;
  sched::ViolationMsg v;
  sched::TaskDoneMsg d;
  sched::OutcomeDeliveryMsg od;
  for (std::size_t cut = 0; cut < assign.size(); ++cut) {
    EXPECT_FALSE(sched::decode_task_assign(assign.substr(0, cut), a));
  }
  for (std::size_t cut = 0; cut < violation.size(); ++cut) {
    EXPECT_FALSE(sched::decode_violation(violation.substr(0, cut), v));
  }
  for (std::size_t cut = 0; cut < done.size(); ++cut) {
    EXPECT_FALSE(sched::decode_task_done(done.substr(0, cut), d));
  }
  for (std::size_t cut = 0; cut < delivery.size(); ++cut) {
    EXPECT_FALSE(sched::decode_outcome_delivery(delivery.substr(0, cut), od));
  }
  EXPECT_FALSE(sched::decode_task_assign(assign + "x", a));
  EXPECT_FALSE(sched::decode_violation(violation + "x", v));
  EXPECT_FALSE(sched::decode_task_done(done + "x", d));
  EXPECT_FALSE(sched::decode_outcome_delivery(delivery + "x", od));

  // Hostile counts: an element count far beyond the bytes present must be
  // caught by the bounds check, not turned into a huge resize.
  std::string hostile;
  const std::uint64_t task = 1;
  const std::uint32_t absurd = 0xffffffffu;
  hostile.append(reinterpret_cast<const char*>(&task), 8);
  hostile.append(reinterpret_cast<const char*>(&absurd), 4);
  EXPECT_FALSE(sched::decode_task_assign(hostile, a));
  EXPECT_TRUE(a.evict.empty()) << "failed decode must leave output empty";
  EXPECT_FALSE(sched::decode_task_done(hostile, d));
  EXPECT_TRUE(d.pecs.empty());

  // A failed decode leaves the output default-initialized.
  EXPECT_FALSE(sched::decode_violation(violation.substr(0, 8), v));
  EXPECT_TRUE(v.message.empty());
  EXPECT_TRUE(v.failed_links.empty());
}

// ---------------------------------------------------------------------------
// Cluster-transport frames (kBootstrap .. kSubtaskDone) and their codecs
// ---------------------------------------------------------------------------

StateSnapshot sample_snapshot(std::uint64_t key) {
  StateSnapshot s;
  SearchMove m;
  m.kind = SearchMove::Kind::kSelect;
  m.node = 3;
  m.peer = 1;
  m.route = 9;
  m.prev = kNoRoute;
  s.path.push_back(m);
  m.kind = SearchMove::Kind::kWithdraw;
  m.node = 1;
  s.path.push_back(m);
  s.key = key;
  s.sleep = {0x5a5a5a5a5a5a5a5aull, 3};
  // Model-opaque dictionary blob (the wire layer must not interpret it);
  // embedded NUL and high bytes must survive the round trip.
  s.route_dict = std::string("dict\x00\xff_payload", 14);
  return s;
}

serve::BootstrapMsg sample_bootstrap() {
  serve::BootstrapMsg bm;
  bm.config_text = "network sample\n";
  bm.policy_spec = "reach r1 r2";
  bm.targets = {0, 3, 7};
  bm.max_failures = 2;
  bm.lec_failures = 1;
  bm.visited = 1;
  bm.bloom_bits = 1u << 20;
  bm.max_states = 12345;
  bm.time_limit_ms = 777;
  bm.budget_deadline_ms = 1500;
  bm.wall_remaining_ms = 9000;
  bm.engine_kind = 2;
  bm.engine_seed = 42;
  bm.split_export = 1;
  bm.export_check_every = 512;
  bm.export_min_frontier = 8;
  bm.export_max_per_run = 16;
  return bm;
}

TEST(ShardFraming, ClusterFrameTypesRoundTrip) {
  // The five cluster frames ride the same decoder as everything else.
  std::string stream;
  sched::encode_frame(stream, sched::MsgType::kBootstrap,
                      serve::encode_bootstrap(sample_bootstrap()));
  sched::BootstrapAckMsg ack;
  ack.ok = 1;
  ack.plan_hash = 0xfeedfacecafebeefull;
  sched::encode_frame(stream, sched::MsgType::kBootstrapAck,
                      sched::encode_bootstrap_ack(ack));
  sched::SplitExportMsg se;
  se.pec = 4;
  se.snaps = {sample_snapshot(11), sample_snapshot(22)};
  sched::encode_frame(stream, sched::MsgType::kSplitExport,
                      sched::encode_split_export(se));
  sched::SubtaskAssignMsg sa;
  sa.id = 9;
  sa.pec = 4;
  sa.export_ok = 1;
  sa.snaps = {sample_snapshot(33)};
  sched::encode_frame(stream, sched::MsgType::kSubtaskAssign,
                      sched::encode_subtask_assign(sa));
  sched::SubtaskDoneMsg sd;
  sd.id = 9;
  sd.pec.pec = 4;
  sd.pec.holds = 1;
  sd.pec.stats.states_explored = 17;
  sched::encode_frame(stream, sched::MsgType::kSubtaskDone,
                      sched::encode_subtask_done(sd));

  sched::FrameDecoder dec;
  // Byte-at-a-time delivery, like the TCP transport under a tiny MTU.
  std::vector<sched::Frame> frames;
  for (const char c : stream) {
    dec.feed(&c, 1);
    sched::Frame f;
    while (dec.next(f) == sched::FrameDecoder::Status::kFrame) {
      frames.push_back(f);
    }
  }
  ASSERT_EQ(frames.size(), 5u);
  EXPECT_EQ(frames[0].type, sched::MsgType::kBootstrap);
  EXPECT_EQ(frames[4].type, sched::MsgType::kSubtaskDone);

  serve::BootstrapMsg bm;
  ASSERT_TRUE(serve::decode_bootstrap(frames[0].payload, bm));
  const serve::BootstrapMsg ref = sample_bootstrap();
  EXPECT_EQ(bm.config_text, ref.config_text);
  EXPECT_EQ(bm.policy_spec, ref.policy_spec);
  EXPECT_EQ(bm.targets, ref.targets);
  EXPECT_EQ(bm.max_failures, ref.max_failures);
  EXPECT_EQ(bm.visited, ref.visited);
  EXPECT_EQ(bm.budget_deadline_ms, ref.budget_deadline_ms);
  EXPECT_EQ(bm.wall_remaining_ms, ref.wall_remaining_ms);
  EXPECT_EQ(bm.engine_kind, ref.engine_kind);
  EXPECT_EQ(bm.split_export, ref.split_export);
  EXPECT_EQ(bm.export_check_every, ref.export_check_every);
  EXPECT_EQ(bm.export_max_per_run, ref.export_max_per_run);

  sched::BootstrapAckMsg a2;
  ASSERT_TRUE(sched::decode_bootstrap_ack(frames[1].payload, a2));
  EXPECT_EQ(a2.ok, 1);
  EXPECT_EQ(a2.plan_hash, ack.plan_hash);

  sched::SplitExportMsg se2;
  ASSERT_TRUE(sched::decode_split_export(frames[2].payload, se2));
  ASSERT_EQ(se2.snaps.size(), 2u);
  EXPECT_EQ(se2.pec, se.pec);
  EXPECT_EQ(se2.snaps[0].key, 11u);
  EXPECT_EQ(se2.snaps[1].key, 22u);
  ASSERT_EQ(se2.snaps[0].path.size(), 2u);
  EXPECT_EQ(se2.snaps[0].path[0].kind, SearchMove::Kind::kSelect);
  EXPECT_EQ(se2.snaps[0].path[0].node, 3u);
  EXPECT_EQ(se2.snaps[0].path[1].kind, SearchMove::Kind::kWithdraw);
  EXPECT_EQ(se2.snaps[0].sleep, (std::vector<std::uint64_t>{
                                    0x5a5a5a5a5a5a5a5aull, 3}));
  EXPECT_EQ(se2.snaps[0].route_dict, std::string("dict\x00\xff_payload", 14));
  EXPECT_EQ(se2.snaps[1].route_dict, std::string("dict\x00\xff_payload", 14));

  sched::SubtaskAssignMsg sa2;
  ASSERT_TRUE(sched::decode_subtask_assign(frames[3].payload, sa2));
  EXPECT_EQ(sa2.id, 9u);
  EXPECT_EQ(sa2.export_ok, 1);
  ASSERT_EQ(sa2.snaps.size(), 1u);
  EXPECT_EQ(sa2.snaps[0].key, 33u);

  sched::SubtaskDoneMsg sd2;
  ASSERT_TRUE(sched::decode_subtask_done(frames[4].payload, sd2));
  EXPECT_EQ(sd2.id, 9u);
  EXPECT_EQ(sd2.pec.pec, 4u);
  EXPECT_EQ(sd2.pec.stats.states_explored, 17u);
}

TEST(ShardFraming, ClusterPayloadDecodersRejectCorruptInput) {
  const std::string bootstrap = serve::encode_bootstrap(sample_bootstrap());
  sched::BootstrapAckMsg ack;
  ack.ok = 0;
  ack.error = "plan hash mismatch";
  const std::string ackb = sched::encode_bootstrap_ack(ack);
  sched::SplitExportMsg se;
  se.pec = 2;
  se.snaps = {sample_snapshot(1), sample_snapshot(2)};
  const std::string split = sched::encode_split_export(se);
  sched::SubtaskAssignMsg sa;
  sa.id = 1;
  sa.pec = 2;
  sa.snaps = {sample_snapshot(3)};
  const std::string assign = sched::encode_subtask_assign(sa);
  sched::SubtaskDoneMsg sd;
  sd.id = 1;
  sd.pec.pec = 2;
  const std::string done = sched::encode_subtask_done(sd);

  // Every strict prefix must be rejected and leave the output reset; every
  // payload with trailing garbage must be rejected (decoders are exact
  // inverses of their encoders).
  serve::BootstrapMsg bm;
  sched::BootstrapAckMsg am;
  sched::SplitExportMsg sm;
  sched::SubtaskAssignMsg aam;
  sched::SubtaskDoneMsg dm;
  for (std::size_t cut = 0; cut < bootstrap.size(); ++cut) {
    EXPECT_FALSE(serve::decode_bootstrap(bootstrap.substr(0, cut), bm))
        << "cut " << cut;
  }
  for (std::size_t cut = 0; cut < ackb.size(); ++cut) {
    EXPECT_FALSE(sched::decode_bootstrap_ack(ackb.substr(0, cut), am));
  }
  for (std::size_t cut = 0; cut < split.size(); ++cut) {
    EXPECT_FALSE(sched::decode_split_export(split.substr(0, cut), sm));
  }
  for (std::size_t cut = 0; cut < assign.size(); ++cut) {
    EXPECT_FALSE(sched::decode_subtask_assign(assign.substr(0, cut), aam));
  }
  for (std::size_t cut = 0; cut < done.size(); ++cut) {
    EXPECT_FALSE(sched::decode_subtask_done(done.substr(0, cut), dm));
  }
  EXPECT_FALSE(serve::decode_bootstrap(bootstrap + "x", bm));
  EXPECT_TRUE(bm.config_text.empty()) << "failed decode must reset output";
  EXPECT_FALSE(sched::decode_bootstrap_ack(ackb + "x", am));
  EXPECT_FALSE(sched::decode_split_export(split + "x", sm));
  EXPECT_TRUE(sm.snaps.empty());
  EXPECT_FALSE(sched::decode_subtask_assign(assign + "x", aam));
  EXPECT_FALSE(sched::decode_subtask_done(done + "x", dm));

  // Hostile counts: snapshot/target counts far beyond the bytes present must
  // hit the fits() bounds check, not a gigantic resize.
  std::string hostile;
  const std::uint32_t pec = 2;
  const std::uint32_t absurd = 0xfffffff0u;
  hostile.append(reinterpret_cast<const char*>(&pec), 4);
  hostile.append(reinterpret_cast<const char*>(&absurd), 4);
  EXPECT_FALSE(sched::decode_split_export(hostile, sm));
  EXPECT_TRUE(sm.snaps.empty());

  // Out-of-range enum bytes inside the bootstrap must be rejected even when
  // the byte layout is otherwise intact.
  serve::BootstrapMsg bad = sample_bootstrap();
  bad.engine_kind = 99;
  EXPECT_FALSE(serve::decode_bootstrap(serve::encode_bootstrap(bad), bm));
  bad = sample_bootstrap();
  bad.visited = 7;
  EXPECT_FALSE(serve::decode_bootstrap(serve::encode_bootstrap(bad), bm));
  bad = sample_bootstrap();
  bad.split_export = 2;  // flags are strictly 0/1
  EXPECT_FALSE(serve::decode_bootstrap(serve::encode_bootstrap(bad), bm));
  bad = sample_bootstrap();
  bad.max_failures = -1;
  EXPECT_FALSE(serve::decode_bootstrap(serve::encode_bootstrap(bad), bm));
}

// ---------------------------------------------------------------------------
// Worker-slot supervision arithmetic
// ---------------------------------------------------------------------------

TEST(ShardSupervision, RespawnBackoffSaturatesInsteadOfOverflowing) {
  // First respawn waits the base, then doubles per death with the shift
  // capped at 6 and the result clamped to [0, 2000] ms.
  EXPECT_EQ(sched::compute_respawn_backoff_ms(25, 0), 25);
  EXPECT_EQ(sched::compute_respawn_backoff_ms(25, 1), 25);
  EXPECT_EQ(sched::compute_respawn_backoff_ms(25, 2), 50);
  EXPECT_EQ(sched::compute_respawn_backoff_ms(25, 7), 1600);
  EXPECT_EQ(sched::compute_respawn_backoff_ms(25, 8), 1600) << "shift capped";
  EXPECT_EQ(sched::compute_respawn_backoff_ms(25, 1000), 1600);
  EXPECT_EQ(sched::compute_respawn_backoff_ms(100, 1000), 2000)
      << "clamped to the 2s ceiling";
  // The regression: a large base shifted left used to overflow int into a
  // negative gate, turning the backoff into a busy fork loop. It must
  // saturate at the ceiling instead.
  EXPECT_EQ(sched::compute_respawn_backoff_ms(std::numeric_limits<int>::max(),
                                              7),
            2000);
  EXPECT_EQ(sched::compute_respawn_backoff_ms(1 << 30, 40), 2000);
  EXPECT_EQ(sched::compute_respawn_backoff_ms(0, 5), 0);
}

// ---------------------------------------------------------------------------
// Worker session shutdown hygiene (the heartbeat-beacon join)
// ---------------------------------------------------------------------------

TEST(ShardWorkerSession, NoStrayFramesAfterSessionReturns) {
  // The regression: the heartbeat beacon used to run on a detached thread
  // that could outlive the session and write a late kHeartbeat into the
  // (reused) fd. run_worker_session must join the beacon before returning,
  // so once it has returned, nothing ever writes to the socket again.
  const Network net = make_ring(4);
  const PecSet pecs = compute_pecs(net);
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

  sched::ShardRunOptions opts;
  opts.heartbeat_interval_ms = 10;  // several beacons fire during the task
  const auto body = [](std::size_t, OutcomeStore&)
      -> std::vector<sched::ShardPecResult> {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    sched::ShardPecResult r;
    r.pec = 0;
    return {r};
  };
  int exit_code = -1;
  std::thread session([&] {
    exit_code = sched::run_worker_session(sv[1], 0, 1, net, pecs, 1, opts,
                                          body, nullptr);
  });

  const auto write_frame = [&](sched::MsgType type, std::string_view payload) {
    std::string out;
    sched::encode_frame(out, type, payload);
    ASSERT_EQ(send(sv[0], out.data(), out.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(out.size()));
  };
  sched::TaskAssignMsg ta;
  ta.task = 0;
  write_frame(sched::MsgType::kTaskAssign, sched::encode_task_assign(ta));

  // Drain until the worker reports the task done (heartbeats interleave).
  sched::FrameDecoder dec;
  sched::Frame f;
  char buf[1 << 12];
  bool done = false;
  while (!done) {
    const ssize_t r = read(sv[0], buf, sizeof buf);
    ASSERT_GT(r, 0);
    dec.feed(buf, static_cast<std::size_t>(r));
    while (dec.next(f) == sched::FrameDecoder::Status::kFrame) {
      if (f.type == sched::MsgType::kTaskDone) done = true;
    }
  }
  write_frame(sched::MsgType::kShutdown, "");
  session.join();
  EXPECT_EQ(exit_code, 0);

  // Drain whatever was written before the session returned; every frame
  // must still decode (a torn heartbeat would poison here)...
  for (;;) {
    const ssize_t r = recv(sv[0], buf, sizeof buf, MSG_DONTWAIT);
    if (r <= 0) break;
    dec.feed(buf, static_cast<std::size_t>(r));
  }
  while (dec.next(f) == sched::FrameDecoder::Status::kFrame) {
    EXPECT_EQ(f.type, sched::MsgType::kHeartbeat);
  }
  // ...and after a couple of beacon periods of quiet, nothing new may
  // arrive: the beacon thread is provably gone, not merely slow.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const ssize_t late = recv(sv[0], buf, sizeof buf, MSG_DONTWAIT);
  EXPECT_LT(late, 0) << "bytes written after run_worker_session returned";
  EXPECT_TRUE(errno == EAGAIN || errno == EWOULDBLOCK);
  close(sv[0]);
  close(sv[1]);
}

// ---------------------------------------------------------------------------
// Coordinator data flow, against a synthetic body (no Verifier involved)
// ---------------------------------------------------------------------------

TEST(ShardCoordinator, StreamsOutcomesBetweenTasksAcrossProcesses) {
  // Task 0 records outcomes for PEC `producer`; task 1 (dependent) asserts
  // it can see them in its worker-local store — i.e. the delivery made it
  // coordinator -> worker across process boundaries, whatever the shard
  // assignment. The body communicates the check result through `holds`.
  const Network net = make_ring(5);
  const PecSet pecs = compute_pecs(net);
  const PecId producer = pecs.routed()[0];

  sched::TaskGraph graph;
  graph.dependents = {{1}, {}};
  graph.waiting_on = {0, 1};
  std::vector<sched::ShardTaskSpec> specs(2);
  specs[0].pecs = {producer};
  specs[1].pecs = {static_cast<PecId>(producer + 1)};
  specs[1].deps = {producer};

  const auto make_outcome = [&net] {
    PecOutcome o;
    o.failures = FailureSet(net.topo.link_count());
    o.igp_cost.assign(net.topo.node_count(), 1);
    o.dp.entries.resize(net.topo.node_count());
    o.hash = 0xabc;
    return o;
  };

  for (const int shards : {1, 2}) {
    sched::ShardRunOptions opts;
    opts.shards = shards;
    const auto body = [&](std::size_t task, OutcomeStore& upstream)
        -> std::vector<sched::ShardPecResult> {
      sched::ShardPecResult r;
      r.pec = specs[task].pecs[0];
      if (task == 0) {
        // Contract: the body publishes recorded outcomes into the local
        // store; the worker ships the store's content when record is set.
        std::vector<PecOutcome> outs;
        outs.push_back(make_outcome());
        outs.push_back(make_outcome());
        outs.back().hash = 0xdef;
        upstream.put(producer, std::move(outs));
        r.record = true;
      } else {
        const auto got = upstream.get(producer);
        r.holds = got.size() == 2 && got[0].hash == 0xabc &&
                  got[1].hash == 0xdef &&
                  got[0].igp_cost.size() == net.topo.node_count();
      }
      return {r};
    };
    const sched::ShardRunResult rr =
        sched::run_sharded_task_graph(net, pecs, opts, graph, specs, body);
    ASSERT_TRUE(rr.ok) << rr.error;
    ASSERT_EQ(rr.reports.size(), 2u);
    for (const auto& rep : rr.reports) {
      EXPECT_TRUE(rep.holds) << "dependent worker did not see the outcomes "
                             << "(shards=" << shards << ")";
    }
    EXPECT_EQ(rr.stats.frames_received, 3u + (shards > 0 ? 0u : 0u))
        << "2 done frames + 1 outcome delivery";
    if (shards >= 2) {
      // The delivery had to cross the wire at least when the dependent landed
      // on a different worker; with locality-preferring assignment it may
      // also have been skipped — accept either, but the bytes must balance.
      EXPECT_GT(rr.stats.bytes_received, 0u);
    }
    EXPECT_EQ(rr.stats.tasks_reassigned, 0u);
  }
}

TEST(ShardCoordinator, DeterministicallyCrashingTaskErrorsOut) {
  // A body that dies on every attempt must exhaust the per-task
  // reassignment cap and surface a coordinator error — not fork forever.
  const Network net = make_ring(4);
  const PecSet pecs = compute_pecs(net);
  sched::TaskGraph graph;
  graph.dependents = {{}};
  graph.waiting_on = {0};
  std::vector<sched::ShardTaskSpec> specs(1);
  specs[0].pecs = {0};
  sched::ShardRunOptions opts;
  opts.shards = 2;
  opts.max_reassignments_per_task = 2;
  const auto body = [](std::size_t, OutcomeStore&)
      -> std::vector<sched::ShardPecResult> {
    throw std::runtime_error("boom");  // worker _exits; coordinator sees EOF
  };
  const sched::ShardRunResult rr =
      sched::run_sharded_task_graph(net, pecs, opts, graph, specs, body);
  EXPECT_FALSE(rr.ok);
  EXPECT_NE(rr.error.find("reassignment cap"), std::string::npos) << rr.error;
  EXPECT_GE(rr.stats.tasks_reassigned, 2u);
}

// ---------------------------------------------------------------------------
// Cross-process determinism: sharded Verifier runs vs the in-process
// scheduler
// ---------------------------------------------------------------------------

/// Everything the acceptance criteria call bit-identical: verdict, violation
/// multiset (message, failure set, and rendered trail all cross the wire),
/// and the aggregate state counters.
struct Fingerprint {
  bool holds = true;
  std::size_t pecs_verified = 0;
  std::size_t pecs_support = 0;
  std::uint64_t states_explored = 0;
  std::uint64_t states_stored = 0;
  std::uint64_t converged_states = 0;
  std::uint64_t failure_sets = 0;
  std::uint64_t policy_checks = 0;
  std::multiset<std::string> violations;

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) {
    return a.holds == b.holds && a.pecs_verified == b.pecs_verified &&
           a.pecs_support == b.pecs_support &&
           a.states_explored == b.states_explored &&
           a.states_stored == b.states_stored &&
           a.converged_states == b.converged_states &&
           a.failure_sets == b.failure_sets &&
           a.policy_checks == b.policy_checks && a.violations == b.violations;
  }
};

Fingerprint fingerprint(const VerifyResult& r) {
  Fingerprint fp;
  fp.holds = r.holds;
  fp.pecs_verified = r.pecs_verified;
  fp.pecs_support = r.pecs_support;
  fp.states_explored = r.total.states_explored;
  fp.states_stored = r.total.states_stored;
  fp.converged_states = r.total.converged_states;
  fp.failure_sets = r.total.failure_sets;
  fp.policy_checks = r.total.policy_checks;
  for (const auto& rep : r.reports) {
    for (const auto& v : rep.result.violations) {
      fp.violations.insert(rep.pec_str + "|" +
                           std::to_string(v.failures.hash()) + "|" + v.message +
                           "|" + v.trail_text);
    }
  }
  return fp;
}

VerifyResult run_verify(const Network& net, const Policy& policy,
                        VerifyOptions vo) {
  Verifier verifier(net, vo);
  return verifier.verify(policy);
}

TEST(ShardDeterminism, RandomCorpusMatchesInProcessAcrossShardsAndEngines) {
  // Corpus scaling: PLANKTON_DIFF_SEEDS drives the differential harness at
  // ~10x this suite's default (each instance here is 12 full verifications,
  // 9 of them forking worker pools).
  int count = 18;
  if (const char* v = std::getenv("PLANKTON_DIFF_SEEDS");
      v != nullptr && std::atoi(v) > 0) {
    count = std::max(6, std::atoi(v) / 10);
  }
  const SearchEngineKind engines[] = {SearchEngineKind::kDfs,
                                      SearchEngineKind::kBfs,
                                      SearchEngineKind::kPriority};
  for (int seed = 1; seed <= count; ++seed) {
    const RandomInstance inst =
        make_random_instance(static_cast<std::uint64_t>(seed));
    SCOPED_TRACE("instance seed " + std::to_string(seed) + " (" + inst.kind +
                 ", k=" + std::to_string(inst.max_failures) + ", policy " +
                 inst.policy->name() + ")");
    for (const SearchEngineKind engine : engines) {
      VerifyOptions vo;
      vo.cores = 1;
      vo.explore = inst.explore;
      vo.explore.engine_kind = engine;
      vo.explore.find_all_violations = true;  // no early-stop nondeterminism
      vo.explore.suppress_equivalent = false;
      const Fingerprint ref =
          fingerprint(run_verify(inst.net, *inst.policy, vo));
      for (const int shards : {1, 2, 4}) {
        VerifyOptions sv = vo;
        sv.shards = shards;
        const VerifyResult r = run_verify(inst.net, *inst.policy, sv);
        EXPECT_EQ(fingerprint(r), ref)
            << "shards=" << shards << " engine=" << to_string(engine)
            << " diverged from the in-process run";
      }
    }
  }
}

TEST(ShardDeterminism, DedupAcrossShardsMatchesDedupOffInProcess) {
  // The shard x dedup cross: batch PEC verification inside forked workers
  // (translated verdicts and native fallback re-runs both crossing the wire)
  // against the dedup-off in-process oracle. State counters are excluded —
  // dedup changes them by design — but verdicts, per-PEC reports, and
  // violation multisets with rendered trails must be bit-identical.
  int count = 10;
  if (const char* v = std::getenv("PLANKTON_DIFF_SEEDS");
      v != nullptr && std::atoi(v) > 0) {
    count = std::max(6, std::atoi(v) / 20);
  }
  std::uint64_t merged = 0;
  for (int seed = 1; seed <= count; ++seed) {
    const RandomInstance inst =
        make_random_instance(static_cast<std::uint64_t>(seed));
    SCOPED_TRACE("instance seed " + std::to_string(seed) + " (" + inst.kind +
                 ", policy " + inst.policy->name() + ")");
    VerifyOptions vo;
    vo.cores = 1;
    vo.explore = inst.explore;
    vo.explore.find_all_violations = true;
    vo.explore.suppress_equivalent = false;
    VerifyOptions off = vo;
    off.pec_dedup = false;
    const VerifyResult ref = run_verify(inst.net, *inst.policy, off);
    const Fingerprint ref_fp = fingerprint(ref);
    for (const int shards : {1, 2, 4}) {
      VerifyOptions sv = vo;
      sv.shards = shards;
      const VerifyResult r = run_verify(inst.net, *inst.policy, sv);
      merged += r.pecs_deduped;
      const Fingerprint fp = fingerprint(r);
      EXPECT_EQ(fp.holds, ref_fp.holds) << "shards=" << shards;
      EXPECT_EQ(fp.pecs_verified, ref_fp.pecs_verified) << "shards=" << shards;
      EXPECT_EQ(fp.pecs_support, ref_fp.pecs_support) << "shards=" << shards;
      EXPECT_EQ(fp.violations, ref_fp.violations) << "shards=" << shards;
    }
  }
  EXPECT_GT(merged, 0u) << "corpus never exercised a translated verdict "
                           "across the wire";
}

TEST(ShardDeterminism, TranslatedVerdictsCrossTheWire) {
  // Fat-tree all-PEC loop check: one class, so the workers ship one native
  // exploration plus translated member verdicts. The sharded run must match
  // the in-process dedup-on run bit for bit, counters included, and the
  // translated flag must survive the PecDoneMsg round trip (the coordinator
  // excludes translated stats from the aggregate exactly like the
  // in-process merge).
  FatTreeOptions o;
  o.k = 6;
  const FatTree ft = make_fat_tree(o);
  const LoopFreedomPolicy policy;
  VerifyOptions vo;
  vo.explore.find_all_violations = true;
  const VerifyResult in_proc = run_verify(ft.net, policy, vo);
  EXPECT_EQ(in_proc.pecs_deduped, ft.edges.size() - 1);
  for (const int shards : {1, 2}) {
    VerifyOptions sv = vo;
    sv.shards = shards;
    const VerifyResult r = run_verify(ft.net, policy, sv);
    EXPECT_EQ(fingerprint(r), fingerprint(in_proc)) << "shards=" << shards;
    EXPECT_EQ(r.pecs_deduped, in_proc.pecs_deduped);
    std::size_t translated = 0;
    for (const auto& rep : r.reports) {
      if (rep.translated_from != kNoPec) ++translated;
    }
    EXPECT_EQ(translated, ft.edges.size() - 1) << "shards=" << shards;
  }
}

TEST(ShardDeterminism, Figure6MatchesInProcessAtEveryShardCount) {
  const Figure6 fx;
  const ReachabilityPolicy policy({fx.r6});
  VerifyOptions vo;
  vo.explore.find_all_violations = true;
  const Fingerprint ref = fingerprint(run_verify(fx.net, policy, vo));
  EXPECT_GT(ref.converged_states, 0u);
  for (const int shards : {1, 2, 4}) {
    VerifyOptions sv = vo;
    sv.shards = shards;
    EXPECT_EQ(fingerprint(run_verify(fx.net, policy, sv)), ref)
        << "shards=" << shards;
  }
}

TEST(ShardDeterminism, FatTreeK6MatchesInProcessAndWorkStealing) {
  FatTreeOptions o;
  o.k = 6;
  const FatTree ft = make_fat_tree(o);
  const LoopFreedomPolicy policy;
  VerifyOptions vo;
  vo.explore.find_all_violations = true;
  const Fingerprint serial = fingerprint(run_verify(ft.net, policy, vo));

  VerifyOptions steal = vo;
  steal.cores = 4;
  steal.scheduler = sched::SchedulerKind::kWorkStealing;
  EXPECT_EQ(fingerprint(run_verify(ft.net, policy, steal)), serial)
      << "work-stealing scheduler diverged (reference for the shard runs)";

  for (const int shards : {1, 4}) {
    VerifyOptions sv = vo;
    sv.shards = shards;
    const VerifyResult r = run_verify(ft.net, policy, sv);
    EXPECT_EQ(fingerprint(r), serial) << "shards=" << shards;
    EXPECT_EQ(r.shard.tasks_per_shard.size(), static_cast<std::size_t>(shards));
    std::uint64_t ran = 0;
    for (const std::uint64_t t : r.shard.tasks_per_shard) ran += t;
    EXPECT_EQ(ran, r.scc_count) << "every SCC task ran in some shard";
  }
}

TEST(ShardDeterminism, DependencyHeavyWorkloadStreamsOutcomes) {
  // Enterprise VII reaches the DC prefix through recursive statics: the
  // sharded run must deliver upstream outcomes over the wire (support PECs
  // run before their dependents, possibly in different workers).
  const Enterprise ent = make_enterprise("VII");
  const ReachabilityPolicy policy({ent.access.front()});
  VerifyOptions vo;
  vo.explore.find_all_violations = true;
  const VerifyResult ref =
      Verifier(ent.net, vo).verify_address(IpAddr(10, 200, 0, 1), policy);
  ASSERT_GT(ref.pecs_support, 0u) << "workload must exercise dependencies";

  for (const int shards : {1, 2}) {
    VerifyOptions sv = vo;
    sv.shards = shards;
    const VerifyResult r =
        Verifier(ent.net, sv).verify_address(IpAddr(10, 200, 0, 1), policy);
    EXPECT_EQ(fingerprint(r), fingerprint(ref)) << "shards=" << shards;
    EXPECT_GT(r.shard.frames_received, 0u);
    EXPECT_GT(r.shard.outcome_bytes_received, 0u)
        << "recorded outcomes must have crossed the wire";
  }
}

TEST(ShardDeterminism, CyclicSccTaskMatchesInProcess) {
  // The paper's footnote case: mutual recursive statics form a PEC SCC of
  // size 2, which runs as ONE multi-PEC task. Under the current prototype
  // semantics both mates degenerate identically (each skips exploration
  // because its mate's outcomes cannot exist yet — Explorer's
  // ups.empty() -> kContinue), so this pins that the sharded worker body
  // mirrors the in-process behaviour *exactly* on the unsupported_scc path:
  // same mid-task outcome publication, same mate-decrement replay of the
  // eviction counters. If SCC semantics ever improve (fixpoint iteration),
  // this is the test that must keep passing.
  Network net;
  const NodeId a = net.add_device("a");
  const NodeId b = net.add_device("b");
  const NodeId c = net.add_device("c");
  net.topo.add_link(a, b);
  net.topo.add_link(b, c);
  for (const NodeId n : {a, b, c}) net.device(n).ospf.enabled = true;
  net.device(a).ospf.originated.push_back(*Prefix::parse("10.0.0.0/16"));
  net.device(c).ospf.originated.push_back(*Prefix::parse("20.0.0.0/16"));
  StaticRoute sa;  // a: shadow half of c's space, via an IP inside a's own
  sa.dst = *Prefix::parse("20.0.0.0/17");
  sa.via_ip = IpAddr(10, 0, 0, 1);
  net.device(a).statics.push_back(sa);
  StaticRoute sc;  // c: the mirror image
  sc.dst = *Prefix::parse("10.0.0.0/17");
  sc.via_ip = IpAddr(20, 0, 0, 1);
  net.device(c).statics.push_back(sc);

  const LoopFreedomPolicy policy;
  VerifyOptions vo;
  vo.explore.find_all_violations = true;
  const VerifyResult ref = run_verify(net, policy, vo);
  EXPECT_TRUE(ref.unsupported_scc) << "workload must exercise a >1-PEC SCC";
  EXPECT_GT(fingerprint(ref).converged_states, 0u);
  for (const int shards : {1, 2}) {
    VerifyOptions sv = vo;
    sv.shards = shards;
    EXPECT_EQ(fingerprint(run_verify(net, policy, sv)), fingerprint(ref))
        << "shards=" << shards;
  }
}

TEST(ShardDeterminism, ViolationVerdictSurvivesEarlyStop) {
  // Default mode (stop at first violation): the sharded verdict and the
  // reported counterexample must match the in-process run even though both
  // paths stop dispatching early.
  FatTreeOptions o;
  o.k = 4;
  o.statics = FatTreeOptions::CoreStatics::kBroken;
  const FatTree ft = make_fat_tree(o);
  const LoopFreedomPolicy policy;
  VerifyOptions vo;
  const VerifyResult ref = run_verify(ft.net, policy, vo);
  ASSERT_FALSE(ref.holds);

  VerifyOptions sv = vo;
  sv.shards = 2;
  const VerifyResult r = run_verify(ft.net, policy, sv);
  EXPECT_FALSE(r.holds);
  ASSERT_FALSE(r.reports.empty());
  bool found = false;
  for (const auto& rep : r.reports) found = found || !rep.result.violations.empty();
  EXPECT_TRUE(found) << "violated verdict must carry a counterexample";
  EXPECT_FALSE(r.first_violation(ft.net.topo).empty());
}

// ---------------------------------------------------------------------------
// Crash recovery
// ---------------------------------------------------------------------------

TEST(ShardCrashRecovery, SigkilledWorkerIsReplacedAndResultIsIdentical) {
  // Kill the first two workers mid-task (the delay guarantees the SIGKILL
  // lands while the task is in flight, before any result bytes are
  // written). The coordinator must reassign both tasks, respawn workers,
  // and converge to the bit-identical verdict.
  const Enterprise ent = make_enterprise("VII");
  const ReachabilityPolicy policy({ent.access.front()});
  VerifyOptions vo;
  vo.explore.find_all_violations = true;
  const Fingerprint ref = fingerprint(
      Verifier(ent.net, vo).verify_address(IpAddr(10, 200, 0, 1), policy));

  VerifyOptions sv = vo;
  sv.shards = 2;
  sv.shard_test_worker_delay_ms = 50;
  std::atomic<int> kills{0};
  sv.shard_test_on_assign = [&kills](int, pid_t pid, std::size_t) {
    if (kills.fetch_add(1) < 2) kill(pid, SIGKILL);
  };
  const VerifyResult r =
      Verifier(ent.net, sv).verify_address(IpAddr(10, 200, 0, 1), policy);
  EXPECT_EQ(fingerprint(r), ref)
      << "crash recovery changed the merged verdict";
  EXPECT_GE(r.shard.tasks_reassigned, 2u);
  EXPECT_GE(r.shard.workers_respawned, 2u);
}

TEST(ShardCrashRecovery, SoleWorkerKilledStillConverges) {
  // shards=1: the only worker dies mid-task; recovery must respawn it (no
  // sibling to steal the task) and still match the reference.
  const Figure6 fx;
  const ReachabilityPolicy policy({fx.r6});
  VerifyOptions vo;
  vo.explore.find_all_violations = true;
  const Fingerprint ref = fingerprint(run_verify(fx.net, policy, vo));

  VerifyOptions sv = vo;
  sv.shards = 1;
  sv.shard_test_worker_delay_ms = 50;
  std::atomic<bool> killed{false};
  sv.shard_test_on_assign = [&killed](int, pid_t pid, std::size_t) {
    if (!killed.exchange(true)) kill(pid, SIGKILL);
  };
  const VerifyResult r = run_verify(fx.net, policy, sv);
  EXPECT_EQ(fingerprint(r), ref);
  EXPECT_GE(r.shard.tasks_reassigned, 1u);
  EXPECT_GE(r.shard.workers_respawned, 1u);
}

// ---------------------------------------------------------------------------
// CI smoke (cheap, named for the dedicated 2-shard CI step)
// ---------------------------------------------------------------------------

TEST(ShardSmoke, TwoShardFatTreeLoopCheck) {
  FatTreeOptions o;
  o.k = 4;
  const FatTree ft = make_fat_tree(o);
  const LoopFreedomPolicy policy;
  VerifyOptions vo;
  vo.explore.find_all_violations = true;
  const Fingerprint ref = fingerprint(run_verify(ft.net, policy, vo));
  VerifyOptions sv = vo;
  sv.shards = 2;
  const VerifyResult r = run_verify(ft.net, policy, sv);
  EXPECT_EQ(fingerprint(r), ref);
  EXPECT_TRUE(r.holds);
  EXPECT_GT(r.shard.frames_sent, 0u);
}

}  // namespace
}  // namespace plankton
