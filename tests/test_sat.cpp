// CDCL solver correctness: crafted formulas + randomized cross-check against
// brute-force enumeration (property test).
#include <gtest/gtest.h>

#include <random>

#include "baselines/sat/solver.hpp"

namespace plankton::sat {
namespace {

TEST(SatSolver, TrivialSat) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_binary(pos(a), pos(b));
  s.add_unit(neg(a));
  EXPECT_EQ(s.solve(), Outcome::kSat);
  EXPECT_FALSE(s.value(a));
  EXPECT_TRUE(s.value(b));
}

TEST(SatSolver, TrivialUnsat) {
  Solver s;
  const Var a = s.new_var();
  s.add_unit(pos(a));
  EXPECT_FALSE(s.add_unit(neg(a)));
  EXPECT_EQ(s.solve(), Outcome::kUnsat);
}

TEST(SatSolver, PigeonHole3Into2) {
  // PHP(3,2): 3 pigeons, 2 holes — classically UNSAT and requires real
  // conflict analysis.
  Solver s;
  Var p[3][2];
  for (auto& row : p) {
    for (auto& v : row) v = s.new_var();
  }
  for (int i = 0; i < 3; ++i) s.add_binary(pos(p[i][0]), pos(p[i][1]));
  for (int h = 0; h < 2; ++h) {
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) {
        s.add_binary(neg(p[i][h]), neg(p[j][h]));
      }
    }
  }
  EXPECT_EQ(s.solve(), Outcome::kUnsat);
}

TEST(SatSolver, ChainImplication) {
  Solver s;
  constexpr int kN = 200;
  std::vector<Var> v;
  for (int i = 0; i < kN; ++i) v.push_back(s.new_var());
  for (int i = 0; i + 1 < kN; ++i) s.add_binary(neg(v[i]), pos(v[i + 1]));
  s.add_unit(pos(v[0]));
  ASSERT_EQ(s.solve(), Outcome::kSat);
  for (int i = 0; i < kN; ++i) EXPECT_TRUE(s.value(v[i])) << i;
}

/// Brute-force satisfiability of a CNF over <= 16 variables.
bool brute_force_sat(int num_vars, const std::vector<std::vector<Lit>>& clauses) {
  for (std::uint32_t m = 0; m < (1u << num_vars); ++m) {
    bool all = true;
    for (const auto& cl : clauses) {
      bool sat_clause = false;
      for (const Lit l : cl) {
        const bool val = ((m >> var_of(l)) & 1) != 0;
        if (val != sign_of(l)) {
          sat_clause = true;
          break;
        }
      }
      if (!sat_clause) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

class RandomCnf : public ::testing::TestWithParam<int> {};

TEST_P(RandomCnf, MatchesBruteForce) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  for (int iter = 0; iter < 40; ++iter) {
    const int num_vars = 4 + static_cast<int>(rng() % 9);  // 4..12
    const int num_clauses = 3 + static_cast<int>(rng() % (3 * num_vars));
    std::vector<std::vector<Lit>> clauses;
    Solver s;
    for (int v = 0; v < num_vars; ++v) s.new_var();
    bool consistent = true;
    for (int ci = 0; ci < num_clauses; ++ci) {
      const int len = 1 + static_cast<int>(rng() % 3);
      std::vector<Lit> cl;
      for (int k = 0; k < len; ++k) {
        const Var v = rng() % num_vars;
        cl.push_back(rng() % 2 != 0 ? pos(v) : neg(v));
      }
      clauses.push_back(cl);
      consistent = s.add_clause(cl) && consistent;
    }
    const bool expected = brute_force_sat(num_vars, clauses);
    if (!consistent) {
      EXPECT_FALSE(expected) << "solver reported root conflict on SAT formula";
      continue;
    }
    const Outcome oc = s.solve();
    ASSERT_NE(oc, Outcome::kTimeout);
    EXPECT_EQ(oc == Outcome::kSat, expected)
        << "seed " << GetParam() << " iter " << iter;
    if (oc == Outcome::kSat) {
      // The produced model must satisfy every clause.
      for (const auto& cl : clauses) {
        bool ok = false;
        for (const Lit l : cl) {
          if (s.value(var_of(l)) != sign_of(l)) {
            ok = true;
            break;
          }
        }
        EXPECT_TRUE(ok);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCnf, ::testing::Range(1, 9));

}  // namespace
}  // namespace plankton::sat
