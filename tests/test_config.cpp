// Configuration model and the text-format parser.
#include <gtest/gtest.h>

#include "config/parser.hpp"

namespace plankton {
namespace {

TEST(Parser, FullFeatureRoundTrip) {
  const char* text = R"(
# full feature exercise
node r1 loopback 1.1.1.1
node r2 loopback 2.2.2.2
node r3
link r1 r2 cost 10
link r2 r3 cost 5 cost-ba 7
ospf r1 enable
ospf r2 originate 10.2.0.0/16
ospf r3 no-loopback
static r1 172.16.0.0/12 via r2
static r2 172.17.0.0/16 via-ip 1.1.1.1
static r3 0.0.0.0/0 drop
bgp r1 asn 65001
bgp r2 asn 65002
bgp-session r1 r2 ebgp
bgp r1 originate 203.0.113.0/24
route-map r1 r2 import permit match-prefix 203.0.0.0/16 or-longer \
    set-local-pref 250 add-community PEERS
route-map r2 r1 export deny match-community PEERS
route-map-default r2 r1 export permit
)";
  const ParsedNetwork parsed = parse_network_config(text);
  const Network& net = parsed.net;
  ASSERT_EQ(net.devices.size(), 3u);
  EXPECT_EQ(net.device(0).loopback, IpAddr(1, 1, 1, 1));
  EXPECT_EQ(net.topo.link_count(), 2u);
  const Link& l2 = net.topo.link(1);
  EXPECT_EQ(l2.cost_ab, 5u);
  EXPECT_EQ(l2.cost_ba, 7u);
  EXPECT_TRUE(net.device(0).ospf.enabled);
  EXPECT_EQ(net.device(1).ospf.originated.size(), 1u);
  ASSERT_EQ(net.device(0).statics.size(), 1u);
  EXPECT_EQ(net.device(0).statics[0].via_neighbor, 1u);
  ASSERT_EQ(net.device(1).statics.size(), 1u);
  EXPECT_EQ(*net.device(1).statics[0].via_ip, IpAddr(1, 1, 1, 1));
  EXPECT_TRUE(net.device(2).statics[0].drop);
  ASSERT_TRUE(net.device(0).bgp.has_value());
  EXPECT_EQ(net.device(0).bgp->asn, 65001u);
  const auto* session = net.device(0).bgp->session_with(1);
  ASSERT_NE(session, nullptr);
  ASSERT_EQ(session->import.clauses.size(), 1u);
  const auto& clause = session->import.clauses[0];
  EXPECT_EQ(clause.match.prefix_mode, RouteMapMatch::PrefixMode::kOrLonger);
  EXPECT_EQ(*clause.action.set_local_pref, 250u);
  ASSERT_TRUE(clause.action.add_community.has_value());
  EXPECT_EQ(parsed.communities.at("PEERS"), *clause.action.add_community);
  const auto* back = net.device(1).bgp->session_with(0);
  ASSERT_NE(back, nullptr);
  EXPECT_FALSE(back->export_.clauses[0].action.permit);
  EXPECT_TRUE(back->export_.default_permit);
  EXPECT_TRUE(net.validate().empty());
}

TEST(Parser, ReportsLineNumbers) {
  try {
    parse_network_config("node a\nlink a b\n");
    FAIL() << "expected ConfigParseError";
  } catch (const ConfigParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(Parser, RejectsDuplicateNode) {
  EXPECT_THROW(parse_network_config("node a\nnode a\n"), ConfigParseError);
}

TEST(Parser, RejectsUnknownDirective) {
  EXPECT_THROW(parse_network_config("frobnicate x\n"), ConfigParseError);
}

TEST(Parser, RejectsBadPrefix) {
  EXPECT_THROW(parse_network_config("node a\nospf a originate 10.0.0.0/40\n"),
               ConfigParseError);
}

TEST(Parser, RejectsOutOfRangeNumbers) {
  // Untrusted socket input (the serve daemon): a number wider than the field
  // it lands in must be a parse error, never a silent truncation.
  const char* base =
      "node a\nnode b\nlink a b\n"
      "bgp a asn 65001\nbgp b asn 65002\nbgp-session a b ebgp\n";
  // prepend is u8.
  EXPECT_THROW(
      parse_network_config(std::string(base) +
                           "route-map a b import permit prepend 256\n"),
      ConfigParseError);
  EXPECT_NO_THROW(
      parse_network_config(std::string(base) +
                           "route-map a b import permit prepend 255\n"));
  // match-max-path-len is u16.
  EXPECT_THROW(
      parse_network_config(
          std::string(base) +
          "route-map a b import deny match-max-path-len 65536\n"),
      ConfigParseError);
  // Link costs are u32.
  EXPECT_THROW(parse_network_config("node a\nnode b\nlink a b cost 4294967296\n"),
               ConfigParseError);
  // Negative numbers never silently wrap.
  EXPECT_THROW(parse_network_config("node a\nnode b\nlink a b cost -1\n"),
               ConfigParseError);
}

TEST(Parser, RejectsDanglingLinkOption) {
  EXPECT_THROW(parse_network_config("node a\nnode b\nlink a b cost\n"),
               ConfigParseError);
  EXPECT_THROW(parse_network_config("node a\nnode b\nlink a b cost 5 cost-ba\n"),
               ConfigParseError);
}

TEST(Parser, NothrowOverloadReportsErrorsWithoutThrowing) {
  ParsedNetwork out;
  std::string error;
  ASSERT_TRUE(parse_network_config("node a\nnode b\nlink a b\n", out, error));
  EXPECT_TRUE(error.empty());
  EXPECT_EQ(out.net.devices.size(), 2u);

  EXPECT_FALSE(parse_network_config("node a\nnode a\n", out, error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_TRUE(out.net.devices.empty())
      << "a failed parse must not leave partial state in `out`";
}

TEST(Validate, CatchesAsymmetricSessions) {
  Network net;
  const NodeId a = net.add_device("a", IpAddr(1, 1, 1, 1));
  const NodeId b = net.add_device("b", IpAddr(2, 2, 2, 2));
  net.topo.add_link(a, b);
  net.device(a).bgp.emplace();
  net.device(b).bgp.emplace();
  BgpSession s;
  s.peer = b;
  net.device(a).bgp->sessions.push_back(s);  // one-sided
  const auto problems = net.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("symmetrically"), std::string::npos);
}

TEST(Validate, CatchesEbgpWithoutLink) {
  Network net;
  const NodeId a = net.add_device("a");
  const NodeId b = net.add_device("b");
  net.device(a).bgp.emplace();
  net.device(b).bgp.emplace();
  for (const auto [x, y] : {std::pair{a, b}, std::pair{b, a}}) {
    BgpSession s;
    s.peer = y;
    net.device(x).bgp->sessions.push_back(s);
  }
  const auto problems = net.validate();
  EXPECT_FALSE(problems.empty());
}

TEST(Validate, CatchesAmbiguousStatic) {
  Network net;
  const NodeId a = net.add_device("a");
  const NodeId b = net.add_device("b");
  net.topo.add_link(a, b);
  StaticRoute sr;
  sr.dst = *Prefix::parse("10.0.0.0/8");
  sr.via_neighbor = b;
  sr.drop = true;  // two modes at once
  net.device(a).statics.push_back(sr);
  EXPECT_FALSE(net.validate().empty());
}

TEST(Config, MentionedPrefixesCoverAllSources) {
  const ParsedNetwork parsed = parse_network_config(R"(
node a loopback 9.9.9.9
node b
link a b
ospf a originate 10.0.0.0/8
static b 172.16.0.0/12 via a
bgp a asn 1
bgp b asn 2
bgp-session a b ebgp
bgp a originate 203.0.113.0/24
route-map b a import permit match-prefix 198.51.100.0/24
)");
  const auto prefixes = parsed.net.mentioned_prefixes();
  auto has = [&prefixes](const char* text) {
    return std::find(prefixes.begin(), prefixes.end(), *Prefix::parse(text)) !=
           prefixes.end();
  };
  EXPECT_TRUE(has("10.0.0.0/8"));
  EXPECT_TRUE(has("172.16.0.0/12"));
  EXPECT_TRUE(has("203.0.113.0/24"));
  EXPECT_TRUE(has("198.51.100.0/24"));
  EXPECT_TRUE(has("9.9.9.9/32"));
}

TEST(Config, AdminDistanceOrdering) {
  EXPECT_LT(admin_distance(Protocol::kConnected), admin_distance(Protocol::kStatic));
  EXPECT_LT(admin_distance(Protocol::kStatic), admin_distance(Protocol::kEbgp));
  EXPECT_LT(admin_distance(Protocol::kEbgp), admin_distance(Protocol::kOspf));
  EXPECT_LT(admin_distance(Protocol::kOspf), admin_distance(Protocol::kIbgp));
}

}  // namespace
}  // namespace plankton
