// End-to-end smoke tests: the full pipeline on small canonical networks.
#include <gtest/gtest.h>

#include "core/verifier.hpp"
#include "workload/fat_tree.hpp"
#include "workload/ring.hpp"

namespace plankton {
namespace {

TEST(Smoke, RingReachabilityNoFailures) {
  const Network net = make_ring(4);
  Verifier verifier(net, {});
  std::vector<NodeId> sources;
  for (NodeId n = 0; n < net.topo.node_count(); ++n) sources.push_back(n);
  const ReachabilityPolicy policy(sources);
  const VerifyResult r = verifier.verify(policy);
  EXPECT_TRUE(r.holds) << r.first_violation(net.topo);
  EXPECT_EQ(r.pecs_verified, 1u);
}

TEST(Smoke, RingReachabilitySurvivesOneFailure) {
  const Network net = make_ring(6);
  VerifyOptions opts;
  opts.explore.max_failures = 1;
  Verifier verifier(net, opts);
  const ReachabilityPolicy policy({3});
  const VerifyResult r = verifier.verify(policy);
  EXPECT_TRUE(r.holds) << r.first_violation(net.topo);
  EXPECT_GE(r.total.failure_sets, 2u);  // no-failure case + at least one failure
}

TEST(Smoke, RingReachabilityFailsWithTwoFailures) {
  const Network net = make_ring(6);
  VerifyOptions opts;
  opts.explore.max_failures = 2;
  Verifier verifier(net, opts);
  const ReachabilityPolicy policy({3});
  const VerifyResult r = verifier.verify(policy);
  EXPECT_FALSE(r.holds);  // two failures can cut node 3 from the origin
}

TEST(Smoke, FatTreeOspfLoopFree) {
  FatTreeOptions o;
  o.k = 4;
  const FatTree ft = make_fat_tree(o);
  Verifier verifier(ft.net, {});
  const LoopFreedomPolicy policy;
  const VerifyResult r = verifier.verify(policy);
  EXPECT_TRUE(r.holds) << r.first_violation(ft.net.topo);
  EXPECT_EQ(r.pecs_verified, ft.edges.size());
}

TEST(Smoke, FatTreeMatchingStaticsStillLoopFree) {
  FatTreeOptions o;
  o.k = 4;
  o.statics = FatTreeOptions::CoreStatics::kMatching;
  const FatTree ft = make_fat_tree(o);
  Verifier verifier(ft.net, {});
  const LoopFreedomPolicy policy;
  const VerifyResult r = verifier.verify(policy);
  EXPECT_TRUE(r.holds) << r.first_violation(ft.net.topo);
}

TEST(Smoke, FatTreeBrokenStaticsCreateLoop) {
  FatTreeOptions o;
  o.k = 4;
  o.statics = FatTreeOptions::CoreStatics::kBroken;
  const FatTree ft = make_fat_tree(o);
  Verifier verifier(ft.net, {});
  const LoopFreedomPolicy policy;
  const VerifyResult r = verifier.verify(policy);
  EXPECT_FALSE(r.holds);
  ASSERT_FALSE(r.reports.empty());
}

TEST(Smoke, FatTreeReachabilityAllEdges) {
  FatTreeOptions o;
  o.k = 4;
  const FatTree ft = make_fat_tree(o);
  Verifier verifier(ft.net, {});
  const ReachabilityPolicy policy({ft.edges.begin(), ft.edges.end()});
  const VerifyResult r = verifier.verify(policy);
  EXPECT_TRUE(r.holds) << r.first_violation(ft.net.topo);
}

TEST(Smoke, MultiCoreMatchesSingleCore) {
  FatTreeOptions o;
  o.k = 4;
  o.statics = FatTreeOptions::CoreStatics::kBroken;
  const FatTree ft = make_fat_tree(o);
  VerifyOptions one;
  one.cores = 1;
  VerifyOptions four;
  four.cores = 4;
  const LoopFreedomPolicy policy;
  const VerifyResult r1 = Verifier(ft.net, one).verify(policy);
  const VerifyResult r4 = Verifier(ft.net, four).verify(policy);
  EXPECT_EQ(r1.holds, r4.holds);
}

}  // namespace
}  // namespace plankton
