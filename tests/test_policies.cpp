// The seven built-in policies, exercised end to end on purpose-built
// networks (each policy both passing and failing).
#include <gtest/gtest.h>

#include "core/verifier.hpp"
#include "workload/fat_tree.hpp"
#include "workload/ring.hpp"

namespace plankton {
namespace {

/// Line a--b--c, c originates 10.0.0.0/24.
Network line3() {
  Network net;
  const NodeId a = net.add_device("a");
  const NodeId b = net.add_device("b");
  const NodeId c = net.add_device("c");
  net.topo.add_link(a, b);
  net.topo.add_link(b, c);
  for (NodeId n = 0; n < 3; ++n) {
    net.device(n).ospf.enabled = true;
    net.device(n).ospf.advertise_loopback = false;
  }
  net.device(c).ospf.originated.push_back(*Prefix::parse("10.0.0.0/24"));
  return net;
}

TEST(Policies, ReachabilityPassAndFail) {
  Network net = line3();
  {
    Verifier v(net, {});
    const ReachabilityPolicy p({0});
    EXPECT_TRUE(v.verify(p).holds);
  }
  {
    StaticRoute sr;
    sr.dst = *Prefix::parse("10.0.0.0/24");
    sr.drop = true;
    net.device(1).statics.push_back(sr);
    Verifier v(net, {});
    const ReachabilityPolicy p({0});
    const VerifyResult r = v.verify(p);
    EXPECT_FALSE(r.holds);
    EXPECT_NE(r.first_violation(net.topo).find("a"), std::string::npos);
  }
}

TEST(Policies, BlackholeFreedom) {
  Network net = line3();
  {
    Verifier v(net, {});
    const BlackholeFreedomPolicy p({0, 1});
    EXPECT_TRUE(v.verify(p).holds);
  }
  {
    // Under one failure the line partitions: black hole appears.
    VerifyOptions vo;
    vo.explore.max_failures = 1;
    Verifier v(net, vo);
    const BlackholeFreedomPolicy p({0, 1});
    EXPECT_FALSE(v.verify(p).holds);
  }
}

TEST(Policies, BoundedPathLength) {
  const Network net = line3();
  Verifier v(net, {});
  const BoundedPathLengthPolicy ok({0}, 2);
  EXPECT_TRUE(v.verify(ok).holds);
  const BoundedPathLengthPolicy tight({0}, 1);
  EXPECT_FALSE(v.verify(tight).holds);
}

TEST(Policies, WaypointOnLine) {
  const Network net = line3();
  Verifier v(net, {});
  const WaypointPolicy through_b({0}, {1});
  EXPECT_TRUE(v.verify(through_b).holds);
  const WaypointPolicy through_a({1}, {0});  // b's path to c never crosses a
  EXPECT_FALSE(v.verify(through_a).holds);
}

TEST(Policies, MultipathConsistencyFailsOnDivergentEcmp) {
  // Diamond: s -> {l, r} equal cost; r black-holes via a static drop while
  // l delivers: ECMP branches disagree.
  Network net;
  const NodeId s = net.add_device("s");
  const NodeId l = net.add_device("l");
  const NodeId r = net.add_device("r");
  const NodeId d = net.add_device("d");
  net.topo.add_link(s, l, 1);
  net.topo.add_link(s, r, 1);
  net.topo.add_link(l, d, 1);
  net.topo.add_link(r, d, 1);
  for (NodeId n = 0; n < 4; ++n) {
    net.device(n).ospf.enabled = true;
    net.device(n).ospf.advertise_loopback = false;
  }
  net.device(d).ospf.originated.push_back(*Prefix::parse("10.0.0.0/24"));
  {
    Verifier v(net, {});
    const MultipathConsistencyPolicy p({s});
    EXPECT_TRUE(v.verify(p).holds) << "symmetric diamond is consistent";
  }
  {
    StaticRoute drop;
    drop.dst = *Prefix::parse("10.0.0.0/24");
    drop.drop = true;
    net.device(r).statics.push_back(drop);
    Verifier v(net, {});
    const MultipathConsistencyPolicy p({s});
    EXPECT_FALSE(v.verify(p).holds);
  }
}

TEST(Policies, PathConsistencyAcrossSymmetricDevices) {
  FatTreeOptions o;
  o.k = 4;
  const FatTree ft = make_fat_tree(o);
  // Edges of pods 1..3 are symmetric w.r.t. pod 0's first prefix.
  {
    Verifier v(ft.net, {});
    const PathConsistencyPolicy p({ft.edge_at(1, 0), ft.edge_at(2, 0)});
    EXPECT_TRUE(v.verify_address(ft.edge_prefixes[0].addr(), p).holds);
  }
  // Edge in the destination pod vs a remote pod: different path lengths.
  {
    Verifier v(ft.net, {});
    const PathConsistencyPolicy p({ft.edge_at(0, 1), ft.edge_at(2, 0)});
    EXPECT_FALSE(v.verify_address(ft.edge_prefixes[0].addr(), p).holds);
  }
}

TEST(Policies, LoopPolicyConsidersAllSources) {
  // The loop lives off the sources' paths; loop freedom must still fail.
  Network net = line3();
  const NodeId x = net.add_device("x");
  const NodeId y = net.add_device("y");
  net.topo.add_link(x, y);
  net.topo.add_link(2, x);
  net.device(x).ospf.enabled = true;
  net.device(y).ospf.enabled = true;
  StaticRoute sx;  // x and y point at each other for an unrelated prefix
  sx.dst = *Prefix::parse("99.0.0.0/8");
  sx.via_neighbor = y;
  net.device(x).statics.push_back(sx);
  StaticRoute sy;
  sy.dst = *Prefix::parse("99.0.0.0/8");
  sy.via_neighbor = x;
  net.device(y).statics.push_back(sy);
  Verifier v(net, {});
  const LoopFreedomPolicy p;
  const VerifyResult r = v.verify(p);
  EXPECT_FALSE(r.holds);
}

TEST(Policies, ViolationCarriesTrailAndFailureSet) {
  const Network net = make_ring(6);
  VerifyOptions vo;
  vo.explore.max_failures = 2;
  Verifier v(net, vo);
  const ReachabilityPolicy p({3});
  const VerifyResult r = v.verify(p);
  ASSERT_FALSE(r.holds);
  ASSERT_FALSE(r.reports.empty());
  const auto& violations = r.reports[0].result.violations;
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].failures.count(), 2u);
  EXPECT_FALSE(violations[0].trail_text.empty());
  EXPECT_NE(violations[0].trail_text.find("fail link"), std::string::npos);
}

}  // namespace
}  // namespace plankton
