// Dependency graph, SCC condensation, outcome store, and the parallel
// scheduler (paper §3.2).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>

#include "core/verifier.hpp"
#include "sched/deps.hpp"
#include "sched/outcome_store.hpp"
#include "sched/work_stealing.hpp"
#include "workload/enterprise.hpp"

namespace plankton {
namespace {

TEST(Deps, RecursiveStaticCreatesEdge) {
  Network net;
  const NodeId a = net.add_device("a", IpAddr(1, 1, 1, 1));
  const NodeId b = net.add_device("b", IpAddr(2, 2, 2, 2));
  net.topo.add_link(a, b);
  net.device(a).ospf.enabled = true;
  net.device(b).ospf.enabled = true;
  StaticRoute sr;
  sr.dst = *Prefix::parse("172.16.0.0/12");
  sr.via_ip = IpAddr(2, 2, 2, 2);
  net.device(a).statics.push_back(sr);
  const PecSet pecs = compute_pecs(net);
  const PecDependencies deps = compute_dependencies(net, pecs);
  const PecId target = pecs.find(IpAddr(172, 16, 5, 5));
  const PecId loopback = pecs.find(IpAddr(2, 2, 2, 2));
  EXPECT_TRUE(deps.has_cross_pec_deps());
  ASSERT_EQ(deps.depends_on[target].size(), 1u);
  EXPECT_EQ(deps.depends_on[target][0], loopback);
  EXPECT_EQ(deps.dependents[loopback], (std::vector<PecId>{target}));
}

TEST(Deps, SelfLoopDetected) {
  // The paper's observed case: a static route whose next hop lies inside
  // the prefix being matched.
  Network net;
  const NodeId a = net.add_device("a");
  const NodeId b = net.add_device("b");
  net.topo.add_link(a, b);
  net.device(a).ospf.enabled = true;
  net.device(b).ospf.enabled = true;
  net.device(b).ospf.originated.push_back(*Prefix::parse("10.1.0.0/16"));
  StaticRoute sr;
  sr.dst = *Prefix::parse("10.0.0.0/8");
  sr.via_ip = IpAddr(10, 1, 0, 1);  // inside 10/8
  net.device(a).statics.push_back(sr);
  const PecSet pecs = compute_pecs(net);
  const PecDependencies deps = compute_dependencies(net, pecs);
  const PecId p = pecs.find(IpAddr(10, 1, 0, 1));
  EXPECT_TRUE(deps.self_loop[p] != 0);
  // Self loops do not create SCCs of size > 1.
  for (const auto& scc : deps.sccs) EXPECT_EQ(scc.size(), 1u);
}

TEST(Deps, ContrivedMutualStaticsFormScc) {
  // The paper's footnote: static for A via IP in B and static for B via IP
  // in A — an SCC larger than one PEC.
  Network net;
  const NodeId a = net.add_device("a");
  const NodeId b = net.add_device("b");
  net.topo.add_link(a, b);
  StaticRoute sa;
  sa.dst = *Prefix::parse("10.0.0.0/8");
  sa.via_ip = IpAddr(20, 0, 0, 1);
  net.device(a).statics.push_back(sa);
  StaticRoute sb;
  sb.dst = *Prefix::parse("20.0.0.0/8");
  sb.via_ip = IpAddr(10, 0, 0, 1);
  net.device(b).statics.push_back(sb);
  const PecSet pecs = compute_pecs(net);
  const PecDependencies deps = compute_dependencies(net, pecs);
  const PecId pa = pecs.find(IpAddr(10, 0, 0, 1));
  const PecId pb = pecs.find(IpAddr(20, 0, 0, 1));
  EXPECT_EQ(deps.scc_of[pa], deps.scc_of[pb]) << "mutual deps must share an SCC";
  bool found_big = false;
  for (const auto& scc : deps.sccs) found_big = found_big || scc.size() == 2;
  EXPECT_TRUE(found_big);
}

TEST(Deps, CondensationOrderPutsDependenciesFirst) {
  const Enterprise ent = make_enterprise("II");
  const PecSet pecs = compute_pecs(ent.net);
  const PecDependencies deps = compute_dependencies(ent.net, pecs);
  // Tarjan numbering invariant: every dependency SCC has a smaller id.
  for (std::uint32_t s = 0; s < deps.scc_deps.size(); ++s) {
    for (const std::uint32_t d : deps.scc_deps[s]) {
      EXPECT_LT(d, s) << "dependencies must be numbered before dependents";
    }
  }
}

TEST(OutcomeStoreTest, MatchesByFailureSet) {
  Network net;
  net.add_device("a", IpAddr(1, 1, 1, 1));
  const PecSet pecs = compute_pecs(net);
  OutcomeStore store(net, pecs);
  PecOutcome o1;
  o1.failures = FailureSet(3);
  o1.igp_cost = {0};
  o1.dp.entries.resize(1);
  o1.hash = 111;
  PecOutcome o2 = o1;
  o2.failures.fail(1);
  o2.hash = 222;
  std::vector<PecOutcome> outs;
  outs.push_back(std::move(o1));
  outs.push_back(std::move(o2));
  store.put(0, std::move(outs));

  const std::vector<PecId> deps{0};
  FailureSet none(3);
  auto combos = store.combos(deps, none);
  ASSERT_EQ(combos.size(), 1u);
  FailureSet one(3);
  one.fail(1);
  combos = store.combos(deps, one);
  ASSERT_EQ(combos.size(), 1u);
  FailureSet other(3);
  other.fail(2);
  EXPECT_TRUE(store.combos(deps, other).empty())
      << "no outcome recorded under this failure set";
}

TEST(OutcomeStoreTest, CrossProductOverMultipleDeps) {
  Network net;
  net.add_device("a", IpAddr(1, 1, 1, 1));
  net.add_device("b", IpAddr(2, 2, 2, 2));
  const PecSet pecs = compute_pecs(net);
  OutcomeStore store(net, pecs);
  auto mk = [](std::uint64_t h) {
    PecOutcome o;
    o.failures = FailureSet(1);
    o.igp_cost = {0, 0};
    o.dp.entries.resize(2);
    o.hash = h;
    return o;
  };
  {
    std::vector<PecOutcome> v;
    v.push_back(mk(1));
    v.push_back(mk(2));
    store.put(0, std::move(v));
  }
  {
    std::vector<PecOutcome> v;
    v.push_back(mk(3));
    store.put(1, std::move(v));
  }
  const std::vector<PecId> deps{0, 1};
  const auto combos = store.combos(deps, FailureSet(1));
  EXPECT_EQ(combos.size(), 2u) << "2 x 1 outcome combinations";
  EXPECT_NE(combos[0]->outcome_hash(), combos[1]->outcome_hash());
}

TEST(Scheduler, SupportPecsAreNotPolicyChecked) {
  const Enterprise ent = make_enterprise("VII");
  VerifyOptions vo;
  Verifier v(ent.net, vo);
  // Verify only the DC prefix (reached via recursive statics): its loopback
  // dependencies run as support PECs.
  const ReachabilityPolicy policy({ent.access.front()});
  const VerifyResult r = v.verify_address(IpAddr(10, 200, 0, 1), policy);
  EXPECT_EQ(r.pecs_verified, 1u);
  EXPECT_GT(r.pecs_support, 0u);
  for (const auto& rep : r.reports) {
    EXPECT_NE(rep.pec_str.find("("), std::string::npos);
  }
}

TEST(Scheduler, ParallelAndSerialAgreeOnEnterprise) {
  const Enterprise ent = make_enterprise("V");
  const LoopFreedomPolicy policy;
  VerifyOptions serial;
  serial.cores = 1;
  VerifyOptions parallel;
  parallel.cores = 8;
  const VerifyResult a = Verifier(ent.net, serial).verify(policy);
  const VerifyResult b = Verifier(ent.net, parallel).verify(policy);
  EXPECT_EQ(a.holds, b.holds);
  EXPECT_EQ(a.pecs_verified, b.pecs_verified);
}

TEST(WorkStealing, StressDependencyOrderAcrossWorkerCounts) {
  // A layered DAG wide enough to keep 8 workers busy: 25 tasks per layer,
  // 8 layers; each task depends on two tasks of the previous layer. Every
  // completion asserts that its dependencies completed first.
  constexpr std::size_t kLayers = 8;
  constexpr std::size_t kWidth = 25;
  constexpr std::size_t kTasks = kLayers * kWidth;
  sched::TaskGraph graph;
  graph.dependents.resize(kTasks);
  graph.waiting_on.assign(kTasks, 0);
  for (std::size_t layer = 1; layer < kLayers; ++layer) {
    for (std::size_t i = 0; i < kWidth; ++i) {
      const std::size_t task = layer * kWidth + i;
      const std::size_t d1 = (layer - 1) * kWidth + i;
      const std::size_t d2 = (layer - 1) * kWidth + (i + 1) % kWidth;
      graph.dependents[d1].push_back(task);
      graph.dependents[d2].push_back(task);
      graph.waiting_on[task] = 2;
    }
  }

  for (const auto kind : {sched::SchedulerKind::kWorkStealing,
                          sched::SchedulerKind::kFixedPool}) {
    for (const int workers : {1, 4, 8}) {
      std::mutex mu;
      std::vector<std::uint8_t> done(kTasks, 0);
      std::atomic<std::size_t> executions{0};
      bool order_ok = true;
      sched::run_task_graph(kind, workers, graph,
                            [&](std::size_t task, int worker) {
                              ASSERT_GE(worker, 0);
                              ASSERT_LT(worker, workers);
                              executions.fetch_add(1);
                              std::scoped_lock lock(mu);
                              if (task >= kWidth) {
                                const std::size_t layer = task / kWidth;
                                const std::size_t i = task % kWidth;
                                const std::size_t d1 = (layer - 1) * kWidth + i;
                                const std::size_t d2 =
                                    (layer - 1) * kWidth + (i + 1) % kWidth;
                                order_ok = order_ok && done[d1] && done[d2];
                              }
                              done[task] = 1;
                            });
      EXPECT_EQ(executions.load(), kTasks)
          << sched::to_string(kind) << " workers=" << workers;
      EXPECT_TRUE(order_ok) << sched::to_string(kind)
                            << " ran a task before its dependencies,"
                            << " workers=" << workers;
      for (std::size_t t = 0; t < kTasks; ++t) {
        ASSERT_TRUE(done[t]) << "task " << t << " never ran";
      }
    }
  }
}

TEST(WorkStealing, VerifierResultsDeterministicAcrossWorkerCounts) {
  // With find_all_violations (no early stop) every PEC is fully explored, so
  // reports and aggregate stats must be identical for 1, 4, and 8 workers
  // under both schedulers.
  const Enterprise ent = make_enterprise("VII");
  const LoopFreedomPolicy policy;
  struct Snapshot {
    std::size_t verified, support;
    std::uint64_t states;
    std::vector<std::pair<PecId, bool>> reports;
  };
  std::vector<Snapshot> snaps;
  for (const auto kind : {sched::SchedulerKind::kWorkStealing,
                          sched::SchedulerKind::kFixedPool}) {
    for (const int workers : {1, 4, 8}) {
      VerifyOptions vo;
      vo.cores = workers;
      vo.scheduler = kind;
      vo.explore.find_all_violations = true;
      const VerifyResult r = Verifier(ent.net, vo).verify(policy);
      Snapshot s;
      s.verified = r.pecs_verified;
      s.support = r.pecs_support;
      s.states = r.total.states_explored;
      for (const auto& rep : r.reports) {
        s.reports.emplace_back(rep.pec, rep.result.holds);
      }
      snaps.push_back(std::move(s));
    }
  }
  for (std::size_t i = 1; i < snaps.size(); ++i) {
    EXPECT_EQ(snaps[i].verified, snaps[0].verified) << "config " << i;
    EXPECT_EQ(snaps[i].support, snaps[0].support) << "config " << i;
    EXPECT_EQ(snaps[i].states, snaps[0].states) << "config " << i;
    EXPECT_EQ(snaps[i].reports, snaps[0].reports) << "config " << i;
  }
}

TEST(SchedulerSpawn, DynamicSubtasksAllRunAcrossSchedulers) {
  // Spawn-capable bodies inject dynamic subtasks mid-run (the scheduler side
  // of frontier split() work-sharing): every spawned job — including nested
  // spawns from dynamic tasks — must run before run_task_graph returns, on
  // any scheduler and worker count.
  constexpr std::size_t kStatic = 6;
  constexpr int kChildren = 8;
  sched::TaskGraph graph;
  graph.dependents.resize(kStatic);
  graph.waiting_on.assign(kStatic, 0);
  for (std::size_t t = 1; t < kStatic; ++t) {
    graph.dependents[t - 1].push_back(t);  // a chain, so spawns interleave
    graph.waiting_on[t] = 1;
  }

  for (const auto kind : {sched::SchedulerKind::kWorkStealing,
                          sched::SchedulerKind::kFixedPool}) {
    for (const int workers : {1, 4}) {
      std::atomic<int> children{0};
      std::atomic<int> grandchildren{0};
      std::atomic<bool> ids_ok{true};
      sched::run_task_graph(
          kind, workers, graph, [&](sched::TaskContext& ctx) {
            if (ctx.task() == sched::kDynamicTask) return;  // child body below
            if (ctx.worker() < 0 || ctx.worker() >= workers) ids_ok = false;
            for (int c = 0; c < kChildren; ++c) {
              ctx.spawn([&](sched::TaskContext& child) {
                if (child.task() != sched::kDynamicTask) ids_ok = false;
                children.fetch_add(1);
                child.spawn([&](sched::TaskContext& grand) {
                  if (grand.task() != sched::kDynamicTask) ids_ok = false;
                  grandchildren.fetch_add(1);
                });
              });
            }
          });
      EXPECT_EQ(children.load(), static_cast<int>(kStatic) * kChildren)
          << sched::to_string(kind) << " workers=" << workers;
      EXPECT_EQ(grandchildren.load(), static_cast<int>(kStatic) * kChildren)
          << sched::to_string(kind) << " workers=" << workers;
      EXPECT_TRUE(ids_ok.load());
    }
  }
}

TEST(SchedulerSpawn, SpawnedWorkIsStolenByIdleWorkers) {
  // One static task fans out many slow-ish subtasks; with several workers at
  // least two distinct workers must end up executing them (the whole point
  // of making intra-PEC work splittable).
  sched::TaskGraph graph;
  graph.dependents.resize(1);
  graph.waiting_on.assign(1, 0);
  std::mutex mu;
  std::set<int> executed_by;
  sched::run_task_graph(
      sched::SchedulerKind::kWorkStealing, 4, graph,
      [&](sched::TaskContext& ctx) {
        if (ctx.task() == sched::kDynamicTask) return;
        for (int c = 0; c < 64; ++c) {
          ctx.spawn([&](sched::TaskContext& child) {
            {
              std::scoped_lock lock(mu);
              executed_by.insert(child.worker());
            }
            // Enough work that the spawner alone cannot drain the queue
            // before a thief wakes up.
            volatile std::uint64_t x = 0;
            for (int i = 0; i < 200000; ++i) x += static_cast<std::uint64_t>(i);
          });
        }
      });
  EXPECT_GE(executed_by.size(), 2u)
      << "no idle worker ever stole a spawned subtask";
}

TEST(SchedulerSpawn, SpawnUnderContentionSeesCompletedDependencies) {
  // Known gap closed: the differential harness only reaches spawn() from
  // single-task searches, never while ready-counters are being decremented
  // by concurrent completions. Here dynamically spawned subtasks carry
  // cross-PEC dependencies — each static task of a layered DAG publishes a
  // value derived from its two dependencies' values, then fans out children
  // that re-read those dependency slots while other workers complete tasks,
  // release dependents, and steal the children. A child observing an
  // unwritten dependency slot means a task (or its spawned work) ran before
  // the counter release happened-before it.
  constexpr std::size_t kLayers = 6;
  constexpr std::size_t kWidth = 12;
  constexpr std::size_t kTasks = kLayers * kWidth;
  constexpr int kChildren = 6;
  sched::TaskGraph graph;
  graph.dependents.resize(kTasks);
  graph.waiting_on.assign(kTasks, 0);
  const auto deps_of = [](std::size_t task) {
    const std::size_t layer = task / kWidth;
    const std::size_t i = task % kWidth;
    return std::pair<std::size_t, std::size_t>{
        (layer - 1) * kWidth + i, (layer - 1) * kWidth + (i + 1) % kWidth};
  };
  for (std::size_t task = kWidth; task < kTasks; ++task) {
    const auto [d1, d2] = deps_of(task);
    graph.dependents[d1].push_back(task);
    graph.dependents[d2].push_back(task);
    graph.waiting_on[task] = 2;
  }

  std::vector<std::atomic<std::uint64_t>> value(kTasks);  // 0 = unwritten
  for (const auto kind : {sched::SchedulerKind::kWorkStealing,
                          sched::SchedulerKind::kFixedPool}) {
    for (const int workers : {1, 4, 8}) {
      for (auto& v : value) v.store(0);
      std::atomic<std::size_t> child_runs{0};
      std::atomic<bool> deps_visible{true};
      sched::run_task_graph(
          kind, workers, graph, [&](sched::TaskContext& ctx) {
            if (ctx.task() == sched::kDynamicTask) return;
            const std::size_t task = ctx.task();
            std::uint64_t v = 1 + task;
            if (task >= kWidth) {
              const auto [d1, d2] = deps_of(task);
              const std::uint64_t a = value[d1].load(std::memory_order_acquire);
              const std::uint64_t b = value[d2].load(std::memory_order_acquire);
              if (a == 0 || b == 0) deps_visible = false;
              v += a + b;
            }
            value[task].store(v, std::memory_order_release);
            for (int c = 0; c < kChildren; ++c) {
              ctx.spawn([&, task](sched::TaskContext&) {
                child_runs.fetch_add(1);
                if (task >= kWidth) {
                  // The child inherits its spawner's cross-PEC dependencies:
                  // wherever it gets stolen to, the dependency results must
                  // already be visible there.
                  const auto [d1, d2] = deps_of(task);
                  if (value[d1].load(std::memory_order_acquire) == 0 ||
                      value[d2].load(std::memory_order_acquire) == 0) {
                    deps_visible = false;
                  }
                }
              });
            }
          });
      EXPECT_EQ(child_runs.load(), kTasks * kChildren)
          << sched::to_string(kind) << " workers=" << workers;
      EXPECT_TRUE(deps_visible.load())
          << sched::to_string(kind) << " workers=" << workers
          << ": a spawned subtask ran before its dependencies' results "
             "were visible";
      for (std::size_t t = 0; t < kTasks; ++t) {
        ASSERT_NE(value[t].load(), 0u) << "task " << t << " never ran";
      }
    }
  }
}

TEST(Scheduler, WallLimitStopsGracefully) {
  const Enterprise ent = make_enterprise("III");
  VerifyOptions vo;
  vo.explore.max_failures = 2;  // expensive
  vo.wall_limit = std::chrono::milliseconds(30);
  Verifier v(ent.net, vo);
  const LoopFreedomPolicy policy;
  const VerifyResult r = v.verify(policy);
  EXPECT_TRUE(r.timed_out);
}

}  // namespace
}  // namespace plankton
