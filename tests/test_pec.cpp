// PEC computation: the trie partition and per-prefix config slices.
#include <gtest/gtest.h>

#include <random>

#include "pec/pec.hpp"
#include "pec/trie.hpp"
#include "workload/enterprise.hpp"

namespace plankton {
namespace {

TEST(Trie, EmptyTrieIsOneRange) {
  PrefixTrie trie;
  const auto ranges = trie.partition();
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].lo, IpAddr(0, 0, 0, 0));
  EXPECT_EQ(ranges[0].hi, IpAddr(255, 255, 255, 255));
  EXPECT_TRUE(ranges[0].values.empty());
}

TEST(Trie, PaperFigure4Example) {
  // 128.0.0.0/1 and 192.0.0.0/2 advertised: three classes (Fig. 4).
  PrefixTrie trie;
  trie.insert(*Prefix::parse("128.0.0.0/1"), 0);
  trie.insert(*Prefix::parse("192.0.0.0/2"), 1);
  const auto ranges = trie.partition();
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0].lo, IpAddr(0, 0, 0, 0));
  EXPECT_EQ(ranges[0].hi, IpAddr(127, 255, 255, 255));
  EXPECT_TRUE(ranges[0].values.empty());
  EXPECT_EQ(ranges[1].lo, IpAddr(128, 0, 0, 0));
  EXPECT_EQ(ranges[1].hi, IpAddr(191, 255, 255, 255));
  EXPECT_EQ(ranges[1].values, (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(ranges[2].lo, IpAddr(192, 0, 0, 0));
  EXPECT_EQ(ranges[2].hi, IpAddr(255, 255, 255, 255));
  EXPECT_EQ(ranges[2].values, (std::vector<std::uint32_t>{0, 1}));
}

TEST(Trie, HostPrefixSplitsCorrectly) {
  PrefixTrie trie;
  trie.insert(Prefix::host(IpAddr(10, 0, 0, 5)), 7);
  const auto ranges = trie.partition();
  // Three ranges: below, the host itself, above.
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[1].lo, IpAddr(10, 0, 0, 5));
  EXPECT_EQ(ranges[1].hi, IpAddr(10, 0, 0, 5));
  EXPECT_EQ(ranges[1].values, (std::vector<std::uint32_t>{7}));
}

/// Property: the partition tiles the space, and every range's value set is
/// exactly the set of inserted prefixes containing it (checked against the
/// interval method).
TEST(Trie, PartitionMatchesIntervalMethodOnRandomPrefixes) {
  std::mt19937 rng(424242);
  for (int iter = 0; iter < 30; ++iter) {
    PrefixTrie trie;
    std::vector<Prefix> prefixes;
    const int count = 1 + static_cast<int>(rng() % 12);
    for (int i = 0; i < count; ++i) {
      const std::uint8_t len = static_cast<std::uint8_t>(rng() % 33);
      const Prefix p(IpAddr(static_cast<std::uint32_t>(rng())), len);
      prefixes.push_back(p);
      trie.insert(p, static_cast<std::uint32_t>(i));
    }
    const auto ranges = trie.partition();
    // Tiling.
    ASSERT_FALSE(ranges.empty());
    EXPECT_EQ(ranges.front().lo.value(), 0u);
    EXPECT_EQ(ranges.back().hi.value(), ~std::uint32_t{0});
    for (std::size_t i = 0; i + 1 < ranges.size(); ++i) {
      EXPECT_EQ(ranges[i].hi.value() + 1, ranges[i + 1].lo.value());
      EXPECT_NE(ranges[i].values, ranges[i + 1].values)
          << "adjacent equal-set ranges must be merged";
    }
    // Covering sets: spot-check boundaries of every range.
    for (const auto& r : ranges) {
      for (const IpAddr probe : {r.lo, r.hi}) {
        std::vector<std::uint32_t> expected;
        for (std::uint32_t i = 0; i < prefixes.size(); ++i) {
          if (prefixes[i].contains(probe)) expected.push_back(i);
        }
        std::sort(expected.begin(), expected.end());
        expected.erase(std::unique(expected.begin(), expected.end()),
                       expected.end());
        std::vector<std::uint32_t> actual = r.values;
        std::sort(actual.begin(), actual.end());
        actual.erase(std::unique(actual.begin(), actual.end()), actual.end());
        EXPECT_EQ(actual, expected) << "probe " << probe.str();
      }
    }
  }
}

TEST(Pec, SlicesCarryOriginsAndStatics) {
  Network net;
  const NodeId r0 = net.add_device("r0");
  const NodeId r1 = net.add_device("r1");
  net.topo.add_link(r0, r1);
  net.device(r0).ospf.enabled = true;
  net.device(r1).ospf.enabled = true;
  const Prefix p = *Prefix::parse("10.1.0.0/16");
  net.device(r0).ospf.originated.push_back(p);
  StaticRoute sr;
  sr.dst = p;
  sr.via_neighbor = r0;
  net.device(r1).statics.push_back(sr);

  const PecSet pecs = compute_pecs(net);
  const PecId id = pecs.find(IpAddr(10, 1, 2, 3));
  const Pec& pec = pecs.pecs[id];
  ASSERT_EQ(pec.prefixes.size(), 1u);
  EXPECT_EQ(pec.prefixes[0].prefix, p);
  EXPECT_EQ(pec.prefixes[0].ospf_origins, (std::vector<NodeId>{r0}));
  ASSERT_EQ(pec.prefixes[0].static_routes.size(), 1u);
  EXPECT_EQ(pec.prefixes[0].static_routes[0].first, r1);
}

TEST(Pec, LpmOrderIsMostSpecificFirst) {
  Network net;
  const NodeId r0 = net.add_device("r0");
  net.device(r0).ospf.enabled = true;
  net.device(r0).ospf.originated.push_back(*Prefix::parse("10.0.0.0/8"));
  net.device(r0).ospf.originated.push_back(*Prefix::parse("10.1.0.0/16"));
  net.device(r0).ospf.originated.push_back(*Prefix::parse("10.1.2.0/24"));
  const PecSet pecs = compute_pecs(net);
  const Pec& pec = pecs.pecs[pecs.find(IpAddr(10, 1, 2, 3))];
  ASSERT_EQ(pec.prefixes.size(), 3u);
  EXPECT_EQ(pec.prefixes[0].prefix.length(), 24);
  EXPECT_EQ(pec.prefixes[1].prefix.length(), 16);
  EXPECT_EQ(pec.prefixes[2].prefix.length(), 8);
}

TEST(Pec, FindIsConsistentWithRanges) {
  const Enterprise ent = make_enterprise("III");
  const PecSet pecs = compute_pecs(ent.net);
  for (PecId id = 0; id < pecs.pecs.size(); ++id) {
    EXPECT_EQ(pecs.find(pecs.pecs[id].lo), id);
    EXPECT_EQ(pecs.find(pecs.pecs[id].hi), id);
  }
}

TEST(Pec, RoutedSubsetOnlyCountsPrefixedPecs) {
  Network net;
  const NodeId r0 = net.add_device("r0");
  net.device(r0).ospf.enabled = true;
  net.device(r0).ospf.originated.push_back(*Prefix::parse("10.0.0.0/8"));
  const PecSet pecs = compute_pecs(net);
  const auto routed = pecs.routed();
  ASSERT_EQ(routed.size(), 1u);
  EXPECT_TRUE(pecs.pecs[routed[0]].has_routing());
}

}  // namespace
}  // namespace plankton
