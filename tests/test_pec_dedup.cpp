// Batch PEC verification (eqclass/pec_dedup.hpp): fingerprint invariance
// under node/prefix renaming, collision resistance on near-miss configs,
// verdict/trail translation, and the singleton fallback on asymmetry.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "core/verifier.hpp"
#include "eqclass/pec_dedup.hpp"
#include "workload/fat_tree.hpp"

namespace plankton {
namespace {

/// Class partition over all routed PECs of `net` under `policy`.
PecClassSet classes_of(const Network& net, const Policy& policy) {
  const PecSet pecs = compute_pecs(net);
  const PecDependencies deps = compute_dependencies(net, pecs);
  std::vector<std::uint8_t> needed(pecs.pecs.size(), 0);
  std::vector<std::uint8_t> is_target(pecs.pecs.size(), 0);
  for (const PecId p : pecs.routed()) needed[p] = is_target[p] = 1;
  return compute_pec_classes(net, pecs, deps, policy, needed, is_target);
}

/// Everything the dedup contract promises stays bit-identical: verdict plus
/// the per-PEC violation multiset including rendered trail text.
std::multiset<std::string> violation_multiset(const VerifyResult& r) {
  std::multiset<std::string> out;
  for (const auto& rep : r.reports) {
    for (const auto& v : rep.result.violations) {
      out.insert(rep.pec_str + "|" + v.failures.str() + "|" + v.message + "|" +
                 v.trail_text);
    }
  }
  return out;
}

VerifyResult run(const Network& net, const Policy& policy, bool dedup,
                 bool find_all = false) {
  VerifyOptions vo;
  vo.cores = 1;
  vo.pec_dedup = dedup;
  vo.explore.find_all_violations = find_all;
  Verifier verifier(net, vo);
  return verifier.verify(policy);
}

/// Two symmetric OSPF routers, each originating its own /24: the minimal
/// renaming-equivalent pair (different origin node, different prefix value).
Network symmetric_pair() {
  Network net;
  const NodeId a = net.add_device("a", IpAddr(10, 0, 0, 1));
  const NodeId b = net.add_device("b", IpAddr(10, 0, 0, 2));
  net.topo.add_link(a, b, 5);
  for (const NodeId n : {a, b}) {
    net.device(n).ospf.enabled = true;
    net.device(n).ospf.advertise_loopback = false;
  }
  net.device(a).ospf.originated.push_back(*Prefix::parse("10.1.0.0/24"));
  net.device(b).ospf.originated.push_back(*Prefix::parse("10.2.0.0/24"));
  return net;
}

TEST(PecDedup, RenamingInvarianceMergesSymmetricPair) {
  const Network net = symmetric_pair();
  const LoopFreedomPolicy policy;
  const PecClassSet cs = classes_of(net, policy);
  EXPECT_EQ(cs.stats.classes, 1u);
  EXPECT_EQ(cs.stats.deduped, 1u);
  EXPECT_EQ(cs.stats.singletons, 0u);

  const VerifyResult on = run(net, policy, true);
  const VerifyResult off = run(net, policy, false);
  EXPECT_TRUE(on.holds);
  EXPECT_EQ(on.holds, off.holds);
  EXPECT_EQ(on.pec_classes, 1u);
  EXPECT_EQ(on.pecs_deduped, 1u);
  EXPECT_EQ(on.pecs_verified, off.pecs_verified);
  // The translated member reports under its own PEC string.
  std::set<std::string> strs;
  for (const auto& rep : on.reports) strs.insert(rep.pec_str);
  std::set<std::string> strs_off;
  for (const auto& rep : off.reports) strs_off.insert(rep.pec_str);
  EXPECT_EQ(strs, strs_off);
}

TEST(PecDedup, FatTreeAllPairsCollapsesToOneClass) {
  FatTreeOptions o;
  o.k = 4;
  o.statics = FatTreeOptions::CoreStatics::kMatching;
  const FatTree ft = make_fat_tree(o);
  const LoopFreedomPolicy policy;
  const PecClassSet cs = classes_of(ft.net, policy);
  // All k^2/2 = 8 edge-prefix PECs are isomorphic under a fabric
  // automorphism: one representative explores for everyone.
  EXPECT_EQ(cs.stats.classes, 1u);
  EXPECT_EQ(cs.stats.deduped, ft.edges.size() - 1);

  const VerifyResult on = run(ft.net, policy, true);
  const VerifyResult off = run(ft.net, policy, false);
  EXPECT_TRUE(on.holds);
  EXPECT_EQ(on.holds, off.holds);
  EXPECT_EQ(on.reports.size(), off.reports.size());
  // The win the bench measures: one exploration instead of eight.
  EXPECT_LE(on.total.states_explored * 4, off.total.states_explored);
  std::size_t translated = 0;
  for (const auto& rep : on.reports) {
    if (rep.translated_from != kNoPec) ++translated;
  }
  EXPECT_EQ(translated, ft.edges.size() - 1);
}

TEST(PecDedup, PolicySourcesPinTheRenaming) {
  // Reachability from edge 0: PECs whose isomorphism would have to move the
  // source cannot merge with PECs where it is fixed — but PECs symmetric
  // *around* the source still can.
  FatTreeOptions o;
  o.k = 4;
  const FatTree ft = make_fat_tree(o);
  const ReachabilityPolicy policy({ft.edges[0]});
  const PecClassSet cs = classes_of(ft.net, policy);
  // Sanity: fewer classes than PECs (some symmetry survives fixing the
  // source), more than one (the source's own pod is distinguished).
  EXPECT_GT(cs.stats.classes, 1u);
  EXPECT_LT(cs.stats.classes, ft.edges.size());
  const VerifyResult on = run(ft.net, policy, true);
  const VerifyResult off = run(ft.net, policy, false);
  EXPECT_EQ(on.holds, off.holds);
  EXPECT_EQ(violation_multiset(on), violation_multiset(off));
}

TEST(PecDedup, NearMissOneExtraRouteSplitsTheClass) {
  Network net = symmetric_pair();
  // One static drop for b's prefix at a: the slices now differ in exactly
  // one route — the classes must not merge.
  StaticRoute sr;
  sr.dst = *Prefix::parse("10.2.0.0/24");
  sr.drop = true;
  net.device(0).statics.push_back(sr);
  const LoopFreedomPolicy policy;
  const PecClassSet cs = classes_of(net, policy);
  EXPECT_EQ(cs.stats.classes, 2u);
  EXPECT_EQ(cs.stats.deduped, 0u);
}

TEST(PecDedup, NearMissAsymmetricCostSplitsTheClass) {
  Network net = symmetric_pair();
  const NodeId c = net.add_device("c", IpAddr(10, 0, 0, 3));
  net.device(c).ospf.enabled = true;
  net.device(c).ospf.advertise_loopback = false;
  net.device(c).ospf.originated.push_back(*Prefix::parse("10.3.0.0/24"));
  // a-b cost 5 (from symmetric_pair), b-c cost 7: the chain ends are no
  // longer exchangeable; every PEC is its own class.
  net.topo.add_link(1, c, 7);
  const LoopFreedomPolicy policy;
  const PecClassSet cs = classes_of(net, policy);
  EXPECT_EQ(cs.stats.classes, 3u);
  EXPECT_EQ(cs.stats.deduped, 0u);
  EXPECT_EQ(cs.stats.singletons, 3u);
}

/// Two eBGP routers, each originating one prefix; `import_clause` (if any)
/// is installed on a's import from b.
Network bgp_pair(const RouteMapClause* import_clause) {
  Network net;
  const NodeId a = net.add_device("a", IpAddr(10, 0, 0, 1));
  const NodeId b = net.add_device("b", IpAddr(10, 0, 0, 2));
  net.topo.add_link(a, b);
  for (const NodeId n : {a, b}) {
    net.device(n).bgp.emplace();
    net.device(n).bgp->asn = 100 + n;
  }
  net.device(a).bgp->originated.push_back(*Prefix::parse("10.1.0.0/24"));
  net.device(b).bgp->originated.push_back(*Prefix::parse("10.2.0.0/24"));
  BgpSession sa;
  sa.peer = b;
  if (import_clause != nullptr) sa.import.clauses.push_back(*import_clause);
  net.device(a).bgp->sessions.push_back(sa);
  BgpSession sb;
  sb.peer = a;
  net.device(b).bgp->sessions.push_back(sb);
  return net;
}

TEST(PecDedup, RouteMapFootprintDistinguishesPolicyHooks) {
  // A clause matching exactly b's prefix changes how a treats one PEC and
  // not the other: no merge.
  RouteMapClause hook;
  hook.match.prefix = *Prefix::parse("10.2.0.0/24");
  hook.action.set_local_pref = 200;
  const Network hooked = bgp_pair(&hook);
  const LoopFreedomPolicy policy;
  EXPECT_EQ(classes_of(hooked, policy).stats.deduped, 0u);

  // An inert clause (matches neither PEC's prefixes) is invisible to both
  // explorations — the footprint canonicalization must still merge.
  RouteMapClause inert;
  inert.match.prefix = *Prefix::parse("192.168.0.0/24");
  inert.action.set_local_pref = 200;
  const Network inert_net = bgp_pair(&inert);
  // The 192.168.0.0/24 mention creates an extra (unrouted) PEC but must not
  // stop 10.1/10.2 from sharing a class.
  EXPECT_EQ(classes_of(inert_net, policy).stats.deduped, 1u);
}

TEST(PecDedup, ViolationFallbackKeepsTrailsBitIdentical) {
  // Broken core statics: forwarding loops. A violated representative must
  // not translate — members re-explore natively, so violation multisets and
  // rendered trail text match the dedup-off run byte for byte.
  FatTreeOptions o;
  o.k = 4;
  o.statics = FatTreeOptions::CoreStatics::kBroken;
  const FatTree ft = make_fat_tree(o);
  const LoopFreedomPolicy policy;
  const VerifyResult on = run(ft.net, policy, true, /*find_all=*/true);
  const VerifyResult off = run(ft.net, policy, false, /*find_all=*/true);
  EXPECT_FALSE(on.holds);
  EXPECT_EQ(on.holds, off.holds);
  EXPECT_EQ(on.reports.size(), off.reports.size());
  EXPECT_EQ(violation_multiset(on), violation_multiset(off));

  // Multi-core: fallback members are spawned as dynamic subtasks and may be
  // stolen by any worker; the merged result must not change.
  VerifyOptions vo;
  vo.cores = 4;
  vo.pec_dedup = true;
  vo.explore.find_all_violations = true;
  Verifier verifier(ft.net, vo);
  const VerifyResult par = verifier.verify(policy);
  EXPECT_EQ(par.holds, off.holds);
  EXPECT_EQ(par.reports.size(), off.reports.size());
  EXPECT_EQ(violation_multiset(par), violation_multiset(off));
  EXPECT_EQ(par.dedup_reruns, on.dedup_reruns);
}

TEST(PecDedup, EarlyStopViolationVerdictMatches) {
  FatTreeOptions o;
  o.k = 4;
  o.statics = FatTreeOptions::CoreStatics::kBroken;
  const FatTree ft = make_fat_tree(o);
  const LoopFreedomPolicy policy;
  const VerifyResult on = run(ft.net, policy, true, /*find_all=*/false);
  const VerifyResult off = run(ft.net, policy, false, /*find_all=*/false);
  EXPECT_FALSE(on.holds);
  EXPECT_EQ(on.holds, off.holds);
}

TEST(PecDedup, AsymmetricWorkloadFallsBackToSingletons) {
  // A cost-asymmetric chain: no two PECs are isomorphic. Dedup must degrade
  // to singleton classes and change nothing about the result.
  Network net;
  std::vector<NodeId> nodes;
  for (int i = 0; i < 5; ++i) {
    const NodeId n =
        net.add_device("r" + std::to_string(i), IpAddr(10, 0, 0, 10 + i));
    net.device(n).ospf.enabled = true;
    net.device(n).ospf.advertise_loopback = false;
    net.device(n).ospf.originated.push_back(
        *Prefix::parse("10." + std::to_string(i + 1) + ".0.0/24"));
    nodes.push_back(n);
  }
  for (int i = 0; i + 1 < 5; ++i) {
    net.topo.add_link(nodes[i], nodes[i + 1], 1 + i);
  }
  const LoopFreedomPolicy policy;
  const PecClassSet cs = classes_of(net, policy);
  EXPECT_EQ(cs.stats.classes, 5u);
  EXPECT_EQ(cs.stats.deduped, 0u);
  EXPECT_EQ(cs.stats.singletons, 5u);

  const VerifyResult on = run(net, policy, true);
  const VerifyResult off = run(net, policy, false);
  EXPECT_EQ(on.holds, off.holds);
  EXPECT_EQ(on.pecs_deduped, 0u);
  EXPECT_EQ(on.total.states_explored, off.total.states_explored);
}

TEST(PecDedup, DependentPecsAreNeverGrouped) {
  // Recursive static routes (via_ip) couple PECs through converged
  // outcomes; such PECs must stay singleton even when symmetric.
  Network net = symmetric_pair();
  StaticRoute sr;
  sr.dst = *Prefix::parse("10.9.0.0/24");
  sr.via_ip = IpAddr(10, 1, 0, 1);  // resolves through a's PEC
  net.device(1).statics.push_back(sr);
  const LoopFreedomPolicy policy;
  const PecClassSet cs = classes_of(net, policy);
  const PecSet pecs = compute_pecs(net);
  // The dependent PEC (the static's destination) and its dependency (the
  // PEC holding the recursive next hop) must both stay singleton; sibling
  // fragments of a's /24 that carry no dependency edge may still merge.
  const PecId dependent = pecs.find(IpAddr(10, 9, 0, 7));
  const PecId dependency = pecs.find(IpAddr(10, 1, 0, 1));
  EXPECT_EQ(cs.rep_of[dependent], dependent);
  EXPECT_TRUE(cs.members_of[dependent].empty());
  EXPECT_EQ(cs.rep_of[dependency], dependency);
  EXPECT_TRUE(cs.members_of[dependency].empty());
  for (PecId p = 0; p < cs.rep_of.size(); ++p) {
    if (!cs.is_translated_member(p)) continue;
    EXPECT_NE(p, dependent);
    EXPECT_NE(p, dependency);
  }
}

TEST(PecDedup, DedupOffSmoke) {
  // The CI --no-pec-dedup path: everything above must also hold with the
  // optimization disabled (this is the regression guard that the flag
  // actually disconnects the machinery).
  FatTreeOptions o;
  o.k = 4;
  const FatTree ft = make_fat_tree(o);
  const LoopFreedomPolicy policy;
  const VerifyResult off = run(ft.net, policy, false);
  EXPECT_TRUE(off.holds);
  EXPECT_EQ(off.pec_classes, 0u);
  EXPECT_EQ(off.pecs_deduped, 0u);
  for (const auto& rep : off.reports) {
    EXPECT_EQ(rep.translated_from, kNoPec);
  }
}

}  // namespace
}  // namespace plankton
