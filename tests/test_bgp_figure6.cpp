// The paper's Figure 6: step-by-step deterministic-node detection on a
// 6-node BGP network, plus unit tests of the BGP adapter's heuristics.
#include <gtest/gtest.h>

#include "pec/pec.hpp"
#include "protocols/bgp.hpp"
#include "rpvp/explorer.hpp"
#include "support/figure6.hpp"

namespace plankton {
namespace {

using testsupport::Figure6;

TEST(Figure6, InitialDeterministicNodesAreOriginNeighbors) {
  Figure6 fx;
  BgpProcess proc(fx.net, *Prefix::parse("10.0.0.0/16"), {fx.r1});
  ModelContext ctx;
  ctx.net = &fx.net;
  proc.prepare(fx.net.topo.no_failures(), ctx);
  std::vector<RouteId> rib(fx.net.topo.node_count(), kNoRoute);
  rib[fx.r1] = proc.origin_route(fx.r1, ctx);
  // Initially R2 and R3 are enabled (direct neighbors of the origin); both
  // are deterministic: tied local-pref, best possible AS path (step 1/3 of
  // the figure's narration).
  bool tie_ok = true;
  const std::vector<NodeId> enabled{fx.r2, fx.r3};
  const NodeId pick =
      proc.deterministic_node(enabled, StateView(rib), ctx, tie_ok);
  EXPECT_TRUE(pick == fx.r2 || pick == fx.r3);
  EXPECT_FALSE(tie_ok);
}

TEST(Figure6, R5DeterministicAfterR2Commits) {
  Figure6 fx;
  const Prefix p = *Prefix::parse("10.0.0.0/16");
  BgpProcess proc(fx.net, p, {fx.r1});
  ModelContext ctx;
  ctx.net = &fx.net;
  proc.prepare(fx.net.topo.no_failures(), ctx);
  std::vector<RouteId> rib(fx.net.topo.node_count(), kNoRoute);
  rib[fx.r1] = proc.origin_route(fx.r1, ctx);
  rib[fx.r2] = proc.advertised(fx.r1, fx.r2, rib[fx.r1], ctx);
  ASSERT_NE(rib[fx.r2], kNoRoute);
  // Step 2: R5's update from R2 carries the highest local-pref anywhere in
  // the network — a clear winner.
  bool tie_ok = true;
  const std::vector<NodeId> enabled{fx.r4, fx.r5};
  const NodeId pick =
      proc.deterministic_node(enabled, StateView(rib), ctx, tie_ok);
  EXPECT_EQ(pick, fx.r5);
  EXPECT_FALSE(tie_ok);
}

TEST(Figure6, R4TieDetectedWhenAllWinnersEnabled) {
  Figure6 fx;
  const Prefix p = *Prefix::parse("10.0.0.0/16");
  BgpProcess proc(fx.net, p, {fx.r1});
  ModelContext ctx;
  ctx.net = &fx.net;
  proc.prepare(fx.net.topo.no_failures(), ctx);
  std::vector<RouteId> rib(fx.net.topo.node_count(), kNoRoute);
  rib[fx.r1] = proc.origin_route(fx.r1, ctx);
  rib[fx.r2] = proc.advertised(fx.r1, fx.r2, rib[fx.r1], ctx);
  rib[fx.r3] = proc.advertised(fx.r1, fx.r3, rib[fx.r1], ctx);
  rib[fx.r5] = proc.advertised(fx.r2, fx.r5, rib[fx.r2], ctx);
  // Step 4: R4's two updates (via R2, via R3) tie on every step, and both
  // potential winners are enabled now — tie_ok nomination ("use SPIN to
  // decide between neighbors R2, R3").
  bool tie_ok = false;
  const std::vector<NodeId> enabled{fx.r4};
  const NodeId pick =
      proc.deterministic_node(enabled, StateView(rib), ctx, tie_ok);
  EXPECT_EQ(pick, fx.r4);
  EXPECT_TRUE(tie_ok);
}

TEST(Figure6, ExplorationCountsMatchNarrative) {
  // End to end: exactly the two tie points (R4 and R6) branch; everything
  // else executes deterministically.
  Figure6 fx;
  const PecSet pecs = compute_pecs(fx.net);
  const Pec& pec = pecs.pecs[pecs.routed()[0]];
  class Count final : public Policy {
   public:
    [[nodiscard]] std::string name() const override { return "count"; }
    [[nodiscard]] bool check(const ConvergedView&, std::string&) const override {
      return true;
    }
    [[nodiscard]] bool supports_equivalence() const override { return false; }
  } policy;
  ExploreOptions opts;
  opts.find_all_violations = true;
  opts.record_outcomes = true;
  Explorer ex(fx.net, pec, make_tasks(fx.net, pec), policy, opts);
  const ExploreResult r = ex.run();
  EXPECT_TRUE(r.holds);
  // R4 picks between R2/R3 and R6 between R4/R5: up to 4 distinct converged
  // data planes, all loop-free.
  EXPECT_GE(r.outcomes.size(), 2u);
  EXPECT_LE(r.outcomes.size(), 4u);
  EXPECT_GT(r.stats.det_steps, 0u);
  EXPECT_GT(r.stats.nondet_branches, 0u);
}

TEST(BgpProcessUnit, SessionLivenessUnderLinkFailure) {
  Figure6 fx;
  BgpProcess proc(fx.net, *Prefix::parse("10.0.0.0/16"), {fx.r1});
  ModelContext ctx;
  ctx.net = &fx.net;
  FailureSet failures(fx.net.topo.link_count());
  failures.fail(fx.net.topo.find_link(fx.r1, fx.r2));
  proc.prepare(failures, ctx);
  const auto peers = proc.peers(fx.r2);
  EXPECT_EQ(std::find(peers.begin(), peers.end(), fx.r1), peers.end())
      << "failed link tears the eBGP session down";
}

TEST(BgpProcessUnit, CanTransmitOnEbgpAlways) {
  Figure6 fx;
  BgpProcess proc(fx.net, *Prefix::parse("10.0.0.0/16"), {fx.r1});
  ModelContext ctx;
  ctx.net = &fx.net;
  proc.prepare(fx.net.topo.no_failures(), ctx);
  EXPECT_TRUE(proc.can_transmit(fx.r4, fx.r6));
  EXPECT_FALSE(proc.can_transmit(fx.r1, fx.r4)) << "no session between R1/R4";
}

}  // namespace
}  // namespace plankton
