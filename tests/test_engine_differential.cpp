// Differential fuzzing of the exploration engines (the tentpole harness).
//
// Plankton's equivalence-partitioned model checking is only trustworthy if
// every exploration order visits the same violation set. This harness
// generates seeded random topology/config instances (tests/support/
// random_net.hpp: rings, fat-trees, random OSPF/BGP graphs, protocol+static
// mixes, with failure budgets) and checks, per instance:
//
//   · kDfs, kBfs, kBfs+split, kPriority, and kRandomRestart (two seeds)
//     produce identical verdicts, violation multisets, and state-count
//     invariants (states stored, converged states, failure sets, policy
//     checks) — the frontier engines reorder the search, never change it;
//   · kSingleExecution (Batfish-style simulation) is sound: its violations
//     and converged outcomes are subsets of the exhaustive ones, one
//     execution per (failure set × upstream outcome) root;
//   · on pure single-prefix eBGP instances, every exhaustive engine's
//     converged path set equals the SPVP message-passing oracle's
//     (Theorem 1, Appendix A).
//
// Reproduction workflow: every assertion names the instance seed; rebuild
// the instance with make_random_instance(seed) and re-run one engine. The
// instance count scales with PLANKTON_DIFF_SEEDS (nightly CI runs more).
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>

#include "core/verifier.hpp"
#include "pec/pec.hpp"
#include "protocols/spvp.hpp"
#include "rpvp/explorer.hpp"
#include "support/random_net.hpp"

namespace plankton {
namespace {

using testsupport::RandomInstance;
using testsupport::make_random_instance;

int instance_count() {
  const char* v = std::getenv("PLANKTON_DIFF_SEEDS");
  if (v != nullptr && std::atoi(v) > 0) return std::atoi(v);
  return 220;
}

/// One engine configuration of the differential matrix.
struct EngineSetup {
  std::string label;
  SearchEngineKind kind = SearchEngineKind::kDfs;
  std::uint64_t seed = 1;
  std::uint32_t split_every = 0;
};

std::vector<EngineSetup> exhaustive_matrix(std::uint64_t instance_seed) {
  return {
      {"dfs", SearchEngineKind::kDfs, 1, 0},
      {"bfs", SearchEngineKind::kBfs, 1, 0},
      {"bfs+split", SearchEngineKind::kBfs, 1, 2},
      {"priority", SearchEngineKind::kPriority, 1, 0},
      {"random-restart/a", SearchEngineKind::kRandomRestart, instance_seed, 0},
      {"random-restart/b", SearchEngineKind::kRandomRestart, instance_seed + 7777, 0},
  };
}

/// Everything engine-order-independent a full verification observes, plus
/// the frontier high-water mark (telemetry only — engines differ on it by
/// design, so it is excluded from the equality used by the matrix).
struct Fingerprint {
  bool holds = true;
  std::uint64_t states_stored = 0;
  std::uint64_t converged_states = 0;
  std::uint64_t failure_sets = 0;
  std::uint64_t policy_checks = 0;
  std::multiset<std::string> violations;
  std::uint64_t frontier_peak = 0;

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) {
    return a.holds == b.holds && a.states_stored == b.states_stored &&
           a.converged_states == b.converged_states &&
           a.failure_sets == b.failure_sets &&
           a.policy_checks == b.policy_checks && a.violations == b.violations;
  }
};

VerifyOptions base_options(const RandomInstance& inst) {
  VerifyOptions vo;
  vo.cores = 1;
  vo.explore = inst.explore;  // seeded §4-optimization mix + failure budget
  vo.explore.find_all_violations = true;
  // Suppression elides policy checks for signature-equivalent converged
  // states; which representative gets checked is order-dependent, so the
  // differential fingerprint runs with it off (and checks *more* states).
  vo.explore.suppress_equivalent = false;
  // Partial-order reduction is order-sensitive by design (which interleaving
  // survives depends on the engine's visit order), so the cross-engine
  // state-count fingerprint pins it off. PorOnMatchesPorOff below is the
  // dedicated oracle for the reduction itself.
  vo.explore.por = false;
  return vo;
}

Fingerprint fingerprint(const RandomInstance& inst, const EngineSetup& es,
                        bool por = false, bool find_all = true,
                        std::uint64_t* por_pruned = nullptr) {
  VerifyOptions vo = base_options(inst);
  vo.explore.por = por;
  vo.explore.find_all_violations = find_all;
  if (es.kind == SearchEngineKind::kSingleExecution) {
    vo.explore.simulation = true;
  } else {
    vo.explore.engine_kind = es.kind;
  }
  vo.explore.engine_seed = es.seed;
  vo.explore.engine_split_every = es.split_every;
  Verifier verifier(inst.net, vo);
  const VerifyResult r = verifier.verify(*inst.policy);
  if (por_pruned != nullptr) *por_pruned += r.total.por_pruned;
  Fingerprint fp;
  fp.holds = r.holds;
  fp.states_stored = r.total.states_stored;
  fp.converged_states = r.total.converged_states;
  fp.failure_sets = r.total.failure_sets;
  fp.policy_checks = r.total.policy_checks;
  fp.frontier_peak = r.total.frontier_peak;
  for (const auto& rep : r.reports) {
    for (const auto& v : rep.result.violations) {
      fp.violations.insert(rep.pec_str + "|" + std::to_string(v.failures.hash()) +
                           "|" + v.message);
    }
  }
  return fp;
}

TEST(EngineDifferential, ExhaustiveEnginesAgreeOnRandomInstances) {
  const int count = instance_count();
  std::uint64_t widened = 0;  // instances where a frontier actually widened
  for (int seed = 1; seed <= count; ++seed) {
    const RandomInstance inst = make_random_instance(static_cast<std::uint64_t>(seed));
    SCOPED_TRACE("instance seed " + std::to_string(seed) + " (" + inst.kind +
                 ", k=" + std::to_string(inst.max_failures) + ", policy " +
                 inst.policy->name() + ")");
    Fingerprint ref;
    bool have_ref = false;
    for (const EngineSetup& es : exhaustive_matrix(static_cast<std::uint64_t>(seed))) {
      const Fingerprint fp = fingerprint(inst, es);
      if (!have_ref) {
        ref = fp;
        have_ref = true;
        EXPECT_GT(ref.converged_states, 0u);
        continue;
      }
      EXPECT_EQ(fp, ref) << "engine " << es.label << " diverged from dfs";
      // Widening telemetry, free from the matrix run: did any frontier ever
      // hold more than one pending state on this instance?
      if (es.kind == SearchEngineKind::kBfs && es.split_every == 0 &&
          fp.frontier_peak > 1) {
        ++widened;
      }
    }
  }
  // The corpus must include genuinely non-deterministic searches, otherwise
  // the differential result is vacuous (everything trivially agrees on
  // deterministic move trees).
  EXPECT_GT(widened, static_cast<std::uint64_t>(count) / 20)
      << "corpus too deterministic: frontier never widened";
}

TEST(EngineDifferential, PorOnMatchesPorOffOnRandomInstances) {
  // Dynamic partial-order reduction against the por-off oracle. The
  // reduction prunes *interior* interleavings only: every converged data
  // plane is a terminal state of the move tree and keeps exactly one
  // surviving path to it, so verdicts, violation multisets, converged-state
  // counts, failure sets, and policy checks are all invariants — only
  // states_stored legitimately drops. Checked per engine (kDfs runs the
  // source-set reduction, the frontier engines the sleep-mask one, in two
  // different visit orders).
  const int count = instance_count();
  std::uint64_t pruned = 0;
  const std::vector<EngineSetup> engines = {
      {"dfs", SearchEngineKind::kDfs, 1, 0},
      {"bfs", SearchEngineKind::kBfs, 1, 0},
      {"random-restart", SearchEngineKind::kRandomRestart, 42, 0},
  };
  for (int seed = 1; seed <= count; ++seed) {
    const RandomInstance inst = make_random_instance(static_cast<std::uint64_t>(seed));
    SCOPED_TRACE("instance seed " + std::to_string(seed) + " (" + inst.kind +
                 ", k=" + std::to_string(inst.max_failures) + ", policy " +
                 inst.policy->name() + ")");
    for (const EngineSetup& es : engines) {
      const Fingerprint off = fingerprint(inst, es, false);
      Fingerprint on = fingerprint(inst, es, true, true, &pruned);
      EXPECT_EQ(on.holds, off.holds) << "por changed the verdict under " << es.label;
      EXPECT_EQ(on.violations, off.violations)
          << "por changed the violation multiset under " << es.label;
      EXPECT_EQ(on.converged_states, off.converged_states)
          << "por lost a converged data plane under " << es.label;
      EXPECT_EQ(on.failure_sets, off.failure_sets);
      EXPECT_EQ(on.policy_checks, off.policy_checks);
      EXPECT_LE(on.states_stored, off.states_stored)
          << "por stored more states than the unreduced search";
    }
    // Early-stop + find-all instances self-gate POR off (duplicate violation
    // counts at order-dependent cut states); the first-violation arm keeps
    // the reduction active there, so the corpus also exercises that regime.
    const Fingerprint off1 =
        fingerprint(inst, {"dfs", SearchEngineKind::kDfs, 1, 0}, false, false);
    const Fingerprint on1 = fingerprint(
        inst, {"dfs", SearchEngineKind::kDfs, 1, 0}, true, false, &pruned);
    EXPECT_EQ(on1.holds, off1.holds) << "por changed the first-violation verdict";
  }
  // The reduction must actually fire across the corpus, or the oracle above
  // is vacuous.
  EXPECT_GT(pruned, 0u) << "por never pruned a move across the corpus";
}

/// Dedup contract view: verdict + violation multiset *including rendered
/// trail text* + the per-PEC report identity — everything batch PEC
/// verification promises stays bit-identical to a dedup-off run. (State
/// counts are deliberately absent: dedup exists to change them.)
struct DedupView {
  bool holds = true;
  std::size_t reports = 0;
  std::multiset<std::string> pec_strs;
  std::multiset<std::string> violations;
  std::size_t pecs_deduped = 0;

  friend bool operator==(const DedupView& a, const DedupView& b) {
    return a.holds == b.holds && a.reports == b.reports &&
           a.pec_strs == b.pec_strs && a.violations == b.violations;
  }
};

DedupView dedup_view(const RandomInstance& inst, SearchEngineKind kind,
                     bool dedup) {
  VerifyOptions vo = base_options(inst);
  vo.explore.engine_kind = kind;
  vo.pec_dedup = dedup;
  Verifier verifier(inst.net, vo);
  const VerifyResult r = verifier.verify(*inst.policy);
  DedupView v;
  v.holds = r.holds;
  v.reports = r.reports.size();
  v.pecs_deduped = r.pecs_deduped;
  for (const auto& rep : r.reports) {
    v.pec_strs.insert(rep.pec_str);
    for (const auto& viol : rep.result.violations) {
      v.violations.insert(rep.pec_str + "|" +
                          std::to_string(viol.failures.hash()) + "|" +
                          viol.message + "|" + viol.trail_text);
    }
  }
  return v;
}

TEST(EngineDifferential, DedupOnMatchesDedupOffOnRandomInstances) {
  // Batch PEC verification (eqclass/pec_dedup.hpp) against the dedup-off
  // oracle: identical verdicts, per-PEC reports, and violation multisets
  // with bit-identical trail text, per engine. An unsound class merge shows
  // up here as a clean translated hold against a native violation.
  const int count = instance_count();
  std::uint64_t merged = 0;
  for (int seed = 1; seed <= count; ++seed) {
    const RandomInstance inst = make_random_instance(static_cast<std::uint64_t>(seed));
    SCOPED_TRACE("instance seed " + std::to_string(seed) + " (" + inst.kind +
                 ", policy " + inst.policy->name() + ")");
    for (const SearchEngineKind kind :
         {SearchEngineKind::kDfs, SearchEngineKind::kBfs}) {
      const DedupView on = dedup_view(inst, kind, true);
      const DedupView off = dedup_view(inst, kind, false);
      EXPECT_EQ(on, off) << "dedup diverged under engine "
                         << (kind == SearchEngineKind::kDfs ? "dfs" : "bfs");
      merged += on.pecs_deduped;
    }
  }
  // The corpus must actually exercise class merging (rings and fat-trees
  // are symmetric), otherwise this oracle is vacuous.
  EXPECT_GT(merged, 0u) << "corpus never produced a multi-member class";
}

TEST(EngineDifferential, SingleExecutionIsSoundOnRandomInstances) {
  const int count = instance_count();
  for (int seed = 1; seed <= count; ++seed) {
    const RandomInstance inst = make_random_instance(static_cast<std::uint64_t>(seed));
    SCOPED_TRACE("instance seed " + std::to_string(seed) + " (" + inst.kind + ")");
    const Fingerprint full =
        fingerprint(inst, {"dfs", SearchEngineKind::kDfs, 1, 0});
    const Fingerprint sim =
        fingerprint(inst, {"single", SearchEngineKind::kSingleExecution, 1, 0});
    // Simulation follows one execution per root: it can never check more
    // converged states than the exhaustive engine, and every violation it
    // reports must be one the exhaustive engine also found.
    EXPECT_LE(sim.converged_states, full.converged_states);
    EXPECT_EQ(sim.failure_sets, full.failure_sets)
        << "failure enumeration is model-driven, not engine-driven";
    if (full.holds) {
      EXPECT_TRUE(sim.holds) << "simulation reported a phantom violation";
    }
    for (const std::string& v : sim.violations) {
      EXPECT_TRUE(full.violations.contains(v))
          << "simulation-only violation: " << v;
    }
  }
}

TEST(EngineDifferential, SingleExecutionOutcomesAreSubsetPerPec) {
  // Explorer-level subset check on the single routed PEC of eligible
  // instances: simulation's converged outcome hashes ⊆ the exhaustive set.
  const int count = instance_count();
  int checked = 0;
  int nonempty = 0;
  for (int seed = 1; seed <= count && checked < 60; ++seed) {
    const RandomInstance inst = make_random_instance(static_cast<std::uint64_t>(seed));
    if (!inst.spvp_eligible) continue;
    SCOPED_TRACE("instance seed " + std::to_string(seed) + " (" + inst.kind + ")");
    const PecSet pecs = compute_pecs(inst.net);
    const auto routed = pecs.routed();
    ASSERT_FALSE(routed.empty());
    const Pec& pec = pecs.pecs[routed[0]];
    std::set<std::uint64_t> sets[2];
    for (const bool sim : {false, true}) {
      ExploreOptions opts = inst.explore;
      opts.find_all_violations = true;
      opts.record_outcomes = true;
      opts.simulation = sim;
      Explorer ex(inst.net, pec, make_tasks(inst.net, pec), *inst.policy, opts);
      const ExploreResult r = ex.run();
      ASSERT_FALSE(r.timed_out);
      for (const auto& o : r.outcomes) sets[sim ? 1 : 0].insert(o.hash);
    }
    EXPECT_TRUE(std::includes(sets[0].begin(), sets[0].end(), sets[1].begin(),
                              sets[1].end()))
        << "simulation reached an outcome the exhaustive search did not";
    EXPECT_FALSE(sets[0].empty());
    // sets[1] may legitimately be empty: under consistent-execution pruning
    // a single first-move execution can dead-end without converging.
    if (!sets[1].empty()) ++nonempty;
    ++checked;
  }
  EXPECT_GT(checked, 0);
  EXPECT_GT(nonempty, 0) << "simulation never converged on any instance";
}

/// Policy that records each converged state's per-node best paths (the SPVP
/// comparison view, mirroring tests/test_spvp_reference.cpp).
class CollectorPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "collector"; }
  [[nodiscard]] bool check(const ConvergedView& view, std::string&) const override {
    spvp::ConvergedState cs(view.net.topo.node_count());
    for (NodeId n = 0; n < view.net.topo.node_count(); ++n) {
      const RouteId r = view.ribs[0].routes[n];
      if (r != kNoRoute) {
        cs[n] = view.ctx.paths.to_vector(view.ctx.routes.get(r).path);
      }
    }
    collected.insert(std::move(cs));
    return true;
  }
  [[nodiscard]] bool supports_equivalence() const override { return false; }

  mutable std::set<spvp::ConvergedState> collected;
};

TEST(EngineDifferential, AllEnginesMatchSpvpOracleOnPureBgp) {
  const int count = instance_count();
  int checked = 0;
  for (int seed = 1; seed <= count && checked < 25; ++seed) {
    const RandomInstance inst = make_random_instance(static_cast<std::uint64_t>(seed));
    if (!inst.spvp_eligible) continue;
    SCOPED_TRACE("instance seed " + std::to_string(seed) + " (" + inst.kind + ")");
    const spvp::SpvpResult oracle = spvp::explore_spvp(
        inst.net, inst.bgp_prefix, inst.bgp_origins, 200000);
    if (oracle.state_limit_hit) continue;  // too big to enumerate, skip
    const PecSet pecs = compute_pecs(inst.net);
    const Pec& pec = pecs.pecs[pecs.routed()[0]];
    for (const EngineSetup& es : exhaustive_matrix(static_cast<std::uint64_t>(seed))) {
      ExploreOptions opts = inst.explore;
      opts.max_failures = 0;  // the SPVP oracle explores the failure-free net
      opts.find_all_violations = true;
      opts.suppress_equivalent = false;
      opts.engine_kind = es.kind;
      opts.engine_seed = es.seed;
      opts.engine_split_every = es.split_every;
      const CollectorPolicy collector;
      Explorer ex(inst.net, pec, make_tasks(inst.net, pec), collector, opts);
      const ExploreResult r = ex.run();
      ASSERT_FALSE(r.timed_out);
      EXPECT_EQ(collector.collected, oracle.converged)
          << "engine " << es.label << " disagrees with the SPVP oracle";
    }
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

}  // namespace
}  // namespace plankton
