// Dedicated coverage for sched/outcome_store.*: serialization round-trips
// (the wire format of the multi-process sharding roadmap item), concurrent
// writers, and eviction — plus the Verifier's evict-after-last-dependent
// integration.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/verifier.hpp"
#include "pec/pec.hpp"
#include "sched/outcome_store.hpp"
#include "workload/enterprise.hpp"
#include "workload/ring.hpp"

namespace plankton {
namespace {

class TruePolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "true"; }
  [[nodiscard]] bool check(const ConvergedView&, std::string&) const override {
    return true;
  }
};

/// Real converged outcomes for the routed PEC of a 5-ring under ≤1 failure —
/// several distinct failure sets, data planes, and IGP cost vectors.
std::vector<PecOutcome> ring_outcomes(const Network& net, const PecSet& pecs) {
  const Pec& pec = pecs.pecs[pecs.routed()[0]];
  ExploreOptions opts;
  opts.max_failures = 1;
  opts.record_outcomes = true;
  opts.find_all_violations = true;
  const TruePolicy policy;
  Explorer ex(net, pec, make_tasks(net, pec), policy, opts);
  ExploreResult r = ex.run();
  EXPECT_GT(r.outcomes.size(), 1u);
  return std::move(r.outcomes);
}

void expect_outcomes_equal(const PecOutcome& a, const PecOutcome& b) {
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.upstream_hash, b.upstream_hash);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.igp_cost, b.igp_cost);
  ASSERT_EQ(a.dp.entries.size(), b.dp.entries.size());
  for (std::size_t i = 0; i < a.dp.entries.size(); ++i) {
    EXPECT_EQ(a.dp.entries[i].kind, b.dp.entries[i].kind);
    EXPECT_EQ(a.dp.entries[i].source, b.dp.entries[i].source);
    EXPECT_EQ(a.dp.entries[i].prefix_idx, b.dp.entries[i].prefix_idx);
    EXPECT_EQ(a.dp.entries[i].nexthops, b.dp.entries[i].nexthops);
  }
}

TEST(OutcomeStoreSerial, RoundTripsRealOutcomes) {
  const Network net = make_ring(5);
  const PecSet pecs = compute_pecs(net);
  OutcomeStore store(net, pecs);
  const std::vector<PecOutcome> outs = ring_outcomes(net, pecs);

  const std::string wire = store.serialize(outs);
  EXPECT_FALSE(wire.empty());
  std::vector<PecOutcome> back;
  ASSERT_TRUE(store.deserialize(wire, back));
  ASSERT_EQ(back.size(), outs.size());
  for (std::size_t i = 0; i < outs.size(); ++i) {
    expect_outcomes_equal(outs[i], back[i]);
  }
  // Deserialized outcomes are fully functional store content: combos built
  // from them resolve like the originals.
  store.put(pecs.routed()[0], std::move(back));
  const std::vector<PecId> deps{pecs.routed()[0]};
  EXPECT_EQ(store.combos(deps, net.topo.no_failures()).size(), 1u);
}

TEST(OutcomeStoreSerial, RoundTripsEmptyBatch) {
  const Network net = make_ring(4);
  const PecSet pecs = compute_pecs(net);
  OutcomeStore store(net, pecs);
  std::vector<PecOutcome> back;
  ASSERT_TRUE(store.deserialize(store.serialize({}), back));
  EXPECT_TRUE(back.empty());
}

TEST(OutcomeStoreSerial, RejectsCorruptInput) {
  const Network net = make_ring(5);
  const PecSet pecs = compute_pecs(net);
  OutcomeStore store(net, pecs);
  const std::string wire = store.serialize(ring_outcomes(net, pecs));
  std::vector<PecOutcome> back;

  EXPECT_FALSE(store.deserialize("", back)) << "empty input";
  EXPECT_FALSE(store.deserialize("nonsense", back)) << "bad magic";
  EXPECT_FALSE(store.deserialize(wire.substr(0, wire.size() / 2), back))
      << "truncated input";
  EXPECT_FALSE(store.deserialize(wire + "x", back)) << "trailing garbage";

  // Truncation mid-batch must not hand back a partial batch.
  EXPECT_TRUE(back.empty()) << "failed deserialize must leave out empty";

  // A batch serialized against a different topology (different link count)
  // must be rejected rather than misinterpreted.
  const Network other = make_ring(7);
  const PecSet other_pecs = compute_pecs(other);
  OutcomeStore other_store(other, other_pecs);
  EXPECT_FALSE(other_store.deserialize(wire, back)) << "foreign topology";

  // Hostile length fields: a valid header followed by an absurd element
  // count must be rejected by the bounds check, not turned into a
  // multi-gigabyte allocation.
  std::string hostile;
  const auto put32 = [&hostile](std::uint32_t v) {
    hostile.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  const auto put64 = [&hostile](std::uint64_t v) {
    hostile.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put32(0x504b4f31);                                        // magic
  put32(static_cast<std::uint32_t>(net.topo.link_count()));  // links
  put64(1);                                                  // one outcome
  put64(0);                                                  // upstream_hash
  put64(0);                                                  // hash
  put32(0);                                                  // no failures
  put32(0xffffffffu);                                        // igp count: 4G
  EXPECT_FALSE(store.deserialize(hostile, back)) << "hostile igp count";
  EXPECT_TRUE(back.empty());
}

TEST(OutcomeStoreConcurrency, ParallelWritersAndReaders) {
  const Network net = make_ring(5);
  const PecSet pecs = compute_pecs(net);
  OutcomeStore store(net, pecs);
  const std::vector<PecOutcome> base = ring_outcomes(net, pecs);

  constexpr int kWriters = 8;
  constexpr int kRounds = 50;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      const auto pec = static_cast<PecId>(w);
      for (int round = 0; round < kRounds; ++round) {
        std::vector<PecOutcome> mine = base;
        for (PecOutcome& o : mine) {
          o.upstream_hash = static_cast<std::uint64_t>(w);  // writer tag
        }
        store.put(pec, std::move(mine));
        const auto got = store.get(pec);
        if (got.empty() || got.front().upstream_hash != static_cast<std::uint64_t>(w)) {
          mismatches.fetch_add(1);
        }
        if (round % 8 == 0) store.evict(pec);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "a writer observed another writer's (or torn) data under its key";
}

TEST(OutcomeStoreEviction, EvictReleasesStorage) {
  const Network net = make_ring(5);
  const PecSet pecs = compute_pecs(net);
  OutcomeStore store(net, pecs);
  EXPECT_EQ(store.bytes(), 0u);

  store.put(3, ring_outcomes(net, pecs));
  EXPECT_TRUE(store.has(3));
  const std::size_t occupied = store.bytes();
  EXPECT_GT(occupied, 0u);

  // combos() on the stored outcomes still works, then eviction empties the
  // store: has() false, bytes back to zero, combos empty (the "dependency
  // has no outcome" signal).
  const std::vector<PecId> deps{3};
  // (PecId 3 is an arbitrary key here; combos matches by failure set only.)
  store.evict(3);
  EXPECT_FALSE(store.has(3));
  EXPECT_EQ(store.bytes(), 0u);
  EXPECT_TRUE(store.combos(deps, net.topo.no_failures()).empty());

  store.evict(3);  // double-evict is a no-op
  EXPECT_FALSE(store.has(3));
}

TEST(OutcomeStoreEviction, VerifierWithDependenciesStaysCorrect) {
  // The Verifier now evicts each PEC's outcomes after its last dependent
  // completes. The enterprise workloads exercise recursive-static dependency
  // chains; verdicts and per-PEC results must be unaffected, serial and
  // parallel.
  const Enterprise ent = make_enterprise("VII");
  const ReachabilityPolicy policy({ent.access.front()});
  VerifyResult results[2];
  for (const int cores : {1, 4}) {
    VerifyOptions vo;
    vo.cores = cores;
    vo.explore.find_all_violations = true;
    // Address-targeted verification runs the dependency closure as support
    // PECs — exactly the put → combos → evict lifecycle.
    results[cores == 1 ? 0 : 1] =
        Verifier(ent.net, vo).verify_address(IpAddr(10, 200, 0, 1), policy);
  }
  EXPECT_EQ(results[0].holds, results[1].holds);
  EXPECT_EQ(results[0].pecs_verified, results[1].pecs_verified);
  EXPECT_EQ(results[0].pecs_support, results[1].pecs_support);
  EXPECT_EQ(results[0].total.states_explored, results[1].total.states_explored);
  EXPECT_GT(results[0].pecs_support, 0u) << "workload must exercise dependencies";
}

}  // namespace
}  // namespace plankton
