// Deterministic fault injection for the shard transport and worker loop
// (sched/fault.hpp): plan syntax, the seeded plan sweep, hang detection via
// heartbeats, and clean coordinator failure when recovery is impossible.
//
// The headline guarantees under test:
//   · seeded FaultPlans (short writes, torn frames, EINTR storms, crashes,
//     hangs) over the random_net corpus produce verdicts and violation
//     multisets bit-identical to the in-process oracle whenever recovery
//     succeeds — faults are invisible in the result, visible only in the
//     shard stats;
//   · a worker wedged forever (write lock held, heartbeats stalled) is
//     detected via missed heartbeats, SIGKILLed at the hard deadline, its
//     task reassigned, and the run completes bit-identical to fault-free;
//   · a fault that survives every respawn (gen*) exhausts the reassignment
//     cap and surfaces a clean coordinator error — the Verifier then falls
//     back in-process and still returns the correct verdict (never hangs,
//     never a wrong verdict).
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>

#include "core/verifier.hpp"
#include "sched/fault.hpp"
#include "sched/shard.hpp"
#include "support/figure6.hpp"
#include "support/random_net.hpp"
#include "workload/enterprise.hpp"

namespace plankton {
namespace {

using testsupport::Figure6;
using testsupport::RandomInstance;
using testsupport::make_random_instance;

sched::FaultPlan parse_plan(const std::string& text) {
  sched::FaultPlan plan;
  std::string error;
  EXPECT_TRUE(sched::parse_fault_plan(text, plan, error))
      << "'" << text << "': " << error;
  return plan;
}

// ---------------------------------------------------------------------------
// Plan syntax
// ---------------------------------------------------------------------------

TEST(FaultPlan, ParsesDirectivesAndRoundTrips) {
  const char* plans[] = {
      "crash@2",         "torn@1",
      "hang@3:50",       "wedge@1:0",
      "shortw",          "eintr@4",
      "crash@2;slot=1",  "torn@1;gen*",
      "crash@1;shortw;slot=0;gen*",
      // Network-level socket faults (connection dies, process survives):
      "stall@2:40",      "drop-conn@1",
      "torn-tcp@3",      "slow-read@2:15",
      "drop-conn@1;slot=1",
      "crash@2;stall@1:10;gen*",
  };
  for (const char* text : plans) {
    const sched::FaultPlan plan = parse_plan(text);
    EXPECT_FALSE(plan.empty()) << text;
    EXPECT_EQ(plan.str(), text) << "canonical render must round-trip";
    const sched::FaultPlan again = parse_plan(plan.str());
    EXPECT_EQ(again.str(), plan.str());
  }
  // Comma separation and whitespace are accepted; render is canonical.
  EXPECT_EQ(parse_plan("crash@2, slot=1").str(), "crash@2;slot=1");
  EXPECT_TRUE(parse_plan("").empty());
}

TEST(FaultPlan, RejectsMalformedDirectives) {
  const char* bad[] = {"crash",     "crash@0",   "crash@x", "hang@2",
                       "wedge@1",   "eintr@0",   "slot=",   "frobnicate@1",
                       "crash@1:2", "shortw@3",  "stall@1", "stall@0:10",
                       "drop-conn", "drop-conn@0",          "drop-conn@1:5",
                       "torn-tcp@x",             "slow-read@2"};
  for (const char* text : bad) {
    sched::FaultPlan plan;
    std::string error;
    EXPECT_FALSE(sched::parse_fault_plan(text, plan, error)) << text;
    EXPECT_FALSE(error.empty()) << text;
    EXPECT_TRUE(plan.empty()) << "a failed parse must not leave partial state";
  }
}

TEST(FaultPlan, SeededPlansAreDeterministicAndScoped) {
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const sched::FaultPlan a = sched::FaultPlan::from_seed(seed);
    const sched::FaultPlan b = sched::FaultPlan::from_seed(seed);
    EXPECT_EQ(a.str(), b.str()) << "seed " << seed;
    EXPECT_FALSE(a.empty()) << "seed " << seed;
    // Generation scoping: by default the fault fires only at generation 0,
    // so the respawned worker is healthy and recovery always succeeds.
    EXPECT_TRUE(a.for_worker(0, 0).any()) << "seed " << seed;
    EXPECT_FALSE(a.for_worker(0, 1).any()) << "seed " << seed;
  }
  // seed= in the directive syntax derives the same plan.
  const sched::FaultPlan direct = sched::FaultPlan::from_seed(7);
  EXPECT_EQ(parse_plan("seed=7").str(), direct.str());
}

TEST(FaultPlan, SocketSeededPlansAreDeterministicAndScoped) {
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const sched::FaultPlan a = sched::FaultPlan::from_seed_socket(seed);
    const sched::FaultPlan b = sched::FaultPlan::from_seed_socket(seed);
    EXPECT_EQ(a.str(), b.str()) << "seed " << seed;
    EXPECT_FALSE(a.empty()) << "seed " << seed;
    // Every socket plan must schedule a socket-class fault, not a process
    // one: the sweep exercises connection death, never worker death.
    const sched::WorkerFaults wf = a.for_worker(0, 0);
    EXPECT_TRUE(wf.stall_at_frame != 0 || wf.drop_conn_at_frame != 0 ||
                wf.torn_tcp_at_frame != 0 || wf.slow_read_at != 0)
        << "seed " << seed << " -> '" << a.str() << "'";
    EXPECT_EQ(wf.crash_at_frame, 0u) << "seed " << seed;
    // Generation-0 scoping, like from_seed: recovery always succeeds.
    EXPECT_FALSE(a.for_worker(0, 1).any()) << "seed " << seed;
    // And the canonical string round-trips through the parser.
    sched::FaultPlan parsed;
    std::string error;
    ASSERT_TRUE(sched::parse_fault_plan(a.str(), parsed, error)) << error;
    EXPECT_EQ(parsed.str(), a.str());
  }
}

TEST(FaultPlan, SlotScopingLimitsTheBlastRadius) {
  const sched::FaultPlan plan = parse_plan("crash@1;slot=1");
  EXPECT_FALSE(plan.for_worker(0, 0).any());
  EXPECT_TRUE(plan.for_worker(1, 0).any());
  EXPECT_FALSE(plan.for_worker(2, 0).any());
}

// ---------------------------------------------------------------------------
// Heartbeat framing
// ---------------------------------------------------------------------------

TEST(FaultPlan, HeartbeatFrameRoundTrips) {
  sched::HeartbeatMsg hb;
  hb.progress = 0x1122334455667788ull;
  const std::string payload = sched::encode_heartbeat(hb);
  sched::HeartbeatMsg out;
  ASSERT_TRUE(sched::decode_heartbeat(payload, out));
  EXPECT_EQ(out.progress, hb.progress);
  EXPECT_FALSE(sched::decode_heartbeat(payload.substr(0, 3), out));
  EXPECT_FALSE(sched::decode_heartbeat(payload + "x", out));
}

// ---------------------------------------------------------------------------
// Bit-identity under recoverable faults: the seeded plan sweep
// ---------------------------------------------------------------------------

/// Verdict + violation multiset + the exploration counters (the
/// test_shard_coordinator.cpp fingerprint, reused for fault runs).
struct Fingerprint {
  bool holds = true;
  Verdict verdict = Verdict::kHolds;
  std::size_t pecs_verified = 0;
  std::uint64_t states_explored = 0;
  std::uint64_t converged_states = 0;
  std::multiset<std::string> violations;

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) {
    return a.holds == b.holds && a.verdict == b.verdict &&
           a.pecs_verified == b.pecs_verified &&
           a.states_explored == b.states_explored &&
           a.converged_states == b.converged_states &&
           a.violations == b.violations;
  }
};

Fingerprint fingerprint(const VerifyResult& r) {
  Fingerprint fp;
  fp.holds = r.holds;
  fp.verdict = r.verdict;
  fp.pecs_verified = r.pecs_verified;
  fp.states_explored = r.total.states_explored;
  fp.converged_states = r.total.converged_states;
  for (const auto& rep : r.reports) {
    for (const auto& v : rep.result.violations) {
      fp.violations.insert(rep.pec_str + "|" +
                           std::to_string(v.failures.hash()) + "|" + v.message +
                           "|" + v.trail_text);
    }
  }
  return fp;
}

VerifyResult run_verify(const Network& net, const Policy& policy,
                        VerifyOptions vo) {
  Verifier verifier(net, vo);
  return verifier.verify(policy);
}

TEST(FaultInjectionSweep, SeededPlansMatchTheInProcessOracle) {
  // Every seeded plan is generation-0-scoped, so recovery always succeeds
  // within the reassignment cap and the sharded result must be bit-identical
  // to the fault-free in-process oracle. Corpus scales with
  // PLANKTON_DIFF_SEEDS like the other differential harnesses.
  int count = 10;
  if (const char* v = std::getenv("PLANKTON_DIFF_SEEDS");
      v != nullptr && std::atoi(v) > 0) {
    count = std::max(6, std::atoi(v) / 10);
  }
  for (int seed = 1; seed <= count; ++seed) {
    const RandomInstance inst =
        make_random_instance(static_cast<std::uint64_t>(seed));
    const sched::FaultPlan plan =
        sched::FaultPlan::from_seed(static_cast<std::uint64_t>(seed));
    SCOPED_TRACE("instance seed " + std::to_string(seed) + " (" + inst.kind +
                 ", policy " + inst.policy->name() + ", plan '" + plan.str() +
                 "')");
    VerifyOptions vo;
    vo.cores = 1;
    vo.explore = inst.explore;
    vo.explore.find_all_violations = true;  // no early-stop nondeterminism
    vo.explore.suppress_equivalent = false;
    const Fingerprint ref = fingerprint(run_verify(inst.net, *inst.policy, vo));

    VerifyOptions sv = vo;
    sv.shards = 2;
    sv.shard_fault_plan = plan;
    // A tight heartbeat keeps hang-class plans cheap to sit through while
    // leaving the default 30 s hard deadline (hangs here are tens of ms —
    // slow, not stuck; nothing should be killed).
    sv.shard_heartbeat_interval_ms = 10;
    const VerifyResult r = run_verify(inst.net, *inst.policy, sv);
    EXPECT_EQ(fingerprint(r), ref)
        << "plan '" << plan.str() << "' changed the merged verdict";
  }
}

TEST(FaultInjectionSweep, TransportFaultsAreInvisibleInTheResult) {
  // One fixed workload through every fault class, asserting both bit-identity
  // and that the coordinator actually saw the fault (reassignment / recovery
  // stats), so a silently non-firing plan cannot pass the sweep vacuously.
  const Figure6 fx;
  const ReachabilityPolicy policy({fx.r6});
  VerifyOptions vo;
  vo.explore.find_all_violations = true;
  const Fingerprint ref = fingerprint(run_verify(fx.net, policy, vo));

  struct Case {
    const char* plan;
    bool kills;  ///< the fault kills a worker (vs degrades the wire)
  };
  const Case cases[] = {
      {"crash@1", true},     {"torn@1", true},
      {"shortw", false},     {"eintr@3", false},
      {"hang@1:30", false},  {"crash@1;slot=0", true},
      {"shortw;eintr@2", false},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.plan);
    VerifyOptions sv = vo;
    sv.shards = 2;
    sv.shard_fault_plan = parse_plan(c.plan);
    sv.shard_heartbeat_interval_ms = 10;
    // Hold each task in flight long enough for at least one beacon beat
    // (10 ms cadence) before the task's frames go out.
    sv.shard_test_worker_delay_ms = 25;
    const VerifyResult r = run_verify(fx.net, policy, sv);
    EXPECT_EQ(fingerprint(r), ref) << "verdict diverged under '" << c.plan
                                   << "'";
    if (c.kills) {
      EXPECT_GE(r.shard.tasks_reassigned, 1u)
          << "plan '" << c.plan << "' never actually killed a worker";
    }
    EXPECT_GT(r.shard.heartbeats, 0u) << "beacon thread never reported in";
  }
}

TEST(FaultInjectionSweep, MidStreamFaultsDiscardPartialResults) {
  // Frame-2 faults: the worker dies after a complete result frame has
  // already crossed the wire (Figure 6 is a single task, so a task-rich
  // workload is needed for a second frame to exist). Violation frames the
  // dead worker sent before kTaskDone must be discarded with the task —
  // a duplicate in the merged multiset would break bit-identity here.
  const Enterprise ent = make_enterprise("VII");
  const ReachabilityPolicy policy({ent.access.front()});
  VerifyOptions vo;
  vo.explore.find_all_violations = true;
  const Fingerprint ref = fingerprint(run_verify(ent.net, policy, vo));
  for (const char* plan : {"crash@2", "torn@2", "crash@3;shortw"}) {
    SCOPED_TRACE(plan);
    VerifyOptions sv = vo;
    sv.shards = 2;
    sv.shard_fault_plan = parse_plan(plan);
    sv.shard_heartbeat_interval_ms = 10;
    const VerifyResult r = run_verify(ent.net, policy, sv);
    EXPECT_EQ(fingerprint(r), ref) << "verdict diverged under '" << plan
                                   << "'";
    EXPECT_GE(r.shard.tasks_reassigned, 1u)
        << "plan '" << plan << "' never actually killed a worker";
  }
}

// ---------------------------------------------------------------------------
// Network-level socket faults: connection dies, process survives
// ---------------------------------------------------------------------------

TEST(SocketFaultSweep, SeededSocketPlansMatchTheInProcessOracle) {
  // The socket counterpart of SeededPlansMatchTheInProcessOracle: seeded
  // stall/drop-conn/torn-tcp/slow-read plans over the random corpus. All are
  // generation-0-scoped, so the reconnect/reassign machinery always recovers
  // and the result must be bit-identical to the fault-free oracle.
  int count = 10;
  if (const char* v = std::getenv("PLANKTON_DIFF_SEEDS");
      v != nullptr && std::atoi(v) > 0) {
    count = std::max(6, std::atoi(v) / 10);
  }
  for (int seed = 1; seed <= count; ++seed) {
    const RandomInstance inst =
        make_random_instance(static_cast<std::uint64_t>(seed));
    const sched::FaultPlan plan =
        sched::FaultPlan::from_seed_socket(static_cast<std::uint64_t>(seed));
    SCOPED_TRACE("instance seed " + std::to_string(seed) + " (" + inst.kind +
                 ", policy " + inst.policy->name() + ", plan '" + plan.str() +
                 "')");
    VerifyOptions vo;
    vo.cores = 1;
    vo.explore = inst.explore;
    vo.explore.find_all_violations = true;
    vo.explore.suppress_equivalent = false;
    const Fingerprint ref = fingerprint(run_verify(inst.net, *inst.policy, vo));

    VerifyOptions sv = vo;
    sv.shards = 2;
    sv.shard_fault_plan = plan;
    sv.shard_heartbeat_interval_ms = 10;
    const VerifyResult r = run_verify(inst.net, *inst.policy, sv);
    EXPECT_EQ(fingerprint(r), ref)
        << "plan '" << plan.str() << "' changed the merged verdict";
  }
}

TEST(SocketFaultSweep, EachSocketFaultClassIsInvisibleInTheResult) {
  // One fixed workload through each socket-fault class. drop-conn and
  // torn-tcp kill the connection (the worker survives), so the coordinator
  // must reassign; stall and slow-read merely degrade the wire and must
  // leave the shard stats clean of reassignments.
  const Figure6 fx;
  const ReachabilityPolicy policy({fx.r6});
  VerifyOptions vo;
  vo.explore.find_all_violations = true;
  const Fingerprint ref = fingerprint(run_verify(fx.net, policy, vo));

  struct Case {
    const char* plan;
    bool kills_conn;  ///< the connection dies (vs is merely slow)
  };
  const Case cases[] = {
      {"stall@1:30", false},
      {"drop-conn@1", true},
      {"torn-tcp@1", true},
      {"slow-read@2:30", false},
      {"drop-conn@1;slot=0", true},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.plan);
    VerifyOptions sv = vo;
    sv.shards = 2;
    sv.shard_fault_plan = parse_plan(c.plan);
    sv.shard_heartbeat_interval_ms = 10;
    const VerifyResult r = run_verify(fx.net, policy, sv);
    EXPECT_EQ(fingerprint(r), ref)
        << "verdict diverged under '" << c.plan << "'";
    if (c.kills_conn) {
      EXPECT_GE(r.shard.tasks_reassigned, 1u)
          << "plan '" << c.plan << "' never actually dropped a connection";
    } else {
      EXPECT_EQ(r.shard.tasks_reassigned, 0u)
          << "a merely-slow wire must not trigger reassignment";
    }
  }
}

TEST(SocketFaultSweep, TornTcpMidStreamDiscardsPartialResults) {
  // A torn stream after a complete result frame crossed the wire: everything
  // the dead connection delivered pre-tear must be discarded with the task,
  // or the merged violation multiset gains duplicates and bit-identity dies.
  const Enterprise ent = make_enterprise("VII");
  const ReachabilityPolicy policy({ent.access.front()});
  VerifyOptions vo;
  vo.explore.find_all_violations = true;
  const Fingerprint ref = fingerprint(run_verify(ent.net, policy, vo));
  for (const char* plan : {"torn-tcp@2", "drop-conn@2"}) {
    SCOPED_TRACE(plan);
    VerifyOptions sv = vo;
    sv.shards = 2;
    sv.shard_fault_plan = parse_plan(plan);
    sv.shard_heartbeat_interval_ms = 10;
    const VerifyResult r = run_verify(ent.net, policy, sv);
    EXPECT_EQ(fingerprint(r), ref) << "verdict diverged under '" << plan
                                   << "'";
    EXPECT_GE(r.shard.tasks_reassigned, 1u)
        << "plan '" << plan << "' never actually severed the stream";
  }
}

TEST(SocketFaultUnrecoverable, PersistentDropConnNeverYieldsAFalseHold) {
  // gen*: every incarnation's connection dies on its first data frame. The
  // coordinator exhausts the reassignment cap, errors out cleanly, and the
  // in-process fallback still produces the oracle verdict — the taxonomy
  // contract is kError/kInconclusive or the *correct* verdict, never a hold
  // the sharded run did not earn.
  const Figure6 fx;
  const ReachabilityPolicy policy({fx.r6});
  VerifyOptions vo;
  vo.explore.find_all_violations = true;
  const Fingerprint ref = fingerprint(run_verify(fx.net, policy, vo));

  VerifyOptions sv = vo;
  sv.shards = 2;
  sv.shard_fault_plan = parse_plan("drop-conn@1;gen*");
  sv.shard_heartbeat_interval_ms = 10;
  const VerifyResult r = run_verify(fx.net, policy, sv);
  EXPECT_EQ(fingerprint(r), ref)
      << "the in-process fallback verdict must match the oracle";
  EXPECT_TRUE(r.shard.tasks_per_shard.empty())
      << "the failed sharded attempt must not leave merged shard stats";
}

// ---------------------------------------------------------------------------
// Hang detection: the supervision escalation ladder
// ---------------------------------------------------------------------------

TEST(FaultInjectionHangs, WedgedWorkerIsKilledAndReassigned) {
  // wedge@1:0 = the worker's first incarnation wedges forever *holding the
  // frame-write lock*, so its heartbeat beacon stalls too. The coordinator
  // must notice the missed heartbeats, escalate soft -> hard, SIGKILL the
  // worker at the hard deadline, reassign its task, and still converge to
  // the bit-identical fault-free result (the acceptance criterion).
  const Enterprise ent = make_enterprise("VII");
  const ReachabilityPolicy policy({ent.access.front()});
  VerifyOptions vo;
  vo.explore.find_all_violations = true;
  const Fingerprint ref = fingerprint(
      Verifier(ent.net, vo).verify_address(IpAddr(10, 200, 0, 1), policy));

  VerifyOptions sv = vo;
  sv.shards = 2;
  sv.shard_fault_plan = parse_plan("wedge@1:0;slot=0");
  sv.shard_heartbeat_interval_ms = 10;
  sv.shard_soft_deadline_ms = 60;
  sv.shard_hard_deadline_ms = 250;
  const VerifyResult r =
      Verifier(ent.net, sv).verify_address(IpAddr(10, 200, 0, 1), policy);
  EXPECT_EQ(fingerprint(r), ref)
      << "hang recovery changed the merged verdict";
  EXPECT_GE(r.shard.hang_kills, 1u) << "the wedge was never detected";
  EXPECT_GE(r.shard.progress_probes, 1u)
      << "the soft deadline never escalated";
  EXPECT_GE(r.shard.tasks_reassigned, 1u);
  // The surviving worker may drain the queue before slot 0's respawn backoff
  // elapses, so a respawn is possible but not guaranteed — the reassignment
  // above is the recovery that matters.
}

TEST(FaultInjectionHangs, SlowButAliveWorkerIsNotKilled) {
  // hang@1:120 without the lock: the worker is slow but its beacon keeps
  // beating and the worker-loop progress counter keeps moving, so the hard
  // deadline must NOT fire even though it is far shorter than the hang.
  const Figure6 fx;
  const ReachabilityPolicy policy({fx.r6});
  VerifyOptions vo;
  vo.explore.find_all_violations = true;
  const Fingerprint ref = fingerprint(run_verify(fx.net, policy, vo));

  VerifyOptions sv = vo;
  sv.shards = 1;
  sv.shard_fault_plan = parse_plan("hang@1:120");
  sv.shard_heartbeat_interval_ms = 10;
  sv.shard_soft_deadline_ms = 40;
  sv.shard_hard_deadline_ms = 300;
  const VerifyResult r = run_verify(fx.net, policy, sv);
  EXPECT_EQ(fingerprint(r), ref);
  EXPECT_EQ(r.shard.hang_kills, 0u)
      << "a slow worker with live heartbeats was killed";
  EXPECT_EQ(r.shard.workers_respawned, 0u);
}

// ---------------------------------------------------------------------------
// Unrecoverable faults: clean error, correct fallback, no hang
// ---------------------------------------------------------------------------

TEST(FaultInjectionUnrecoverable, PersistentCrashExhaustsTheCapCleanly) {
  // gen*: the crash survives every respawn, so the coordinator must exhaust
  // the per-task reassignment cap and error out — and the Verifier's
  // in-process fallback must still produce the correct verdict. The sharded
  // machinery is retried by the fallback with shards *unset*, so the end
  // result is exactly the oracle's.
  const Figure6 fx;
  const ReachabilityPolicy policy({fx.r6});
  VerifyOptions vo;
  vo.explore.find_all_violations = true;
  const Fingerprint ref = fingerprint(run_verify(fx.net, policy, vo));

  VerifyOptions sv = vo;
  sv.shards = 2;
  sv.shard_fault_plan = parse_plan("crash@1;gen*");
  sv.shard_heartbeat_interval_ms = 10;
  const VerifyResult r = run_verify(fx.net, policy, sv);
  EXPECT_EQ(fingerprint(r), ref)
      << "the in-process fallback verdict must match the oracle";
  // Shard stats stay empty: the sharded attempt failed before producing a
  // merged result (the fallback repopulates nothing).
  EXPECT_TRUE(r.shard.tasks_per_shard.empty());
}

TEST(FaultInjectionUnrecoverable, CoordinatorReportsTheCapError) {
  // Same plan, one level down: run_sharded_task_graph itself must return
  // ok=false with the reassignment-cap error (bounded retries, no hang).
  const Network net = make_enterprise("VII").net;
  const PecSet pecs = compute_pecs(net);
  sched::TaskGraph graph;
  graph.dependents = {{}};
  graph.waiting_on = {0};
  std::vector<sched::ShardTaskSpec> specs(1);
  specs[0].pecs = {0};
  sched::ShardRunOptions opts;
  opts.shards = 2;
  opts.max_reassignments_per_task = 2;
  opts.respawn_backoff_ms = 1;  // keep the exponential backoff sweep fast
  std::string err;
  EXPECT_TRUE(sched::parse_fault_plan("crash@1;gen*", opts.fault_plan, err))
      << err;
  const auto body = [](std::size_t, OutcomeStore&)
      -> std::vector<sched::ShardPecResult> {
    return {};
  };
  const sched::ShardRunResult rr =
      sched::run_sharded_task_graph(net, pecs, opts, graph, specs, body);
  EXPECT_FALSE(rr.ok);
  EXPECT_NE(rr.error.find("reassignment cap"), std::string::npos) << rr.error;
  EXPECT_GE(rr.stats.tasks_reassigned, 2u);
  EXPECT_GE(rr.stats.workers_respawned, 2u);
}

}  // namespace
}  // namespace plankton
