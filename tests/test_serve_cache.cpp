// Serve-layer verdict cache (src/serve/): fingerprint stability and scoping,
// the clean-hold-only lookup contract, disk round-trips and corrupt-file
// rejection, warm starts across daemon restarts, delta invalidation
// exactness, and the wire codecs' hostile-input behaviour.
//
// The two contracts the satellite pins:
//   · fingerprints are bit-identical across independently parsed copies of
//     the same config (serialize -> deserialize -> recompute), which is what
//     makes a disk-persisted cache meaningful across restarts;
//   · a cache hit never masks a non-clean verdict — violated or inconclusive
//     outcomes are stored for stats but every lookup of one re-verifies.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "eqclass/pec_dedup.hpp"
#include "serve/serve.hpp"
#include "serve/verdict_cache.hpp"

namespace plankton::serve {
namespace {

const char* kRing = R"(
node r0 loopback 10.0.0.1
node r1 loopback 10.0.0.2
node r2 loopback 10.0.0.3
node r3 loopback 10.0.0.4
link r0 r1 cost 10
link r1 r2 cost 10
link r2 r3 cost 10
link r3 r0 cost 10
ospf r0 no-loopback
ospf r1 no-loopback
ospf r2 no-loopback
ospf r3 no-loopback
ospf r0 originate 10.1.0.0/24
ospf r1 originate 10.2.0.0/24
ospf r2 originate 10.3.0.0/24
ospf r3 originate 10.4.0.0/24
)";

std::string tmp_path(const std::string& name) {
  const std::string p = ::testing::TempDir() + "/" + name;
  std::remove(p.c_str());
  return p;
}

/// ServeState owns mutexes (not movable), so tests construct in place and
/// load through this helper.
void load_ring(ServeState& state, const std::string& extra = "") {
  std::string error;
  ASSERT_TRUE(state.load(std::string(kRing) + extra, error)) << error;
}

QueryMsg loop_query() {
  QueryMsg q;
  q.policy_spec = "loop";
  return q;
}

// ---------------------------------------------------------------------------
// Fingerprint stability and scoping
// ---------------------------------------------------------------------------

TEST(ServeFingerprints, BitIdenticalAcrossIndependentParses) {
  // serialize -> deserialize -> recompute: two ServeStates built from the
  // same text (and a third from the rendered round-trip) must agree on every
  // fingerprint and every dependency-cone hash. This is the property that
  // lets a disk-persisted cache warm-start a fresh process.
  ServeState a{VerifyOptions{}};
  ServeState b{VerifyOptions{}};
  load_ring(a);
  load_ring(b);

  const auto fa = compute_pec_fingerprints(a.net(), a.verifier().pecs());
  const auto fb = compute_pec_fingerprints(b.net(), b.verifier().pecs());
  ASSERT_EQ(fa.size(), fb.size());
  ASSERT_FALSE(fa.empty());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].canon, fb[i].canon) << "PEC " << i;
    EXPECT_EQ(fa[i].residue, fb[i].residue) << "PEC " << i;
    EXPECT_EQ(a.cone_of(i), b.cone_of(i)) << "PEC " << i;
  }

  ServeState c{VerifyOptions{}};
  std::string error;
  ASSERT_TRUE(c.load(render_config(a.net()), error)) << error;
  const auto fc = compute_pec_fingerprints(c.net(), c.verifier().pecs());
  ASSERT_EQ(fc.size(), fa.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fc[i].combined(), fa[i].combined())
        << "render round-trip moved PEC " << i;
  }
}

TEST(ServeFingerprints, RenderConfigIdempotentThroughParser) {
  const char* text = R"(
node a loopback 1.1.1.1
node b loopback 2.2.2.2
node c
link a b cost 10
link b c cost 5 cost-ba 7
ospf a enable
ospf b originate 10.2.0.0/16
ospf c no-loopback
static a 172.16.0.0/12 via b
static c 0.0.0.0/0 drop
bgp a asn 65001
bgp b asn 65002
bgp-session a b ebgp
bgp a originate 203.0.113.0/24
route-map a b import permit match-prefix 203.0.0.0/16 or-longer set-local-pref 250 add-community PEERS
route-map b a export deny match-community PEERS
route-map-default b a export permit
)";
  ParsedNetwork first;
  std::string error;
  ASSERT_TRUE(parse_network_config(text, first, error)) << error;
  const auto names = community_names_of(first.communities);
  const std::string rendered = render_config(first.net, names);

  ParsedNetwork second;
  ASSERT_TRUE(parse_network_config(rendered, second, error)) << error;
  EXPECT_EQ(render_config(second.net, community_names_of(second.communities)),
            rendered)
      << "render(parse(render(net))) must be a fixed point";
}

TEST(ServeFingerprints, ResidueScopedToIntersectingRanges) {
  // A static route for 10.2.0.0/24 must move exactly the PECs that range
  // can influence — every other fingerprint (and cone) stays bit-identical.
  ServeState base{VerifyOptions{}};
  ServeState edited{VerifyOptions{}};
  load_ring(base);
  load_ring(edited, "static r0 10.2.0.0/24 via r1\n");

  const PecSet& bp = base.verifier().pecs();
  const PecSet& ep = edited.verifier().pecs();
  ASSERT_EQ(bp.pecs.size(), ep.pecs.size())
      << "the static targets an existing boundary; the partition is stable";
  const auto fb = compute_pec_fingerprints(base.net(), bp);
  const auto fe = compute_pec_fingerprints(edited.net(), ep);
  std::size_t moved = 0;
  const Prefix target = *Prefix::parse("10.2.0.0/24");
  for (std::size_t i = 0; i < bp.pecs.size(); ++i) {
    ASSERT_EQ(bp.pecs[i].str(), ep.pecs[i].str()) << "PEC " << i;
    const bool hit = target.contains(bp.pecs[i].lo);
    if (fb[i].combined() != fe[i].combined()) {
      ++moved;
      EXPECT_TRUE(hit) << "PEC " << bp.pecs[i].str()
                       << " moved without intersecting the edited range";
    } else {
      EXPECT_FALSE(hit) << "PEC " << bp.pecs[i].str()
                        << " intersects the edit but did not move";
      EXPECT_EQ(base.cone_of(i), edited.cone_of(i));
    }
    EXPECT_EQ(fb[i].canon == fe[i].canon && fb[i].residue == fe[i].residue,
              fb[i].combined() == fe[i].combined());
  }
  EXPECT_EQ(moved, 1u);
}

// ---------------------------------------------------------------------------
// VerdictCache unit behaviour
// ---------------------------------------------------------------------------

CacheEntry entry_of(Verdict v, std::uint64_t seed = 1) {
  CacheEntry e;
  e.verdict = static_cast<std::uint8_t>(v);
  e.states_explored = seed * 100;
  e.states_stored = seed * 10;
  e.policy_checks = seed * 3;
  e.elapsed_ns = static_cast<std::int64_t>(seed) * 1000;
  e.trail_hash = seed * 0x9e3779b97f4a7c15ull;
  return e;
}

TEST(VerdictCache, LookupServesOnlyCleanHolds) {
  VerdictCache cache;
  const CacheKey hold_key{1, 2};
  const CacheKey viol_key{3, 4};
  const CacheKey inc_key{5, 6};
  cache.insert(hold_key, entry_of(Verdict::kHolds));
  cache.insert(viol_key, entry_of(Verdict::kViolated));
  cache.insert(inc_key, entry_of(Verdict::kInconclusive));
  EXPECT_EQ(cache.size(), 3u);

  CacheEntry out;
  EXPECT_TRUE(cache.lookup(hold_key, out));
  EXPECT_EQ(out, entry_of(Verdict::kHolds));

  // Present non-clean entries: contains() sees them, lookup() refuses — the
  // caller must re-verify (cache never masks a violation).
  EXPECT_TRUE(cache.contains(viol_key));
  EXPECT_FALSE(cache.lookup(viol_key, out));
  EXPECT_TRUE(cache.contains(inc_key));
  EXPECT_FALSE(cache.lookup(inc_key, out));
  EXPECT_FALSE(cache.lookup(CacheKey{7, 8}, out));

  const CacheCounters c = cache.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.nonclean_bypass, 2u);
  EXPECT_EQ(c.misses, 1u) << "only the truly absent key is a plain miss";
  EXPECT_EQ(c.insertions, 3u);
}

TEST(VerdictCache, DiskRoundTripPreservesEntries) {
  const std::string path = tmp_path("cache_roundtrip.pkc");
  VerdictCache cache;
  std::vector<std::pair<CacheKey, CacheEntry>> entries;
  for (std::uint64_t i = 0; i < 100; ++i) {
    const CacheKey key{i * 7919, i * 104729};
    CacheEntry e = entry_of(i % 3 == 0 ? Verdict::kHolds
                            : i % 3 == 1 ? Verdict::kViolated
                                         : Verdict::kInconclusive,
                            i + 1);
    e.translated = i % 5 == 0 ? 1 : 0;
    entries.emplace_back(key, e);
    cache.insert(key, e);
  }
  std::string error;
  ASSERT_TRUE(cache.save(path, error)) << error;

  VerdictCache restored;
  ASSERT_TRUE(restored.load(path, error)) << error;
  EXPECT_EQ(restored.size(), entries.size());
  EXPECT_EQ(restored.counters().warm_loaded, entries.size());
  for (const auto& [key, e] : entries) {
    CacheEntry out;
    if (e.clean_hold()) {
      ASSERT_TRUE(restored.lookup(key, out));
      EXPECT_EQ(out, e) << "entry fields must survive the disk round trip";
    } else {
      EXPECT_TRUE(restored.contains(key));
      EXPECT_FALSE(restored.lookup(key, out));
    }
  }
  std::remove(path.c_str());
}

TEST(VerdictCache, RejectsCorruptFiles) {
  const std::string good_path = tmp_path("cache_good.pkc");
  VerdictCache cache;
  for (std::uint64_t i = 0; i < 5; ++i) {
    cache.insert(CacheKey{i, i + 1}, entry_of(Verdict::kHolds, i + 1));
  }
  std::string error;
  ASSERT_TRUE(cache.save(good_path, error)) << error;
  std::string blob;
  {
    std::ifstream f(good_path, std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    blob = ss.str();
  }
  ASSERT_GT(blob.size(), 16u);

  const auto rejects = [&](std::string bytes, const char* what) {
    const std::string path = tmp_path("cache_corrupt.pkc");
    std::ofstream(path, std::ios::binary).write(bytes.data(),
                                                static_cast<std::streamsize>(bytes.size()));
    VerdictCache fresh;
    fresh.insert(CacheKey{999, 999}, entry_of(Verdict::kHolds));
    std::string err;
    EXPECT_FALSE(fresh.load(path, err)) << what;
    EXPECT_FALSE(err.empty()) << what;
    EXPECT_EQ(fresh.size(), 1u)
        << what << ": a failed load must leave the cache unchanged";
    std::remove(path.c_str());
  };

  rejects("", "empty file");
  rejects(blob.substr(0, 10), "truncated header");
  rejects(blob.substr(0, blob.size() - 7), "truncated entry");
  rejects(blob + "x", "trailing bytes");
  {
    std::string bad = blob;
    bad[0] ^= 0xff;
    rejects(bad, "bad magic");
  }
  {
    std::string bad = blob;
    bad[4] ^= 0xff;
    rejects(bad, "bad version");
  }
  {
    std::string bad = blob;
    bad[16 + 16] = 17;  // first entry's verdict byte: > kError
    rejects(bad, "out-of-range verdict");
  }
  std::string err;
  VerdictCache fresh;
  EXPECT_FALSE(fresh.load(tmp_path("cache_never_written.pkc"), err));
  std::remove(good_path.c_str());
}

TEST(VerdictCache, ConcurrentHammerKeepsCountsCoherent) {
  VerdictCache cache;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        // Overlapping key ranges across threads: inserts race with lookups
        // on the same stripes.
        const CacheKey key{i, static_cast<std::uint64_t>(t % 2)};
        cache.insert(key, entry_of(Verdict::kHolds, i + 1));
        CacheEntry out;
        ASSERT_TRUE(cache.lookup(key, out));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(cache.size(), kPerThread * 2);
  EXPECT_EQ(cache.counters().hits, kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// ServeState end-to-end: hits, re-verification, warm starts, deltas
// ---------------------------------------------------------------------------

TEST(ServeStateCache, RepeatQueryServesFromCache) {
  ServeState state{VerifyOptions{}};
  load_ring(state);
  const VerdictReplyMsg cold = state.query(loop_query());
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_EQ(static_cast<Verdict>(cold.verdict), Verdict::kHolds);
  EXPECT_EQ(cold.targets, 4u);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.reverified, 4u);

  const VerdictReplyMsg warm = state.query(loop_query());
  ASSERT_TRUE(warm.ok);
  EXPECT_EQ(static_cast<Verdict>(warm.verdict), Verdict::kHolds);
  EXPECT_EQ(warm.cache_hits, 4u);
  EXPECT_EQ(warm.reverified, 0u) << "a clean hold must not re-explore";

  const CacheStatsMsg stats = state.cache_stats();
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_EQ(stats.insertions, 4u);
  EXPECT_EQ(stats.hits, 4u);

  // A different question (other policy, other failure bound) is a different
  // ctx: it must miss rather than reuse the loop verdicts.
  QueryMsg other = loop_query();
  other.max_failures = 1;
  const VerdictReplyMsg bounded = state.query(other);
  ASSERT_TRUE(bounded.ok);
  EXPECT_EQ(bounded.cache_hits, 0u);
  EXPECT_EQ(bounded.reverified, 4u);
}

TEST(ServeStateCache, CacheHitNeverMasksViolation) {
  ServeState state{VerifyOptions{}};
  load_ring(state);
  ASSERT_TRUE(state.query(loop_query()).ok);

  // Pin 10.3.0.0/24 into a static forwarding loop between r0 and r1
  // (examples/ring_loop.delta).
  ApplyDeltaMsg delta;
  delta.ops.push_back({true, "static r0 10.3.0.0/24 via r1"});
  delta.ops.push_back({true, "static r1 10.3.0.0/24 via r0"});
  std::string error;
  ASSERT_TRUE(state.apply_delta(delta, error)) << error;
  EXPECT_EQ(state.last_moved(), 1u) << "only the 10.3.0.0/24 PEC moved";

  const VerdictReplyMsg first = state.query(loop_query());
  ASSERT_TRUE(first.ok);
  EXPECT_EQ(static_cast<Verdict>(first.verdict), Verdict::kViolated);
  EXPECT_EQ(first.cache_hits, 3u) << "unmoved PECs stay warm";
  EXPECT_EQ(first.reverified, 1u) << "exactly the moved PEC re-verifies";
  ASSERT_FALSE(first.violations.empty());

  // The violated verdict is now *in* the cache — and must still re-verify on
  // every subsequent query instead of being served as a hit.
  const VerdictReplyMsg again = state.query(loop_query());
  ASSERT_TRUE(again.ok);
  EXPECT_EQ(static_cast<Verdict>(again.verdict), Verdict::kViolated);
  EXPECT_EQ(again.cache_hits, 3u);
  EXPECT_EQ(again.reverified, 1u)
      << "a cached violation must never satisfy a lookup";
  EXPECT_GT(state.cache_stats().nonclean_bypass, 0u);

  // Reverting the delta restores the original cone hashes: everything hits.
  ApplyDeltaMsg revert;
  revert.ops.push_back({false, "static r0 10.3.0.0/24 via r1"});
  revert.ops.push_back({false, "static r1 10.3.0.0/24 via r0"});
  ASSERT_TRUE(state.apply_delta(revert, error)) << error;
  const VerdictReplyMsg restored = state.query(loop_query());
  ASSERT_TRUE(restored.ok);
  EXPECT_EQ(static_cast<Verdict>(restored.verdict), Verdict::kHolds);
  EXPECT_EQ(restored.cache_hits, 4u);
  EXPECT_EQ(restored.reverified, 0u);
}

TEST(ServeStateCache, InconclusiveIsNeverServedAsHold) {
  VerifyOptions opts;
  opts.budget.max_states = 1;  // every PEC trips immediately
  ServeState state{opts};
  std::string error;
  ASSERT_TRUE(state.load(kRing, error)) << error;

  const VerdictReplyMsg first = state.query(loop_query());
  ASSERT_TRUE(first.ok);
  ASSERT_EQ(static_cast<Verdict>(first.verdict), Verdict::kInconclusive);
  EXPECT_EQ(first.reverified, 4u);

  const VerdictReplyMsg second = state.query(loop_query());
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(static_cast<Verdict>(second.verdict), Verdict::kInconclusive);
  EXPECT_EQ(second.cache_hits, 0u)
      << "an inconclusive entry must not short-circuit to a hold";
  EXPECT_EQ(second.reverified, 4u);
}

TEST(ServeStateCache, WarmStartsFromDiskAcrossRestart) {
  const std::string path = tmp_path("serve_warm.pkc");
  {
    ServeState state{VerifyOptions{}, path};
    load_ring(state);
    const VerdictReplyMsg cold = state.query(loop_query());
    ASSERT_TRUE(cold.ok);
    EXPECT_EQ(cold.reverified, 4u);
    std::string error;
    ASSERT_TRUE(state.save_cache(error)) << error;
  }
  // "Restart": a brand-new ServeState re-parses the same config and must
  // serve the whole query from the persisted cache without exploring.
  ServeState revived{VerifyOptions{}, path};
  load_ring(revived);
  EXPECT_GT(revived.cache_stats().warm_loaded, 0u);
  const VerdictReplyMsg warm = revived.query(loop_query());
  ASSERT_TRUE(warm.ok);
  EXPECT_EQ(static_cast<Verdict>(warm.verdict), Verdict::kHolds);
  EXPECT_EQ(warm.cache_hits, 4u);
  EXPECT_EQ(warm.reverified, 0u)
      << "fingerprints drifted across the restart: warm start is broken";
  std::remove(path.c_str());
}

TEST(ServeStateCache, DeltaFailuresAreAtomic) {
  ServeState state{VerifyOptions{}};
  load_ring(state);
  ASSERT_TRUE(state.query(loop_query()).ok);
  const std::string before = state.config_text();

  ApplyDeltaMsg bad;
  bad.ops.push_back({true, "static r0 10.9.0.0/24 via r1"});
  bad.ops.push_back({false, "no such line"});
  std::string error;
  EXPECT_FALSE(state.apply_delta(bad, error));
  EXPECT_NE(error.find("no such line"), std::string::npos) << error;
  EXPECT_EQ(state.config_text(), before)
      << "a failed batch must leave the resident config untouched";

  ApplyDeltaMsg unparsable;
  unparsable.ops.push_back({true, "link r0 r9"});
  EXPECT_FALSE(state.apply_delta(unparsable, error));
  EXPECT_EQ(state.config_text(), before);

  const VerdictReplyMsg after = state.query(loop_query());
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.cache_hits, 4u) << "failed deltas must not move any PEC";
}

// ---------------------------------------------------------------------------
// Wire codecs: round trips and hostile-input fuzz
// ---------------------------------------------------------------------------

template <typename Msg>
void check_codec(const Msg& m, std::string (*enc)(const Msg&),
                 bool (*dec)(std::string_view, Msg&), bool (*eq)(const Msg&, const Msg&)) {
  const std::string wire = enc(m);
  Msg out;
  ASSERT_TRUE(dec(wire, out));
  EXPECT_TRUE(eq(m, out));
  // Every strict prefix is a truncation and must be rejected without
  // touching undefined bytes; a trailing byte is garbage.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    Msg trash;
    EXPECT_FALSE(dec(std::string_view(wire).substr(0, cut), trash))
        << "accepted a " << cut << "-byte prefix of " << wire.size();
  }
  Msg trash;
  EXPECT_FALSE(dec(wire + '\0', trash));
}

TEST(ServeCodecs, RoundTripsAndRejectsTruncation) {
  LoadNetMsg load;
  load.config_text = std::string("node a\nnode b\x00\xff weird", 20);
  check_codec<LoadNetMsg>(
      load, encode_load_net, decode_load_net,
      [](const LoadNetMsg& a, const LoadNetMsg& b) {
        return a.config_text == b.config_text;
      });

  ApplyDeltaMsg delta;
  delta.ops.push_back({true, "static r0 10.3.0.0/24 via r1"});
  delta.ops.push_back({false, ""});
  check_codec<ApplyDeltaMsg>(
      delta, encode_apply_delta, decode_apply_delta,
      [](const ApplyDeltaMsg& a, const ApplyDeltaMsg& b) {
        if (a.ops.size() != b.ops.size()) return false;
        for (std::size_t i = 0; i < a.ops.size(); ++i) {
          if (a.ops[i].add != b.ops[i].add || a.ops[i].line != b.ops[i].line)
            return false;
        }
        return true;
      });

  QueryMsg query;
  query.policy_spec = "waypoint fw e0 e1";
  query.max_failures = 3;
  check_codec<QueryMsg>(query, encode_query, decode_query,
                        [](const QueryMsg& a, const QueryMsg& b) {
                          return a.policy_spec == b.policy_spec &&
                                 a.max_failures == b.max_failures;
                        });

  VerdictReplyMsg reply;
  reply.ok = true;
  reply.verdict = static_cast<std::uint8_t>(Verdict::kViolated);
  reply.targets = 18;
  reply.cache_hits = 17;
  reply.reverified = 1;
  reply.moved = 1;
  reply.wall_ns = 123456789;
  reply.violations.push_back({"[10.3.0.0 .. 10.3.0.255]", "loop r0->r1->r0"});
  check_codec<VerdictReplyMsg>(
      reply, encode_verdict_reply, decode_verdict_reply,
      [](const VerdictReplyMsg& a, const VerdictReplyMsg& b) {
        if (a.ok != b.ok || a.verdict != b.verdict || a.error != b.error ||
            a.targets != b.targets || a.cache_hits != b.cache_hits ||
            a.reverified != b.reverified || a.moved != b.moved ||
            a.wall_ns != b.wall_ns ||
            a.violations.size() != b.violations.size())
          return false;
        for (std::size_t i = 0; i < a.violations.size(); ++i) {
          if (a.violations[i].pec != b.violations[i].pec ||
              a.violations[i].message != b.violations[i].message)
            return false;
        }
        return true;
      });

  CacheStatsMsg stats;
  stats.hits = 1;
  stats.misses = 2;
  stats.nonclean_bypass = 3;
  stats.insertions = 4;
  stats.warm_loaded = 5;
  stats.entries = 6;
  check_codec<CacheStatsMsg>(
      stats, encode_cache_stats, decode_cache_stats,
      [](const CacheStatsMsg& a, const CacheStatsMsg& b) {
        return a.hits == b.hits && a.misses == b.misses &&
               a.nonclean_bypass == b.nonclean_bypass &&
               a.insertions == b.insertions &&
               a.warm_loaded == b.warm_loaded && a.entries == b.entries;
      });
}

TEST(ServeCodecs, RejectsHostileCounts) {
  // A count field claiming more elements than the payload can hold must be
  // rejected up front (fits()), not drive a giant allocation.
  std::string evil;
  evil.push_back('\xff');
  evil.push_back('\xff');
  evil.push_back('\xff');
  evil.push_back('\xff');
  ApplyDeltaMsg delta;
  EXPECT_FALSE(decode_apply_delta(evil, delta));
  EXPECT_TRUE(delta.ops.empty());

  VerdictReplyMsg reply;
  EXPECT_FALSE(decode_verdict_reply(evil, reply));

  // An op flag outside {0, 1} is corruption, not a bool.
  ApplyDeltaMsg one_op;
  one_op.ops.push_back({true, "x"});
  std::string wire = encode_apply_delta(one_op);
  wire[4] = 2;
  EXPECT_FALSE(decode_apply_delta(wire, delta));
}

}  // namespace
}  // namespace plankton::serve
