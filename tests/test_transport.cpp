// Cluster-scale sharding (sched/transport.*, core/verifier.cpp,
// serve_shard_worker_session): TCP-bootstrapped remote workers against the
// fork-transport and in-process oracles, bootstrap handshake hardening,
// SIGKILL failover, intra-PEC split export, and the serve daemon's
// disconnect-mid-reply survival.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>

#include "core/verifier.hpp"
#include "pec/pec.hpp"
#include "sched/shard.hpp"
#include "serve/server.hpp"
#include "serve/serve.hpp"
#include "support/figure6.hpp"
#include "support/random_net.hpp"
#include "workload/enterprise.hpp"
#include "workload/fat_tree.hpp"

namespace plankton {
namespace {

using testsupport::Figure6;
using testsupport::RandomInstance;
using testsupport::make_random_instance;

/// A plankton_worker stand-in living on a thread of the test process:
/// ephemeral loopback listener, one bootstrap session served at a time.
class ThreadWorker {
 public:
  ThreadWorker() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd_, 0);
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;  // ephemeral
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd_, 8), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                            &len),
              0);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] {
      for (;;) {
        const int conn = ::accept(listen_fd_, nullptr, nullptr);
        if (conn < 0) return;
        if (stop_.load(std::memory_order_acquire)) {
          ::close(conn);
          return;
        }
        sessions_.fetch_add(1, std::memory_order_relaxed);
        serve_shard_worker_session(conn);
        ::close(conn);
      }
    });
  }
  ~ThreadWorker() {
    stop_.store(true, std::memory_order_release);
    std::string err;
    const int wake = serve::connect_tcp(port_, err);  // unblock accept
    if (wake >= 0) ::close(wake);
    thread_.join();
    ::close(listen_fd_);
  }
  [[nodiscard]] std::string address() const {
    return "127.0.0.1:" + std::to_string(port_);
  }
  [[nodiscard]] int sessions() const {
    return sessions_.load(std::memory_order_relaxed);
  }

 private:
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<int> sessions_{0};
  std::thread thread_;
};

/// The acceptance-criteria fingerprint: verdict, per-PEC counts, aggregate
/// state counters, and the violation multiset with rendered trails.
struct Fingerprint {
  bool holds = true;
  std::size_t pecs_verified = 0;
  std::size_t pecs_support = 0;
  std::uint64_t states_explored = 0;
  std::uint64_t converged_states = 0;
  std::multiset<std::string> violations;

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) {
    return a.holds == b.holds && a.pecs_verified == b.pecs_verified &&
           a.pecs_support == b.pecs_support &&
           a.states_explored == b.states_explored &&
           a.converged_states == b.converged_states &&
           a.violations == b.violations;
  }
};

Fingerprint fingerprint(const VerifyResult& r) {
  Fingerprint fp;
  fp.holds = r.holds;
  fp.pecs_verified = r.pecs_verified;
  fp.pecs_support = r.pecs_support;
  fp.states_explored = r.total.states_explored;
  fp.converged_states = r.total.converged_states;
  for (const auto& rep : r.reports) {
    for (const auto& v : rep.result.violations) {
      fp.violations.insert(rep.pec_str + "|" +
                           std::to_string(v.failures.hash()) + "|" + v.message +
                           "|" + v.trail_text);
    }
  }
  return fp;
}

/// The split-export comparison: verdicts plus the *deduplicated* violation
/// set (state counts are not bit-identical with export on, by design).
std::set<std::string> violation_set(const VerifyResult& r) {
  std::set<std::string> out;
  for (const auto& rep : r.reports) {
    for (const auto& v : rep.result.violations) {
      out.insert(rep.pec_str + "|" + std::to_string(v.failures.hash()) + "|" +
                 v.message + "|" + v.trail_text);
    }
  }
  return out;
}

VerifyResult run_verify(const Network& net, const Policy& policy,
                        VerifyOptions vo) {
  Verifier verifier(net, vo);
  return verifier.verify(policy);
}

// ---------------------------------------------------------------------------
// TCP transport determinism: {fork, tcp} × shards {1,2,4} vs in-process
// ---------------------------------------------------------------------------

TEST(TcpTransport, RandomCorpusMatchesForkAndInProcess) {
  ThreadWorker workers[4];
  std::vector<std::string> addrs;
  for (const auto& w : workers) addrs.push_back(w.address());

  int corpus = 8;
  if (const char* v = std::getenv("PLANKTON_DIFF_SEEDS");
      v != nullptr && std::atoi(v) > 0) {
    corpus = std::max(8, std::atoi(v) / 10);
  }
  int eligible = 0;
  for (int seed = 1; seed <= corpus; ++seed) {
    const RandomInstance inst =
        make_random_instance(static_cast<std::uint64_t>(seed));
    // TCP workers rebuild the policy from its spec line; instances whose
    // policy has no spec form are fork-only and covered elsewhere.
    if (inst.policy->spec(inst.net).empty()) continue;
    ++eligible;
    SCOPED_TRACE("instance seed " + std::to_string(seed) + " (" + inst.kind +
                 ", policy " + inst.policy->name() + ")");
    VerifyOptions vo;
    vo.cores = 1;
    vo.explore = inst.explore;
    vo.explore.find_all_violations = true;
    vo.explore.suppress_equivalent = false;
    const Fingerprint ref = fingerprint(run_verify(inst.net, *inst.policy, vo));
    for (const int shards : {1, 2, 4}) {
      VerifyOptions forkv = vo;
      forkv.shards = shards;
      EXPECT_EQ(fingerprint(run_verify(inst.net, *inst.policy, forkv)), ref)
          << "fork transport, shards=" << shards;
      VerifyOptions tcpv = forkv;
      tcpv.shard_transport = ShardTransportKind::kTcp;
      tcpv.shard_workers = addrs;
      const VerifyResult r = run_verify(inst.net, *inst.policy, tcpv);
      EXPECT_EQ(fingerprint(r), ref) << "tcp transport, shards=" << shards;
      EXPECT_GT(r.shard.frames_sent, 0u)
          << "tcp run fell back to in-process (bootstrap refused?)";
      EXPECT_EQ(r.shard.workers_respawned, 0u)
          << "tcp workers should survive a clean run";
    }
  }
  ASSERT_GE(eligible, 3) << "corpus must exercise spec-able policies";
  EXPECT_GT(workers[0].sessions(), 0) << "worker 0 never served a bootstrap";
}

TEST(TcpTransport, Figure6MatchesAtEveryShardCount) {
  ThreadWorker workers[4];
  std::vector<std::string> addrs;
  for (const auto& w : workers) addrs.push_back(w.address());
  const Figure6 fx;
  const ReachabilityPolicy policy({fx.r6});
  ASSERT_FALSE(policy.spec(fx.net).empty());
  VerifyOptions vo;
  vo.explore.find_all_violations = true;
  const Fingerprint ref = fingerprint(run_verify(fx.net, policy, vo));
  EXPECT_GT(ref.converged_states, 0u);
  for (const int shards : {1, 2, 4}) {
    VerifyOptions sv = vo;
    sv.shards = shards;
    sv.shard_transport = ShardTransportKind::kTcp;
    sv.shard_workers = addrs;
    const VerifyResult r = run_verify(fx.net, policy, sv);
    EXPECT_EQ(fingerprint(r), ref) << "shards=" << shards;
    EXPECT_GT(r.shard.frames_sent, 0u);
  }
}

TEST(TcpTransport, SpeclessPolicyFallsBackToForkWithIdenticalResult) {
  // MultipathConsistency has no single-line spec form: the TCP request must
  // degrade to the fork transport (stderr note) and still produce the
  // in-process fingerprint — never fail, never silently change semantics.
  const Figure6 fx;
  const MultipathConsistencyPolicy policy({fx.r6});
  ASSERT_TRUE(policy.spec(fx.net).empty());
  VerifyOptions vo;
  vo.explore.find_all_violations = true;
  const Fingerprint ref = fingerprint(run_verify(fx.net, policy, vo));
  VerifyOptions sv = vo;
  sv.shards = 2;
  sv.shard_transport = ShardTransportKind::kTcp;
  sv.shard_workers = {"127.0.0.1:1"};  // never dialed: fork fallback
  const VerifyResult r = run_verify(fx.net, policy, sv);
  EXPECT_EQ(fingerprint(r), ref);
  EXPECT_GT(r.shard.frames_sent, 0u) << "fork fallback must still shard";
}

// ---------------------------------------------------------------------------
// Bootstrap handshake hardening
// ---------------------------------------------------------------------------

/// Runs serve_shard_worker_session over a socketpair and returns its exit
/// code; `drive` runs on the coordinator end.
int drive_session(const std::function<void(int fd)>& drive) {
  int sv[2];
  EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  int code = -1;
  std::thread session([&] { code = serve_shard_worker_session(sv[1]); });
  drive(sv[0]);
  ::close(sv[0]);
  session.join();
  ::close(sv[1]);
  return code;
}

TEST(TcpBootstrap, MalformedConfigIsNackedNotCrashed) {
  serve::BootstrapMsg bm;
  bm.config_text = "definitely not a network config {{{";
  bm.policy_spec = "loop";
  const int code = drive_session([&](int fd) {
    ASSERT_TRUE(serve::send_frame(fd, sched::MsgType::kBootstrap,
                                  serve::encode_bootstrap(bm)));
    sched::FrameDecoder dec;
    sched::Frame f;
    std::string err;
    ASSERT_TRUE(serve::recv_frame(fd, dec, f, err)) << err;
    ASSERT_EQ(f.type, sched::MsgType::kBootstrapAck);
    sched::BootstrapAckMsg ack;
    ASSERT_TRUE(sched::decode_bootstrap_ack(f.payload, ack));
    EXPECT_EQ(ack.ok, 0);
    EXPECT_NE(ack.error.find("config"), std::string::npos) << ack.error;
  });
  EXPECT_EQ(code, 3);
}

TEST(TcpBootstrap, WrongFirstFrameIsRefused) {
  const int code = drive_session([&](int fd) {
    ASSERT_TRUE(serve::send_frame(fd, sched::MsgType::kHeartbeat, ""));
    sched::FrameDecoder dec;
    sched::Frame f;
    std::string err;
    ASSERT_TRUE(serve::recv_frame(fd, dec, f, err)) << err;
    ASSERT_EQ(f.type, sched::MsgType::kBootstrapAck);
    sched::BootstrapAckMsg ack;
    ASSERT_TRUE(sched::decode_bootstrap_ack(f.payload, ack));
    EXPECT_EQ(ack.ok, 0);
  });
  EXPECT_EQ(code, 3);
}

TEST(TcpBootstrap, DataPipelinedPastBootstrapIsRefused) {
  // The coordinator must not send anything before the ack; a worker seeing
  // pipelined bytes refuses the whole session rather than guessing.
  serve::BootstrapMsg bm;
  bm.config_text = "network x\n";
  bm.policy_spec = "loop";
  const int code = drive_session([&](int fd) {
    std::string out;
    sched::encode_frame(out, sched::MsgType::kBootstrap,
                        serve::encode_bootstrap(bm));
    sched::encode_frame(out, sched::MsgType::kHeartbeat, "");  // pipelined
    ASSERT_EQ(::send(fd, out.data(), out.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(out.size()));
    sched::FrameDecoder dec;
    sched::Frame f;
    std::string err;
    ASSERT_TRUE(serve::recv_frame(fd, dec, f, err)) << err;
    ASSERT_EQ(f.type, sched::MsgType::kBootstrapAck);
    sched::BootstrapAckMsg ack;
    ASSERT_TRUE(sched::decode_bootstrap_ack(f.payload, ack));
    EXPECT_EQ(ack.ok, 0);
  });
  EXPECT_EQ(code, 3);
}

TEST(TcpBootstrap, EofBeforeBootstrapIsOrderly) {
  const int code = drive_session([](int) {});  // dial and hang up
  EXPECT_EQ(code, 0);
}

// ---------------------------------------------------------------------------
// SIGKILL failover: a real remote worker process dies mid-task
// ---------------------------------------------------------------------------

TEST(TcpRecovery, SigkilledWorkerFailsOverToSurvivor) {
  // Worker 0 is a real forked process (SIGKILL must hit a separate address
  // space, like a crashed remote host); worker 1 is a surviving thread
  // worker. Killing 0 mid-run must reassign its task to 1 and converge to
  // the reference verdict — reconnection attempts to the dead address keep
  // failing and must not wedge the run.
  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 8), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const int child_port = ntohs(addr.sin_port);
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    for (;;) {
      const int conn = ::accept(listen_fd, nullptr, nullptr);
      if (conn < 0) _exit(0);
      serve_shard_worker_session(conn);
      ::close(conn);
    }
  }
  ::close(listen_fd);  // the child owns the listener now

  ThreadWorker survivor;
  const Enterprise ent = make_enterprise("VII");
  const ReachabilityPolicy policy({ent.access.front()});
  VerifyOptions vo;
  vo.explore.find_all_violations = true;
  const Fingerprint ref = fingerprint(
      Verifier(ent.net, vo).verify_address(IpAddr(10, 200, 0, 1), policy));

  VerifyOptions sv = vo;
  sv.shards = 2;
  sv.shard_transport = ShardTransportKind::kTcp;
  sv.shard_workers = {"127.0.0.1:" + std::to_string(child_port),
                      survivor.address()};
  std::atomic<bool> killed{false};
  sv.shard_test_on_assign = [&](int slot, pid_t, std::size_t) {
    // Slot 0 dialed the child (slot s -> workers[s % n]). The kill lands
    // while the assign is in flight: the coordinator thread issues it
    // before the worker process gets scheduled to answer.
    if (slot == 0 && !killed.exchange(true)) kill(child, SIGKILL);
  };
  const VerifyResult r =
      Verifier(ent.net, sv).verify_address(IpAddr(10, 200, 0, 1), policy);
  EXPECT_EQ(fingerprint(r), ref) << "failover changed the merged verdict";
  EXPECT_TRUE(killed.load());
  EXPECT_GE(r.shard.tasks_reassigned, 1u);
  int status = 0;
  EXPECT_EQ(waitpid(child, &status, 0), child);
  EXPECT_TRUE(WIFSIGNALED(status));
}

// ---------------------------------------------------------------------------
// TCP session resilience: socket faults, reconnect + re-bootstrap
// ---------------------------------------------------------------------------

TEST(TcpRecovery, DroppedConnectionReconnectsAndReBootstraps) {
  // drop-conn@1 severs the TCP session at the worker's first data frame —
  // the worker *daemon* survives and returns to its accept loop, so recovery
  // is reconnect + re-bootstrap (a fresh kBootstrap handshake against the
  // same address), not a process respawn. The ThreadWorker session counter
  // is the proof the re-bootstrap actually happened.
  ThreadWorker workers[2];
  std::vector<std::string> addrs;
  for (const auto& w : workers) addrs.push_back(w.address());

  const Figure6 fx;
  const ReachabilityPolicy policy({fx.r6});
  ASSERT_FALSE(policy.spec(fx.net).empty());
  VerifyOptions vo;
  vo.explore.find_all_violations = true;
  const Fingerprint ref = fingerprint(run_verify(fx.net, policy, vo));

  VerifyOptions sv = vo;
  sv.shards = 2;
  sv.shard_transport = ShardTransportKind::kTcp;
  sv.shard_workers = addrs;
  std::string err;
  ASSERT_TRUE(sched::parse_fault_plan("drop-conn@1", sv.shard_fault_plan, err))
      << err;
  const VerifyResult r = run_verify(fx.net, policy, sv);
  EXPECT_EQ(fingerprint(r), ref) << "reconnect changed the merged verdict";
  EXPECT_GE(r.shard.tasks_reassigned, 1u)
      << "the drop-conn fault never actually severed a session";
  const int total_sessions = workers[0].sessions() + workers[1].sessions();
  EXPECT_GT(total_sessions, 2)
      << "no re-bootstrap happened: the dropped session was never re-dialed";
}

TEST(TcpRecovery, SeededSocketPlansMatchOverTcpTransport) {
  // The serve-side twin of SocketFaultSweep: seeded socket plans against
  // real TCP worker sessions. The coordinator pre-resolves the plan per
  // slot + generation and ships it inside kBootstrap (the remote session
  // runs as slot 0 / generation 1 locally, so an unresolved plan would
  // silently never fire).
  ThreadWorker workers[2];
  std::vector<std::string> addrs;
  for (const auto& w : workers) addrs.push_back(w.address());

  int corpus = 6;
  if (const char* v = std::getenv("PLANKTON_DIFF_SEEDS");
      v != nullptr && std::atoi(v) > 0) {
    corpus = std::max(6, std::atoi(v) / 16);
  }
  int eligible = 0;
  for (int seed = 1; seed <= corpus; ++seed) {
    const RandomInstance inst =
        make_random_instance(static_cast<std::uint64_t>(seed));
    if (inst.policy->spec(inst.net).empty()) continue;
    ++eligible;
    const sched::FaultPlan plan =
        sched::FaultPlan::from_seed_socket(static_cast<std::uint64_t>(seed));
    SCOPED_TRACE("instance seed " + std::to_string(seed) + " (" + inst.kind +
                 ", policy " + inst.policy->name() + ", plan '" + plan.str() +
                 "')");
    VerifyOptions vo;
    vo.cores = 1;
    vo.explore = inst.explore;
    vo.explore.find_all_violations = true;
    vo.explore.suppress_equivalent = false;
    const Fingerprint ref = fingerprint(run_verify(inst.net, *inst.policy, vo));

    VerifyOptions sv = vo;
    sv.shards = 2;
    sv.shard_transport = ShardTransportKind::kTcp;
    sv.shard_workers = addrs;
    sv.shard_fault_plan = plan;
    const VerifyResult r = run_verify(inst.net, *inst.policy, sv);
    EXPECT_EQ(fingerprint(r), ref)
        << "plan '" << plan.str() << "' changed the merged verdict";
    EXPECT_GT(r.shard.frames_sent, 0u)
        << "tcp run fell back to in-process (bootstrap refused?)";
  }
  ASSERT_GE(eligible, 3) << "corpus must exercise spec-able policies";
}

// ---------------------------------------------------------------------------
// Intra-PEC work export
// ---------------------------------------------------------------------------

TEST(SplitExport, VerdictsAndViolationSetMatchInProcess) {
  // The bgp_dc_worstcase family: eBGP fat-tree where SPVP activation orders
  // genuinely branch, so the BFS frontier grows and aggressive export
  // settings (offer every pop, split tiny frontiers) make the mechanism
  // fire. Verdicts and the deduplicated violation set must match the
  // in-process run; state counts are legitimately different (subtasks
  // re-visit donor states).
  FatTreeOptions o;
  o.k = 4;
  o.routing = FatTreeOptions::Routing::kBgpRfc7938;
  const FatTree ft = make_fat_tree(o);
  const WaypointPolicy policy({ft.edges.back()}, ft.aggs);
  VerifyOptions vo;
  vo.explore.find_all_violations = true;
  vo.explore.suppress_equivalent = false;
  vo.explore.det_nodes_bgp = false;  // deterministic nodes never branch
  vo.explore.max_states = 3000;
  vo.explore.engine_kind = SearchEngineKind::kBfs;
  vo.pec_dedup = false;  // class members make a task export-ineligible
  const VerifyResult ref =
      Verifier(ft.net, vo).verify_address(ft.edge_prefixes[0].addr(), policy);

  for (const int shards : {2, 4}) {
    VerifyOptions sv = vo;
    sv.shards = shards;
    sv.shard_split_export = true;
    sv.shard_export_check_every = 64;
    sv.shard_export_min_frontier = 4;
    sv.shard_export_max_per_pec = 8;
    const VerifyResult r =
        Verifier(ft.net, sv).verify_address(ft.edge_prefixes[0].addr(),
                                            policy);
    EXPECT_EQ(r.holds, ref.holds) << "shards=" << shards;
    EXPECT_EQ(r.verdict, ref.verdict) << "shards=" << shards;
    EXPECT_EQ(r.pecs_verified, ref.pecs_verified) << "shards=" << shards;
    EXPECT_EQ(violation_set(r), violation_set(ref)) << "shards=" << shards;
    EXPECT_GT(r.shard.splits_exported, 0u)
        << "export settings this aggressive must fire (shards=" << shards
        << ")";
    EXPECT_EQ(r.shard.subtasks_dispatched,
              r.shard.subtasks_completed + r.shard.subtasks_stale)
        << "every dispatched subtask must be accounted for";
  }
}

TEST(SplitExport, CleanHoldWorkloadStaysCleanWithExportOn) {
  FatTreeOptions o;
  o.k = 4;
  const FatTree ft = make_fat_tree(o);
  const LoopFreedomPolicy policy;
  VerifyOptions vo;
  vo.explore.find_all_violations = true;
  vo.explore.engine_kind = SearchEngineKind::kBfs;
  vo.pec_dedup = false;
  const VerifyResult ref = run_verify(ft.net, policy, vo);
  ASSERT_TRUE(ref.holds);
  VerifyOptions sv = vo;
  sv.shards = 2;
  sv.shard_split_export = true;
  sv.shard_export_check_every = 1;
  sv.shard_export_min_frontier = 2;
  const VerifyResult r = run_verify(ft.net, policy, sv);
  EXPECT_TRUE(r.holds);
  EXPECT_EQ(r.verdict, Verdict::kHolds)
      << "export must not degrade a clean exhaustive hold";
  EXPECT_EQ(r.pecs_verified, ref.pecs_verified);
  EXPECT_TRUE(violation_set(r).empty());
}

// ---------------------------------------------------------------------------
// Serve daemon: client disconnect mid-reply must not kill the process (S1)
// ---------------------------------------------------------------------------

TEST(ServeDaemon, SurvivesClientDisconnectMidReply) {
  // The regression: write_all_fd used plain write(); a client that closed
  // its socket while replies were still being flushed raised SIGPIPE in the
  // daemon, whose default disposition kills the process. With the fix
  // (MSG_NOSIGNAL + SIG_IGN) the daemon sheds the connection and keeps
  // serving — this test dies on pre-fix code.
  const int port = 20000 + (getpid() % 20000);
  serve::ServerOptions so;
  so.tcp_port = port;
  std::thread server([&] { serve::run_server(so); });

  std::string err;
  int fd = -1;
  for (int attempt = 0; attempt < 100 && fd < 0; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    fd = serve::connect_tcp(port, err);
  }
  ASSERT_GE(fd, 0) << err;

  // Pipeline a burst of requests, then vanish without reading a byte. The
  // daemon keeps writing replies into a socket whose peer is gone; once the
  // client kernel answers with RST, further sends hit EPIPE.
  std::string burst;
  for (int i = 0; i < 64; ++i) {
    sched::encode_frame(burst, sched::MsgType::kCacheStats, "");
  }
  ASSERT_EQ(::send(fd, burst.data(), burst.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(burst.size()));
  ::close(fd);  // no reads: replies pile into a dead peer

  // The daemon must still be alive and serving fresh connections.
  int fd2 = -1;
  for (int attempt = 0; attempt < 100 && fd2 < 0; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    fd2 = serve::connect_tcp(port, err);
  }
  ASSERT_GE(fd2, 0) << "daemon died after the disconnect: " << err;
  ASSERT_TRUE(serve::send_frame(fd2, sched::MsgType::kCacheStats, ""));
  sched::FrameDecoder dec;
  sched::Frame f;
  ASSERT_TRUE(serve::recv_frame(fd2, dec, f, err)) << err;
  EXPECT_EQ(f.type, sched::MsgType::kCacheStats);
  ASSERT_TRUE(serve::send_frame(fd2, sched::MsgType::kShutdown, ""));
  ASSERT_TRUE(serve::recv_frame(fd2, dec, f, err)) << err;
  ::close(fd2);
  server.join();
}

}  // namespace
}  // namespace plankton
