// ARC baseline: Dinic vs brute-force edge-subset enumeration (property test)
// and ARC-vs-Plankton verdict agreement.
#include <gtest/gtest.h>

#include <random>

#include "baselines/arc/arc.hpp"
#include "core/verifier.hpp"
#include "workload/fat_tree.hpp"
#include "workload/ring.hpp"

namespace plankton {
namespace {

/// Reference: is src connected to dst after removing `removed` links?
bool connected_without(const Topology& topo, NodeId src, NodeId dst,
                       std::uint32_t removed_mask) {
  std::vector<std::uint8_t> seen(topo.node_count(), 0);
  std::vector<NodeId> stack{src};
  seen[src] = 1;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    if (v == dst) return true;
    for (const auto& adj : topo.neighbors(v)) {
      if ((removed_mask >> adj.link) & 1) continue;
      if (seen[adj.neighbor] == 0) {
        seen[adj.neighbor] = 1;
        stack.push_back(adj.neighbor);
      }
    }
  }
  return false;
}

/// Brute force: min number of link removals that disconnects the pair.
std::uint32_t brute_min_cut(const Topology& topo, NodeId src, NodeId dst) {
  const std::uint32_t links = static_cast<std::uint32_t>(topo.link_count());
  for (std::uint32_t k = 0; k <= links; ++k) {
    for (std::uint32_t mask = 0; mask < (1u << links); ++mask) {
      if (static_cast<std::uint32_t>(std::popcount(mask)) != k) continue;
      if (!connected_without(topo, src, dst, mask)) return k;
    }
  }
  return links + 1;
}

TEST(ArcBaseline, MinCutMatchesBruteForceOnRandomGraphs) {
  std::mt19937 rng(12345);
  for (int iter = 0; iter < 25; ++iter) {
    const int n = 4 + static_cast<int>(rng() % 4);  // 4..7 nodes
    Topology topo;
    for (int i = 0; i < n; ++i) topo.add_node("n" + std::to_string(i));
    for (int i = 1; i < n; ++i) {
      topo.add_link(static_cast<NodeId>(i),
                    static_cast<NodeId>(rng() % static_cast<unsigned>(i)));
    }
    while (topo.link_count() < static_cast<std::size_t>(n) + 2 &&
           topo.link_count() < 14) {
      const NodeId a = rng() % n;
      const NodeId b = rng() % n;
      if (a != b && topo.find_link(a, b) == kNoLink) topo.add_link(a, b);
    }
    const NodeId s = 0;
    const NodeId t = static_cast<NodeId>(n - 1);
    arc::MaxFlow mf(topo.node_count());
    for (const Link& l : topo.links()) mf.add_undirected_edge(l.a, l.b);
    EXPECT_EQ(mf.run(s, t), brute_min_cut(topo, s, t)) << "iter " << iter;
  }
}

TEST(ArcBaseline, RingConnectivity) {
  const Network net = make_ring(8);
  arc::ArcVerifier arc_v(net);
  std::vector<NodeId> all;
  for (NodeId n = 0; n < net.topo.node_count(); ++n) all.push_back(n);
  EXPECT_TRUE(arc_v.check_all_to_all(all, 1).holds);   // ring survives 1 failure
  EXPECT_FALSE(arc_v.check_all_to_all(all, 2).holds);  // but not 2
}

TEST(ArcBaseline, AgreesWithPlanktonOnFatTree) {
  FatTreeOptions o;
  o.k = 4;
  const FatTree ft = make_fat_tree(o);
  arc::ArcVerifier arc_v(ft.net);
  for (const int k : {0, 1, 2}) {
    const arc::ArcResult ar =
        arc_v.check_all_to_all({ft.edges.data(), ft.edges.size()}, k);
    VerifyOptions vo;
    vo.explore.max_failures = k;
    Verifier verifier(ft.net, vo);
    const ReachabilityPolicy policy({ft.edges.begin(), ft.edges.end()});
    const VerifyResult pr = verifier.verify(policy);
    EXPECT_EQ(ar.holds, pr.holds) << "k=" << k;
  }
}

}  // namespace
}  // namespace plankton
