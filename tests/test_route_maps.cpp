// Route maps driving the verification outcome end to end: local-pref
// steering, community tagging + matching, AS-path prepending, deny filters.
#include <gtest/gtest.h>

#include "config/parser.hpp"
#include "core/verifier.hpp"

namespace plankton {
namespace {

/// Diamond: src peers with left and right, both peer with dst (origin).
ParsedNetwork diamond(const std::string& extra) {
  return parse_network_config(R"(
node src
node left
node right
node dst
link src left
link src right
link left dst
link right dst
bgp src asn 65001
bgp left asn 65002
bgp right asn 65003
bgp dst asn 65004
bgp-session src left ebgp
bgp-session src right ebgp
bgp-session left dst ebgp
bgp-session right dst ebgp
bgp dst originate 10.9.0.0/16
)" + extra);
}

VerifyResult check_waypoint(const Network& net, const char* wp) {
  const NodeId src = *net.find_device("src");
  const NodeId w = *net.find_device(wp);
  VerifyOptions vo;
  Verifier v(net, vo);
  const WaypointPolicy policy({src}, {w});
  return v.verify_address(IpAddr(10, 9, 1, 1), policy);
}

TEST(RouteMaps, WithoutSteeringEitherSideCanWin) {
  const ParsedNetwork parsed = diamond("");
  // Ties everywhere: some convergence goes left, some right — a waypoint
  // through either single side must be violable.
  EXPECT_FALSE(check_waypoint(parsed.net, "left").holds);
  EXPECT_FALSE(check_waypoint(parsed.net, "right").holds);
}

TEST(RouteMaps, LocalPrefSteersAllTraffic) {
  const ParsedNetwork parsed = diamond(
      "route-map src left import permit set-local-pref 200\n");
  EXPECT_TRUE(check_waypoint(parsed.net, "left").holds);
  EXPECT_FALSE(check_waypoint(parsed.net, "right").holds);
}

TEST(RouteMaps, PrependMakesPathLoseOnLength) {
  const ParsedNetwork parsed = diamond(
      "route-map right dst import permit prepend 3\n");
  // Routes via right carry +3 AS hops: src deterministically prefers left.
  EXPECT_TRUE(check_waypoint(parsed.net, "left").holds);
}

TEST(RouteMaps, DenyFilterRemovesPath) {
  const ParsedNetwork parsed = diamond(
      "route-map-default left dst import deny\n");
  // Left never learns the prefix: all traffic goes right.
  EXPECT_TRUE(check_waypoint(parsed.net, "right").holds);
  const NodeId src = *parsed.net.find_device("src");
  Verifier v(parsed.net, {});
  const ReachabilityPolicy reach({src});
  EXPECT_TRUE(v.verify_address(IpAddr(10, 9, 1, 1), reach).holds);
}

TEST(RouteMaps, CommunityTagTriggersRemotePolicy) {
  // dst tags exports to right with BACKUP; src depresses BACKUP-tagged
  // routes: all traffic steered via left.
  const ParsedNetwork parsed = diamond(
      "route-map dst right export permit add-community BACKUP\n"
      "route-map src right import permit match-community BACKUP "
      "set-local-pref 50\n");
  EXPECT_TRUE(check_waypoint(parsed.net, "left").holds);
}

TEST(RouteMaps, ExactPrefixMatchDoesNotCatchOthers) {
  const ParsedNetwork parsed = diamond(
      "bgp dst originate 172.20.0.0/16\n"
      "route-map src right import deny match-prefix 10.9.0.0/16\n");
  // 10.9/16 can only arrive via left; 172.20/16 is unaffected.
  EXPECT_TRUE(check_waypoint(parsed.net, "left").holds);
  const NodeId src = *parsed.net.find_device("src");
  Verifier v(parsed.net, {});
  const WaypointPolicy via_right({src}, {*parsed.net.find_device("right")});
  EXPECT_FALSE(v.verify_address(IpAddr(172, 20, 0, 1), via_right).holds)
      << "172.20/16 is not filtered, so right remains possible";
}

TEST(RouteMaps, OrLongerMatchCoversSubPrefixes) {
  const ParsedNetwork parsed = diamond(
      "bgp dst originate 10.9.128.0/17\n"
      "route-map src right import deny match-prefix 10.9.0.0/16 or-longer\n");
  // Both 10.9.0.0/16 and 10.9.128.0/17 are blocked on the right session.
  Verifier v(parsed.net, {});
  const NodeId src = *parsed.net.find_device("src");
  const WaypointPolicy via_left({src}, {*parsed.net.find_device("left")});
  EXPECT_TRUE(v.verify_address(IpAddr(10, 9, 200, 1), via_left).holds);
}

TEST(RouteMaps, MaxPathLenFilterCutsLongRoutes) {
  const ParsedNetwork parsed = diamond(
      "route-map right dst import permit prepend 4\n"
      "route-map src right import deny match-max-path-len 10\n"
      "route-map-default src right import permit\n");
  // Hmm: deny clause matches routes with as_path_len <= 10 — i.e. it blocks
  // the (short) legitimate route too... the semantics under test: the right
  // route (len 1+4=5 <= 10) is denied; left wins.
  EXPECT_TRUE(check_waypoint(parsed.net, "left").holds);
}

}  // namespace
}  // namespace plankton
