// Resource governance (checker/budget.hpp): budget taxonomy, sound
// kInconclusive verdicts, deterministic trip points, and graceful visited
// degradation.
//
// The headline guarantees under test:
//   · a tripped budget (deadline / states / memory) degrades a would-be hold
//     to Verdict::kInconclusive — NEVER to a spurious kHolds — on every
//     engine × shard-count combination;
//   · state- and memory-budget trips are deterministic: the same budget on
//     the same workload twice yields bit-identical partial stats and the
//     identical kInconclusive report (the budget-determinism satellite);
//   · opt-in exact→hash-compact visited degradation under memory pressure
//     preserves every previously seen key and self-reports the loss of
//     exhaustiveness (exhaustive == false).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/verifier.hpp"
#include "engine/visited.hpp"
#include "workload/fat_tree.hpp"

namespace plankton {
namespace {

/// Everything the budget-determinism satellite calls bit-identical: verdict
/// taxonomy fields, the partial-exploration counters, and the violation
/// multiset.
struct Fingerprint {
  Verdict verdict = Verdict::kHolds;
  BudgetKind budget_tripped = BudgetKind::kNone;
  bool exhaustive = true;
  std::size_t pecs_inconclusive = 0;
  std::uint64_t states_explored = 0;
  std::uint64_t states_stored = 0;
  std::uint64_t converged_states = 0;
  std::uint64_t policy_checks = 0;
  std::multiset<std::string> violations;

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) {
    return a.verdict == b.verdict && a.budget_tripped == b.budget_tripped &&
           a.exhaustive == b.exhaustive &&
           a.pecs_inconclusive == b.pecs_inconclusive &&
           a.states_explored == b.states_explored &&
           a.states_stored == b.states_stored &&
           a.converged_states == b.converged_states &&
           a.policy_checks == b.policy_checks && a.violations == b.violations;
  }
};

Fingerprint fingerprint(const VerifyResult& r) {
  Fingerprint fp;
  fp.verdict = r.verdict;
  fp.budget_tripped = r.budget_tripped;
  fp.exhaustive = r.exhaustive;
  fp.pecs_inconclusive = r.pecs_inconclusive;
  fp.states_explored = r.total.states_explored;
  fp.states_stored = r.total.states_stored;
  fp.converged_states = r.total.converged_states;
  fp.policy_checks = r.total.policy_checks;
  for (const auto& rep : r.reports) {
    for (const auto& v : rep.result.violations) {
      fp.violations.insert(rep.pec_str + "|" +
                           std::to_string(v.failures.hash()) + "|" + v.message);
    }
  }
  return fp;
}

/// The fig9 worst-case BGP DC workload (bench/perf_smoke.cpp): a single PEC
/// whose uncapped exploration runs for hundreds of milliseconds and stores
/// megabytes — big enough that every budget axis genuinely trips.
struct WorstCase {
  FatTree ft;
  WaypointPolicy policy;
  IpAddr addr;

  WorstCase()
      : ft(make_fat_tree([] {
          FatTreeOptions o;
          o.k = 4;
          o.routing = FatTreeOptions::Routing::kBgpRfc7938;
          return o;
        }())),
        policy({ft.edges.back()}, ft.aggs),
        addr(ft.edge_prefixes[0].addr()) {}

  [[nodiscard]] VerifyResult run(VerifyOptions vo) const {
    vo.explore.det_nodes_bgp = false;
    vo.explore.suppress_equivalent = false;
    Verifier verifier(ft.net, vo);
    return verifier.verify_address(addr, policy);
  }
};

// ---------------------------------------------------------------------------
// Verdict taxonomy
// ---------------------------------------------------------------------------

TEST(BudgetTaxonomy, VerdictClassification) {
  ExploreResult r;
  EXPECT_EQ(r.verdict(), Verdict::kHolds);
  r.timed_out = true;
  EXPECT_EQ(r.verdict(), Verdict::kInconclusive);
  r = {};
  r.state_limit_hit = true;
  EXPECT_EQ(r.verdict(), Verdict::kInconclusive);
  r = {};
  r.memory_limit_hit = true;
  EXPECT_EQ(r.verdict(), Verdict::kInconclusive);
  r = {};
  r.budget_tripped = BudgetKind::kStates;
  EXPECT_EQ(r.verdict(), Verdict::kInconclusive);
  // A violation is sound even from a partial search: it always wins.
  r.holds = false;
  EXPECT_EQ(r.verdict(), Verdict::kViolated);

  EXPECT_STREQ(to_string(BudgetKind::kNone), "none");
  EXPECT_STREQ(to_string(BudgetKind::kDeadline), "deadline");
  EXPECT_STREQ(to_string(BudgetKind::kStates), "states");
  EXPECT_STREQ(to_string(BudgetKind::kMemory), "memory");
  EXPECT_STREQ(to_string(Verdict::kHolds), "holds");
  EXPECT_STREQ(to_string(Verdict::kViolated), "violated");
  EXPECT_STREQ(to_string(Verdict::kInconclusive), "inconclusive");
  EXPECT_STREQ(to_string(Verdict::kError), "error");
}

TEST(BudgetTaxonomy, UnbudgetedRunIsExhaustiveHold) {
  const WorstCase wc;
  VerifyOptions vo;
  vo.explore.max_states = 50000;  // under the ~180k full exploration: trips
  const VerifyResult capped = wc.run(vo);
  EXPECT_EQ(capped.verdict, Verdict::kInconclusive)
      << "a state-cap stop must not report a hold";

  VerifyOptions unbudgeted;
  EXPECT_FALSE(unbudgeted.budget.any());
  FatTreeOptions o;
  o.k = 4;
  const FatTree ft = make_fat_tree(o);
  const LoopFreedomPolicy policy;
  Verifier verifier(ft.net, unbudgeted);
  const VerifyResult r = verifier.verify(policy);
  EXPECT_EQ(r.verdict, Verdict::kHolds);
  EXPECT_EQ(r.budget_tripped, BudgetKind::kNone);
  EXPECT_TRUE(r.exhaustive);
  EXPECT_EQ(r.pecs_inconclusive, 0u);
}

// ---------------------------------------------------------------------------
// Budget determinism (same budget twice => identical partial stats and the
// identical kInconclusive report)
// ---------------------------------------------------------------------------

TEST(BudgetDeterminism, StateBudgetTripsIdenticallyTwice) {
  const WorstCase wc;
  VerifyOptions vo;
  vo.budget.max_states = 5000;
  const VerifyResult first = wc.run(vo);
  ASSERT_EQ(first.verdict, Verdict::kInconclusive);
  EXPECT_EQ(first.budget_tripped, BudgetKind::kStates);
  EXPECT_TRUE(first.holds) << "no spurious violation from a partial search";
  EXPECT_EQ(first.pecs_inconclusive, 1u);
  EXPECT_TRUE(first.exhaustive)
      << "a state-cap stop with the exact backend is partial, not lossy";

  const VerifyResult second = wc.run(vo);
  EXPECT_EQ(fingerprint(first), fingerprint(second))
      << "the same state budget on the same workload must stop at the "
         "identical partial exploration";
}

TEST(BudgetDeterminism, MemoryBudgetTripsIdenticallyTwice) {
  const WorstCase wc;
  VerifyOptions vo;
  vo.budget.max_bytes = 2u << 20;  // the uncapped run stores ~10 MB
  const VerifyResult first = wc.run(vo);
  ASSERT_EQ(first.verdict, Verdict::kInconclusive);
  EXPECT_EQ(first.budget_tripped, BudgetKind::kMemory);
  EXPECT_TRUE(first.holds);
  EXPECT_TRUE(first.exhaustive) << "without the degradation opt-in the "
                                   "exact backend stays exact";
  EXPECT_GT(first.total.budget_checks, 0u);

  const VerifyResult second = wc.run(vo);
  EXPECT_EQ(fingerprint(first), fingerprint(second))
      << "memory budgets check a deterministic model-byte count, so the "
         "trip point must reproduce";
}

TEST(BudgetDeterminism, DeadlineClassifiesIdenticallyAcrossRuns) {
  // Wall-clock trips are inherently timing-dependent, so only the verdict
  // classification is pinned: with a deadline 20x under the unbudgeted
  // ~500 ms runtime, both runs must come back inconclusive-on-deadline with
  // no spurious violation (the partial stats legitimately differ).
  const WorstCase wc;
  VerifyOptions vo;
  vo.budget.deadline = std::chrono::milliseconds(25);
  for (int run = 0; run < 2; ++run) {
    const VerifyResult r = wc.run(vo);
    EXPECT_EQ(r.verdict, Verdict::kInconclusive) << "run " << run;
    EXPECT_EQ(r.budget_tripped, BudgetKind::kDeadline) << "run " << run;
    EXPECT_TRUE(r.holds) << "run " << run;
  }
}

// ---------------------------------------------------------------------------
// Soundness: exhaustion is never reported as a hold, on every engine x
// shard-count combination (the acceptance matrix)
// ---------------------------------------------------------------------------

TEST(BudgetSoundness, DeadlineNeverReportsHoldAcrossEnginesAndShards) {
  const WorstCase wc;
  const SearchEngineKind engines[] = {SearchEngineKind::kDfs,
                                      SearchEngineKind::kBfs,
                                      SearchEngineKind::kPriority};
  for (const SearchEngineKind engine : engines) {
    for (const int shards : {0, 1, 2}) {
      VerifyOptions vo;
      vo.explore.engine_kind = engine;
      vo.budget.deadline = std::chrono::milliseconds(25);
      if (shards > 0) vo.shards = shards;
      const VerifyResult r = wc.run(vo);
      EXPECT_NE(r.verdict, Verdict::kHolds)
          << "engine=" << to_string(engine) << " shards=" << shards
          << ": a deadline-capped partial search reported a hold";
      EXPECT_EQ(r.verdict, Verdict::kInconclusive)
          << "engine=" << to_string(engine) << " shards=" << shards;
      EXPECT_EQ(r.budget_tripped, BudgetKind::kDeadline)
          << "engine=" << to_string(engine) << " shards=" << shards;
    }
  }
}

TEST(BudgetSoundness, StateBudgetIsInconclusiveThroughShards) {
  // The new verdict fields must survive the PecDone wire round-trip: a
  // sharded budget-tripped run reports the same taxonomy as in-process.
  const WorstCase wc;
  VerifyOptions vo;
  vo.budget.max_states = 5000;
  const Fingerprint ref = fingerprint(wc.run(vo));
  for (const int shards : {1, 2}) {
    VerifyOptions sv = vo;
    sv.shards = shards;
    const VerifyResult r = wc.run(sv);
    EXPECT_EQ(r.verdict, Verdict::kInconclusive) << "shards=" << shards;
    EXPECT_EQ(r.budget_tripped, BudgetKind::kStates) << "shards=" << shards;
    EXPECT_EQ(fingerprint(r), ref)
        << "shards=" << shards
        << ": budget trip diverged from the in-process run";
  }
}

// ---------------------------------------------------------------------------
// Per-PEC fair-share slice (the dedup-rerun divide-by-zero guard)
// ---------------------------------------------------------------------------

TEST(FairShareSlice, DividesRemainingOverUnstartedPecs) {
  using std::chrono::milliseconds;
  EXPECT_EQ(fair_share_slice(milliseconds(1000), 10, 0), milliseconds(100));
  EXPECT_EQ(fair_share_slice(milliseconds(1000), 10, 5), milliseconds(200));
  EXPECT_EQ(fair_share_slice(milliseconds(1000), 10, 9), milliseconds(1000));
}

TEST(FairShareSlice, StartedCatchingSchedulerNeverDividesByZero) {
  // The race this guards: a dedup member rerun bumps `started` past the
  // static scheduled count, so scheduled - started would be 0 (or wrap
  // negative as size_t). The slice must stay a sane positive duration.
  using std::chrono::milliseconds;
  EXPECT_EQ(fair_share_slice(milliseconds(1000), 10, 10), milliseconds(1000));
  EXPECT_EQ(fair_share_slice(milliseconds(1000), 10, 12), milliseconds(1000));
  EXPECT_EQ(fair_share_slice(milliseconds(1000), 0, 0), milliseconds(1000));
  EXPECT_EQ(fair_share_slice(milliseconds(1000), 0, 7), milliseconds(1000));
}

TEST(FairShareSlice, ExhaustedOrSubMillisecondRemainderClampsToMinimum) {
  using std::chrono::milliseconds;
  EXPECT_EQ(fair_share_slice(milliseconds(0), 10, 0), milliseconds(1));
  EXPECT_EQ(fair_share_slice(milliseconds(-50), 10, 0), milliseconds(1));
  // 5 ms over 10 unstarted PECs truncates to 0 — clamp, never hand the
  // explorer a zero deadline (zero means "unbounded" downstream).
  EXPECT_EQ(fair_share_slice(milliseconds(5), 10, 0), milliseconds(1));
}

TEST(FairShareSlice, DedupRerunsDoNotStarveTheFinalPec) {
  // End-to-end: symmetric workload where dedup collapses many PECs onto one
  // representative and the members rerun as scheduled work. Under a global
  // deadline the run must still classify soundly (hold within budget or
  // inconclusive-on-deadline) — never a garbage slice that trips instantly
  // with a bogus verdict.
  FatTreeOptions o;
  o.k = 4;
  const FatTree ft = make_fat_tree(o);
  const LoopFreedomPolicy policy;
  VerifyOptions vo;
  vo.pec_dedup = true;
  vo.budget.deadline = std::chrono::seconds(60);
  Verifier verifier(ft.net, vo);
  const VerifyResult r = verifier.verify(policy);
  EXPECT_EQ(r.verdict, Verdict::kHolds);
  EXPECT_TRUE(r.exhaustive);
}

// ---------------------------------------------------------------------------
// Graceful visited degradation (exact -> hash-compact under memory pressure)
// ---------------------------------------------------------------------------

TEST(VisitedDegradation, MigrationPreservesSeenKeysAndDropsExhaustiveness) {
  const auto exact = make_visited_backend(VisitedKind::kExact);
  ASSERT_TRUE(exact->exhaustive());
  for (std::uint64_t k = 1; k <= 1000; ++k) {
    ASSERT_TRUE(exact->insert(k * 0x9e3779b97f4a7c15ull));
  }
  const auto compact = exact->degrade_to_compact();
  ASSERT_NE(compact, nullptr);
  EXPECT_EQ(compact->kind(), VisitedKind::kHashCompact);
  EXPECT_FALSE(compact->exhaustive())
      << "hash compaction is lossy; the migrated set must say so";
  EXPECT_LT(compact->bytes(), exact->bytes());
  for (std::uint64_t k = 1; k <= 1000; ++k) {
    EXPECT_FALSE(compact->insert(k * 0x9e3779b97f4a7c15ull))
        << "key " << k << " was forgotten by the migration";
  }
}

TEST(VisitedDegradation, LossyBackendsRefuseToMigrate) {
  EXPECT_EQ(make_visited_backend(VisitedKind::kHashCompact)->degrade_to_compact(),
            nullptr);
  EXPECT_EQ(make_visited_backend(VisitedKind::kBitstate)->degrade_to_compact(),
            nullptr);
}

TEST(VisitedDegradation, DegradedRunSelfReportsNonExhaustive) {
  // With the opt-in, memory pressure first migrates the visited set (POR off:
  // the sleep-set store needs full keys) and the run self-reports
  // exhaustive == false; the budget is small enough that the trimmed model
  // still trips kMemory later. Either way the verdict must be inconclusive
  // and the loss of exhaustiveness visible — and deterministic across runs.
  const WorstCase wc;
  VerifyOptions vo;
  vo.explore.por = false;
  vo.budget.max_bytes = 2u << 20;
  vo.budget.degrade_visited = true;
  const VerifyResult first = wc.run(vo);
  ASSERT_EQ(first.verdict, Verdict::kInconclusive);
  EXPECT_FALSE(first.exhaustive)
      << "degradation happened but the run still claims exhaustive coverage";
  EXPECT_EQ(first.budget_tripped, BudgetKind::kMemory);

  const VerifyResult second = wc.run(vo);
  EXPECT_EQ(fingerprint(first), fingerprint(second));

  // Contrast: without the opt-in the same budget trips earlier but the
  // search stays exact (partial, not lossy).
  VerifyOptions plain = vo;
  plain.budget.degrade_visited = false;
  const VerifyResult r = wc.run(plain);
  EXPECT_EQ(r.verdict, Verdict::kInconclusive);
  EXPECT_TRUE(r.exhaustive);
}

}  // namespace
}  // namespace plankton
