// DEC/LEC computation and Bonsai compression.
#include <gtest/gtest.h>

#include "core/verifier.hpp"
#include "eqclass/bonsai.hpp"
#include "eqclass/dec.hpp"
#include "netbase/hash.hpp"
#include "workload/fat_tree.hpp"
#include "workload/ring.hpp"

namespace plankton {
namespace {

TEST(Dec, SymmetricRingCollapsesAroundOrigin) {
  const Network net = make_ring(8);
  std::vector<std::uint64_t> sig(8, 1);
  sig[0] = 2;  // the origin is distinguished
  const FailureSet none(net.topo.link_count());
  const DecPartition dec = DecPartition::compute(net.topo, sig, none);
  // Mirror symmetry around node 0: nodes i and 8-i must share a color.
  for (int i = 1; i < 8; ++i) {
    EXPECT_EQ(dec.color(i), dec.color((8 - i) % 8)) << i;
  }
  EXPECT_LT(dec.num_colors(), 8u);
}

TEST(Dec, LecRepresentativesShrinkFatTreeFailureChoices) {
  FatTreeOptions o;
  o.k = 6;
  const FatTree ft = make_fat_tree(o);
  std::vector<std::uint64_t> sig(ft.net.topo.node_count(), 1);
  sig[ft.edges[0]] = 2;  // destination edge distinguished
  const FailureSet none(ft.net.topo.link_count());
  const DecPartition dec = DecPartition::compute(ft.net.topo, sig, none);
  const auto reps = dec.lec_representatives(ft.net.topo, none);
  EXPECT_LT(reps.size(), ft.net.topo.link_count() / 2)
      << "symmetry must collapse most failure choices";
}

TEST(Dec, AsymmetricWeightsKeepClassesApart) {
  Network net;
  for (int i = 0; i < 3; ++i) net.add_device("n" + std::to_string(i));
  net.topo.add_link(0, 1, 1);
  net.topo.add_link(0, 2, 99);  // different cost: 1 and 2 are distinguishable
  std::vector<std::uint64_t> sig(3, 7);
  const FailureSet none(net.topo.link_count());
  const DecPartition dec = DecPartition::compute(net.topo, sig, none);
  EXPECT_NE(dec.color(1), dec.color(2));
}

TEST(Bonsai, CompressesFatTreeSubstantially) {
  FatTreeOptions o;
  o.k = 8;  // 80 devices
  const FatTree ft = make_fat_tree(o);
  const BonsaiResult b =
      bonsai_compress_ospf(ft.net, ft.edge_prefixes[0], {{ft.edges[5]}});
  EXPECT_LT(b.net.topo.node_count(), ft.net.topo.node_count() / 4);
  EXPECT_GE(b.net.topo.node_count(), 4u);
}

TEST(Bonsai, PreservesReachabilityVerdict) {
  FatTreeOptions o;
  o.k = 4;
  const FatTree ft = make_fat_tree(o);
  for (const std::size_t dst : {std::size_t{0}, std::size_t{3}}) {
    const NodeId src = ft.edges[(dst + 2) % ft.edges.size()];
    const BonsaiResult b =
        bonsai_compress_ospf(ft.net, ft.edge_prefixes[dst], {{src}});
    // Original verdict.
    Verifier orig(ft.net, {});
    const ReachabilityPolicy orig_policy({src});
    const bool orig_holds =
        orig.verify_address(ft.edge_prefixes[dst].addr(), orig_policy).holds;
    // Compressed verdict.
    Verifier comp(b.net, {});
    const ReachabilityPolicy comp_policy({b.abstract_of(src)});
    const bool comp_holds =
        comp.verify_address(ft.edge_prefixes[dst].addr(), comp_policy).holds;
    EXPECT_EQ(orig_holds, comp_holds);
    EXPECT_TRUE(comp_holds);
  }
}

TEST(Bonsai, PreservesPathLength) {
  FatTreeOptions o;
  o.k = 6;
  const FatTree ft = make_fat_tree(o);
  const NodeId src = ft.edges[4];
  const BonsaiResult b = bonsai_compress_ospf(ft.net, ft.edge_prefixes[0], {{src}});
  for (const std::uint32_t limit : {3u, 4u}) {
    Verifier orig(ft.net, {});
    const BoundedPathLengthPolicy op({src}, limit);
    Verifier comp(b.net, {});
    const BoundedPathLengthPolicy cp({b.abstract_of(src)}, limit);
    EXPECT_EQ(orig.verify_address(ft.edge_prefixes[0].addr(), op).holds,
              comp.verify_address(ft.edge_prefixes[0].addr(), cp).holds)
        << "limit " << limit;
  }
}

TEST(Bonsai, RejectsNonOspfNetworks) {
  FatTreeOptions o;
  o.k = 4;
  o.routing = FatTreeOptions::Routing::kBgpRfc7938;
  const FatTree ft = make_fat_tree(o);
  EXPECT_THROW(bonsai_compress_ospf(ft.net, ft.edge_prefixes[0], {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace plankton
