// The paper's soundness/completeness claims as executable properties:
//
//  * Theorems 1-2: the optimized search (consistent executions only +
//    deterministic nodes + decision independence) reaches exactly the same
//    set of converged data planes as naive exhaustive RPVP exploration.
//  * OSPF's converged state matches the reference Dijkstra computation.
//  * Policy verdicts agree across optimization levels and failure handling.
#include <gtest/gtest.h>

#include <random>
#include <set>
#include <string>

#include "core/verifier.hpp"
#include "pec/pec.hpp"
#include "rpvp/explorer.hpp"
#include "workload/fat_tree.hpp"

namespace plankton {
namespace {

class TruePolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "true"; }
  [[nodiscard]] bool check(const ConvergedView&, std::string&) const override {
    return true;
  }
};

/// All converged outcomes of the single routed PEC of `net`, as a set of
/// outcome hashes (data plane + IGP costs + failure set).
std::set<std::uint64_t> converged_set(const Network& net, ExploreOptions opts,
                                      int max_failures) {
  const PecSet pecs = compute_pecs(net);
  const auto routed = pecs.routed();
  EXPECT_EQ(routed.size(), 1u);
  const Pec& pec = pecs.pecs[routed[0]];
  opts.max_failures = max_failures;
  opts.record_outcomes = true;
  opts.find_all_violations = true;
  const TruePolicy policy;
  Explorer ex(net, pec, make_tasks(net, pec), policy, opts);
  const ExploreResult r = ex.run();
  EXPECT_FALSE(r.timed_out);
  std::set<std::uint64_t> out;
  for (const auto& o : r.outcomes) out.insert(o.hash);
  return out;
}

Network random_ospf_network(std::mt19937& rng, int n) {
  Network net;
  for (int i = 0; i < n; ++i) {
    const NodeId id = net.add_device("r" + std::to_string(i));
    net.device(id).ospf.enabled = true;
    net.device(id).ospf.advertise_loopback = false;
  }
  for (int i = 1; i < n; ++i) {
    net.topo.add_link(static_cast<NodeId>(i),
                      static_cast<NodeId>(rng() % static_cast<unsigned>(i)),
                      1 + rng() % 5);
  }
  for (int extra = 0; extra < n / 2; ++extra) {
    const NodeId a = rng() % n;
    const NodeId b = rng() % n;
    if (a != b && net.topo.find_link(a, b) == kNoLink) {
      net.topo.add_link(a, b, 1 + rng() % 5);
    }
  }
  net.device(rng() % n).ospf.originated.push_back(*Prefix::parse("10.0.0.0/16"));
  return net;
}

Network random_bgp_network(std::mt19937& rng, int n) {
  Network net;
  for (int i = 0; i < n; ++i) {
    const NodeId id = net.add_device("r" + std::to_string(i));
    net.device(id).bgp.emplace();
    net.device(id).bgp->asn = 65000 + static_cast<std::uint32_t>(i);
  }
  auto session = [&net](NodeId a, NodeId b) {
    if (net.device(a).bgp->session_with(b) != nullptr) return;
    net.topo.add_link(a, b);
    BgpSession sa;
    sa.peer = b;
    net.device(a).bgp->sessions.push_back(sa);
    BgpSession sb;
    sb.peer = a;
    net.device(b).bgp->sessions.push_back(sb);
  };
  for (int i = 1; i < n; ++i) {
    session(static_cast<NodeId>(i), static_cast<NodeId>(rng() % static_cast<unsigned>(i)));
  }
  for (int extra = 0; extra < n / 2; ++extra) {
    const NodeId a = rng() % n;
    const NodeId b = rng() % n;
    if (a != b) session(a, b);
  }
  net.device(0).bgp->originated.push_back(*Prefix::parse("10.0.0.0/16"));
  // Random local-pref policies create genuine multi-stable-state networks.
  for (NodeId v = 1; v < static_cast<NodeId>(n); ++v) {
    for (auto& s : net.device(v).bgp->sessions) {
      if (rng() % 3 == 0) {
        RouteMapClause clause;
        clause.action.set_local_pref = 50 + 50 * (rng() % 4);
        s.import.clauses.push_back(clause);
      }
    }
  }
  return net;
}

class OspfEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(OspfEquivalence, OptimizedMatchesNaive) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 1337u);
  for (int iter = 0; iter < 5; ++iter) {
    const Network net = random_ospf_network(rng, 4 + static_cast<int>(rng() % 5));
    for (const int k : {0, 1}) {
      ExploreOptions fast;  // all optimizations on
      fast.lec_failures = false;  // identical failure enumeration on both sides
      ExploreOptions naive = ExploreOptions::naive();
      const auto a = converged_set(net, fast, k);
      const auto b = converged_set(net, naive, k);
      EXPECT_EQ(a, b) << "seed " << GetParam() << " iter " << iter << " k=" << k;
      EXPECT_FALSE(a.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OspfEquivalence, ::testing::Range(1, 7));

class BgpEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(BgpEquivalence, OptimizedMatchesNaive) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 7331u);
  for (int iter = 0; iter < 5; ++iter) {
    const Network net = random_bgp_network(rng, 4 + static_cast<int>(rng() % 4));
    for (const int k : {0, 1}) {
      ExploreOptions fast;
      fast.lec_failures = false;
      ExploreOptions naive = ExploreOptions::naive();
      const auto a = converged_set(net, fast, k);
      const auto b = converged_set(net, naive, k);
      EXPECT_EQ(a, b) << "seed " << GetParam() << " iter " << iter << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BgpEquivalence, ::testing::Range(1, 9));

/// Individual optimizations can be disabled without changing the converged
/// set (each one alone must be sound AND complete).
class SingleOptOff : public ::testing::TestWithParam<int> {};

TEST_P(SingleOptOff, ConvergedSetUnchanged) {
  std::mt19937 rng(99);
  const Network net = random_bgp_network(rng, 6);
  ExploreOptions base;
  base.lec_failures = false;
  const auto reference = converged_set(net, base, 1);
  ExploreOptions variant = base;
  switch (GetParam()) {
    case 0: variant.consistent_only = false; break;
    case 1: variant.deterministic_nodes = false; break;
    case 2: variant.decision_independence = false; break;
    case 3: variant.suppress_equivalent = false; break;
  }
  EXPECT_EQ(converged_set(net, variant, 1), reference) << "opt " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Opts, SingleOptOff, ::testing::Range(0, 4));

TEST(OspfConvergence, MatchesDijkstraMetrics) {
  std::mt19937 rng(2024);
  for (int iter = 0; iter < 10; ++iter) {
    const Network net = random_ospf_network(rng, 6 + static_cast<int>(rng() % 6));
    const PecSet pecs = compute_pecs(net);
    const Pec& pec = pecs.pecs[pecs.routed()[0]];
    ExploreOptions opts;
    opts.record_outcomes = true;
    const TruePolicy policy;
    Explorer ex(net, pec, make_tasks(net, pec), policy, opts);
    const ExploreResult r = ex.run();
    ASSERT_EQ(r.outcomes.size(), 1u) << "OSPF must converge deterministically";
    const auto& origins = pec.prefixes[0].ospf_origins;
    const auto expected =
        shortest_path_costs(net.topo, origins, net.topo.no_failures());
    for (NodeId n = 0; n < net.topo.node_count(); ++n) {
      EXPECT_EQ(r.outcomes[0].igp_cost[n], expected[n]) << "node " << n;
    }
  }
}

// ---------------------------------------------------------------------------
// Hot-path opt matrix (PR 2): the AdCache advertisement memo and the
// incremental (dirty-set) expand are exploration-*mechanics*, not search
// reductions — with any combination of the two switched on or off, the
// exploration must be bit-identical: same transition/branch/convergence
// counters and the same violations, on the Fig. 6 BGP network and the
// Fig. 9 BGP-DC worst-case workload.
// ---------------------------------------------------------------------------

/// Everything a run observed, for exact cross-matrix comparison.
struct RunFingerprint {
  std::uint64_t states_explored = 0;
  std::uint64_t converged_states = 0;
  std::uint64_t nondet_branches = 0;
  std::uint64_t det_steps = 0;
  std::uint64_t pruned_inconsistent = 0;
  std::uint64_t failure_sets = 0;
  std::multiset<std::string> violations;

  friend bool operator==(const RunFingerprint&, const RunFingerprint&) = default;
};

RunFingerprint fingerprint(const Network& net, const Policy& policy,
                           VerifyOptions vo, bool ad_cache, bool incremental,
                           const IpAddr* addr = nullptr,
                           SearchEngineKind engine = SearchEngineKind::kDfs) {
  vo.explore.ad_cache = ad_cache;
  vo.explore.incremental_expand = incremental;
  if (engine == SearchEngineKind::kSingleExecution) {
    vo.explore.simulation = true;
  } else {
    vo.explore.engine_kind = engine;
  }
  vo.explore.find_all_violations = true;
  Verifier verifier(net, vo);
  const VerifyResult r = addr != nullptr ? verifier.verify_address(*addr, policy)
                                         : verifier.verify(policy);
  RunFingerprint fp;
  fp.states_explored = r.total.states_explored;
  fp.converged_states = r.total.converged_states;
  fp.nondet_branches = r.total.nondet_branches;
  fp.det_steps = r.total.det_steps;
  fp.pruned_inconsistent = r.total.pruned_inconsistent;
  fp.failure_sets = r.total.failure_sets;
  for (const auto& rep : r.reports) {
    for (const auto& v : rep.result.violations) {
      fp.violations.insert(rep.pec_str + "|" +
                           std::to_string(v.failures.hash()) + "|" + v.message);
    }
  }
  return fp;
}

void expect_matrix_identical(const Network& net, const Policy& policy,
                             const VerifyOptions& vo,
                             const IpAddr* addr = nullptr,
                             SearchEngineKind engine = SearchEngineKind::kDfs) {
  const RunFingerprint ref = fingerprint(net, policy, vo, true, true, addr, engine);
  EXPECT_GT(ref.states_explored, 0u);
  for (const bool cache : {false, true}) {
    for (const bool incr : {false, true}) {
      if (cache && incr) continue;  // the reference itself
      const RunFingerprint fp =
          fingerprint(net, policy, vo, cache, incr, addr, engine);
      EXPECT_EQ(fp, ref) << "ad_cache=" << cache << " incremental=" << incr
                         << " engine=" << to_string(engine);
    }
  }
}

/// The engine-order-independent projection of a RunFingerprint: frontier
/// engines take a different number of apply() transitions (path replay) and
/// status refreshes than DFS, but must agree on everything else.
RunFingerprint order_independent(RunFingerprint fp) {
  fp.states_explored = 0;
  return fp;
}

/// The paper's Figure 6 BGP network (one AS per node, R1 origin, local-pref
/// maps at R5/R6) — the deterministic-node showcase.
Network figure6_network() {
  Network net;
  const auto add = [&net](const char* name) {
    const NodeId id = net.add_device(name);
    net.device(id).bgp.emplace();
    net.device(id).bgp->asn = 65000 + id;
    return id;
  };
  const NodeId r1 = add("R1"), r2 = add("R2"), r3 = add("R3"), r4 = add("R4"),
               r5 = add("R5"), r6 = add("R6");
  const auto session = [&net](NodeId a, NodeId b) {
    net.topo.add_link(a, b);
    BgpSession sa;
    sa.peer = b;
    net.device(a).bgp->sessions.push_back(sa);
    BgpSession sb;
    sb.peer = a;
    net.device(b).bgp->sessions.push_back(sb);
  };
  session(r1, r2);
  session(r1, r3);
  session(r2, r4);
  session(r2, r5);
  session(r3, r4);
  session(r4, r6);
  session(r5, r6);
  net.device(r1).bgp->originated.push_back(*Prefix::parse("10.0.0.0/16"));
  RouteMapClause high;
  high.action.set_local_pref = 300;
  net.device(r5).bgp->session_with(r2)->import.clauses.push_back(high);
  RouteMapClause low;
  low.action.set_local_pref = 50;
  net.device(r6).bgp->session_with(r5)->import.clauses.push_back(low);
  return net;
}

TEST(HotPathOptMatrix, Figure6BgpIdenticalAcrossMatrix) {
  const Network net = figure6_network();
  VerifyOptions vo;
  vo.cores = 1;
  vo.explore.max_failures = 1;
  vo.explore.lec_failures = false;
  const ReachabilityPolicy policy({5});
  expect_matrix_identical(net, policy, vo);
}

TEST(HotPathOptMatrix, Figure6NaiveModeIdenticalAcrossMatrix) {
  // The reference (full-rescan) expand path must also agree when the §4
  // search optimizations are off — exercises the withdraw/naive branches.
  const Network net = figure6_network();
  VerifyOptions vo;
  vo.cores = 1;
  vo.explore = ExploreOptions::naive();
  vo.explore.max_states = 200000;
  const ReachabilityPolicy policy({5});
  expect_matrix_identical(net, policy, vo);
}

TEST(HotPathOptMatrix, Fig9BgpDcWorstCaseIdenticalAcrossMatrix) {
  FatTreeOptions o;
  o.k = 4;
  o.routing = FatTreeOptions::Routing::kBgpRfc7938;
  const FatTree ft = make_fat_tree(o);
  const WaypointPolicy policy({ft.edges.back()}, ft.aggs);
  VerifyOptions vo;
  vo.cores = 1;
  vo.explore.det_nodes_bgp = false;
  vo.explore.suppress_equivalent = false;
  vo.explore.max_states = 20000;
  const IpAddr addr = ft.edge_prefixes[0].addr();
  expect_matrix_identical(ft.net, policy, vo, &addr);
}

TEST(HotPathOptMatrix, OspfFailuresIdenticalAcrossMatrix) {
  // OSPF exercises the ECMP merge path of refresh_node under failures.
  std::mt19937 rng(4242);
  for (int iter = 0; iter < 3; ++iter) {
    const Network net = random_ospf_network(rng, 6 + static_cast<int>(rng() % 4));
    // Source: any non-origin device (a source at the origin converges with
    // zero transitions and would make the comparison vacuous).
    NodeId src = 0;
    for (NodeId n = 0; n < net.topo.node_count(); ++n) {
      if (net.device(n).ospf.originated.empty()) {
        src = n;
        break;
      }
    }
    VerifyOptions vo;
    vo.cores = 1;
    vo.explore.max_failures = 2;
    const ReachabilityPolicy policy({src});
    expect_matrix_identical(net, policy, vo);
  }
}

// ---------------------------------------------------------------------------
// Engine matrix: the search engines against the opt-matrix workloads.
// kSingleExecution and the frontier engines must each be bit-identical
// across the hot-path (ad-cache × incremental-expand) matrix, and every
// exhaustive engine must agree with kDfs on all order-independent counters
// and verdicts.
// ---------------------------------------------------------------------------

TEST(EngineOptMatrix, SingleExecutionIdenticalAcrossMatrix) {
  // Simulation was previously untested against the opt-matrix workloads:
  // its single execution must also be mechanics-independent.
  const Network net = figure6_network();
  VerifyOptions vo;
  vo.cores = 1;
  vo.explore.max_failures = 1;
  vo.explore.lec_failures = false;
  const ReachabilityPolicy policy({5});
  expect_matrix_identical(net, policy, vo, nullptr,
                          SearchEngineKind::kSingleExecution);
}

TEST(EngineOptMatrix, SingleExecutionIdenticalAcrossMatrixOnFig9Workload) {
  FatTreeOptions o;
  o.k = 4;
  o.routing = FatTreeOptions::Routing::kBgpRfc7938;
  const FatTree ft = make_fat_tree(o);
  const WaypointPolicy policy({ft.edges.back()}, ft.aggs);
  VerifyOptions vo;
  vo.cores = 1;
  vo.explore.det_nodes_bgp = false;
  vo.explore.suppress_equivalent = false;
  vo.explore.max_states = 20000;
  const IpAddr addr = ft.edge_prefixes[0].addr();
  expect_matrix_identical(ft.net, policy, vo, &addr,
                          SearchEngineKind::kSingleExecution);
}

TEST(EngineOptMatrix, FrontierEnginesIdenticalAcrossMatrix) {
  // A frontier engine's exploration order depends only on the model's move
  // enumeration and codec keys, both of which the hot-path mechanics leave
  // bit-identical — so each engine must fingerprint identically across the
  // ad-cache × incremental matrix.
  const Network net = figure6_network();
  VerifyOptions vo;
  vo.cores = 1;
  vo.explore.max_failures = 1;
  vo.explore.lec_failures = false;
  const ReachabilityPolicy policy({5});
  for (const auto engine :
       {SearchEngineKind::kBfs, SearchEngineKind::kPriority,
        SearchEngineKind::kRandomRestart}) {
    expect_matrix_identical(net, policy, vo, nullptr, engine);
  }
}

TEST(EngineOptMatrix, FrontierEnginesMatchDfsOnOptMatrixWorkloads) {
  // Cross-engine agreement on the uncapped opt-matrix workloads: same
  // verdicts, violations, branch/prune/convergence counters — only the raw
  // transition count (path replay) may differ.
  struct Workload {
    Network net;
    std::unique_ptr<Policy> policy;
    VerifyOptions vo;
  };
  std::vector<Workload> workloads;
  {
    Workload w;
    w.net = figure6_network();
    w.policy = std::make_unique<ReachabilityPolicy>(std::vector<NodeId>{5});
    w.vo.cores = 1;
    w.vo.explore.max_failures = 1;
    w.vo.explore.lec_failures = false;
    workloads.push_back(std::move(w));
  }
  {
    std::mt19937 rng(20260730);
    Workload w;
    w.net = random_ospf_network(rng, 7);
    NodeId src = 0;
    for (NodeId n = 0; n < w.net.topo.node_count(); ++n) {
      if (w.net.device(n).ospf.originated.empty()) {
        src = n;
        break;
      }
    }
    w.policy = std::make_unique<ReachabilityPolicy>(std::vector<NodeId>{src});
    w.vo.cores = 1;
    w.vo.explore.max_failures = 2;
    w.vo.explore.deterministic_nodes = false;  // genuinely branching search
    workloads.push_back(std::move(w));
  }
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const Workload& w = workloads[i];
    const RunFingerprint ref = order_independent(
        fingerprint(w.net, *w.policy, w.vo, true, true, nullptr,
                    SearchEngineKind::kDfs));
    for (const auto engine :
         {SearchEngineKind::kBfs, SearchEngineKind::kPriority,
          SearchEngineKind::kRandomRestart}) {
      const RunFingerprint fp = order_independent(
          fingerprint(w.net, *w.policy, w.vo, true, true, nullptr, engine));
      EXPECT_EQ(fp, ref) << "workload " << i << " engine " << to_string(engine);
    }
  }
}

TEST(FailureEquivalence, LecVerdictMatchesExhaustive) {
  // LEC failure reduction must not change policy verdicts (it may skip
  // symmetric failure sets, but one representative of each violating class
  // survives).
  std::mt19937 rng(555);
  for (int iter = 0; iter < 6; ++iter) {
    const Network net = random_ospf_network(rng, 5 + static_cast<int>(rng() % 4));
    const NodeId src = 1 + rng() % (net.topo.node_count() - 1);
    for (const int k : {1, 2}) {
      bool verdicts[2];
      for (const bool lec : {false, true}) {
        VerifyOptions vo;
        vo.explore.max_failures = k;
        vo.explore.lec_failures = lec;
        Verifier verifier(net, vo);
        const ReachabilityPolicy policy({src});
        verdicts[lec ? 1 : 0] = verifier.verify(policy).holds;
      }
      EXPECT_EQ(verdicts[0], verdicts[1]) << "iter " << iter << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace plankton
