// The paper's soundness/completeness claims as executable properties:
//
//  * Theorems 1-2: the optimized search (consistent executions only +
//    deterministic nodes + decision independence) reaches exactly the same
//    set of converged data planes as naive exhaustive RPVP exploration.
//  * OSPF's converged state matches the reference Dijkstra computation.
//  * Policy verdicts agree across optimization levels and failure handling.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "core/verifier.hpp"
#include "pec/pec.hpp"
#include "rpvp/explorer.hpp"

namespace plankton {
namespace {

class TruePolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "true"; }
  [[nodiscard]] bool check(const ConvergedView&, std::string&) const override {
    return true;
  }
};

/// All converged outcomes of the single routed PEC of `net`, as a set of
/// outcome hashes (data plane + IGP costs + failure set).
std::set<std::uint64_t> converged_set(const Network& net, ExploreOptions opts,
                                      int max_failures) {
  const PecSet pecs = compute_pecs(net);
  const auto routed = pecs.routed();
  EXPECT_EQ(routed.size(), 1u);
  const Pec& pec = pecs.pecs[routed[0]];
  opts.max_failures = max_failures;
  opts.record_outcomes = true;
  opts.find_all_violations = true;
  const TruePolicy policy;
  Explorer ex(net, pec, make_tasks(net, pec), policy, opts);
  const ExploreResult r = ex.run();
  EXPECT_FALSE(r.timed_out);
  std::set<std::uint64_t> out;
  for (const auto& o : r.outcomes) out.insert(o.hash);
  return out;
}

Network random_ospf_network(std::mt19937& rng, int n) {
  Network net;
  for (int i = 0; i < n; ++i) {
    const NodeId id = net.add_device("r" + std::to_string(i));
    net.device(id).ospf.enabled = true;
    net.device(id).ospf.advertise_loopback = false;
  }
  for (int i = 1; i < n; ++i) {
    net.topo.add_link(static_cast<NodeId>(i),
                      static_cast<NodeId>(rng() % static_cast<unsigned>(i)),
                      1 + rng() % 5);
  }
  for (int extra = 0; extra < n / 2; ++extra) {
    const NodeId a = rng() % n;
    const NodeId b = rng() % n;
    if (a != b && net.topo.find_link(a, b) == kNoLink) {
      net.topo.add_link(a, b, 1 + rng() % 5);
    }
  }
  net.device(rng() % n).ospf.originated.push_back(*Prefix::parse("10.0.0.0/16"));
  return net;
}

Network random_bgp_network(std::mt19937& rng, int n) {
  Network net;
  for (int i = 0; i < n; ++i) {
    const NodeId id = net.add_device("r" + std::to_string(i));
    net.device(id).bgp.emplace();
    net.device(id).bgp->asn = 65000 + static_cast<std::uint32_t>(i);
  }
  auto session = [&net](NodeId a, NodeId b) {
    if (net.device(a).bgp->session_with(b) != nullptr) return;
    net.topo.add_link(a, b);
    BgpSession sa;
    sa.peer = b;
    net.device(a).bgp->sessions.push_back(sa);
    BgpSession sb;
    sb.peer = a;
    net.device(b).bgp->sessions.push_back(sb);
  };
  for (int i = 1; i < n; ++i) {
    session(static_cast<NodeId>(i), static_cast<NodeId>(rng() % static_cast<unsigned>(i)));
  }
  for (int extra = 0; extra < n / 2; ++extra) {
    const NodeId a = rng() % n;
    const NodeId b = rng() % n;
    if (a != b) session(a, b);
  }
  net.device(0).bgp->originated.push_back(*Prefix::parse("10.0.0.0/16"));
  // Random local-pref policies create genuine multi-stable-state networks.
  for (NodeId v = 1; v < static_cast<NodeId>(n); ++v) {
    for (auto& s : net.device(v).bgp->sessions) {
      if (rng() % 3 == 0) {
        RouteMapClause clause;
        clause.action.set_local_pref = 50 + 50 * (rng() % 4);
        s.import.clauses.push_back(clause);
      }
    }
  }
  return net;
}

class OspfEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(OspfEquivalence, OptimizedMatchesNaive) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 1337u);
  for (int iter = 0; iter < 5; ++iter) {
    const Network net = random_ospf_network(rng, 4 + static_cast<int>(rng() % 5));
    for (const int k : {0, 1}) {
      ExploreOptions fast;  // all optimizations on
      fast.lec_failures = false;  // identical failure enumeration on both sides
      ExploreOptions naive = ExploreOptions::naive();
      const auto a = converged_set(net, fast, k);
      const auto b = converged_set(net, naive, k);
      EXPECT_EQ(a, b) << "seed " << GetParam() << " iter " << iter << " k=" << k;
      EXPECT_FALSE(a.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OspfEquivalence, ::testing::Range(1, 7));

class BgpEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(BgpEquivalence, OptimizedMatchesNaive) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 7331u);
  for (int iter = 0; iter < 5; ++iter) {
    const Network net = random_bgp_network(rng, 4 + static_cast<int>(rng() % 4));
    for (const int k : {0, 1}) {
      ExploreOptions fast;
      fast.lec_failures = false;
      ExploreOptions naive = ExploreOptions::naive();
      const auto a = converged_set(net, fast, k);
      const auto b = converged_set(net, naive, k);
      EXPECT_EQ(a, b) << "seed " << GetParam() << " iter " << iter << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BgpEquivalence, ::testing::Range(1, 9));

/// Individual optimizations can be disabled without changing the converged
/// set (each one alone must be sound AND complete).
class SingleOptOff : public ::testing::TestWithParam<int> {};

TEST_P(SingleOptOff, ConvergedSetUnchanged) {
  std::mt19937 rng(99);
  const Network net = random_bgp_network(rng, 6);
  ExploreOptions base;
  base.lec_failures = false;
  const auto reference = converged_set(net, base, 1);
  ExploreOptions variant = base;
  switch (GetParam()) {
    case 0: variant.consistent_only = false; break;
    case 1: variant.deterministic_nodes = false; break;
    case 2: variant.decision_independence = false; break;
    case 3: variant.suppress_equivalent = false; break;
  }
  EXPECT_EQ(converged_set(net, variant, 1), reference) << "opt " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Opts, SingleOptOff, ::testing::Range(0, 4));

TEST(OspfConvergence, MatchesDijkstraMetrics) {
  std::mt19937 rng(2024);
  for (int iter = 0; iter < 10; ++iter) {
    const Network net = random_ospf_network(rng, 6 + static_cast<int>(rng() % 6));
    const PecSet pecs = compute_pecs(net);
    const Pec& pec = pecs.pecs[pecs.routed()[0]];
    ExploreOptions opts;
    opts.record_outcomes = true;
    const TruePolicy policy;
    Explorer ex(net, pec, make_tasks(net, pec), policy, opts);
    const ExploreResult r = ex.run();
    ASSERT_EQ(r.outcomes.size(), 1u) << "OSPF must converge deterministically";
    const auto& origins = pec.prefixes[0].ospf_origins;
    const auto expected =
        shortest_path_costs(net.topo, origins, net.topo.no_failures());
    for (NodeId n = 0; n < net.topo.node_count(); ++n) {
      EXPECT_EQ(r.outcomes[0].igp_cost[n], expected[n]) << "node " << n;
    }
  }
}

TEST(FailureEquivalence, LecVerdictMatchesExhaustive) {
  // LEC failure reduction must not change policy verdicts (it may skip
  // symmetric failure sets, but one representative of each violating class
  // survives).
  std::mt19937 rng(555);
  for (int iter = 0; iter < 6; ++iter) {
    const Network net = random_ospf_network(rng, 5 + static_cast<int>(rng() % 4));
    const NodeId src = 1 + rng() % (net.topo.node_count() - 1);
    for (const int k : {1, 2}) {
      bool verdicts[2];
      for (const bool lec : {false, true}) {
        VerifyOptions vo;
        vo.explore.max_failures = k;
        vo.explore.lec_failures = lec;
        Verifier verifier(net, vo);
        const ReachabilityPolicy policy({src});
        verdicts[lec ? 1 : 0] = verifier.verify(policy).holds;
      }
      EXPECT_EQ(verdicts[0], verdicts[1]) << "iter " << iter << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace plankton
