// Visited-backend parity (§4.4, Fig. 9): the exact, hash-compacted, and
// bitstate backends are interchangeable storage policies behind the
// VisitedBackend interface — on the Fig. 9 workloads all three must explore
// the same violation set.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "core/verifier.hpp"
#include "engine/search.hpp"
#include "engine/state_codec.hpp"
#include "engine/visited.hpp"
#include "workload/fat_tree.hpp"
#include "workload/ring.hpp"

namespace plankton {
namespace {

constexpr VisitedKind kAllKinds[] = {
    VisitedKind::kExact, VisitedKind::kHashCompact, VisitedKind::kBitstate};

TEST(VisitedBackends, FactoryAndInsertSemantics) {
  for (const VisitedKind kind : kAllKinds) {
    const auto backend =
        make_visited_backend(kind, VisitedConfig{1 << 16, 4});
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->kind(), kind);
    EXPECT_STREQ(backend->name(), to_string(kind));
    EXPECT_TRUE(backend->insert(42));
    EXPECT_FALSE(backend->insert(42)) << to_string(kind);
    EXPECT_TRUE(backend->insert(43));
    EXPECT_EQ(backend->stored(), 2u) << to_string(kind);
    backend->clear();
    EXPECT_EQ(backend->stored(), 0u);
    EXPECT_TRUE(backend->insert(42)) << "clear() must forget " << to_string(kind);
  }
}

TEST(VisitedBackends, NoFalseFreshAfterInsert) {
  // All backends may over-approximate "seen" (lossy compaction) but must
  // never report an inserted key as new again.
  for (const VisitedKind kind : kAllKinds) {
    const auto backend =
        make_visited_backend(kind, VisitedConfig{1 << 20, 4});
    std::mt19937_64 rng(23);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 20000; ++i) keys.push_back(rng());
    for (const auto k : keys) backend->insert(k);
    for (const auto k : keys) {
      ASSERT_FALSE(backend->insert(k)) << to_string(kind);
    }
  }
}

/// The distinct (pec, failure-set, message) triples of a run, sorted: the
/// observable violation set. Lossy backends may reach the same violating
/// converged state through fewer interleavings (duplicates collapse), but
/// the *set* must match the exact backend's.
std::vector<std::string> violation_set(const VerifyResult& r) {
  std::vector<std::string> out;
  for (const auto& rep : r.reports) {
    for (const auto& v : rep.result.violations) {
      out.push_back(rep.pec_str + "|" + v.failures.str() + "|" + v.message);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

TEST(VisitedBackends, ParityOnFig9DcWaypoint) {
  // The Fig. 9 state-heavy workload: BGP data-center waypoint check with
  // BGP det-node detection disabled (worst-case convergence enumeration),
  // on the broken-statics variant so violations exist.
  FatTreeOptions o;
  o.k = 4;
  o.routing = FatTreeOptions::Routing::kBgpRfc7938;
  o.statics = FatTreeOptions::CoreStatics::kBroken;
  const FatTree ft = make_fat_tree(o);
  const WaypointPolicy policy({ft.edges.back()}, ft.aggs);
  std::vector<std::vector<std::string>> sets;
  std::vector<bool> verdicts;
  for (const VisitedKind kind : kAllKinds) {
    VerifyOptions vo;
    vo.explore.visited = kind;
    vo.explore.bloom_bits = 1 << 22;
    vo.explore.det_nodes_bgp = false;
    vo.explore.find_all_violations = true;
    Verifier v(ft.net, vo);
    const VerifyResult r = v.verify_address(ft.edge_prefixes[0].addr(), policy);
    sets.push_back(violation_set(r));
    verdicts.push_back(r.holds);
  }
  ASSERT_FALSE(sets[0].empty()) << "workload must produce violations";
  EXPECT_EQ(verdicts[0], verdicts[1]) << "hash-compact";
  EXPECT_EQ(verdicts[0], verdicts[2]) << "bitstate";
  EXPECT_EQ(sets[0], sets[1]) << "hash-compact";
  EXPECT_EQ(sets[0], sets[2]) << "bitstate";
}

TEST(VisitedBackends, ParityOnFailureEnumeration) {
  // Fig. 9's uncapped agreement check, scaled down: reachability under all
  // 1-failure scenarios; every backend reports the identical violation set.
  const Network net = make_ring(8);
  const ReachabilityPolicy policy({4});
  std::vector<std::vector<std::string>> sets;
  for (const VisitedKind kind : kAllKinds) {
    VerifyOptions vo;
    vo.explore.visited = kind;
    vo.explore.bloom_bits = 1 << 22;
    vo.explore.max_failures = 2;
    vo.explore.find_all_violations = true;
    vo.explore.suppress_equivalent = false;
    Verifier v(net, vo);
    sets.push_back(violation_set(v.verify(policy)));
  }
  ASSERT_FALSE(sets[0].empty()) << "workload must produce violations";
  EXPECT_EQ(sets[0], sets[1]);
  EXPECT_EQ(sets[0], sets[2]);
}

TEST(StateCodec, MoveOrderIndependence) {
  // Zobrist encoding: the same RIB reached through different move orders
  // has the same key; different RIBs differ.
  StateCodec a, b;
  a.reset(1);
  b.reset(1);
  a.begin_root(7, 9);
  b.begin_root(7, 9);
  a.begin_phase(0);
  b.begin_phase(0);
  a.record(0, 1, kNoRoute, 5);
  a.record(0, 2, kNoRoute, 6);
  b.record(0, 2, kNoRoute, 6);
  b.record(0, 1, kNoRoute, 5);
  EXPECT_EQ(a.state_key(0), b.state_key(0));
  a.record(0, 3, kNoRoute, 7);
  EXPECT_NE(a.state_key(0), b.state_key(0));
  a.record(0, 3, 7, kNoRoute);  // undo
  EXPECT_EQ(a.state_key(0), b.state_key(0));
}

TEST(StateCodec, PhaseContextChainsHistory) {
  // Identical phase-1 RIBs reached under different phase-0 outcomes must
  // not collide: the context chain folds converged history into the key.
  StateCodec a, b;
  a.reset(2);
  b.reset(2);
  a.begin_root(1, 0);
  b.begin_root(1, 0);
  a.begin_phase(0);
  b.begin_phase(0);
  a.record(0, 1, kNoRoute, 5);
  b.record(0, 1, kNoRoute, 6);  // different converged phase-0 state
  a.begin_phase(1);
  b.begin_phase(1);
  EXPECT_NE(a.state_key(1), b.state_key(1));
}

TEST(SearchEngines, FactoryProvidesStrategies) {
  const auto dfs = make_search_engine(SearchEngineKind::kDfs);
  const auto sim = make_search_engine(SearchEngineKind::kSingleExecution);
  ASSERT_NE(dfs, nullptr);
  ASSERT_NE(sim, nullptr);
  EXPECT_STREQ(dfs->name(), "dfs");
  EXPECT_STREQ(sim->name(), "single-execution");
  ExploreOptions opts;
  EXPECT_EQ(opts.engine(), SearchEngineKind::kDfs);
  opts.simulation = true;
  EXPECT_EQ(opts.engine(), SearchEngineKind::kSingleExecution);
}

}  // namespace
}  // namespace plankton
