// Zero-heap-allocation guarantee for the explorer's steady-state hot path.
//
// The acceptance bar for the incremental hot path (PR 2): once an
// exploration has warmed every arena, table and cache, a full
// expand/apply/expand/undo cycle performs *zero* heap allocations. The test
// replaces global operator new/delete with counting versions, runs a
// complete exploration to reach steady state, then drives the public
// SearchModel interface directly and asserts the allocation counter does
// not move.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "pec/pec.hpp"
#include "rpvp/explorer.hpp"
#include "workload/fat_tree.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace plankton {
namespace {

class TruePolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "true"; }
  [[nodiscard]] bool check(const ConvergedView&, std::string&) const override {
    return true;
  }
};

/// Warm the explorer with a full run(), then measure N hot-path cycles
/// through the public SearchModel interface. After run() the phase-0 state
/// is the (already explored) initial RIB of the last prepared failure set,
/// so expand() yields real moves and apply/undo traverse real transitions.
void expect_zero_alloc_cycles(const Network& net, ExploreOptions opts) {
  const PecSet pecs = compute_pecs(net);
  const auto routed = pecs.routed();
  ASSERT_FALSE(routed.empty());
  const Pec& pec = pecs.pecs[routed[0]];
  const TruePolicy policy;
  Explorer ex(net, pec, make_tasks(net, pec), policy, opts);
  (void)ex.run();  // warm every arena, memo and interning table

  std::vector<SearchMove> moves;
  moves.reserve(256);

  // One untimed cycle: lets lazily-grown buffers (the move vector above
  // all) reach their high-water mark before counting starts.
  SearchModel& model = ex;
  moves.clear();
  ASSERT_EQ(model.expand(0, moves, SIZE_MAX), SearchModel::Step::kBranch);
  ASSERT_FALSE(moves.empty());
  model.apply(0, moves.front());
  model.undo(0, moves.front());

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int cycle = 0; cycle < 200; ++cycle) {
    moves.clear();
    const auto step = model.expand(0, moves, SIZE_MAX);
    ASSERT_EQ(step, SearchModel::Step::kBranch);
    for (std::size_t i = 0; i < moves.size(); ++i) {
      model.apply(0, moves[i]);
      model.undo(0, moves[i]);
    }
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "steady-state expand/apply/undo cycles allocated "
      << (after - before) << " times";
}

TEST(HotPathAlloc, OspfFatTreeSteadyStateIsAllocationFree) {
  FatTreeOptions o;
  o.k = 4;
  const FatTree ft = make_fat_tree(o);
  ExploreOptions opts;  // all optimizations on (ad cache + dirty set)
  expect_zero_alloc_cycles(ft.net, opts);
}

TEST(HotPathAlloc, BgpDcSteadyStateIsAllocationFree) {
  FatTreeOptions o;
  o.k = 4;
  o.routing = FatTreeOptions::Routing::kBgpRfc7938;
  const FatTree ft = make_fat_tree(o);
  ExploreOptions opts;
  opts.max_states = 20000;  // bounded warm-up; cycles below stay warm
  expect_zero_alloc_cycles(ft.net, opts);
}

TEST(HotPathAlloc, ReferenceExpandPathIsAllocationFreeToo) {
  // The full-rescan expand (incremental_expand=false) shares the arenas;
  // it must be allocation-free as well, cache on or off.
  FatTreeOptions o;
  o.k = 4;
  const FatTree ft = make_fat_tree(o);
  for (const bool cache : {false, true}) {
    ExploreOptions opts;
    opts.incremental_expand = false;
    opts.ad_cache = cache;
    expect_zero_alloc_cycles(ft.net, opts);
  }
}

}  // namespace
}  // namespace plankton
