// Workload generators: structural invariants the benches rely on.
#include <gtest/gtest.h>

#include <set>

#include "pec/pec.hpp"
#include "sched/deps.hpp"
#include "workload/as_topo.hpp"
#include "workload/enterprise.hpp"
#include "workload/fat_tree.hpp"
#include "workload/ring.hpp"

namespace plankton {
namespace {

TEST(FatTreeGen, SizesMatchFormula) {
  for (const int k : {4, 6, 8, 10}) {
    FatTreeOptions o;
    o.k = k;
    const FatTree ft = make_fat_tree(o);
    EXPECT_EQ(ft.size(), fat_tree_size(k));
    EXPECT_EQ(ft.size(), static_cast<std::size_t>(5 * k * k / 4));
    EXPECT_EQ(ft.edges.size(), static_cast<std::size_t>(k * k / 2));
    EXPECT_EQ(ft.aggs.size(), static_cast<std::size_t>(k * k / 2));
    EXPECT_EQ(ft.cores.size(), static_cast<std::size_t>(k * k / 4));
    // Links: pods k*(k/2)^2 + core k*(k/2)^2.
    EXPECT_EQ(ft.net.topo.link_count(),
              static_cast<std::size_t>(2 * k * (k / 2) * (k / 2)));
  }
  // The paper's N values: 20, 45, 80, 125, 180, 245, 320, 500, 2205.
  EXPECT_EQ(fat_tree_size(4), 20u);
  EXPECT_EQ(fat_tree_size(6), 45u);
  EXPECT_EQ(fat_tree_size(14), 245u);
  EXPECT_EQ(fat_tree_size(42), 2205u);
  EXPECT_EQ(fat_tree_k_for(245), 14);
  EXPECT_EQ(fat_tree_k_for(246), 16);
}

TEST(FatTreeGen, EveryEdgeHasUniquePrefix) {
  FatTreeOptions o;
  o.k = 6;
  const FatTree ft = make_fat_tree(o);
  ASSERT_EQ(ft.edge_prefixes.size(), ft.edges.size());
  std::set<Prefix> unique(ft.edge_prefixes.begin(), ft.edge_prefixes.end());
  EXPECT_EQ(unique.size(), ft.edge_prefixes.size());
  for (std::size_t i = 0; i < ft.edges.size(); ++i) {
    const auto& originated = ft.net.device(ft.edges[i]).ospf.originated;
    ASSERT_EQ(originated.size(), 1u);
    EXPECT_EQ(originated[0], ft.edge_prefixes[i]);
  }
}

TEST(FatTreeGen, MatchingStaticsAgreeWithOspf) {
  FatTreeOptions o;
  o.k = 4;
  o.statics = FatTreeOptions::CoreStatics::kMatching;
  const FatTree ft = make_fat_tree(o);
  // Each core has one static per edge prefix, pointing at an agg adjacent
  // to it in the destination pod.
  for (const NodeId core : ft.cores) {
    const auto& statics = ft.net.device(core).statics;
    EXPECT_EQ(statics.size(), ft.edge_prefixes.size());
    for (const auto& sr : statics) {
      EXPECT_NE(ft.net.topo.find_link(core, sr.via_neighbor), kNoLink)
          << "static next hop must be adjacent";
    }
  }
}

TEST(FatTreeGen, Rfc7938SessionsAreSymmetricAndPerLink) {
  FatTreeOptions o;
  o.k = 4;
  o.routing = FatTreeOptions::Routing::kBgpRfc7938;
  const FatTree ft = make_fat_tree(o);
  EXPECT_TRUE(ft.net.validate().empty());
  std::size_t sessions = 0;
  std::set<std::uint32_t> asns;
  for (const auto& dev : ft.net.devices) {
    ASSERT_TRUE(dev.bgp.has_value());
    sessions += dev.bgp->sessions.size();
    asns.insert(dev.bgp->asn);
  }
  EXPECT_EQ(sessions, 2 * ft.net.topo.link_count());
  EXPECT_EQ(asns.size(), ft.size()) << "one private ASN per device";
}

TEST(AsTopoGen, PublishedNodeCounts) {
  for (const auto& info : rocketfuel_ases()) {
    const AsTopo topo = make_as_topo(info.name);
    EXPECT_EQ(topo.net.topo.node_count(), static_cast<std::size_t>(info.nodes))
        << info.name;
    EXPECT_EQ(topo.loopbacks.size(), topo.net.topo.node_count());
  }
  EXPECT_THROW(make_as_topo("AS9999"), std::invalid_argument);
}

TEST(AsTopoGen, DeterministicForName) {
  const AsTopo a = make_as_topo("AS1755");
  const AsTopo b = make_as_topo("AS1755");
  ASSERT_EQ(a.net.topo.link_count(), b.net.topo.link_count());
  for (LinkId l = 0; l < a.net.topo.link_count(); ++l) {
    EXPECT_EQ(a.net.topo.link(l).a, b.net.topo.link(l).a);
    EXPECT_EQ(a.net.topo.link(l).cost_ab, b.net.topo.link(l).cost_ab);
  }
}

TEST(AsTopoGen, BackboneIsBiconnectedEnough) {
  const AsTopo topo = make_as_topo("AS3967");
  // Every backbone node has degree >= 2 (ring + chords).
  for (const NodeId b : topo.backbone) {
    EXPECT_GE(topo.net.topo.neighbors(b).size(), 2u);
  }
}

TEST(EnterpriseGen, PaperDeviceCounts) {
  for (const auto& info : enterprise_networks()) {
    const Enterprise ent = make_enterprise(info.name);
    EXPECT_EQ(ent.net.topo.node_count(), static_cast<std::size_t>(info.devices))
        << info.name;
    EXPECT_TRUE(ent.net.validate().empty()) << info.name;
  }
}

TEST(EnterpriseGen, LargeNetworksHaveRecursiveRouting) {
  const Enterprise ent = make_enterprise("II");
  bool recursive_static = false;
  for (const auto& dev : ent.net.devices) {
    for (const auto& sr : dev.statics) recursive_static |= sr.via_ip.has_value();
  }
  EXPECT_TRUE(recursive_static) << "the paper's configs use recursive routing";
  EXPECT_TRUE(ent.has_ibgp);
  const PecSet pecs = compute_pecs(ent.net);
  const PecDependencies deps = compute_dependencies(ent.net, pecs);
  EXPECT_TRUE(deps.has_cross_pec_deps());
  bool self_loop = false;
  for (const auto s : deps.self_loop) self_loop |= s != 0;
  EXPECT_TRUE(self_loop) << "the paper observed self-loop PEC dependencies";
}

TEST(EnterpriseGen, TinyNetworksStillValid) {
  for (const char* name : {"VI", "IX"}) {
    const Enterprise ent = make_enterprise(name);
    EXPECT_TRUE(ent.net.validate().empty());
    EXPECT_FALSE(ent.subnets.empty());
  }
}

TEST(RingGen, Structure) {
  const Network net = make_ring(8);
  EXPECT_EQ(net.topo.node_count(), 8u);
  EXPECT_EQ(net.topo.link_count(), 8u);
  for (NodeId n = 0; n < 8; ++n) {
    EXPECT_EQ(net.topo.neighbors(n).size(), 2u);
  }
}

}  // namespace
}  // namespace plankton
