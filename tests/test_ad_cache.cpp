// AdCache unit tests: the advertisement memo must return exactly what a
// recomputation would, hit only when the peer's best route is unchanged
// within a generation, and drop everything on invalidation — in particular
// across upstream-outcome changes, where iBGP advertised() results differ
// for the same (edge, route) inputs.
#include <gtest/gtest.h>

#include "config/network.hpp"
#include "protocols/bgp.hpp"
#include "protocols/ospf.hpp"
#include "rpvp/ad_cache.hpp"

namespace plankton {
namespace {

TEST(AdCache, HitOnRepeatMissOnRouteChange) {
  // 0 --1-- 1 --1-- 2 chain, OSPF everywhere, origin at node 0.
  Network net;
  for (int i = 0; i < 3; ++i) {
    const NodeId id = net.add_device("r" + std::to_string(i));
    net.device(id).ospf.enabled = true;
  }
  net.topo.add_link(0, 1, 1);
  net.topo.add_link(1, 2, 1);
  net.device(0).ospf.originated.push_back(*Prefix::parse("10.0.0.0/16"));

  OspfProcess proc(net, *Prefix::parse("10.0.0.0/16"), {0});
  ModelContext ctx;
  ctx.net = &net;
  proc.prepare(net.topo.no_failures(), ctx);

  AdCache cache;
  cache.reset(1);
  cache.invalidate();
  cache.bind(0, proc, net.topo.node_count());
  SearchStats stats;

  const RouteId origin = proc.origin_route(0, ctx);
  // Node 1's peers are {0, 2}; peer 0 is index 0.
  ASSERT_EQ(proc.peers(1)[0], 0u);

  const RouteId direct = proc.advertised(0, 1, origin, ctx);
  ASSERT_NE(direct, kNoRoute);

  // First consult computes, second hits, and both equal the direct result.
  const RouteId first = cache.advertised(proc, 0, 1, 0, 0, origin, ctx, stats);
  EXPECT_EQ(first, direct);
  EXPECT_EQ(stats.ad_cache_misses, 1u);
  EXPECT_EQ(stats.ad_cache_hits, 0u);
  const RouteId second = cache.advertised(proc, 0, 1, 0, 0, origin, ctx, stats);
  EXPECT_EQ(second, direct);
  EXPECT_EQ(stats.ad_cache_hits, 1u);

  // A different input route on the same edge misses and returns the fresh
  // computation (rib change invalidation).
  const RouteId two_hop = proc.advertised(1, 2, direct, ctx);
  ASSERT_NE(two_hop, kNoRoute);
  ASSERT_EQ(proc.peers(1)[1], 2u);
  const RouteId via2 = cache.advertised(proc, 0, 1, 1, 2, two_hop, ctx, stats);
  EXPECT_EQ(via2, proc.advertised(2, 1, two_hop, ctx));
  EXPECT_EQ(stats.ad_cache_misses, 2u);

  // ⊥ in, ⊥ out without touching the cache.
  const std::uint64_t hits = stats.ad_cache_hits;
  const std::uint64_t misses = stats.ad_cache_misses;
  EXPECT_EQ(cache.advertised(proc, 0, 1, 0, 0, kNoRoute, ctx, stats), kNoRoute);
  EXPECT_EQ(stats.ad_cache_hits, hits);
  EXPECT_EQ(stats.ad_cache_misses, misses);

  // Generation bump (new failure set / upstream outcome): same inputs miss
  // again and recompute to the same interned id.
  cache.invalidate();
  cache.bind(0, proc, net.topo.node_count());
  EXPECT_EQ(cache.advertised(proc, 0, 1, 0, 0, origin, ctx, stats), direct);
  EXPECT_EQ(stats.ad_cache_misses, misses + 1);
}

/// Upstream stand-in with a controllable IGP cost: the iBGP import metric.
class FakeUpstream final : public UpstreamResolver {
 public:
  explicit FakeUpstream(std::uint32_t cost) : cost_(cost) {}
  [[nodiscard]] std::uint32_t igp_cost(NodeId, IpAddr) const override {
    return cost_;
  }
  [[nodiscard]] std::span<const NodeId> nexthops_towards(NodeId,
                                                         IpAddr) const override {
    return {};
  }
  [[nodiscard]] std::uint64_t outcome_hash() const override { return cost_; }

 private:
  std::uint32_t cost_;
};

TEST(AdCache, UpstreamOutcomeChangeIsNotReusedAcrossGenerations) {
  // Two iBGP peers; the import metric of an iBGP-learned route is the IGP
  // cost to the advertising peer's loopback, i.e. upstream-dependent.
  Network net;
  const NodeId a = net.add_device("a", IpAddr(10, 0, 0, 1));
  const NodeId b = net.add_device("b", IpAddr(10, 0, 0, 2));
  net.device(a).bgp.emplace();
  net.device(a).bgp->asn = 65000;
  net.device(b).bgp.emplace();
  net.device(b).bgp->asn = 65000;
  BgpSession sab;
  sab.peer = b;
  sab.ibgp = true;
  net.device(a).bgp->sessions.push_back(sab);
  BgpSession sba;
  sba.peer = a;
  sba.ibgp = true;
  net.device(b).bgp->sessions.push_back(sba);
  net.device(a).bgp->originated.push_back(*Prefix::parse("20.0.0.0/16"));

  BgpProcess proc(net, *Prefix::parse("20.0.0.0/16"), {a});
  ModelContext ctx;
  ctx.net = &net;

  AdCache cache;
  cache.reset(1);
  SearchStats stats;

  const FakeUpstream near(3), far(9);
  RouteId results[2];
  const FakeUpstream* ups[2] = {&near, &far};
  for (int i = 0; i < 2; ++i) {
    ctx.upstream = ups[i];
    proc.prepare(net.topo.no_failures(), ctx);
    // New generation per upstream outcome — what check_failure_set does.
    cache.invalidate();
    cache.bind(0, proc, net.topo.node_count());
    const RouteId origin = proc.origin_route(a, ctx);
    ASSERT_EQ(proc.peers(b).size(), 1u);
    results[i] = cache.advertised(proc, 0, b, 0, a, origin, ctx, stats);
    ASSERT_NE(results[i], kNoRoute);
    // Matches a cache-free computation under the same upstream.
    EXPECT_EQ(results[i], proc.advertised(a, b, origin, ctx));
  }
  // The two outcomes produce different routes (metric differs): had the
  // first generation's entry been reused, results would have aliased.
  EXPECT_NE(results[0], results[1]);
  EXPECT_EQ(ctx.routes.get(results[0]).metric, 3u);
  EXPECT_EQ(ctx.routes.get(results[1]).metric, 9u);
  EXPECT_EQ(stats.ad_cache_hits, 0u);
  EXPECT_EQ(stats.ad_cache_misses, 2u);
}

}  // namespace
}  // namespace plankton
