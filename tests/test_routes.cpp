// Hash-consed path and route tables (the §4.4 state-hashing substrate).
#include <gtest/gtest.h>

#include <random>

#include "engine/visited.hpp"
#include "protocols/route.hpp"

namespace plankton {
namespace {

TEST(PathTable, ConsInterning) {
  PathTable paths;
  const PathId a = paths.cons(3, kEmptyPath);
  const PathId b = paths.cons(3, kEmptyPath);
  EXPECT_EQ(a, b) << "identical cons cells must intern to one id";
  const PathId c = paths.cons(5, a);
  EXPECT_NE(c, a);
  EXPECT_EQ(paths.head(c), 5u);
  EXPECT_EQ(paths.rest(c), a);
}

TEST(PathTable, LengthAndVector) {
  PathTable paths;
  PathId p = kEmptyPath;
  for (NodeId n = 0; n < 5; ++n) p = paths.cons(n, p);
  EXPECT_EQ(paths.length(p), 5u);
  const auto v = paths.to_vector(p);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v.front(), 4u);  // most recently consed = next hop
  EXPECT_EQ(v.back(), 0u);
}

TEST(PathTable, ContainsWalksWholePath) {
  PathTable paths;
  PathId p = kEmptyPath;
  for (const NodeId n : {7u, 3u, 9u}) p = paths.cons(n, p);
  EXPECT_TRUE(paths.contains(p, 7));
  EXPECT_TRUE(paths.contains(p, 9));
  EXPECT_FALSE(paths.contains(p, 4));
  EXPECT_FALSE(paths.contains(kNoPath, 7));
  EXPECT_FALSE(paths.contains(kEmptyPath, 7));
}

TEST(PathTable, SharedSuffixesStoredOnce) {
  PathTable paths;
  PathId spine = kEmptyPath;
  for (NodeId n = 0; n < 10; ++n) spine = paths.cons(n, spine);
  const std::size_t before = paths.size();
  for (NodeId n = 100; n < 200; ++n) paths.cons(n, spine);
  // 100 new cells, not 100 new paths-worth of cells.
  EXPECT_EQ(paths.size(), before + 100);
}

TEST(RouteTable, InternsStructurally) {
  RouteTable routes;
  Route a;
  a.path = 5;
  a.metric = 10;
  Route b = a;
  const RouteId ia = routes.intern(std::move(a));
  const RouteId ib = routes.intern(std::move(b));
  EXPECT_EQ(ia, ib);
  Route c;
  c.path = 5;
  c.metric = 11;
  EXPECT_NE(routes.intern(std::move(c)), ia);
}

TEST(RouteTable, EcmpDistinguishesRoutes) {
  RouteTable routes;
  Route a;
  a.path = 5;
  a.ecmp = {1, 2};
  Route b;
  b.path = 5;
  b.ecmp = {1, 3};
  EXPECT_NE(routes.intern(std::move(a)), routes.intern(std::move(b)));
}

TEST(RouteTable, NexthopsFromEcmpOrHead) {
  PathTable paths;
  RouteTable routes;
  const PathId p = paths.cons(9, kEmptyPath);
  Route single;
  single.path = p;
  const RouteId rs = routes.intern(std::move(single));
  std::vector<NodeId> hops;
  routes.nexthops(rs, paths, hops);
  EXPECT_EQ(hops, (std::vector<NodeId>{9}));

  Route multi;
  multi.path = p;
  multi.ecmp = {2, 9};
  const RouteId rm = routes.intern(std::move(multi));
  routes.nexthops(rm, paths, hops);
  EXPECT_EQ(hops, (std::vector<NodeId>{2, 9}));

  routes.nexthops(kNoRoute, paths, hops);
  EXPECT_TRUE(hops.empty());
}

TEST(VisitedSet, InsertSemantics) {
  VisitedSet v;
  EXPECT_TRUE(v.insert(42));
  EXPECT_FALSE(v.insert(42));
  EXPECT_TRUE(v.insert(43));
  EXPECT_EQ(v.size(), 2u);
  EXPECT_TRUE(v.insert(0));  // hash 0 is remapped, not lost
  EXPECT_FALSE(v.insert(0));
}

TEST(VisitedSet, SurvivesGrowth) {
  VisitedSet v(16);
  std::mt19937_64 rng(5);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 10000; ++i) values.push_back(rng());
  for (const auto x : values) EXPECT_TRUE(v.insert(x));
  for (const auto x : values) EXPECT_FALSE(v.insert(x));
  EXPECT_EQ(v.size(), values.size());
}

TEST(Bloom, NoFalseNegatives) {
  BloomFilter bloom(1 << 16);
  std::mt19937_64 rng(11);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 2000; ++i) values.push_back(rng());
  for (const auto x : values) bloom.insert(x);
  // A Bloom filter may report a new element as seen (false positive) but
  // must never report a seen element as new.
  for (const auto x : values) EXPECT_FALSE(bloom.insert(x));
}

TEST(Bloom, MemoryIsFixed) {
  BloomFilter bloom(1 << 20);
  const std::size_t bytes = bloom.bytes();
  std::mt19937_64 rng(13);
  for (int i = 0; i < 50000; ++i) bloom.insert(rng());
  EXPECT_EQ(bloom.bytes(), bytes);
}

TEST(VisitedBackends, CompactionReducesMemoryAtScale) {
  const auto exact = make_visited_backend(VisitedKind::kExact);
  const auto compact = make_visited_backend(VisitedKind::kHashCompact);
  const auto bits =
      make_visited_backend(VisitedKind::kBitstate, VisitedConfig{1 << 20, 4});
  std::mt19937_64 rng(17);
  for (int i = 0; i < 200000; ++i) {
    const std::uint64_t h = rng();
    exact->insert(h);
    compact->insert(h);
    bits->insert(h);
  }
  EXPECT_GT(exact->bytes(), compact->bytes());
  EXPECT_GT(compact->bytes(), bits->bytes());
  EXPECT_TRUE(exact->exhaustive());
  EXPECT_FALSE(compact->exhaustive());
  EXPECT_FALSE(bits->exhaustive());
}

}  // namespace
}  // namespace plankton
