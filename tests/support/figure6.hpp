// The paper's Figure 6 network, shared between the deterministic-node
// narrative tests (test_bgp_figure6.cpp) and the shard-coordinator
// acceptance tests (test_shard_coordinator.cpp).
#pragma once

#include "config/network.hpp"

namespace plankton::testsupport {

/// Figure 6 topology (each node its own AS, R1 the origin):
///   R1 peers R2, R3; R2 peers R4, R5; R3 peers R4;  R4 peers R6; R5 peers R6.
///   R5's import from R2 sets the highest local-pref; R6's import from R5
///   sets a LOWER local-pref ("Lower local pref for R5").
struct Figure6 {
  Network net;
  NodeId r1, r2, r3, r4, r5, r6;

  Figure6() {
    r1 = add("R1");
    r2 = add("R2");
    r3 = add("R3");
    r4 = add("R4");
    r5 = add("R5");
    r6 = add("R6");
    session(r1, r2);
    session(r1, r3);
    session(r2, r4);
    session(r2, r5);
    session(r3, r4);
    session(r4, r6);
    session(r5, r6);
    net.device(r1).bgp->originated.push_back(*Prefix::parse("10.0.0.0/16"));
    // R5 prefers routes from R2 with the globally highest local-pref.
    RouteMapClause high;
    high.action.set_local_pref = 300;
    net.device(r5).bgp->session_with(r2)->import.clauses.push_back(high);
    // R6 depresses routes learned from R5.
    RouteMapClause low;
    low.action.set_local_pref = 50;
    net.device(r6).bgp->session_with(r5)->import.clauses.push_back(low);
  }

  NodeId add(const char* name) {
    const NodeId id = net.add_device(name);
    net.device(id).bgp.emplace();
    net.device(id).bgp->asn = 65000 + id;
    return id;
  }
  void session(NodeId a, NodeId b) {
    net.topo.add_link(a, b);
    BgpSession sa;
    sa.peer = b;
    net.device(a).bgp->sessions.push_back(sa);
    BgpSession sb;
    sb.peer = a;
    net.device(b).bgp->sessions.push_back(sb);
  }
};

}  // namespace plankton::testsupport
