// Seeded random network/config instances for the differential fuzz harness
// (tests/test_engine_differential.cpp).
//
// Every instance is a pure function of its 64-bit seed: topology family
// (ring / fat-tree / random OSPF / random eBGP / mixed protocol+static),
// device configuration (including random local-pref route maps, the source
// of genuine multi-stable-state searches), policy, and failure budget. A
// failing fuzz instance therefore reproduces from the seed alone — print it,
// re-run with it, done (docs/architecture.md, "Exploration strategies").
//
// Sizes are deliberately tiny (3–8 devices): the harness compares *complete*
// explorations across every engine, so instances must be exhaustively
// checkable in milliseconds.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "config/network.hpp"
#include "policy/policy.hpp"
#include "rpvp/explorer.hpp"
#include "workload/fat_tree.hpp"
#include "workload/ring.hpp"

namespace plankton::testsupport {

struct RandomInstance {
  Network net;
  std::string kind;                 ///< topology family, for failure messages
  std::unique_ptr<Policy> policy;
  int max_failures = 0;
  /// Seeded §4-optimization toggles (max_failures already applied): engines
  /// must agree under *any* optimization mix, and the partially-unoptimized
  /// searches are where the move tree genuinely branches.
  ExploreOptions explore;
  /// Single-prefix pure-eBGP instances can additionally be cross-checked
  /// against the SPVP message-passing oracle (protocols/spvp.hpp).
  bool spvp_eligible = false;
  Prefix bgp_prefix;
  std::vector<NodeId> bgp_origins;
};

namespace detail {

using Rng = std::mt19937_64;

inline NodeId pick_node(Rng& rng, std::size_t n) {
  return static_cast<NodeId>(rng() % n);
}

/// Connected random graph: spanning tree + `extra` random chords.
inline void random_edges(Rng& rng, std::size_t n, std::size_t extra,
                         const std::function<void(NodeId, NodeId)>& edge) {
  for (std::size_t i = 1; i < n; ++i) {
    edge(static_cast<NodeId>(i), static_cast<NodeId>(rng() % i));
  }
  for (std::size_t e = 0; e < extra; ++e) {
    const NodeId a = pick_node(rng, n);
    const NodeId b = pick_node(rng, n);
    if (a != b) edge(a, b);
  }
}

inline void add_bgp_session(Network& net, NodeId a, NodeId b) {
  if (net.device(a).bgp->session_with(b) != nullptr) return;
  if (net.topo.find_link(a, b) == kNoLink) net.topo.add_link(a, b);
  BgpSession sa;
  sa.peer = b;
  net.device(a).bgp->sessions.push_back(sa);
  BgpSession sb;
  sb.peer = a;
  net.device(b).bgp->sessions.push_back(sb);
}

/// Random import local-pref clauses: the ingredient that turns BGP instances
/// into genuine multi-stable-state searches (wedgies, DISAGREE gadgets).
inline void sprinkle_local_prefs(Rng& rng, Network& net) {
  for (NodeId v = 0; v < net.topo.node_count(); ++v) {
    if (!net.device(v).bgp) continue;
    for (auto& s : net.device(v).bgp->sessions) {
      if (rng() % 3 == 0) {
        RouteMapClause clause;
        clause.action.set_local_pref = 50 + 50 * (rng() % 4);
        s.import.clauses.push_back(clause);
      }
    }
  }
}

inline Network random_ospf_net(Rng& rng, std::size_t n) {
  Network net;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId id = net.add_device("r" + std::to_string(i));
    net.device(id).ospf.enabled = true;
    net.device(id).ospf.advertise_loopback = false;
  }
  random_edges(rng, n, n / 2, [&](NodeId a, NodeId b) {
    if (net.topo.find_link(a, b) == kNoLink) {
      net.topo.add_link(a, b, 1 + rng() % 5);
    }
  });
  net.device(pick_node(rng, n))
      .ospf.originated.push_back(*Prefix::parse("10.0.0.0/16"));
  return net;
}

inline Network random_bgp_net(Rng& rng, std::size_t n, std::vector<NodeId>& origins) {
  Network net;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId id = net.add_device("r" + std::to_string(i));
    net.device(id).bgp.emplace();
    net.device(id).bgp->asn = 65000 + static_cast<std::uint32_t>(i);
  }
  random_edges(rng, n, n / 2,
               [&](NodeId a, NodeId b) { add_bgp_session(net, a, b); });
  origins = {0};
  net.device(0).bgp->originated.push_back(*Prefix::parse("10.0.0.0/16"));
  sprinkle_local_prefs(rng, net);
  return net;
}

/// OSPF domain plus static routes: drop statics, adjacency statics shadowing
/// a sub-prefix, and (sometimes) a recursive via-IP static towards another
/// device's loopback — the cross-PEC dependency case.
inline Network mixed_net(Rng& rng, std::size_t n) {
  Network net;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId id = net.add_device(
        "r" + std::to_string(i),
        IpAddr(10, 255, static_cast<std::uint8_t>(i), 1));
    net.device(id).ospf.enabled = true;
  }
  random_edges(rng, n, n / 2, [&](NodeId a, NodeId b) {
    if (net.topo.find_link(a, b) == kNoLink) {
      net.topo.add_link(a, b, 1 + rng() % 3);
    }
  });
  net.device(pick_node(rng, n))
      .ospf.originated.push_back(*Prefix::parse("10.0.0.0/16"));
  const NodeId s = pick_node(rng, n);
  switch (rng() % 3) {
    case 0: {  // null route for a sub-prefix (policy-visible blackhole)
      StaticRoute sr;
      sr.dst = *Prefix::parse("10.0.128.0/17");
      sr.drop = true;
      net.device(s).statics.push_back(sr);
      break;
    }
    case 1: {  // adjacency static shadowing the OSPF route
      const auto neigh = net.topo.neighbors(s);
      if (!neigh.empty()) {
        StaticRoute sr;
        sr.dst = *Prefix::parse("10.0.0.0/17");
        sr.via_neighbor = neigh[rng() % neigh.size()].neighbor;
        net.device(s).statics.push_back(sr);
      }
      break;
    }
    default: {  // recursive static via another device's loopback
      const NodeId t = pick_node(rng, n);
      if (t != s) {
        StaticRoute sr;
        sr.dst = *Prefix::parse("10.0.0.0/17");
        sr.via_ip = net.device(t).loopback;
        net.device(s).statics.push_back(sr);
      }
      break;
    }
  }
  return net;
}

inline std::unique_ptr<Policy> random_policy(Rng& rng, const Network& net,
                                             std::span<const NodeId> avoid) {
  const std::size_t n = net.topo.node_count();
  const auto pick_source = [&]() -> NodeId {
    for (int tries = 0; tries < 16; ++tries) {
      const NodeId c = pick_node(rng, n);
      bool bad = false;
      for (const NodeId a : avoid) bad = bad || a == c;
      if (!bad) return c;
    }
    return static_cast<NodeId>(n - 1);
  };
  switch (rng() % 4) {
    case 0: return std::make_unique<ReachabilityPolicy>(
        std::vector<NodeId>{pick_source()});
    case 1: return std::make_unique<LoopFreedomPolicy>();
    case 2: return std::make_unique<BlackholeFreedomPolicy>(
        std::vector<NodeId>{pick_source()});
    default:
      return std::make_unique<BoundedPathLengthPolicy>(
          std::vector<NodeId>{pick_source()},
          static_cast<std::uint32_t>(1 + rng() % n));
  }
}

}  // namespace detail

/// Deterministically builds fuzz instance `seed`.
inline RandomInstance make_random_instance(std::uint64_t seed) {
  detail::Rng rng(seed * 0x9e3779b97f4a7c15ull + 0x5eed);
  RandomInstance inst;
  inst.bgp_prefix = *Prefix::parse("10.0.0.0/16");
  switch (rng() % 5) {
    case 0: {  // OSPF ring (degrades to a path under failures)
      const int n = 4 + static_cast<int>(rng() % 4);
      inst.net = make_ring(n, 1 + rng() % 3);
      inst.kind = "ring/" + std::to_string(n);
      inst.max_failures = static_cast<int>(rng() % 3);
      break;
    }
    case 1: {  // smallest fat tree, OSPF or RFC 7938 eBGP
      FatTreeOptions o;
      o.k = 2;
      const bool bgp = rng() % 2 == 0;
      o.routing = bgp ? FatTreeOptions::Routing::kBgpRfc7938
                      : FatTreeOptions::Routing::kOspf;
      inst.net = make_fat_tree(o).net;
      inst.kind = bgp ? "fat-tree-bgp/2" : "fat-tree-ospf/2";
      inst.max_failures = static_cast<int>(rng() % 2);
      break;
    }
    case 2: {  // random OSPF graph
      const std::size_t n = 4 + rng() % 5;
      inst.net = detail::random_ospf_net(rng, n);
      inst.kind = "ospf-rand/" + std::to_string(n);
      inst.max_failures = static_cast<int>(rng() % 2);
      break;
    }
    case 3: {  // random eBGP graph with local-pref route maps
      const std::size_t n = 3 + rng() % 4;
      inst.net = detail::random_bgp_net(rng, n, inst.bgp_origins);
      inst.kind = "bgp-rand/" + std::to_string(n);
      inst.max_failures = static_cast<int>(rng() % 2);
      // The SPVP oracle enumerates every message interleaving; cap its
      // instances at 5 nodes to keep the cross-check affordable.
      inst.spvp_eligible = n <= 5;
      break;
    }
    default: {  // OSPF + static mix (incl. recursive cross-PEC statics)
      const std::size_t n = 4 + rng() % 3;
      inst.net = detail::mixed_net(rng, n);
      inst.kind = "mixed/" + std::to_string(n);
      inst.max_failures = static_cast<int>(rng() % 2);
      break;
    }
  }
  inst.policy = detail::random_policy(rng, inst.net, inst.bgp_origins);

  // Seeded optimization mix. Exploration equivalence must hold under any
  // combination (each §4 reduction is individually sound and complete), and
  // disabling deterministic-node execution / ECMP merging is what turns the
  // mostly-linear optimized searches into genuinely branching move trees.
  inst.explore.max_failures = inst.max_failures;
  if (rng() % 2 == 0) inst.explore.deterministic_nodes = false;
  if (rng() % 4 == 0) inst.explore.decision_independence = false;
  if (rng() % 4 == 0) inst.explore.policy_pruning = false;
  if (rng() % 3 == 0) inst.explore.lec_failures = false;
  const bool small = inst.net.topo.node_count() <= 6 && inst.max_failures <= 1;
  if (small && rng() % 3 == 0) inst.explore.merge_updates = false;
  return inst;
}

}  // namespace plankton::testsupport
