// FIB assembly (LPM + admin distance + recursive resolution) and the
// forwarding-graph walks behind every policy.
#include <gtest/gtest.h>

#include "dataplane/fib.hpp"
#include "pec/pec.hpp"
#include "policy/policy.hpp"

namespace plankton {
namespace {

/// Line a--b--c; c originates; builds a PEC and hand-written RIBs.
struct LineFixture {
  Network net;
  PecSet pecs;
  ModelContext ctx;
  std::vector<RouteId> ospf_rib;

  LineFixture() {
    const NodeId a = net.add_device("a");
    const NodeId b = net.add_device("b");
    const NodeId c = net.add_device("c");
    net.topo.add_link(a, b, 1);
    net.topo.add_link(b, c, 1);
    for (NodeId n = 0; n < 3; ++n) {
      net.device(n).ospf.enabled = true;
      net.device(n).ospf.advertise_loopback = false;
    }
    net.device(c).ospf.originated.push_back(*Prefix::parse("10.0.0.0/24"));
    pecs = compute_pecs(net);
    ctx.net = &net;
    // RIB: c = origin (ε), b -> c, a -> b -> c.
    Route origin;
    origin.path = kEmptyPath;
    const RouteId rc = ctx.routes.intern(std::move(origin));
    Route rb;
    rb.path = ctx.paths.cons(c, kEmptyPath);
    rb.metric = 1;
    const RouteId rbi = ctx.routes.intern(std::move(rb));
    Route ra;
    ra.path = ctx.paths.cons(b, ctx.paths.cons(c, kEmptyPath));
    ra.metric = 2;
    const RouteId rai = ctx.routes.intern(std::move(ra));
    ospf_rib = {rai, rbi, rc};
  }

  [[nodiscard]] const Pec& pec() { return pecs.pecs[pecs.routed()[0]]; }
  [[nodiscard]] DataPlane build(const FailureSet& failures) {
    const TaskRib rib{0, Protocol::kOspf, ospf_rib};
    return build_dataplane(net, pec(), failures, {{rib}}, ctx);
  }
};

TEST(Fib, BasicForwardingChain) {
  LineFixture fx;
  const DataPlane dp = fx.build(fx.net.topo.no_failures());
  EXPECT_EQ(dp.at(0).kind, FwdKind::kForward);
  EXPECT_EQ(dp.at(0).nexthops, (std::vector<NodeId>{1}));
  EXPECT_EQ(dp.at(1).nexthops, (std::vector<NodeId>{2}));
  EXPECT_EQ(dp.at(2).kind, FwdKind::kLocal);
}

TEST(Fib, StaticBeatsOspfByAdminDistance) {
  LineFixture fx;
  // a gets a static route for the same exact prefix via... itself has only
  // neighbor b; point it at b anyway: same next hop but source must be static.
  StaticRoute sr;
  sr.dst = *Prefix::parse("10.0.0.0/24");
  sr.via_neighbor = 1;
  fx.net.device(0).statics.push_back(sr);
  fx.pecs = compute_pecs(fx.net);
  const DataPlane dp = fx.build(fx.net.topo.no_failures());
  EXPECT_EQ(dp.at(0).source, Protocol::kStatic);
}

TEST(Fib, StaticDropCreatesBlackhole) {
  LineFixture fx;
  StaticRoute sr;
  sr.dst = *Prefix::parse("10.0.0.0/24");
  sr.drop = true;
  fx.net.device(0).statics.push_back(sr);
  fx.pecs = compute_pecs(fx.net);
  const DataPlane dp = fx.build(fx.net.topo.no_failures());
  EXPECT_EQ(dp.at(0).kind, FwdKind::kDrop);
  EXPECT_EQ(dp.at(0).source, Protocol::kStatic);
}

TEST(Fib, StaticViaFailedLinkFallsThroughToOspf) {
  LineFixture fx;
  StaticRoute sr;
  sr.dst = *Prefix::parse("10.0.0.0/24");
  sr.via_neighbor = 1;
  fx.net.device(0).statics.push_back(sr);
  fx.pecs = compute_pecs(fx.net);
  FailureSet failed(fx.net.topo.link_count());
  failed.fail(0);  // a--b link down: static not installable
  const DataPlane dp = fx.build(failed);
  // OSPF route (stale RIB in this hand-built fixture) still installs.
  EXPECT_EQ(dp.at(0).source, Protocol::kOspf);
}

TEST(Fib, LpmPrefersMoreSpecificPrefix) {
  Network net;
  const NodeId a = net.add_device("a");
  const NodeId b = net.add_device("b");
  const NodeId c = net.add_device("c");
  net.topo.add_link(a, b);
  net.topo.add_link(a, c);
  for (NodeId n = 0; n < 3; ++n) net.device(n).ospf.enabled = true;
  // /16 originated by b, /24 (more specific) by c.
  net.device(b).ospf.originated.push_back(*Prefix::parse("10.1.0.0/16"));
  net.device(c).ospf.originated.push_back(*Prefix::parse("10.1.2.0/24"));
  const PecSet pecs = compute_pecs(net);
  const Pec& pec = pecs.pecs[pecs.find(IpAddr(10, 1, 2, 9))];
  ASSERT_EQ(pec.prefixes.size(), 2u);

  ModelContext ctx;
  ctx.net = &net;
  Route origin;
  origin.path = kEmptyPath;
  const RouteId ro = ctx.routes.intern(std::move(origin));
  Route via_b;
  via_b.path = ctx.paths.cons(b, kEmptyPath);
  Route via_c;
  via_c.path = ctx.paths.cons(c, kEmptyPath);
  const RouteId rvb = ctx.routes.intern(std::move(via_b));
  const RouteId rvc = ctx.routes.intern(std::move(via_c));
  // Task 0 = /24 (most specific first), task 1 = /16.
  const std::vector<RouteId> rib24 = {rvc, kNoRoute, ro};
  const std::vector<RouteId> rib16 = {rvb, ro, kNoRoute};
  const TaskRib t24{0, Protocol::kOspf, rib24};
  const TaskRib t16{1, Protocol::kOspf, rib16};
  const DataPlane dp = build_dataplane(net, pec, net.topo.no_failures(),
                                       {{t24, t16}}, ctx);
  EXPECT_EQ(dp.at(a).nexthops, (std::vector<NodeId>{c}))
      << "/24 must win over /16 at node a";
}

TEST(Walk, DeliveredPath) {
  LineFixture fx;
  const DataPlane dp = fx.build(fx.net.topo.no_failures());
  const WalkStats w = walk_from(dp, 0);
  EXPECT_TRUE(w.delivered_all);
  EXPECT_FALSE(w.dropped);
  EXPECT_FALSE(w.looped);
  EXPECT_EQ(w.max_hops, 2u);
}

TEST(Walk, DetectsLoop) {
  DataPlane dp;
  dp.entries.resize(3);
  dp.entries[0] = {FwdKind::kForward, {1}, Protocol::kStatic, 0};
  dp.entries[1] = {FwdKind::kForward, {2}, Protocol::kStatic, 0};
  dp.entries[2] = {FwdKind::kForward, {0}, Protocol::kStatic, 0};
  const WalkStats w = walk_from(dp, 0);
  EXPECT_TRUE(w.looped);
  EXPECT_FALSE(w.delivered_any);
}

TEST(Walk, EcmpBranchesAllCounted) {
  DataPlane dp;
  dp.entries.resize(4);
  dp.entries[0] = {FwdKind::kForward, {1, 2}, Protocol::kOspf, 0};
  dp.entries[1] = {FwdKind::kForward, {3}, Protocol::kOspf, 0};
  dp.entries[2] = {FwdKind::kDrop, {}, Protocol::kOspf, 0};
  dp.entries[3] = {FwdKind::kLocal, {}, Protocol::kOspf, 0};
  const WalkStats w = walk_from(dp, 0);
  EXPECT_TRUE(w.delivered_any);
  EXPECT_FALSE(w.delivered_all) << "one branch drops";
  EXPECT_TRUE(w.dropped);
}

TEST(Walk, WaypointCrossing) {
  DataPlane dp;
  dp.entries.resize(4);
  dp.entries[0] = {FwdKind::kForward, {1, 2}, Protocol::kOspf, 0};
  dp.entries[1] = {FwdKind::kForward, {3}, Protocol::kOspf, 0};
  dp.entries[2] = {FwdKind::kForward, {3}, Protocol::kOspf, 0};
  dp.entries[3] = {FwdKind::kLocal, {}, Protocol::kOspf, 0};
  const std::vector<NodeId> wp1{1};
  EXPECT_FALSE(walk_from(dp, 0, wp1).hit_waypoint_all)
      << "the branch via 2 bypasses waypoint 1";
  const std::vector<NodeId> wp_both{1, 2};
  EXPECT_TRUE(walk_from(dp, 0, wp_both).hit_waypoint_all);
  const std::vector<NodeId> wp_dst{3};
  EXPECT_TRUE(walk_from(dp, 0, wp_dst).hit_waypoint_all);
}

TEST(Walk, EcmpFanoutIsPolynomial) {
  // 2-wide ECMP diamond chain: exponentially many paths, walk must stay fast.
  DataPlane dp;
  constexpr int kLayers = 40;
  dp.entries.resize(2 * kLayers + 2);
  for (int i = 0; i < kLayers; ++i) {
    const NodeId left = static_cast<NodeId>(2 * i + 1);
    const NodeId right = static_cast<NodeId>(2 * i + 2);
    const NodeId next_left = static_cast<NodeId>(2 * i + 3);
    const NodeId next_right = static_cast<NodeId>(2 * i + 4);
    if (i + 1 < kLayers) {
      dp.entries[left] = {FwdKind::kForward, {next_left, next_right}, Protocol::kOspf, 0};
      dp.entries[right] = {FwdKind::kForward, {next_left, next_right}, Protocol::kOspf, 0};
    } else {
      const NodeId sink = static_cast<NodeId>(2 * kLayers + 1);
      dp.entries[left] = {FwdKind::kForward, {sink}, Protocol::kOspf, 0};
      dp.entries[right] = {FwdKind::kForward, {sink}, Protocol::kOspf, 0};
    }
  }
  dp.entries[0] = {FwdKind::kForward, {1, 2}, Protocol::kOspf, 0};
  dp.entries[2 * kLayers + 1] = {FwdKind::kLocal, {}, Protocol::kOspf, 0};
  const WalkStats w = walk_from(dp, 0);  // must terminate instantly
  EXPECT_TRUE(w.delivered_all);
  EXPECT_EQ(w.max_hops, static_cast<std::uint32_t>(kLayers + 1));
}

TEST(PolicySignature, DiscriminatesAndMatches) {
  DataPlane a;
  a.entries.resize(3);
  a.entries[0] = {FwdKind::kForward, {1}, Protocol::kOspf, 0};
  a.entries[1] = {FwdKind::kForward, {2}, Protocol::kOspf, 0};
  a.entries[2] = {FwdKind::kLocal, {}, Protocol::kOspf, 0};
  DataPlane b = a;  // identical
  DataPlane c = a;
  c.entries[1] = {FwdKind::kDrop, {}, Protocol::kOspf, 0};
  const std::vector<NodeId> sources{0};
  const std::vector<NodeId> interesting{1};
  EXPECT_EQ(policy_signature(a, sources, interesting, 3),
            policy_signature(b, sources, interesting, 3));
  EXPECT_NE(policy_signature(a, sources, interesting, 3),
            policy_signature(c, sources, interesting, 3));
}

}  // namespace
}  // namespace plankton
