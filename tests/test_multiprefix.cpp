// Multi-prefix PECs end to end: overlapping prefixes run as separate RPVP
// phases whose converged states combine through longest-prefix match in the
// FIB (paper §3.1's point that prefix lengths matter within a PEC, and
// §3.3's per-prefix execution).
#include <gtest/gtest.h>

#include "config/parser.hpp"
#include "core/verifier.hpp"

namespace plankton {
namespace {

TEST(MultiPrefix, MoreSpecificOspfWinsOverCovering) {
  // hub--spec and hub--cover: cover originates 10.0.0.0/8, spec originates
  // 10.1.0.0/16. Traffic for 10.1.x.x at hub must go to spec, other 10.x to
  // cover.
  const ParsedNetwork parsed = parse_network_config(R"(
node hub
node spec
node cover
link hub spec
link hub cover
ospf hub enable
ospf spec originate 10.1.0.0/16
ospf cover originate 10.0.0.0/8
)");
  const Network& net = parsed.net;
  const NodeId hub = *net.find_device("hub");
  Verifier v(net, {});
  // The 10.1/16 PEC contains both prefixes; the 10/8-only PEC just one.
  const PecId pec_spec = v.pecs().find(IpAddr(10, 1, 2, 3));
  const PecId pec_cover = v.pecs().find(IpAddr(10, 200, 0, 1));
  EXPECT_NE(pec_spec, pec_cover);
  EXPECT_EQ(v.pecs().pecs[pec_spec].prefixes.size(), 2u);
  EXPECT_EQ(v.pecs().pecs[pec_cover].prefixes.size(), 1u);

  const WaypointPolicy to_spec({hub}, {*net.find_device("spec")});
  EXPECT_TRUE(v.verify_address(IpAddr(10, 1, 2, 3), to_spec).holds);
  const WaypointPolicy to_cover({hub}, {*net.find_device("cover")});
  EXPECT_TRUE(v.verify_address(IpAddr(10, 200, 0, 1), to_cover).holds);
  EXPECT_FALSE(v.verify_address(IpAddr(10, 1, 2, 3), to_cover).holds)
      << "/16 PEC must use the more specific route";
}

TEST(MultiPrefix, StaticOnCoveringPrefixLosesToSpecificOspf) {
  const ParsedNetwork parsed = parse_network_config(R"(
node hub
node spec
node sink
link hub spec
link hub sink
ospf hub enable
ospf spec originate 10.1.0.0/16
static hub 10.0.0.0/8 via sink
)");
  const Network& net = parsed.net;
  const NodeId hub = *net.find_device("hub");
  Verifier v(net, {});
  // 10.1.x: the /16 OSPF route (more specific) shadows the /8 static despite
  // the static's lower admin distance.
  const WaypointPolicy to_spec({hub}, {*net.find_device("spec")});
  EXPECT_TRUE(v.verify_address(IpAddr(10, 1, 9, 9), to_spec).holds);
  // 10.200.x: only the static applies; traffic goes to sink and blackholes.
  const BlackholeFreedomPolicy no_drop({hub});
  EXPECT_FALSE(v.verify_address(IpAddr(10, 200, 0, 1), no_drop).holds);
}

TEST(MultiPrefix, OspfAndBgpOnSamePrefixPreferEbgpByAdminDistance) {
  // dst originates P into OSPF; an eBGP island also carries P; at the
  // border, eBGP (AD 20) beats OSPF (AD 110).
  const ParsedNetwork parsed = parse_network_config(R"(
node border
node igp
node ebgp1
link border igp
link border ebgp1
ospf border enable
ospf igp originate 10.5.0.0/16
bgp border asn 65001
bgp ebgp1 asn 65002
bgp-session border ebgp1 ebgp
bgp ebgp1 originate 10.5.0.0/16
)");
  const Network& net = parsed.net;
  const NodeId border = *net.find_device("border");
  Verifier v(net, {});
  const WaypointPolicy via_bgp({border}, {*net.find_device("ebgp1")});
  EXPECT_TRUE(v.verify_address(IpAddr(10, 5, 1, 1), via_bgp).holds)
      << "eBGP admin distance must beat OSPF for the same prefix";
}

TEST(MultiPrefix, PhasesShareCoordinatedFailures) {
  // Overlapping prefixes from different origins; under one failure both
  // phases must see the same topology (no mixed failure states).
  const ParsedNetwork parsed = parse_network_config(R"(
node a
node b
node c
link a b
link b c
link a c
ospf a enable
ospf b originate 10.0.0.0/8
ospf c originate 10.1.0.0/16
)");
  const Network& net = parsed.net;
  VerifyOptions vo;
  vo.explore.max_failures = 1;
  Verifier v(net, vo);
  const NodeId a = *net.find_device("a");
  const ReachabilityPolicy reach({a});
  // Both destinations stay reachable under any single failure (triangle).
  EXPECT_TRUE(v.verify_address(IpAddr(10, 1, 0, 1), reach).holds);
  EXPECT_TRUE(v.verify_address(IpAddr(10, 200, 0, 1), reach).holds);
}

TEST(MultiPrefix, AnycastPrefixDeliversToNearestOrigin) {
  // Both ends of a line originate the same prefix (anycast): the middle
  // node reaches it in one hop.
  const ParsedNetwork parsed = parse_network_config(R"(
node l
node m
node r
link l m
link m r
ospf l originate 10.9.9.0/24
ospf m enable
ospf r originate 10.9.9.0/24
)");
  const Network& net = parsed.net;
  Verifier v(net, {});
  const NodeId m = *net.find_device("m");
  const BoundedPathLengthPolicy one_hop({m}, 1);
  EXPECT_TRUE(v.verify_address(IpAddr(10, 9, 9, 1), one_hop).holds);
}

}  // namespace
}  // namespace plankton
