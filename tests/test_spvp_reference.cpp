// Theorem 1 in executable form: RPVP (as explored by the optimized checker)
// reaches exactly the converged states of the extended SPVP message-passing
// reference model — plus cross-validation of the two BGP advertisement
// transformation implementations.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "pec/pec.hpp"
#include "protocols/bgp.hpp"
#include "protocols/bgp_common.hpp"
#include "protocols/spvp.hpp"
#include "rpvp/explorer.hpp"

namespace plankton {
namespace {

/// Policy that records each converged state's per-node best paths.
class CollectorPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "collector"; }
  [[nodiscard]] bool check(const ConvergedView& view, std::string&) const override {
    spvp::ConvergedState cs(view.net.topo.node_count());
    for (NodeId n = 0; n < view.net.topo.node_count(); ++n) {
      const RouteId r = view.ribs[0].routes[n];
      if (r != kNoRoute) {
        cs[n] = view.ctx.paths.to_vector(view.ctx.routes.get(r).path);
      }
    }
    collected.insert(std::move(cs));
    return true;
  }
  [[nodiscard]] bool supports_equivalence() const override { return false; }

  mutable std::set<spvp::ConvergedState> collected;
};

std::set<spvp::ConvergedState> rpvp_converged(const Network& net) {
  const PecSet pecs = compute_pecs(net);
  const Pec& pec = pecs.pecs[pecs.routed()[0]];
  ExploreOptions opts;
  opts.find_all_violations = true;
  opts.suppress_equivalent = false;
  const CollectorPolicy policy;
  Explorer ex(net, pec, make_tasks(net, pec), policy, opts);
  const ExploreResult r = ex.run();
  EXPECT_FALSE(r.timed_out);
  return std::move(policy.collected);
}

Network tiny_bgp(std::mt19937& rng, int n, int extra_links, bool random_lp) {
  Network net;
  for (int i = 0; i < n; ++i) {
    const NodeId id = net.add_device("r" + std::to_string(i));
    net.device(id).bgp.emplace();
    net.device(id).bgp->asn = 65000 + static_cast<std::uint32_t>(i);
  }
  auto session = [&net](NodeId a, NodeId b) {
    if (net.device(a).bgp->session_with(b) != nullptr) return;
    net.topo.add_link(a, b);
    BgpSession sa;
    sa.peer = b;
    net.device(a).bgp->sessions.push_back(sa);
    BgpSession sb;
    sb.peer = a;
    net.device(b).bgp->sessions.push_back(sb);
  };
  for (int i = 1; i < n; ++i) {
    session(static_cast<NodeId>(i), static_cast<NodeId>(rng() % static_cast<unsigned>(i)));
  }
  for (int e = 0; e < extra_links; ++e) {
    const NodeId a = rng() % n;
    const NodeId b = rng() % n;
    if (a != b) session(a, b);
  }
  net.device(0).bgp->originated.push_back(*Prefix::parse("10.0.0.0/16"));
  if (random_lp) {
    for (NodeId v = 1; v < static_cast<NodeId>(n); ++v) {
      for (auto& s : net.device(v).bgp->sessions) {
        if (rng() % 2 == 0) {
          RouteMapClause clause;
          clause.action.set_local_pref = 50 + 50 * (rng() % 4);
          s.import.clauses.push_back(clause);
        }
      }
    }
  }
  return net;
}

class SpvpVsRpvp : public ::testing::TestWithParam<int> {};

TEST_P(SpvpVsRpvp, ConvergedSetsMatch) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 31u);
  for (int iter = 0; iter < 4; ++iter) {
    const Network net =
        tiny_bgp(rng, 3 + static_cast<int>(rng() % 2), static_cast<int>(rng() % 2),
                 /*random_lp=*/true);
    const std::vector<NodeId> origins{0};
    const spvp::SpvpResult spvp_result =
        spvp::explore_spvp(net, *Prefix::parse("10.0.0.0/16"), origins, 500000);
    if (spvp_result.state_limit_hit) continue;  // too big to enumerate, skip
    const auto rpvp_result = rpvp_converged(net);
    EXPECT_EQ(spvp_result.converged, rpvp_result)
        << "seed " << GetParam() << " iter " << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpvpVsRpvp, ::testing::Range(1, 9));

TEST(SpvpReference, DisagreeGadgetHasTwoStates) {
  Network net;
  for (int i = 0; i < 3; ++i) {
    const NodeId id = net.add_device("r" + std::to_string(i));
    net.device(id).bgp.emplace();
    net.device(id).bgp->asn = 100 + static_cast<std::uint32_t>(i);
  }
  auto session = [&net](NodeId a, NodeId b) {
    net.topo.add_link(a, b);
    BgpSession sa;
    sa.peer = b;
    net.device(a).bgp->sessions.push_back(sa);
    BgpSession sb;
    sb.peer = a;
    net.device(b).bgp->sessions.push_back(sb);
  };
  session(0, 1);
  session(0, 2);
  session(1, 2);
  net.device(0).bgp->originated.push_back(*Prefix::parse("10.0.0.0/16"));
  RouteMapClause prefer;
  prefer.action.set_local_pref = 200;
  net.device(1).bgp->session_with(2)->import.clauses.push_back(prefer);
  net.device(2).bgp->session_with(1)->import.clauses.push_back(prefer);

  const std::vector<NodeId> origins{0};
  const auto r = spvp::explore_spvp(net, *Prefix::parse("10.0.0.0/16"), origins);
  ASSERT_FALSE(r.state_limit_hit);
  EXPECT_EQ(r.converged.size(), 2u);
  EXPECT_EQ(r.converged, rpvp_converged(net));
}

/// The two advertisement-transformation implementations (hot-path interned
/// vs reference value-based) must agree on random inputs.
TEST(BgpTransform, AdapterMatchesReference) {
  std::mt19937 rng(808);
  for (int iter = 0; iter < 40; ++iter) {
    const Network net = tiny_bgp(rng, 4, 2, /*random_lp=*/true);
    const Prefix prefix = *Prefix::parse("10.0.0.0/16");
    const std::vector<NodeId> origins{0};
    BgpProcess process(net, prefix, origins);
    ModelContext ctx;
    ctx.net = &net;
    process.prepare(net.topo.no_failures(), ctx);

    // Build a random held route at node p: a short path toward the origin.
    for (NodeId p = 0; p < net.topo.node_count(); ++p) {
      for (const auto& s : net.device(p).bgp->sessions) {
        const NodeId n = s.peer;
        BgpAdvert held;  // p's current best: direct route from the origin
        if (p == 0) {
          held.egress = 0;
        } else {
          held.path = {0};
          held.as_path_len = 1;
          held.local_pref = 100 + 50 * (rng() % 3);
          held.egress = p;
        }
        // Reference.
        const auto expected = bgp_transform(net, prefix, p, n, held, nullptr);
        // Adapter: intern the held route, run advertised(), expand.
        Route held_route;
        held_route.path = held.path.empty()
                              ? kEmptyPath
                              : ctx.paths.cons(held.path[0], kEmptyPath);
        held_route.local_pref = held.local_pref;
        held_route.as_path_len = held.as_path_len;
        held_route.egress = held.egress;
        const RouteId held_id = ctx.routes.intern(std::move(held_route));
        const RouteId got = process.advertised(p, n, held_id, ctx);
        if (!expected.has_value()) {
          EXPECT_EQ(got, kNoRoute) << "p=" << p << " n=" << n;
          continue;
        }
        ASSERT_NE(got, kNoRoute) << "p=" << p << " n=" << n;
        const Route& r = ctx.routes.get(got);
        EXPECT_EQ(r.local_pref, expected->local_pref);
        EXPECT_EQ(r.as_path_len, expected->as_path_len);
        EXPECT_EQ(r.communities, expected->communities);
        EXPECT_EQ(ctx.paths.to_vector(r.path), expected->path);
      }
    }
  }
}

}  // namespace
}  // namespace plankton
