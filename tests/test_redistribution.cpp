// Route redistribution (static -> OSPF, OSPF -> BGP): one of the protocol
// characteristics the paper's hand-created correctness tests cover (§5).
#include <gtest/gtest.h>

#include "config/parser.hpp"
#include "core/verifier.hpp"

namespace plankton {
namespace {

TEST(Redistribution, StaticIntoOspf) {
  // srv--gw--core: gw holds a static for a server prefix (via srv) and
  // redistributes statics into OSPF, so core learns the route dynamically.
  const ParsedNetwork parsed = parse_network_config(R"(
node srv
node gw
node core
link srv gw
link gw core
ospf gw enable
ospf core enable
ospf gw redistribute-static
static gw 10.50.0.0/16 via srv
)");
  const Network& net = parsed.net;
  Verifier v(net, {});
  const NodeId core = *net.find_device("core");
  const ReachabilityPolicy policy({core});
  const VerifyResult r = v.verify_address(IpAddr(10, 50, 1, 1), policy);
  // Delivery: core -> gw (OSPF redistributed) -> srv (static)... srv has no
  // config, so the static forwards to srv where the walk drops — the
  // redistribution itself is what is under test: core must FORWARD, not drop.
  ASSERT_EQ(r.reports.size(), 1u);
  EXPECT_GT(r.pecs_verified, 0u);
  // Core's behavior is visible via the violation (srv drops) naming srv,
  // not core: the packet made it across the OSPF domain.
  if (!r.holds) {
    EXPECT_EQ(r.first_violation(net.topo).find("core"), std::string::npos)
        << r.first_violation(net.topo);
  }
}

TEST(Redistribution, StaticIntoOspfEndToEnd) {
  // Same, but the server prefix terminates at a device that owns it: gw
  // drops traffic locally (null route) and redistributes — every OSPF
  // router forwards toward gw.
  const ParsedNetwork parsed = parse_network_config(R"(
node gw
node a
node b
link gw a
link a b
ospf gw redistribute-static
ospf a enable
ospf b enable
static gw 10.60.0.0/16 drop
)");
  const Network& net = parsed.net;
  Verifier v(net, {});
  const NodeId b = *net.find_device("b");
  const BoundedPathLengthPolicy policy({b}, 5);
  const VerifyResult r = v.verify_address(IpAddr(10, 60, 0, 1), policy);
  // b forwards a -> gw (2 hops, within bound). The traffic is then null
  // routed at gw, but bounded-path-length only inspects path length.
  EXPECT_TRUE(r.holds) << r.first_violation(net.topo);
}

TEST(Redistribution, OspfIntoBgp) {
  // OSPF island (i1-i2) with border b1 redistributing into an eBGP spine
  // (b1-x-y): y must learn the island prefix via BGP.
  const ParsedNetwork parsed = parse_network_config(R"(
node i2
node b1
node x
node y
link i2 b1
link b1 x
link x y
ospf i2 originate 10.70.0.0/16
ospf b1 enable
bgp b1 asn 65001
bgp x asn 65002
bgp y asn 65003
bgp-session b1 x ebgp
bgp-session x y ebgp
bgp b1 redistribute-ospf
)");
  // redistribute-ospf exports b1's OWN ospf originations; in this setup the
  // prefix is originated by i2, so also originate at b1 for the test:
  Network net = parsed.net;
  net.device(*net.find_device("b1")).ospf.originated.push_back(
      *Prefix::parse("10.70.0.0/16"));
  Verifier v(net, {});
  const NodeId y = *net.find_device("y");
  const ReachabilityPolicy policy({y});
  const VerifyResult r = v.verify_address(IpAddr(10, 70, 0, 1), policy);
  EXPECT_TRUE(r.holds) << r.first_violation(net.topo);
}

TEST(Redistribution, ParserRejectsExtraArgs) {
  EXPECT_THROW(parse_network_config("node a\nbgp a redistribute-ospf now\n"),
               ConfigParseError);
}

}  // namespace
}  // namespace plankton
