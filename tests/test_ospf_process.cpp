// OSPF RPVP adapter: advertisement arithmetic, ranking, ECMP merging,
// SPF-order deterministic-node selection, protocol-domain masking.
#include <gtest/gtest.h>

#include "protocols/ospf.hpp"

namespace plankton {
namespace {

/// Square: a--b--d, a--c--d with unit costs (two equal-cost paths a->d).
struct Square {
  Network net;
  NodeId a, b, c, d;
  Square() {
    a = net.add_device("a");
    b = net.add_device("b");
    c = net.add_device("c");
    d = net.add_device("d");
    net.topo.add_link(a, b, 1);
    net.topo.add_link(a, c, 1);
    net.topo.add_link(b, d, 1);
    net.topo.add_link(c, d, 1);
    for (NodeId n = 0; n < 4; ++n) net.device(n).ospf.enabled = true;
  }
};

TEST(OspfProcess, AdvertisedAccumulatesCost) {
  Square fx;
  OspfProcess proc(fx.net, *Prefix::parse("10.0.0.0/24"), {fx.d});
  ModelContext ctx;
  ctx.net = &fx.net;
  proc.prepare(fx.net.topo.no_failures(), ctx);
  const RouteId origin = proc.origin_route(fx.d, ctx);
  const RouteId at_b = proc.advertised(fx.d, fx.b, origin, ctx);
  ASSERT_NE(at_b, kNoRoute);
  EXPECT_EQ(ctx.routes.get(at_b).metric, 1u);
  const RouteId at_a = proc.advertised(fx.b, fx.a, at_b, ctx);
  ASSERT_NE(at_a, kNoRoute);
  EXPECT_EQ(ctx.routes.get(at_a).metric, 2u);
}

TEST(OspfProcess, AdvertisedRejectsLoops) {
  Square fx;
  OspfProcess proc(fx.net, *Prefix::parse("10.0.0.0/24"), {fx.d});
  ModelContext ctx;
  ctx.net = &fx.net;
  proc.prepare(fx.net.topo.no_failures(), ctx);
  const RouteId origin = proc.origin_route(fx.d, ctx);
  const RouteId at_b = proc.advertised(fx.d, fx.b, origin, ctx);
  const RouteId at_a = proc.advertised(fx.b, fx.a, at_b, ctx);
  // Re-advertising a's route back to b would loop through b.
  EXPECT_EQ(proc.advertised(fx.a, fx.b, at_a, ctx), kNoRoute);
}

TEST(OspfProcess, MergeProducesCanonicalEcmp) {
  Square fx;
  OspfProcess proc(fx.net, *Prefix::parse("10.0.0.0/24"), {fx.d});
  ModelContext ctx;
  ctx.net = &fx.net;
  proc.prepare(fx.net.topo.no_failures(), ctx);
  const RouteId origin = proc.origin_route(fx.d, ctx);
  const RouteId via_b = proc.advertised(fx.b, fx.a, proc.advertised(fx.d, fx.b, origin, ctx), ctx);
  const RouteId via_c = proc.advertised(fx.c, fx.a, proc.advertised(fx.d, fx.c, origin, ctx), ctx);
  const RouteId m1 = proc.merge(fx.a, std::vector<RouteId>{via_b, via_c}, ctx);
  const RouteId m2 = proc.merge(fx.a, std::vector<RouteId>{via_c, via_b}, ctx);
  EXPECT_EQ(m1, m2) << "merge must be order-insensitive (canonical ECMP)";
  const Route& merged = ctx.routes.get(m1);
  EXPECT_EQ(merged.ecmp, (std::vector<NodeId>{fx.b, fx.c}));
  EXPECT_EQ(merged.metric, 2u);
}

TEST(OspfProcess, MergePrefersLowerMetricOverEcmp) {
  Square fx;
  OspfProcess proc(fx.net, *Prefix::parse("10.0.0.0/24"), {fx.d});
  ModelContext ctx;
  ctx.net = &fx.net;
  proc.prepare(fx.net.topo.no_failures(), ctx);
  Route cheap;
  cheap.path = ctx.paths.cons(fx.b, kEmptyPath);
  cheap.metric = 1;
  Route expensive;
  expensive.path = ctx.paths.cons(fx.c, kEmptyPath);
  expensive.metric = 5;
  const RouteId rc = ctx.routes.intern(std::move(cheap));
  const RouteId re = ctx.routes.intern(std::move(expensive));
  const RouteId m = proc.merge(fx.a, std::vector<RouteId>{re, rc}, ctx);
  EXPECT_EQ(ctx.routes.get(m).metric, 1u);
  EXPECT_TRUE(ctx.routes.get(m).ecmp.empty()) << "single winner: no ECMP set";
}

TEST(OspfProcess, CompareRanksByMetricOnly) {
  Square fx;
  OspfProcess proc(fx.net, *Prefix::parse("10.0.0.0/24"), {fx.d});
  ModelContext ctx;
  ctx.net = &fx.net;
  Route r1;
  r1.path = ctx.paths.cons(fx.b, kEmptyPath);
  r1.metric = 3;
  Route r2;
  r2.path = ctx.paths.cons(fx.c, kEmptyPath);
  r2.metric = 4;
  const RouteId i1 = ctx.routes.intern(std::move(r1));
  const RouteId i2 = ctx.routes.intern(std::move(r2));
  EXPECT_GT(proc.compare(fx.a, i1, i2, ctx), 0);
  EXPECT_LT(proc.compare(fx.a, i2, i1, ctx), 0);
  EXPECT_GT(proc.compare(fx.a, i1, kNoRoute, ctx), 0);
  EXPECT_EQ(proc.compare(fx.a, i1, i1, ctx), 0);
}

TEST(OspfProcess, DeterministicNodeFollowsSpfOrder) {
  Square fx;
  OspfProcess proc(fx.net, *Prefix::parse("10.0.0.0/24"), {fx.d});
  ModelContext ctx;
  ctx.net = &fx.net;
  proc.prepare(fx.net.topo.no_failures(), ctx);
  EXPECT_EQ(proc.spf_dist(fx.d), 0u);
  EXPECT_EQ(proc.spf_dist(fx.b), 1u);
  EXPECT_EQ(proc.spf_dist(fx.a), 2u);
  // Among enabled {a, b}, b (closer to the origin) must be picked.
  std::vector<RouteId> rib(4, kNoRoute);
  bool tie_ok = true;
  const std::vector<NodeId> enabled{fx.a, fx.b};
  const NodeId pick = proc.deterministic_node(enabled, StateView(rib), ctx, tie_ok);
  EXPECT_EQ(pick, fx.b);
  EXPECT_FALSE(tie_ok);
}

TEST(OspfProcess, PrepareMasksNonOspfDomains) {
  // a--x--d where x does not run OSPF: a must be unreachable through x.
  Network net;
  const NodeId a = net.add_device("a");
  const NodeId x = net.add_device("x");
  const NodeId d = net.add_device("d");
  net.topo.add_link(a, x, 1);
  net.topo.add_link(x, d, 1);
  net.device(a).ospf.enabled = true;
  net.device(d).ospf.enabled = true;  // x stays non-OSPF
  OspfProcess proc(net, *Prefix::parse("10.0.0.0/24"), {d});
  ModelContext ctx;
  ctx.net = &net;
  proc.prepare(net.topo.no_failures(), ctx);
  EXPECT_EQ(proc.spf_dist(a), kInfiniteCost);
  EXPECT_TRUE(proc.peers(a).empty());
}

TEST(OspfProcess, FailuresRemovePeers) {
  Square fx;
  OspfProcess proc(fx.net, *Prefix::parse("10.0.0.0/24"), {fx.d});
  ModelContext ctx;
  ctx.net = &fx.net;
  FailureSet failures(fx.net.topo.link_count());
  failures.fail(fx.net.topo.find_link(fx.a, fx.b));
  proc.prepare(failures, ctx);
  const auto peers = proc.peers(fx.a);
  EXPECT_EQ(std::vector<NodeId>(peers.begin(), peers.end()),
            (std::vector<NodeId>{fx.c}));
  EXPECT_EQ(proc.spf_dist(fx.a), 2u) << "still reachable via c";
}

TEST(OspfProcess, AsymmetricCostsEndToEnd) {
  // a--b with cost 1 forward, 10 backward: a's route to b's prefix costs 1;
  // b's to a's prefix costs 10.
  Network net;
  const NodeId a = net.add_device("a");
  const NodeId b = net.add_device("b");
  net.topo.add_link(a, b, 1, 10);
  net.device(a).ospf.enabled = true;
  net.device(b).ospf.enabled = true;
  OspfProcess toward_b(net, *Prefix::parse("10.1.0.0/24"), {b});
  ModelContext ctx;
  ctx.net = &net;
  toward_b.prepare(net.topo.no_failures(), ctx);
  EXPECT_EQ(toward_b.spf_dist(a), 1u);
  OspfProcess toward_a(net, *Prefix::parse("10.2.0.0/24"), {a});
  toward_a.prepare(net.topo.no_failures(), ctx);
  EXPECT_EQ(toward_a.spf_dist(b), 10u);
}

}  // namespace
}  // namespace plankton
