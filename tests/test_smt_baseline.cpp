// Mini-Minesweeper baseline correctness: encoder results must agree with the
// reference Dijkstra computation and with Plankton's verdicts.
#include <gtest/gtest.h>

#include <random>

#include "baselines/smt/encoder.hpp"
#include "core/verifier.hpp"
#include "workload/fat_tree.hpp"
#include "workload/ring.hpp"

namespace plankton {
namespace {

TEST(SmtBaseline, ShortestPathsMatchDijkstra) {
  FatTreeOptions o;
  o.k = 4;
  const FatTree ft = make_fat_tree(o);
  smt::MsVerifier ms(ft.net, {});
  std::vector<std::uint32_t> costs;
  const smt::MsResult r = ms.solve_shortest_paths(ft.edges[0], costs);
  ASSERT_TRUE(r.holds);
  ASSERT_FALSE(r.timed_out);
  const std::vector<NodeId> origin{ft.edges[0]};
  const auto expected =
      shortest_path_costs(ft.net.topo, origin, ft.net.topo.no_failures());
  ASSERT_EQ(costs.size(), expected.size());
  for (std::size_t i = 0; i < costs.size(); ++i) {
    EXPECT_EQ(costs[i], expected[i]) << "node " << i;
  }
}

TEST(SmtBaseline, LoopCheckPassesOnCleanFatTree) {
  FatTreeOptions o;
  o.k = 4;
  o.statics = FatTreeOptions::CoreStatics::kMatching;
  const FatTree ft = make_fat_tree(o);
  smt::MsVerifier ms(ft.net, {});
  EXPECT_TRUE(ms.check_loop().holds);
}

TEST(SmtBaseline, LoopCheckFailsOnBrokenStatics) {
  FatTreeOptions o;
  o.k = 4;
  o.statics = FatTreeOptions::CoreStatics::kBroken;
  const FatTree ft = make_fat_tree(o);
  smt::MsVerifier ms(ft.net, {});
  EXPECT_FALSE(ms.check_loop().holds);
}

TEST(SmtBaseline, RingReachabilityUnderFailures) {
  const Network net = make_ring(6);
  smt::MsOptions one;
  one.max_failures = 1;
  EXPECT_TRUE(smt::MsVerifier(net, one).check_reachability(3).holds);
  smt::MsOptions two;
  two.max_failures = 2;
  EXPECT_FALSE(smt::MsVerifier(net, two).check_reachability(3).holds);
}

TEST(SmtBaseline, BoundedLengthOnFatTree) {
  FatTreeOptions o;
  o.k = 4;
  const FatTree ft = make_fat_tree(o);
  smt::MsVerifier ms(ft.net, {});
  // Fat-tree diameter: edge->agg->core->agg->edge = 4 hops.
  EXPECT_TRUE(ms.check_bounded_length(ft.edges[2], 4).holds);
  EXPECT_FALSE(ms.check_bounded_length(ft.edges[2], 3).holds);
}

/// Random connected OSPF networks: baseline and Plankton must agree on
/// reachability under 0 and 1 failures (the key cross-tool property test —
/// the paper used Minesweeper agreement as "an additional correctness
/// check for Plankton").
class CrossTool : public ::testing::TestWithParam<int> {};

TEST_P(CrossTool, ReachabilityVerdictsAgree) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 7919u);
  for (int iter = 0; iter < 6; ++iter) {
    const int n = 5 + static_cast<int>(rng() % 6);
    Network net;
    for (int i = 0; i < n; ++i) {
      const NodeId id = net.add_device("r" + std::to_string(i));
      net.device(id).ospf.enabled = true;
      net.device(id).ospf.advertise_loopback = false;
    }
    for (int i = 1; i < n; ++i) {  // random tree + extra chords
      net.topo.add_link(static_cast<NodeId>(i),
                        static_cast<NodeId>(rng() % static_cast<unsigned>(i)),
                        1 + rng() % 10);
    }
    for (int extra = 0; extra < n / 2; ++extra) {
      const NodeId a = rng() % n;
      const NodeId b = rng() % n;
      if (a != b && net.topo.find_link(a, b) == kNoLink) {
        net.topo.add_link(a, b, 1 + rng() % 10);
      }
    }
    net.device(0).ospf.originated.push_back(Prefix(IpAddr(10, 0, 0, 0), 24));
    const NodeId src = 1 + rng() % (n - 1);

    for (const int k : {0, 1}) {
      smt::MsOptions mo;
      mo.max_failures = k;
      const bool ms_holds = smt::MsVerifier(net, mo).check_reachability(src).holds;

      VerifyOptions vo;
      vo.explore.max_failures = k;
      Verifier verifier(net, vo);
      const ReachabilityPolicy policy({src});
      const bool pk_holds = verifier.verify(policy).holds;
      EXPECT_EQ(ms_holds, pk_holds)
          << "seed " << GetParam() << " iter " << iter << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossTool, ::testing::Range(1, 7));

}  // namespace
}  // namespace plankton
