// Unit tests for the bit-blasting layer beneath the Minesweeper-style
// baseline: adders/comparators vs integer arithmetic, sequential-counter
// cardinality constraints vs brute force.
#include <gtest/gtest.h>

#include <random>

#include "baselines/smt/bitvec.hpp"

namespace plankton::smt {
namespace {

TEST(BitVec, ConstantsRoundTrip) {
  sat::Solver solver;
  Circuit c(solver);
  for (const std::uint64_t v : {0ull, 1ull, 5ull, 255ull, 1000ull}) {
    const BitVec bv = BitVec::constant(c, v, 12);
    ASSERT_EQ(solver.solve(), sat::Outcome::kSat);
    EXPECT_EQ(bv.model_value(c), v);
  }
}

TEST(BitVec, AdditionMatchesIntegers) {
  std::mt19937 rng(91);
  for (int iter = 0; iter < 25; ++iter) {
    sat::Solver solver;
    Circuit c(solver);
    const std::uint64_t a = rng() % 2000;
    const std::uint64_t b = rng() % 2000;
    const BitVec sum = BitVec::add(c, BitVec::constant(c, a, 14),
                                   BitVec::constant(c, b, 14));
    ASSERT_EQ(solver.solve(), sat::Outcome::kSat);
    EXPECT_EQ(sum.model_value(c), (a + b) & 0x3fff) << a << "+" << b;
  }
}

TEST(BitVec, ComparisonsMatchIntegers) {
  std::mt19937 rng(92);
  for (int iter = 0; iter < 40; ++iter) {
    sat::Solver solver;
    Circuit c(solver);
    const std::uint64_t a = rng() % 500;
    const std::uint64_t b = rng() % 500;
    const BitVec va = BitVec::constant(c, a, 10);
    const BitVec vb = BitVec::constant(c, b, 10);
    const Lit lt = BitVec::ult(c, va, vb);
    const Lit le = BitVec::ule(c, va, vb);
    const Lit eq = BitVec::eq(c, va, vb);
    ASSERT_EQ(solver.solve(), sat::Outcome::kSat);
    EXPECT_EQ(c.lit_model(lt), a < b) << a << " " << b;
    EXPECT_EQ(c.lit_model(le), a <= b);
    EXPECT_EQ(c.lit_model(eq), a == b);
  }
}

TEST(BitVec, FreeVectorConstrainedByEquality) {
  sat::Solver solver;
  Circuit c(solver);
  const BitVec x(c, 8);
  solver.add_unit(BitVec::eq_const(c, x, 77));
  ASSERT_EQ(solver.solve(), sat::Outcome::kSat);
  EXPECT_EQ(x.model_value(c), 77u);
}

TEST(BitVec, MuxSelects) {
  sat::Solver solver;
  Circuit c(solver);
  const Lit cond = c.fresh();
  const BitVec m = BitVec::mux(c, cond, BitVec::constant(c, 11, 8),
                               BitVec::constant(c, 22, 8));
  solver.add_unit(cond);
  ASSERT_EQ(solver.solve(), sat::Outcome::kSat);
  EXPECT_EQ(m.model_value(c), 11u);
}

/// at_most_k must admit exactly the assignments with <= k true bits.
TEST(Cardinality, AtMostKMatchesBruteForce) {
  for (const int n : {3, 5, 6}) {
    for (int k = 0; k <= n; ++k) {
      // Count models of at_most_k over n free variables.
      sat::Solver solver;
      Circuit c(solver);
      std::vector<Lit> vars;
      for (int i = 0; i < n; ++i) vars.push_back(c.fresh());
      c.at_most_k(vars, static_cast<std::uint32_t>(k));
      // Enumerate all assignments by adding blocking clauses.
      int models = 0;
      while (solver.solve() == sat::Outcome::kSat) {
        ++models;
        ASSERT_LE(models, 1 << n) << "runaway enumeration";
        std::vector<Lit> block;
        for (const Lit v : vars) {
          block.push_back(c.lit_model(v) ? sat::negate(v) : v);
        }
        if (!solver.add_clause(std::move(block))) break;
      }
      int expected = 0;
      for (int mask = 0; mask < (1 << n); ++mask) {
        if (std::popcount(static_cast<unsigned>(mask)) <= k) ++expected;
      }
      // Auxiliary counter variables are free only when their value is
      // forced; blocking on the original vars counts each projection once.
      EXPECT_GE(models, expected) << "n=" << n << " k=" << k;
      // Every enumerated model satisfied the bound by construction; verify
      // no over-k assignment sneaks in: assert a known-bad assignment fails.
      sat::Solver s2;
      Circuit c2(s2);
      std::vector<Lit> v2;
      for (int i = 0; i < n; ++i) v2.push_back(c2.fresh());
      c2.at_most_k(v2, static_cast<std::uint32_t>(k));
      for (int i = 0; i <= k && i < n; ++i) s2.add_unit(v2[i]);
      if (k < n) {
        s2.add_unit(v2[k]);  // force k+1 true
        EXPECT_EQ(s2.solve(), sat::Outcome::kUnsat) << "n=" << n << " k=" << k;
      }
    }
  }
}

TEST(Cardinality, ExactlyOne) {
  sat::Solver solver;
  Circuit c(solver);
  std::vector<Lit> vars;
  for (int i = 0; i < 5; ++i) vars.push_back(c.fresh());
  c.exactly_one(vars);
  ASSERT_EQ(solver.solve(), sat::Outcome::kSat);
  int trues = 0;
  for (const Lit v : vars) trues += c.lit_model(v) ? 1 : 0;
  EXPECT_EQ(trues, 1);
  // All-false is unsatisfiable.
  sat::Solver s2;
  Circuit c2(s2);
  std::vector<Lit> v2;
  for (int i = 0; i < 4; ++i) v2.push_back(c2.fresh());
  c2.exactly_one(v2);
  for (const Lit v : v2) s2.add_unit(sat::negate(v));
  EXPECT_EQ(s2.solve(), sat::Outcome::kUnsat);
}

TEST(Circuit, GateSimplifications) {
  sat::Solver solver;
  Circuit c(solver);
  const Lit x = c.fresh();
  EXPECT_EQ(c.and2(c.true_lit(), x), x);
  EXPECT_EQ(c.and2(c.false_lit(), x), c.false_lit());
  EXPECT_EQ(c.and2(x, x), x);
  EXPECT_EQ(c.and2(x, sat::negate(x)), c.false_lit());
  EXPECT_EQ(c.xor2(x, c.false_lit()), x);
  EXPECT_EQ(c.xor2(x, x), c.false_lit());
  EXPECT_EQ(c.ite(c.true_lit(), x, c.false_lit()), x);
}

}  // namespace
}  // namespace plankton::smt
