// Serve daemon resilience (src/serve/server.cpp): the multiplexed accept
// loop. A client stalled mid-frame must never block the others (the old
// null-timeout select() wedge), connections beyond the cap are refused with
// a parseable reply, SIGTERM drains gracefully (cache saved, journal
// compacted, exit 0), and the serve-side socket-fault hooks shed exactly the
// faulted connection while the daemon keeps serving.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "serve/journal.hpp"
#include "serve/server.hpp"
#include "serve/serve.hpp"

namespace plankton::serve {
namespace {

const char* kRing = R"(
node r0 loopback 10.0.0.1
node r1 loopback 10.0.0.2
node r2 loopback 10.0.0.3
node r3 loopback 10.0.0.4
link r0 r1 cost 10
link r1 r2 cost 10
link r2 r3 cost 10
link r3 r0 cost 10
ospf r0 no-loopback
ospf r1 no-loopback
ospf r2 no-loopback
ospf r3 no-loopback
ospf r0 originate 10.1.0.0/24
ospf r1 originate 10.2.0.0/24
ospf r2 originate 10.3.0.0/24
ospf r3 originate 10.4.0.0/24
)";

std::string tmp_path(const std::string& name) {
  const std::string p = ::testing::TempDir() + "/" + name;
  std::remove(p.c_str());
  return p;
}

/// Connects to a daemon's unix socket, retrying while it boots.
int connect_retry(const std::string& path) {
  std::string err;
  for (int attempt = 0; attempt < 200; ++attempt) {
    const int fd = connect_unix(path, err);
    if (fd >= 0) return fd;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ADD_FAILURE() << "daemon never came up on " << path << ": " << err;
  return -1;
}

bool stats_roundtrip(int fd, std::string& error) {
  if (!send_frame(fd, sched::MsgType::kCacheStats, "")) {
    error = "send failed";
    return false;
  }
  sched::FrameDecoder dec;
  sched::Frame f;
  if (!recv_frame(fd, dec, f, error)) return false;
  return f.type == sched::MsgType::kCacheStats;
}

/// Asks the daemon on `fd` to shut down (reply may legitimately be eaten by
/// an armed serve-side fault — shutdown proceeds regardless).
void request_shutdown(int fd) {
  (void)send_frame(fd, sched::MsgType::kShutdown, "");
  sched::FrameDecoder dec;
  sched::Frame f;
  std::string err;
  (void)recv_frame(fd, dec, f, err);
}

// ---------------------------------------------------------------------------
// The stalled-writer wedge (satellite fix): pre-fix this test never finishes
// ---------------------------------------------------------------------------

TEST(ServeResilience, StalledMidFrameClientDoesNotBlockOthers) {
  // The regression: the old loop serviced one blocking read at a time with a
  // null select() timeout, so a client that sent *half* a frame and went
  // quiet wedged every other connection forever. Post-fix the loop
  // multiplexes with a periodic tick and a per-client mid-frame deadline.
  const std::string sock = tmp_path("resil_stall.sock");
  ServerOptions so;
  so.unix_path = sock;
  so.read_deadline_ms = 200;
  std::thread server([&] { run_server(so); });

  const int staller = connect_retry(sock);
  ASSERT_GE(staller, 0);
  std::string half;
  sched::encode_frame(half, sched::MsgType::kCacheStats, "");
  ASSERT_GT(half.size(), 4u);
  ASSERT_EQ(::send(staller, half.data(), 4, MSG_NOSIGNAL), 4)
      << "the stalled client parks 4 header bytes and goes silent";

  // A second client must still get answers while the first is wedged.
  const int live = connect_retry(sock);
  ASSERT_GE(live, 0);
  std::string err;
  EXPECT_TRUE(stats_roundtrip(live, err))
      << "stalled peer blocked the daemon: " << err;

  // And the staller is evicted once its mid-frame deadline passes: the
  // daemon closes the socket, which surfaces here as EOF.
  char byte;
  ssize_t r = -1;
  for (int attempt = 0; attempt < 100; ++attempt) {
    r = ::recv(staller, &byte, 1, MSG_DONTWAIT);
    if (r == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(r, 0) << "overdue mid-frame client was never disconnected";
  ::close(staller);

  request_shutdown(live);
  ::close(live);
  server.join();
  std::remove(sock.c_str());
}

// ---------------------------------------------------------------------------
// Connection cap: refusal is a parseable reply, not a hang or an RST
// ---------------------------------------------------------------------------

TEST(ServeResilience, ConnectionCapRefusesGracefully) {
  const std::string sock = tmp_path("resil_cap.sock");
  ServerOptions so;
  so.unix_path = sock;
  so.max_clients = 1;
  std::thread server([&] { run_server(so); });

  const int first = connect_retry(sock);
  ASSERT_GE(first, 0);
  std::string err;
  ASSERT_TRUE(stats_roundtrip(first, err)) << err;  // first is registered

  const int second = connect_retry(sock);
  ASSERT_GE(second, 0);
  sched::FrameDecoder dec;
  sched::Frame f;
  ASSERT_TRUE(recv_frame(second, dec, f, err))
      << "refusal must be a reply, not a slammed door: " << err;
  ASSERT_EQ(f.type, sched::MsgType::kVerdictReply);
  VerdictReplyMsg refuse;
  ASSERT_TRUE(decode_verdict_reply(f.payload, refuse));
  EXPECT_FALSE(refuse.ok);
  EXPECT_NE(refuse.error.find("capacity"), std::string::npos) << refuse.error;
  char byte;
  EXPECT_EQ(::read(second, &byte, 1), 0) << "refused connection must close";
  ::close(second);

  // The registered client is unaffected by the refusal next door.
  EXPECT_TRUE(stats_roundtrip(first, err)) << err;
  request_shutdown(first);
  ::close(first);
  server.join();
  std::remove(sock.c_str());
}

// ---------------------------------------------------------------------------
// SIGTERM drain: cache persisted, journal compacted, exit 0
// ---------------------------------------------------------------------------

TEST(ServeResilience, SigtermDrainsGracefully) {
  const std::string sock = tmp_path("resil_drain.sock");
  const std::string cache = tmp_path("resil_drain.pkc");
  const std::string journal = tmp_path("resil_drain.pkj");

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ServerOptions so;
    so.unix_path = sock;
    so.cache_path = cache;
    so.journal_path = journal;
    _exit(run_server(so));
  }

  const int fd = connect_retry(sock);
  ASSERT_GE(fd, 0);
  LoadNetMsg load;
  load.config_text = kRing;
  ASSERT_TRUE(send_frame(fd, sched::MsgType::kLoadNet, encode_load_net(load)));
  sched::FrameDecoder dec;
  sched::Frame f;
  std::string err;
  ASSERT_TRUE(recv_frame(fd, dec, f, err)) << err;
  VerdictReplyMsg reply;
  ASSERT_TRUE(decode_verdict_reply(f.payload, reply));
  ASSERT_TRUE(reply.ok) << reply.error;
  // Journal two deltas so the drain-time compaction has history to fold.
  ApplyDeltaMsg delta;
  delta.ops.push_back({true, "static r0 10.3.0.0/24 via r1"});
  ASSERT_TRUE(
      send_frame(fd, sched::MsgType::kApplyDelta, encode_apply_delta(delta)));
  ASSERT_TRUE(recv_frame(fd, dec, f, err)) << err;
  ASSERT_TRUE(decode_verdict_reply(f.payload, reply));
  ASSERT_TRUE(reply.ok) << reply.error;
  ::close(fd);

  ASSERT_EQ(kill(pid, SIGTERM), 0);
  int status = -1;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "daemon must drain, not die of the signal";
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // The drain compacted the journal: one kLoadNet record holding the
  // post-delta resident config.
  Journal::ReplayResult stats;
  std::size_t records = 0;
  JournalRecord only_type{};
  std::string only_payload;
  ASSERT_TRUE(Journal::replay(
      journal,
      [&](JournalRecord type, std::string_view payload) {
        ++records;
        only_type = type;
        only_payload = std::string(payload);
        return true;
      },
      stats, err))
      << err;
  EXPECT_EQ(records, 1u) << "drain must compact the load+delta history";
  EXPECT_EQ(only_type, JournalRecord::kLoadNet);
  EXPECT_NE(only_payload.find("static r0 10.3.0.0/24 via r1"),
            std::string::npos)
      << "compacted config must carry the applied delta";

  // And the replayed journal rebuilds the drained daemon's state.
  ServeState revived{VerifyOptions{}};
  ASSERT_TRUE(revived.attach_journal(journal, err)) << err;
  ASSERT_TRUE(revived.replay_journal(stats, err)) << err;
  EXPECT_TRUE(revived.loaded());

  std::remove(sock.c_str());
  std::remove(cache.c_str());
  std::remove(journal.c_str());
}

// ---------------------------------------------------------------------------
// Serve-side socket faults: the chaos hooks shed exactly one connection
// ---------------------------------------------------------------------------

TEST(ServeResilience, DropConnFaultShedsConnectionDaemonSurvives) {
  const std::string sock = tmp_path("resil_dropconn.sock");
  ServerOptions so;
  so.unix_path = sock;
  std::string err;
  ASSERT_TRUE(sched::parse_fault_plan("drop-conn@1", so.fault_plan, err))
      << err;
  std::thread server([&] { run_server(so); });

  // The first reply of every connection is eaten: the client sees a dead
  // socket, never a bogus verdict.
  const int fd = connect_retry(sock);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_frame(fd, sched::MsgType::kCacheStats, ""));
  sched::FrameDecoder dec;
  sched::Frame f;
  EXPECT_FALSE(recv_frame(fd, dec, f, err))
      << "the dropped reply must surface as a transport error";
  ::close(fd);

  // The daemon itself survives its own chaos: a new connection is accepted
  // and kShutdown still drains it (the ack is eaten by the same fault, but
  // shutdown proceeds regardless).
  const int fd2 = connect_retry(sock);
  ASSERT_GE(fd2, 0);
  request_shutdown(fd2);
  ::close(fd2);
  server.join();
  std::remove(sock.c_str());
}

TEST(ServeResilience, TornTcpFaultNeverYieldsAParseableLie) {
  const std::string sock = tmp_path("resil_torntcp.sock");
  ServerOptions so;
  so.unix_path = sock;
  std::string err;
  ASSERT_TRUE(sched::parse_fault_plan("torn-tcp@1", so.fault_plan, err)) << err;
  std::thread server([&] { run_server(so); });

  const int fd = connect_retry(sock);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_frame(fd, sched::MsgType::kCacheStats, ""));
  // Half a frame then a hard close: the decoder must report a truncated
  // stream, never hand back a frame assembled from the torn bytes.
  sched::FrameDecoder dec;
  sched::Frame f;
  EXPECT_FALSE(recv_frame(fd, dec, f, err));
  ::close(fd);

  const int fd2 = connect_retry(sock);
  ASSERT_GE(fd2, 0);
  request_shutdown(fd2);
  ::close(fd2);
  server.join();
  std::remove(sock.c_str());
}

TEST(ServeResilience, StallFaultDelaysButDeliversIntactReply) {
  const std::string sock = tmp_path("resil_stallfault.sock");
  ServerOptions so;
  so.unix_path = sock;
  std::string err;
  ASSERT_TRUE(sched::parse_fault_plan("stall@1:150", so.fault_plan, err))
      << err;
  std::thread server([&] { run_server(so); });

  const int fd = connect_retry(sock);
  ASSERT_GE(fd, 0);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(stats_roundtrip(fd, err)) << err;
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_GE(elapsed, 100) << "the armed stall must actually delay the reply";

  request_shutdown(fd);
  ::close(fd);
  server.join();
  std::remove(sock.c_str());
}

}  // namespace
}  // namespace plankton::serve
