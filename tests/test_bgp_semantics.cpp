// BGP control-plane semantics: non-deterministic convergence (Griffin et
// al.'s gadgets, BGP wedgies) and iBGP-over-OSPF recursion — the paper's §5
// "hand-created topologies incorporating protocol characteristics such as
// non-deterministic protocol convergence, redistribution, recursive routing".
#include <gtest/gtest.h>

#include "core/verifier.hpp"
#include "pec/pec.hpp"
#include "rpvp/explorer.hpp"
#include "workload/as_topo.hpp"

namespace plankton {
namespace {

/// DISAGREE: origin 0; nodes 1 and 2 each prefer the route through the other
/// over the direct route. Two stable states exist; which one is reached
/// depends on message ordering. RPVP must enumerate both.
Network make_disagree() {
  Network net;
  const NodeId r0 = net.add_device("origin");
  const NodeId r1 = net.add_device("r1");
  const NodeId r2 = net.add_device("r2");
  net.topo.add_link(r0, r1);
  net.topo.add_link(r0, r2);
  net.topo.add_link(r1, r2);
  for (const NodeId n : {r0, r1, r2}) {
    net.device(n).bgp.emplace();
    net.device(n).bgp->asn = 100 + n;
  }
  auto session = [&net](NodeId a, NodeId b) {
    BgpSession sa;
    sa.peer = b;
    net.device(a).bgp->sessions.push_back(sa);
    BgpSession sb;
    sb.peer = a;
    net.device(b).bgp->sessions.push_back(sb);
  };
  session(r0, r1);
  session(r0, r2);
  session(r1, r2);
  net.device(r0).bgp->originated.push_back(Prefix(IpAddr(10, 0, 0, 0), 24));
  // r1 prefers routes learned from r2 (local-pref 200) over direct (100);
  // symmetric for r2.
  RouteMapClause prefer;
  prefer.action.set_local_pref = 200;
  net.device(r1).bgp->session_with(r2)->import.clauses.push_back(prefer);
  net.device(r2).bgp->session_with(r1)->import.clauses.push_back(prefer);
  return net;
}

/// Counts converged states by running the explorer with outcome recording.
ExploreResult explore_all(const Network& net, const Policy& policy,
                          ExploreOptions opts = {}) {
  const PecSet pecs = compute_pecs(net);
  const auto routed = pecs.routed();
  EXPECT_EQ(routed.size(), 1u);
  const Pec& pec = pecs.pecs[routed[0]];
  opts.record_outcomes = true;
  opts.find_all_violations = true;
  Explorer ex(net, pec, make_tasks(net, pec), policy, opts);
  return ex.run();
}

TEST(BgpSemantics, DisagreeHasTwoConvergedStates) {
  const Network net = make_disagree();
  const LoopFreedomPolicy policy;
  const ExploreResult r = explore_all(net, policy);
  EXPECT_TRUE(r.holds);
  // Exactly two distinct converged data planes: r1 via r2 or r2 via r1
  // (both choosing "through the other" simultaneously is not stable).
  EXPECT_EQ(r.outcomes.size(), 2u);
}

TEST(BgpSemantics, DisagreeNaiveModeAgrees) {
  const Network net = make_disagree();
  const LoopFreedomPolicy policy;
  const ExploreResult fast = explore_all(net, policy);
  const ExploreResult naive = explore_all(net, policy, ExploreOptions::naive());
  EXPECT_TRUE(naive.holds);
  // Naive full-RPVP exploration (including withdraw transitions) reaches the
  // same converged set.
  EXPECT_EQ(naive.outcomes.size(), fast.outcomes.size());
  EXPECT_GE(naive.stats.states_explored, fast.stats.states_explored);
}

/// BGP wedgie (RFC 4264 flavour): customer dual-homed to a backup provider
/// (which depresses the direct route via a backup community, local-pref 50)
/// and a primary provider (which prefers customer routes re-advertised by the
/// backup, local-pref 200, over its own direct route, 100). Loop rejection
/// makes both assignments stable:
///   intended: primary uses the direct route, backup routes via primary;
///   wedged:   backup sticks to the depressed direct route and the primary
///             routes through the backup.
/// Which one is reached depends on advertisement ordering.
Network make_wedgie(NodeId& primary, NodeId& backup, NodeId& customer) {
  Network net;
  const NodeId cust = net.add_device("customer");  // origin
  const NodeId bak = net.add_device("backup");
  const NodeId pri = net.add_device("primary");
  net.topo.add_link(cust, bak);
  net.topo.add_link(cust, pri);
  net.topo.add_link(bak, pri);
  for (NodeId n = 0; n < 3; ++n) {
    net.device(n).bgp.emplace();
    net.device(n).bgp->asn = 65000 + n;
  }
  auto session = [&net](NodeId a, NodeId b) {
    BgpSession sa;
    sa.peer = b;
    net.device(a).bgp->sessions.push_back(sa);
    BgpSession sb;
    sb.peer = a;
    net.device(b).bgp->sessions.push_back(sb);
  };
  session(cust, bak);
  session(cust, pri);
  session(bak, pri);
  net.device(cust).bgp->originated.push_back(Prefix(IpAddr(10, 7, 0, 0), 16));
  RouteMapClause depress;  // backup community on the cust->bak link
  depress.action.set_local_pref = 50;
  net.device(bak).bgp->session_with(cust)->import.clauses.push_back(depress);
  RouteMapClause lift;  // primary prefers the backup's re-advertisement
  lift.action.set_local_pref = 200;
  net.device(pri).bgp->session_with(bak)->import.clauses.push_back(lift);
  primary = pri;
  backup = bak;
  customer = cust;
  return net;
}

TEST(BgpSemantics, WedgieHasTwoConvergedStates) {
  NodeId pri, bak, cust;
  const Network net = make_wedgie(pri, bak, cust);
  const LoopFreedomPolicy policy;
  const ExploreResult r = explore_all(net, policy);
  EXPECT_TRUE(r.holds);
  EXPECT_EQ(r.outcomes.size(), 2u) << "wedgie must have exactly 2 stable states";
}

TEST(BgpSemantics, WedgieViolationFoundWithTrail) {
  NodeId pri, bak, cust;
  const Network net = make_wedgie(pri, bak, cust);
  // Intended behaviour: the primary provider reaches the customer directly
  // (one hop). In the wedged state it detours through the backup.
  const BoundedPathLengthPolicy policy({pri}, 1);
  const PecSet pecs = compute_pecs(net);
  const Pec& pec = pecs.pecs[pecs.routed()[0]];
  Explorer ex(net, pec, make_tasks(net, pec), policy, {});
  const ExploreResult r = ex.run();
  EXPECT_FALSE(r.holds) << "the wedged state must be found";
  ASSERT_FALSE(r.violations.empty());
  EXPECT_FALSE(r.violations[0].trail.events.empty());
}

TEST(BgpSemantics, IbgpOverOspfDelivers) {
  AsTopo topo = make_as_topo("test-as", 24);
  const IbgpOverlay overlay = add_ibgp_mesh(topo);
  VerifyOptions opts;
  const ReachabilityPolicy policy(
      {overlay.speakers.begin(), overlay.speakers.end()});
  Verifier verifier(topo.net, opts);
  const VerifyResult r =
      verifier.verify_address(overlay.external.addr(), policy);
  EXPECT_TRUE(r.holds) << r.first_violation(topo.net.topo);
  EXPECT_GT(r.pecs_support, 0u)
      << "loopback PECs must be scheduled before the iBGP PEC";
}

TEST(BgpSemantics, IbgpDependencyGraphIsAcyclicWithLoopbacksFirst) {
  AsTopo topo = make_as_topo("test-as2", 20);
  add_ibgp_mesh(topo);
  const PecSet pecs = compute_pecs(topo.net);
  const PecDependencies deps = compute_dependencies(topo.net, pecs);
  EXPECT_TRUE(deps.has_cross_pec_deps());
  // Every SCC must be a single PEC (Fig. 5's expectation).
  for (const auto& scc : deps.sccs) EXPECT_EQ(scc.size(), 1u);
}

}  // namespace
}  // namespace plankton
