// netbase: IPv4 values, prefixes, topology, failure sets, Dijkstra.
#include <gtest/gtest.h>

#include <random>

#include "netbase/hash.hpp"
#include "netbase/ip.hpp"
#include "netbase/topology.hpp"

namespace plankton {
namespace {

TEST(IpAddr, ParseAndFormatRoundTrip) {
  for (const char* text : {"0.0.0.0", "10.1.2.3", "255.255.255.255", "192.0.2.1"}) {
    const auto a = IpAddr::parse(text);
    ASSERT_TRUE(a.has_value()) << text;
    EXPECT_EQ(a->str(), text);
  }
}

TEST(IpAddr, RejectsMalformed) {
  for (const char* text : {"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d",
                           "1..2.3", "1.2.3.4 ", "-1.2.3.4"}) {
    EXPECT_FALSE(IpAddr::parse(text).has_value()) << text;
  }
}

TEST(IpAddr, NumericOrdering) {
  EXPECT_LT(IpAddr(10, 0, 0, 0), IpAddr(10, 0, 0, 1));
  EXPECT_LT(IpAddr(9, 255, 255, 255), IpAddr(10, 0, 0, 0));
}

TEST(Prefix, MasksHostBits) {
  const Prefix p(IpAddr(10, 1, 2, 3), 16);
  EXPECT_EQ(p.addr(), IpAddr(10, 1, 0, 0));
  EXPECT_EQ(p.first(), IpAddr(10, 1, 0, 0));
  EXPECT_EQ(p.last(), IpAddr(10, 1, 255, 255));
}

TEST(Prefix, ZeroLengthCoversEverything) {
  const Prefix any = Prefix::any();
  EXPECT_EQ(any.first(), IpAddr(0, 0, 0, 0));
  EXPECT_EQ(any.last(), IpAddr(255, 255, 255, 255));
  EXPECT_TRUE(any.contains(IpAddr(1, 2, 3, 4)));
  EXPECT_TRUE(any.covers(Prefix(IpAddr(10, 0, 0, 0), 8)));
}

TEST(Prefix, HostPrefix) {
  const Prefix h = Prefix::host(IpAddr(1, 2, 3, 4));
  EXPECT_EQ(h.length(), 32);
  EXPECT_EQ(h.first(), h.last());
  EXPECT_TRUE(h.contains(IpAddr(1, 2, 3, 4)));
  EXPECT_FALSE(h.contains(IpAddr(1, 2, 3, 5)));
}

TEST(Prefix, CoversIsPartialOrder) {
  const Prefix a(IpAddr(10, 0, 0, 0), 8);
  const Prefix b(IpAddr(10, 1, 0, 0), 16);
  const Prefix c(IpAddr(11, 0, 0, 0), 8);
  EXPECT_TRUE(a.covers(b));
  EXPECT_FALSE(b.covers(a));
  EXPECT_FALSE(a.covers(c));
  EXPECT_TRUE(a.covers(a));
}

TEST(Prefix, ParseRejectsBadLength) {
  EXPECT_FALSE(Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/x").has_value());
}

TEST(FailureSet, TracksSortedIds) {
  FailureSet f(10);
  f.fail(7);
  f.fail(2);
  f.fail(7);  // idempotent
  EXPECT_EQ(f.count(), 2u);
  EXPECT_TRUE(f.is_failed(2));
  EXPECT_TRUE(f.is_failed(7));
  EXPECT_FALSE(f.is_failed(3));
  ASSERT_EQ(f.ids().size(), 2u);
  EXPECT_EQ(f.ids()[0], 2u);
  EXPECT_EQ(f.ids()[1], 7u);
}

TEST(FailureSet, HashIsOrderIndependentAndDiscriminates) {
  FailureSet a(10), b(10), c(10);
  a.fail(1);
  a.fail(5);
  b.fail(5);
  b.fail(1);
  c.fail(1);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a.hash(), c.hash());
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(Topology, AdjacencyAndFindLink) {
  Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  const NodeId c = topo.add_node("c");
  const LinkId ab = topo.add_link(a, b, 5);
  topo.add_link(b, c, 7, 9);
  EXPECT_EQ(topo.find_link(a, b), ab);
  EXPECT_EQ(topo.find_link(b, a), ab);
  EXPECT_EQ(topo.find_link(a, c), kNoLink);
  EXPECT_EQ(topo.link(ab).cost_from(a), 5u);
  const LinkId bc = topo.find_link(b, c);
  EXPECT_EQ(topo.link(bc).cost_from(b), 7u);
  EXPECT_EQ(topo.link(bc).cost_from(c), 9u);
}

TEST(Dijkstra, LineGraphDistances) {
  Topology topo;
  for (int i = 0; i < 5; ++i) topo.add_node("n");
  for (int i = 0; i + 1 < 5; ++i) {
    topo.add_link(static_cast<NodeId>(i), static_cast<NodeId>(i + 1), 2);
  }
  const std::vector<NodeId> src{0};
  const auto d = shortest_path_costs(topo, src, FailureSet(topo.link_count()));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(d[i], static_cast<std::uint32_t>(2 * i));
}

TEST(Dijkstra, RespectsAsymmetricCosts) {
  Topology topo;
  topo.add_node("a");
  topo.add_node("b");
  topo.add_link(0, 1, 1, 100);
  // Distance-to-origin trees accumulate the cost of the forwarding node's
  // outgoing interface: b -> a uses cost_from(b) = 100.
  const std::vector<NodeId> src{0};
  const auto d = shortest_path_costs(topo, src, FailureSet(1));
  EXPECT_EQ(d[1], 100u);
}

TEST(Dijkstra, FailuresDisconnect) {
  Topology topo;
  topo.add_node("a");
  topo.add_node("b");
  const LinkId l = topo.add_link(0, 1);
  FailureSet f(1);
  f.fail(l);
  const std::vector<NodeId> src{0};
  const auto d = shortest_path_costs(topo, src, f);
  EXPECT_EQ(d[1], kInfiniteCost);
}

TEST(Dijkstra, MultiSourceTakesNearest) {
  Topology topo;
  for (int i = 0; i < 6; ++i) topo.add_node("n");
  for (int i = 0; i + 1 < 6; ++i) {
    topo.add_link(static_cast<NodeId>(i), static_cast<NodeId>(i + 1), 1);
  }
  const std::vector<NodeId> src{0, 5};
  const auto d = shortest_path_costs(topo, src, FailureSet(topo.link_count()));
  EXPECT_EQ(d[2], 2u);
  EXPECT_EQ(d[4], 1u);
}

TEST(Hash, MixAvalanchesAndCombineDiscriminates) {
  EXPECT_NE(hash_mix(1), hash_mix(2));
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  std::mt19937_64 rng(7);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t x = rng();
    EXPECT_NE(hash_mix(x), hash_mix(x + 1));
  }
}

}  // namespace
}  // namespace plankton
