// The DPOR commutativity oracle (engine/independence.hpp) and its soundness
// against the real protocol processes.
//
// The oracle's claim is structural: a move at node n touches rib[n] and reads
// only rib[p] for session peers p, so moves at non-peer nodes commute. The
// unit tests pin the relation's algebra (symmetric, reflexive on declared
// transitions, conservative fallback); the fuzz executes *both orders* of
// every oracle-independent enabled pair on random instances through the real
// Explorer and compares the resulting state fingerprints — an unsound
// independence verdict shows up as a Zobrist key mismatch or a changed
// candidate set.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "engine/frontier.hpp"
#include "engine/independence.hpp"
#include "pec/pec.hpp"
#include "rpvp/explorer.hpp"
#include "support/random_net.hpp"

namespace plankton {
namespace {

using testsupport::RandomInstance;
using testsupport::make_random_instance;

TEST(IndependenceOracle, FreshRelationIsVacuouslyIndependent) {
  IndependenceOracle o;
  o.reset(2, 70);  // spans a word boundary
  EXPECT_EQ(o.phase_count(), 2u);
  EXPECT_EQ(o.node_count(), 70u);
  EXPECT_EQ(o.words(), 2u);
  for (NodeId a = 0; a < 70; ++a) {
    for (NodeId b = 0; b < 70; ++b) {
      EXPECT_TRUE(o.independent(0, a, b));
    }
  }
}

TEST(IndependenceOracle, DeclaredTransitionsConflictSymmetrically) {
  IndependenceOracle o;
  o.reset(1, 70);
  const NodeId reads2[] = {3, 65};
  const NodeId reads3[] = {2};
  o.add_transition(0, 2, reads2);
  o.add_transition(0, 3, reads3);
  o.add_transition(0, 65, std::span<const NodeId>{});

  // Reflexive on every declared transition (write/write on the own entry).
  for (const NodeId n : {NodeId{2}, NodeId{3}, NodeId{65}}) {
    EXPECT_TRUE(o.dependent(0, n, n));
  }
  // Write/read conflicts accumulate in both directions.
  EXPECT_TRUE(o.dependent(0, 2, 3));
  EXPECT_TRUE(o.dependent(0, 3, 2));
  EXPECT_TRUE(o.dependent(0, 2, 65));
  EXPECT_TRUE(o.dependent(0, 65, 2));
  // 3 and 65 never touch each other's entries.
  EXPECT_TRUE(o.independent(0, 3, 65));
  EXPECT_TRUE(o.independent(0, 65, 3));
  // Symmetry over the full matrix.
  for (NodeId a = 0; a < 70; ++a) {
    for (NodeId b = 0; b < 70; ++b) {
      EXPECT_EQ(o.dependent(0, a, b), o.dependent(0, b, a))
          << "asymmetric at (" << a << ", " << b << ")";
    }
  }
}

TEST(IndependenceOracle, AllDependentFallbackKillsEveryPair) {
  IndependenceOracle o;
  o.reset(2, 10);
  o.set_all_dependent(0);
  for (NodeId a = 0; a < 10; ++a) {
    for (NodeId b = 0; b < 10; ++b) {
      EXPECT_TRUE(o.dependent(0, a, b));
      EXPECT_TRUE(o.independent(1, a, b)) << "fallback leaked across phases";
    }
  }
}

TEST(IndependenceOracle, SleepChildMaskAlgebra) {
  // child = (sleep ∪ prior) ∖ dep, bit-exact across word boundaries.
  std::uint64_t sleep[2] = {0x5, 0x1};
  std::uint64_t prior[2] = {0x2, 0x4};
  std::uint64_t dep[2] = {0x4, 0x1};
  std::uint64_t child[2] = {~0ull, ~0ull};
  sleep_child(child, sleep, prior, dep, 2);
  EXPECT_EQ(child[0], (0x5ull | 0x2ull) & ~0x4ull);
  EXPECT_EQ(child[1], (0x1ull | 0x4ull) & ~0x1ull);
  EXPECT_TRUE(mask_test(child, 0));
  EXPECT_FALSE(mask_test(child, 2));
  mask_set(child, 2);
  EXPECT_TRUE(mask_test(child, 2));
}

TEST(LubySchedule, SequenceMatchesTheReference) {
  // u = 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,… (Luby, Sinclair & Zuckerman 1993).
  const std::uint32_t expected[] = {1, 1, 2, 1, 1, 2, 4, 1,
                                    1, 2, 1, 1, 2, 4, 8, 1};
  for (std::uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(luby_value(i + 1), expected[i]) << "at index " << (i + 1);
  }
  EXPECT_EQ(luby_value(31), 16u);  // i = 2^5 - 1
}

class TruePolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "true"; }
  [[nodiscard]] bool check(const ConvergedView&, std::string&) const override {
    return true;
  }
};

/// Executes both orders of every oracle-independent pair of enabled moves on
/// the instance's first routed PEC, walking a few levels of the real move
/// tree. POR and the §4 move-pruning optimizations are off so expand()
/// returns the unfiltered enabled set — the fuzz tests the oracle, not the
/// reduction built on it.
void fuzz_instance_pairs(const RandomInstance& inst, std::uint64_t& pairs) {
  const PecSet pecs = compute_pecs(inst.net);
  const auto routed = pecs.routed();
  if (routed.empty()) return;
  const Pec& pec = pecs.pecs[routed[0]];
  std::vector<PrefixTask> tasks = make_tasks(inst.net, pec);
  if (tasks.size() != 1) return;  // keep the walk single-phase
  const RoutingProcess* proc = tasks[0].process.get();

  ExploreOptions opts = ExploreOptions::naive();
  opts.merge_updates = inst.explore.merge_updates;
  opts.max_failures = 0;      // the walk probes the failure-free tree
  opts.max_states = 20000;    // bounded warm-up run
  const TruePolicy policy;
  Explorer ex(inst.net, pec, std::move(tasks), policy, opts);
  (void)ex.run();  // prepare() the process and park at the phase-0 root

  // The oracle under test, built exactly as the explorer builds its own:
  // node-granularity footprints from the *prepared* process.
  IndependenceOracle oracle;
  oracle.reset(1, inst.net.topo.node_count());
  if (proc->cacheable()) {
    for (const NodeId n : proc->members()) {
      oracle.add_transition(0, n, proc->peers(n));
    }
  } else {
    oracle.set_all_dependent(0);
  }

  SearchModel& model = ex;
  std::vector<SearchMove> moves;
  std::vector<SearchMove> after_a;
  // Iterative walk down the leftmost path, testing all pairs per level.
  for (int depth = 0; depth < 4; ++depth) {
    moves.clear();
    if (model.expand(0, moves, SIZE_MAX) != SearchModel::Step::kBranch) break;
    for (std::size_t i = 0; i < moves.size(); ++i) {
      for (std::size_t j = i + 1; j < moves.size(); ++j) {
        SearchMove a = moves[i];
        SearchMove b = moves[j];
        if (a.node == b.node) continue;  // same-entry moves never commute
        if (oracle.dependent(0, a.node, b.node)) continue;
        // Order a·b: after a, b must still be enabled with the same route
        // (a did not disturb b's candidates) and lead to key(s·a·b).
        model.apply(0, a);
        after_a.clear();
        ASSERT_EQ(model.expand(0, after_a, SIZE_MAX), SearchModel::Step::kBranch)
            << "independent move " << a.node << " emptied the enabled set";
        const bool b_alive = std::any_of(
            after_a.begin(), after_a.end(), [&](const SearchMove& m) {
              return m.node == b.node && m.route == b.route;
            });
        ASSERT_TRUE(b_alive) << "move at " << a.node << " changed node "
                             << b.node << "'s candidates despite independence";
        const std::uint64_t key_ab = model.state_key_after(0, b);
        model.undo(0, a);
        // Order b·a, same checks mirrored.
        model.apply(0, b);
        after_a.clear();
        ASSERT_EQ(model.expand(0, after_a, SIZE_MAX), SearchModel::Step::kBranch);
        const bool a_alive = std::any_of(
            after_a.begin(), after_a.end(), [&](const SearchMove& m) {
              return m.node == a.node && m.route == a.route;
            });
        ASSERT_TRUE(a_alive) << "move at " << b.node << " changed node "
                             << a.node << "'s candidates despite independence";
        const std::uint64_t key_ba = model.state_key_after(0, a);
        model.undo(0, b);
        EXPECT_EQ(key_ab, key_ba)
            << "orders " << a.node << "·" << b.node << " and " << b.node << "·"
            << a.node << " reached different states";
        ++pairs;
      }
    }
    // Descend along the first move and test the next level's pairs.
    SearchMove down = moves.front();
    model.apply(0, down);
  }
}

TEST(IndependenceOracle, IndependentPairsCommuteOnRealProcesses) {
  std::uint64_t pairs = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const RandomInstance inst = make_random_instance(seed);
    SCOPED_TRACE("instance seed " + std::to_string(seed) + " (" + inst.kind + ")");
    fuzz_instance_pairs(inst, pairs);
  }
  // The corpus must actually produce independent enabled pairs, or the fuzz
  // is vacuous.
  std::printf("commuting pairs executed both ways: %llu\n",
              static_cast<unsigned long long>(pairs));
  EXPECT_GT(pairs, 100u);
}

}  // namespace
}  // namespace plankton
