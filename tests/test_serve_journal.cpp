// PKJ1 write-ahead journal (src/serve/journal.*): on-disk format round trips,
// torn/corrupt tail handling, compaction, and the crash-recovery contract the
// plankton_serve daemon rests on — a ServeState rebuilt by replaying the
// journal is bit-identical (per-PEC dependency-cone hashes, config text,
// violation sets) to the pre-crash resident state.
//
// The kill -9 coverage forks a child that journals a load + delta stream and
// _exit(9)s mid-append, leaving a genuinely torn final record; the parent
// replays and must land on exactly the acknowledged prefix.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "serve/journal.hpp"
#include "serve/serve.hpp"

namespace plankton::serve {
namespace {

const char* kRing = R"(
node r0 loopback 10.0.0.1
node r1 loopback 10.0.0.2
node r2 loopback 10.0.0.3
node r3 loopback 10.0.0.4
link r0 r1 cost 10
link r1 r2 cost 10
link r2 r3 cost 10
link r3 r0 cost 10
ospf r0 no-loopback
ospf r1 no-loopback
ospf r2 no-loopback
ospf r3 no-loopback
ospf r0 originate 10.1.0.0/24
ospf r1 originate 10.2.0.0/24
ospf r2 originate 10.3.0.0/24
ospf r3 originate 10.4.0.0/24
)";

std::string tmp_path(const std::string& name) {
  const std::string p = ::testing::TempDir() + "/" + name;
  std::remove(p.c_str());
  return p;
}

/// ServeState owns mutexes (not movable), so tests construct in place and
/// load through this helper.
void load_ring(ServeState& state, const std::string& extra = "") {
  std::string error;
  ASSERT_TRUE(state.load(std::string(kRing) + extra, error)) << error;
}

QueryMsg loop_query() {
  QueryMsg q;
  q.policy_spec = "loop";
  return q;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

void dump(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

using Replayed = std::vector<std::pair<JournalRecord, std::string>>;

bool replay_into(const std::string& path, Replayed& records,
                 Journal::ReplayResult& stats, std::string& error) {
  records.clear();
  return Journal::replay(
      path,
      [&records](JournalRecord type, std::string_view payload) {
        records.emplace_back(type, std::string(payload));
        return true;
      },
      stats, error);
}

/// The loop-forming delta from examples/ring_loop.delta: pins 10.3.0.0/24
/// into a static forwarding loop between r0 and r1.
ApplyDeltaMsg loop_delta() {
  ApplyDeltaMsg delta;
  delta.ops.push_back({true, "static r0 10.3.0.0/24 via r1"});
  delta.ops.push_back({true, "static r1 10.3.0.0/24 via r0"});
  return delta;
}

/// Sorted (pec, message) multiset — order-insensitive violation equality.
std::vector<std::pair<std::string, std::string>> violation_multiset(
    const VerdictReplyMsg& m) {
  std::vector<std::pair<std::string, std::string>> v;
  for (const ViolationText& t : m.violations) v.emplace_back(t.pec, t.message);
  std::sort(v.begin(), v.end());
  return v;
}

// ---------------------------------------------------------------------------
// On-disk format
// ---------------------------------------------------------------------------

TEST(JournalFormat, AppendReplayRoundTrip) {
  const std::string path = tmp_path("journal_roundtrip.pkj");
  std::string error;
  {
    Journal j;
    ASSERT_TRUE(j.open(path, error)) << error;
    ASSERT_TRUE(j.append(JournalRecord::kLoadNet, "the config", error));
    ASSERT_TRUE(j.append(JournalRecord::kApplyDelta, "delta-one", error));
    ASSERT_TRUE(j.append(JournalRecord::kApplyDelta, std::string("\x00\xffx", 3),
                         error))
        << "binary payloads must survive untouched";
  }
  Replayed records;
  Journal::ReplayResult stats;
  ASSERT_TRUE(replay_into(path, records, stats, error)) << error;
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_EQ(stats.dropped_bytes, 0u);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].first, JournalRecord::kLoadNet);
  EXPECT_EQ(records[0].second, "the config");
  EXPECT_EQ(records[1].second, "delta-one");
  EXPECT_EQ(records[2].second, std::string("\x00\xffx", 3));
  std::remove(path.c_str());
}

TEST(JournalFormat, MissingFileIsAnEmptyJournal) {
  Replayed records;
  Journal::ReplayResult stats;
  std::string error;
  ASSERT_TRUE(replay_into(tmp_path("journal_never_created.pkj"), records,
                          stats, error))
      << error;
  EXPECT_TRUE(records.empty());
  EXPECT_FALSE(stats.torn_tail);
}

TEST(JournalFormat, TornTailIsDroppedCleanly) {
  const std::string path = tmp_path("journal_torn.pkj");
  std::string error;
  std::size_t after_first = 0;
  {
    Journal j;
    ASSERT_TRUE(j.open(path, error)) << error;
    ASSERT_TRUE(j.append(JournalRecord::kLoadNet, "survives", error));
    after_first = slurp(path).size();
    ASSERT_TRUE(j.append(JournalRecord::kApplyDelta,
                         "this record is cut short by the crash", error));
  }
  const std::string whole = slurp(path);
  ASSERT_GT(whole.size(), after_first);
  // Tear the final record mid-payload, as a crash mid-write would.
  dump(path, whole.substr(0, after_first + (whole.size() - after_first) / 2));

  Replayed records;
  Journal::ReplayResult stats;
  ASSERT_TRUE(replay_into(path, records, stats, error)) << error;
  ASSERT_EQ(records.size(), 1u) << "every record before the tear must apply";
  EXPECT_EQ(records[0].second, "survives");
  EXPECT_TRUE(stats.torn_tail);
  EXPECT_GT(stats.dropped_bytes, 0u);
  std::remove(path.c_str());
}

TEST(JournalFormat, CorruptChecksumDropsTheTail) {
  const std::string path = tmp_path("journal_corrupt.pkj");
  std::string error;
  {
    Journal j;
    ASSERT_TRUE(j.open(path, error)) << error;
    ASSERT_TRUE(j.append(JournalRecord::kLoadNet, "clean", error));
    ASSERT_TRUE(j.append(JournalRecord::kApplyDelta, "about to rot", error));
  }
  std::string bytes = slurp(path);
  ASSERT_FALSE(bytes.empty());
  bytes.back() ^= 0x5a;  // flip a bit inside the final record's checksum
  dump(path, bytes);

  Replayed records;
  Journal::ReplayResult stats;
  ASSERT_TRUE(replay_into(path, records, stats, error)) << error;
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].second, "clean");
  EXPECT_TRUE(stats.torn_tail);
  std::remove(path.c_str());
}

TEST(JournalFormat, BadHeaderIsAnError) {
  const std::string path = tmp_path("journal_badheader.pkj");
  dump(path, "not a PKJ1 journal at all");
  Replayed records;
  Journal::ReplayResult stats;
  std::string error;
  EXPECT_FALSE(replay_into(path, records, stats, error));
  EXPECT_FALSE(error.empty());

  Journal j;
  EXPECT_FALSE(j.open(path, error))
      << "open must refuse a file with a foreign header";
  std::remove(path.c_str());
}

TEST(JournalFormat, RewriteCompactsToASingleLoad) {
  const std::string path = tmp_path("journal_compact.pkj");
  std::string error;
  Journal j;
  ASSERT_TRUE(j.open(path, error)) << error;
  ASSERT_TRUE(j.append(JournalRecord::kLoadNet, "old config", error));
  ASSERT_TRUE(j.append(JournalRecord::kApplyDelta, "old delta", error));
  ASSERT_TRUE(j.rewrite("current config", error)) << error;

  Replayed records;
  Journal::ReplayResult stats;
  ASSERT_TRUE(replay_into(path, records, stats, error)) << error;
  ASSERT_EQ(records.size(), 1u) << "compaction must collapse the history";
  EXPECT_EQ(records[0].first, JournalRecord::kLoadNet);
  EXPECT_EQ(records[0].second, "current config");

  // The compacted journal must still be appendable — rewrite reopens it.
  ASSERT_TRUE(j.append(JournalRecord::kApplyDelta, "new delta", error));
  ASSERT_TRUE(replay_into(path, records, stats, error)) << error;
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].second, "new delta");
  j.close();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// ServeState recovery: replay rebuilds the pre-crash state bit-identically
// ---------------------------------------------------------------------------

TEST(ServeJournal, ReplayRebuildsBitIdenticalState) {
  const std::string path = tmp_path("serve_journal_replay.pkj");
  std::string error;

  ServeState state{VerifyOptions{}};
  ASSERT_TRUE(state.attach_journal(path, error)) << error;
  load_ring(state);
  ApplyDeltaMsg delta;
  delta.ops.push_back({true, "static r0 10.2.0.0/24 via r1"});
  ASSERT_TRUE(state.apply_delta(delta, error)) << error;
  const VerdictReplyMsg before = state.query(loop_query());
  ASSERT_TRUE(before.ok) << before.error;

  // "Crash": no compaction, no save — a fresh ServeState sees only the
  // journal and must land on the identical resident state.
  ServeState revived{VerifyOptions{}};
  ASSERT_TRUE(revived.attach_journal(path, error)) << error;
  Journal::ReplayResult stats;
  ASSERT_TRUE(revived.replay_journal(stats, error)) << error;
  EXPECT_EQ(stats.applied, 2u) << "one kLoadNet + one kApplyDelta";
  EXPECT_FALSE(stats.torn_tail);

  EXPECT_EQ(revived.config_text(), state.config_text());
  const std::size_t n = state.verifier().pecs().pecs.size();
  ASSERT_EQ(revived.verifier().pecs().pecs.size(), n);
  for (std::size_t p = 0; p < n; ++p) {
    EXPECT_EQ(revived.cone_of(p), state.cone_of(p))
        << "cone fingerprint drifted across replay for PEC " << p;
  }
  const VerdictReplyMsg after = revived.query(loop_query());
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_EQ(after.verdict, before.verdict);
  EXPECT_EQ(after.targets, before.targets);
  std::remove(path.c_str());
}

TEST(ServeJournal, ViolatingDeltaSurvivesTheCrash) {
  const std::string path = tmp_path("serve_journal_violation.pkj");
  std::string error;

  ServeState state{VerifyOptions{}};
  ASSERT_TRUE(state.attach_journal(path, error)) << error;
  load_ring(state);
  ASSERT_TRUE(state.apply_delta(loop_delta(), error)) << error;
  const VerdictReplyMsg before = state.query(loop_query());
  ASSERT_TRUE(before.ok) << before.error;
  ASSERT_EQ(static_cast<Verdict>(before.verdict), Verdict::kViolated);
  ASSERT_FALSE(before.violations.empty());

  ServeState revived{VerifyOptions{}};
  ASSERT_TRUE(revived.attach_journal(path, error)) << error;
  Journal::ReplayResult stats;
  ASSERT_TRUE(revived.replay_journal(stats, error)) << error;
  const VerdictReplyMsg after = revived.query(loop_query());
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_EQ(static_cast<Verdict>(after.verdict), Verdict::kViolated);
  EXPECT_EQ(violation_multiset(after), violation_multiset(before))
      << "replay must reproduce the identical violation multiset";
  std::remove(path.c_str());
}

TEST(ServeJournal, LoadCompactsAwayPriorHistory) {
  const std::string path = tmp_path("serve_journal_loadcompact.pkj");
  std::string error;
  ServeState state{VerifyOptions{}};
  ASSERT_TRUE(state.attach_journal(path, error)) << error;
  load_ring(state);
  ASSERT_TRUE(state.apply_delta(loop_delta(), error)) << error;
  load_ring(state);  // a fresh kLoadNet makes the old history dead

  Replayed records;
  Journal::ReplayResult stats;
  ASSERT_TRUE(replay_into(path, records, stats, error)) << error;
  ASSERT_EQ(records.size(), 1u)
      << "an accepted kLoadNet must compact the journal";
  EXPECT_EQ(records[0].first, JournalRecord::kLoadNet);
  std::remove(path.c_str());
}

TEST(ServeJournal, CompactedJournalReplaysToTheSameState) {
  const std::string path = tmp_path("serve_journal_compactstate.pkj");
  std::string error;
  ServeState state{VerifyOptions{}};
  ASSERT_TRUE(state.attach_journal(path, error)) << error;
  load_ring(state);
  ASSERT_TRUE(state.apply_delta(loop_delta(), error)) << error;
  ASSERT_TRUE(state.compact_journal(error)) << error;

  ServeState revived{VerifyOptions{}};
  ASSERT_TRUE(revived.attach_journal(path, error)) << error;
  Journal::ReplayResult stats;
  ASSERT_TRUE(revived.replay_journal(stats, error)) << error;
  EXPECT_EQ(stats.applied, 1u) << "compaction folds the history into one load";
  const std::size_t n = state.verifier().pecs().pecs.size();
  ASSERT_EQ(revived.verifier().pecs().pecs.size(), n);
  for (std::size_t p = 0; p < n; ++p) {
    EXPECT_EQ(revived.cone_of(p), state.cone_of(p)) << "PEC " << p;
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// kill -9 mid-delta-stream: the fork test behind the CI chaos smoke
// ---------------------------------------------------------------------------

TEST(ServeJournal, KillNineMidDeltaStreamRecoversAcknowledgedPrefix) {
  const std::string path = tmp_path("serve_journal_kill9.pkj");

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: journal a load + two acked deltas, then die mid-append of a
    // third — a partial record with no checksum, exactly what a kill -9
    // during write_all leaves behind. _exit skips every destructor, so
    // nothing gets flushed, compacted, or tidied on the way down.
    std::string error;
    ServeState state{VerifyOptions{}};
    if (!state.attach_journal(path, error)) _exit(1);
    if (!state.load(kRing, error)) _exit(1);
    ApplyDeltaMsg d1;
    d1.ops.push_back({true, "static r0 10.2.0.0/24 via r1"});
    if (!state.apply_delta(d1, error)) _exit(1);
    if (!state.apply_delta(loop_delta(), error)) _exit(1);

    ApplyDeltaMsg d3;
    d3.ops.push_back({true, "static r2 10.1.0.0/24 via r3"});
    const std::string payload = encode_apply_delta(d3);
    const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
    if (fd < 0) _exit(1);
    // Half a header + payload, no checksum: genuinely torn.
    std::string torn;
    torn.push_back('\x02');
    torn.push_back('\x00');
    torn.push_back('\x00');
    torn.push_back('\x00');
    torn += payload.substr(0, payload.size() / 2);
    if (::write(fd, torn.data(), torn.size()) !=
        static_cast<ssize_t>(torn.size())) {
      _exit(1);
    }
    _exit(9);
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 9)
      << "child failed before the simulated kill -9 (status " << status << ")";

  // Oracle: the same acked operations applied in-process, no journal.
  std::string error;
  ServeState oracle{VerifyOptions{}};
  load_ring(oracle);
  ApplyDeltaMsg d1;
  d1.ops.push_back({true, "static r0 10.2.0.0/24 via r1"});
  ASSERT_TRUE(oracle.apply_delta(d1, error)) << error;
  ASSERT_TRUE(oracle.apply_delta(loop_delta(), error)) << error;

  ServeState revived{VerifyOptions{}};
  ASSERT_TRUE(revived.attach_journal(path, error)) << error;
  Journal::ReplayResult stats;
  ASSERT_TRUE(revived.replay_journal(stats, error)) << error;
  EXPECT_EQ(stats.applied, 3u) << "load + the two acknowledged deltas";
  EXPECT_TRUE(stats.torn_tail) << "the half-written third delta must be torn";
  EXPECT_GT(stats.dropped_bytes, 0u);

  EXPECT_EQ(revived.config_text(), oracle.config_text());
  const std::size_t n = oracle.verifier().pecs().pecs.size();
  ASSERT_EQ(revived.verifier().pecs().pecs.size(), n);
  for (std::size_t p = 0; p < n; ++p) {
    EXPECT_EQ(revived.cone_of(p), oracle.cone_of(p))
        << "cone fingerprint drifted across crash recovery for PEC " << p;
  }

  const VerdictReplyMsg want = oracle.query(loop_query());
  const VerdictReplyMsg got = revived.query(loop_query());
  ASSERT_TRUE(want.ok && got.ok) << want.error << got.error;
  ASSERT_EQ(static_cast<Verdict>(want.verdict), Verdict::kViolated)
      << "the second acked delta forms the loop — the oracle must see it";
  EXPECT_EQ(static_cast<Verdict>(got.verdict), Verdict::kViolated);
  EXPECT_EQ(violation_multiset(got), violation_multiset(want));

  // Recovery truncated the torn tail, so a post-recovery delta extends a
  // clean journal — and is itself replayable after the *next* crash, rather
  // than being stranded behind unparseable bytes.
  ApplyDeltaMsg revert;
  revert.ops.push_back({false, "static r0 10.3.0.0/24 via r1"});
  revert.ops.push_back({false, "static r1 10.3.0.0/24 via r0"});
  ASSERT_TRUE(revived.apply_delta(revert, error)) << error;
  Replayed records;
  Journal::ReplayResult again;
  ASSERT_TRUE(replay_into(path, records, again, error)) << error;
  EXPECT_FALSE(again.torn_tail);
  EXPECT_EQ(again.applied, 4u)
      << "the post-recovery delta must be reachable to the next replay";
  std::remove(path.c_str());
}

}  // namespace
}  // namespace plankton::serve
