// Explorer options and edge cases: bitstate verdicts, state/time budgets,
// naive-mode withdrawals, per-peer OSPF updates, context separation.
#include <gtest/gtest.h>

#include "core/verifier.hpp"
#include "pec/pec.hpp"
#include "rpvp/explorer.hpp"
#include "workload/fat_tree.hpp"
#include "workload/ring.hpp"

namespace plankton {
namespace {

TEST(ExplorerOptions, BitstateVerdictAgreesOnWorkloads) {
  for (const bool broken : {false, true}) {
    FatTreeOptions o;
    o.k = 4;
    o.statics = broken ? FatTreeOptions::CoreStatics::kBroken
                       : FatTreeOptions::CoreStatics::kMatching;
    const FatTree ft = make_fat_tree(o);
    const LoopFreedomPolicy policy;
    bool verdicts[2];
    for (const bool bitstate : {false, true}) {
      VerifyOptions vo;
      vo.explore.visited =
          bitstate ? VisitedKind::kBitstate : VisitedKind::kExact;
      vo.explore.bloom_bits = 1 << 22;
      Verifier v(ft.net, vo);
      verdicts[bitstate ? 1 : 0] = v.verify(policy).holds;
    }
    EXPECT_EQ(verdicts[0], verdicts[1]) << "broken=" << broken;
  }
}

TEST(ExplorerOptions, StateLimitReportsIncomplete) {
  FatTreeOptions o;
  o.k = 4;
  const FatTree ft = make_fat_tree(o);
  const PecSet pecs = compute_pecs(ft.net);
  const Pec& pec = pecs.pecs[pecs.routed()[0]];
  ExploreOptions opts = ExploreOptions::naive();
  opts.merge_updates = false;
  opts.max_states = 500;
  const LoopFreedomPolicy policy;
  Explorer ex(ft.net, pec, make_tasks(ft.net, pec), policy, opts);
  const ExploreResult r = ex.run();
  EXPECT_TRUE(r.state_limit_hit);
}

TEST(ExplorerOptions, TimeLimitReportsTimeout) {
  FatTreeOptions o;
  o.k = 6;
  const FatTree ft = make_fat_tree(o);
  const PecSet pecs = compute_pecs(ft.net);
  const Pec& pec = pecs.pecs[pecs.routed()[0]];
  ExploreOptions opts = ExploreOptions::naive();
  opts.merge_updates = false;
  opts.time_limit = std::chrono::milliseconds(20);
  const LoopFreedomPolicy policy;
  Explorer ex(ft.net, pec, make_tasks(ft.net, pec), policy, opts);
  const ExploreResult r = ex.run();
  EXPECT_TRUE(r.timed_out);
}

TEST(ExplorerOptions, PerPeerUpdatesMatchMergedVerdicts) {
  // With ECMP merging disabled (per-peer RPVP updates), policy verdicts for
  // reachability must match the merged mode on rings (where ECMP is limited
  // to the antipodal node).
  for (const int n : {4, 5, 6}) {
    const Network net = make_ring(n);
    const ReachabilityPolicy policy({static_cast<NodeId>(n / 2)});
    bool verdicts[2];
    for (const bool merge : {true, false}) {
      VerifyOptions vo;
      vo.explore = merge ? ExploreOptions{} : ExploreOptions::naive();
      vo.explore.merge_updates = merge;
      Verifier v(net, vo);
      verdicts[merge ? 1 : 0] = v.verify(policy).holds;
    }
    EXPECT_EQ(verdicts[0], verdicts[1]) << "ring " << n;
  }
}

TEST(ExplorerOptions, NaiveModeHandlesWithdrawals) {
  // Naive RPVP includes invalid-node withdrawal transitions; on a ring with
  // one failure the exploration must still terminate and find delivery.
  const Network net = make_ring(5);
  const PecSet pecs = compute_pecs(net);
  const Pec& pec = pecs.pecs[pecs.routed()[0]];
  ExploreOptions opts = ExploreOptions::naive();
  opts.merge_updates = false;
  opts.max_failures = 1;
  opts.record_outcomes = true;
  opts.find_all_violations = true;
  const ReachabilityPolicy policy({2});
  Explorer ex(net, pec, make_tasks(net, pec), policy, opts);
  const ExploreResult r = ex.run();
  EXPECT_FALSE(r.timed_out);
  EXPECT_TRUE(r.holds);
  EXPECT_GT(r.outcomes.size(), 1u) << "per-failure-set outcomes";
}

TEST(ExplorerOptions, FindAllViolationsCollectsSeveral) {
  const Network net = make_ring(8);
  VerifyOptions vo;
  vo.explore.max_failures = 2;
  vo.explore.find_all_violations = true;
  vo.explore.suppress_equivalent = false;
  Verifier v(net, vo);
  const ReachabilityPolicy policy({4});
  const VerifyResult r = v.verify(policy);
  ASSERT_FALSE(r.holds);
  std::size_t total = 0;
  for (const auto& rep : r.reports) total += rep.result.violations.size();
  EXPECT_GT(total, 1u);
}

TEST(ExplorerOptions, SuppressionReducesPolicyChecks) {
  // Symmetric ring failures produce equivalent converged states from the
  // policy's perspective; suppression must skip some checks.
  const Network net = make_ring(10);
  VerifyOptions with;
  with.explore.max_failures = 1;
  with.explore.lec_failures = false;  // keep all failure sets
  VerifyOptions without = with;
  without.explore.suppress_equivalent = false;
  const ReachabilityPolicy policy({5});
  const VerifyResult a = Verifier(net, with).verify(policy);
  const VerifyResult b = Verifier(net, without).verify(policy);
  EXPECT_EQ(a.holds, b.holds);
  EXPECT_GT(a.total.suppressed_checks, 0u);
  EXPECT_LT(a.total.policy_checks, b.total.policy_checks);
}

TEST(ExplorerOptions, EmptyTaskListStillChecksStatics) {
  // A PEC carrying only static routes has no protocol phases; the FIB and
  // policy must still be evaluated.
  Network net;
  const NodeId a = net.add_device("a");
  const NodeId b = net.add_device("b");
  net.topo.add_link(a, b);
  StaticRoute sr;
  sr.dst = *Prefix::parse("10.0.0.0/8");
  sr.via_neighbor = b;
  net.device(a).statics.push_back(sr);
  const PecSet pecs = compute_pecs(net);
  const Pec& pec = pecs.pecs[pecs.find(IpAddr(10, 1, 1, 1))];
  auto tasks = make_tasks(net, pec);
  EXPECT_TRUE(tasks.empty());
  const BlackholeFreedomPolicy policy({a});
  Explorer ex(net, pec, std::move(tasks), policy, {});
  const ExploreResult r = ex.run();
  EXPECT_FALSE(r.holds) << "traffic forwarded to b is dropped there";
}

}  // namespace
}  // namespace plankton
