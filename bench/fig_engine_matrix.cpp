// Engine matrix bench: every search engine over a fixed workload basket,
// one timed row per (workload, engine), all reported through the
// PLANKTON_BENCH_JSON emitter (like every bench) so engine-order cost can be
// tracked as part of the perf trajectory.
//
// The exhaustive engines explore the same state set by construction (the
// differential harness proves it); what this bench measures is the *price of
// order*: DFS pays nothing for movement (one apply/undo per tree edge),
// frontier engines pay path replay per pop plus frontier memory. Rows print
// states, transitions (apply count — the replay overhead shows up here), and
// the pending-frontier high-water mark.
//
//   fattree_loop/K=4      OSPF fat tree, loop-freedom policy, all PECs
//   as_failures/AS1755    OSPF AS topology, reachability, <=1 link failure
//   bgp_dc/K=4            RFC 7938 eBGP DC, waypoint, det-node BGP off
//                         (the Fig. 9 worst-case hot-path churn, capped)
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "core/verifier.hpp"
#include "workload/as_topo.hpp"
#include "workload/fat_tree.hpp"

namespace {

using namespace plankton;

constexpr SearchEngineKind kEngines[] = {
    SearchEngineKind::kDfs,
    SearchEngineKind::kBfs,
    SearchEngineKind::kPriority,
    SearchEngineKind::kRandomRestart,
    SearchEngineKind::kSingleExecution,
};

void apply_engine(VerifyOptions& vo, SearchEngineKind kind) {
  // The matrix measures engine order/replay overhead over one fixed state
  // set; POR reduces that set differently per engine (DFS runs source sets,
  // frontier engines sleep masks), so it is pinned off here.
  vo.explore.por = false;
  if (kind == SearchEngineKind::kSingleExecution) {
    vo.explore.simulation = true;
  } else {
    vo.explore.engine_kind = kind;
  }
  vo.explore.engine_seed = 42;
}

void row(const std::string& workload, SearchEngineKind kind,
         const VerifyResult& r) {
  const std::string name = workload + "/" + to_string(kind);
  std::printf("%-34s %10.2f ms  %9llu states  %10llu trans  %7llu frontier\n",
              name.c_str(), bench::ms(r.wall),
              static_cast<unsigned long long>(r.total.states_stored),
              static_cast<unsigned long long>(r.total.states_explored),
              static_cast<unsigned long long>(r.total.frontier_peak));
  bench::emit("fig_engine_matrix", name, bench::ms(r.wall),
              r.total.states_stored, r.total.model_bytes());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) bench::JsonSink::instance().set_path(argv[1]);
  bench::header("fig_engine_matrix",
                "search-engine matrix: DFS vs frontier orders vs simulation");
  const int k = bench::full_scale() ? 6 : 4;

  for (const SearchEngineKind kind : kEngines) {
    FatTreeOptions o;
    o.k = k;
    const FatTree ft = make_fat_tree(o);
    VerifyOptions vo;
    vo.cores = 1;
    apply_engine(vo, kind);
    Verifier verifier(ft.net, bench::assert_unbudgeted(vo));
    const LoopFreedomPolicy policy;
    row("fattree_loop/K=" + std::to_string(k), kind, verifier.verify(policy));
  }

  for (const SearchEngineKind kind : kEngines) {
    AsTopo topo = make_as_topo("AS1755");
    NodeId ingress = topo.backbone[0];
    for (NodeId n = static_cast<NodeId>(topo.backbone.size());
         n < topo.net.topo.node_count(); ++n) {
      if (topo.net.topo.neighbors(n).size() > 1) {
        ingress = n;
        break;
      }
    }
    VerifyOptions vo;
    vo.cores = 1;
    vo.explore.max_failures = 1;
    apply_engine(vo, kind);
    Verifier verifier(topo.net, bench::assert_unbudgeted(vo));
    const ReachabilityPolicy policy({ingress});
    row("as_failures/AS1755", kind, verifier.verify(policy));
  }

  for (const SearchEngineKind kind : kEngines) {
    FatTreeOptions o;
    o.k = 4;
    o.routing = FatTreeOptions::Routing::kBgpRfc7938;
    const FatTree ft = make_fat_tree(o);
    const WaypointPolicy policy({ft.edges.back()}, ft.aggs);
    VerifyOptions vo;
    vo.cores = 1;
    vo.explore.det_nodes_bgp = false;
    vo.explore.suppress_equivalent = false;
    vo.explore.max_states = 50000;
    apply_engine(vo, kind);
    Verifier verifier(ft.net, bench::assert_unbudgeted(vo));
    row("bgp_dc/K=4", kind,
        verifier.verify_address(ft.edge_prefixes[0].addr(), policy));
  }

  std::printf("\npaper_shape: on uncapped rows all exhaustive engines visit\n"
              "identical state counts; frontier engines trade transitions\n"
              "(path replay) and frontier memory for restart/priority order\n"
              "control; the state-capped bgp_dc rows truncate at different\n"
              "frontiers by design.\n");
  return 0;
}
