// Micro-benchmarks (google-benchmark) for the state-hashing substrate —
// the data structures behind §4.4: hash-consed path/route tables, the
// hash-compacted visited set and the bitstate Bloom filter.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "engine/visited.hpp"
#include "netbase/hash.hpp"
#include "protocols/route.hpp"

namespace {

using namespace plankton;

void BM_PathTableCons(benchmark::State& state) {
  for (auto _ : state) {
    PathTable paths;
    PathId p = kEmptyPath;
    for (int i = 0; i < state.range(0); ++i) {
      p = paths.cons(static_cast<NodeId>(i % 64), p);
    }
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PathTableCons)->Arg(64)->Arg(1024);

void BM_PathTableSharedSuffixes(benchmark::State& state) {
  // Interning many paths that share suffixes (the common RPVP pattern).
  for (auto _ : state) {
    PathTable paths;
    PathId spine = kEmptyPath;
    for (int i = 0; i < 32; ++i) spine = paths.cons(static_cast<NodeId>(i), spine);
    for (int i = 0; i < state.range(0); ++i) {
      benchmark::DoNotOptimize(paths.cons(static_cast<NodeId>(100 + i % 512), spine));
    }
    benchmark::DoNotOptimize(paths.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PathTableSharedSuffixes)->Arg(4096);

void BM_RouteIntern(benchmark::State& state) {
  for (auto _ : state) {
    RouteTable routes;
    for (int i = 0; i < state.range(0); ++i) {
      Route r;
      r.path = static_cast<PathId>(2 + i % 128);
      r.metric = static_cast<std::uint32_t>(i % 32);
      benchmark::DoNotOptimize(routes.intern(std::move(r)));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RouteIntern)->Arg(4096);

void BM_VisitedSetInsert(benchmark::State& state) {
  for (auto _ : state) {
    VisitedSet visited;
    std::uint64_t h = 0x1234;
    for (int i = 0; i < state.range(0); ++i) {
      h = hash_mix(h);
      benchmark::DoNotOptimize(visited.insert(h));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VisitedSetInsert)->Arg(1 << 14);

void BM_BloomInsert(benchmark::State& state) {
  for (auto _ : state) {
    BloomFilter bloom(1 << 20);
    std::uint64_t h = 0x9876;
    for (int i = 0; i < state.range(0); ++i) {
      h = hash_mix(h);
      benchmark::DoNotOptimize(bloom.insert(h));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BloomInsert)->Arg(1 << 14);

/// Console output plus a record per run into the shared JSON trajectory
/// (PLANKTON_BENCH_JSON), like every other bench in this directory.
class JsonConsoleReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      plankton::bench::emit("micro_tables", run.benchmark_name(),
                            run.GetAdjustedRealTime() / 1e6,  // ns/iter -> ms
                            static_cast<std::uint64_t>(run.iterations), 0);
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonConsoleReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
