// Perf-trajectory smoke bench: a fixed, fast (<~1 min) workload basket whose
// timed rows are written to BENCH_perf.json — the first point of the
// repo-wide performance trajectory. Every perf-affecting PR re-runs this and
// commits the refreshed JSON, so the history of {time_ms, states, bytes} per
// row is the regression record. Rows (reduced versions of the paper figures
// the hot path matters most for):
//
//   fattree_loop/K=8        fig7a: OSPF fat tree, loop policy, all PECs
//   as_failures/AS1755      fig7d: OSPF AS topology, reachability, <=1 failure
//   bgp_dc_worstcase/K=4    fig9:  BGP DC waypoint, det-node detection off,
//                                  capped state count (pure hot-path churn)
//   fattree_loop/K=8 bfs    the BFS frontier engine on the first workload —
//                                  tracks the snapshot-restore overhead of
//                                  the frontier layer in the trajectory
//   fattree_loop/K=8 shards=2      the same workload through the 2-shard
//                                  multi-process coordinator — tracks the
//                                  fork + wire-protocol overhead
//   bgp_dc_worstcase/K=4 por[-off] the uncapped interleaving-explosion
//                                  workload with dynamic partial-order
//                                  reduction on vs off — the por-off/por
//                                  time ratio is the DPOR win in the
//                                  trajectory (verdicts identical)
//   bgp_dc_worstcase/K=4 budget-*  the same workload under resource budgets:
//                                  budget-slack never trips (its delta vs
//                                  the por row is the governance overhead,
//                                  < 2%), budget-trip is time-to-inconclusive
//                                  under a 100 ms deadline
//
// The ad-cache/dirty-set off rows measure the same workloads with the PR-2
// hot-path optimizations disabled, so their effect is visible inside one
// run of one binary.
#include <cstring>

#include "bench_util.hpp"
#include "core/verifier.hpp"
#include "workload/as_topo.hpp"
#include "workload/fat_tree.hpp"

namespace {

using namespace plankton;

void apply_mode(VerifyOptions& vo, bool optimized) {
  vo.explore.ad_cache = optimized;
  vo.explore.incremental_expand = optimized;
}

const char* mode_tag(bool optimized) { return optimized ? "" : " hotpath-off"; }

void row(const std::string& name, const VerifyResult& r) {
  std::printf("%-36s %10.2f ms  %10llu states  %8.2f MB\n", name.c_str(),
              bench::ms(r.wall),
              static_cast<unsigned long long>(r.total.states_explored),
              bench::mb(r.total.model_bytes()));
  bench::emit("perf_smoke", name, bench::ms(r.wall), r.total.states_explored,
              r.total.model_bytes());
}

}  // namespace

int main(int argc, char** argv) {
  // Default output: BENCH_perf.json in the working directory (override with
  // PLANKTON_BENCH_JSON or argv[1]).
  if (argc > 1) {
    bench::JsonSink::instance().set_path(argv[1]);
  } else if (std::getenv("PLANKTON_BENCH_JSON") == nullptr) {
    bench::JsonSink::instance().set_path("BENCH_perf.json");
  }
  bench::header("perf_smoke", "fixed hot-path basket -> BENCH_perf.json");

  for (const bool optimized : {true, false}) {
    {
      FatTreeOptions o;
      o.k = 8;
      const FatTree ft = make_fat_tree(o);
      VerifyOptions vo;
      vo.cores = 1;
      apply_mode(vo, optimized);
      Verifier verifier(ft.net, bench::assert_unbudgeted(vo));
      const LoopFreedomPolicy policy;
      row(std::string("fattree_loop/K=8") + mode_tag(optimized),
          verifier.verify(policy));
    }
    {
      AsTopo topo = make_as_topo("AS1755");
      NodeId ingress = topo.backbone[0];
      for (NodeId n = static_cast<NodeId>(topo.backbone.size());
           n < topo.net.topo.node_count(); ++n) {
        if (topo.net.topo.neighbors(n).size() > 1) {
          ingress = n;
          break;
        }
      }
      VerifyOptions vo;
      vo.cores = 1;
      vo.explore.max_failures = 1;
      apply_mode(vo, optimized);
      Verifier verifier(topo.net, bench::assert_unbudgeted(vo));
      const ReachabilityPolicy policy({ingress});
      row(std::string("as_failures/AS1755") + mode_tag(optimized),
          verifier.verify(policy));
    }
    {
      FatTreeOptions o;
      o.k = 4;
      o.routing = FatTreeOptions::Routing::kBgpRfc7938;
      const FatTree ft = make_fat_tree(o);
      const WaypointPolicy policy({ft.edges.back()}, ft.aggs);
      VerifyOptions vo;
      vo.cores = 1;
      vo.explore.det_nodes_bgp = false;
      vo.explore.suppress_equivalent = false;
      vo.explore.max_states = 200000;
      apply_mode(vo, optimized);
      Verifier verifier(ft.net, bench::assert_unbudgeted(vo));
      row(std::string("bgp_dc_worstcase/K=4") + mode_tag(optimized),
          verifier.verify_address(ft.edge_prefixes[0].addr(), policy));
    }
  }

  {
    // Batch PEC verification off: the same all-PEC fat-tree workload without
    // class dedup. The gap between this row and fattree_loop/K=8 (dedup on
    // by default) is the class-compression win in the trajectory.
    FatTreeOptions o;
    o.k = 8;
    const FatTree ft = make_fat_tree(o);
    VerifyOptions vo;
    vo.cores = 1;
    vo.pec_dedup = false;
    Verifier verifier(ft.net, bench::assert_unbudgeted(vo));
    const LoopFreedomPolicy policy;
    row("fattree_loop/K=8 dedup-off", verifier.verify(policy));
  }
  {
    // One frontier-engine row: same workload as the first basket entry, BFS
    // order, so the trajectory tracks the frontier layer's restore overhead.
    FatTreeOptions o;
    o.k = 8;
    const FatTree ft = make_fat_tree(o);
    VerifyOptions vo;
    vo.cores = 1;
    vo.explore.engine_kind = SearchEngineKind::kBfs;
    Verifier verifier(ft.net, bench::assert_unbudgeted(vo));
    const LoopFreedomPolicy policy;
    row("fattree_loop/K=8 bfs", verifier.verify(policy));
  }

  {
    // The DPOR pair: the fig9 worst-case BGP workload uncapped, por on vs
    // off. This is the interleaving explosion the sleep/source-set reduction
    // targets; both rows must report the same verdict, and the time ratio is
    // the reduction factor tracked in the trajectory.
    FatTreeOptions o;
    o.k = 4;
    o.routing = FatTreeOptions::Routing::kBgpRfc7938;
    const FatTree ft = make_fat_tree(o);
    const WaypointPolicy policy({ft.edges.back()}, ft.aggs);
    for (const bool por : {true, false}) {
      VerifyOptions vo;
      vo.cores = 1;
      vo.explore.det_nodes_bgp = false;
      vo.explore.suppress_equivalent = false;
      vo.explore.por = por;
      Verifier verifier(ft.net, bench::assert_unbudgeted(vo));
      const VerifyResult r =
          verifier.verify_address(ft.edge_prefixes[0].addr(), policy);
      row(std::string("bgp_dc_worstcase/K=4 por") + (por ? "" : "-off"), r);
      if (por) {
        std::printf("%-36s %10llu pruned  %10llu source sets\n",
                    "  (reduction counters)",
                    static_cast<unsigned long long>(r.total.por_pruned),
                    static_cast<unsigned long long>(r.total.por_source_sets));
      }
    }
  }
  {
    // Resource-governance rows (checker/budget.hpp), deliberately budgeted
    // and labelled so (assert_unbudgeted guards every other row):
    //   budget-slack — the fig9 worst-case workload under budgets wide
    //                  enough to never trip. Its delta vs the plain
    //                  bgp_dc_worstcase row is the governance overhead of
    //                  the amortized budget gate (every 256 checks); the
    //                  claim in docs/architecture.md is < 2%.
    //   budget-trip  — the same workload with a 100 ms deadline: the row's
    //                  time is the time-to-inconclusive (how fast a tripped
    //                  run hands back control), not an exploration time.
    FatTreeOptions o;
    o.k = 4;
    o.routing = FatTreeOptions::Routing::kBgpRfc7938;
    const FatTree ft = make_fat_tree(o);
    const WaypointPolicy policy({ft.edges.back()}, ft.aggs);
    {
      // Best-of-3 for both arms, interleaved: the governance overhead is a
      // counter increment plus a clock read every 256 budget checks, far
      // below run-to-run scheduler noise on this workload, so single-shot
      // deltas would swing either way. Minimum wall per arm isolates it.
      const auto run_once = [&](bool budgeted) {
        VerifyOptions vo;
        vo.cores = 1;
        vo.explore.det_nodes_bgp = false;
        vo.explore.suppress_equivalent = false;
        if (budgeted) {
          vo.budget.deadline = std::chrono::minutes(10);
          vo.budget.max_states = 100000000;
          vo.budget.max_bytes = std::size_t{4} << 30;
        }
        Verifier verifier(ft.net, vo);
        return verifier.verify_address(ft.edge_prefixes[0].addr(), policy);
      };
      VerifyResult best_plain = run_once(false);
      VerifyResult best_slack = run_once(true);
      for (int i = 0; i < 2; ++i) {
        VerifyResult p = run_once(false);
        if (p.wall < best_plain.wall) best_plain = p;
        VerifyResult s = run_once(true);
        if (s.wall < best_slack.wall) best_slack = s;
      }
      row("bgp_dc_worstcase/K=4 budget-slack", best_slack);
      std::printf("  (governance overhead vs unbudgeted, best of 3: %+.2f%%)\n",
                  100.0 * (bench::ms(best_slack.wall) / bench::ms(best_plain.wall) - 1.0));
      if (best_slack.verdict != Verdict::kHolds) {
        std::printf("  WARNING: slack budget tripped (%s) — overhead row "
                    "is measuring a partial run\n",
                    to_string(best_slack.budget_tripped));
      }
    }
    {
      VerifyOptions vo;
      vo.cores = 1;
      vo.explore.det_nodes_bgp = false;
      vo.explore.suppress_equivalent = false;
      vo.budget.deadline = std::chrono::milliseconds(100);
      Verifier verifier(ft.net, vo);
      const VerifyResult r =
          verifier.verify_address(ft.edge_prefixes[0].addr(), policy);
      row("bgp_dc_worstcase/K=4 budget-trip", r);
      std::printf("  (verdict %s, tripped budget: %s)\n",
                  to_string(r.verdict), to_string(r.budget_tripped));
    }
  }
  {
    // One multi-process row: same workload again through the 2-shard
    // coordinator (sched/shard.hpp), so the trajectory tracks the
    // fork + wire-protocol overhead next to the in-process baseline.
    FatTreeOptions o;
    o.k = 8;
    const FatTree ft = make_fat_tree(o);
    VerifyOptions vo;
    vo.shards = 2;
    Verifier verifier(ft.net, bench::assert_unbudgeted(vo));
    const LoopFreedomPolicy policy;
    row("fattree_loop/K=8 shards=2", verifier.verify(policy));
  }
  {
    // Intra-PEC work export: the fig9 worst-case single monster PEC through
    // the shard coordinator with split export armed, next to the identical
    // in-process frontier-engine run. All three rows are deliberately capped
    // ("capped" in the name, explore.max_states on every exploration) so the
    // trajectory tracks the export machinery — bootstrap, split
    // serialization, subtask dispatch, seed-path replay — at bounded cost.
    // The gap is the honest 1-hardware-thread bracket: donated frontier
    // halves lose the donor's visited table and source-set context, so
    // subtasks re-explore shared descendants (this diamond-heavy SPVP graph
    // duplicates ~7x with 4 subtasks). The >=2x multicore target from the
    // cluster-sharding ROADMAP item needs workloads with near-disjoint
    // subtrees or cross-process visited sharing; see docs/architecture.md
    // "Cluster-scale sharding".
    FatTreeOptions o;
    o.k = 4;
    o.routing = FatTreeOptions::Routing::kBgpRfc7938;
    const FatTree ft = make_fat_tree(o);
    const WaypointPolicy policy({ft.edges.back()}, ft.aggs);
    for (const int shards : {0, 2, 4}) {
      VerifyOptions vo;
      vo.cores = 1;
      vo.explore.det_nodes_bgp = false;
      vo.explore.engine_kind = SearchEngineKind::kBfs;
      vo.explore.max_states = 50000;
      if (shards != 0) {
        vo.shards = shards;
        vo.shard_split_export = true;
        vo.shard_export_check_every = 4096;
        vo.shard_export_min_frontier = 256;
        vo.shard_export_max_per_pec = 2;
      }
      Verifier verifier(ft.net, bench::assert_unbudgeted(vo));
      row(shards == 0 ? std::string("bgp_dc_worstcase/K=4 bfs capped")
                      : "bgp_dc_worstcase/K=4 shards=" +
                            std::to_string(shards) + " split-export capped",
          verifier.verify_address(ft.edge_prefixes[0].addr(), policy));
    }
  }

  std::printf("\nwrote perf trajectory records (bench=perf_smoke)\n");
  return 0;
}
