// Figure 7(f): Bonsai-compressed fat trees — control-plane compression as a
// preprocessor for both tools (no failures: Bonsai does not preserve
// failure semantics, paper §5). Reachability and Bounded Path Length from a
// random edge switch, per destination prefix.
//
// Paper shape: Plankton still outperforms Minesweeper by multiple orders of
// magnitude after compression; compression makes both tools' inputs tiny on
// symmetric fabrics.
#include "baselines/smt/encoder.hpp"
#include "bench_util.hpp"
#include "core/verifier.hpp"
#include "eqclass/bonsai.hpp"
#include "workload/fat_tree.hpp"

int main() {
  using namespace plankton;
  bench::header("Figure 7(f)", "Bonsai-compressed fat trees, 8 cores");
  const std::vector<int> ks = bench::full_scale()
                                  ? std::vector<int>{4, 6, 8, 10, 12, 14}
                                  : std::vector<int>{4, 6, 8, 10};
  std::printf("%-8s %-12s %-22s %16s %16s\n", "N", "abstract N", "policy",
              "Minesweeper", "Plankton");

  for (const int k : ks) {
    FatTreeOptions o;
    o.k = k;
    const FatTree ft = make_fat_tree(o);
    const NodeId src = ft.edges[ft.edges.size() / 2];

    // Compress per destination; verify both policies on the quotients.
    std::chrono::nanoseconds pk_reach{0}, pk_len{0}, ms_reach{0}, ms_len{0};
    bool ms_timeout = false;
    std::size_t abstract_nodes = 0;
    for (std::size_t d = 0; d < ft.edge_prefixes.size(); ++d) {
      if (ft.edges[d] == src) continue;
      const BonsaiResult b =
          bonsai_compress_ospf(ft.net, ft.edge_prefixes[d], {{src}});
      abstract_nodes = std::max(abstract_nodes, b.net.topo.node_count());
      const NodeId qsrc = b.abstract_of(src);

      VerifyOptions vo;
      vo.cores = 8;
      {
        bench::WallTimer t;
        Verifier v(b.net, bench::assert_unbudgeted(vo));
        const ReachabilityPolicy p({qsrc});
        (void)v.verify_address(ft.edge_prefixes[d].addr(), p);
        pk_reach += t.elapsed();
      }
      {
        bench::WallTimer t;
        Verifier v(b.net, bench::assert_unbudgeted(vo));
        const BoundedPathLengthPolicy p({qsrc}, 4);
        (void)v.verify_address(ft.edge_prefixes[d].addr(), p);
        pk_len += t.elapsed();
      }
      smt::MsOptions mo;
      mo.budget = bench::baseline_budget();
      {
        smt::MsVerifier ms(b.net, mo);
        const smt::MsResult r = ms.check_reachability(qsrc);
        ms_reach += r.elapsed;
        ms_timeout = ms_timeout || r.timed_out;
      }
      {
        smt::MsVerifier ms(b.net, mo);
        const smt::MsResult r = ms.check_bounded_length(qsrc, 4);
        ms_len += r.elapsed;
        ms_timeout = ms_timeout || r.timed_out;
      }
    }
    std::printf("%-8zu %-12zu %-22s %16s %16s\n", ft.size(), abstract_nodes,
                "Reachability", bench::time_cell(ms_reach, ms_timeout).c_str(),
                bench::time_cell(pk_reach, false).c_str());
    std::printf("%-8zu %-12zu %-22s %16s %16s\n", ft.size(), abstract_nodes,
                "Bounded Path Length", bench::time_cell(ms_len, ms_timeout).c_str(),
                bench::time_cell(pk_len, false).c_str());
    bench::emit("fig7f_bonsai", "N=" + std::to_string(ft.size()) + " reach",
                bench::ms(pk_reach), 0, 0);
    bench::emit("fig7f_bonsai", "N=" + std::to_string(ft.size()) + " boundedlen",
                bench::ms(pk_len), 0, 0);
  }
  std::printf(
      "\npaper_shape: compression shrinks symmetric fabrics to O(k) abstract "
      "nodes; Plankton stays consistently faster than the SMT baseline "
      "on every compressed instance\n");
  return 0;
}
