// Figure 7(g): ARC vs Plankton — all-to-all reachability under at most
// 0/1/2 link failures on fat trees and AS topologies.
//
// Paper shape: Plankton is faster at k=0 and small k (ARC pays its
// per-source-destination-pair model construction); ARC's time is flat in k
// (min-cut computed once, compared against k) while Plankton's grows with
// the failure-choice space; neither disagrees on verdicts.
#include "baselines/arc/arc.hpp"
#include "bench_util.hpp"
#include "core/verifier.hpp"
#include "workload/as_topo.hpp"
#include "workload/fat_tree.hpp"

namespace {

struct Workload {
  std::string name;
  plankton::Network net;
  std::vector<plankton::NodeId> hosts;
  /// Destination addresses for Plankton (one per host); all-to-all means
  /// "every host reaches every other host's address".
  std::vector<plankton::IpAddr> host_addrs;
};

}  // namespace

int main() {
  using namespace plankton;
  bench::header("Figure 7(g)", "ARC vs Plankton, all-to-all reachability, 8 cores");

  std::vector<Workload> workloads;
  const std::vector<int> ks =
      bench::full_scale() ? std::vector<int>{4, 6, 8, 10} : std::vector<int>{4, 6};
  for (const int k : ks) {
    FatTreeOptions o;
    o.k = k;
    FatTree ft = make_fat_tree(o);
    Workload w;
    w.name = "Fat tree (" + std::to_string(ft.size()) + " nodes)";
    w.hosts = ft.edges;
    for (const Prefix& p : ft.edge_prefixes) w.host_addrs.push_back(p.addr());
    w.net = std::move(ft.net);
    workloads.push_back(std::move(w));
  }
  if (bench::full_scale()) {
    for (const char* as_name : {"AS1221", "AS1755"}) {
      AsTopo topo = make_as_topo(as_name);
      Workload w;
      w.name = std::string(as_name) + " (" +
               std::to_string(topo.net.topo.node_count()) + " nodes)";
      // All-to-all over the backbone (paper: all-to-all reachability).
      w.hosts = topo.backbone;
      for (const NodeId h : topo.backbone) {
        w.host_addrs.push_back(topo.net.device(h).loopback);
      }
      w.net = std::move(topo.net);
      workloads.push_back(std::move(w));
    }
  }

  std::printf("%-28s %-8s %14s %14s %10s\n", "Network", "k", "ARC", "Plankton",
              "verdicts");
  for (auto& w : workloads) {
    for (const int k : {0, 1, 2}) {
      arc::ArcVerifier arc_v(w.net);
      bench::WallTimer arc_timer;
      const arc::ArcResult ar =
          arc_v.check_all_to_all({w.hosts.data(), w.hosts.size()}, k);
      const auto arc_time = arc_timer.elapsed();

      VerifyOptions vo;
      vo.cores = 8;
      vo.explore.max_failures = k;
      vo.wall_limit = std::chrono::milliseconds(60000);
      Verifier verifier(w.net, bench::assert_unbudgeted(vo));
      // Same pairs as ARC: every host must reach every host destination.
      std::vector<PecId> targets;
      for (const IpAddr a : w.host_addrs) targets.push_back(verifier.pecs().find(a));
      const ReachabilityPolicy policy({w.hosts.begin(), w.hosts.end()});
      bench::WallTimer pk_timer;
      const VerifyResult pr = verifier.verify_pecs(std::move(targets), policy);
      const auto pk_time = pk_timer.elapsed();

      std::printf("%-28s <=%-6d %14s %14s %10s\n", w.name.c_str(), k,
                  bench::time_cell(arc_time, false).c_str(),
                  bench::time_cell(pk_time, pr.timed_out).c_str(),
                  pr.timed_out ? "?" : ar.holds == pr.holds ? "agree" : "DISAGREE");
      bench::emit("fig7g_arc", w.name + " k=" + std::to_string(k),
                  bench::ms(pk_time), pr.total.states_explored,
                  pr.total.model_bytes());
    }
  }
  std::printf(
      "\npaper_shape: ARC's time is flat in k (min-cut once per pair) while "
      "Plankton's grows with the failure-choice space, as in the paper; "
      "verdicts agree. NOTE: absolute ARC times here are far below the "
      "paper's Java/JGraphT artifact (see EXPERIMENTS.md), so the crossover "
      "favors ARC instead of Plankton at small sizes.\n");
  return 0;
}
