// Figure 7(b): very large fat trees on a single core — loop policy (pass and
// fail variants) over every PEC, and single-IP reachability (one PEC).
//
// Paper shape: Plankton completes networks Minesweeper cannot touch
// (N=500..2205); single-PEC policies (single-IP reachability) are orders of
// magnitude cheaper than whole-header-space policies; time and memory grow
// polynomially with N.
#include <thread>

#include "bench_util.hpp"
#include "core/verifier.hpp"
#include "workload/fat_tree.hpp"

int main() {
  using namespace plankton;
  bench::header("Figure 7(b)", "large fat trees + OSPF, 1 core");
  // k=20,24,28 -> N=500,720,980; full scale adds k=32,36,42 -> 1280,1620,2205.
  const std::vector<int> ks = bench::full_scale()
                                  ? std::vector<int>{20, 24, 28, 32, 36, 42}
                                  : std::vector<int>{12, 16, 20};

  std::printf("%-10s %-10s %16s %12s\n", "N", "policy", "time", "model MB");
  for (const bool fail_case : {false, true}) {
    for (const int k : ks) {
      FatTreeOptions o;
      o.k = k;
      o.statics = fail_case ? FatTreeOptions::CoreStatics::kBroken
                            : FatTreeOptions::CoreStatics::kMatching;
      const FatTree ft = make_fat_tree(o);
      VerifyOptions vo;
      vo.cores = 1;
      Verifier verifier(ft.net, bench::assert_unbudgeted(vo));
      const LoopFreedomPolicy policy;
      const VerifyResult r = verifier.verify(policy);
      const bool ok = r.holds == !fail_case;
      std::printf("N=%-8zu Loop(%s) %16s %12.2f  classes %zu (%zu translated) %s\n",
                  ft.size(), fail_case ? "Fail" : "Pass",
                  bench::time_cell(r.wall, r.timed_out).c_str(),
                  bench::mb(r.total.model_bytes()), r.pec_classes,
                  r.pecs_deduped, ok ? "" : "VERDICT MISMATCH");
      bench::emit("fig7b_large_fattrees",
                  "N=" + std::to_string(ft.size()) + " loop " +
                      (fail_case ? "fail" : "pass"),
                  bench::ms(r.wall), r.total.states_explored,
                  r.total.model_bytes());
      if (!fail_case) {
        // Class-compression ablation: the same all-PEC check without batch
        // PEC verification (one native exploration per edge prefix).
        VerifyOptions ov = vo;
        ov.pec_dedup = false;
        Verifier off_verifier(ft.net, ov);
        const VerifyResult off = off_verifier.verify(policy);
        std::printf("N=%-8zu Loop(Pass, no dedup) %9s %12.2f  dedup speedup %.2fx\n",
                    ft.size(), bench::time_cell(off.wall, off.timed_out).c_str(),
                    bench::mb(off.total.model_bytes()),
                    bench::ms(r.wall) > 0 ? bench::ms(off.wall) / bench::ms(r.wall)
                                          : 0.0);
        bench::emit("fig7b_large_fattrees",
                    "N=" + std::to_string(ft.size()) + " loop pass dedup-off",
                    bench::ms(off.wall), off.total.states_explored,
                    off.total.model_bytes());
      }
    }
  }
  for (const int k : ks) {
    FatTreeOptions o;
    o.k = k;
    const FatTree ft = make_fat_tree(o);
    VerifyOptions vo;
    vo.cores = 1;
    Verifier verifier(ft.net, bench::assert_unbudgeted(vo));
    const ReachabilityPolicy policy({ft.edges.begin(), ft.edges.end()});
    const VerifyResult r =
        verifier.verify_address(ft.edge_prefixes.back().addr(), policy);
    std::printf("N=%-8zu SingleIP   %16s %12.2f %s\n", ft.size(),
                bench::time_cell(r.wall, r.timed_out).c_str(),
                bench::mb(r.total.model_bytes()), r.holds ? "" : "VERDICT MISMATCH");
    bench::emit("fig7b_large_fattrees", "N=" + std::to_string(ft.size()) + " singleip",
                bench::ms(r.wall), r.total.states_explored,
                r.total.model_bytes());
  }
  // Scheduler comparison: the same all-PEC loop check at 8 workers, the
  // work-stealing deques vs the seed's single-ready-list fixed pool.
  std::printf("\n%-10s %-14s %16s %10s\n", "N", "scheduler", "time",
              "speedup");
  for (const int k : ks) {
    FatTreeOptions o;
    o.k = k;
    const FatTree ft = make_fat_tree(o);
    const LoopFreedomPolicy policy;
    double ms_by_kind[2] = {0, 0};
    for (const auto kind : {sched::SchedulerKind::kFixedPool,
                            sched::SchedulerKind::kWorkStealing}) {
      VerifyOptions vo;
      vo.cores = 8;
      vo.scheduler = kind;
      Verifier verifier(ft.net, bench::assert_unbudgeted(vo));
      const VerifyResult r = verifier.verify(policy);
      const bool stealing = kind == sched::SchedulerKind::kWorkStealing;
      ms_by_kind[stealing ? 1 : 0] = bench::ms(r.wall);
      char speedup[32] = "";
      if (stealing && ms_by_kind[1] > 0) {
        std::snprintf(speedup, sizeof(speedup), "%.2fx",
                      ms_by_kind[0] / ms_by_kind[1]);
      }
      std::printf("N=%-8zu %-14s %16s %10s %s\n", ft.size(),
                  sched::to_string(kind),
                  bench::time_cell(r.wall, r.timed_out).c_str(), speedup,
                  r.holds ? "" : "VERDICT MISMATCH");
      bench::emit("fig7b_large_fattrees",
                  "N=" + std::to_string(ft.size()) + " sched=" +
                      sched::to_string(kind),
                  bench::ms(r.wall), r.total.states_explored,
                  r.total.model_bytes());
    }
  }

  // Multi-process sharding: the same all-PEC loop check across worker
  // *process* counts (shard coordinator, sched/shard.hpp), plus the wire
  // traffic the coordinator moved. On a single hardware thread this
  // brackets the fork/IPC overhead; on a real multicore host it is the
  // scaling dimension of the ROADMAP's fig7b trajectory
  // (PLANKTON_BENCH_JSON=fig7b.json ./fig7b_large_fattrees).
  std::printf("\n%-10s %-10s %16s %10s %12s   (%u hardware threads)\n", "N",
              "shards", "time", "speedup", "wire KB",
              std::thread::hardware_concurrency());
  for (const int k : ks) {
    FatTreeOptions o;
    o.k = k;
    const FatTree ft = make_fat_tree(o);
    const LoopFreedomPolicy policy;
    double ms_one_shard = 0;
    for (const int shards : {1, 2, 4}) {
      VerifyOptions vo;
      vo.shards = shards;
      Verifier verifier(ft.net, bench::assert_unbudgeted(vo));
      const VerifyResult r = verifier.verify(policy);
      if (shards == 1) ms_one_shard = bench::ms(r.wall);
      char speedup[32] = "";
      if (shards > 1 && bench::ms(r.wall) > 0) {
        std::snprintf(speedup, sizeof(speedup), "%.2fx",
                      ms_one_shard / bench::ms(r.wall));
      }
      std::printf("N=%-8zu %-10d %16s %10s %12.2f %s\n", ft.size(), shards,
                  bench::time_cell(r.wall, r.timed_out).c_str(), speedup,
                  static_cast<double>(r.shard.bytes_sent +
                                      r.shard.bytes_received) / 1e3,
                  r.holds ? "" : "VERDICT MISMATCH");
      bench::emit("fig7b_large_fattrees",
                  "N=" + std::to_string(ft.size()) + " shards=" +
                      std::to_string(shards),
                  bench::ms(r.wall), r.total.states_explored,
                  r.total.model_bytes());
    }
  }

  std::printf(
      "\npaper_shape: loop checks scale polynomially to thousand-device "
      "fabrics; single-IP reachability is far cheaper than all-PEC loop "
      "checking at every N\n");
  return 0;
}
