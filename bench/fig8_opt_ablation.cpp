// Figure 8: optimization cost/effectiveness — re-running key workloads with
// optimizations disabled or limited.
//
// Paper shape: with all optimizations off, naive model checking fails to
// scale beyond trivial networks (rings of 16 already blow up); disabling the
// link-failure (DEC/LEC) optimization inflates fat-tree failure checks ~15x;
// disabling deterministic-node detection barely affects iBGP (decision
// independence covers it) but is catastrophic for the BGP data center, as is
// disabling policy-based pruning.
#include "bench_util.hpp"
#include "core/verifier.hpp"
#include "workload/as_topo.hpp"
#include "workload/fat_tree.hpp"
#include "workload/ring.hpp"

namespace {

using namespace plankton;

struct Row {
  std::string experiment;
  std::string opts;
  VerifyResult result;
};

void print_row(const Row& r) {
  std::printf("%-34s %-28s %14s %10.2f MB %12llu states%s\n", r.experiment.c_str(),
              r.opts.c_str(),
              bench::time_cell(r.result.wall,
                               r.result.timed_out ||
                                   r.result.total.states_stored == 0 && false)
                  .c_str(),
              bench::mb(r.result.total.model_bytes()),
              static_cast<unsigned long long>(r.result.total.states_stored),
              r.result.timed_out ? "  (budget hit)" : "");
}

VerifyResult run(const Network& net, const Policy& policy, VerifyOptions vo,
                 std::optional<IpAddr> addr = std::nullopt) {
  vo.wall_limit = std::chrono::milliseconds(15000);  // the paper's "> 5 min" cap
  Verifier verifier(net, bench::assert_unbudgeted(vo));
  return addr ? verifier.verify_address(*addr, policy) : verifier.verify(policy);
}

}  // namespace

int main() {
  bench::header("Figure 8", "experiments with optimizations disabled/limited");

  // --- Rings with one failure: All vs None -------------------------------
  // "None" additionally disables ECMP update merging: nodes process one
  // peer's advertisement at a time, exactly as RPVP Algorithm 1 is stated —
  // the paper's unoptimized model with its irrelevant non-determinism.
  for (const int n : {4, 8, 16}) {
    const Network net = make_ring(n);
    const ReachabilityPolicy policy({static_cast<NodeId>(n / 2)});
    VerifyOptions all;
    all.explore.max_failures = 1;
    VerifyOptions none;
    none.explore = ExploreOptions::naive();
    none.explore.merge_updates = false;
    none.explore.max_failures = 1;
    print_row({"Ring OSPF " + std::to_string(n) + " nodes, 1 failure", "All",
               run(net, policy, all)});
    print_row({"Ring OSPF " + std::to_string(n) + " nodes, 1 failure", "None",
               run(net, policy, none)});
  }

  // --- Fat tree 20, no failures: All vs None ------------------------------
  {
    FatTreeOptions o;
    o.k = 4;
    const FatTree ft = make_fat_tree(o);
    const LoopFreedomPolicy policy;
    VerifyOptions all;
    VerifyOptions none;
    none.explore = ExploreOptions::naive();
    none.explore.merge_updates = false;
    print_row({"Fat tree OSPF 20 nodes", "All", run(ft.net, policy, all)});
    print_row({"Fat tree OSPF 20 nodes", "None", run(ft.net, policy, none)});
  }

  // --- Larger fat tree with a failure: All vs no-LEC ----------------------
  {
    FatTreeOptions o;
    o.k = bench::full_scale() ? 14 : 8;
    const FatTree ft = make_fat_tree(o);
    const LoopFreedomPolicy policy;
    VerifyOptions all;
    all.explore.max_failures = 1;
    all.cores = 4;
    VerifyOptions no_lec = all;
    no_lec.explore.lec_failures = false;
    const std::string label =
        "Fat tree OSPF " + std::to_string(ft.size()) + " nodes, 1 failure";
    print_row({label, "All", run(ft.net, policy, all)});
    print_row({label, "All but link-failure opt", run(ft.net, policy, no_lec)});
  }

  // --- iBGP: All vs no deterministic nodes --------------------------------
  {
    AsTopo topo = make_as_topo(bench::full_scale() ? "AS1221" : "ibgp-ablation",
                               bench::full_scale() ? 108 : 40);
    const IbgpOverlay overlay = add_ibgp_mesh(topo);
    const ReachabilityPolicy policy(
        {overlay.speakers.begin(), overlay.speakers.end()});
    VerifyOptions all;
    VerifyOptions no_det = all;
    no_det.explore.det_nodes_bgp = false;  // BGP detection only, as in the paper
    print_row({"AS iBGP over OSPF", "All",
               run(topo.net, policy, all, overlay.external.addr())});
    print_row({"AS iBGP over OSPF", "All but BGP det nodes",
               run(topo.net, policy, no_det, overlay.external.addr())});
  }

  // --- BGP data center: All vs no-det-nodes vs no-policy-pruning ----------
  // Waypoints cover the whole aggregation layer so the policy HOLDS: the
  // checker cannot stop at a first counterexample and the full convergence
  // space matters (the paper's timeout scenario for the disabled variants).
  {
    FatTreeOptions o;
    o.k = bench::full_scale() ? 6 : 4;
    o.routing = FatTreeOptions::Routing::kBgpRfc7938;
    const FatTree ft = make_fat_tree(o);
    // Paper-style pair policy (src edge -> dst rack prefix) with the whole
    // aggregation layer as waypoints, so the policy HOLDS and the checker
    // cannot stop at a first counterexample.
    const WaypointPolicy policy({ft.edges.back()}, ft.aggs);
    const std::string label =
        "Fat tree BGP " + std::to_string(ft.size()) + " nodes, waypoint";
    VerifyOptions all;
    VerifyOptions no_det = all;
    no_det.explore.det_nodes_bgp = false;
    VerifyOptions no_prune = all;
    no_prune.explore.policy_pruning = false;
    no_prune.explore.suppress_equivalent = false;
    print_row({label, "All", run(ft.net, policy, all, ft.edge_prefixes[0].addr())});
    print_row({label, "All but deterministic nodes",
               run(ft.net, policy, no_det, ft.edge_prefixes[0].addr())});
    print_row({label, "All but policy pruning",
               run(ft.net, policy, no_prune, ft.edge_prefixes[0].addr())});
  }

  std::printf(
      "\npaper_shape: naive checking explodes beyond trivial networks (fat "
      "tree 20 already times out); LEC failure reduction gives ~40x on "
      "symmetric fabrics; disabling BGP det-node detection leaves iBGP "
      "unaffected (decision independence covers it) but blows up the "
      "non-deterministic BGP DC; policy pruning is worth ~100x there "
      "(a timeout at the paper's SPIN state granularity)\n");
  return 0;
}
