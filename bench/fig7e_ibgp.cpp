// Figure 7(e): iBGP over OSPF on the AS topologies — the PEC-dependency
// experiment. Packets to the externally-announced prefix resolve through
// loopback routes, so Plankton's dependency-aware scheduler runs the
// loopback PECs first; Minesweeper must model n+1 copies of the network.
//
// Paper shape: multiple orders of magnitude in Plankton's favor; the
// baseline times out on the larger ASes (paper Fig. 7(e) shows 4 of 6
// timeouts).
#include "baselines/smt/encoder.hpp"
#include "bench_util.hpp"
#include "core/verifier.hpp"
#include "workload/as_topo.hpp"

int main() {
  using namespace plankton;
  bench::header("Figure 7(e)", "iBGP over OSPF on AS topologies, reachability");
  const std::vector<std::string> ases =
      bench::full_scale()
          ? std::vector<std::string>{"AS1221", "AS1239", "AS1755",
                                     "AS3257", "AS3967", "AS6461"}
          : std::vector<std::string>{"AS3967", "AS1755"};
  const std::vector<int> cores = {1, 4};

  for (const auto& name : ases) {
    AsTopo topo = make_as_topo(name);
    const IbgpOverlay overlay = add_ibgp_mesh(topo);
    std::printf("\n%s (%zu devices, full iBGP mesh, %zu borders)\n", name.c_str(),
                topo.net.topo.node_count(), overlay.borders.size());

    smt::MsOptions mo;
    mo.budget = bench::baseline_budget();
    smt::MsVerifier ms(topo.net, mo);
    const smt::MsResult mr = ms.check_ibgp_reachability(
        overlay.speakers, overlay.borders);
    std::printf("  %-24s %14s  mem %8.2f MB  (n+1-copies encoding: %llu vars)\n",
                "Minesweeper (1+ cores)",
                bench::time_cell(mr.elapsed, mr.timed_out).c_str(),
                bench::mb(mr.bytes), static_cast<unsigned long long>(mr.vars));

    for (const int c : cores) {
      VerifyOptions vo;
      vo.cores = c;
      Verifier verifier(topo.net, bench::assert_unbudgeted(vo));
      const ReachabilityPolicy policy(
          {overlay.speakers.begin(), overlay.speakers.end()});
      const VerifyResult r = verifier.verify_address(overlay.external.addr(), policy);
      std::printf(
          "  Plankton (%2d core%s)      %14s  mem %8.2f MB  holds=%s "
          "(%zu upstream PECs)\n",
          c, c == 1 ? ") " : "s)", bench::time_cell(r.wall, r.timed_out).c_str(),
          bench::mb(r.total.model_bytes()), r.holds ? "yes" : "no",
          r.pecs_support);
      bench::emit("fig7e_ibgp", name + " cores=" + std::to_string(c),
                  bench::ms(r.wall), r.total.states_explored,
                  r.total.model_bytes());
    }
  }
  std::printf(
      "\npaper_shape: dependency-aware scheduling keeps the problem linear in "
      "N while the baseline's n+1 network copies blow up (timeouts on larger "
      "ASes)\n");
  return 0;
}
