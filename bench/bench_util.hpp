// Shared utilities for the figure-reproduction harnesses.
//
// Every bench prints the same rows/series as the corresponding paper figure
// plus a `paper_shape:` line stating the qualitative claim being reproduced.
// Default sizes are scaled down so the full suite runs in minutes; set
// PLANKTON_BENCH_FULL=1 for paper-scale sizes and PLANKTON_MS_BUDGET_MS to
// change the baseline solver budget (default 10000 ms, standing in for the
// paper's 4-hour Minesweeper timeout).
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace plankton::bench {

inline bool full_scale() {
  const char* v = std::getenv("PLANKTON_BENCH_FULL");
  return v != nullptr && v[0] == '1';
}

inline std::chrono::milliseconds baseline_budget() {
  const char* v = std::getenv("PLANKTON_MS_BUDGET_MS");
  return std::chrono::milliseconds(v != nullptr ? std::atol(v) : 10000);
}

inline double ms(std::chrono::nanoseconds d) {
  return static_cast<double>(d.count()) / 1e6;
}

inline double mb(std::size_t bytes) { return static_cast<double>(bytes) / 1e6; }

/// "12.34 ms" or "TIMEOUT" — the paper prints timeouts as bars at the cap.
inline std::string time_cell(std::chrono::nanoseconds d, bool timed_out) {
  if (timed_out) return "TIMEOUT";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f ms", ms(d));
  return buf;
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] std::chrono::nanoseconds elapsed() const {
    return std::chrono::steady_clock::now() - start_;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void header(const char* figure, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("mode: %s scale (set PLANKTON_BENCH_FULL=1 for paper sizes)\n",
              full_scale() ? "paper" : "reduced");
  std::printf("==============================================================\n");
}

}  // namespace plankton::bench
