// Shared utilities for the figure-reproduction harnesses.
//
// Every bench prints the same rows/series as the corresponding paper figure
// plus a `paper_shape:` line stating the qualitative claim being reproduced.
// Default sizes are scaled down so the full suite runs in minutes; set
// PLANKTON_BENCH_FULL=1 for paper-scale sizes and PLANKTON_MS_BUDGET_MS to
// change the baseline solver budget (default 10000 ms, standing in for the
// paper's 4-hour Minesweeper timeout).
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace plankton::bench {

inline bool full_scale() {
  const char* v = std::getenv("PLANKTON_BENCH_FULL");
  return v != nullptr && v[0] == '1';
}

inline std::chrono::milliseconds baseline_budget() {
  const char* v = std::getenv("PLANKTON_MS_BUDGET_MS");
  return std::chrono::milliseconds(v != nullptr ? std::atol(v) : 10000);
}

inline double ms(std::chrono::nanoseconds d) {
  return static_cast<double>(d.count()) / 1e6;
}

inline double mb(std::size_t bytes) { return static_cast<double>(bytes) / 1e6; }

/// "12.34 ms" or "TIMEOUT" — the paper prints timeouts as bars at the cap.
inline std::string time_cell(std::chrono::nanoseconds d, bool timed_out) {
  if (timed_out) return "TIMEOUT";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f ms", ms(d));
  return buf;
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] std::chrono::nanoseconds elapsed() const {
    return std::chrono::steady_clock::now() - start_;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void header(const char* figure, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("mode: %s scale (set PLANKTON_BENCH_FULL=1 for paper sizes)\n",
              full_scale() ? "paper" : "reduced");
  std::printf("==============================================================\n");
}

// ---------------------------------------------------------------------------
// JSON perf trajectory (PLANKTON_BENCH_JSON=<path>)
//
// Every timed row of every bench reports itself through emit(); when the
// environment variable names a file, the rows are written there as a JSON
// array of {bench, row, time_ms, states, bytes} records at process exit.
// BENCH_perf.json (written by bench/perf_smoke) is the committed trajectory:
// one record set per PR, so regressions show up as diffs.
// ---------------------------------------------------------------------------

struct JsonRecord {
  std::string bench;
  std::string row;
  double time_ms = 0;
  std::uint64_t states = 0;
  std::uint64_t bytes = 0;
};

class JsonSink {
 public:
  static JsonSink& instance() {
    static JsonSink sink;
    return sink;
  }

  /// Overrides the output path (otherwise PLANKTON_BENCH_JSON, else off).
  void set_path(std::string path) { path_ = std::move(path); }

  void add(JsonRecord rec) {
    if (path_.empty()) return;
    records_.push_back(std::move(rec));
  }

  ~JsonSink() { flush(); }

  void flush() {
    if (path_.empty() || records_.empty()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) return;
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const JsonRecord& r = records_[i];
      std::fprintf(f,
                   "  {\"bench\": \"%s\", \"row\": \"%s\", \"time_ms\": %.3f, "
                   "\"states\": %llu, \"bytes\": %llu}%s\n",
                   escape(r.bench).c_str(), escape(r.row).c_str(), r.time_ms,
                   static_cast<unsigned long long>(r.states),
                   static_cast<unsigned long long>(r.bytes),
                   i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
  }

 private:
  JsonSink() {
    const char* p = std::getenv("PLANKTON_BENCH_JSON");
    if (p != nullptr && p[0] != '\0') path_ = p;
  }

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) continue;  // keep rows simple
      out.push_back(c);
    }
    return out;
  }

  std::string path_;
  std::vector<JsonRecord> records_;
};

/// Reports one timed row into the JSON trajectory (no-op when disabled).
inline void emit(const char* bench, const std::string& row, double time_ms,
                 std::uint64_t states, std::uint64_t bytes) {
  JsonSink::instance().add(JsonRecord{bench, row, time_ms, states, bytes});
}

/// Guards a timed row against accidental resource-governance budgets
/// (VerifyOptions::budget, checker/budget.hpp): a tripped budget stops the
/// exploration early, and a silently-truncated row would enter the committed
/// trajectory as a fake speedup. Figure-intrinsic caps (wall_limit timeout
/// bars, the fig9 state caps) are part of a row's definition and stay
/// allowed. Deliberately budgeted rows must label themselves and skip this
/// guard (the perf_smoke "budgeted" rows).
template <typename VerifyOptionsT>
inline const VerifyOptionsT& assert_unbudgeted(const VerifyOptionsT& vo) {
  if (vo.budget.any()) {
    std::fprintf(stderr,
                 "bench: an unlabelled trajectory row carries a resource "
                 "budget; budgeted rows must say so in their name\n");
    std::abort();
  }
  return vo;
}

}  // namespace plankton::bench
