// Figure 7(d): AS topologies (RocketFuel stand-ins) with OSPF, reachability
// of every destination prefix from a random ingress under any single link
// failure — Plankton multi-core vs the Minesweeper-style baseline.
//
// Paper shape: Plankton wins on both time and memory on every topology;
// adding cores helps until a violation is found in the first batch of PECs;
// both tools find a violation in each AS.
#include "baselines/smt/encoder.hpp"
#include "bench_util.hpp"
#include "core/verifier.hpp"
#include "workload/as_topo.hpp"

int main() {
  using namespace plankton;
  bench::header("Figure 7(d)", "AS topologies + OSPF + 1 failure, reachability");
  const std::vector<std::string> ases =
      bench::full_scale()
          ? std::vector<std::string>{"AS1221", "AS1239", "AS1755",
                                     "AS3257", "AS3967", "AS6461"}
          : std::vector<std::string>{"AS1755", "AS3967", "AS1221"};
  const std::vector<int> cores = {1, 2, 4, 8};

  for (const auto& name : ases) {
    AsTopo topo = make_as_topo(name);
    // Ingress: first dual-homed PoP (as in the paper: random ingress with
    // more than one incident link).
    NodeId ingress = topo.backbone[0];
    for (NodeId n = static_cast<NodeId>(topo.backbone.size());
         n < topo.net.topo.node_count(); ++n) {
      if (topo.net.topo.neighbors(n).size() > 1) {
        ingress = n;
        break;
      }
    }
    std::printf("\n%s (%zu devices, %zu links), ingress %s\n", name.c_str(),
                topo.net.topo.node_count(), topo.net.topo.link_count(),
                topo.net.topo.name(ingress).c_str());

    smt::MsOptions mo;
    mo.max_failures = 1;
    mo.budget = bench::baseline_budget();
    smt::MsVerifier ms(topo.net, mo);
    const smt::MsResult mr = ms.check_reachability(ingress);
    std::printf("  %-24s %14s  mem %8.2f MB  holds=%s\n", "Minesweeper (1+ cores)",
                bench::time_cell(mr.elapsed, mr.timed_out).c_str(),
                bench::mb(mr.bytes), mr.timed_out ? "?" : mr.holds ? "yes" : "no");
    bench::emit("fig7d_as_failures", name + " minesweeper", bench::ms(mr.elapsed),
                0, mr.bytes);

    for (const int c : cores) {
      VerifyOptions vo;
      vo.cores = c;
      vo.explore.max_failures = 1;
      Verifier verifier(topo.net, bench::assert_unbudgeted(vo));
      const ReachabilityPolicy policy({ingress});
      const VerifyResult r = verifier.verify(policy);
      std::printf("  Plankton (%2d core%s)      %14s  mem %8.2f MB  holds=%s\n", c,
                  c == 1 ? ") " : "s)", bench::time_cell(r.wall, r.timed_out).c_str(),
                  bench::mb(r.total.model_bytes()), r.holds ? "yes" : "no");
      bench::emit("fig7d_as_failures", name + " cores=" + std::to_string(c),
                  bench::ms(r.wall), r.total.states_explored,
                  r.total.model_bytes());
    }
  }
  std::printf(
      "\npaper_shape: Plankton consistently faster and smaller than "
      "Minesweeper; both report the same verdict per AS (violations exist "
      "for single-homed PoPs)\n");
  return 0;
}
