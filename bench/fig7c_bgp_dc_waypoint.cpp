// Figure 7(c): RFC 7938 BGP data centers with a waypoint misconfiguration —
// the high-non-determinism experiment. Age-based tie-breaking makes the
// chosen path depend on advertisement order; Plankton enumerates convergence
// orders (policy-based pruning collapses the equivalent ones) and finds a
// violating event sequence.
//
// Paper shape: worst-case time stays under seconds even at hundreds of
// devices because policy-based pruning + deterministic-node detection prune
// the irrelevant interleavings; a violation is found in every run.
#include "bench_util.hpp"
#include "core/verifier.hpp"
#include "netbase/hash.hpp"
#include "workload/fat_tree.hpp"

int main() {
  using namespace plankton;
  bench::header("Figure 7(c)", "fat trees + BGP (RFC 7938), waypoint policy, 1 core");
  const std::vector<int> ks = bench::full_scale()
                                  ? std::vector<int>{4, 6, 8, 10, 12, 14, 16}
                                  : std::vector<int>{4, 6, 8, 10};
  std::printf("%-10s %12s %12s %12s %12s  %s\n", "devices", "max time", "avg time",
              "max MB", "avg MB", "violations");

  for (const int k : ks) {
    FatTreeOptions o;
    o.k = k;
    o.routing = FatTreeOptions::Routing::kBgpRfc7938;
    const FatTree ft = make_fat_tree(o);

    double max_ms = 0, sum_ms = 0, max_mb = 0, sum_mb = 0;
    int violations = 0;
    const int trials = 5;
    std::uint64_t seed = 0xc0ffee + k;
    for (int trial = 0; trial < trials; ++trial) {
      // Random waypoint subset of the aggregation layer; the policy is
      // between two edge switches, as in the paper ("the path between two
      // edge switches should pass through one of the waypoints").
      std::vector<NodeId> waypoints;
      for (std::size_t a = 0; a < ft.aggs.size(); ++a) {
        seed = hash_mix(seed + a);
        if ((seed & 3) == 0) waypoints.push_back(ft.aggs[a]);
      }
      if (waypoints.empty()) waypoints.push_back(ft.aggs[0]);
      seed = hash_mix(seed);
      const NodeId src = ft.edges[1 + seed % (ft.edges.size() - 1)];
      const WaypointPolicy policy({src}, waypoints);

      VerifyOptions vo;
      vo.cores = 1;
      Verifier verifier(ft.net, bench::assert_unbudgeted(vo));
      const VerifyResult r =
          verifier.verify_address(ft.edge_prefixes[0].addr(), policy);
      if (!r.holds) ++violations;
      const double t = bench::ms(r.wall);
      const double m = bench::mb(r.total.model_bytes());
      max_ms = std::max(max_ms, t);
      sum_ms += t;
      max_mb = std::max(max_mb, m);
      sum_mb += m;
    }
    std::printf("%-10zu %9.2f ms %9.2f ms %9.2f MB %9.2f MB  %d/%d\n", ft.size(),
                max_ms, sum_ms / trials, max_mb, sum_mb / trials, violations,
                trials);
    bench::emit("fig7c_bgp_dc_waypoint", "N=" + std::to_string(ft.size()) + " max",
                max_ms, 0, static_cast<std::uint64_t>(max_mb * 1e6));
    bench::emit("fig7c_bgp_dc_waypoint", "N=" + std::to_string(ft.size()) + " avg",
                sum_ms / trials, 0, 0);
  }
  // Whole-header-space pass variant: reachability from one edge switch over
  // *every* edge-prefix PEC of the same RFC 7938 fabric. Fixing the source
  // still leaves the automorphisms that permute the remaining pods, so batch
  // PEC verification collapses same-pod edge PECs into shared classes — the
  // class-ratio column. (The violating waypoint trials above stop at the
  // first counterexample, where there is nothing for dedup to share.)
  std::printf("\nall-PEC reachability, batch PEC verification on vs off\n");
  std::printf("%-10s %12s %12s %10s %10s\n", "devices", "dedup on", "dedup off",
              "classes", "speedup");
  for (const int k : ks) {
    if (k > 8 && !bench::full_scale()) break;  // whole space: k^2/2 PECs
    FatTreeOptions o;
    o.k = k;
    o.routing = FatTreeOptions::Routing::kBgpRfc7938;
    const FatTree ft = make_fat_tree(o);
    const ReachabilityPolicy policy({ft.edges[1]});
    double wall[2] = {0, 0};
    std::size_t classes = 0, pecs = 0;
    for (const bool dedup : {true, false}) {
      VerifyOptions vo;
      vo.cores = 1;
      vo.pec_dedup = dedup;
      Verifier verifier(ft.net, bench::assert_unbudgeted(vo));
      const VerifyResult r = verifier.verify(policy);
      wall[dedup ? 0 : 1] = bench::ms(r.wall);
      if (dedup) {
        classes = r.pec_classes;
        pecs = r.pecs_verified;
      }
      bench::emit("fig7c_bgp_dc_waypoint",
                  "N=" + std::to_string(ft.size()) + " allpec" +
                      (dedup ? "" : " dedup-off"),
                  bench::ms(r.wall), r.total.states_explored,
                  r.total.model_bytes());
    }
    std::printf("%-10zu %9.2f ms %9.2f ms %4zu/%-5zu %9.2fx\n", ft.size(),
                wall[0], wall[1], classes, pecs,
                wall[0] > 0 ? wall[1] / wall[0] : 0.0);
  }
  std::printf(
      "\npaper_shape: worst-case time stays ~seconds as device count grows; "
      "violating event sequences found (misconfigured fabric bypasses "
      "waypoints under some advertisement orders)\n");
  return 0;
}
