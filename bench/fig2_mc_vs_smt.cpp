// Figure 2: two ways to compute shortest paths — explicit-state model
// checking (direct protocol execution) vs a general-purpose constraint
// solver (SMT-style, bit-blasted into CNF).
//
// Paper shape: the model checker is orders of magnitude faster (≈12,000× at
// N=180) and the gap widens with network size.
#include "baselines/smt/encoder.hpp"
#include "bench_util.hpp"
#include "core/verifier.hpp"
#include "workload/fat_tree.hpp"

int main() {
  using namespace plankton;
  bench::header("Figure 2", "shortest paths: model checker vs SMT, fat trees");
  std::printf("%-8s %-8s %16s %16s %10s\n", "N", "k", "model checker", "SMT",
              "speedup");

  const std::vector<int> ks =
      bench::full_scale() ? std::vector<int>{4, 6, 8, 12}   // N=20,45,80,180
                          : std::vector<int>{4, 6, 8, 12};  // same: cheap enough
  for (const int k : ks) {
    FatTreeOptions o;
    o.k = k;
    const FatTree ft = make_fat_tree(o);
    const NodeId origin = ft.edges[0];

    // Model checker side: one deterministic RPVP execution of the OSPF
    // control plane for the origin's prefix (what SPIN does for the paper's
    // Bellman-Ford model).
    bench::WallTimer mc_timer;
    Verifier verifier(ft.net, {});
    const LoopFreedomPolicy policy;  // forces full convergence of the PEC
    const VerifyResult mc = verifier.verify_address(ft.edge_prefixes[0].addr(), policy);
    const auto mc_time = mc_timer.elapsed();

    // SMT side: the same single-source shortest-path problem as constraints.
    smt::MsOptions mo;
    mo.budget = bench::baseline_budget();
    smt::MsVerifier ms(ft.net, mo);
    std::vector<std::uint32_t> costs;
    bench::WallTimer smt_timer;
    const smt::MsResult sr = ms.solve_shortest_paths(origin, costs);
    const auto smt_time = smt_timer.elapsed();

    // Cross-check the two computations agree (when the solver finished).
    if (!sr.timed_out && mc.holds) {
      const std::vector<NodeId> origins{origin};
      const auto expected =
          shortest_path_costs(ft.net.topo, origins, ft.net.topo.no_failures());
      for (std::size_t i = 0; i < costs.size(); ++i) {
        if (costs[i] != expected[i]) {
          std::printf("DISAGREEMENT at node %zu!\n", i);
          return 1;
        }
      }
    }
    const double speedup = sr.timed_out
                               ? 0.0
                               : static_cast<double>(smt_time.count()) /
                                     static_cast<double>(std::max<long long>(
                                         mc_time.count(), 1));
    std::printf("N=%-6zu k=%-6d %16s %16s %9.0fx\n", ft.size(), k,
                bench::time_cell(mc_time, false).c_str(),
                bench::time_cell(smt_time, sr.timed_out).c_str(), speedup);
  }
  std::printf(
      "\npaper_shape: model checker >=100x faster than SMT at every size and "
      "the ratio grows with N (paper: ~12000x at N=180)\n");
  return 0;
}
