// Figure 9: the effect of bitstate hashing (Bloom-filter visited set) on
// memory usage.
//
// Paper shape: bitstate hashing cuts visited-set memory by ~2-3x on the
// BGP data-center and AS fault-tolerance workloads, at a small coverage
// risk (the paper reports >99.9% coverage; verdicts agree in practice).
#include "bench_util.hpp"
#include "core/verifier.hpp"
#include "workload/as_topo.hpp"
#include "workload/fat_tree.hpp"

namespace {

using namespace plankton;

/// Runs both visited-set modes. When `state_cap` > 0 the exploration is cut
/// at the same state count in both modes so the memory comparison is
/// apples-to-apples on big state spaces (verdicts are then not meaningful).
void run_case(const char* label, const Network& net, const Policy& policy,
              IpAddr addr, const VerifyOptions& base, std::uint64_t state_cap) {
  bool verdict[2] = {false, false};
  double visited_mb[2] = {0, 0};
  double time_ms[2] = {0, 0};
  std::uint64_t states[2] = {0, 0};
  for (const bool bitstate : {false, true}) {
    VerifyOptions vo = base;
    // POR only runs under the exact backend (a Bloom false positive would
    // keep a state asleep); pin it off so the memory comparison stays
    // apples-to-apples over the same explored set.
    vo.explore.por = false;
    vo.explore.visited =
        bitstate ? VisitedKind::kBitstate : VisitedKind::kExact;
    vo.explore.bloom_bits = std::size_t{1} << 22;
    vo.explore.max_states = state_cap;
    Verifier verifier(net, bench::assert_unbudgeted(vo));
    const VerifyResult r = verifier.verify_address(addr, policy);
    verdict[bitstate ? 1 : 0] = r.holds;
    visited_mb[bitstate ? 1 : 0] = bench::mb(r.total.bytes_visited);
    time_ms[bitstate ? 1 : 0] = bench::ms(r.wall);
    states[bitstate ? 1 : 0] = r.total.states_stored;
    // `states` is states_explored in every bench's records (fig9's printed
    // table shows states_stored, which bitstate mode legitimately shrinks).
    bench::emit("fig9_bitstate",
                std::string(label) + (bitstate ? " bitstate" : " exact"),
                bench::ms(r.wall), r.total.states_explored,
                r.total.bytes_visited);
  }
  std::printf("%-46s %10.2f MB %10.2f MB  %6.2fx  %s\n", label, visited_mb[0],
              visited_mb[1],
              visited_mb[1] > 0 ? visited_mb[0] / visited_mb[1] : 0.0,
              state_cap != 0          ? "(capped run)"
              : verdict[0] == verdict[1] ? "verdicts agree"
                                         : "VERDICTS DIFFER (coverage loss)");
  std::printf("%-46s %10.2f ms %10.2f ms   (%llu / %llu states)\n", "",
              time_ms[0], time_ms[1], static_cast<unsigned long long>(states[0]),
              static_cast<unsigned long long>(states[1]));
}

}  // namespace

int main() {
  bench::header("Figure 9", "bitstate hashing: exact visited set vs Bloom filter");
  std::printf("%-46s %13s %13s %8s\n", "experiment", "no bitstate", "bitstate",
              "ratio");

  // Large state spaces: the BGP DC waypoint exploration with BGP det-node
  // detection disabled (the paper's worst-case convergence enumeration),
  // identical exploration in both modes via a shared state cap.
  for (const int k : {4, bench::full_scale() ? 8 : 6}) {
    FatTreeOptions o;
    o.k = k;
    o.routing = FatTreeOptions::Routing::kBgpRfc7938;
    const FatTree ft = make_fat_tree(o);
    const WaypointPolicy policy({ft.edges.back()}, ft.aggs);
    VerifyOptions base;
    base.cores = 1;
    base.explore.det_nodes_bgp = false;
    base.explore.suppress_equivalent = false;
    const std::string label =
        std::to_string(ft.size()) + " node BGP DC waypoint (worst case)";
    run_case(label.c_str(), ft.net, policy, ft.edge_prefixes[0].addr(), base,
             400000);
  }

  // Uncapped agreement check: fault tolerance on AS topologies — bitstate
  // coverage in practice does not change the verdict (paper: >99.9%).
  for (const char* as_name : {"AS1221", "AS3967"}) {
    AsTopo topo = make_as_topo(as_name);
    const ReachabilityPolicy policy({topo.backbone[0]});
    VerifyOptions base;
    base.cores = 1;
    base.explore.max_failures = 1;
    const std::string label = std::string(as_name) + " fault tolerance (1 core)";
    run_case(label.c_str(), topo.net, policy, topo.loopbacks.back().addr(), base,
             0);
  }

  std::printf(
      "\npaper_shape: bitstate hashing cuts visited-set memory by a large "
      "factor on state-heavy runs (paper: 202 MB -> 67 MB on the 180-node "
      "DC) and leaves verdicts unchanged on the uncapped runs\n");
  return 0;
}
