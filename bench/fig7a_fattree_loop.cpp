// Figure 7(a): fat trees with OSPF + static routes at the cores, loop
// policy, Plankton on 1..n cores vs the Minesweeper-style baseline.
//
// Paper shape: Plankton beats Minesweeper at every size even on one core,
// by several orders of magnitude on larger fabrics; Plankton time shrinks
// with added cores; Plankton memory stays below the baseline's.
#include "baselines/smt/encoder.hpp"
#include "bench_util.hpp"
#include "core/verifier.hpp"
#include "workload/fat_tree.hpp"

int main() {
  using namespace plankton;
  bench::header("Figure 7(a)", "fat trees + OSPF, loop policy, multi-core");

  const std::vector<int> ks = bench::full_scale()
                                  ? std::vector<int>{10, 12, 14}
                                  : std::vector<int>{4, 6, 8};
  const std::vector<int> cores = {1, 2, 4, 8};

  for (const bool fail_case : {false, true}) {
    for (const int k : ks) {
      FatTreeOptions o;
      o.k = k;
      o.statics = fail_case ? FatTreeOptions::CoreStatics::kBroken
                            : FatTreeOptions::CoreStatics::kMatching;
      const FatTree ft = make_fat_tree(o);
      std::printf("\nK=%d (%zu devices) — %s case\n", k, ft.size(),
                  fail_case ? "Fail" : "Pass");

      smt::MsOptions mo;
      mo.budget = bench::baseline_budget();
      smt::MsVerifier ms(ft.net, mo);
      const smt::MsResult mr = ms.check_loop();
      std::printf("  %-24s %14s  mem %8.2f MB  %s\n", "Minesweeper (1+ cores)",
                  bench::time_cell(mr.elapsed, mr.timed_out).c_str(),
                  bench::mb(mr.bytes),
                  mr.holds == !fail_case || mr.timed_out ? "" : "VERDICT MISMATCH");
      bench::emit("fig7a_fattree_loop",
                  "K=" + std::to_string(k) + (fail_case ? " fail" : " pass") +
                      " minesweeper",
                  bench::ms(mr.elapsed), 0, mr.bytes);

      double dedup_ms = 0;
      for (const int c : cores) {
        VerifyOptions vo;
        vo.cores = c;
        Verifier verifier(ft.net, bench::assert_unbudgeted(vo));
        const LoopFreedomPolicy policy;
        const VerifyResult r = verifier.verify(policy);
        const bool expected = !fail_case;
        char classes[48] = "";
        if (c == 1) {
          dedup_ms = bench::ms(r.wall);
          std::snprintf(classes, sizeof(classes), "classes %zu (%zu translated)",
                        r.pec_classes, r.pecs_deduped);
        }
        std::printf("  Plankton (%2d core%s)      %14s  mem %8.2f MB  %s %s\n", c,
                    c == 1 ? ") " : "s)", bench::time_cell(r.wall, false).c_str(),
                    bench::mb(r.total.model_bytes()), classes,
                    r.holds == expected ? "" : "VERDICT MISMATCH");
        bench::emit("fig7a_fattree_loop",
                    "K=" + std::to_string(k) + (fail_case ? " fail" : " pass") +
                        " cores=" + std::to_string(c),
                    bench::ms(r.wall), r.total.states_explored,
                    r.total.model_bytes());
      }
      {
        // Batch PEC verification off: the dedup-on gap at 1 core is the
        // class-compression win (pass case: all edge PECs share one class).
        VerifyOptions vo;
        vo.cores = 1;
        vo.pec_dedup = false;
        Verifier verifier(ft.net, bench::assert_unbudgeted(vo));
        const LoopFreedomPolicy policy;
        const VerifyResult r = verifier.verify(policy);
        std::printf("  Plankton (no dedup)      %14s  mem %8.2f MB  dedup speedup %.2fx\n",
                    bench::time_cell(r.wall, false).c_str(),
                    bench::mb(r.total.model_bytes()),
                    dedup_ms > 0 ? bench::ms(r.wall) / dedup_ms : 0.0);
        bench::emit("fig7a_fattree_loop",
                    "K=" + std::to_string(k) + (fail_case ? " fail" : " pass") +
                        " cores=1 dedup-off",
                    bench::ms(r.wall), r.total.states_explored,
                    r.total.model_bytes());
      }
    }
  }
  std::printf(
      "\npaper_shape: Plankton faster than Minesweeper at every K even on 1 "
      "core; gap grows with K; fail cases terminate at the first "
      "counterexample\n");
  return 0;
}
