// Delta-replay bench for the plankton_serve verdict cache (the PR-8
// verification-as-a-service acceptance run): a K=6 OSPF fat tree (45
// devices, 18 edge /24 PECs, link costs perturbed so every PEC is its own
// dedup class and the cold baseline is honest) goes resident in a ServeState,
// then a replay of 18 single-prefix static-route deltas re-queries loop
// freedom after each one.
//
// Claims checked (and recorded in BENCH_serve.json):
//   · each delta moves exactly one PEC: the other 17 stay cache hits, so the
//     non-moved hit ratio across the replay is 17/18 ≈ 94% (>= 90% floor);
//   · the p50 post-delta re-verify latency sits >= 5x below the cold full
//     run (only the moved PEC explores);
//   · a violating delta (mutually-pointing statics: a forwarding loop) is
//     caught through the cache path — hits never mask it — and the verdict +
//     violation set is identical to fresh dedup-off and por-off full
//     verifications of the same config (the differential arms);
//   · cached verdicts equal fresh verification bit-for-bit: re-querying the
//     warm cache and fresh arms agree on every probe;
//   · crash durability: a simulated kill -9 (no compaction, no shutdown
//     save) followed by a PKJ1 journal replay rebuilds every dependency-cone
//     fingerprint bit-identically, warm-starts from the persisted cache, and
//     reproduces the delta-replay hit ratio (17/18 ≈ 94.4%) post-crash.
//
// Output: BENCH_serve.json (override with argv[1] or PLANKTON_BENCH_JSON).
// Exit code 0 when every claim holds, 1 otherwise.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "serve/journal.hpp"
#include "serve/serve.hpp"
#include "workload/fat_tree.hpp"

namespace {

using namespace plankton;
using namespace plankton::serve;

int failures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    ++failures;
    std::printf("FAIL: %s\n", what.c_str());
  }
}

VerifyOptions bench_opts() {
  VerifyOptions vo;
  // Deterministic violation sets across engines/arms (SKILL gotcha: without
  // find-all, the first violation found is interleaving-order dependent).
  vo.explore.find_all_violations = true;
  return bench::assert_unbudgeted(vo);
}

std::string viol_key(const ViolationText& v) { return v.pec + "|" + v.message; }

std::vector<std::string> viol_set(const VerdictReplyMsg& r) {
  std::vector<std::string> out;
  for (const ViolationText& v : r.violations) out.push_back(viol_key(v));
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    bench::JsonSink::instance().set_path(argv[1]);
  } else if (std::getenv("PLANKTON_BENCH_JSON") == nullptr) {
    bench::JsonSink::instance().set_path("BENCH_serve.json");
  }
  bench::header("fig_serve_deltas",
                "serve daemon delta replay -> BENCH_serve.json");

  FatTreeOptions o;
  o.k = 6;
  FatTree ft = make_fat_tree(o);
  // Perturb link costs deterministically: symmetry would let dedup collapse
  // the 18 PECs to one class and flatter the cold baseline.
  for (LinkId l = 0; l < ft.net.topo.link_count(); ++l) {
    const std::uint32_t c = 10 + (l * 7) % 11;
    ft.net.topo.set_link_cost(l, c, c);
  }
  const std::string config = render_config(ft.net);
  const int half = o.k / 2;

  // Cache + journal live for the crash-recovery arm at the end: the journal
  // records every accepted load/delta, the cache file is the warm-start
  // source the revived daemon hits against.
  const std::string tag = std::to_string(::getpid());
  const std::string cache_path = "/tmp/plankton_serve_bench_" + tag + ".pkc";
  const std::string journal_path = "/tmp/plankton_serve_bench_" + tag + ".pkj";
  std::remove(cache_path.c_str());
  std::remove(journal_path.c_str());

  ServeState state{bench_opts(), cache_path};
  std::string error;
  if (!state.attach_journal(journal_path, error)) {
    std::printf("FAIL: journal: %s\n", error.c_str());
    return 1;
  }
  if (!state.load(config, error)) {
    std::printf("FAIL: load: %s\n", error.c_str());
    return 1;
  }
  QueryMsg loop;
  loop.policy_spec = "loop";

  const VerdictReplyMsg cold = state.query(loop);
  const double cold_ms = static_cast<double>(cold.wall_ns) / 1e6;
  check(cold.ok && static_cast<Verdict>(cold.verdict) == Verdict::kHolds,
        "cold run holds");
  check(cold.reverified == ft.edge_prefixes.size(), "cold run explores all PECs");
  std::printf("%-44s %10.2f ms  %2llu/%llu reverified\n", "cold_full_run",
              cold_ms, static_cast<unsigned long long>(cold.reverified),
              static_cast<unsigned long long>(cold.targets));
  bench::emit("fig_serve_deltas", "cold_full_run", cold_ms, cold.reverified, 0);

  const VerdictReplyMsg warm = state.query(loop);
  check(warm.cache_hits == warm.targets && warm.reverified == 0,
        "warm re-query is all hits");
  bench::emit("fig_serve_deltas", "warm_all_hits",
              static_cast<double>(warm.wall_ns) / 1e6, warm.cache_hits, 0);

  // ------------------------------------------------------------------
  // Delta replay: one benign static per edge prefix. "static agg-P-0
  // <prefix> via edge-P-e" replicates the OSPF next hop (the agg is directly
  // attached to the originating edge), so the policy keeps holding — but the
  // PEC's fingerprint moves and exactly it re-verifies.
  // ------------------------------------------------------------------
  std::uint64_t replay_hits = 0;
  std::uint64_t replay_targets = 0;
  std::vector<double> delta_ms;
  for (std::size_t r = 0; r < ft.edge_prefixes.size(); ++r) {
    const int pod = static_cast<int>(r) / half;
    const int e = static_cast<int>(r) % half;
    ApplyDeltaMsg delta;
    delta.ops.push_back({true, "static agg-" + std::to_string(pod) + "-0 " +
                                   ft.edge_prefixes[r].str() + " via edge-" +
                                   std::to_string(pod) + "-" +
                                   std::to_string(e)});
    if (!state.apply_delta(delta, error)) {
      std::printf("FAIL: delta %zu: %s\n", r, error.c_str());
      return 1;
    }
    check(state.last_moved() == 1,
          "delta " + std::to_string(r) + " moves exactly one PEC (moved=" +
              std::to_string(state.last_moved()) + ")");
    const VerdictReplyMsg reply = state.query(loop);
    check(reply.ok && static_cast<Verdict>(reply.verdict) == Verdict::kHolds,
          "delta " + std::to_string(r) + " still holds");
    check(reply.reverified == 1 && reply.cache_hits == reply.targets - 1,
          "delta " + std::to_string(r) + " re-verifies only the moved PEC");
    replay_hits += reply.cache_hits;
    replay_targets += reply.targets;
    const double t = static_cast<double>(reply.wall_ns) / 1e6;
    delta_ms.push_back(t);
    char row[64];
    std::snprintf(row, sizeof row, "delta_%02zu hits=%llu/%llu", r,
                  static_cast<unsigned long long>(reply.cache_hits),
                  static_cast<unsigned long long>(reply.targets));
    bench::emit("fig_serve_deltas", row, t, reply.cache_hits, reply.reverified);
  }

  std::sort(delta_ms.begin(), delta_ms.end());
  const double p50 = delta_ms[delta_ms.size() / 2];
  const double p99 = delta_ms.back();
  const double hit_ratio =
      100.0 * static_cast<double>(replay_hits) / static_cast<double>(replay_targets);
  const double speedup = cold_ms / p50;
  std::printf("%-44s %9.1f %%\n", "non-moved hit ratio", hit_ratio);
  std::printf("%-44s %10.2f ms (p99 %.2f ms)\n", "p50 delta re-verify", p50, p99);
  std::printf("%-44s %9.1f x\n", "cold / p50 speedup", speedup);
  bench::emit("fig_serve_deltas", "hit_ratio_nonmoved_pct", hit_ratio,
              replay_hits, replay_targets);
  bench::emit("fig_serve_deltas", "p50_delta_ms", p50, 0, 0);
  bench::emit("fig_serve_deltas", "cold_over_p50_speedup_x", speedup, 0, 0);
  check(hit_ratio >= 90.0, "hit ratio >= 90%");
  check(speedup >= 5.0, "p50 re-verify >= 5x below the cold full run");

  // ------------------------------------------------------------------
  // Violating delta through the cache path, differentially against fresh
  // dedup-off / por-off full verifications of the identical config.
  // ------------------------------------------------------------------
  ApplyDeltaMsg breaker;
  breaker.ops.push_back(
      {true, "static agg-0-1 " + ft.edge_prefixes[0].str() + " via core-3"});
  breaker.ops.push_back(
      {true, "static core-3 " + ft.edge_prefixes[0].str() + " via agg-0-1"});
  if (!state.apply_delta(breaker, error)) {
    std::printf("FAIL: violating delta: %s\n", error.c_str());
    return 1;
  }
  const VerdictReplyMsg caught = state.query(loop);
  check(caught.ok && static_cast<Verdict>(caught.verdict) == Verdict::kViolated,
        "violating delta caught through the cache path");
  check(caught.cache_hits == caught.targets - caught.reverified &&
            caught.reverified >= 1,
        "violation found by re-verifying only moved PECs");
  bench::emit("fig_serve_deltas", "violating_delta_caught",
              static_cast<double>(caught.wall_ns) / 1e6, caught.cache_hits,
              caught.reverified);

  // The cached arm re-queries warm (every verdict served or re-verified
  // through the cache); each differential arm verifies the same config from
  // scratch with the optimization under test disabled.
  const VerdictReplyMsg cached_again = state.query(loop);
  check(viol_set(cached_again) == viol_set(caught),
        "cached violation verdict is stable across re-queries");
  struct Arm {
    const char* name;
    void (*tweak)(VerifyOptions&);
  };
  const Arm arms[] = {
      {"dedup-off", [](VerifyOptions& vo) { vo.pec_dedup = false; }},
      {"por-off", [](VerifyOptions& vo) { vo.explore.por = false; }},
  };
  for (const Arm& arm : arms) {
    VerifyOptions vo = bench_opts();
    arm.tweak(vo);
    ServeState fresh{vo};
    if (!fresh.load(state.config_text(), error)) {
      std::printf("FAIL: %s load: %s\n", arm.name, error.c_str());
      return 1;
    }
    const VerdictReplyMsg fr = fresh.query(loop);
    check(fr.ok && fr.verdict == caught.verdict,
          std::string(arm.name) + " arm agrees on the verdict");
    check(viol_set(fr) == viol_set(caught),
          std::string(arm.name) + " arm reproduces the identical violations");
    bench::emit("fig_serve_deltas", std::string("differential_") + arm.name,
                static_cast<double>(fr.wall_ns) / 1e6, fr.cache_hits,
                fr.reverified);
  }

  // Reverting the breaker restores the pre-delta cones: all hits, holds.
  ApplyDeltaMsg revert;
  for (const DeltaOp& op : breaker.ops) revert.ops.push_back({false, op.line});
  if (!state.apply_delta(revert, error)) {
    std::printf("FAIL: revert: %s\n", error.c_str());
    return 1;
  }
  const VerdictReplyMsg restored = state.query(loop);
  check(restored.ok &&
            static_cast<Verdict>(restored.verdict) == Verdict::kHolds &&
            restored.cache_hits == restored.targets,
        "reverting the violating delta restores an all-hit hold");
  bench::emit("fig_serve_deltas", "revert_all_hits",
              static_cast<double>(restored.wall_ns) / 1e6, restored.cache_hits,
              restored.reverified);

  // ------------------------------------------------------------------
  // Crash-recovery arm: persist the cache, record every cone fingerprint,
  // then "kill -9" the daemon (drop the ServeState with no compaction and no
  // shutdown save — exactly what SIGKILL leaves behind) and rebuild a fresh
  // one from journal replay + cache warm start.
  // ------------------------------------------------------------------
  if (!state.save_cache(error)) {
    std::printf("FAIL: cache save: %s\n", error.c_str());
    return 1;
  }
  const std::string pre_crash_config = state.config_text();
  std::vector<std::uint64_t> pre_crash_cones;
  for (std::size_t p = 0; p < state.verifier().pecs().pecs.size(); ++p) {
    pre_crash_cones.push_back(state.cone_of(p));
  }

  ServeState revived{bench_opts(), cache_path};
  if (!revived.attach_journal(journal_path, error)) {
    std::printf("FAIL: revived journal: %s\n", error.c_str());
    return 1;
  }
  Journal::ReplayResult replayed;
  const auto replay_t0 = std::chrono::steady_clock::now();
  if (!revived.replay_journal(replayed, error)) {
    std::printf("FAIL: journal replay: %s\n", error.c_str());
    return 1;
  }
  const double replay_ms =
      bench::ms(std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - replay_t0));
  std::printf("%-44s %10.2f ms  %llu record(s)\n", "journal_replay", replay_ms,
              static_cast<unsigned long long>(replayed.applied));
  bench::emit("fig_serve_deltas", "crash_journal_replay", replay_ms,
              replayed.applied, replayed.torn_tail ? 1 : 0);
  check(replayed.applied >= 1 && !replayed.torn_tail,
        "journal replay applies the full acked history");
  check(revived.config_text() == pre_crash_config,
        "replayed config text is byte-identical to pre-crash");
  check(revived.verifier().pecs().pecs.size() == pre_crash_cones.size(),
        "replayed PEC partition matches pre-crash");
  for (std::size_t p = 0; p < pre_crash_cones.size(); ++p) {
    if (revived.cone_of(p) != pre_crash_cones[p]) {
      check(false, "cone fingerprint " + std::to_string(p) +
                       " drifted across crash recovery");
      break;
    }
  }

  // Warm re-query against the persisted cache: the replayed cones must key
  // straight into the pre-crash entries — all hits, nothing re-explored.
  check(revived.cache_stats().warm_loaded > 0, "revived cache warm-started");
  const VerdictReplyMsg post = revived.query(loop);
  check(post.ok && static_cast<Verdict>(post.verdict) == Verdict::kHolds &&
            post.cache_hits == post.targets && post.reverified == 0,
        "post-crash warm re-query is all hits");
  bench::emit("fig_serve_deltas", "crash_warm_all_hits",
              static_cast<double>(post.wall_ns) / 1e6, post.cache_hits,
              post.reverified);

  // And the revived daemon reproduces the delta-replay behaviour: a second
  // replay of benign statics (agg-P-*1* this time, so every cone is novel
  // rather than a revert to a cached one) moves exactly one PEC per delta
  // and keeps the other 17 warm — the same 17/18 ≈ 94.4% non-moved hit
  // ratio as the pre-crash replay.
  std::uint64_t crash_hits = 0;
  std::uint64_t crash_targets = 0;
  for (std::size_t r = 0; r < ft.edge_prefixes.size(); ++r) {
    const int pod = static_cast<int>(r) / half;
    const int e = static_cast<int>(r) % half;
    ApplyDeltaMsg delta;
    delta.ops.push_back({true, "static agg-" + std::to_string(pod) + "-1 " +
                                   ft.edge_prefixes[r].str() + " via edge-" +
                                   std::to_string(pod) + "-" +
                                   std::to_string(e)});
    if (!revived.apply_delta(delta, error)) {
      std::printf("FAIL: post-crash delta %zu: %s\n", r, error.c_str());
      return 1;
    }
    check(revived.last_moved() == 1,
          "post-crash delta " + std::to_string(r) + " moves exactly one PEC");
    const VerdictReplyMsg reply = revived.query(loop);
    check(reply.ok && static_cast<Verdict>(reply.verdict) == Verdict::kHolds,
          "post-crash delta " + std::to_string(r) + " still holds");
    check(reply.reverified == 1 && reply.cache_hits == reply.targets - 1,
          "post-crash delta " + std::to_string(r) +
              " re-verifies only the moved PEC");
    crash_hits += reply.cache_hits;
    crash_targets += reply.targets;
  }
  const double crash_ratio = 100.0 * static_cast<double>(crash_hits) /
                             static_cast<double>(crash_targets);
  std::printf("%-44s %9.1f %%\n", "post-crash replay hit ratio", crash_ratio);
  bench::emit("fig_serve_deltas", "crash_replay_hit_ratio_pct", crash_ratio,
              crash_hits, crash_targets);
  check(crash_ratio >= 94.4, "post-crash replay hit ratio >= 94.4%");

  std::remove(cache_path.c_str());
  std::remove(journal_path.c_str());
  std::remove((journal_path + ".tmp").c_str());

  std::printf("%s\n", failures == 0 ? "ALL CHECKS PASSED" : "CHECKS FAILED");
  return failures == 0 ? 0 : 1;
}
