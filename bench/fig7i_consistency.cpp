// Figure 7(i): real-world configs II, III, IV — Loop, Multipath Consistency
// and Path Consistency policies, with and without a single link failure.
//
// Paper shape: the consistency policies (which inspect every node / the
// control plane itself) cost more than source-scoped policies but stay in
// seconds; memory is stable across policies.
#include "bench_util.hpp"
#include "core/verifier.hpp"
#include "workload/enterprise.hpp"

int main() {
  using namespace plankton;
  bench::header("Figure 7(i)", "real-world configs, consistency policies");
  std::printf("%-10s %-24s %-8s %12s %12s\n", "network", "policy", "failures",
              "memory", "time");

  for (const char* name : {"II", "III", "IV"}) {
    const Enterprise ent = make_enterprise(name);
    const Network& net = ent.net;
    // Path consistency group: the (behaviorally symmetric) core routers.
    const PathConsistencyPolicy path_consistency(ent.cores);
    const LoopFreedomPolicy loop;
    const MultipathConsistencyPolicy multipath;

    const std::vector<std::pair<const Policy*, const char*>> policies = {
        {&loop, "Loop"},
        {&multipath, "Multipath Consistency"},
        {&path_consistency, "Path Consistency"},
    };
    for (const auto& [policy, pname] : policies) {
      for (const int k : {0, 1}) {
        VerifyOptions vo;
        vo.cores = 4;
        vo.explore.max_failures = k;
        Verifier verifier(net, bench::assert_unbudgeted(vo));
        const VerifyResult r = verifier.verify(*policy);
        std::printf("%-10s %-24s <=%-6d %9.2f MB %12s\n", name, pname, k,
                    bench::mb(r.total.model_bytes()),
                    bench::time_cell(r.wall, r.timed_out).c_str());
        bench::emit("fig7i_consistency",
                    std::string(name) + " " + pname + " k=" + std::to_string(k),
                    bench::ms(r.wall), r.total.states_explored,
                    r.total.model_bytes());
      }
    }
  }
  std::printf(
      "\npaper_shape: consistency policies verify real configs in seconds; "
      "adding one failure costs a small multiple; memory stays flat across "
      "policies\n");
  return 0;
}
