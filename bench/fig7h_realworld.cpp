// Figure 7(h): "real-world" configurations (synthetic stand-ins reproducing
// the paper's reported traits: recursive statics, iBGP over OSPF, self-loop
// PEC dependencies) — Reachability, Bounded Path Length and Waypointing,
// with and without a single link failure, one core.
//
// Paper shape: every network verifies in milliseconds-to-seconds on one
// core; failure variants cost more than failure-free ones; recursive
// routing (present in 9 of 10 networks) is handled via the PEC dependency
// scheduler.
#include "bench_util.hpp"
#include "core/verifier.hpp"
#include "workload/enterprise.hpp"

int main() {
  using namespace plankton;
  bench::header("Figure 7(h)", "real-world configs, 3 policies, 1 core");
  std::printf("%-12s %8s | %12s %12s | %12s %12s | %12s %12s\n", "network", "devs",
              "Reach", "Reach+f", "Bounded", "Bounded+f", "Waypoint", "Waypoint+f");

  for (const auto& info : enterprise_networks()) {
    const Enterprise ent = make_enterprise(info.name);
    const Network& net = ent.net;

    // Sources: access routers; destination: the first access subnet.
    std::vector<NodeId> sources = ent.access;
    if (sources.empty()) sources.push_back(0);
    const IpAddr dst = ent.subnets.empty() ? IpAddr(10, 1, 0, 1)
                                           : ent.subnets[0].addr();
    // Waypoints: the core layer.
    std::vector<NodeId> waypoints = ent.cores;

    auto run = [&](const Policy& policy, int k) {
      VerifyOptions vo;
      vo.cores = 1;
      vo.explore.max_failures = k;
      Verifier verifier(net, bench::assert_unbudgeted(vo));
      const VerifyResult r = verifier.verify_address(dst, policy);
      bench::emit("fig7h_realworld",
                  info.name + " " + policy.name() + " k=" + std::to_string(k),
                  bench::ms(r.wall), r.total.states_explored,
                  r.total.model_bytes());
      return bench::time_cell(r.wall, r.timed_out);
    };

    const ReachabilityPolicy reach(sources);
    const BoundedPathLengthPolicy bounded(sources, 8);
    const WaypointPolicy waypoint(sources, waypoints);
    std::printf("%-12s %8d | %12s %12s | %12s %12s | %12s %12s\n",
                info.name.c_str(), info.devices, run(reach, 0).c_str(),
                run(reach, 1).c_str(), run(bounded, 0).c_str(),
                run(bounded, 1).c_str(), run(waypoint, 0).c_str(),
                run(waypoint, 1).c_str());
  }
  std::printf(
      "\npaper_shape: all ten networks verify in <~seconds on one core; "
      "failure variants cost a small multiple of failure-free runs\n");
  return 0;
}
