// Per-process exploration liveness counter.
//
// The Explorer bumps this from its periodic budget check (every 256 model
// steps — cheap enough for the hot path, frequent enough that any live
// exploration advances it many times per millisecond). The shard worker's
// heartbeat thread samples it and ships the value to the coordinator in
// kHeartbeat frames; a worker whose counter stops advancing while a task is
// in flight is alive-but-stuck (the hang class of failure that socket EOF
// can never detect) and gets escalated: progress probe at the soft deadline,
// SIGKILL + reassignment at the hard one.
//
// A plain global (not per-Explorer) on purpose: the coordinator only needs a
// monotone "this process is still exploring" signal, and worker processes
// run one task at a time.
#pragma once

#include <atomic>
#include <cstdint>

namespace plankton {

inline std::atomic<std::uint64_t>& progress_counter() {
  static std::atomic<std::uint64_t> counter{0};
  return counter;
}

inline void progress_tick() {
  progress_counter().fetch_add(1, std::memory_order_relaxed);
}

}  // namespace plankton
