#include "checker/stats.hpp"

#include <algorithm>

namespace plankton {

void SearchStats::absorb(const SearchStats& other) {
  states_explored += other.states_explored;
  states_stored += other.states_stored;
  revisits_skipped += other.revisits_skipped;
  converged_states += other.converged_states;
  policy_checks += other.policy_checks;
  suppressed_checks += other.suppressed_checks;
  pruned_inconsistent += other.pruned_inconsistent;
  det_steps += other.det_steps;
  nondet_branches += other.nondet_branches;
  failure_sets += other.failure_sets;
  ad_cache_hits += other.ad_cache_hits;
  ad_cache_misses += other.ad_cache_misses;
  dirty_refreshes += other.dirty_refreshes;
  por_pruned += other.por_pruned;
  por_source_sets += other.por_source_sets;
  por_footprint_time += other.por_footprint_time;
  frontier_peak = std::max(frontier_peak, other.frontier_peak);
  budget_checks += other.budget_checks;
  max_depth = std::max(max_depth, other.max_depth);
  bytes_paths += other.bytes_paths;
  bytes_routes += other.bytes_routes;
  bytes_visited += other.bytes_visited;
  bytes_stack_peak = std::max(bytes_stack_peak, other.bytes_stack_peak);
  bytes_ad_cache += other.bytes_ad_cache;
  elapsed = std::max(elapsed, other.elapsed);
}

std::string SearchStats::summary() const {
  std::string out;
  out += "states explored: " + std::to_string(states_explored);
  out += ", stored: " + std::to_string(states_stored);
  out += ", converged: " + std::to_string(converged_states);
  out += ", policy checks: " + std::to_string(policy_checks);
  out += ", det steps: " + std::to_string(det_steps);
  out += ", branches: " + std::to_string(nondet_branches);
  if (ad_cache_hits + ad_cache_misses > 0) {
    out += ", ad cache: " + std::to_string(ad_cache_hits) + "/" +
           std::to_string(ad_cache_hits + ad_cache_misses) + " hits";
  }
  if (por_pruned + por_source_sets > 0) {
    out += ", por pruned: " + std::to_string(por_pruned);
    out += ", por source sets: " + std::to_string(por_source_sets);
  }
  if (frontier_peak > 0) {
    out += ", frontier peak: " + std::to_string(frontier_peak);
  }
  out += ", model bytes: " + std::to_string(model_bytes());
  return out;
}

const char* to_string(BudgetKind kind) {
  switch (kind) {
    case BudgetKind::kNone: return "none";
    case BudgetKind::kDeadline: return "deadline";
    case BudgetKind::kStates: return "states";
    case BudgetKind::kMemory: return "memory";
  }
  return "?";
}

const char* to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kHolds: return "holds";
    case Verdict::kViolated: return "violated";
    case Verdict::kInconclusive: return "inconclusive";
    case Verdict::kError: return "error";
  }
  return "?";
}

}  // namespace plankton
