#include "checker/visited.hpp"

#include <bit>

namespace plankton {

VisitedSet::VisitedSet(std::size_t initial_capacity) {
  std::size_t cap = std::bit_ceil(initial_capacity < 16 ? 16 : initial_capacity);
  slots_.assign(cap, 0);
}

bool VisitedSet::insert(std::uint64_t h) {
  if (h == 0) h = 0x9e3779b97f4a7c15ull;  // reserve 0 for "empty"
  if ((size_ + 1) * 4 >= slots_.size() * 3) grow();
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(h) & mask;
  while (slots_[i] != 0) {
    if (slots_[i] == h) return false;
    i = (i + 1) & mask;
  }
  slots_[i] = h;
  ++size_;
  return true;
}

void VisitedSet::grow() {
  std::vector<std::uint64_t> old = std::move(slots_);
  slots_.assign(old.size() * 2, 0);
  const std::size_t mask = slots_.size() - 1;
  for (const std::uint64_t h : old) {
    if (h == 0) continue;
    std::size_t i = static_cast<std::size_t>(h) & mask;
    while (slots_[i] != 0) i = (i + 1) & mask;
    slots_[i] = h;
  }
}

void VisitedSet::clear() {
  slots_.assign(slots_.size(), 0);
  size_ = 0;
}

BloomFilter::BloomFilter(std::size_t bits, int hashes) : hashes_(hashes) {
  const std::size_t b = std::bit_ceil(bits < 1024 ? std::size_t{1024} : bits);
  words_.assign(b / 64, 0);
  mask_ = b - 1;
}

bool BloomFilter::insert(std::uint64_t h) {
  const std::uint64_t h1 = hash_mix(h);
  const std::uint64_t h2 = hash_mix(h1) | 1;  // odd stride
  bool fresh = false;
  std::uint64_t pos = h1;
  for (int i = 0; i < hashes_; ++i) {
    const std::uint64_t bit = pos & mask_;
    const std::uint64_t word_mask = std::uint64_t{1} << (bit & 63);
    if ((words_[bit >> 6] & word_mask) == 0) {
      fresh = true;
      words_[bit >> 6] |= word_mask;
    }
    pos += h2;
  }
  if (fresh) ++inserted_;
  return fresh;
}

StateStore::StateStore(bool bitstate, std::size_t bloom_bits)
    : bitstate_(bitstate), exact_(), bloom_(bitstate ? bloom_bits : 1024) {}

}  // namespace plankton
