// Search statistics: the counters behind the paper's time/memory figures.
//
// Memory is accounted deterministically from the checker's own structures
// (path/route tables, visited store, DFS stack high-water) instead of
// process RSS, so bench output is reproducible.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "checker/budget.hpp"

namespace plankton {

struct SearchStats {
  std::uint64_t states_explored = 0;    ///< RPVP transitions taken
  std::uint64_t states_stored = 0;      ///< distinct state hashes stored
  std::uint64_t revisits_skipped = 0;   ///< matched in the visited store
  std::uint64_t converged_states = 0;   ///< complete converged data planes
  std::uint64_t policy_checks = 0;      ///< callback invocations
  std::uint64_t suppressed_checks = 0;  ///< equivalence-suppressed callbacks (§3.5)
  std::uint64_t pruned_inconsistent = 0;///< §4.1.1 consistent-execution cuts
  std::uint64_t det_steps = 0;          ///< deterministic-node executions (§4.1.2)
  std::uint64_t nondet_branches = 0;    ///< branch points explored
  std::uint64_t failure_sets = 0;       ///< failure combinations explored
  std::uint64_t ad_cache_hits = 0;      ///< advertisement memo hits
  std::uint64_t ad_cache_misses = 0;    ///< advertisement memo fills
  std::uint64_t dirty_refreshes = 0;    ///< incremental node-status refreshes
  std::uint64_t por_pruned = 0;         ///< sleep-set-pruned moves (DPOR)
  std::uint64_t por_source_sets = 0;    ///< states whose move set was sleep-narrowed
  std::chrono::nanoseconds por_footprint_time{0};  ///< footprint mask builds
  std::uint64_t frontier_peak = 0;      ///< pending-state high-water (frontier engines)
  std::uint64_t budget_checks = 0;      ///< periodic budget/liveness ticks
  std::uint64_t max_depth = 0;
  std::size_t bytes_paths = 0;
  std::size_t bytes_routes = 0;
  std::size_t bytes_visited = 0;
  std::size_t bytes_stack_peak = 0;
  std::size_t bytes_ad_cache = 0;       ///< advertisement memo tables
  std::chrono::nanoseconds elapsed{0};

  [[nodiscard]] std::size_t model_bytes() const {
    return bytes_paths + bytes_routes + bytes_visited + bytes_stack_peak +
           bytes_ad_cache;
  }

  /// Merges per-PEC stats into whole-run totals (memory maxima, counter sums).
  void absorb(const SearchStats& other);

  [[nodiscard]] std::string summary() const;
};

}  // namespace plankton
