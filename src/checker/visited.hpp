// Visited-state storage for the explicit-state search.
//
// SPIN-style: states are never stored whole. The exact mode keeps 64-bit
// state hashes in an open-addressing table (hash compaction); the bitstate
// mode (paper §5, Fig. 9) keeps k Bloom-filter bits per state, trading a
// tiny probability of missed states (reported coverage >99.9% in the paper)
// for a large memory reduction.
#pragma once

#include <cstdint>
#include <vector>

#include "netbase/hash.hpp"

namespace plankton {

class VisitedSet {
 public:
  explicit VisitedSet(std::size_t initial_capacity = 1 << 12);

  /// Inserts `h`; returns true when the hash was not present before.
  bool insert(std::uint64_t h);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t bytes() const {
    return slots_.size() * sizeof(std::uint64_t);
  }

  void clear();

 private:
  void grow();

  std::vector<std::uint64_t> slots_;  // 0 = empty (hash 0 is remapped)
  std::size_t size_ = 0;
};

/// Double-hashed Bloom filter over 64-bit state hashes.
class BloomFilter {
 public:
  explicit BloomFilter(std::size_t bits, int hashes = 4);

  /// Sets the state's bits; returns true when at least one bit was clear
  /// (i.e. the state is definitely new).
  bool insert(std::uint64_t h);

  [[nodiscard]] std::size_t bytes() const { return words_.size() * sizeof(std::uint64_t); }
  [[nodiscard]] std::uint64_t approx_states() const { return inserted_; }

 private:
  std::vector<std::uint64_t> words_;
  std::uint64_t mask_;
  int hashes_;
  std::uint64_t inserted_ = 0;
};

/// Facade picking exact hash compaction or bitstate hashing.
class StateStore {
 public:
  StateStore(bool bitstate, std::size_t bloom_bits);

  bool insert(std::uint64_t h) {
    return bitstate_ ? bloom_.insert(h) : exact_.insert(h);
  }
  [[nodiscard]] std::size_t stored() const {
    return bitstate_ ? static_cast<std::size_t>(bloom_.approx_states()) : exact_.size();
  }
  [[nodiscard]] std::size_t bytes() const {
    return bitstate_ ? bloom_.bytes() : exact_.bytes();
  }
  [[nodiscard]] bool bitstate() const { return bitstate_; }

 private:
  bool bitstate_;
  VisitedSet exact_;
  BloomFilter bloom_;
};

}  // namespace plankton
