// Counterexample trails (paper §3.5: "it writes a trail file describing the
// execution path taken to reach the particular converged state").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netbase/topology.hpp"
#include "protocols/route.hpp"

namespace plankton {

struct TrailEvent {
  enum class Kind : std::uint8_t {
    kFailLink,         ///< topology change before protocol execution (§4.1.4)
    kUpstreamOutcome,  ///< choice among upstream converged states (§3.2)
    kBeginPrefix,      ///< start of a per-prefix execution phase (§3.3)
    kSelect,           ///< RPVP step: node adopts a route advertised by peer
    kWithdraw,         ///< RPVP step: invalid node resets to ⊥ (naive mode)
  };
  Kind kind;
  LinkId link = kNoLink;
  std::uint32_t phase = 0;
  NodeId node = kNoNode;
  NodeId peer = kNoNode;
  RouteId route = kNoRoute;
};

/// The sequence of non-deterministic and deterministic events leading to a
/// converged state; rendered into the violation report.
struct Trail {
  std::vector<TrailEvent> events;

  [[nodiscard]] std::string describe(const Topology& topo, const RouteTable& routes,
                                     const PathTable& paths) const;
};

}  // namespace plankton
