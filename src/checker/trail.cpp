#include "checker/trail.hpp"

namespace plankton {

std::string Trail::describe(const Topology& topo, const RouteTable& routes,
                            const PathTable& paths) const {
  std::string out;
  for (const auto& e : events) {
    switch (e.kind) {
      case TrailEvent::Kind::kFailLink: {
        const Link& l = topo.link(e.link);
        out += "fail link " + topo.name(l.a) + " <-> " + topo.name(l.b) + "\n";
        break;
      }
      case TrailEvent::Kind::kUpstreamOutcome:
        out += "pick upstream outcome #" + std::to_string(e.phase) + "\n";
        break;
      case TrailEvent::Kind::kBeginPrefix:
        out += "begin prefix phase " + std::to_string(e.phase) + "\n";
        break;
      case TrailEvent::Kind::kSelect: {
        out += "  " + topo.name(e.node) + " adopts [";
        out += paths.str(routes.get(e.route).path, &topo);
        // Merge-protocol (OSPF ECMP) steps have no single advertising peer.
        if (e.peer != kNoNode) out += "] from " + topo.name(e.peer) + "\n";
        else out += "] (merged update)\n";
        break;
      }
      case TrailEvent::Kind::kWithdraw:
        out += "  " + topo.name(e.node) + " withdraws (invalid route)\n";
        break;
    }
  }
  return out;
}

}  // namespace plankton
