// Resource budgets and the verdict taxonomy for bounded verification.
//
// A production verifier cannot afford "run until done": one oversized PEC
// would starve every other query. A ResourceBudget bounds an exploration on
// three axes — wall clock, stored states, and approximate model memory (fed
// by the visited-backend / arena `bytes()` accounting, so the cap is
// deterministic and reproducible, unlike RSS). Exhausting a budget is a
// *sound* outcome with its own verdict: the run reports `kInconclusive`
// together with which budget tripped and how far exploration got (the
// SearchStats). Exhaustion is never reported as a hold.
//
// Budgets thread through VerifyOptions -> Verifier -> ExploreOptions ->
// Explorer::budget_exhausted. The Verifier derives per-PEC deadlines from the
// global one (a fair share of the remaining time over the remaining PECs),
// so a monster PEC trips its own slice instead of starving the rest.
#pragma once

#include <chrono>
#include <cstdint>

namespace plankton {

/// Which budget axis ended an exploration early (kNone = it ran to
/// completion). Recorded per PEC and aggregated into the run verdict.
enum class BudgetKind : std::uint8_t {
  kNone = 0,
  kDeadline = 1,  ///< wall-clock deadline (global or per-PEC slice)
  kStates = 2,    ///< stored-state cap
  kMemory = 3,    ///< approximate model-memory cap
};

[[nodiscard]] const char* to_string(BudgetKind kind);

/// Outcome classification for a verification run. `kHolds` requires the
/// exploration to have completed within budget; any budget exhaustion
/// degrades a would-be hold to `kInconclusive` (a found violation stays
/// `kViolated` — counterexamples are sound even from a partial search).
/// `kError` is reserved for infrastructure failures (config, I/O), surfaced
/// by the CLI as exit code 3.
enum class Verdict : std::uint8_t {
  kHolds = 0,
  kViolated = 1,
  kInconclusive = 2,
  kError = 3,
};

[[nodiscard]] const char* to_string(Verdict verdict);

/// Resource bounds for one verification. Zero on any axis means "no bound"
/// (the seed behaviour). `deadline` is the whole-run wall budget: the
/// Verifier converts it into per-PEC slices. `max_states` / `max_bytes`
/// bound each single PEC exploration (states stored; visited + arena bytes).
struct ResourceBudget {
  std::chrono::milliseconds deadline{0};
  std::uint64_t max_states = 0;
  std::size_t max_bytes = 0;
  /// Graceful degradation: on memory pressure, migrate an exact visited set
  /// to hash-compacted storage (half the bytes) instead of tripping the
  /// budget immediately. Opt-in, because the degraded run loses
  /// exhaustiveness — the result self-reports it (ExploreResult::exhaustive
  /// turns false) so a "holds" can be read as probabilistic coverage.
  bool degrade_visited = false;

  [[nodiscard]] bool any() const {
    return deadline.count() > 0 || max_states != 0 || max_bytes != 0;
  }
};

/// Per-PEC fair share of the remaining deadline: remaining / (scheduled -
/// started), clamped so the result is always a positive slice. `started` can
/// legitimately reach or pass `scheduled` — dedup reruns and racing workers
/// bump the started counter concurrently with scheduling — and `remaining`
/// can be non-positive by the time a caller computes the slice; both cases
/// must degrade to the minimum slice instead of dividing by zero or handing
/// out a negative/garbage deadline.
[[nodiscard]] inline std::chrono::milliseconds fair_share_slice(
    std::chrono::milliseconds remaining, std::size_t scheduled,
    std::size_t started) {
  const std::size_t left = scheduled > started ? scheduled - started : 1;
  if (remaining.count() <= 0) return std::chrono::milliseconds(1);
  auto slice = remaining / static_cast<std::int64_t>(left);
  if (slice.count() <= 0) slice = std::chrono::milliseconds(1);
  return slice;
}

}  // namespace plankton
