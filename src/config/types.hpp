// Device configuration model: OSPF, BGP (sessions + route maps), static routes.
//
// This mirrors the subset of real configuration that Plankton's prototype
// consumes (§5: OSPF, BGP, static routing). Route maps are the abstract
// import/export filters + ranking inputs of the extended-SPVP model (§3.4.1,
// Appendix A): they can permit/deny, set local-pref, add communities, and
// prepend to the AS path.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netbase/ip.hpp"
#include "netbase/topology.hpp"

namespace plankton {

/// Routing information sources, ordered by administrative distance.
enum class Protocol : std::uint8_t { kConnected, kStatic, kEbgp, kOspf, kIbgp };

/// Cisco-style administrative distance used when the FIB merges protocols.
[[nodiscard]] constexpr std::uint8_t admin_distance(Protocol p) {
  switch (p) {
    case Protocol::kConnected: return 0;
    case Protocol::kStatic: return 1;
    case Protocol::kEbgp: return 20;
    case Protocol::kOspf: return 110;
    case Protocol::kIbgp: return 200;
  }
  return 255;
}

[[nodiscard]] constexpr const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kConnected: return "connected";
    case Protocol::kStatic: return "static";
    case Protocol::kEbgp: return "ebgp";
    case Protocol::kOspf: return "ospf";
    case Protocol::kIbgp: return "ibgp";
  }
  return "?";
}

/// Communities are interned to bit positions; a route carries up to 32.
using CommunityBits = std::uint32_t;

/// One match condition of a route-map clause. Empty optionals always match.
struct RouteMapMatch {
  enum class PrefixMode : std::uint8_t { kExact, kOrLonger };
  std::optional<Prefix> prefix;
  PrefixMode prefix_mode = PrefixMode::kExact;
  std::optional<std::uint8_t> community;       ///< community bit that must be set
  std::optional<std::uint16_t> max_path_len;   ///< AS-path length upper bound
};

/// Actions applied when a clause matches.
struct RouteMapAction {
  bool permit = true;
  std::optional<std::uint32_t> set_local_pref;
  std::optional<std::uint8_t> add_community;
  std::uint8_t prepend = 0;  ///< extra AS-path length added
};

struct RouteMapClause {
  RouteMapMatch match;
  RouteMapAction action;
};

/// First-match-wins clause list; falls through to `default_permit`.
struct RouteMap {
  std::vector<RouteMapClause> clauses;
  bool default_permit = true;

  [[nodiscard]] bool trivial() const { return clauses.empty() && default_permit; }
};

/// One BGP peering (a session over a link for eBGP, or loopback-to-loopback
/// for iBGP).
struct BgpSession {
  NodeId peer = kNoNode;
  bool ibgp = false;
  RouteMap import;   ///< applied to advertisements received from `peer`
  RouteMap export_;  ///< applied to advertisements sent to `peer`
};

struct BgpConfig {
  std::uint32_t asn = 0;
  std::vector<BgpSession> sessions;
  std::vector<Prefix> originated;
  /// Originate this device's OSPF-originated prefixes into BGP.
  bool redistribute_ospf = false;

  [[nodiscard]] const BgpSession* session_with(NodeId peer) const {
    for (const auto& s : sessions)
      if (s.peer == peer) return &s;
    return nullptr;
  }
  [[nodiscard]] BgpSession* session_with(NodeId peer) {
    for (auto& s : sessions)
      if (s.peer == peer) return &s;
    return nullptr;
  }
};

struct OspfConfig {
  bool enabled = false;
  std::vector<Prefix> originated;
  bool advertise_loopback = true;  ///< originate loopback/32 into OSPF
  /// Originate this device's static-route destinations into OSPF.
  bool redistribute_static = false;
};

/// A static route. Exactly one of {via_neighbor, via_ip, drop} is meaningful:
/// via_neighbor forwards out a directly-connected adjacency, via_ip is a
/// recursive route resolved through the FIB (the source of cross-PEC
/// dependencies, §3.2), drop is a null route.
struct StaticRoute {
  Prefix dst;
  NodeId via_neighbor = kNoNode;
  std::optional<IpAddr> via_ip;
  bool drop = false;
};

struct DeviceConfig {
  std::string name;
  IpAddr loopback;
  OspfConfig ospf;
  std::optional<BgpConfig> bgp;
  std::vector<StaticRoute> statics;
};

}  // namespace plankton
