// A Network bundles the physical topology with per-device configuration.
#pragma once

#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "config/types.hpp"
#include "netbase/topology.hpp"

namespace plankton {

class Network {
 public:
  Topology topo;
  std::vector<DeviceConfig> devices;  ///< indexed by NodeId

  /// Adds a device, keeping `devices` aligned with the topology's node ids.
  NodeId add_device(std::string name, IpAddr loopback = IpAddr());

  [[nodiscard]] const DeviceConfig& device(NodeId n) const { return devices[n]; }
  [[nodiscard]] DeviceConfig& device(NodeId n) { return devices[n]; }

  [[nodiscard]] std::optional<NodeId> find_device(std::string_view name) const;

  /// Node whose loopback equals `a`, if any.
  [[nodiscard]] std::optional<NodeId> owner_of(IpAddr a) const;

  /// All prefixes that appear anywhere in the configuration: originated
  /// (OSPF/BGP), loopbacks, static destinations, route-map matches. These
  /// seed the PEC trie (§3.1).
  [[nodiscard]] std::vector<Prefix> mentioned_prefixes() const;

  /// Sanity checks (session symmetry, static next hops exist, ...).
  /// Returns a human-readable list of problems; empty means valid.
  [[nodiscard]] std::vector<std::string> validate() const;
};

}  // namespace plankton
