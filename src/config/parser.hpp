// Line-oriented configuration language.
//
// Real Plankton consumed vendor configurations via a frontend; this repo ships
// a compact, self-describing format that exercises the same model surface:
//
//   # comment
//   node r1 loopback 1.1.1.1
//   link r1 r2 cost 10
//   ospf r1 enable
//   ospf r1 originate 10.0.1.0/24
//   static r1 10.9.0.0/16 via r2
//   static r1 10.8.0.0/16 via-ip 2.2.2.2      # recursive
//   static r1 10.7.0.0/16 drop
//   bgp r1 asn 65001
//   bgp r1 originate 10.0.1.0/24
//   bgp-session r1 r2 ebgp
//   route-map r1 r2 import permit match-prefix 10.0.0.0/8 or-longer ...
//       ... set-local-pref 200 add-community CUST   (trailing '\' continues)
//   route-map-default r1 r2 export deny
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>

#include "config/network.hpp"

namespace plankton {

/// Thrown on malformed input; carries the 1-based line number.
class ConfigParseError : public std::runtime_error {
 public:
  ConfigParseError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

struct ParsedNetwork {
  Network net;
  /// Community names seen in route maps, interned to bit positions.
  std::map<std::string, std::uint8_t> communities;
};

/// Parses the full text of a configuration file. Throws ConfigParseError.
ParsedNetwork parse_network_config(std::string_view text);

/// Non-throwing variant for untrusted input (the serve daemon feeds this from
/// a socket): returns false and fills `error` with the "line N: ..." message
/// instead of throwing; `out` is default-initialized on failure.
bool parse_network_config(std::string_view text, ParsedNetwork& out,
                          std::string& error);

}  // namespace plankton
