#include "config/parser.hpp"

#include <charconv>
#include <vector>

namespace plankton {
namespace {

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i >= line.size() || line[i] == '#') break;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

class Parser {
 public:
  ParsedNetwork run(std::string_view text) {
    std::size_t pos = 0;
    line_no_ = 0;
    std::string pending;  // supports trailing-backslash continuations
    while (pos <= text.size()) {
      const std::size_t eol = text.find('\n', pos);
      std::string_view raw = text.substr(
          pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
      ++line_no_;
      std::string_view trimmed = raw;
      while (!trimmed.empty() && (trimmed.back() == '\r' || trimmed.back() == ' '))
        trimmed.remove_suffix(1);
      if (!trimmed.empty() && trimmed.back() == '\\') {
        pending.append(trimmed.substr(0, trimmed.size() - 1));
        pending.push_back(' ');
      } else {
        pending.append(trimmed);
        if (!pending.empty()) handle_line(pending);
        pending.clear();
      }
      if (eol == std::string_view::npos) break;
      pos = eol + 1;
    }
    if (!pending.empty()) handle_line(pending);
    return std::move(result_);
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ConfigParseError(line_no_, message);
  }

  NodeId node_of(std::string_view name) const {
    const auto id = result_.net.find_device(name);
    if (!id) throw ConfigParseError(line_no_, "unknown node '" + std::string(name) + "'");
    return *id;
  }

  IpAddr ip_of(std::string_view text) const {
    const auto a = IpAddr::parse(text);
    if (!a) throw ConfigParseError(line_no_, "bad IPv4 address '" + std::string(text) + "'");
    return *a;
  }

  Prefix prefix_of(std::string_view text) const {
    const auto p = Prefix::parse(text);
    if (!p) throw ConfigParseError(line_no_, "bad prefix '" + std::string(text) + "'");
    return *p;
  }

  // `max` bounds the accepted value so narrower destination fields
  // (uint8/uint16) get a parse error instead of a silent truncating cast —
  // the daemon feeds this parser from an untrusted socket, so "route-map ...
  // prepend 256" must be rejected, not become prepend 0. from_chars already
  // rejects sign characters, non-digits, and values beyond uint32.
  std::uint32_t uint_of(std::string_view text,
                        std::uint32_t max = UINT32_MAX) const {
    std::uint32_t v = 0;
    auto [next, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
    if (ec != std::errc{} || next != text.data() + text.size())
      throw ConfigParseError(line_no_, "bad number '" + std::string(text) + "'");
    if (v > max) {
      throw ConfigParseError(line_no_, "number '" + std::string(text) +
                                           "' out of range (max " +
                                           std::to_string(max) + ")");
    }
    return v;
  }

  std::uint8_t community_of(std::string_view name) {
    const std::string key(name);
    auto it = result_.communities.find(key);
    if (it != result_.communities.end()) return it->second;
    if (result_.communities.size() >= 32) fail("too many distinct communities (max 32)");
    const auto bit = static_cast<std::uint8_t>(result_.communities.size());
    result_.communities.emplace(key, bit);
    return bit;
  }

  void handle_line(std::string_view line) {
    const auto t = tokenize(line);
    if (t.empty()) return;
    const std::string_view kw = t[0];
    if (kw == "node") return handle_node(t);
    if (kw == "link") return handle_link(t);
    if (kw == "ospf") return handle_ospf(t);
    if (kw == "static") return handle_static(t);
    if (kw == "bgp") return handle_bgp(t);
    if (kw == "bgp-session") return handle_bgp_session(t);
    if (kw == "route-map") return handle_route_map(t);
    if (kw == "route-map-default") return handle_route_map_default(t);
    fail("unknown directive '" + std::string(kw) + "'");
  }

  void handle_node(const std::vector<std::string_view>& t) {
    if (t.size() != 2 && t.size() != 4) fail("usage: node <name> [loopback <ip>]");
    if (result_.net.find_device(t[1])) fail("duplicate node '" + std::string(t[1]) + "'");
    IpAddr loopback;
    if (t.size() == 4) {
      if (t[2] != "loopback") fail("expected 'loopback'");
      loopback = ip_of(t[3]);
    }
    result_.net.add_device(std::string(t[1]), loopback);
  }

  void handle_link(const std::vector<std::string_view>& t) {
    if (t.size() < 3) fail("usage: link <a> <b> [cost <n>] [cost-ba <n>]");
    const NodeId a = node_of(t[1]);
    const NodeId b = node_of(t[2]);
    std::uint32_t cost_ab = 1, cost_ba = 1;
    bool saw_cost = false;
    std::size_t i = 3;
    for (; i + 1 < t.size(); i += 2) {
      if (t[i] == "cost") {
        cost_ab = uint_of(t[i + 1]);
        if (!saw_cost) cost_ba = cost_ab;
        saw_cost = true;
      } else if (t[i] == "cost-ba") {
        cost_ba = uint_of(t[i + 1]);
      } else {
        fail("unknown link option '" + std::string(t[i]) + "'");
      }
    }
    // A dangling option token ("link a b cost") used to be silently ignored.
    if (i != t.size()) fail("link option '" + std::string(t[i]) + "' needs a value");
    result_.net.topo.add_link(a, b, cost_ab, cost_ba);
  }

  void handle_ospf(const std::vector<std::string_view>& t) {
    if (t.size() < 3) fail("usage: ospf <node> enable|originate <prefix>");
    auto& dev = result_.net.device(node_of(t[1]));
    if (t[2] == "enable") {
      dev.ospf.enabled = true;
    } else if (t[2] == "originate" && t.size() == 4) {
      dev.ospf.enabled = true;
      dev.ospf.originated.push_back(prefix_of(t[3]));
    } else if (t[2] == "no-loopback") {
      dev.ospf.advertise_loopback = false;
    } else if (t[2] == "redistribute-static") {
      dev.ospf.enabled = true;
      dev.ospf.redistribute_static = true;
    } else {
      fail("bad ospf directive");
    }
  }

  void handle_static(const std::vector<std::string_view>& t) {
    if (t.size() < 4) fail("usage: static <node> <prefix> via <n>|via-ip <ip>|drop");
    StaticRoute sr;
    sr.dst = prefix_of(t[2]);
    if (t[3] == "via" && t.size() == 5) {
      sr.via_neighbor = node_of(t[4]);
    } else if (t[3] == "via-ip" && t.size() == 5) {
      sr.via_ip = ip_of(t[4]);
    } else if (t[3] == "drop" && t.size() == 4) {
      sr.drop = true;
    } else {
      fail("bad static route form");
    }
    result_.net.device(node_of(t[1])).statics.push_back(sr);
  }

  void handle_bgp(const std::vector<std::string_view>& t) {
    if (t.size() != 3 && t.size() != 4) {
      fail("usage: bgp <node> asn <n> | originate <prefix> | redistribute-ospf");
    }
    auto& dev = result_.net.device(node_of(t[1]));
    if (!dev.bgp) dev.bgp.emplace();
    if (t[2] == "asn" && t.size() == 4) {
      dev.bgp->asn = uint_of(t[3]);
    } else if (t[2] == "originate" && t.size() == 4) {
      dev.bgp->originated.push_back(prefix_of(t[3]));
    } else if (t[2] == "redistribute-ospf" && t.size() == 3) {
      dev.bgp->redistribute_ospf = true;
    } else {
      fail("bad bgp directive");
    }
  }

  void handle_bgp_session(const std::vector<std::string_view>& t) {
    if (t.size() != 4 || (t[3] != "ebgp" && t[3] != "ibgp"))
      fail("usage: bgp-session <a> <b> ebgp|ibgp");
    const NodeId a = node_of(t[1]);
    const NodeId b = node_of(t[2]);
    const bool ibgp = t[3] == "ibgp";
    for (const auto& [self, peer] : {std::pair{a, b}, std::pair{b, a}}) {
      auto& dev = result_.net.device(self);
      if (!dev.bgp) dev.bgp.emplace();
      if (dev.bgp->session_with(peer) != nullptr) fail("duplicate bgp session");
      BgpSession s;
      s.peer = peer;
      s.ibgp = ibgp;
      dev.bgp->sessions.push_back(std::move(s));
    }
  }

  RouteMap& map_for(const std::vector<std::string_view>& t) {
    auto& dev = result_.net.device(node_of(t[1]));
    if (!dev.bgp) fail("node has no bgp config");
    auto* session = dev.bgp->session_with(node_of(t[2]));
    if (session == nullptr) fail("no bgp session between given nodes");
    if (t[3] == "import") return session->import;
    if (t[3] == "export") return session->export_;
    fail("expected import|export");
  }

  void handle_route_map(const std::vector<std::string_view>& t) {
    if (t.size() < 5) {
      fail("usage: route-map <node> <peer> import|export permit|deny [options]");
    }
    RouteMap& rm = map_for(t);
    RouteMapClause clause;
    if (t[4] == "permit") {
      clause.action.permit = true;
    } else if (t[4] == "deny") {
      clause.action.permit = false;
    } else {
      fail("expected permit|deny");
    }
    std::size_t i = 5;
    while (i < t.size()) {
      const std::string_view opt = t[i];
      if (opt == "or-longer") {
        clause.match.prefix_mode = RouteMapMatch::PrefixMode::kOrLonger;
        ++i;
        continue;
      }
      if (i + 1 >= t.size()) fail("option '" + std::string(opt) + "' needs a value");
      const std::string_view val = t[i + 1];
      if (opt == "match-prefix") {
        clause.match.prefix = prefix_of(val);
      } else if (opt == "match-community") {
        clause.match.community = community_of(val);
      } else if (opt == "match-max-path-len") {
        clause.match.max_path_len =
            static_cast<std::uint16_t>(uint_of(val, UINT16_MAX));
      } else if (opt == "set-local-pref") {
        clause.action.set_local_pref = uint_of(val);
      } else if (opt == "add-community") {
        clause.action.add_community = community_of(val);
      } else if (opt == "prepend") {
        clause.action.prepend = static_cast<std::uint8_t>(uint_of(val, UINT8_MAX));
      } else {
        fail("unknown route-map option '" + std::string(opt) + "'");
      }
      i += 2;
    }
    rm.clauses.push_back(std::move(clause));
  }

  void handle_route_map_default(const std::vector<std::string_view>& t) {
    if (t.size() != 5) fail("usage: route-map-default <node> <peer> import|export permit|deny");
    RouteMap& rm = map_for(t);
    if (t[4] == "permit") {
      rm.default_permit = true;
    } else if (t[4] == "deny") {
      rm.default_permit = false;
    } else {
      fail("expected permit|deny");
    }
  }

  ParsedNetwork result_;
  std::size_t line_no_ = 0;
};

}  // namespace

ParsedNetwork parse_network_config(std::string_view text) {
  return Parser{}.run(text);
}

bool parse_network_config(std::string_view text, ParsedNetwork& out,
                          std::string& error) {
  try {
    out = Parser{}.run(text);
    return true;
  } catch (const ConfigParseError& e) {
    out = ParsedNetwork{};
    error = e.what();
    return false;
  }
}

}  // namespace plankton
