#include "config/network.hpp"

#include <algorithm>

namespace plankton {

NodeId Network::add_device(std::string name, IpAddr loopback) {
  const NodeId id = topo.add_node(name);
  DeviceConfig cfg;
  cfg.name = std::move(name);
  cfg.loopback = loopback;
  devices.push_back(std::move(cfg));
  return id;
}

std::optional<NodeId> Network::find_device(std::string_view name) const {
  for (NodeId n = 0; n < devices.size(); ++n) {
    if (devices[n].name == name) return n;
  }
  return std::nullopt;
}

std::optional<NodeId> Network::owner_of(IpAddr a) const {
  for (NodeId n = 0; n < devices.size(); ++n) {
    if (devices[n].loopback == a && a != IpAddr()) return n;
  }
  return std::nullopt;
}

std::vector<Prefix> Network::mentioned_prefixes() const {
  std::vector<Prefix> out;
  auto add_route_map = [&out](const RouteMap& rm) {
    for (const auto& clause : rm.clauses) {
      if (clause.match.prefix) out.push_back(*clause.match.prefix);
    }
  };
  for (const auto& dev : devices) {
    if (dev.loopback != IpAddr()) out.push_back(Prefix::host(dev.loopback));
    for (const auto& p : dev.ospf.originated) out.push_back(p);
    if (dev.bgp) {
      for (const auto& p : dev.bgp->originated) out.push_back(p);
      for (const auto& s : dev.bgp->sessions) {
        add_route_map(s.import);
        add_route_map(s.export_);
      }
    }
    for (const auto& sr : dev.statics) {
      out.push_back(sr.dst);
      if (sr.via_ip) out.push_back(Prefix::host(*sr.via_ip));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::string> Network::validate() const {
  std::vector<std::string> problems;
  if (devices.size() != topo.node_count()) {
    problems.push_back("device list size does not match topology node count");
    return problems;
  }
  for (NodeId n = 0; n < devices.size(); ++n) {
    const auto& dev = devices[n];
    if (dev.bgp) {
      for (const auto& s : dev.bgp->sessions) {
        if (s.peer >= devices.size()) {
          problems.push_back(dev.name + ": BGP session with unknown node id");
          continue;
        }
        const auto& peer = devices[s.peer];
        if (!peer.bgp) {
          problems.push_back(dev.name + ": BGP session with non-BGP device " +
                             peer.name);
          continue;
        }
        const auto* back = peer.bgp->session_with(n);
        if (back == nullptr) {
          problems.push_back(dev.name + ": BGP session with " + peer.name +
                             " is not configured symmetrically");
        } else if (back->ibgp != s.ibgp) {
          problems.push_back(dev.name + "<->" + peer.name +
                             ": session type (iBGP/eBGP) mismatch");
        }
        if (!s.ibgp && topo.find_link(n, s.peer) == kNoLink) {
          problems.push_back(dev.name + ": eBGP session with non-adjacent " +
                             peer.name);
        }
        if (s.ibgp && (dev.loopback == IpAddr() || peer.loopback == IpAddr())) {
          problems.push_back(dev.name + "<->" + peer.name +
                             ": iBGP requires loopbacks on both ends");
        }
      }
    }
    for (const auto& sr : dev.statics) {
      const int modes = int(sr.via_neighbor != kNoNode) + int(sr.via_ip.has_value()) +
                        int(sr.drop);
      if (modes != 1) {
        problems.push_back(dev.name + ": static route to " + sr.dst.str() +
                           " must have exactly one of via-neighbor/via-ip/drop");
      }
      if (sr.via_neighbor != kNoNode && topo.find_link(n, sr.via_neighbor) == kNoLink) {
        problems.push_back(dev.name + ": static route via non-adjacent node");
      }
    }
  }
  return problems;
}

}  // namespace plankton
