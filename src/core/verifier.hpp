// Public entry point: end-to-end configuration verification.
//
//   Network net = ...;                     // or parse_network_config(text)
//   Verifier verifier(net, options);
//   ReachabilityPolicy policy({ingress});
//   VerifyResult r = verifier.verify(policy);
//
// The Verifier runs the full Plankton pipeline (Fig. 3): PEC computation,
// dependency analysis, dependency-aware parallel scheduling of per-PEC
// explicit-state model checking, and policy evaluation, returning per-PEC
// reports with counterexample trails on violation.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "pec/pec.hpp"
#include "policy/policy.hpp"
#include "rpvp/explorer.hpp"
#include "sched/deps.hpp"
#include "sched/shard.hpp"
#include "sched/work_stealing.hpp"

namespace plankton {

/// How the shard coordinator reaches its workers (VerifyOptions below).
enum class ShardTransportKind : std::uint8_t {
  kFork = 0,  ///< fork + socketpair children (default; plan shared by COW)
  kTcp = 1,   ///< pre-started plankton_worker processes, plan shipped as a
              ///< kBootstrap blob (requires a policy with a spec() form)
};

struct VerifyOptions {
  ExploreOptions explore;
  int cores = 1;                             ///< worker threads for PEC runs
  /// Parallel strategy for the SCC task graph; kFixedPool is the baseline
  /// single-ready-list pool kept for comparison; kMultiProcess shards the
  /// graph across forked worker processes (implied by shards > 0).
  sched::SchedulerKind scheduler = sched::SchedulerKind::kWorkStealing;
  /// Worker *processes* for the multi-process shard coordinator
  /// (sched/shard.hpp). 0 = in-process scheduling (the default); N >= 1
  /// forks N workers and streams outcomes/verdicts over the wire protocol.
  /// Verdicts, violation multisets, and state counts are bit-identical to
  /// the in-process run at any shard count.
  int shards = 0;
  /// Batch PEC verification (eqclass/pec_dedup.hpp): group isomorphic PECs
  /// and explore one representative per class, transferring clean "holds"
  /// verdicts to the members. Falls back to native member exploration on any
  /// non-clean representative result, so verdicts, violation multisets, and
  /// trail text stay bit-identical to a dedup-off run. Default on;
  /// `plankton_verify --no-pec-dedup` turns it off.
  bool pec_dedup = true;
  std::chrono::milliseconds wall_limit{0};   ///< 0 = none (whole verification)

  /// Resource governance (checker/budget.hpp). `budget.deadline` bounds the
  /// whole verification like `wall_limit`, but is split into per-PEC slices
  /// (a fair share of the remaining time over the PECs still unstarted) so
  /// one monster PEC cannot starve the rest; the state and memory caps apply
  /// to each PEC exploration. Exhaustion yields Verdict::kInconclusive with
  /// the tripped axis recorded — never a spurious hold.
  ResourceBudget budget;

  /// Shard supervision (sched/shard.hpp): worker heartbeat cadence and the
  /// coordinator's escalation ladder (soft deadline → progress probe, hard
  /// deadline → SIGKILL + reassign). Forwarded to ShardRunOptions.
  int shard_heartbeat_interval_ms = 100;
  int shard_soft_deadline_ms = 2000;
  int shard_hard_deadline_ms = 30000;
  /// Deterministic fault injection for the shard transport and worker loop
  /// (sched/fault.hpp); empty = no faults. CLI --fault-plan / env
  /// PLANKTON_FAULT_PLAN.
  sched::FaultPlan shard_fault_plan;

  // Test-only fault injection, forwarded to ShardRunOptions (the
  // crash-recovery suite kills workers mid-task through these).
  std::function<void(int shard, pid_t pid, std::size_t task)> shard_test_on_assign;
  int shard_test_worker_delay_ms = 0;

  /// Worker transport for the shard coordinator. kTcp connects worker slot s
  /// to shard_workers[s % n] ("host:port" plankton_worker listeners) and
  /// bootstraps each from a rendered-config + policy-spec blob; it falls
  /// back to fork (with a stderr note) when the policy has no spec() form.
  ShardTransportKind shard_transport = ShardTransportKind::kFork;
  std::vector<std::string> shard_workers;
  int shard_connect_timeout_ms = 5000;

  /// Intra-PEC work export: workers on export-eligible tasks (single PEC, no
  /// deps/dependents/class members, max_failures == 0, a frontier engine)
  /// periodically split half their pending frontier back to the coordinator
  /// for re-dispatch to idle workers as dynamic subtasks. Verdicts and the
  /// deduplicated violation set are preserved; state counts are not
  /// bit-identical (subtasks re-visit states the donor also reaches), which
  /// is why this is off by default.
  bool shard_split_export = false;
  std::uint32_t shard_export_check_every = 2048;  ///< offer cadence (pops)
  std::size_t shard_export_min_frontier = 16;     ///< don't split tiny frontiers
  int shard_export_max_per_pec = 64;              ///< coordinator arming cap
};

struct PecReport {
  PecId pec = 0;
  std::string pec_str;
  ExploreResult result;
  /// Representative PEC this report was translated from (kNoPec when the PEC
  /// was explored natively). Translated reports carry the representative's
  /// stats for reference but are excluded from VerifyResult::total, so the
  /// aggregate counts only work actually performed.
  PecId translated_from = kNoPec;
};

struct VerifyResult {
  bool holds = true;
  bool timed_out = false;
  /// Sound whole-run classification: kViolated on any violation, kHolds only
  /// when every PEC ran to completion within budget, kInconclusive otherwise.
  Verdict verdict = Verdict::kHolds;
  /// First budget axis that ended a PEC search early (kNone = none did).
  BudgetKind budget_tripped = BudgetKind::kNone;
  std::size_t pecs_inconclusive = 0;  ///< PEC runs ended by a budget
  /// False when any PEC's coverage was probabilistic (lossy visited backend
  /// or the memory-pressure exact→compact degradation).
  bool exhaustive = true;
  std::vector<PecReport> reports;   ///< one per verified (target) PEC
  SearchStats total;                ///< aggregated over all runs
  std::chrono::nanoseconds wall{0};
  std::size_t pecs_total = 0;       ///< PECs in the partition
  std::size_t pecs_verified = 0;    ///< target PECs model-checked
  std::size_t pecs_support = 0;     ///< upstream PECs run only for outcomes
  std::size_t scc_count = 0;
  bool unsupported_scc = false;     ///< an SCC with >1 PEC was approximated
  /// Batch PEC verification counters (VerifyOptions::pec_dedup). The
  /// class-compression ratio is pecs_verified / pec_classes when every
  /// target PEC is classed; pecs_deduped counts member PECs whose verdicts
  /// were translated from a representative, dedup_reruns those re-explored
  /// natively because the representative's result was not a clean hold.
  std::size_t pec_classes = 0;
  std::size_t pecs_deduped = 0;
  std::size_t dedup_reruns = 0;
  std::chrono::nanoseconds dedup_fingerprint_time{0};
  /// Coordinator wire counters (multi-process runs only; empty otherwise).
  sched::ShardStats shard;

  [[nodiscard]] std::string first_violation(const Topology& topo) const;
};

class Verifier {
 public:
  Verifier(const Network& net, VerifyOptions opts);

  [[nodiscard]] const Network& net() const { return net_; }
  [[nodiscard]] const PecSet& pecs() const { return pecs_; }
  [[nodiscard]] const PecDependencies& deps() const { return deps_; }

  /// Verifies `policy` on every PEC that carries routing information.
  VerifyResult verify(const Policy& policy);

  /// Verifies only the PEC containing `addr` (plus its dependency closure,
  /// which is run for outcomes but not policy-checked).
  VerifyResult verify_address(IpAddr addr, const Policy& policy);

  /// Verifies an explicit set of target PECs. This is the partial
  /// re-verification entry point for the serve daemon: after a config delta,
  /// only the invalidated PECs are passed here; budgets, dedup, POR and
  /// shards compose exactly as in a full run (dependency-closure PECs are
  /// still executed for outcomes, but only `targets` are policy-checked).
  VerifyResult verify_pecs(std::vector<PecId> targets, const Policy& policy);

 private:
  const Network& net_;
  VerifyOptions opts_;
  PecSet pecs_;
  PecDependencies deps_;
};

/// Serves one shard-coordinator connection on an established socket (the
/// plankton_worker accept loop calls this per connection): reads the
/// kBootstrap frame, reconstructs network/policy/plan from it, answers
/// kBootstrapAck carrying the plan hash, then runs the ordinary shard worker
/// session until kShutdown/EOF. Returns the run_worker_session exit code
/// (0 orderly, 2 transport error, 3 protocol/bootstrap error, 4 body
/// exception); the caller keeps accepting either way.
int serve_shard_worker_session(int fd);

}  // namespace plankton
