#include "core/verifier.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>

#include "checker/budget.hpp"
#include "eqclass/pec_dedup.hpp"
#include "sched/outcome_store.hpp"

namespace plankton {
namespace {

/// Policy used when a PEC is verified only to produce outcomes for
/// dependents; it never fails.
class TruePolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "true"; }
  [[nodiscard]] bool check(const ConvergedView&, std::string&) const override {
    return true;
  }
};

/// One schedulable unit: an SCC of the PEC dependency graph.
struct SccTask {
  std::uint32_t scc = 0;
  std::vector<PecId> pecs;
  bool is_target = false;      ///< contains at least one policy-checked PEC
};

}  // namespace

std::string VerifyResult::first_violation(const Topology& topo) const {
  (void)topo;
  for (const auto& rep : reports) {
    if (!rep.result.violations.empty()) {
      const auto& v = rep.result.violations.front();
      return "PEC " + rep.pec_str + ": " + v.message +
             (v.failures.empty() ? "" : " under failures " + v.failures.str());
    }
  }
  return "";
}

Verifier::Verifier(const Network& net, VerifyOptions opts)
    : net_(net), opts_(opts), pecs_(compute_pecs(net)),
      deps_(compute_dependencies(net, pecs_)) {}

VerifyResult Verifier::verify(const Policy& policy) {
  return verify_pecs(pecs_.routed(), policy);
}

VerifyResult Verifier::verify_address(IpAddr addr, const Policy& policy) {
  return verify_pecs({pecs_.find(addr)}, policy);
}

VerifyResult Verifier::verify_pecs(std::vector<PecId> targets, const Policy& policy) {
  const auto start = std::chrono::steady_clock::now();
  VerifyResult result;
  result.pecs_total = pecs_.pecs.size();

  // Dependency closure: every upstream PEC must be run (for outcomes) before
  // its dependents.
  std::vector<std::uint8_t> needed(pecs_.pecs.size(), 0);
  std::vector<std::uint8_t> is_target(pecs_.pecs.size(), 0);
  std::vector<PecId> frontier = targets;
  for (const PecId p : targets) is_target[p] = 1;
  while (!frontier.empty()) {
    const PecId p = frontier.back();
    frontier.pop_back();
    if (needed[p] != 0) continue;
    needed[p] = 1;
    for (const PecId q : deps_.depends_on[p]) frontier.push_back(q);
  }

  // Batch PEC verification (eqclass/pec_dedup.hpp): group isomorphic target
  // PECs and schedule one representative per class. Members are excluded
  // from the task graph; their reports are produced when their
  // representative finishes — translated on a clean hold, re-explored
  // natively otherwise.
  PecClassSet classes;
  const bool dedup_on = opts_.pec_dedup;
  if (dedup_on) {
    classes = compute_pec_classes(net_, pecs_, deps_, policy, needed, is_target);
    result.pec_classes = classes.stats.classes;
    result.pecs_deduped = classes.stats.deduped;
    result.dedup_fingerprint_time = classes.stats.fingerprint_time;
  }
  std::atomic<std::uint64_t> dedup_reruns{0};

  // Build the SCC task graph restricted to needed PECs (minus class members,
  // which ride on their representative's task).
  std::vector<SccTask> tasks;
  std::vector<std::int32_t> task_of_scc(deps_.sccs.size(), -1);
  for (std::uint32_t s = 0; s < deps_.sccs.size(); ++s) {
    std::vector<PecId> members;
    bool target = false;
    for (const PecId p : deps_.sccs[s]) {
      if (needed[p] == 0) continue;
      if (dedup_on && classes.is_translated_member(p)) continue;
      members.push_back(p);
      target = target || is_target[p] != 0;
    }
    if (members.empty()) continue;
    task_of_scc[s] = static_cast<std::int32_t>(tasks.size());
    SccTask t;
    t.scc = s;
    t.pecs = std::move(members);
    t.is_target = target;
    tasks.push_back(std::move(t));
  }
  result.scc_count = tasks.size();

  sched::TaskGraph graph;
  graph.dependents.resize(tasks.size());
  graph.waiting_on.assign(tasks.size(), 0);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    for (const std::uint32_t dep : deps_.scc_deps[tasks[i].scc]) {
      const std::int32_t j = task_of_scc[dep];
      if (j < 0) continue;  // dependency not needed => its pecs carry no info
      ++graph.waiting_on[i];
      graph.dependents[static_cast<std::size_t>(j)].push_back(i);
    }
    if (tasks[i].pecs.size() > 1) result.unsupported_scc = true;
  }

  TruePolicy true_policy;
  const bool cross_deps = deps_.has_cross_pec_deps();

  // Needed dependents per PEC (how many needed PECs will read its outcomes).
  // The in-process path seeds its eviction atomics from this; the sharded
  // path uses it directly (static — the coordinator owns eviction there).
  std::vector<std::ptrdiff_t> needed_dependents(pecs_.pecs.size(), 0);
  for (PecId p = 0; p < pecs_.pecs.size(); ++p) {
    for (const PecId q : deps_.dependents[p]) {
      if (needed[q] != 0) ++needed_dependents[p];
    }
  }

  const bool has_wall_limit = opts_.wall_limit.count() > 0;
  const auto wall_deadline = start + opts_.wall_limit;

  // Budget deadline fair-sharing: the global deadline is split into per-PEC
  // slices of remaining_time / remaining_unstarted_pecs, so one monster PEC
  // trips its own slice instead of starving everything scheduled after it.
  // `pecs_started` is exact in-process; in forked shard workers each sees
  // only its own copy-on-write increments, which *under*-counts started PECs
  // and therefore only makes slices more conservative — never unfair.
  // `scheduled_pecs` is atomic because dedup member reruns are scheduled
  // dynamically (expand_class bumps it per dispatched rerun) — without that,
  // started can pass the static count and the final PEC's divisor collapses.
  const bool has_budget_deadline = opts_.budget.deadline.count() > 0;
  const auto budget_deadline = start + opts_.budget.deadline;
  std::atomic<std::size_t> scheduled_pecs{0};
  {
    std::size_t statically_scheduled = 0;
    for (const SccTask& t : tasks) statically_scheduled += t.pecs.size();
    scheduled_pecs.store(statically_scheduled, std::memory_order_relaxed);
  }
  std::atomic<std::size_t> pecs_started{0};

  // Shared per-PEC execution: the in-process scheduler body and the forked
  // shard workers both run this. `has_dependents` is passed in because the
  // two paths track it differently (runtime atomics vs the static count);
  // recorded outcomes stay in the returned report for the caller to store
  // or ship.
  auto run_pec_core = [&](PecId pec_id, bool target, bool has_dependents,
                          const OutcomeStore& store) -> PecReport {
    const Pec& pec = pecs_.pecs[pec_id];
    ExploreOptions eo = opts_.explore;
    const bool has_deps = !deps_.depends_on[pec_id].empty();
    eo.record_outcomes = has_dependents;
    // §4.3: DEC-based failure choice only without cross-PEC dependencies
    // (failure sets must coordinate exactly across PEC runs).
    if (cross_deps && (has_deps || has_dependents)) eo.lec_failures = false;
    // State/memory caps and the degradation opt-in apply per exploration;
    // the deadline is replaced by this PEC's fair-share slice below.
    eo.budget = opts_.budget;
    eo.budget.deadline = std::chrono::milliseconds(0);
    const auto deadline_exhausted = [&]() {
      PecReport rep;
      rep.pec = pec_id;
      rep.pec_str = pec.str();
      rep.result.timed_out = true;
      rep.result.budget_tripped = BudgetKind::kDeadline;
      return rep;
    };
    if (has_wall_limit) {
      const auto now = std::chrono::steady_clock::now();
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(wall_deadline - now);
      if (remaining.count() <= 0) return deadline_exhausted();
      if (eo.time_limit.count() == 0 || remaining < eo.time_limit) {
        eo.time_limit = remaining;
      }
    }
    if (has_budget_deadline) {
      const std::size_t started =
          pecs_started.fetch_add(1, std::memory_order_relaxed);
      const auto now = std::chrono::steady_clock::now();
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          budget_deadline - now);
      if (remaining.count() <= 0) return deadline_exhausted();
      eo.budget.deadline = fair_share_slice(
          remaining, scheduled_pecs.load(std::memory_order_relaxed), started);
    }
    StoreProvider provider(store, deps_.depends_on[pec_id], has_dependents);
    Explorer explorer(net_, pec, make_tasks(net_, pec),
                      target ? policy : static_cast<const Policy&>(true_policy), eo,
                      &provider);
    PecReport rep;
    rep.pec = pec_id;
    rep.pec_str = pec.str();
    rep.result = explorer.run();
    return rep;
  };

  // Class tail of a finished representative run (both execution paths call
  // this right after run_pec_core on a representative). A clean hold
  // transfers to every member — the validated isomorphism guarantees the
  // members' exploration state graphs are isomorphic to the
  // representative's. Any non-clean result (violation, timeout, state cap)
  // re-explores the members natively so that reported trails are the
  // members' own, bit-identical to a dedup-off run; under early stop a
  // violated representative already decides the verdict and the members are
  // skipped like any other unscheduled task. `rerun` dispatches one
  // member's native re-exploration: the sharded worker runs it inline, the
  // in-process path spawns it as a dynamic subtask so idle workers pick
  // members up in parallel (what dedup-off parallelism would have done).
  auto expand_class = [&](const PecReport& rep, auto&& emit, auto&& rerun) {
    if (!dedup_on) return;
    const auto& members = classes.members_of[rep.pec];
    if (members.empty()) return;
    const bool clean = rep.result.holds && !rep.result.timed_out &&
                       !rep.result.state_limit_hit &&
                       !rep.result.memory_limit_hit &&
                       rep.result.budget_tripped == BudgetKind::kNone &&
                       rep.result.exhaustive && rep.result.violations.empty();
    if (clean) {
      for (const PecId m : members) {
        PecReport t;
        t.pec = m;
        t.pec_str = pecs_.pecs[m].str();
        t.translated_from = rep.pec;
        t.result.holds = true;
        t.result.stats = rep.result.stats;
        emit(std::move(t));
      }
      return;
    }
    if (!rep.result.holds && !opts_.explore.find_all_violations) return;
    for (const PecId m : members) {
      dedup_reruns.fetch_add(1, std::memory_order_relaxed);
      // Reruns are scheduled work the static count never saw; register them
      // before dispatch so the fair-share divisor stays ahead of started.
      scheduled_pecs.fetch_add(1, std::memory_order_relaxed);
      rerun(m);
    }
  };

  // Folds one per-PEC report into the aggregate result — the single
  // definition both execution paths use, so the sharded and in-process
  // merges cannot drift (the bit-identical invariant the shard tests pin).
  auto merge_report = [&](PecReport&& rep) {
    // Translated reports repeat their representative's stats; the aggregate
    // counts only exploration that actually happened.
    if (rep.translated_from == kNoPec) result.total.absorb(rep.result.stats);
    if (rep.result.timed_out) result.timed_out = true;
    if (!rep.result.holds) result.holds = false;
    if (rep.result.budget_tripped != BudgetKind::kNone &&
        result.budget_tripped == BudgetKind::kNone) {
      result.budget_tripped = rep.result.budget_tripped;
    }
    if (!rep.result.exhaustive) result.exhaustive = false;
    if (rep.translated_from == kNoPec &&
        rep.result.verdict() == Verdict::kInconclusive) {
      ++result.pecs_inconclusive;
    }
    if (is_target[rep.pec] != 0) {
      ++result.pecs_verified;
      result.reports.push_back(std::move(rep));
    } else {
      ++result.pecs_support;
    }
  };

  // Verdict taxonomy (checker/budget.hpp): a violation is sound even from a
  // partial search, so it always wins; any exhaustion or lossy search mode
  // degrades a would-be hold to kInconclusive — never to a spurious kHolds.
  auto finalize_verdict = [&]() {
    if (!result.holds) {
      result.verdict = Verdict::kViolated;
    } else if (result.timed_out ||
               result.budget_tripped != BudgetKind::kNone ||
               result.pecs_inconclusive > 0 || !result.exhaustive) {
      result.verdict = Verdict::kInconclusive;
      if (result.budget_tripped == BudgetKind::kNone && result.timed_out) {
        result.budget_tripped = BudgetKind::kDeadline;
      }
    } else {
      result.verdict = Verdict::kHolds;
    }
    result.wall = std::chrono::steady_clock::now() - start;
  };

  // ---- multi-process sharding (sched/shard.hpp) ---------------------------
  // The coordinator forks workers, streams upstream outcomes to them in the
  // OutcomeStore wire format, and merges their verdicts. Exploration is
  // deterministic per PEC, so the merged result is bit-identical to the
  // in-process run at any shard count. Returns false only on a
  // coordinator-level failure (fork exhaustion, poisoned task), in which
  // case the in-process path below recovers the verdict.
  auto try_sharded = [&]() -> bool {
    std::vector<sched::ShardTaskSpec> specs(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      specs[i].pecs = tasks[i].pecs;
      if (dedup_on) {
        // Ship class membership with the task: the worker produces the
        // members' reports (translated or natively re-run) itself, so only
        // results ever cross the wire.
        specs[i].class_members.resize(tasks[i].pecs.size());
        for (std::size_t mi = 0; mi < tasks[i].pecs.size(); ++mi) {
          specs[i].class_members[mi] = classes.members_of[tasks[i].pecs[mi]];
        }
      }
      for (const PecId p : tasks[i].pecs) {
        for (const PecId d : deps_.depends_on[p]) {
          if (needed[d] == 0) continue;  // outside the closure: never read
          const auto& mates = tasks[i].pecs;
          if (std::find(mates.begin(), mates.end(), d) != mates.end()) continue;
          if (std::find(specs[i].deps.begin(), specs[i].deps.end(), d) ==
              specs[i].deps.end()) {
            specs[i].deps.push_back(d);
          }
        }
      }
    }
    sched::ShardRunOptions so;
    so.shards = std::max(1, opts_.shards);
    so.stop_on_violation = !opts_.explore.find_all_violations;
    so.test_on_assign = opts_.shard_test_on_assign;
    so.test_worker_task_delay_ms = opts_.shard_test_worker_delay_ms;
    so.heartbeat_interval_ms = opts_.shard_heartbeat_interval_ms;
    so.soft_deadline_ms = opts_.shard_soft_deadline_ms;
    so.hard_deadline_ms = opts_.shard_hard_deadline_ms;
    so.fault_plan = opts_.shard_fault_plan;

    // Runs in the forked worker. The in-process path reads its eviction
    // atomics to decide has_dependents; the only decrements that can have
    // landed when a PEC starts come from already-finished mates of the same
    // (cyclic) SCC task — every outside dependent is scheduled strictly
    // after this task completes. Replaying those mate decrements over the
    // static counts reproduces the runtime value exactly.
    const auto body = [&](std::size_t task_idx, OutcomeStore& upstream)
        -> std::vector<sched::ShardPecResult> {
      std::vector<sched::ShardPecResult> out;
      const SccTask& task = tasks[task_idx];
      for (std::size_t mi = 0; mi < task.pecs.size(); ++mi) {
        const PecId p = task.pecs[mi];
        const bool target = task.is_target && is_target[p] != 0;
        std::ptrdiff_t pending = needed_dependents[p];
        for (std::size_t mj = 0; mj < mi; ++mj) {
          const auto& mate_deps = deps_.depends_on[task.pecs[mj]];
          if (std::find(mate_deps.begin(), mate_deps.end(), p) !=
              mate_deps.end()) {
            --pending;
          }
        }
        const bool has_dependents = pending > 0;
        PecReport rep = run_pec_core(p, target, has_dependents, upstream);
        // Publish into the worker-local store like the in-process run_pec
        // does: later mates of a cyclic SCC resolve against them there, and
        // the worker ships the same single copy back when `record` is set.
        if (has_dependents) upstream.put(p, std::move(rep.result.outcomes));
        auto to_shard_result = [&out](PecReport&& pr, bool record) {
          sched::ShardPecResult r;
          r.pec = pr.pec;
          r.holds = pr.result.holds;
          r.timed_out = pr.result.timed_out;
          r.state_limit_hit = pr.result.state_limit_hit;
          r.memory_limit_hit = pr.result.memory_limit_hit;
          r.budget_tripped = pr.result.budget_tripped;
          r.exhaustive = pr.result.exhaustive;
          r.stats = pr.result.stats;
          r.translated = pr.translated_from != kNoPec;
          for (Violation& v : pr.result.violations) {
            sched::ViolationMsg vm;
            vm.pec = pr.pec;
            vm.failed_links.assign(v.failures.ids().begin(),
                                   v.failures.ids().end());
            vm.message = std::move(v.message);
            vm.trail_text = std::move(v.trail_text);
            r.violations.push_back(std::move(vm));
          }
          r.record = record;
          out.push_back(std::move(r));
        };
        // Class tail before the representative's violations are moved out.
        // Members re-run inline: the worker process is single-threaded.
        expand_class(
            rep, [&](PecReport&& t) { to_shard_result(std::move(t), false); },
            [&](PecId m) {
              to_shard_result(run_pec_core(m, true, false, upstream), false);
            });
        to_shard_result(std::move(rep), has_dependents);
      }
      return out;
    };

    sched::ShardRunResult rr =
        sched::run_sharded_task_graph(net_, pecs_, so, graph, specs, body);
    if (!rr.ok) {
      std::fprintf(stderr,
                   "plankton: sharded run failed (%s); retrying in-process\n",
                   rr.error.c_str());
      return false;
    }
    result.shard = std::move(rr.stats);
    const std::size_t links = net_.topo.link_count();
    for (sched::ShardPecResult& sr : rr.reports) {
      PecReport rep;
      rep.pec = sr.pec;
      rep.pec_str = pecs_.pecs[sr.pec].str();
      if (sr.translated) {
        rep.translated_from = classes.rep_of[sr.pec];
      } else if (dedup_on && classes.is_translated_member(sr.pec)) {
        ++result.dedup_reruns;  // member explored natively in the worker
      }
      rep.result.holds = sr.holds;
      rep.result.timed_out = sr.timed_out;
      rep.result.state_limit_hit = sr.state_limit_hit;
      rep.result.memory_limit_hit = sr.memory_limit_hit;
      rep.result.budget_tripped = sr.budget_tripped;
      rep.result.exhaustive = sr.exhaustive;
      rep.result.stats = sr.stats;
      for (sched::ViolationMsg& vm : sr.violations) {
        Violation v;
        v.failures = FailureSet(links);
        for (const LinkId l : vm.failed_links) v.failures.fail(l);
        v.message = std::move(vm.message);
        v.trail_text = std::move(vm.trail_text);
        rep.result.violations.push_back(std::move(v));
      }
      merge_report(std::move(rep));
    }
    std::sort(result.reports.begin(), result.reports.end(),
              [](const PecReport& x, const PecReport& y) { return x.pec < y.pec; });
    return true;
  };

  if (opts_.shards > 0 ||
      opts_.scheduler == sched::SchedulerKind::kMultiProcess) {
    if (try_sharded()) {
      finalize_verdict();
      return result;
    }
    // Coordinator-level failure: fall back to the in-process scheduler below
    // rather than losing the verdict.
  }

  OutcomeStore store(net_, pecs_);

  // Outcome eviction: once the last needed dependent of a PEC completes, its
  // stored outcomes can never be read again — release them so the store stays
  // bounded on long runs (the shard coordinator does the same per worker).
  // Counters are atomics: the last finishing worker evicts.
  auto pending_dependents =
      std::make_unique<std::atomic<std::ptrdiff_t>[]>(pecs_.pecs.size());
  for (PecId p = 0; p < pecs_.pecs.size(); ++p) {
    pending_dependents[p].store(needed_dependents[p], std::memory_order_relaxed);
  }

  std::atomic<bool> stop{false};

  auto run_pec = [&](PecId pec_id, bool target) -> PecReport {
    // Record outcomes only when a *needed* dependent may still read them.
    // Acyclic dependents run strictly after this PEC, so the counter is
    // pristine here; within a cyclic SCC an already-finished mate has
    // decremented it, which only sharpens the answer (that mate can no
    // longer read). Dependents outside the needed closure never read.
    const bool has_dependents =
        pending_dependents[pec_id].load(std::memory_order_acquire) > 0;
    PecReport rep = run_pec_core(pec_id, target, has_dependents, store);
    if (has_dependents) store.put(pec_id, std::move(rep.result.outcomes));
    rep.result.outcomes.clear();
    return rep;
  };

  // Runs after every run_pec return — including the wall-limit timeout path,
  // so time-limited runs still release exhausted dependencies.
  auto release_dependencies = [&](PecId pec_id) {
    for (const PecId d : deps_.depends_on[pec_id]) {
      if (pending_dependents[d].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        store.evict(d);
      }
    }
  };

  // Result aggregation is lock-free: each worker appends to its own buffer
  // (the scheduler never runs two bodies on one worker concurrently) and the
  // buffers are merged after the join. Only the early-stop flag is shared.
  const int threads = std::max(1, opts_.cores);
  struct WorkerBuffer {
    std::vector<PecReport> reports;
  };
  std::vector<WorkerBuffer> buffers(static_cast<std::size_t>(threads));

  sched::run_task_graph(
      opts_.scheduler, threads, graph, [&](sched::TaskContext& tc) {
        const SccTask& task = tasks[tc.task()];
        if (stop.load(std::memory_order_relaxed)) return;
        // SCCs are verified as one unit; our prototype runs multi-PEC SCCs
        // sequentially (the paper expects them to "almost never" occur).
        for (const PecId p : task.pecs) {
          PecReport rep = run_pec(p, task.is_target && is_target[p] != 0);
          release_dependencies(p);
          if (!rep.result.holds && !opts_.explore.find_all_violations) {
            stop.store(true, std::memory_order_relaxed);
          }
          auto& buf = buffers[static_cast<std::size_t>(tc.worker())].reports;
          expand_class(
              rep, [&](PecReport&& t) { buf.push_back(std::move(t)); },
              [&](PecId m) {
                // Fallback members become dynamic subtasks: they land on
                // this worker's deque and idle workers steal them, matching
                // the parallelism of the dedup-off task graph (reruns only
                // happen in find-all mode, so no stop-flag handling here).
                tc.spawn([&, m](sched::TaskContext& sub) {
                  // Verdict folding happens in merge_report after the join.
                  buffers[static_cast<std::size_t>(sub.worker())]
                      .reports.push_back(run_pec_core(m, true, false, store));
                });
              });
          buf.push_back(std::move(rep));
        }
      });

  for (auto& buf : buffers) {
    for (auto& rep : buf.reports) merge_report(std::move(rep));
  }
  result.dedup_reruns = dedup_reruns.load(std::memory_order_relaxed);

  std::sort(result.reports.begin(), result.reports.end(),
            [](const PecReport& x, const PecReport& y) { return x.pec < y.pec; });
  finalize_verdict();
  return result;
}

}  // namespace plankton
