#include "core/verifier.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <limits>
#include <memory>

#include "checker/budget.hpp"
#include "config/parser.hpp"
#include "eqclass/pec_dedup.hpp"
#include "sched/outcome_store.hpp"
#include "sched/transport.hpp"
#include "serve/serve.hpp"

namespace plankton {
namespace {

/// Policy used when a PEC is verified only to produce outcomes for
/// dependents; it never fails.
class TruePolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "true"; }
  [[nodiscard]] bool check(const ConvergedView&, std::string&) const override {
    return true;
  }
};

/// One schedulable unit: an SCC of the PEC dependency graph.
struct SccTask {
  std::uint32_t scc = 0;
  std::vector<PecId> pecs;
  bool is_target = false;      ///< contains at least one policy-checked PEC
};

/// The verification plan: everything downstream of (network, policy,
/// targets, options) that both the coordinator and a bootstrapped remote
/// worker must agree on. Built by build_shard_plan as a deterministic
/// function of its inputs, so two hosts that parsed the same rendered
/// config derive the same plan independently — shard_plan_hash() is the
/// proof exchanged in the bootstrap handshake.
struct ShardPlan {
  std::vector<std::uint8_t> needed;     ///< dependency closure of targets
  std::vector<std::uint8_t> is_target;  ///< policy-checked PECs
  bool dedup_on = false;
  PecClassSet classes;
  std::vector<SccTask> tasks;
  sched::TaskGraph graph;
  /// Needed dependents per PEC (how many needed PECs will read its
  /// outcomes). The in-process path seeds its eviction atomics from this;
  /// the sharded path uses it directly (static — the coordinator owns
  /// eviction there).
  std::vector<std::ptrdiff_t> needed_dependents;
  std::vector<sched::ShardTaskSpec> specs;

  // Bookkeeping verify_pecs copies into VerifyResult:
  std::size_t pec_classes = 0;
  std::size_t pecs_deduped = 0;
  std::chrono::nanoseconds dedup_fingerprint_time{0};
  bool unsupported_scc = false;
};

/// True for engines whose outermost invocation runs on a Frontier — the
/// only structure the intra-PEC export mechanism can split and reseed.
[[nodiscard]] bool export_capable_engine(const ExploreOptions& eo) {
  const SearchEngineKind k = eo.engine();
  return k == SearchEngineKind::kBfs || k == SearchEngineKind::kPriority ||
         k == SearchEngineKind::kRandomRestart;
}

ShardPlan build_shard_plan(const Network& net, const PecSet& pecs,
                           const PecDependencies& deps, const Policy& policy,
                           const VerifyOptions& opts,
                           const std::vector<PecId>& targets) {
  (void)net;
  ShardPlan plan;

  // Dependency closure: every upstream PEC must be run (for outcomes) before
  // its dependents.
  plan.needed.assign(pecs.pecs.size(), 0);
  plan.is_target.assign(pecs.pecs.size(), 0);
  std::vector<PecId> frontier = targets;
  for (const PecId p : targets) plan.is_target[p] = 1;
  while (!frontier.empty()) {
    const PecId p = frontier.back();
    frontier.pop_back();
    if (plan.needed[p] != 0) continue;
    plan.needed[p] = 1;
    for (const PecId q : deps.depends_on[p]) frontier.push_back(q);
  }

  // Batch PEC verification (eqclass/pec_dedup.hpp): group isomorphic target
  // PECs and schedule one representative per class. Members are excluded
  // from the task graph; their reports are produced when their
  // representative finishes — translated on a clean hold, re-explored
  // natively otherwise.
  plan.dedup_on = opts.pec_dedup;
  if (plan.dedup_on) {
    plan.classes = compute_pec_classes(net, pecs, deps, policy, plan.needed,
                                       plan.is_target);
    plan.pec_classes = plan.classes.stats.classes;
    plan.pecs_deduped = plan.classes.stats.deduped;
    plan.dedup_fingerprint_time = plan.classes.stats.fingerprint_time;
  }

  // Build the SCC task graph restricted to needed PECs (minus class members,
  // which ride on their representative's task).
  std::vector<std::int32_t> task_of_scc(deps.sccs.size(), -1);
  for (std::uint32_t s = 0; s < deps.sccs.size(); ++s) {
    std::vector<PecId> members;
    bool target = false;
    for (const PecId p : deps.sccs[s]) {
      if (plan.needed[p] == 0) continue;
      if (plan.dedup_on && plan.classes.is_translated_member(p)) continue;
      members.push_back(p);
      target = target || plan.is_target[p] != 0;
    }
    if (members.empty()) continue;
    task_of_scc[s] = static_cast<std::int32_t>(plan.tasks.size());
    SccTask t;
    t.scc = s;
    t.pecs = std::move(members);
    t.is_target = target;
    plan.tasks.push_back(std::move(t));
  }

  plan.graph.dependents.resize(plan.tasks.size());
  plan.graph.waiting_on.assign(plan.tasks.size(), 0);
  for (std::size_t i = 0; i < plan.tasks.size(); ++i) {
    for (const std::uint32_t dep : deps.scc_deps[plan.tasks[i].scc]) {
      const std::int32_t j = task_of_scc[dep];
      if (j < 0) continue;  // dependency not needed => its pecs carry no info
      ++plan.graph.waiting_on[i];
      plan.graph.dependents[static_cast<std::size_t>(j)].push_back(i);
    }
    if (plan.tasks[i].pecs.size() > 1) plan.unsupported_scc = true;
  }

  plan.needed_dependents.assign(pecs.pecs.size(), 0);
  for (PecId p = 0; p < pecs.pecs.size(); ++p) {
    for (const PecId q : deps.dependents[p]) {
      if (plan.needed[q] != 0) ++plan.needed_dependents[p];
    }
  }

  // Wire task specs for the shard coordinator (also the structure the plan
  // hash covers).
  const bool export_base_ok = opts.shard_split_export &&
                              opts.explore.max_failures == 0 &&
                              export_capable_engine(opts.explore);
  plan.specs.resize(plan.tasks.size());
  for (std::size_t i = 0; i < plan.tasks.size(); ++i) {
    sched::ShardTaskSpec& spec = plan.specs[i];
    spec.pecs = plan.tasks[i].pecs;
    if (plan.dedup_on) {
      // Ship class membership with the task: the worker produces the
      // members' reports (translated or natively re-run) itself, so only
      // results ever cross the wire.
      spec.class_members.resize(plan.tasks[i].pecs.size());
      for (std::size_t mi = 0; mi < plan.tasks[i].pecs.size(); ++mi) {
        spec.class_members[mi] =
            plan.classes.members_of[plan.tasks[i].pecs[mi]];
      }
    }
    for (const PecId p : plan.tasks[i].pecs) {
      for (const PecId d : deps.depends_on[p]) {
        if (plan.needed[d] == 0) continue;  // outside the closure: never read
        const auto& mates = plan.tasks[i].pecs;
        if (std::find(mates.begin(), mates.end(), d) != mates.end()) continue;
        if (std::find(spec.deps.begin(), spec.deps.end(), d) ==
            spec.deps.end()) {
          spec.deps.push_back(d);
        }
      }
    }
    // Export eligibility (intra-PEC work export): only a single-phase,
    // self-contained exploration can hand frontier halves to another
    // process — one target PEC, nothing upstream or downstream of it, no
    // class members to translate from its (now partial) result.
    const PecId p0 = plan.tasks[i].pecs.front();
    spec.export_eligible =
        export_base_ok && plan.tasks[i].pecs.size() == 1 &&
        spec.deps.empty() && plan.tasks[i].is_target &&
        plan.is_target[p0] != 0 && plan.needed_dependents[p0] == 0 &&
        (!plan.dedup_on || plan.classes.members_of[p0].empty());
  }
  return plan;
}

/// FNV-1a over the plan structure. Covers everything that must agree between
/// coordinator and remote worker for the wire protocol to be meaningful:
/// PEC count, tasks (pecs + targeting + export arming), dependency edges,
/// dedup classing. Exploration knobs travel in the bootstrap itself and
/// need no cross-check.
std::uint64_t shard_plan_hash(const ShardPlan& plan, std::size_t pec_count) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  mix(pec_count);
  mix(plan.tasks.size());
  for (std::size_t i = 0; i < plan.tasks.size(); ++i) {
    const SccTask& t = plan.tasks[i];
    const sched::ShardTaskSpec& spec = plan.specs[i];
    mix(t.pecs.size());
    for (const PecId p : t.pecs) mix(p);
    mix(t.is_target ? 1 : 0);
    mix(spec.export_eligible ? 1 : 0);
    mix(spec.deps.size());
    for (const PecId d : spec.deps) mix(d);
    mix(spec.class_members.size());
    for (const auto& members : spec.class_members) {
      mix(members.size());
      for (const PecId m : members) mix(m);
    }
    mix(plan.graph.dependents[i].size());
    for (const std::size_t d : plan.graph.dependents[i]) mix(d);
  }
  return h;
}

/// The per-PEC execution engine shared by every scheduling path: the
/// in-process pool, forked shard workers, and TCP-bootstrapped remote
/// workers all run PECs through here, which is what keeps their verdicts
/// bit-identical (and lets serve_shard_worker_session exist at all).
class ShardExecution {
 public:
  ShardExecution(const Network& net, const PecSet& pecs,
                 const PecDependencies& deps, const VerifyOptions& opts,
                 const Policy& policy, const ShardPlan& plan,
                 std::chrono::steady_clock::time_point start)
      : net_(net),
        pecs_(pecs),
        deps_(deps),
        opts_(opts),
        policy_(policy),
        plan_(plan),
        cross_deps_(deps.has_cross_pec_deps()),
        has_wall_limit_(opts.wall_limit.count() > 0),
        wall_deadline_(start + opts.wall_limit),
        has_budget_deadline_(opts.budget.deadline.count() > 0),
        budget_deadline_(start + opts.budget.deadline) {
    // Budget deadline fair-sharing: the global deadline is split into
    // per-PEC slices of remaining_time / remaining_unstarted_pecs, so one
    // monster PEC trips its own slice instead of starving everything
    // scheduled after it. `pecs_started` is exact in-process; in forked
    // shard workers each sees only its own copy-on-write increments, which
    // *under*-counts started PECs and therefore only makes slices more
    // conservative — never unfair. `scheduled_pecs` is atomic because dedup
    // member reruns and export subtasks are scheduled dynamically.
    std::size_t statically_scheduled = 0;
    for (const SccTask& t : plan.tasks) statically_scheduled += t.pecs.size();
    scheduled_pecs.store(statically_scheduled, std::memory_order_relaxed);
  }

  /// Worker-side binding of the intra-PEC export machinery for one run:
  /// the sink plus the frontier seed of an export subtask.
  struct ExportBinding {
    std::function<bool(std::vector<StateSnapshot>&&)> fn;
    std::vector<StateSnapshot> seed;
  };

  /// Shared per-PEC execution. `has_dependents` is passed in because the
  /// execution paths track it differently (runtime atomics vs the static
  /// count); recorded outcomes stay in the returned report for the caller
  /// to store or ship.
  PecReport run_pec_core(PecId pec_id, bool target, bool has_dependents,
                         const OutcomeStore& store,
                         ExportBinding* eb = nullptr) {
    const Pec& pec = pecs_.pecs[pec_id];
    ExploreOptions eo = opts_.explore;
    const bool has_deps = !deps_.depends_on[pec_id].empty();
    eo.record_outcomes = has_dependents;
    // §4.3: DEC-based failure choice only without cross-PEC dependencies
    // (failure sets must coordinate exactly across PEC runs).
    if (cross_deps_ && (has_deps || has_dependents)) eo.lec_failures = false;
    if (eb != nullptr) {
      eo.engine_export_fn = eb->fn;
      eo.engine_export_check_every = opts_.shard_export_check_every;
      eo.engine_export_min_frontier = opts_.shard_export_min_frontier;
      eo.engine_seed_frontier = std::move(eb->seed);
    }
    // State/memory caps and the degradation opt-in apply per exploration;
    // the deadline is replaced by this PEC's fair-share slice below.
    eo.budget = opts_.budget;
    eo.budget.deadline = std::chrono::milliseconds(0);
    const auto deadline_exhausted = [&]() {
      PecReport rep;
      rep.pec = pec_id;
      rep.pec_str = pec.str();
      rep.result.timed_out = true;
      rep.result.budget_tripped = BudgetKind::kDeadline;
      return rep;
    };
    if (has_wall_limit_) {
      const auto now = std::chrono::steady_clock::now();
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(wall_deadline_ -
                                                                now);
      if (remaining.count() <= 0) return deadline_exhausted();
      if (eo.time_limit.count() == 0 || remaining < eo.time_limit) {
        eo.time_limit = remaining;
      }
    }
    if (has_budget_deadline_) {
      const std::size_t started =
          pecs_started.fetch_add(1, std::memory_order_relaxed);
      const auto now = std::chrono::steady_clock::now();
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              budget_deadline_ - now);
      if (remaining.count() <= 0) return deadline_exhausted();
      eo.budget.deadline = fair_share_slice(
          remaining, scheduled_pecs.load(std::memory_order_relaxed), started);
    }
    StoreProvider provider(store, deps_.depends_on[pec_id], has_dependents);
    Explorer explorer(
        net_, pec, make_tasks(net_, pec),
        target ? policy_ : static_cast<const Policy&>(true_policy_), eo,
        &provider);
    PecReport rep;
    rep.pec = pec_id;
    rep.pec_str = pec.str();
    rep.result = explorer.run();
    return rep;
  }

  /// Class tail of a finished representative run (every execution path calls
  /// this right after run_pec_core on a representative). A clean hold
  /// transfers to every member — the validated isomorphism guarantees the
  /// members' exploration state graphs are isomorphic to the
  /// representative's. Any non-clean result (violation, timeout, state cap)
  /// re-explores the members natively so that reported trails are the
  /// members' own, bit-identical to a dedup-off run; under early stop a
  /// violated representative already decides the verdict and the members are
  /// skipped like any other unscheduled task. `rerun` dispatches one
  /// member's native re-exploration: the sharded worker runs it inline, the
  /// in-process path spawns it as a dynamic subtask so idle workers pick
  /// members up in parallel (what dedup-off parallelism would have done).
  template <typename Emit, typename Rerun>
  void expand_class(const PecReport& rep, Emit&& emit, Rerun&& rerun) {
    if (!plan_.dedup_on) return;
    const auto& members = plan_.classes.members_of[rep.pec];
    if (members.empty()) return;
    const bool clean = rep.result.holds && !rep.result.timed_out &&
                       !rep.result.state_limit_hit &&
                       !rep.result.memory_limit_hit &&
                       rep.result.budget_tripped == BudgetKind::kNone &&
                       rep.result.exhaustive && rep.result.violations.empty();
    if (clean) {
      for (const PecId m : members) {
        PecReport t;
        t.pec = m;
        t.pec_str = pecs_.pecs[m].str();
        t.translated_from = rep.pec;
        t.result.holds = true;
        t.result.stats = rep.result.stats;
        emit(std::move(t));
      }
      return;
    }
    if (!rep.result.holds && !opts_.explore.find_all_violations) return;
    for (const PecId m : members) {
      dedup_reruns.fetch_add(1, std::memory_order_relaxed);
      // Reruns are scheduled work the static count never saw; register them
      // before dispatch so the fair-share divisor stays ahead of started.
      scheduled_pecs.fetch_add(1, std::memory_order_relaxed);
      rerun(m);
    }
  }

  /// The shard worker body: runs one task's PECs (plus class tails) and
  /// converts reports to wire results. Runs inside forked workers and
  /// bootstrapped TCP workers alike.
  std::vector<sched::ShardPecResult> run_worker_task(
      std::size_t task_idx, OutcomeStore& upstream,
      const sched::SplitExporter& exporter) {
    std::vector<sched::ShardPecResult> out;
    const SccTask& task = plan_.tasks[task_idx];
    const sched::ShardTaskSpec& spec = plan_.specs[task_idx];
    for (std::size_t mi = 0; mi < task.pecs.size(); ++mi) {
      const PecId p = task.pecs[mi];
      const bool target = task.is_target && plan_.is_target[p] != 0;
      // The only decrements that can have landed when a PEC starts come
      // from already-finished mates of the same (cyclic) SCC task — every
      // outside dependent is scheduled strictly after this task completes.
      // Replaying those mate decrements over the static counts reproduces
      // the in-process runtime value exactly.
      std::ptrdiff_t pending = plan_.needed_dependents[p];
      for (std::size_t mj = 0; mj < mi; ++mj) {
        const auto& mate_deps = deps_.depends_on[task.pecs[mj]];
        if (std::find(mate_deps.begin(), mate_deps.end(), p) !=
            mate_deps.end()) {
          --pending;
        }
      }
      const bool has_dependents = pending > 0;
      ExportBinding eb;
      ExportBinding* ebp = nullptr;
      if (spec.export_eligible) {
        eb.fn = make_export_fn(p, exporter);
        ebp = &eb;
      }
      PecReport rep = run_pec_core(p, target, has_dependents, upstream, ebp);
      // Publish into the worker-local store like the in-process run_pec
      // does: later mates of a cyclic SCC resolve against them there, and
      // the worker ships the same single copy back when `record` is set.
      if (has_dependents) upstream.put(p, std::move(rep.result.outcomes));
      // Class tail before the representative's violations are moved out.
      // Members re-run inline: the worker process is single-threaded.
      expand_class(
          rep, [&](PecReport&& t) { to_shard_result(std::move(t), false, out); },
          [&](PecId m) {
            to_shard_result(run_pec_core(m, true, false, upstream), false, out);
          });
      to_shard_result(std::move(rep), has_dependents, out);
    }
    return out;
  }

  /// One export subtask: explore a donated frontier half of `pec` under the
  /// same options the donor ran, seeding the engine instead of starting at
  /// the root. Eligible PECs have no upstream dependencies, so an empty
  /// store suffices; sub-donations ride the same exporter.
  sched::ShardPecResult run_export_subtask(PecId pec,
                                           std::vector<StateSnapshot>&& snaps,
                                           const sched::SplitExporter& exporter) {
    // Dynamic work the static divisor never saw (mirrors expand_class).
    scheduled_pecs.fetch_add(1, std::memory_order_relaxed);
    OutcomeStore store(net_, pecs_);
    ExportBinding eb;
    eb.fn = make_export_fn(pec, exporter);
    eb.seed = std::move(snaps);
    std::vector<sched::ShardPecResult> out;
    to_shard_result(run_pec_core(pec, true, false, store, &eb), false, out);
    return std::move(out.front());
  }

  std::atomic<std::size_t> scheduled_pecs{0};
  std::atomic<std::size_t> pecs_started{0};
  std::atomic<std::uint64_t> dedup_reruns{0};

 private:
  [[nodiscard]] std::function<bool(std::vector<StateSnapshot>&&)>
  make_export_fn(PecId pec, const sched::SplitExporter& exporter) const {
    int exports_left = opts_.shard_export_max_per_pec > 0
                           ? opts_.shard_export_max_per_pec
                           : std::numeric_limits<int>::max();
    // Engine contract: returning false leaves the offered vector intact so
    // the engine re-injects it; the session-side exporter upholds the same
    // contract on send failure. The counter is the worker-side per-run cap
    // (the coordinator separately caps cumulative accepts per PEC).
    return [&exporter, exports_left,
            pec](std::vector<StateSnapshot>&& snaps) mutable {
      if (exports_left <= 0) return false;
      if (!exporter(pec, std::move(snaps))) return false;
      --exports_left;
      return true;
    };
  }

  static void to_shard_result(PecReport&& pr, bool record,
                              std::vector<sched::ShardPecResult>& out) {
    sched::ShardPecResult r;
    r.pec = pr.pec;
    r.holds = pr.result.holds;
    r.timed_out = pr.result.timed_out;
    r.state_limit_hit = pr.result.state_limit_hit;
    r.memory_limit_hit = pr.result.memory_limit_hit;
    r.budget_tripped = pr.result.budget_tripped;
    r.exhaustive = pr.result.exhaustive;
    r.stats = pr.result.stats;
    r.translated = pr.translated_from != kNoPec;
    for (Violation& v : pr.result.violations) {
      sched::ViolationMsg vm;
      vm.pec = pr.pec;
      vm.failed_links.assign(v.failures.ids().begin(), v.failures.ids().end());
      vm.message = std::move(v.message);
      vm.trail_text = std::move(v.trail_text);
      r.violations.push_back(std::move(vm));
    }
    r.record = record;
    out.push_back(std::move(r));
  }

  const Network& net_;
  const PecSet& pecs_;
  const PecDependencies& deps_;
  const VerifyOptions& opts_;
  const Policy& policy_;
  const ShardPlan& plan_;
  TruePolicy true_policy_;
  const bool cross_deps_;
  const bool has_wall_limit_;
  const std::chrono::steady_clock::time_point wall_deadline_;
  const bool has_budget_deadline_;
  const std::chrono::steady_clock::time_point budget_deadline_;
};

/// Blocking full-frame write for the bootstrap handshake (MSG_NOSIGNAL: a
/// coordinator gone mid-handshake is an EPIPE, not a dead worker daemon).
bool send_all_blocking(int fd, const std::string& data) {
  const char* p = data.data();
  std::size_t n = data.size();
  while (n > 0) {
    const ssize_t w = send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

std::string VerifyResult::first_violation(const Topology& topo) const {
  (void)topo;
  for (const auto& rep : reports) {
    if (!rep.result.violations.empty()) {
      const auto& v = rep.result.violations.front();
      return "PEC " + rep.pec_str + ": " + v.message +
             (v.failures.empty() ? "" : " under failures " + v.failures.str());
    }
  }
  return "";
}

Verifier::Verifier(const Network& net, VerifyOptions opts)
    : net_(net), opts_(opts), pecs_(compute_pecs(net)),
      deps_(compute_dependencies(net, pecs_)) {}

VerifyResult Verifier::verify(const Policy& policy) {
  return verify_pecs(pecs_.routed(), policy);
}

VerifyResult Verifier::verify_address(IpAddr addr, const Policy& policy) {
  return verify_pecs({pecs_.find(addr)}, policy);
}

VerifyResult Verifier::verify_pecs(std::vector<PecId> targets, const Policy& policy) {
  const auto start = std::chrono::steady_clock::now();
  VerifyResult result;
  result.pecs_total = pecs_.pecs.size();

  const ShardPlan plan =
      build_shard_plan(net_, pecs_, deps_, policy, opts_, targets);
  result.pec_classes = plan.pec_classes;
  result.pecs_deduped = plan.pecs_deduped;
  result.dedup_fingerprint_time = plan.dedup_fingerprint_time;
  result.scc_count = plan.tasks.size();
  result.unsupported_scc = plan.unsupported_scc;
  const auto& is_target = plan.is_target;

  ShardExecution ctx(net_, pecs_, deps_, opts_, policy, plan, start);

  // Folds one per-PEC report into the aggregate result — the single
  // definition both execution paths use, so the sharded and in-process
  // merges cannot drift (the bit-identical invariant the shard tests pin).
  auto merge_report = [&](PecReport&& rep) {
    // Translated reports repeat their representative's stats; the aggregate
    // counts only exploration that actually happened.
    if (rep.translated_from == kNoPec) result.total.absorb(rep.result.stats);
    if (rep.result.timed_out) result.timed_out = true;
    if (!rep.result.holds) result.holds = false;
    if (rep.result.budget_tripped != BudgetKind::kNone &&
        result.budget_tripped == BudgetKind::kNone) {
      result.budget_tripped = rep.result.budget_tripped;
    }
    if (!rep.result.exhaustive) result.exhaustive = false;
    if (rep.translated_from == kNoPec &&
        rep.result.verdict() == Verdict::kInconclusive) {
      ++result.pecs_inconclusive;
    }
    if (is_target[rep.pec] != 0) {
      ++result.pecs_verified;
      result.reports.push_back(std::move(rep));
    } else {
      ++result.pecs_support;
    }
  };

  // Verdict taxonomy (checker/budget.hpp): a violation is sound even from a
  // partial search, so it always wins; any exhaustion or lossy search mode
  // degrades a would-be hold to kInconclusive — never to a spurious kHolds.
  auto finalize_verdict = [&]() {
    if (!result.holds) {
      result.verdict = Verdict::kViolated;
    } else if (result.timed_out ||
               result.budget_tripped != BudgetKind::kNone ||
               result.pecs_inconclusive > 0 || !result.exhaustive) {
      result.verdict = Verdict::kInconclusive;
      if (result.budget_tripped == BudgetKind::kNone && result.timed_out) {
        result.budget_tripped = BudgetKind::kDeadline;
      }
    } else {
      result.verdict = Verdict::kHolds;
    }
    result.wall = std::chrono::steady_clock::now() - start;
  };

  // ---- multi-process sharding (sched/shard.hpp) ---------------------------
  // The coordinator spawns workers through a transport (fork children by
  // default, TCP-bootstrapped plankton_worker processes on request), streams
  // upstream outcomes to them in the OutcomeStore wire format, and merges
  // their verdicts. Exploration is deterministic per PEC, so the merged
  // result is bit-identical to the in-process run at any shard count (with
  // split export off). Returns false only on a coordinator-level failure
  // (fork exhaustion, poisoned task), in which case the in-process path
  // below recovers the verdict.
  auto try_sharded = [&]() -> bool {
    sched::ShardRunOptions so;
    so.shards = std::max(1, opts_.shards);
    so.stop_on_violation = !opts_.explore.find_all_violations;
    so.test_on_assign = opts_.shard_test_on_assign;
    so.test_worker_task_delay_ms = opts_.shard_test_worker_delay_ms;
    so.heartbeat_interval_ms = opts_.shard_heartbeat_interval_ms;
    so.soft_deadline_ms = opts_.shard_soft_deadline_ms;
    so.hard_deadline_ms = opts_.shard_hard_deadline_ms;
    so.fault_plan = opts_.shard_fault_plan;
    so.split_export = opts_.shard_split_export;
    so.export_max_per_pec = opts_.shard_export_max_per_pec;

    const auto body = [&](std::size_t task_idx, OutcomeStore& upstream)
        -> std::vector<sched::ShardPecResult> {
      const sched::SplitExporter no_export =
          [](PecId, std::vector<StateSnapshot>&&) { return false; };
      return ctx.run_worker_task(task_idx, upstream, no_export);
    };
    sched::ShardExportHooks hooks;
    hooks.run_task = [&](std::size_t task_idx, OutcomeStore& upstream,
                         const sched::SplitExporter& exporter) {
      return ctx.run_worker_task(task_idx, upstream, exporter);
    };
    hooks.run_subtask = [&](PecId pec, std::vector<StateSnapshot>&& snaps,
                            const sched::SplitExporter& exporter) {
      return ctx.run_export_subtask(pec, std::move(snaps), exporter);
    };

    // TCP transport: ship the plan as a bootstrap blob. Falls back to fork
    // when the policy cannot be rendered into the make_policy grammar —
    // remote workers rebuild the policy from its spec line, so a spec-less
    // policy cannot travel.
    std::unique_ptr<sched::TcpWorkerTransport> tcp;
    if (opts_.shard_transport == ShardTransportKind::kTcp) {
      const std::string policy_spec = policy.spec(net_);
      if (opts_.shard_workers.empty()) {
        std::fprintf(stderr,
                     "plankton: tcp shard transport needs worker addresses; "
                     "using fork transport\n");
      } else if (policy_spec.empty()) {
        std::fprintf(stderr,
                     "plankton: policy '%s' has no spec form for tcp "
                     "bootstrap; using fork transport\n",
                     policy.name().c_str());
      } else {
        serve::BootstrapMsg bm;
        bm.config_text = serve::render_config(net_);
        bm.policy_spec = policy_spec;
        bm.targets.assign(targets.begin(), targets.end());
        bm.pec_dedup = opts_.pec_dedup ? 1 : 0;
        bm.stop_on_violation = so.stop_on_violation ? 1 : 0;
        const ExploreOptions& eo = opts_.explore;
        bm.max_failures = eo.max_failures;
        bm.consistent_only = eo.consistent_only ? 1 : 0;
        bm.deterministic_nodes = eo.deterministic_nodes ? 1 : 0;
        bm.det_nodes_bgp = eo.det_nodes_bgp ? 1 : 0;
        bm.decision_independence = eo.decision_independence ? 1 : 0;
        bm.lec_failures = eo.lec_failures ? 1 : 0;
        bm.policy_pruning = eo.policy_pruning ? 1 : 0;
        bm.suppress_equivalent = eo.suppress_equivalent ? 1 : 0;
        bm.merge_updates = eo.merge_updates ? 1 : 0;
        bm.ad_cache = eo.ad_cache ? 1 : 0;
        bm.por = eo.por ? 1 : 0;
        bm.incremental_expand = eo.incremental_expand ? 1 : 0;
        bm.find_all_violations = eo.find_all_violations ? 1 : 0;
        bm.simulation = eo.simulation ? 1 : 0;
        bm.visited = static_cast<std::uint8_t>(eo.visited);
        bm.bloom_bits = eo.bloom_bits;
        bm.max_states = eo.max_states;
        bm.time_limit_ms = eo.time_limit.count();
        bm.budget_max_states = opts_.budget.max_states;
        bm.budget_max_bytes = opts_.budget.max_bytes;
        bm.budget_degrade_visited = opts_.budget.degrade_visited ? 1 : 0;
        const auto remaining_ms = [&](std::chrono::steady_clock::time_point
                                          deadline) -> std::int64_t {
          const auto rem = std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now());
          return std::max<std::int64_t>(1, rem.count());
        };
        if (opts_.budget.deadline.count() > 0) {
          bm.budget_deadline_ms = remaining_ms(start + opts_.budget.deadline);
        }
        if (opts_.wall_limit.count() > 0) {
          bm.wall_remaining_ms = remaining_ms(start + opts_.wall_limit);
        }
        bm.engine_kind = static_cast<std::uint8_t>(eo.engine_kind);
        bm.engine_seed = eo.engine_seed;
        bm.engine_split_every = eo.engine_split_every;
        bm.engine_restart_policy =
            static_cast<std::uint8_t>(eo.engine_restart_policy);
        bm.heartbeat_interval_ms = so.heartbeat_interval_ms;
        bm.max_frame_payload = so.max_frame_payload;
        bm.split_export = opts_.shard_split_export ? 1 : 0;
        bm.export_check_every = opts_.shard_export_check_every;
        bm.export_min_frontier = opts_.shard_export_min_frontier;
        bm.export_max_per_run = opts_.shard_export_max_per_pec;
        // The remote session runs as slot 0 / generation 1 locally, so the
        // coordinator resolves its FaultPlan per incarnation here and ships
        // the resolved faults with gen* (fire at any local generation). A
        // healthy incarnation ships an empty plan string.
        const auto payload_for = [bm, fp = so.fault_plan](
                                     std::size_t slot,
                                     int generation) mutable {
          const sched::WorkerFaults wf =
              fp.for_worker(static_cast<int>(slot), generation);
          if (wf.any()) {
            sched::FaultPlan resolved;
            resolved.faults = wf;
            resolved.all_generations = true;
            bm.fault_plan = resolved.str();
          } else {
            bm.fault_plan.clear();
          }
          return serve::encode_bootstrap(bm);
        };
        tcp = std::make_unique<sched::TcpWorkerTransport>(
            opts_.shard_workers,
            sched::TcpWorkerTransport::PayloadFactory(payload_for),
            shard_plan_hash(plan, pecs_.pecs.size()),
            opts_.shard_connect_timeout_ms);
      }
    }

    sched::ShardRunResult rr = sched::run_sharded_task_graph(
        net_, pecs_, so, plan.graph, plan.specs, body, tcp.get(), &hooks);
    if (!rr.ok) {
      std::fprintf(stderr,
                   "plankton: sharded run failed (%s); retrying in-process\n",
                   rr.error.c_str());
      return false;
    }
    result.shard = std::move(rr.stats);
    const std::size_t links = net_.topo.link_count();
    for (sched::ShardPecResult& sr : rr.reports) {
      PecReport rep;
      rep.pec = sr.pec;
      rep.pec_str = pecs_.pecs[sr.pec].str();
      if (sr.translated) {
        rep.translated_from = plan.classes.rep_of[sr.pec];
      } else if (plan.dedup_on && plan.classes.is_translated_member(sr.pec)) {
        ++result.dedup_reruns;  // member explored natively in the worker
      }
      rep.result.holds = sr.holds;
      rep.result.timed_out = sr.timed_out;
      rep.result.state_limit_hit = sr.state_limit_hit;
      rep.result.memory_limit_hit = sr.memory_limit_hit;
      rep.result.budget_tripped = sr.budget_tripped;
      rep.result.exhaustive = sr.exhaustive;
      rep.result.stats = sr.stats;
      for (sched::ViolationMsg& vm : sr.violations) {
        Violation v;
        v.failures = FailureSet(links);
        for (const LinkId l : vm.failed_links) v.failures.fail(l);
        v.message = std::move(vm.message);
        v.trail_text = std::move(vm.trail_text);
        rep.result.violations.push_back(std::move(v));
      }
      merge_report(std::move(rep));
    }
    std::sort(result.reports.begin(), result.reports.end(),
              [](const PecReport& x, const PecReport& y) { return x.pec < y.pec; });
    return true;
  };

  if (opts_.shards > 0 ||
      opts_.scheduler == sched::SchedulerKind::kMultiProcess) {
    if (try_sharded()) {
      finalize_verdict();
      return result;
    }
    // Coordinator-level failure: fall back to the in-process scheduler below
    // rather than losing the verdict.
  }

  OutcomeStore store(net_, pecs_);

  // Outcome eviction: once the last needed dependent of a PEC completes, its
  // stored outcomes can never be read again — release them so the store stays
  // bounded on long runs (the shard coordinator does the same per worker).
  // Counters are atomics: the last finishing worker evicts.
  auto pending_dependents =
      std::make_unique<std::atomic<std::ptrdiff_t>[]>(pecs_.pecs.size());
  for (PecId p = 0; p < pecs_.pecs.size(); ++p) {
    pending_dependents[p].store(plan.needed_dependents[p],
                                std::memory_order_relaxed);
  }

  std::atomic<bool> stop{false};

  auto run_pec = [&](PecId pec_id, bool target) -> PecReport {
    // Record outcomes only when a *needed* dependent may still read them.
    // Acyclic dependents run strictly after this PEC, so the counter is
    // pristine here; within a cyclic SCC an already-finished mate has
    // decremented it, which only sharpens the answer (that mate can no
    // longer read). Dependents outside the needed closure never read.
    const bool has_dependents =
        pending_dependents[pec_id].load(std::memory_order_acquire) > 0;
    PecReport rep = ctx.run_pec_core(pec_id, target, has_dependents, store);
    if (has_dependents) store.put(pec_id, std::move(rep.result.outcomes));
    rep.result.outcomes.clear();
    return rep;
  };

  // Runs after every run_pec return — including the wall-limit timeout path,
  // so time-limited runs still release exhausted dependencies.
  auto release_dependencies = [&](PecId pec_id) {
    for (const PecId d : deps_.depends_on[pec_id]) {
      if (pending_dependents[d].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        store.evict(d);
      }
    }
  };

  // Result aggregation is lock-free: each worker appends to its own buffer
  // (the scheduler never runs two bodies on one worker concurrently) and the
  // buffers are merged after the join. Only the early-stop flag is shared.
  const int threads = std::max(1, opts_.cores);
  struct WorkerBuffer {
    std::vector<PecReport> reports;
  };
  std::vector<WorkerBuffer> buffers(static_cast<std::size_t>(threads));

  sched::run_task_graph(
      opts_.scheduler, threads, plan.graph, [&](sched::TaskContext& tc) {
        const SccTask& task = plan.tasks[tc.task()];
        if (stop.load(std::memory_order_relaxed)) return;
        // SCCs are verified as one unit; our prototype runs multi-PEC SCCs
        // sequentially (the paper expects them to "almost never" occur).
        for (const PecId p : task.pecs) {
          PecReport rep = run_pec(p, task.is_target && is_target[p] != 0);
          release_dependencies(p);
          if (!rep.result.holds && !opts_.explore.find_all_violations) {
            stop.store(true, std::memory_order_relaxed);
          }
          auto& buf = buffers[static_cast<std::size_t>(tc.worker())].reports;
          ctx.expand_class(
              rep, [&](PecReport&& t) { buf.push_back(std::move(t)); },
              [&](PecId m) {
                // Fallback members become dynamic subtasks: they land on
                // this worker's deque and idle workers steal them, matching
                // the parallelism of the dedup-off task graph (reruns only
                // happen in find-all mode, so no stop-flag handling here).
                tc.spawn([&, m](sched::TaskContext& sub) {
                  // Verdict folding happens in merge_report after the join.
                  buffers[static_cast<std::size_t>(sub.worker())]
                      .reports.push_back(
                          ctx.run_pec_core(m, true, false, store));
                });
              });
          buf.push_back(std::move(rep));
        }
      });

  for (auto& buf : buffers) {
    for (auto& rep : buf.reports) merge_report(std::move(rep));
  }
  result.dedup_reruns = ctx.dedup_reruns.load(std::memory_order_relaxed);

  std::sort(result.reports.begin(), result.reports.end(),
            [](const PecReport& x, const PecReport& y) { return x.pec < y.pec; });
  finalize_verdict();
  return result;
}

// ---------------------------------------------------------------------------
// Remote shard worker (plankton_worker)
// ---------------------------------------------------------------------------

int serve_shard_worker_session(int fd) {
  // A coordinator that dies mid-handshake must surface as EPIPE on this
  // worker, never SIGPIPE (the accept loop serves the next coordinator).
  ::signal(SIGPIPE, SIG_IGN);

  sched::FrameDecoder decoder;
  sched::Frame frame;
  char buf[1 << 16];
  for (;;) {
    const auto st = decoder.next(frame);
    if (st == sched::FrameDecoder::Status::kFrame) break;
    if (st == sched::FrameDecoder::Status::kError) return 3;
    const ssize_t r = read(fd, buf, sizeof buf);
    if (r > 0) {
      decoder.feed(buf, static_cast<std::size_t>(r));
    } else if (r == 0) {
      return 0;  // dialed and hung up before bootstrapping: not an error
    } else if (errno != EINTR) {
      return 2;
    }
  }
  const auto nack = [fd](std::string why) {
    std::fprintf(stderr, "plankton_worker: bootstrap refused: %s\n",
                 why.c_str());
    sched::BootstrapAckMsg ack;
    ack.ok = 0;
    ack.error = std::move(why);
    std::string out;
    sched::encode_frame(out, sched::MsgType::kBootstrapAck,
                        sched::encode_bootstrap_ack(ack));
    (void)send_all_blocking(fd, out);
    return 3;
  };
  if (frame.type != sched::MsgType::kBootstrap) {
    return nack("expected kBootstrap as the first frame");
  }
  serve::BootstrapMsg bm;
  if (!serve::decode_bootstrap(frame.payload, bm)) {
    return nack("malformed bootstrap payload");
  }
  // Nothing may pipeline past the bootstrap: the coordinator sends its first
  // task only after the ack.
  if (decoder.buffered() != 0) return nack("data pipelined past bootstrap");

  ParsedNetwork pn;
  std::string err;
  if (!parse_network_config(bm.config_text, pn, err)) {
    return nack("config: " + err);
  }

  VerifyOptions vo;
  ExploreOptions& eo = vo.explore;
  eo.max_failures = bm.max_failures;
  eo.consistent_only = bm.consistent_only != 0;
  eo.deterministic_nodes = bm.deterministic_nodes != 0;
  eo.det_nodes_bgp = bm.det_nodes_bgp != 0;
  eo.decision_independence = bm.decision_independence != 0;
  eo.lec_failures = bm.lec_failures != 0;
  eo.policy_pruning = bm.policy_pruning != 0;
  eo.suppress_equivalent = bm.suppress_equivalent != 0;
  eo.merge_updates = bm.merge_updates != 0;
  eo.ad_cache = bm.ad_cache != 0;
  eo.por = bm.por != 0;
  eo.incremental_expand = bm.incremental_expand != 0;
  eo.find_all_violations = bm.find_all_violations != 0;
  eo.simulation = bm.simulation != 0;
  eo.visited = static_cast<VisitedKind>(bm.visited);
  eo.bloom_bits = bm.bloom_bits;
  eo.max_states = bm.max_states;
  eo.time_limit = std::chrono::milliseconds(bm.time_limit_ms);
  eo.engine_kind = static_cast<SearchEngineKind>(bm.engine_kind);
  eo.engine_seed = bm.engine_seed;
  eo.engine_split_every = bm.engine_split_every;
  eo.engine_restart_policy =
      static_cast<RestartPolicy>(bm.engine_restart_policy);
  vo.pec_dedup = bm.pec_dedup != 0;
  vo.budget.max_states = bm.budget_max_states;
  vo.budget.max_bytes = bm.budget_max_bytes;
  vo.budget.degrade_visited = bm.budget_degrade_visited != 0;
  vo.budget.deadline = std::chrono::milliseconds(bm.budget_deadline_ms);
  vo.wall_limit = std::chrono::milliseconds(bm.wall_remaining_ms);
  vo.shard_split_export = bm.split_export != 0;
  vo.shard_export_check_every = bm.export_check_every;
  vo.shard_export_min_frontier = bm.export_min_frontier;
  vo.shard_export_max_per_pec = bm.export_max_per_run;

  Verifier verifier(pn.net, vo);
  const std::unique_ptr<Policy> policy =
      serve::make_policy(pn.net, bm.policy_spec, err);
  if (policy == nullptr) return nack("policy: " + err);

  // The coordinator pre-resolved its FaultPlan for this incarnation (the
  // session below always runs as slot 0 / generation 1, so an unresolved
  // slot/generation-scoped plan would silently never fire here).
  sched::FaultPlan session_faults;
  if (!bm.fault_plan.empty() &&
      !sched::parse_fault_plan(bm.fault_plan, session_faults, err)) {
    return nack("fault plan: " + err);
  }

  std::vector<PecId> targets;
  targets.reserve(bm.targets.size());
  for (const std::uint32_t t : bm.targets) {
    if (t >= verifier.pecs().pecs.size()) {
      return nack("target pec " + std::to_string(t) +
                  " out of range (network reconstruction diverged?)");
    }
    targets.push_back(t);
  }

  const auto start = std::chrono::steady_clock::now();
  const ShardPlan plan = build_shard_plan(pn.net, verifier.pecs(),
                                          verifier.deps(), *policy, vo,
                                          targets);
  ShardExecution ctx(pn.net, verifier.pecs(), verifier.deps(), vo, *policy,
                     plan, start);

  sched::BootstrapAckMsg ack;
  ack.ok = 1;
  ack.plan_hash = shard_plan_hash(plan, verifier.pecs().pecs.size());
  std::string out;
  sched::encode_frame(out, sched::MsgType::kBootstrapAck,
                      sched::encode_bootstrap_ack(ack));
  if (!send_all_blocking(fd, out)) return 2;

  sched::ShardRunOptions so;
  so.stop_on_violation = bm.stop_on_violation != 0;
  so.heartbeat_interval_ms = bm.heartbeat_interval_ms;
  if (bm.max_frame_payload != 0) so.max_frame_payload = bm.max_frame_payload;
  so.split_export = bm.split_export != 0;
  so.export_max_per_pec = bm.export_max_per_run;
  so.fault_plan = session_faults;

  const auto body = [&](std::size_t task_idx, OutcomeStore& upstream)
      -> std::vector<sched::ShardPecResult> {
    const sched::SplitExporter no_export =
        [](PecId, std::vector<StateSnapshot>&&) { return false; };
    return ctx.run_worker_task(task_idx, upstream, no_export);
  };
  sched::ShardExportHooks hooks;
  hooks.run_task = [&](std::size_t task_idx, OutcomeStore& upstream,
                       const sched::SplitExporter& exporter) {
    return ctx.run_worker_task(task_idx, upstream, exporter);
  };
  hooks.run_subtask = [&](PecId pec, std::vector<StateSnapshot>&& snaps,
                          const sched::SplitExporter& exporter) {
    return ctx.run_export_subtask(pec, std::move(snaps), exporter);
  };

  return sched::run_worker_session(fd, /*slot=*/0, /*generation=*/1, pn.net,
                                   verifier.pecs(), plan.tasks.size(), so,
                                   body, &hooks);
}

}  // namespace plankton
