// FIB assembly and forwarding-graph walks.
//
// "Once the converged states of all relevant prefixes are computed, a model
// of the FIB combines the results from the various prefixes and protocols
// into a single network-wide data plane for the PEC" (§3.3). Combination
// order is longest-prefix match first, then administrative distance. iBGP
// routes and recursive static routes resolve their next hops through the
// upstream PEC outcome (§3.2); a static route whose next hop falls inside the
// PEC being built resolves through this PEC's own protocol routes (the
// self-loop dependency the paper observed in real configs).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "config/network.hpp"
#include "pec/pec.hpp"
#include "protocols/process.hpp"

namespace plankton {

enum class FwdKind : std::uint8_t { kDrop, kLocal, kForward };

struct FibEntry {
  FwdKind kind = FwdKind::kDrop;
  std::vector<NodeId> nexthops;          ///< kForward only (ECMP allowed)
  Protocol source = Protocol::kConnected;
  std::uint8_t prefix_idx = 0xff;        ///< index into Pec::prefixes, 0xff = none
};

/// Per-node forwarding behaviour for one PEC under one converged state.
struct DataPlane {
  std::vector<FibEntry> entries;

  [[nodiscard]] const FibEntry& at(NodeId n) const { return entries[n]; }
  [[nodiscard]] std::size_t bytes() const;
};

/// One (prefix, protocol) RIB produced by an RPVP phase.
struct TaskRib {
  std::uint8_t prefix_idx = 0;
  Protocol proto = Protocol::kOspf;
  std::span<const RouteId> routes;  ///< per NodeId best route
};

DataPlane build_dataplane(const Network& net, const Pec& pec,
                          const FailureSet& failures, std::span<const TaskRib> ribs,
                          const ModelContext& ctx);

/// Exhaustive walk of the forwarding graph from one source.
struct WalkStats {
  bool delivered_all = true;    ///< every maximal branch reaches kLocal
  bool delivered_any = false;   ///< some branch reaches kLocal
  bool dropped = false;         ///< some branch reaches kDrop
  bool looped = false;          ///< some branch revisits a node
  std::uint32_t max_hops = 0;   ///< longest branch (hops until terminal)
  bool hit_waypoint_all = true; ///< every delivered branch crossed `waypoints`
};

WalkStats walk_from(const DataPlane& dp, NodeId src,
                    std::span<const NodeId> waypoints = {});

/// Equivalence signature of a converged data plane from the policy's point
/// of view (§3.5): per source, path lengths and positions of interesting
/// nodes. Used to suppress redundant policy checks.
std::uint64_t policy_signature(const DataPlane& dp, std::span<const NodeId> sources,
                               std::span<const NodeId> interesting,
                               std::size_t node_count);

}  // namespace plankton
