#include "dataplane/fib.hpp"

#include <algorithm>

#include "netbase/hash.hpp"

namespace plankton {
namespace {

struct Candidate {
  bool installed = false;
  std::uint8_t ad = 255;
  FwdKind kind = FwdKind::kDrop;
  std::vector<NodeId> nexthops;
  Protocol source = Protocol::kConnected;
};

void consider(Candidate& best, std::uint8_t ad, FwdKind kind,
              std::vector<NodeId> nexthops, Protocol source) {
  if (best.installed && best.ad <= ad) return;
  best.installed = true;
  best.ad = ad;
  best.kind = kind;
  best.nexthops = std::move(nexthops);
  best.source = source;
}

/// Finds the best protocol (non-static) route for node n in this PEC:
/// used to resolve recursive static next hops that point inside the PEC.
std::vector<NodeId> protocol_nexthops_in_pec(const Network& net, const Pec& pec,
                                             NodeId n, std::span<const TaskRib> ribs,
                                             const ModelContext& ctx) {
  for (std::size_t pi = 0; pi < pec.prefixes.size(); ++pi) {
    for (const auto& rib : ribs) {
      if (rib.prefix_idx != pi) continue;
      const RouteId r = rib.routes[n];
      if (r == kNoRoute) continue;
      const Route& route = ctx.routes.get(r);
      if (route.path == kEmptyPath) return {};  // delivered locally
      std::vector<NodeId> hops;
      if (route.learned_ibgp && ctx.upstream != nullptr) {
        const auto span = ctx.upstream->nexthops_towards(
            n, net.device(route.egress).loopback);
        hops.assign(span.begin(), span.end());
      } else {
        ctx.routes.nexthops(r, ctx.paths, hops);
      }
      if (!hops.empty()) return hops;
    }
  }
  return {};
}

}  // namespace

std::size_t DataPlane::bytes() const {
  std::size_t total = entries.size() * sizeof(FibEntry);
  for (const auto& e : entries) total += e.nexthops.capacity() * sizeof(NodeId);
  return total;
}

DataPlane build_dataplane(const Network& net, const Pec& pec,
                          const FailureSet& failures, std::span<const TaskRib> ribs,
                          const ModelContext& ctx) {
  DataPlane dp;
  dp.entries.resize(net.topo.node_count());

  for (NodeId n = 0; n < net.topo.node_count(); ++n) {
    FibEntry entry;  // default: drop
    // Longest-prefix match: prefixes are sorted most-specific first.
    for (std::size_t pi = 0; pi < pec.prefixes.size(); ++pi) {
      const PecPrefix& pp = pec.prefixes[pi];
      Candidate best;

      // Local delivery: the node originates the prefix (or owns the loopback).
      const bool origin =
          std::find(pp.ospf_origins.begin(), pp.ospf_origins.end(), n) !=
              pp.ospf_origins.end() ||
          std::find(pp.bgp_origins.begin(), pp.bgp_origins.end(), n) !=
              pp.bgp_origins.end() ||
          (pp.prefix.length() == 32 && net.device(n).loopback == pp.prefix.addr());
      if (origin) {
        consider(best, admin_distance(Protocol::kConnected), FwdKind::kLocal, {},
                 Protocol::kConnected);
      }

      // Static routes targeting exactly this prefix.
      for (const auto& [dev, idx] : pp.static_routes) {
        if (dev != n) continue;
        const StaticRoute& sr = net.device(n).statics[idx];
        if (sr.drop) {
          consider(best, admin_distance(Protocol::kStatic), FwdKind::kDrop, {},
                   Protocol::kStatic);
          continue;
        }
        if (sr.via_neighbor != kNoNode) {
          const LinkId l = net.topo.find_link(n, sr.via_neighbor);
          if (l != kNoLink && !failures.is_failed(l)) {
            consider(best, admin_distance(Protocol::kStatic), FwdKind::kForward,
                     {sr.via_neighbor}, Protocol::kStatic);
          }
          continue;
        }
        if (sr.via_ip) {
          std::vector<NodeId> hops;
          if (*sr.via_ip >= pec.lo && *sr.via_ip <= pec.hi) {
            // Self-loop dependency: resolve through this PEC's own
            // protocol routes (never through statics, avoiding recursion).
            hops = protocol_nexthops_in_pec(net, pec, n, ribs, ctx);
          } else if (ctx.upstream != nullptr) {
            const auto span = ctx.upstream->nexthops_towards(n, *sr.via_ip);
            hops.assign(span.begin(), span.end());
          }
          if (!hops.empty()) {
            consider(best, admin_distance(Protocol::kStatic), FwdKind::kForward,
                     std::move(hops), Protocol::kStatic);
          }
        }
      }

      // Protocol routes from the per-prefix RPVP phases.
      for (const auto& rib : ribs) {
        if (rib.prefix_idx != pi) continue;
        const RouteId r = rib.routes[n];
        if (r == kNoRoute) continue;
        const Route& route = ctx.routes.get(r);
        if (route.path == kEmptyPath) continue;  // origin: handled as local
        Protocol proto = rib.proto;
        if (proto == Protocol::kEbgp && route.learned_ibgp) proto = Protocol::kIbgp;
        std::vector<NodeId> hops;
        if (route.learned_ibgp) {
          if (ctx.upstream != nullptr) {
            const auto span = ctx.upstream->nexthops_towards(
                n, net.device(route.egress).loopback);
            hops.assign(span.begin(), span.end());
          }
          if (hops.empty()) continue;  // unresolvable iBGP next hop
        } else {
          ctx.routes.nexthops(r, ctx.paths, hops);
          if (hops.empty()) continue;
        }
        consider(best, admin_distance(proto), FwdKind::kForward, std::move(hops),
                 proto);
      }

      if (best.installed) {
        entry.kind = best.kind;
        entry.nexthops = std::move(best.nexthops);
        entry.source = best.source;
        entry.prefix_idx = static_cast<std::uint8_t>(pi);
        break;  // LPM: most specific installed prefix wins
      }
    }
    dp.entries[n] = std::move(entry);
  }
  return dp;
}

namespace {

/// Per-(node, crossed-a-waypoint) walk summary. Memoized so ECMP fan-out
/// costs O(nodes), not O(paths).
struct NodeWalk {
  bool delivered_all = true;
  bool delivered_any = false;
  bool dropped = false;
  bool looped = false;
  bool waypoint_ok = true;   ///< every delivered continuation crossed a waypoint
  std::uint32_t hops = 0;    ///< longest continuation from here
};

class Walker {
 public:
  Walker(const DataPlane& dp, std::span<const NodeId> waypoints)
      : dp_(dp), waypoints_(waypoints) {
    const std::size_t n = dp.entries.size();
    memo_[0].resize(n);
    memo_[1].resize(n);
    color_[0].assign(n, 0);
    color_[1].assign(n, 0);
  }

  const NodeWalk& run(NodeId n, bool crossed) {
    if (!crossed && std::find(waypoints_.begin(), waypoints_.end(), n) !=
                        waypoints_.end()) {
      crossed = true;
    }
    const int c = crossed ? 1 : 0;
    if (color_[c][n] == 2) return memo_[c][n];
    NodeWalk& w = memo_[c][n];
    if (color_[c][n] == 1) {
      // Back edge: forwarding loop.
      w.looped = true;
      w.delivered_all = false;
      return w;
    }
    color_[c][n] = 1;
    const FibEntry& e = dp_.at(n);
    if (e.kind == FwdKind::kLocal) {
      w.delivered_any = true;
      if (!waypoints_.empty() && !crossed) w.waypoint_ok = false;
    } else if (e.kind == FwdKind::kDrop || e.nexthops.empty()) {
      w.dropped = true;
      w.delivered_all = false;
    } else {
      for (const NodeId next : e.nexthops) {
        const NodeWalk sub = run(next, crossed);  // copy: memo may be the gray self
        w.delivered_all = w.delivered_all && sub.delivered_all;
        w.delivered_any = w.delivered_any || sub.delivered_any;
        w.dropped = w.dropped || sub.dropped;
        w.looped = w.looped || sub.looped;
        w.waypoint_ok = w.waypoint_ok && sub.waypoint_ok;
        w.hops = std::max(w.hops, sub.hops + 1);
      }
    }
    color_[c][n] = 2;
    return w;
  }

 private:
  const DataPlane& dp_;
  std::span<const NodeId> waypoints_;
  std::vector<NodeWalk> memo_[2];
  std::vector<std::uint8_t> color_[2];  // 0 white, 1 gray, 2 black
};

}  // namespace

WalkStats walk_from(const DataPlane& dp, NodeId src,
                    std::span<const NodeId> waypoints) {
  Walker walker(dp, waypoints);
  const NodeWalk w = walker.run(src, false);
  WalkStats out;
  out.delivered_all = w.delivered_all && !w.looped;
  out.delivered_any = w.delivered_any;
  out.dropped = w.dropped;
  out.looped = w.looped;
  out.max_hops = w.hops;
  out.hit_waypoint_all = w.waypoint_ok;
  return out;
}

std::uint64_t policy_signature(const DataPlane& dp, std::span<const NodeId> sources,
                               std::span<const NodeId> interesting,
                               std::size_t node_count) {
  std::vector<std::uint8_t> is_interesting(node_count, interesting.empty() ? 1 : 0);
  for (const NodeId n : interesting) is_interesting[n] = 1;

  std::uint64_t sig = 0x2545f4914f6cdd1dull;
  // Per source: BFS the forwarding DAG recording (depth, interesting node)
  // and terminal kinds. Two converged states with equal signatures have the
  // same source paths lengths and interesting-node positions (§3.5).
  std::vector<std::pair<NodeId, std::uint32_t>> frontier;
  std::vector<std::uint32_t> seen_at(node_count, ~std::uint32_t{0});
  for (const NodeId src : sources) {
    frontier.clear();
    std::fill(seen_at.begin(), seen_at.end(), ~std::uint32_t{0});
    frontier.emplace_back(src, 0);
    seen_at[src] = 0;
    sig = hash_combine(sig, src + 1);
    std::size_t cursor = 0;
    while (cursor < frontier.size()) {
      const auto [n, depth] = frontier[cursor++];
      const FibEntry& e = dp.at(n);
      if (is_interesting[n]) {
        sig = hash_combine(sig, (std::uint64_t{depth} << 32) | n);
      }
      sig = hash_combine(sig, static_cast<std::uint64_t>(e.kind) + (depth << 8));
      if (e.kind != FwdKind::kForward) continue;
      for (const NodeId next : e.nexthops) {
        if (seen_at[next] == depth + 1) continue;  // already queued at this depth
        if (seen_at[next] != ~std::uint32_t{0} && seen_at[next] <= depth) continue;
        seen_at[next] = depth + 1;
        frontier.emplace_back(next, depth + 1);
      }
    }
  }
  return sig;
}

}  // namespace plankton
