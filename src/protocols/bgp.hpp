// BGP modeled as an RPVP process (paper §3.4, §4.1.2).
//
// Sessions are eBGP (over a physical link) or iBGP (loopback-to-loopback,
// live only while both loopbacks are mutually reachable per the upstream IGP
// outcome — the PEC-dependency mechanism of §3.2). Route maps supply the
// import/export filters; ranking follows the BGP decision process:
//   higher local-pref > shorter AS path > eBGP-learned over iBGP-learned >
//   lower IGP cost to the next hop > age-based tie (non-deterministic).
//
// The deterministic-node heuristic mirrors §4.1.2: a pending update wins if
// it is provably never replaced, checked step-by-step with conservative
// bounds (max assignable local-pref, minimum possible AS-path length from
// the session graph, minimum possible IGP cost). If no clear winner exists
// but every potential winner of some node is already enabled, that node is
// nominated with tie_ok so the engine branches only over its tied updates
// (Fig. 6, steps 4-5).
#pragma once

#include <vector>

#include "protocols/process.hpp"

namespace plankton {

class BgpProcess final : public RoutingProcess {
 public:
  BgpProcess(const Network& net, Prefix prefix, std::vector<NodeId> origins);

  [[nodiscard]] Protocol protocol() const override { return Protocol::kEbgp; }
  [[nodiscard]] const std::vector<NodeId>& members() const override { return members_; }
  [[nodiscard]] const std::vector<NodeId>& origins() const override { return origins_; }
  [[nodiscard]] RouteId origin_route(NodeId origin, ModelContext& ctx) const override;

  void prepare(const FailureSet& failures, ModelContext& ctx) override;

  [[nodiscard]] std::span<const NodeId> peers(NodeId n) const override {
    return up_peers_[n];
  }

  [[nodiscard]] RouteId advertised(NodeId p, NodeId n, RouteId peer_route,
                                   ModelContext& ctx) const override;

  /// Pure in (p, n, peer_route) given the prepared failure set and the
  /// ctx.upstream binding (route maps are static config; iBGP metrics come
  /// from ctx.upstream only, which keys the cache generation) — safe to
  /// memoize.
  [[nodiscard]] bool cacheable() const override { return true; }

  [[nodiscard]] int compare(NodeId n, RouteId a, RouteId b,
                            const ModelContext& ctx) const override;

  [[nodiscard]] NodeId deterministic_node(std::span<const NodeId> enabled,
                                          const StateView& s, ModelContext& ctx,
                                          bool& tie_ok) const override;

  [[nodiscard]] bool can_transmit(NodeId from, NodeId to) const override;

 private:
  /// Lexicographic decision tuple; bigger is better.
  struct Rank {
    std::int64_t local_pref = -1;
    std::int64_t neg_as_len = 0;
    std::int64_t ebgp = 0;  // 1 = learned over eBGP
    std::int64_t neg_metric = 0;

    friend auto operator<=>(const Rank&, const Rank&) = default;
  };
  [[nodiscard]] Rank rank_of(const Route& r) const {
    return Rank{static_cast<std::int64_t>(r.local_pref), -std::int64_t{r.as_path_len},
                r.learned_ibgp ? 0 : 1, -std::int64_t{r.metric}};
  }

  /// Most optimistic rank an *uncommitted* peer `p` could ever deliver to `n`.
  [[nodiscard]] Rank optimistic_rank(NodeId n, NodeId p) const;

  [[nodiscard]] bool session_up(NodeId a, NodeId b, const FailureSet& failures,
                                const ModelContext& ctx, bool ibgp) const;

  const Network& net_;
  Prefix prefix_;
  std::vector<NodeId> members_;
  std::vector<NodeId> origins_;
  std::vector<std::vector<NodeId>> up_peers_;
  const UpstreamResolver* upstream_ = nullptr;

  // Heuristic bounds, recomputed in prepare():
  std::vector<std::uint32_t> min_as_len_;   // 0-1 BFS over up sessions (eBGP=1, iBGP=0)
  std::vector<std::uint32_t> max_lp_in_;    // per node: max local-pref any import could set
  std::uint32_t global_max_lp_ = 100;       // bound for carried (iBGP) local-pref
  std::vector<std::vector<std::uint32_t>> ibgp_metric_;  // [n] aligned with up_peers_[n]
  /// Nodes that can ever export over iBGP: origins or eBGP-attached devices
  /// (iBGP-learned routes are never re-advertised to iBGP peers, so other
  /// nodes can be ignored by the dominance check).
  std::vector<std::uint8_t> can_source_;
};

}  // namespace plankton
