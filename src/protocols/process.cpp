#include "protocols/process.hpp"

namespace plankton {

bool RoutingProcess::valid(NodeId n, RouteId current, const StateView& s,
                           ModelContext& ctx) const {
  // Default RPVP validity: best-path(best-path(n).head) == best-path(n).rest,
  // checked by recomputing what the next hop would currently advertise.
  (void)n;
  if (current == kNoRoute) return true;
  const Route& r = ctx.routes.get(current);
  if (r.path == kEmptyPath) return true;  // origins stay valid
  const NodeId hop = ctx.paths.head(r.path);
  const RouteId readvertised = advertised(hop, n, s.best(hop), ctx);
  return readvertised == current;
}

RouteId RoutingProcess::merge(NodeId n, std::span<const RouteId> updates,
                              ModelContext& ctx) const {
  (void)n;
  (void)ctx;
  // Non-multipath protocols never merge; callers must not reach this.
  return updates.empty() ? kNoRoute : updates.front();
}

}  // namespace plankton
