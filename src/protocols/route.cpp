#include "protocols/route.hpp"

namespace plankton {

PathTable::PathTable() {
  cells_.resize(2);
  cells_[kNoPath] = Cell{kNoNode, kNoPath, 0};
  cells_[kEmptyPath] = Cell{kNoNode, kEmptyPath, 0};
}

PathId PathTable::cons(NodeId head, PathId rest) {
  const std::uint64_t key = hash_combine(hash_mix(head), rest);
  auto& bucket = index_[key];
  for (const PathId id : bucket) {
    const Cell& cell = cells_[id];
    if (cell.head == head && cell.rest == rest) return id;
  }
  const auto id = static_cast<PathId>(cells_.size());
  cells_.push_back(Cell{head, rest, cells_[rest].length + 1});
  bucket.push_back(id);
  return id;
}

bool PathTable::contains(PathId p, NodeId node) const {
  while (p != kNoPath && p != kEmptyPath) {
    if (cells_[p].head == node) return true;
    p = cells_[p].rest;
  }
  return false;
}

std::vector<NodeId> PathTable::to_vector(PathId p) const {
  std::vector<NodeId> out;
  out.reserve(length(p));
  while (p != kNoPath && p != kEmptyPath) {
    out.push_back(cells_[p].head);
    p = cells_[p].rest;
  }
  return out;
}

std::string PathTable::str(PathId p, const Topology* topo) const {
  if (p == kNoPath) return "<none>";
  if (p == kEmptyPath) return "<origin>";
  std::string out;
  for (const NodeId n : to_vector(p)) {
    if (!out.empty()) out += " -> ";
    out += topo != nullptr ? topo->name(n) : std::to_string(n);
  }
  return out;
}

std::size_t PathTable::bytes() const {
  return cells_.size() * sizeof(Cell) +
         index_.size() * (sizeof(std::uint64_t) + sizeof(PathId) + 24);
}

RouteTable::RouteTable() {
  routes_.emplace_back();  // id 0 = ⊥
}

RouteId RouteTable::intern(Route r) {
  const std::uint64_t key = r.hash();
  auto& bucket = index_[key];
  for (const RouteId id : bucket) {
    if (routes_[id] == r) return id;
  }
  const auto id = static_cast<RouteId>(routes_.size());
  routes_.push_back(std::move(r));
  bucket.push_back(id);
  return id;
}

RouteId RouteTable::find(const Route& r) const {
  const auto it = index_.find(r.hash());
  if (it == index_.end()) return kNoRoute;
  for (const RouteId id : it->second) {
    if (routes_[id] == r) return id;
  }
  return kNoRoute;
}

void RouteTable::nexthops(RouteId id, const PathTable& paths,
                          std::vector<NodeId>& out) const {
  out.clear();
  if (id == kNoRoute) return;
  const Route& r = routes_[id];
  if (!r.ecmp.empty()) {
    out.assign(r.ecmp.begin(), r.ecmp.end());
    return;
  }
  if (r.path != kNoPath && r.path != kEmptyPath) out.push_back(paths.head(r.path));
}

std::size_t RouteTable::bytes() const {
  std::size_t total = routes_.size() * sizeof(Route);
  for (const auto& r : routes_) total += r.ecmp.capacity() * sizeof(NodeId);
  for (const auto& [k, v] : index_) {
    (void)k;
    total += sizeof(std::uint64_t) + v.capacity() * sizeof(RouteId) + 16;
  }
  return total;
}

}  // namespace plankton
