// The abstract control-plane protocol interface consumed by the RPVP engine.
//
// Following the paper (§3.4), OSPF, BGP and static routing are all modeled on
// top of one Reduced Path Vector Protocol. A RoutingProcess supplies the
// extended-SPVP abstractions for one (prefix, protocol) execution:
//   - origins and their initial routes,
//   - the peering relation under a failure set,
//   - advertised(): the composition import ∘ export applied to a peer's
//     current best route (RPVP polls peers instead of passing messages),
//   - compare(): the node's ranking function (a partial order: 0 means tied,
//     which the engine resolves non-deterministically — age-based
//     tie-breaking),
//   - valid(): RPVP's invalid(n) predicate,
//   - deterministic-node detection (§4.1.2) as a per-protocol heuristic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "config/network.hpp"
#include "protocols/route.hpp"

namespace plankton {

/// Resolves information produced by upstream PEC runs (paper §3.2): IGP
/// costs and next hops toward loopback addresses, used by iBGP ranking and
/// recursive next-hop resolution. One resolver corresponds to one converged
/// upstream outcome under one coordinated failure set.
class UpstreamResolver {
 public:
  virtual ~UpstreamResolver() = default;

  /// IGP cost from `from` to the device owning `target` (kInfiniteCost when
  /// unreachable or unknown).
  [[nodiscard]] virtual std::uint32_t igp_cost(NodeId from, IpAddr target) const = 0;

  /// Data-plane next hops at `from` for packets destined to `target`.
  [[nodiscard]] virtual std::span<const NodeId> nexthops_towards(
      NodeId from, IpAddr target) const = 0;

  /// Identity of this upstream outcome, mixed into state hashes so converged
  /// states reached under different upstream outcomes are never conflated.
  [[nodiscard]] virtual std::uint64_t outcome_hash() const = 0;
};

/// Shared mutable interning tables + immutable environment for one
/// exploration.
struct ModelContext {
  const Network* net = nullptr;
  PathTable paths;
  RouteTable routes;
  const UpstreamResolver* upstream = nullptr;  ///< may be null

  [[nodiscard]] NodeId nexthop(RouteId r) const {
    const PathId p = routes.get(r).path;
    return (p == kNoPath || p == kEmptyPath) ? kNoNode : paths.head(p);
  }
};

/// Read-only view of the per-node best routes of the running process.
class StateView {
 public:
  explicit StateView(std::span<const RouteId> routes) : routes_(routes) {}
  [[nodiscard]] RouteId best(NodeId n) const { return routes_[n]; }
  [[nodiscard]] bool committed(NodeId n) const { return routes_[n] != kNoRoute; }
  [[nodiscard]] std::size_t size() const { return routes_.size(); }

 private:
  std::span<const RouteId> routes_;
};

class RoutingProcess {
 public:
  virtual ~RoutingProcess() = default;

  [[nodiscard]] virtual Protocol protocol() const = 0;

  /// Nodes that participate in this process (others are never enabled).
  /// Must be sorted ascending by NodeId: the incremental expand path
  /// (rpvp/Explorer + engine/active_set.hpp) enumerates enabled nodes in
  /// ascending order and relies on that matching members() order so the
  /// optimized exploration is bit-identical to the full rescan.
  [[nodiscard]] virtual const std::vector<NodeId>& members() const = 0;

  /// Nodes that originate the prefix; RPVP initializes them with
  /// origin_route() and keeps their best path pinned (best-path(o) = ε).
  [[nodiscard]] virtual const std::vector<NodeId>& origins() const = 0;
  [[nodiscard]] virtual RouteId origin_route(NodeId origin, ModelContext& ctx) const = 0;

  /// Called once per failure set before exploration of this process starts;
  /// protocols precompute session liveness, SPF trees, heuristic bounds here.
  virtual void prepare(const FailureSet& failures, ModelContext& ctx) = 0;

  /// Peers of `n` whose sessions are up under the prepared failure set.
  [[nodiscard]] virtual std::span<const NodeId> peers(NodeId n) const = 0;

  /// importₙ,ₚ(exportₚ,ₙ(peer_route)) — the route `n` would adopt from peer
  /// `p`, or kNoRoute when filtered/rejected.
  ///
  /// Purity contract (relied on by the explorer's AdCache memoization,
  /// rpvp/ad_cache.hpp): between two prepare() calls and for a fixed
  /// ctx.upstream binding, the result is a pure function of
  /// (p, n, peer_route) — same inputs, same interned RouteId, no observable
  /// side effects beyond interning that same route/path. In particular
  /// advertised(p, n, kNoRoute) must be kNoRoute (⊥ in, ⊥ out), and any
  /// dependence on upstream PEC outcomes (e.g. iBGP IGP costs / next-hop
  /// resolvability) must go through ctx.upstream only, so that a cache
  /// keyed per (failure set, upstream outcome) generation is sound.
  /// Implementations whose result depends on anything else must not be
  /// memoized — they should override cacheable() to return false.
  [[nodiscard]] virtual RouteId advertised(NodeId p, NodeId n, RouteId peer_route,
                                           ModelContext& ctx) const = 0;

  /// Opt-in to advertisement memoization: overriding to true asserts the
  /// purity contract on advertised() holds for this implementation. The
  /// default is false so a protocol written without the AdCache in mind is
  /// never silently memoized.
  [[nodiscard]] virtual bool cacheable() const { return false; }

  /// Ranking at n: >0 if `a` is preferred over `b`, <0 if `b` over `a`,
  /// 0 when tied (non-deterministic, e.g. BGP age-based tie-breaking).
  /// kNoRoute ranks below everything.
  [[nodiscard]] virtual int compare(NodeId n, RouteId a, RouteId b,
                                    const ModelContext& ctx) const = 0;

  /// RPVP invalid(n): does n's current best route remain justified by its
  /// next hop's (or ECMP set's) current state?
  [[nodiscard]] virtual bool valid(NodeId n, RouteId current, const StateView& s,
                                   ModelContext& ctx) const;

  /// Can `from` ever transmit new routing information to `to`? Used by the
  /// decision-independence reduction (§4.1.3): nodes with no possible
  /// information flow between them (in either direction) may be explored in
  /// a fixed order. Default: always possible. BGP refines this: a node with
  /// neither an origin role nor an eBGP session can never advertise over
  /// iBGP (no iBGP re-advertisement).
  [[nodiscard]] virtual bool can_transmit(NodeId from, NodeId to) const {
    (void)from;
    (void)to;
    return true;
  }

  /// True when tied best updates are merged into one multipath route instead
  /// of branching (OSPF ECMP — the paper's special-case deviation, §3.4.2).
  [[nodiscard]] virtual bool merge_equal_updates() const { return false; }

  /// Merges tied updates into a single route (only called when
  /// merge_equal_updates() is true).
  [[nodiscard]] virtual RouteId merge(NodeId n, std::span<const RouteId> updates,
                                      ModelContext& ctx) const;

  /// Deterministic-node heuristic (§4.1.2). Given the current state, returns
  /// a node from `enabled` whose next update provably appears in every
  /// converged state reachable from here, or kNoNode. May also nominate a
  /// node all of whose potential winners are among its current updates
  /// (`tie_ok` output — the engine then branches only over that node's tied
  /// updates; Fig. 6 steps 4–5).
  [[nodiscard]] virtual NodeId deterministic_node(std::span<const NodeId> enabled,
                                                  const StateView& s,
                                                  ModelContext& ctx,
                                                  bool& tie_ok) const {
    (void)enabled;
    (void)s;
    (void)ctx;
    tie_ok = false;
    return kNoNode;
  }
};

}  // namespace plankton
