// OSPF modeled as an RPVP process (paper §3.4.2).
//
// Ranking is by accumulated IGP cost; equal-cost updates are merged into one
// multipath (ECMP) route — the paper's explicit special-case deviation that
// lets an OSPF node maintain multiple best paths. Because link-state routing
// converges deterministically, the deterministic-node heuristic (§4.1.2) —
// "run a network-wide shortest path computation and pick each node only
// after all nodes with shorter paths have executed" — makes exploration
// linear, comparable to simulation.
#pragma once

#include <vector>

#include "protocols/process.hpp"

namespace plankton {

class OspfProcess final : public RoutingProcess {
 public:
  /// `origins` are the devices originating the prefix (anycast allowed).
  OspfProcess(const Network& net, Prefix prefix, std::vector<NodeId> origins);

  [[nodiscard]] Protocol protocol() const override { return Protocol::kOspf; }
  [[nodiscard]] const std::vector<NodeId>& members() const override { return members_; }
  [[nodiscard]] const std::vector<NodeId>& origins() const override { return origins_; }
  [[nodiscard]] RouteId origin_route(NodeId origin, ModelContext& ctx) const override;

  void prepare(const FailureSet& failures, ModelContext& ctx) override;

  [[nodiscard]] std::span<const NodeId> peers(NodeId n) const override {
    return up_peers_[n];
  }

  [[nodiscard]] RouteId advertised(NodeId p, NodeId n, RouteId peer_route,
                                   ModelContext& ctx) const override;

  /// Pure in (p, n, peer_route) given the prepared failure set: link costs
  /// and loop rejection only — safe to memoize.
  [[nodiscard]] bool cacheable() const override { return true; }

  [[nodiscard]] int compare(NodeId n, RouteId a, RouteId b,
                            const ModelContext& ctx) const override;

  [[nodiscard]] bool valid(NodeId n, RouteId current, const StateView& s,
                           ModelContext& ctx) const override;

  [[nodiscard]] bool merge_equal_updates() const override { return true; }
  [[nodiscard]] RouteId merge(NodeId n, std::span<const RouteId> updates,
                              ModelContext& ctx) const override;

  [[nodiscard]] NodeId deterministic_node(std::span<const NodeId> enabled,
                                          const StateView& s, ModelContext& ctx,
                                          bool& tie_ok) const override;

  /// SPF distance of `n` from the nearest origin under the prepared failure
  /// set (kInfiniteCost when unreachable). Exposed for tests and heuristics.
  [[nodiscard]] std::uint32_t spf_dist(NodeId n) const { return dist_[n]; }

 private:
  const Network& net_;
  Prefix prefix_;
  std::vector<NodeId> members_;
  std::vector<NodeId> origins_;
  std::vector<std::vector<NodeId>> up_peers_;  // per node, under current failures
  std::vector<std::uint32_t> dist_;            // SPF distances (det heuristic cache)

  // Scratch buffers for merge()/valid(), reused so the explorer's
  // steady-state apply/undo/expand cycle stays allocation-free. A process
  // belongs to exactly one Explorer (one thread); const methods may use
  // them as call-local scratch.
  mutable std::vector<NodeId> merge_hops_;
  mutable Route merge_scratch_;
  mutable std::vector<NodeId> valid_hops_;
};

}  // namespace plankton
