#include "protocols/bgp_common.hpp"

#include <algorithm>

namespace plankton {
namespace {

struct MapResult {
  bool permit = true;
  std::optional<std::uint32_t> set_lp;
  std::uint8_t prepend = 0;
  CommunityBits add = 0;
};

bool clause_matches(const RouteMapClause& c, const Prefix& pfx,
                    CommunityBits comms, std::uint16_t as_len) {
  if (c.match.prefix) {
    if (c.match.prefix_mode == RouteMapMatch::PrefixMode::kExact) {
      if (*c.match.prefix != pfx) return false;
    } else {
      if (!c.match.prefix->covers(pfx)) return false;
    }
  }
  if (c.match.community && ((comms >> *c.match.community) & 1) == 0) return false;
  if (c.match.max_path_len && as_len > *c.match.max_path_len) return false;
  return true;
}

MapResult apply_map(const RouteMap& rm, const Prefix& pfx, CommunityBits comms,
                    std::uint16_t as_len) {
  for (const auto& c : rm.clauses) {
    if (!clause_matches(c, pfx, comms, as_len)) continue;
    MapResult r;
    r.permit = c.action.permit;
    r.set_lp = c.action.set_local_pref;
    r.prepend = c.action.prepend;
    if (c.action.add_community) r.add = CommunityBits{1} << *c.action.add_community;
    return r;
  }
  MapResult r;
  r.permit = rm.default_permit;
  return r;
}

}  // namespace

std::optional<BgpAdvert> bgp_transform(const Network& net, const Prefix& prefix,
                                       NodeId p, NodeId n, const BgpAdvert& held,
                                       const UpstreamResolver* upstream) {
  const auto* sp = net.device(p).bgp->session_with(n);  // export side
  const auto* sn = net.device(n).bgp->session_with(p);  // import side
  if (sp == nullptr || sn == nullptr) return std::nullopt;
  const bool ibgp = sp->ibgp;
  // iBGP-learned routes are not re-advertised to iBGP peers (full mesh).
  if (ibgp && held.learned_ibgp) return std::nullopt;
  // Loop rejection (Appendix B: import filters reject looping paths).
  if (std::find(held.path.begin(), held.path.end(), n) != held.path.end()) {
    return std::nullopt;
  }

  const MapResult ex = apply_map(sp->export_, prefix, held.communities,
                                 held.as_path_len);
  if (!ex.permit) return std::nullopt;
  BgpAdvert out;
  out.path.reserve(held.path.size() + 1);
  out.path.push_back(p);
  out.path.insert(out.path.end(), held.path.begin(), held.path.end());
  out.local_pref = held.local_pref;
  out.as_path_len =
      static_cast<std::uint16_t>(held.as_path_len + (ibgp ? 0 : 1) + ex.prepend);
  out.communities = held.communities | ex.add;
  if (ex.set_lp) out.local_pref = *ex.set_lp;

  const MapResult im = apply_map(sn->import, prefix, out.communities,
                                 out.as_path_len);
  if (!im.permit) return std::nullopt;
  if (!ibgp && !im.set_lp && !ex.set_lp) out.local_pref = 100;  // eBGP default
  if (im.set_lp) out.local_pref = *im.set_lp;
  out.communities |= im.add;
  out.as_path_len = static_cast<std::uint16_t>(out.as_path_len + im.prepend);

  out.learned_ibgp = ibgp;
  out.egress = p;  // next-hop-self
  if (ibgp) {
    if (upstream == nullptr) {
      out.metric = 0;
    } else {
      const std::uint32_t cost = upstream->igp_cost(n, net.device(p).loopback);
      if (cost == kInfiniteCost) return std::nullopt;
      out.metric = cost;
    }
  }
  return out;
}

}  // namespace plankton
