#include "protocols/bgp.hpp"

#include <algorithm>
#include <deque>

namespace plankton {
namespace {

struct MapResult {
  bool permit = true;
  std::optional<std::uint32_t> set_lp;
  std::uint8_t prepend = 0;
  CommunityBits add = 0;
};

bool clause_matches(const RouteMapClause& c, const Prefix& pfx,
                    CommunityBits comms, std::uint16_t as_len) {
  if (c.match.prefix) {
    if (c.match.prefix_mode == RouteMapMatch::PrefixMode::kExact) {
      if (*c.match.prefix != pfx) return false;
    } else {
      if (!c.match.prefix->covers(pfx)) return false;
    }
  }
  if (c.match.community && ((comms >> *c.match.community) & 1) == 0) return false;
  if (c.match.max_path_len && as_len > *c.match.max_path_len) return false;
  return true;
}

MapResult apply_map(const RouteMap& rm, const Prefix& pfx, CommunityBits comms,
                    std::uint16_t as_len) {
  for (const auto& c : rm.clauses) {
    if (!clause_matches(c, pfx, comms, as_len)) continue;
    MapResult r;
    r.permit = c.action.permit;
    r.set_lp = c.action.set_local_pref;
    r.prepend = c.action.prepend;
    if (c.action.add_community) r.add = CommunityBits{1} << *c.action.add_community;
    return r;
  }
  MapResult r;
  r.permit = rm.default_permit;
  return r;
}

/// Max local-pref `rm` could assign (conservative upper bound; 100 is the
/// protocol default that applies when no matching clause sets one).
std::uint32_t max_settable_lp(const RouteMap& rm) {
  std::uint32_t lp = 100;
  for (const auto& c : rm.clauses) {
    if (c.action.permit && c.action.set_local_pref) {
      lp = std::max(lp, *c.action.set_local_pref);
    }
  }
  return lp;
}

}  // namespace

BgpProcess::BgpProcess(const Network& net, Prefix prefix,
                       std::vector<NodeId> origins)
    : net_(net), prefix_(prefix), origins_(std::move(origins)) {
  for (NodeId n = 0; n < net.devices.size(); ++n) {
    if (net.device(n).bgp.has_value()) members_.push_back(n);
  }
  up_peers_.resize(net.topo.node_count());
  ibgp_metric_.resize(net.topo.node_count());
  min_as_len_.assign(net.topo.node_count(), kInfiniteCost);
  max_lp_in_.assign(net.topo.node_count(), 100);
  can_source_.assign(net.topo.node_count(), 0);
}

RouteId BgpProcess::origin_route(NodeId origin, ModelContext& ctx) const {
  Route r;
  r.path = kEmptyPath;
  r.local_pref = 100;
  r.as_path_len = 0;
  r.egress = origin;
  return ctx.routes.intern(std::move(r));
}

bool BgpProcess::session_up(NodeId a, NodeId b, const FailureSet& failures,
                            const ModelContext& ctx, bool ibgp) const {
  if (!ibgp) {
    const LinkId l = net_.topo.find_link(a, b);
    return l != kNoLink && !failures.is_failed(l);
  }
  if (ctx.upstream == nullptr) return true;  // no IGP context: assume up
  return ctx.upstream->igp_cost(a, net_.device(b).loopback) != kInfiniteCost &&
         ctx.upstream->igp_cost(b, net_.device(a).loopback) != kInfiniteCost;
}

void BgpProcess::prepare(const FailureSet& failures, ModelContext& ctx) {
  upstream_ = ctx.upstream;
  for (auto& v : up_peers_) v.clear();
  for (auto& v : ibgp_metric_) v.clear();
  global_max_lp_ = 100;

  std::fill(can_source_.begin(), can_source_.end(), 0);
  for (const NodeId o : origins_) can_source_[o] = 1;
  for (const NodeId n : members_) {
    const auto& bgp = *net_.device(n).bgp;
    for (const auto& s : bgp.sessions) {
      if (!session_up(n, s.peer, failures, ctx, s.ibgp)) continue;
      up_peers_[n].push_back(s.peer);
      std::uint32_t metric = 0;
      if (s.ibgp) {
        metric = ctx.upstream != nullptr
                     ? ctx.upstream->igp_cost(n, net_.device(s.peer).loopback)
                     : 0;
      } else {
        can_source_[n] = 1;  // can learn over eBGP, may re-export anywhere
      }
      ibgp_metric_[n].push_back(metric);
      max_lp_in_[n] = std::max(max_lp_in_[n], max_settable_lp(s.import));
    }
    global_max_lp_ = std::max(global_max_lp_, max_lp_in_[n]);
  }

  // Lower bound on achievable AS-path length: 0-1 BFS over live sessions
  // (an eBGP hop appends one ASN, an iBGP hop appends none). Conservative:
  // ignores filters (which can only remove paths) and prepending (which can
  // only lengthen them).
  std::fill(min_as_len_.begin(), min_as_len_.end(), kInfiniteCost);
  std::deque<NodeId> queue;
  for (const NodeId o : origins_) {
    min_as_len_[o] = 0;
    queue.push_back(o);
  }
  while (!queue.empty()) {
    const NodeId n = queue.front();
    queue.pop_front();
    const auto& bgp = *net_.device(n).bgp;
    for (std::size_t i = 0; i < up_peers_[n].size(); ++i) {
      const NodeId p = up_peers_[n][i];
      const auto* session = bgp.session_with(p);
      const std::uint32_t step = session->ibgp ? 0 : 1;
      if (min_as_len_[n] == kInfiniteCost) continue;
      const std::uint32_t cand = min_as_len_[n] + step;
      if (cand < min_as_len_[p]) {
        min_as_len_[p] = cand;
        if (step == 0) {
          queue.push_front(p);
        } else {
          queue.push_back(p);
        }
      }
    }
  }
}

RouteId BgpProcess::advertised(NodeId p, NodeId n, RouteId peer_route,
                               ModelContext& ctx) const {
  if (peer_route == kNoRoute) return kNoRoute;
  const Route rp = ctx.routes.get(peer_route);  // copy: table may rehash below
  const auto* sp = net_.device(p).bgp->session_with(n);  // export side (at p)
  const auto* sn = net_.device(n).bgp->session_with(p);  // import side (at n)
  if (sp == nullptr || sn == nullptr) return kNoRoute;
  const bool ibgp = sp->ibgp;
  // iBGP-learned routes are not re-advertised to iBGP peers (full mesh).
  if (ibgp && rp.learned_ibgp) return kNoRoute;
  if (ctx.paths.contains(rp.path, n)) return kNoRoute;  // loop rejection

  const MapResult ex = apply_map(sp->export_, prefix_, rp.communities, rp.as_path_len);
  if (!ex.permit) return kNoRoute;
  std::uint32_t lp = rp.local_pref;
  std::uint16_t as_len =
      static_cast<std::uint16_t>(rp.as_path_len + (ibgp ? 0 : 1) + ex.prepend);
  CommunityBits comms = rp.communities | ex.add;
  if (ex.set_lp) lp = *ex.set_lp;

  const MapResult im = apply_map(sn->import, prefix_, comms, as_len);
  if (!im.permit) return kNoRoute;
  if (!ibgp && !im.set_lp && !ex.set_lp) lp = 100;  // eBGP default on import
  if (im.set_lp) lp = *im.set_lp;
  comms |= im.add;
  as_len = static_cast<std::uint16_t>(as_len + im.prepend);

  Route r;
  r.path = ctx.paths.cons(p, rp.path);
  r.local_pref = lp;
  r.as_path_len = as_len;
  r.communities = comms;
  r.learned_ibgp = ibgp;
  r.egress = p;  // next-hop-self: the advertising peer is the resolution target
  if (ibgp) {
    if (ctx.upstream == nullptr) {
      r.metric = 0;
    } else {
      const std::uint32_t cost = ctx.upstream->igp_cost(n, net_.device(p).loopback);
      if (cost == kInfiniteCost) return kNoRoute;  // unresolvable next hop
      r.metric = cost;
    }
  }
  return ctx.routes.intern(std::move(r));
}

int BgpProcess::compare(NodeId n, RouteId a, RouteId b,
                        const ModelContext& ctx) const {
  (void)n;
  if (a == b) return 0;
  if (a == kNoRoute) return -1;
  if (b == kNoRoute) return 1;
  const Rank ra = rank_of(ctx.routes.get(a));
  const Rank rb = rank_of(ctx.routes.get(b));
  if (ra == rb) return 0;  // age-based tie: non-deterministic
  return ra > rb ? 1 : -1;
}

bool BgpProcess::can_transmit(NodeId from, NodeId to) const {
  const auto* session = net_.device(from).bgp->session_with(to);
  if (session == nullptr) return false;
  if (!session->ibgp) return true;
  return can_source_[from] != 0;  // iBGP-learned routes are not re-advertised
}

BgpProcess::Rank BgpProcess::optimistic_rank(NodeId n, NodeId p) const {
  const auto* sn = net_.device(n).bgp->session_with(p);
  Rank r;
  if (sn->ibgp && can_source_[p] == 0) {
    return r;  // default rank (local_pref -1): p can never advertise to n
  }
  if (sn->ibgp) {
    // Carried local-pref can have been set anywhere in the network.
    r.local_pref = global_max_lp_;
    r.ebgp = 0;
    std::uint32_t metric = kInfiniteCost;
    if (upstream_ != nullptr) {
      metric = upstream_->igp_cost(n, net_.device(p).loopback);
    } else {
      metric = 0;
    }
    r.neg_metric = -std::int64_t{metric};
  } else {
    r.local_pref = max_settable_lp(sn->import);
    r.ebgp = 1;
    r.neg_metric = 0;
  }
  const std::uint32_t base = min_as_len_[p];
  const std::uint64_t len =
      base == kInfiniteCost ? kInfiniteCost
                            : std::uint64_t{base} + (sn->ibgp ? 0 : 1);
  r.neg_as_len = -static_cast<std::int64_t>(len);
  return r;
}

NodeId BgpProcess::deterministic_node(std::span<const NodeId> enabled,
                                      const StateView& s, ModelContext& ctx,
                                      bool& tie_ok) const {
  NodeId tie_candidate = kNoNode;
  for (const NodeId n : enabled) {
    const RouteId cur = s.best(n);
    // Current best updates and their shared top rank.
    Rank best_rank;
    bool have = false;
    int winners = 0;
    for (const NodeId p : up_peers_[n]) {
      const RouteId adv = advertised(p, n, s.best(p), ctx);
      if (adv == kNoRoute || compare(n, adv, cur, ctx) <= 0) continue;
      const Rank rk = rank_of(ctx.routes.get(adv));
      if (!have || rk > best_rank) {
        best_rank = rk;
        have = true;
        winners = 1;
      } else if (rk == best_rank) {
        ++winners;
      }
    }
    if (!have) continue;
    // Could an uncommitted peer ever deliver something ranked >= best_rank?
    bool beaten = false;
    bool tied_future = false;
    for (const NodeId p : up_peers_[n]) {
      if (s.committed(p)) continue;  // §4.1.1: committed peers never change
      const Rank opt = optimistic_rank(n, p);
      if (opt > best_rank) {
        beaten = true;
        break;
      }
      if (opt == best_rank) tied_future = true;
    }
    if (beaten || tied_future) continue;
    if (winners == 1) {
      tie_ok = false;
      return n;  // clear winner: fully deterministic
    }
    if (tie_candidate == kNoNode) tie_candidate = n;
  }
  tie_ok = tie_candidate != kNoNode;
  return tie_candidate;
}

}  // namespace plankton
