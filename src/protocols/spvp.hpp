// Reference model: the extended Simple Path Vector Protocol (Appendix A).
//
// This is the message-passing protocol RPVP is reduced from: per-node
// rib-in tables, best-path selection, and reliable FIFO session buffers.
// The exhaustive explorer enumerates every interleaving of message
// deliveries (bounded by a state budget) and collects the converged states
// (all buffers empty). It exists to validate Theorem 1 in executable form —
// tests assert that RPVP's converged-state set equals SPVP's — and is not
// used on the verification fast path.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "protocols/bgp_common.hpp"

namespace plankton::spvp {

/// One node's best path in a converged state: the node sequence (next hop
/// first, origin last); empty = ⊥ for non-origins, and origins hold ε
/// (also empty — distinguished by origin membership).
using ConvergedState = std::vector<std::vector<NodeId>>;

struct SpvpResult {
  std::set<ConvergedState> converged;
  std::uint64_t states_explored = 0;
  bool state_limit_hit = false;
  /// True when some execution path never empties its buffers within the
  /// depth bound (possible divergence, e.g. Griffin's BAD GADGET).
  bool maybe_divergent = false;
};

/// Exhaustively explores the SPVP state space for one BGP prefix on `net`
/// (which must carry BGP config; eBGP sessions only unless `upstream` is
/// provided for iBGP liveness/metrics). `max_states` bounds the exploration.
SpvpResult explore_spvp(const Network& net, const Prefix& prefix,
                        std::span<const NodeId> origins,
                        std::uint64_t max_states = 200000,
                        const UpstreamResolver* upstream = nullptr);

}  // namespace plankton::spvp
