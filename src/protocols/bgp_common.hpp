// BGP advertisement transformation shared by the RPVP adapter (bgp.cpp) and
// the reference SPVP model (spvp.cpp): export filter at the sender, AS-path
// bookkeeping, loop rejection and import filter at the receiver — the
// extended-SPVP abstractions of Appendix A/B.
#pragma once

#include <optional>

#include "config/network.hpp"
#include "protocols/process.hpp"

namespace plankton {

/// A route value before interning (the SPVP model passes these in messages).
struct BgpAdvert {
  std::vector<NodeId> path;  ///< next hop first, origin last
  std::uint32_t local_pref = 100;
  std::uint16_t as_path_len = 0;
  CommunityBits communities = 0;
  bool learned_ibgp = false;
  NodeId egress = kNoNode;
  std::uint32_t metric = 0;

  friend bool operator==(const BgpAdvert&, const BgpAdvert&) = default;
};

/// importₙ,ₚ(exportₚ,ₙ(route held by p)) over plain values. `holder_path`
/// is p's current path (next hop first). Returns nullopt when either filter
/// rejects, the path would loop through n, or an iBGP next hop is
/// unresolvable. `upstream` supplies IGP costs for iBGP metrics (may be
/// null, meaning cost 0 / sessions assumed up).
std::optional<BgpAdvert> bgp_transform(const Network& net, const Prefix& prefix,
                                       NodeId p, NodeId n, const BgpAdvert& held,
                                       const UpstreamResolver* upstream);

/// The BGP decision process as a comparable tuple (bigger = preferred):
/// local-pref desc, AS-path length asc, eBGP over iBGP, IGP metric asc.
struct BgpRank {
  std::int64_t local_pref = -1;
  std::int64_t neg_as_len = 0;
  std::int64_t ebgp = 0;
  std::int64_t neg_metric = 0;
  friend auto operator<=>(const BgpRank&, const BgpRank&) = default;
};

[[nodiscard]] inline BgpRank bgp_rank(const BgpAdvert& a) {
  return BgpRank{static_cast<std::int64_t>(a.local_pref),
                 -std::int64_t{a.as_path_len}, a.learned_ibgp ? 0 : 1,
                 -std::int64_t{a.metric}};
}

}  // namespace plankton
