// Hash-consed paths and routes — the state-hashing substrate (paper §4.4).
//
// The checker's network state is a vector of per-node best routes. Storing
// full route objects per state would be prohibitively expensive, so routes
// and paths are interned: each distinct path is a cons cell (head next hop +
// id of the rest) stored once in a PathTable, each distinct attribute bundle
// is stored once in a RouteTable, and states hold 32-bit ids. This is the
// "64-bit pointers to the actual entry, with each entry stored once and
// indexed in a hash table" scheme from the paper, with structural sharing of
// path suffixes as a bonus.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "config/types.hpp"
#include "netbase/hash.hpp"
#include "netbase/topology.hpp"

namespace plankton {

using PathId = std::uint32_t;
using RouteId = std::uint32_t;

inline constexpr PathId kNoPath = 0;     ///< ⊥ — no path.
inline constexpr PathId kEmptyPath = 1;  ///< ε — the origin's path.
inline constexpr RouteId kNoRoute = 0;   ///< ⊥ — node has no route.

/// Interns cons-cell paths. Path [head | rest] reads "forward to `head`,
/// which continues with path `rest` toward the origin".
class PathTable {
 public:
  PathTable();

  /// Interns the path with first hop `head` and continuation `rest`.
  PathId cons(NodeId head, PathId rest);

  [[nodiscard]] NodeId head(PathId p) const { return cells_[p].head; }
  [[nodiscard]] PathId rest(PathId p) const { return cells_[p].rest; }
  [[nodiscard]] std::uint32_t length(PathId p) const { return cells_[p].length; }

  /// True when `node` appears anywhere on the path (loop detection).
  [[nodiscard]] bool contains(PathId p, NodeId node) const;

  /// Expands to the node sequence (next hop first, origin last).
  [[nodiscard]] std::vector<NodeId> to_vector(PathId p) const;

  [[nodiscard]] std::string str(PathId p, const Topology* topo = nullptr) const;

  [[nodiscard]] std::size_t size() const { return cells_.size(); }
  [[nodiscard]] std::size_t bytes() const;

 private:
  struct Cell {
    NodeId head = kNoNode;
    PathId rest = kNoPath;
    std::uint32_t length = 0;
  };
  std::vector<Cell> cells_;
  std::unordered_map<std::uint64_t, std::vector<PathId>> index_;
};

/// A best-route candidate as held by a node during RPVP execution.
///
/// OSPF uses `metric` (IGP cost) and may carry multiple equal-cost next hops
/// in `ecmp` (the paper's special-case multipath deviation, §3.4.2). BGP uses
/// local_pref / as_path_len / metric (IGP cost to the egress) and the
/// communities accumulated by route maps. `egress` is the eBGP border device
/// whose loopback iBGP-learned routes resolve through.
struct Route {
  PathId path = kNoPath;
  std::uint32_t metric = 0;
  std::uint32_t local_pref = 100;
  std::uint16_t as_path_len = 0;
  bool learned_ibgp = false;
  NodeId egress = kNoNode;
  CommunityBits communities = 0;
  std::vector<NodeId> ecmp;  ///< sorted; empty means single next hop = path head

  friend bool operator==(const Route&, const Route&) = default;

  [[nodiscard]] std::uint64_t hash() const {
    std::uint64_t h = hash_combine(path, metric);
    h = hash_combine(h, local_pref);
    h = hash_combine(h, (std::uint64_t{as_path_len} << 2) |
                            (std::uint64_t{learned_ibgp} << 1));
    h = hash_combine(h, egress);
    h = hash_combine(h, communities);
    for (const NodeId n : ecmp) h = hash_combine(h, n);
    return h;
  }
};

/// Interns routes; id 0 is ⊥ (no route).
class RouteTable {
 public:
  RouteTable();

  RouteId intern(Route r);

  /// Id of `r` if already interned, else kNoRoute. Lets hot paths test for
  /// an existing route without the by-value copy intern() takes (the
  /// explorer's steady state re-derives already-interned routes only).
  [[nodiscard]] RouteId find(const Route& r) const;

  [[nodiscard]] const Route& get(RouteId id) const { return routes_[id]; }
  [[nodiscard]] std::size_t size() const { return routes_.size(); }
  [[nodiscard]] std::size_t bytes() const;

  /// Next hops of a route: its ECMP set if present, else the path head.
  void nexthops(RouteId id, const PathTable& paths,
                std::vector<NodeId>& out) const;

 private:
  std::vector<Route> routes_;
  std::unordered_map<std::uint64_t, std::vector<RouteId>> index_;
};

}  // namespace plankton
