#include "protocols/spvp.hpp"

#include <algorithm>

#include "netbase/hash.hpp"

namespace plankton::spvp {
namespace {

/// A message is an advertisement or a withdrawal (nullopt).
using Message = std::optional<BgpAdvert>;

struct Session {
  NodeId from;
  NodeId to;
};

struct State {
  /// rib_in[node index][peer index] — last advertisement received.
  std::vector<std::vector<Message>> rib_in;
  std::vector<Message> best;                 ///< per node index
  std::vector<std::deque<Message>> buffers;  ///< per directed session

  friend bool operator==(const State&, const State&) = default;
};

std::uint64_t hash_advert(const BgpAdvert& a) {
  std::uint64_t h = hash_span<NodeId>(a.path);
  h = hash_combine(h, a.local_pref);
  h = hash_combine(h, a.as_path_len);
  h = hash_combine(h, a.communities);
  h = hash_combine(h, (std::uint64_t{a.learned_ibgp} << 32) ^ a.metric);
  return h;
}

std::uint64_t hash_message(const Message& m) {
  return m.has_value() ? hash_advert(*m) : 0x77;
}

std::uint64_t hash_state(const State& s) {
  std::uint64_t h = 0x5127;
  for (const auto& row : s.rib_in) {
    for (const auto& m : row) h = hash_combine(h, hash_message(m));
  }
  for (const auto& m : s.best) h = hash_combine(h, hash_message(m));
  for (const auto& buf : s.buffers) {
    h = hash_combine(h, 0xb0f);
    for (const auto& m : buf) h = hash_combine(h, hash_message(m));
  }
  return h;
}

class SpvpExplorer {
 public:
  SpvpExplorer(const Network& net, const Prefix& prefix,
               std::span<const NodeId> origins, std::uint64_t max_states,
               const UpstreamResolver* upstream)
      : net_(net), prefix_(prefix), max_states_(max_states), upstream_(upstream) {
    for (NodeId n = 0; n < net.devices.size(); ++n) {
      if (net.device(n).bgp.has_value()) {
        index_of_[n] = members_.size();
        members_.push_back(n);
      }
    }
    is_origin_.assign(members_.size(), 0);
    for (const NodeId o : origins) is_origin_[index_of_.at(o)] = 1;
    for (const NodeId n : members_) {
      for (const auto& s : net.device(n).bgp->sessions) {
        sessions_.push_back(Session{n, s.peer});
      }
    }
  }

  SpvpResult run() {
    State init;
    init.rib_in.assign(members_.size(), {});
    for (std::size_t i = 0; i < members_.size(); ++i) {
      init.rib_in[i].assign(peer_count(members_[i]), std::nullopt);
    }
    init.best.assign(members_.size(), std::nullopt);
    init.buffers.assign(sessions_.size(), {});
    // Origins hold ε and enqueue their initial advertisements (Appendix A).
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (is_origin_[i] == 0) continue;
      BgpAdvert origin;
      origin.egress = members_[i];
      init.best[i] = origin;
      enqueue_exports(init, members_[i], origin);
    }
    dfs(std::move(init), 0);
    return std::move(result_);
  }

 private:
  [[nodiscard]] std::size_t peer_count(NodeId n) const {
    return net_.device(n).bgp->sessions.size();
  }
  [[nodiscard]] std::size_t peer_index(NodeId n, NodeId peer) const {
    const auto& sessions = net_.device(n).bgp->sessions;
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      if (sessions[i].peer == peer) return i;
    }
    return ~std::size_t{0};
  }

  /// Pushes export(best) to every peer of `n` (withdrawal when filtered).
  void enqueue_exports(State& s, NodeId n, const Message& best) {
    for (std::size_t si = 0; si < sessions_.size(); ++si) {
      if (sessions_[si].from != n) continue;
      const NodeId to = sessions_[si].to;
      Message out;
      if (best.has_value()) {
        out = bgp_transform(net_, prefix_, n, to, *best, upstream_);
      }
      s.buffers[si].push_back(std::move(out));
    }
  }

  /// Receiver processes one message: update rib-in, re-select best,
  /// propagate on change.
  void deliver(State& s, std::size_t session_idx) {
    const NodeId from = sessions_[session_idx].from;
    const NodeId to = sessions_[session_idx].to;
    Message msg = std::move(s.buffers[session_idx].front());
    s.buffers[session_idx].pop_front();
    const std::size_t ti = index_of_.at(to);
    s.rib_in[ti][peer_index(to, from)] = std::move(msg);
    if (is_origin_[ti] != 0) return;  // origins keep ε (best-path pinned)

    // Best selection over rib-in (the ranking function; ties broken by
    // keeping the current best if it is still among the top-ranked —
    // age-based tie-breaking).
    Message new_best;
    for (const auto& cand : s.rib_in[ti]) {
      if (!cand.has_value()) continue;
      if (!new_best.has_value() || bgp_rank(*cand) > bgp_rank(*new_best)) {
        new_best = cand;
      }
    }
    if (s.best[ti].has_value() && new_best.has_value() &&
        bgp_rank(*s.best[ti]) == bgp_rank(*new_best)) {
      // Current best has equal rank: keep it if still present in rib-in.
      for (const auto& cand : s.rib_in[ti]) {
        if (cand.has_value() && *cand == *s.best[ti]) {
          new_best = *s.best[ti];
          break;
        }
      }
    }
    if (s.best[ti] == new_best) return;
    s.best[ti] = new_best;
    enqueue_exports(s, to, s.best[ti]);
  }

  void record_converged(const State& s) {
    ConvergedState cs(net_.topo.node_count());
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (s.best[i].has_value()) cs[members_[i]] = s.best[i]->path;
    }
    result_.converged.insert(std::move(cs));
  }

  void dfs(State s, int depth) {
    if (result_.state_limit_hit) return;
    if (!visited_.insert({hash_state(s), 0}).second) return;
    if (++result_.states_explored > max_states_) {
      result_.state_limit_hit = true;
      return;
    }
    bool any = false;
    for (std::size_t si = 0; si < sessions_.size(); ++si) {
      if (s.buffers[si].empty()) continue;
      any = true;
      State next = s;
      deliver(next, si);
      // Divergent executions (e.g. DISAGREE oscillation) grow buffers
      // without bound; prune them. Theorem 1 guarantees every converged
      // state is reached by an execution in which each node adopts its
      // final path once, so small buffer bounds lose no converged states.
      bool overflow = false;
      for (const auto& buf : next.buffers) {
        if (buf.size() > kBufferCap) {
          overflow = true;
          break;
        }
      }
      if (overflow) {
        result_.maybe_divergent = true;
        continue;
      }
      dfs(std::move(next), depth + 1);
    }
    if (!any) record_converged(s);
  }

  static constexpr std::size_t kBufferCap = 3;

  const Network& net_;
  Prefix prefix_;
  std::uint64_t max_states_;
  const UpstreamResolver* upstream_;
  std::vector<NodeId> members_;
  std::map<NodeId, std::size_t> index_of_;
  std::vector<std::uint8_t> is_origin_;
  std::vector<Session> sessions_;
  std::set<std::pair<std::uint64_t, int>> visited_;
  SpvpResult result_;
};

}  // namespace

SpvpResult explore_spvp(const Network& net, const Prefix& prefix,
                        std::span<const NodeId> origins,
                        std::uint64_t max_states,
                        const UpstreamResolver* upstream) {
  return SpvpExplorer(net, prefix, origins, max_states, upstream).run();
}

}  // namespace plankton::spvp
