#include "protocols/ospf.hpp"

#include <algorithm>

namespace plankton {

OspfProcess::OspfProcess(const Network& net, Prefix prefix,
                         std::vector<NodeId> origins)
    : net_(net), prefix_(prefix), origins_(std::move(origins)) {
  for (NodeId n = 0; n < net.devices.size(); ++n) {
    if (net.device(n).ospf.enabled) members_.push_back(n);
  }
  up_peers_.resize(net.topo.node_count());
  dist_.assign(net.topo.node_count(), kInfiniteCost);
}

RouteId OspfProcess::origin_route(NodeId origin, ModelContext& ctx) const {
  (void)origin;
  Route r;
  r.path = kEmptyPath;
  r.metric = 0;
  return ctx.routes.intern(std::move(r));
}

void OspfProcess::prepare(const FailureSet& failures, ModelContext& ctx) {
  (void)ctx;
  for (auto& peers : up_peers_) peers.clear();
  for (const NodeId n : members_) {
    for (const auto& adj : net_.topo.neighbors(n)) {
      if (failures.is_failed(adj.link)) continue;
      if (!net_.device(adj.neighbor).ospf.enabled) continue;
      up_peers_[n].push_back(adj.neighbor);
    }
  }
  dist_ = shortest_path_costs(net_.topo, origins_, failures);
  // Non-OSPF devices must not appear on SPF paths; recompute over the
  // OSPF-only subgraph when the network mixes protocol domains.
  bool mixed = false;
  for (NodeId n = 0; n < net_.devices.size(); ++n) {
    if (!net_.device(n).ospf.enabled) {
      mixed = true;
      break;
    }
  }
  if (mixed) {
    FailureSet masked = failures;
    for (LinkId l = 0; l < net_.topo.link_count(); ++l) {
      const Link& link = net_.topo.link(l);
      if (!net_.device(link.a).ospf.enabled || !net_.device(link.b).ospf.enabled) {
        masked.fail(l);
      }
    }
    dist_ = shortest_path_costs(net_.topo, origins_, masked);
  }
}

RouteId OspfProcess::advertised(NodeId p, NodeId n, RouteId peer_route,
                                ModelContext& ctx) const {
  if (peer_route == kNoRoute) return kNoRoute;
  const Route& rp = ctx.routes.get(peer_route);
  if (ctx.paths.contains(rp.path, n)) return kNoRoute;  // loop rejection
  const LinkId link = net_.topo.find_link(n, p);
  if (link == kNoLink) return kNoRoute;
  Route r;
  r.path = ctx.paths.cons(p, rp.path);
  const std::uint64_t metric =
      std::uint64_t{rp.metric} + net_.topo.link(link).cost_from(n);
  if (metric >= kInfiniteCost) return kNoRoute;
  r.metric = static_cast<std::uint32_t>(metric);
  return ctx.routes.intern(std::move(r));
}

int OspfProcess::compare(NodeId n, RouteId a, RouteId b,
                         const ModelContext& ctx) const {
  (void)n;
  if (a == b) return 0;
  if (a == kNoRoute) return -1;
  if (b == kNoRoute) return 1;
  const Route& ra = ctx.routes.get(a);
  const Route& rb = ctx.routes.get(b);
  if (ra.metric != rb.metric) return ra.metric < rb.metric ? 1 : -1;
  return 0;
}

bool OspfProcess::valid(NodeId n, RouteId current, const StateView& s,
                        ModelContext& ctx) const {
  // A multipath route stays valid while every ECMP member still justifies
  // the route's metric with its own current best route.
  if (current == kNoRoute) return true;
  // Copy the fields before calling advertised(): interning may reallocate
  // the route table and invalidate references into it.
  const PathId path = ctx.routes.get(current).path;
  const std::uint32_t metric = ctx.routes.get(current).metric;
  if (path == kEmptyPath) return true;
  std::vector<NodeId>& hops = valid_hops_;
  ctx.routes.nexthops(current, ctx.paths, hops);
  for (const NodeId hop : hops) {
    const RouteId adv = advertised(hop, n, s.best(hop), ctx);
    if (adv == kNoRoute || ctx.routes.get(adv).metric != metric) return false;
  }
  return true;
}

RouteId OspfProcess::merge(NodeId n, std::span<const RouteId> updates,
                           ModelContext& ctx) const {
  (void)n;
  RouteId best = kNoRoute;
  std::uint32_t best_metric = kInfiniteCost;
  for (const RouteId u : updates) {
    if (u == kNoRoute) continue;
    const std::uint32_t m = ctx.routes.get(u).metric;
    if (best == kNoRoute || m < best_metric) {
      best = u;
      best_metric = m;
    }
  }
  if (best == kNoRoute) return kNoRoute;
  std::vector<NodeId>& hops = merge_hops_;
  hops.clear();
  for (const RouteId u : updates) {
    if (u == kNoRoute || ctx.routes.get(u).metric != best_metric) continue;
    hops.push_back(ctx.paths.head(ctx.routes.get(u).path));
  }
  std::sort(hops.begin(), hops.end());
  hops.erase(std::unique(hops.begin(), hops.end()), hops.end());
  // Build the candidate in a reusable scratch route, then intern only when
  // it is genuinely new — in steady state every merge result is already in
  // the table and this path allocates nothing.
  Route& merged = merge_scratch_;
  merged = ctx.routes.get(best);
  if (hops.size() > 1) {
    // Keep the representative path of the lowest-id next hop so the merged
    // route is canonical regardless of update order.
    for (const RouteId u : updates) {
      if (u == kNoRoute || ctx.routes.get(u).metric != best_metric) continue;
      if (ctx.paths.head(ctx.routes.get(u).path) == hops.front()) {
        merged = ctx.routes.get(u);
        break;
      }
    }
    merged.ecmp.assign(hops.begin(), hops.end());
  } else {
    merged.ecmp.clear();
  }
  const RouteId existing = ctx.routes.find(merged);
  if (existing != kNoRoute) return existing;
  return ctx.routes.intern(merged);
}

NodeId OspfProcess::deterministic_node(std::span<const NodeId> enabled,
                                       const StateView& s, ModelContext& ctx,
                                       bool& tie_ok) const {
  (void)s;
  (void)ctx;
  tie_ok = false;
  // Pick the enabled node closest to the origin set; the SPF-order argument
  // (see DESIGN.md / paper §4.1.2) makes its merged update final.
  NodeId pick = kNoNode;
  std::uint32_t pick_dist = kInfiniteCost;
  for (const NodeId n : enabled) {
    if (dist_[n] < pick_dist || (dist_[n] == pick_dist && n < pick)) {
      pick = n;
      pick_dist = dist_[n];
    }
  }
  return pick;
}

}  // namespace plankton
