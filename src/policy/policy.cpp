#include "policy/policy.hpp"

#include <algorithm>

namespace plankton {
namespace {

std::vector<NodeId> all_nodes(const ConvergedView& view) {
  std::vector<NodeId> out(view.net.topo.node_count());
  for (NodeId n = 0; n < out.size(); ++n) out[n] = n;
  return out;
}

std::vector<NodeId> effective_sources(std::span<const NodeId> sources,
                                      const ConvergedView& view) {
  if (!sources.empty()) return {sources.begin(), sources.end()};
  return all_nodes(view);
}

}  // namespace

ReachabilityPolicy::ReachabilityPolicy(std::vector<NodeId> sources)
    : sources_(std::move(sources)) {}

bool ReachabilityPolicy::check(const ConvergedView& view, std::string& why) const {
  for (const NodeId s : effective_sources(sources_, view)) {
    const WalkStats w = walk_from(view.dp, s);
    if (!w.delivered_all || !w.delivered_any) {
      why = "traffic from " + view.net.topo.name(s) +
            (w.looped ? " loops" : w.dropped ? " is dropped" : " is not delivered");
      return false;
    }
  }
  return true;
}

WaypointPolicy::WaypointPolicy(std::vector<NodeId> sources,
                               std::vector<NodeId> waypoints)
    : sources_(std::move(sources)), waypoints_(std::move(waypoints)) {}

bool WaypointPolicy::check(const ConvergedView& view, std::string& why) const {
  for (const NodeId s : effective_sources(sources_, view)) {
    const WalkStats w = walk_from(view.dp, s, waypoints_);
    if (!w.delivered_all || !w.delivered_any) {
      why = "traffic from " + view.net.topo.name(s) + " is not delivered";
      return false;
    }
    if (!w.hit_waypoint_all) {
      why = "a path from " + view.net.topo.name(s) + " bypasses all waypoints";
      return false;
    }
  }
  return true;
}

bool LoopFreedomPolicy::check(const ConvergedView& view, std::string& why) const {
  for (const NodeId s : all_nodes(view)) {
    const WalkStats w = walk_from(view.dp, s);
    if (w.looped) {
      why = "forwarding loop reachable from " + view.net.topo.name(s);
      return false;
    }
  }
  return true;
}

BlackholeFreedomPolicy::BlackholeFreedomPolicy(std::vector<NodeId> sources)
    : sources_(std::move(sources)) {}

bool BlackholeFreedomPolicy::check(const ConvergedView& view, std::string& why) const {
  for (const NodeId s : effective_sources(sources_, view)) {
    const WalkStats w = walk_from(view.dp, s);
    if (w.dropped) {
      why = "traffic from " + view.net.topo.name(s) + " hits a black hole";
      return false;
    }
  }
  return true;
}

BoundedPathLengthPolicy::BoundedPathLengthPolicy(std::vector<NodeId> sources,
                                                 std::uint32_t limit)
    : sources_(std::move(sources)), limit_(limit) {}

bool BoundedPathLengthPolicy::check(const ConvergedView& view, std::string& why) const {
  for (const NodeId s : effective_sources(sources_, view)) {
    const WalkStats w = walk_from(view.dp, s);
    if (w.looped) {
      why = "unbounded path (loop) from " + view.net.topo.name(s);
      return false;
    }
    if (w.max_hops > limit_) {
      why = "path from " + view.net.topo.name(s) + " has " +
            std::to_string(w.max_hops) + " hops (limit " + std::to_string(limit_) + ")";
      return false;
    }
  }
  return true;
}

MultipathConsistencyPolicy::MultipathConsistencyPolicy(std::vector<NodeId> sources)
    : sources_(std::move(sources)) {}

bool MultipathConsistencyPolicy::check(const ConvergedView& view,
                                       std::string& why) const {
  for (const NodeId s : effective_sources(sources_, view)) {
    const WalkStats w = walk_from(view.dp, s);
    if (w.delivered_any && !w.delivered_all) {
      why = "multipath divergence at " + view.net.topo.name(s) +
            ": some branches deliver, others do not";
      return false;
    }
  }
  return true;
}

PathConsistencyPolicy::PathConsistencyPolicy(std::vector<NodeId> group)
    : group_(std::move(group)) {}

namespace {
// Control-plane attributes and data-plane shape compared across the group.
struct ConsistencySignature {
  std::uint32_t metric = 0;
  std::uint32_t local_pref = 0;
  std::uint16_t as_len = 0;
  bool has_route = false;
  bool delivered = false;
  std::uint32_t hops = 0;
  friend bool operator==(const ConsistencySignature&,
                         const ConsistencySignature&) = default;
};
}  // namespace

bool PathConsistencyPolicy::check(const ConvergedView& view, std::string& why) const {
  if (group_.size() < 2) return true;
  using Signature = ConsistencySignature;
  auto signature_of = [&](NodeId n) {
    Signature sig;
    for (const auto& rib : view.ribs) {
      const RouteId r = rib.routes[n];
      if (r == kNoRoute) continue;
      const Route& route = view.ctx.routes.get(r);
      sig.has_route = true;
      sig.metric = route.metric;
      sig.local_pref = route.local_pref;
      sig.as_len = route.as_path_len;
      break;  // most specific prefix wins
    }
    const WalkStats w = walk_from(view.dp, n);
    sig.delivered = w.delivered_all && w.delivered_any;
    sig.hops = w.max_hops;
    return sig;
  };
  const Signature first = signature_of(group_.front());
  for (std::size_t i = 1; i < group_.size(); ++i) {
    if (!(signature_of(group_[i]) == first)) {
      why = "devices " + view.net.topo.name(group_.front()) + " and " +
            view.net.topo.name(group_[i]) +
            " have diverging control/data plane state";
      return false;
    }
  }
  return true;
}

// -- make_policy spec rendering ----------------------------------------------
// These must stay in lockstep with the serve-layer grammar: a remote shard
// worker rebuilds the policy by feeding this string back through make_policy,
// and a drifting renderer silently verifies a different property.

namespace {

void append_names(std::string& out, const Network& net,
                  std::span<const NodeId> nodes) {
  for (const NodeId n : nodes) {
    out += ' ';
    out += net.topo.name(n);
  }
}

}  // namespace

std::string ReachabilityPolicy::spec(const Network& net) const {
  std::string out = "reach";
  append_names(out, net, sources_);
  return out;
}

std::string WaypointPolicy::spec(const Network& net) const {
  if (waypoints_.size() != 1) return "";
  std::string out = "waypoint ";
  out += net.topo.name(waypoints_.front());
  append_names(out, net, sources_);
  return out;
}

std::string LoopFreedomPolicy::spec(const Network&) const { return "loop"; }

std::string BlackholeFreedomPolicy::spec(const Network& net) const {
  std::string out = "blackhole";
  append_names(out, net, sources_);
  return out;
}

std::string BoundedPathLengthPolicy::spec(const Network& net) const {
  std::string out = "bounded " + std::to_string(limit_);
  append_names(out, net, sources_);
  return out;
}

}  // namespace plankton
