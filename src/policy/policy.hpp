// Policy API (paper §3.5).
//
// A policy is an arbitrary predicate over a converged data plane: Plankton
// invokes the callback once per converged state the model checker generates,
// passing the PEC's data plane plus the control-plane RIBs. Policies may
// declare source nodes (enables policy-based pruning, §4.2) and interesting
// nodes (enables converged-state equivalence suppression and keeps those
// devices in their own DEC, §4.3).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dataplane/fib.hpp"
#include "pec/pec.hpp"

namespace plankton {

/// Everything a policy callback may inspect about one converged state.
struct ConvergedView {
  const Network& net;
  const Pec& pec;
  const FailureSet& failures;
  const DataPlane& dp;
  std::span<const TaskRib> ribs;  ///< per (prefix, protocol) control-plane state
  const ModelContext& ctx;
};

class Policy {
 public:
  virtual ~Policy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Nodes whose forwarding the policy inspects; empty = all nodes.
  [[nodiscard]] virtual std::span<const NodeId> sources() const { return {}; }

  /// Nodes whose position on paths matters; empty = all nodes.
  [[nodiscard]] virtual std::span<const NodeId> interesting() const { return {}; }

  /// Returns true when the converged state satisfies the policy. On failure,
  /// `why` receives a human-readable explanation.
  [[nodiscard]] virtual bool check(const ConvergedView& view, std::string& why) const = 0;

  /// True when the policy outcome is a function of the §3.5 equivalence
  /// signature (source path lengths + interesting-node positions), enabling
  /// converged-state suppression. Policies that inspect control-plane
  /// attributes (e.g. Path Consistency) must return false.
  [[nodiscard]] virtual bool supports_equivalence() const { return true; }

  /// The policy rendered in the serve-layer `make_policy` grammar ("reach
  /// <node>...", "loop", ...), so a remote shard worker can rebuild it from
  /// the bootstrap blob. Empty = the policy has no spec form; cluster
  /// transports fall back to fork for such policies.
  [[nodiscard]] virtual std::string spec(const Network& net) const {
    (void)net;
    return "";
  }
};

/// All sources must deliver on every forwarding branch.
class ReachabilityPolicy final : public Policy {
 public:
  explicit ReachabilityPolicy(std::vector<NodeId> sources);
  [[nodiscard]] std::string name() const override { return "reachability"; }
  [[nodiscard]] std::span<const NodeId> sources() const override { return sources_; }
  [[nodiscard]] bool check(const ConvergedView& view, std::string& why) const override;
  [[nodiscard]] std::string spec(const Network& net) const override;

 private:
  std::vector<NodeId> sources_;
};

/// Every delivered path from a source must cross one of the waypoints, and
/// traffic must actually be delivered.
class WaypointPolicy final : public Policy {
 public:
  WaypointPolicy(std::vector<NodeId> sources, std::vector<NodeId> waypoints);
  [[nodiscard]] std::string name() const override { return "waypoint"; }
  [[nodiscard]] std::span<const NodeId> sources() const override { return sources_; }
  [[nodiscard]] std::span<const NodeId> interesting() const override { return waypoints_; }
  [[nodiscard]] bool check(const ConvergedView& view, std::string& why) const override;
  /// Only the single-waypoint form exists in the grammar; multi-waypoint
  /// policies return "" (fork-only).
  [[nodiscard]] std::string spec(const Network& net) const override;

 private:
  std::vector<NodeId> sources_;
  std::vector<NodeId> waypoints_;
};

/// No forwarding cycle reachable from any node ("a loop policy can't
/// optimize as aggressively: it has to consider all sources", §3.5).
class LoopFreedomPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "loop-freedom"; }
  [[nodiscard]] bool check(const ConvergedView& view, std::string& why) const override;
  [[nodiscard]] std::string spec(const Network& net) const override;
};

/// No source's traffic may hit a drop entry.
class BlackholeFreedomPolicy final : public Policy {
 public:
  explicit BlackholeFreedomPolicy(std::vector<NodeId> sources = {});
  [[nodiscard]] std::string name() const override { return "blackhole-freedom"; }
  [[nodiscard]] std::span<const NodeId> sources() const override { return sources_; }
  [[nodiscard]] bool check(const ConvergedView& view, std::string& why) const override;
  [[nodiscard]] std::string spec(const Network& net) const override;

 private:
  std::vector<NodeId> sources_;
};

/// All delivered paths from sources have at most `limit` hops.
class BoundedPathLengthPolicy final : public Policy {
 public:
  BoundedPathLengthPolicy(std::vector<NodeId> sources, std::uint32_t limit);
  [[nodiscard]] std::string name() const override { return "bounded-path-length"; }
  [[nodiscard]] std::span<const NodeId> sources() const override { return sources_; }
  [[nodiscard]] bool check(const ConvergedView& view, std::string& why) const override;
  [[nodiscard]] std::string spec(const Network& net) const override;

 private:
  std::vector<NodeId> sources_;
  std::uint32_t limit_;
};

/// All ECMP branches from a source share one fate: all delivered or none
/// (Minesweeper's multipath-consistency, referenced in §3.5).
class MultipathConsistencyPolicy final : public Policy {
 public:
  explicit MultipathConsistencyPolicy(std::vector<NodeId> sources = {});
  [[nodiscard]] std::string name() const override { return "multipath-consistency"; }
  [[nodiscard]] std::span<const NodeId> sources() const override { return sources_; }
  [[nodiscard]] bool check(const ConvergedView& view, std::string& why) const override;

 private:
  std::vector<NodeId> sources_;
};

/// The devices in one group must have identical control-plane route
/// attributes and identical data-plane path shape (the paper's Path
/// Consistency, §3.5 — a control-plane-inspecting policy in the spirit of
/// Minesweeper's Local Equivalence).
class PathConsistencyPolicy final : public Policy {
 public:
  explicit PathConsistencyPolicy(std::vector<NodeId> group);
  [[nodiscard]] std::string name() const override { return "path-consistency"; }
  [[nodiscard]] std::span<const NodeId> sources() const override { return group_; }
  [[nodiscard]] bool check(const ConvergedView& view, std::string& why) const override;
  [[nodiscard]] bool supports_equivalence() const override { return false; }

 private:
  std::vector<NodeId> group_;
};

}  // namespace plankton
