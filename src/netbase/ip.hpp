// IPv4 address and prefix value types.
//
// These are the primitive vocabulary of the whole library: configurations
// originate prefixes, the PEC trie partitions the 32-bit address space into
// ranges, and policies are checked per Packet Equivalence Class.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace plankton {

/// A single IPv4 address, stored host-order so arithmetic and comparisons
/// follow numeric order of the address space.
class IpAddr {
 public:
  constexpr IpAddr() = default;
  constexpr explicit IpAddr(std::uint32_t value) : value_(value) {}
  constexpr IpAddr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parses dotted-quad notation ("10.1.2.3"). Returns nullopt on malformed input.
  static std::optional<IpAddr> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] std::string str() const;

  friend constexpr auto operator<=>(IpAddr, IpAddr) = default;

 private:
  std::uint32_t value_ = 0;
};

/// An IPv4 prefix (address + mask length). The host bits of `addr` are kept
/// zeroed so prefixes compare structurally.
class Prefix {
 public:
  constexpr Prefix() = default;
  constexpr Prefix(IpAddr addr, std::uint8_t len)
      : addr_(IpAddr(len == 0 ? 0 : (addr.value() & (~std::uint32_t{0} << (32 - len))))),
        len_(len) {}

  /// Parses "a.b.c.d/len". Returns nullopt on malformed input or len > 32.
  static std::optional<Prefix> parse(std::string_view text);

  /// The all-addresses prefix 0.0.0.0/0.
  static constexpr Prefix any() { return Prefix(IpAddr(0), 0); }

  /// A host prefix a.b.c.d/32.
  static constexpr Prefix host(IpAddr a) { return Prefix(a, 32); }

  [[nodiscard]] constexpr IpAddr addr() const { return addr_; }
  [[nodiscard]] constexpr std::uint8_t length() const { return len_; }

  /// Lowest address covered by the prefix.
  [[nodiscard]] constexpr IpAddr first() const { return addr_; }
  /// Highest address covered by the prefix.
  [[nodiscard]] constexpr IpAddr last() const {
    // len 32 -> no host bits (shifting by 32 would be UB).
    return IpAddr(addr_.value() |
                  (len_ >= 32 ? 0u : (~std::uint32_t{0} >> len_)));
  }

  [[nodiscard]] constexpr bool contains(IpAddr a) const {
    return a >= first() && a <= last();
  }
  /// True when `other` is fully inside this prefix (incl. equality).
  [[nodiscard]] constexpr bool covers(const Prefix& other) const {
    return len_ <= other.len_ && contains(other.addr_);
  }

  [[nodiscard]] std::string str() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  IpAddr addr_;
  std::uint8_t len_ = 0;
};

}  // namespace plankton
