#include "netbase/topology.hpp"

#include <algorithm>
#include <queue>

#include "netbase/hash.hpp"

namespace plankton {

void FailureSet::fail(LinkId link) {
  if (link >= failed_.size()) failed_.resize(link + 1, false);
  if (failed_[link]) return;
  failed_[link] = true;
  ids_.insert(std::lower_bound(ids_.begin(), ids_.end(), link), link);
}

std::uint64_t FailureSet::hash() const {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  for (const LinkId id : ids_) h = hash_combine(h, id);
  return h;
}

std::string FailureSet::str() const {
  std::string out = "{";
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(ids_[i]);
  }
  out += "}";
  return out;
}

NodeId Topology::add_node(std::string name) {
  names_.push_back(std::move(name));
  adjacency_.emplace_back();
  return static_cast<NodeId>(names_.size() - 1);
}

LinkId Topology::add_link(NodeId a, NodeId b, std::uint32_t cost) {
  return add_link(a, b, cost, cost);
}

LinkId Topology::add_link(NodeId a, NodeId b, std::uint32_t cost_ab,
                          std::uint32_t cost_ba) {
  const auto id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{a, b, cost_ab, cost_ba});
  adjacency_[a].push_back(Adjacency{b, id, cost_ab});
  adjacency_[b].push_back(Adjacency{a, id, cost_ba});
  return id;
}

void Topology::set_link_cost(LinkId l, std::uint32_t cost_ab,
                             std::uint32_t cost_ba) {
  Link& link = links_[l];
  link.cost_ab = cost_ab;
  link.cost_ba = cost_ba;
  for (Adjacency& adj : adjacency_[link.a]) {
    if (adj.link == l) adj.cost = cost_ab;
  }
  for (Adjacency& adj : adjacency_[link.b]) {
    if (adj.link == l) adj.cost = cost_ba;
  }
}

LinkId Topology::find_link(NodeId a, NodeId b) const {
  for (const auto& adj : adjacency_[a]) {
    if (adj.neighbor == b) return adj.link;
  }
  return kNoLink;
}

std::vector<std::uint32_t> shortest_path_costs(const Topology& topo,
                                               std::span<const NodeId> sources,
                                               const FailureSet& failures) {
  std::vector<std::uint32_t> dist(topo.node_count(), kInfiniteCost);
  using Item = std::pair<std::uint32_t, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  for (const NodeId s : sources) {
    dist[s] = 0;
    heap.emplace(0u, s);
  }
  while (!heap.empty()) {
    const auto [d, n] = heap.top();
    heap.pop();
    if (d != dist[n]) continue;
    for (const auto& adj : topo.neighbors(n)) {
      if (failures.is_failed(adj.link)) continue;
      // Traversal n -> neighbor uses the cost *into* n when computing
      // distance-to-source trees: OSPF costs accumulate on the outgoing
      // interface of the forwarding node, i.e. neighbor -> n direction.
      const std::uint32_t step = topo.link(adj.link).cost_from(adj.neighbor);
      if (dist[n] != kInfiniteCost && step != kInfiniteCost) {
        const std::uint64_t cand = std::uint64_t{dist[n]} + step;
        if (cand < dist[adj.neighbor]) {
          dist[adj.neighbor] = static_cast<std::uint32_t>(cand);
          heap.emplace(dist[adj.neighbor], adj.neighbor);
        }
      }
    }
  }
  return dist;
}

}  // namespace plankton
