// Physical topology: devices (nodes) and point-to-point links.
//
// The topology is the substrate beneath every protocol model. Links carry
// per-direction IGP weights (OSPF costs); failures are expressed as sets of
// link ids, which the RPVP engine and the baselines both consume.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "netbase/ip.hpp"

namespace plankton {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;

inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();
inline constexpr LinkId kNoLink = std::numeric_limits<LinkId>::max();

/// An undirected point-to-point link with a per-direction cost.
struct Link {
  NodeId a = kNoNode;
  NodeId b = kNoNode;
  std::uint32_t cost_ab = 1;  ///< IGP cost when traversing a -> b.
  std::uint32_t cost_ba = 1;  ///< IGP cost when traversing b -> a.

  [[nodiscard]] NodeId other(NodeId n) const { return n == a ? b : a; }
  [[nodiscard]] std::uint32_t cost_from(NodeId n) const {
    return n == a ? cost_ab : cost_ba;
  }
};

/// Adjacency entry as seen from one endpoint of a link.
struct Adjacency {
  NodeId neighbor = kNoNode;
  LinkId link = kNoLink;
  std::uint32_t cost = 1;  ///< Cost of leaving this node over the link.
};

/// A set of failed links, stored both as a bitmap (O(1) membership) and as a
/// sorted id list (cheap hashing / canonical form).
class FailureSet {
 public:
  FailureSet() = default;
  explicit FailureSet(std::size_t num_links) : failed_(num_links, false) {}

  void resize(std::size_t num_links) { failed_.assign(num_links, false); }

  void fail(LinkId link);
  [[nodiscard]] bool is_failed(LinkId link) const {
    return link < failed_.size() && failed_[link];
  }
  [[nodiscard]] std::span<const LinkId> ids() const { return ids_; }
  [[nodiscard]] std::size_t count() const { return ids_.size(); }
  [[nodiscard]] bool empty() const { return ids_.empty(); }

  /// Stable 64-bit hash of the failed-link id list (used to key outcome
  /// stores and coordinate failures across PEC runs).
  [[nodiscard]] std::uint64_t hash() const;

  [[nodiscard]] std::string str() const;

  friend bool operator==(const FailureSet& x, const FailureSet& y) {
    return x.ids_ == y.ids_;
  }

 private:
  std::vector<bool> failed_;
  std::vector<LinkId> ids_;  // sorted
};

/// The device/link graph. Node ids are dense [0, node_count).
class Topology {
 public:
  NodeId add_node(std::string name);
  /// Adds an undirected link with symmetric cost.
  LinkId add_link(NodeId a, NodeId b, std::uint32_t cost = 1);
  /// Adds an undirected link with per-direction costs.
  LinkId add_link(NodeId a, NodeId b, std::uint32_t cost_ab, std::uint32_t cost_ba);

  [[nodiscard]] std::size_t node_count() const { return names_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  [[nodiscard]] const std::string& name(NodeId n) const { return names_[n]; }
  [[nodiscard]] const Link& link(LinkId l) const { return links_[l]; }
  [[nodiscard]] std::span<const Link> links() const { return links_; }

  /// All adjacencies of `n` (including ones over failed links; callers filter).
  [[nodiscard]] std::span<const Adjacency> neighbors(NodeId n) const {
    return adjacency_[n];
  }

  /// Link between a and b, or kNoLink. O(deg(a)).
  [[nodiscard]] LinkId find_link(NodeId a, NodeId b) const;

  /// Rewrites both per-direction costs of an existing link (and the cached
  /// adjacency costs on both endpoints). Used by workload generators to break
  /// symmetry; not a runtime mutation path — verifiers snapshot the topology.
  void set_link_cost(LinkId l, std::uint32_t cost_ab, std::uint32_t cost_ba);

  [[nodiscard]] FailureSet no_failures() const { return FailureSet(links_.size()); }

 private:
  std::vector<std::string> names_;
  std::vector<Link> links_;
  std::vector<std::vector<Adjacency>> adjacency_;
};

/// Computes single-source shortest-path costs from `sources` over non-failed
/// links (Dijkstra). Unreachable nodes get kInfiniteCost. This is the
/// reference IGP computation used by the OSPF deterministic-node heuristic,
/// by iBGP ranking (IGP cost to next hop), and by tests.
inline constexpr std::uint32_t kInfiniteCost = std::numeric_limits<std::uint32_t>::max();

std::vector<std::uint32_t> shortest_path_costs(const Topology& topo,
                                               std::span<const NodeId> sources,
                                               const FailureSet& failures);

}  // namespace plankton
