// Small hashing utilities shared across the state-hashing machinery.
#pragma once

#include <cstdint>
#include <span>

namespace plankton {

/// Mixes a 64-bit value into a running hash (splitmix64-style finalizer).
constexpr std::uint64_t hash_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  return hash_mix(seed ^ hash_mix(value));
}

/// Hashes a span of trivially-hashable integers.
template <typename T>
constexpr std::uint64_t hash_span(std::span<const T> data,
                                  std::uint64_t seed = 0x51ed2701a3c5e891ull) {
  std::uint64_t h = seed;
  for (const T& v : data) h = hash_combine(h, static_cast<std::uint64_t>(v));
  return h;
}

}  // namespace plankton
