#include "netbase/ip.hpp"

#include <charconv>

namespace plankton {

std::optional<IpAddr> IpAddr::parse(std::string_view text) {
  std::uint32_t value = 0;
  const char* cursor = text.data();
  const char* end = text.data() + text.size();
  for (int octet = 0; octet < 4; ++octet) {
    unsigned part = 0;
    auto [next, ec] = std::from_chars(cursor, end, part);
    if (ec != std::errc{} || part > 255) return std::nullopt;
    value = (value << 8) | part;
    cursor = next;
    if (octet < 3) {
      if (cursor == end || *cursor != '.') return std::nullopt;
      ++cursor;
    }
  }
  if (cursor != end) return std::nullopt;
  return IpAddr(value);
}

std::string IpAddr::str() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    out += std::to_string((value_ >> shift) & 0xff);
    if (shift > 0) out += '.';
  }
  return out;
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = IpAddr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  unsigned len = 0;
  const auto len_text = text.substr(slash + 1);
  auto [next, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), len);
  if (ec != std::errc{} || next != len_text.data() + len_text.size() || len > 32) {
    return std::nullopt;
  }
  return Prefix(*addr, static_cast<std::uint8_t>(len));
}

std::string Prefix::str() const {
  return addr_.str() + "/" + std::to_string(len_);
}

}  // namespace plankton
