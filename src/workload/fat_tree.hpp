// k-ary fat-tree generator with OSPF or RFC 7938-style eBGP configurations
// (paper §5, Figs. 7a-7c, 7f, 7g, and Fig. 2's topology family).
//
// A k-ary fat tree has k pods, each with k/2 edge and k/2 aggregation
// switches, plus (k/2)² cores — 5k²/4 devices total (k=4 → 20, k=14 → 245,
// k=42 → 2205, matching the paper's N values). Every edge switch originates
// one /24 prefix.
#pragma once

#include <cstdint>
#include <vector>

#include "config/network.hpp"

namespace plankton {

struct FatTreeOptions {
  int k = 4;  ///< even, >= 2
  std::uint32_t link_cost = 10;

  enum class Routing : std::uint8_t {
    kOspf,       ///< single OSPF domain, identical weights
    kBgpRfc7938  ///< eBGP on every link, one private ASN per device
  };
  Routing routing = Routing::kOspf;

  /// Fig. 7a: static routes at core routers. kMatching replicates the routes
  /// OSPF computes (policy passes); kBroken points some cores at aggregation
  /// switches of the wrong pod, creating forwarding loops (policy fails).
  enum class CoreStatics : std::uint8_t { kNone, kMatching, kBroken };
  CoreStatics statics = CoreStatics::kNone;
};

struct FatTree {
  Network net;
  int k = 0;
  std::vector<NodeId> edges;  ///< edge switches, pod-major order
  std::vector<NodeId> aggs;   ///< aggregation switches, pod-major order
  std::vector<NodeId> cores;
  std::vector<Prefix> edge_prefixes;  ///< prefix originated by edges[i]

  [[nodiscard]] std::size_t size() const { return net.topo.node_count(); }
  [[nodiscard]] NodeId edge_at(int pod, int idx) const {
    return edges[static_cast<std::size_t>(pod) * static_cast<std::size_t>(k / 2) +
                 static_cast<std::size_t>(idx)];
  }
  [[nodiscard]] NodeId agg_at(int pod, int idx) const {
    return aggs[static_cast<std::size_t>(pod) * static_cast<std::size_t>(k / 2) +
                static_cast<std::size_t>(idx)];
  }
};

FatTree make_fat_tree(const FatTreeOptions& opts);

/// Number of devices in a k-ary fat tree (5k²/4).
[[nodiscard]] constexpr std::size_t fat_tree_size(int k) {
  return 5u * static_cast<std::size_t>(k) * static_cast<std::size_t>(k) / 4u;
}

/// Smallest even k whose fat tree has at least `devices` devices.
[[nodiscard]] int fat_tree_k_for(std::size_t devices);

}  // namespace plankton
