#include "workload/as_topo.hpp"

#include <stdexcept>

#include "netbase/hash.hpp"

namespace plankton {
namespace {

/// Deterministic PRNG (splitmix64) so topologies are stable across runs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ull;
    return hash_mix(state_);
  }
  std::uint32_t below(std::uint32_t n) {
    return static_cast<std::uint32_t>(next() % n);
  }

 private:
  std::uint64_t state_;
};

}  // namespace

const std::vector<AsTopoInfo>& rocketfuel_ases() {
  static const std::vector<AsTopoInfo> kAses = {
      {"AS1221", 108}, {"AS1239", 315}, {"AS1755", 87},
      {"AS3257", 161}, {"AS3967", 79},  {"AS6461", 141},
  };
  return kAses;
}

AsTopo make_as_topo(const std::string& name) {
  for (const auto& info : rocketfuel_ases()) {
    if (info.name == name) return make_as_topo(name, info.nodes);
  }
  throw std::invalid_argument("unknown AS topology: " + name);
}

AsTopo make_as_topo(const std::string& name, int nodes) {
  if (nodes < 2) throw std::invalid_argument("AS topology needs >= 2 nodes");
  AsTopo out;
  Network& net = out.net;
  Rng rng(hash_span<char>({name.data(), name.size()}, 0xa5701));

  const int backbone_count = std::max(3, nodes / 7);
  for (int i = 0; i < nodes; ++i) {
    const bool bb = i < backbone_count;
    const NodeId id = net.add_device(
        (bb ? "bb" : "pop") + std::to_string(bb ? i : i - backbone_count),
        IpAddr(10, static_cast<std::uint8_t>(i >> 8),
               static_cast<std::uint8_t>(i & 0xff), 1));
    auto& dev = net.device(id);
    dev.ospf.enabled = true;
    dev.ospf.advertise_loopback = true;
    out.loopbacks.push_back(Prefix::host(dev.loopback));
    if (bb) out.backbone.push_back(id);
  }

  auto w = [&rng] { return 1 + rng.below(10); };

  // Backbone: ring + chords (degree heterogeneity, multiple disjoint paths).
  for (int i = 0; i < backbone_count; ++i) {
    net.topo.add_link(out.backbone[i], out.backbone[(i + 1) % backbone_count], w());
  }
  const int chords = std::max(1, backbone_count / 3);
  for (int c = 0; c < chords; ++c) {
    const NodeId a = out.backbone[rng.below(backbone_count)];
    NodeId b = out.backbone[rng.below(backbone_count)];
    if (a == b) b = out.backbone[(b + 1) % backbone_count];
    if (net.topo.find_link(a, b) == kNoLink && a != b) {
      net.topo.add_link(a, b, w());
    }
  }
  // PoP routers: dual-homed to two distinct backbone routers (so single link
  // failures leave them reachable — the Fig. 7d policy expects violations to
  // come from the weighted routing, and some PoPs are deliberately
  // single-homed to create genuine failure sensitivity).
  for (int i = backbone_count; i < nodes; ++i) {
    const NodeId pop = static_cast<NodeId>(i);
    const NodeId h1 = out.backbone[rng.below(backbone_count)];
    net.topo.add_link(pop, h1, w());
    if (rng.below(100) < 80) {  // 80% dual-homed
      NodeId h2 = out.backbone[rng.below(backbone_count)];
      if (h2 == h1) h2 = out.backbone[(h1 + 1) % backbone_count];
      if (h2 != h1 && net.topo.find_link(pop, h2) == kNoLink) {
        net.topo.add_link(pop, h2, w());
      }
    }
  }
  return out;
}

IbgpOverlay add_ibgp_mesh(AsTopo& topo, int borders) {
  IbgpOverlay overlay;
  Network& net = topo.net;
  for (NodeId n = 0; n < net.topo.node_count(); ++n) {
    overlay.speakers.push_back(n);
    auto& dev = net.device(n);
    dev.bgp.emplace();
    dev.bgp->asn = 65000;
  }
  for (std::size_t i = 0; i < overlay.speakers.size(); ++i) {
    for (std::size_t j = i + 1; j < overlay.speakers.size(); ++j) {
      BgpSession a;
      a.peer = overlay.speakers[j];
      a.ibgp = true;
      net.device(overlay.speakers[i]).bgp->sessions.push_back(a);
      BgpSession b;
      b.peer = overlay.speakers[i];
      b.ibgp = true;
      net.device(overlay.speakers[j]).bgp->sessions.push_back(b);
    }
  }
  // Border routers originate the external prefix (stub modeling of external
  // advertisements entering the AS, paper §6).
  const int nb = std::min<int>(borders, static_cast<int>(topo.backbone.size()));
  for (int b = 0; b < nb; ++b) {
    overlay.borders.push_back(topo.backbone[b]);
    net.device(topo.backbone[b]).bgp->originated.push_back(overlay.external);
  }
  return overlay;
}

}  // namespace plankton
