// Synthetic "real-world" enterprise configurations (paper §5, Figs. 7h, 7i).
//
// The paper verifies 10 proprietary configurations from 3 organizations plus
// the Stanford backbone. Those configs are not public; this generator
// reproduces the traits the paper reports about them: 2-71 devices, layered
// core/distribution/access structure, OSPF everywhere, recursive routing
// (static routes whose next hop is a loopback IP, iBGP over the IGP),
// self-loop PEC dependencies, and determinism except for failure choice.
#pragma once

#include <string>
#include <vector>

#include "config/network.hpp"

namespace plankton {

struct EnterpriseInfo {
  std::string name;
  int devices = 0;
};

/// The ten networks of Fig. 7h: I(52) II(63) III(71) IV(63) V(36) VI(2)
/// VII(30) VIII(30) IX(3) Stanford(16).
const std::vector<EnterpriseInfo>& enterprise_networks();

struct Enterprise {
  Network net;
  std::vector<NodeId> cores;
  std::vector<NodeId> access;
  std::vector<Prefix> subnets;     ///< per access device
  Prefix external{IpAddr(198, 51, 100, 0), 24};  ///< iBGP-carried (when present)
  bool has_ibgp = false;
};

Enterprise make_enterprise(const std::string& name, int devices);
Enterprise make_enterprise(const std::string& name);

}  // namespace plankton
