#include "workload/fat_tree.hpp"

#include <string>

namespace plankton {

int fat_tree_k_for(std::size_t devices) {
  int k = 2;
  while (fat_tree_size(k) < devices) k += 2;
  return k;
}

FatTree make_fat_tree(const FatTreeOptions& opts) {
  FatTree ft;
  ft.k = opts.k;
  const int k = opts.k;
  const int half = k / 2;
  Network& net = ft.net;

  for (int pod = 0; pod < k; ++pod) {
    for (int i = 0; i < half; ++i) {
      ft.edges.push_back(
          net.add_device("edge-" + std::to_string(pod) + "-" + std::to_string(i)));
    }
  }
  for (int pod = 0; pod < k; ++pod) {
    for (int i = 0; i < half; ++i) {
      ft.aggs.push_back(
          net.add_device("agg-" + std::to_string(pod) + "-" + std::to_string(i)));
    }
  }
  for (int i = 0; i < half * half; ++i) {
    ft.cores.push_back(net.add_device("core-" + std::to_string(i)));
  }

  // Pod fabric: every edge connects to every agg in its pod.
  for (int pod = 0; pod < k; ++pod) {
    for (int e = 0; e < half; ++e) {
      for (int a = 0; a < half; ++a) {
        net.topo.add_link(ft.edge_at(pod, e), ft.agg_at(pod, a), opts.link_cost);
      }
    }
  }
  // Core fabric: agg i of each pod connects to cores [i*half, (i+1)*half).
  for (int pod = 0; pod < k; ++pod) {
    for (int a = 0; a < half; ++a) {
      for (int c = 0; c < half; ++c) {
        net.topo.add_link(ft.agg_at(pod, a), ft.cores[a * half + c], opts.link_cost);
      }
    }
  }

  // Per-edge destination prefixes.
  for (int pod = 0; pod < k; ++pod) {
    for (int e = 0; e < half; ++e) {
      const Prefix p(IpAddr(10, static_cast<std::uint8_t>(pod),
                            static_cast<std::uint8_t>(e), 0),
                     24);
      ft.edge_prefixes.push_back(p);
    }
  }

  if (opts.routing == FatTreeOptions::Routing::kOspf) {
    for (NodeId n = 0; n < net.devices.size(); ++n) {
      net.device(n).ospf.enabled = true;
      net.device(n).ospf.advertise_loopback = false;
    }
    for (std::size_t i = 0; i < ft.edges.size(); ++i) {
      net.device(ft.edges[i]).ospf.originated.push_back(ft.edge_prefixes[i]);
    }
  } else {
    // RFC 7938: eBGP on every link, one private ASN per device, prefixes
    // originated at the edge.
    for (NodeId n = 0; n < net.devices.size(); ++n) {
      net.device(n).bgp.emplace();
      net.device(n).bgp->asn = 64512 + n;
    }
    for (const Link& l : net.topo.links()) {
      BgpSession sa;
      sa.peer = l.b;
      net.device(l.a).bgp->sessions.push_back(sa);
      BgpSession sb;
      sb.peer = l.a;
      net.device(l.b).bgp->sessions.push_back(sb);
    }
    for (std::size_t i = 0; i < ft.edges.size(); ++i) {
      net.device(ft.edges[i]).bgp->originated.push_back(ft.edge_prefixes[i]);
    }
  }

  if (opts.statics != FatTreeOptions::CoreStatics::kNone) {
    // Core c = a*half + cc is attached to agg index a of every pod. The
    // OSPF-computed next hop for pod p's prefixes is agg_at(p, a).
    for (int a = 0; a < half; ++a) {
      for (int cc = 0; cc < half; ++cc) {
        const NodeId core = ft.cores[a * half + cc];
        for (int pod = 0; pod < k; ++pod) {
          for (int e = 0; e < half; ++e) {
            StaticRoute sr;
            sr.dst = ft.edge_prefixes[static_cast<std::size_t>(pod) * half + e];
            if (opts.statics == FatTreeOptions::CoreStatics::kMatching) {
              sr.via_neighbor = ft.agg_at(pod, a);
            } else {
              // Broken: deflect to the same-index agg of the next pod. That
              // agg's best OSPF path to the prefix climbs back through the
              // cores of row `a` (including this one): a forwarding loop.
              sr.via_neighbor = ft.agg_at((pod + 1) % k, a);
            }
            net.device(core).statics.push_back(sr);
          }
        }
      }
    }
  }
  return ft;
}

}  // namespace plankton
