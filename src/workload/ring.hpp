// Ring topologies for the Fig. 8 ablation experiments.
#pragma once

#include "config/network.hpp"

namespace plankton {

/// N OSPF routers in a cycle; node 0 originates 10.0.0.0/24. With one link
/// failure the ring degrades to a path — the classic ablation workload.
Network make_ring(int n, std::uint32_t cost = 1);

}  // namespace plankton
