#include "workload/external.hpp"

#include <stdexcept>

namespace plankton {

NodeId add_external_peer(Network& net, NodeId attach, const Prefix& prefix,
                         const ExternalPeerOptions& opts) {
  if (!net.device(attach).bgp.has_value()) {
    throw std::invalid_argument("attachment device must run BGP");
  }
  const NodeId stub = net.add_device(
      "ext-" + std::to_string(opts.asn) + "-" + net.device(attach).name);
  net.topo.add_link(attach, stub, opts.link_cost);
  auto& stub_dev = net.device(stub);
  stub_dev.bgp.emplace();
  stub_dev.bgp->asn = opts.asn;
  stub_dev.bgp->originated.push_back(prefix);

  BgpSession to_attach;
  to_attach.peer = attach;
  if (opts.prepend != 0) {
    RouteMapClause clause;
    clause.action.prepend = opts.prepend;
    to_attach.export_.clauses.push_back(clause);
  }
  stub_dev.bgp->sessions.push_back(std::move(to_attach));

  BgpSession from_stub;
  from_stub.peer = stub;
  if (opts.import_local_pref) {
    RouteMapClause clause;
    clause.action.set_local_pref = *opts.import_local_pref;
    from_stub.import.clauses.push_back(clause);
  }
  net.device(attach).bgp->sessions.push_back(std::move(from_stub));
  return stub;
}

}  // namespace plankton
