// Stub modeling of external advertisements (paper §6: "influences such as
// external advertisements need to be modeled using stubs that denote
// entities which originate them").
#pragma once

#include <optional>

#include "config/network.hpp"

namespace plankton {

struct ExternalPeerOptions {
  std::uint32_t asn = 64999;
  /// local-pref the attachment router assigns to routes from this peer
  /// (customer/peer/provider tiering); nullopt keeps the default 100.
  std::optional<std::uint32_t> import_local_pref;
  /// AS-path prepending applied by the external peer on export.
  std::uint8_t prepend = 0;
  std::uint32_t link_cost = 1;
};

/// Adds a stub device representing an external BGP neighbor of `attach`
/// that originates `prefix`. Returns the stub's node id. `attach` must
/// already run BGP.
NodeId add_external_peer(Network& net, NodeId attach, const Prefix& prefix,
                         const ExternalPeerOptions& opts = {});

}  // namespace plankton
