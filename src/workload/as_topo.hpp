// Synthetic AS topologies standing in for the RocketFuel dataset (paper §5,
// Figs. 7d, 7e, 7g).
//
// The RocketFuel measured topologies are not redistributable, so we generate
// deterministic degree-heterogeneous topologies with the published node
// counts: a backbone ring with chords plus dual-homed PoP routers, OSPF
// weights drawn from a seeded PRNG (1..10). The experiments only exercise
// weighted shortest paths, failure resilience, and (for 7e) an iBGP mesh over
// the IGP, all of which this structure reproduces. See DESIGN.md §3.
#pragma once

#include <string>
#include <vector>

#include "config/network.hpp"

namespace plankton {

struct AsTopoInfo {
  std::string name;
  int nodes = 0;
};

/// The six RocketFuel ASes used in the paper, with their node counts.
const std::vector<AsTopoInfo>& rocketfuel_ases();

struct AsTopo {
  Network net;
  std::vector<NodeId> backbone;
  /// Every device originates its loopback /32 into OSPF; one PEC per device.
  std::vector<Prefix> loopbacks;
};

/// Builds the OSPF-only topology. Deterministic for a given name.
AsTopo make_as_topo(const std::string& name, int nodes);
AsTopo make_as_topo(const std::string& name);  ///< looks up rocketfuel_ases()

/// Fig. 7e: adds the classic full iBGP mesh over *every* router (required so
/// transit hops can forward externally-learned prefixes without tunnels —
/// and exactly why Minesweeper's n+1-copies encoding becomes "over 300×
/// larger" on the 315-node AS1239). Two backbone routers act as borders and
/// originate the external prefix 203.0.113.0/24 (stub origins, §6).
struct IbgpOverlay {
  std::vector<NodeId> speakers;  ///< all routers
  std::vector<NodeId> borders;   ///< the originating border routers
  Prefix external{IpAddr(203, 0, 113, 0), 24};
};
IbgpOverlay add_ibgp_mesh(AsTopo& topo, int borders = 2);

}  // namespace plankton
