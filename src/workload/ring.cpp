#include "workload/ring.hpp"

#include <string>

namespace plankton {

Network make_ring(int n, std::uint32_t cost) {
  Network net;
  for (int i = 0; i < n; ++i) {
    const NodeId id = net.add_device("r" + std::to_string(i));
    net.device(id).ospf.enabled = true;
    net.device(id).ospf.advertise_loopback = false;
  }
  for (int i = 0; i < n; ++i) {
    net.topo.add_link(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n), cost);
  }
  net.device(0).ospf.originated.push_back(Prefix(IpAddr(10, 0, 0, 0), 24));
  return net;
}

}  // namespace plankton
