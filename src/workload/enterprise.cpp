#include "workload/enterprise.hpp"

#include <algorithm>
#include <stdexcept>

#include "netbase/hash.hpp"

namespace plankton {
namespace {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ull;
    return hash_mix(state_);
  }
  std::uint32_t below(std::uint32_t n) {
    return static_cast<std::uint32_t>(next() % n);
  }

 private:
  std::uint64_t state_;
};

}  // namespace

const std::vector<EnterpriseInfo>& enterprise_networks() {
  static const std::vector<EnterpriseInfo> kNetworks = {
      {"I", 52},   {"II", 63},  {"III", 71}, {"IV", 63},      {"V", 36},
      {"VI", 2},   {"VII", 30}, {"VIII", 30}, {"IX", 3},      {"Stanford", 16},
  };
  return kNetworks;
}

Enterprise make_enterprise(const std::string& name) {
  for (const auto& info : enterprise_networks()) {
    if (info.name == name) return make_enterprise(name, info.devices);
  }
  throw std::invalid_argument("unknown enterprise network: " + name);
}

Enterprise make_enterprise(const std::string& name, int devices) {
  Enterprise out;
  Network& net = out.net;
  Rng rng(hash_span<char>({name.data(), name.size()}, 0xe17e));

  auto add = [&net](const std::string& n, int idx) {
    const int id_for_ip = static_cast<int>(net.devices.size());
    const NodeId id = net.add_device(
        n + std::to_string(idx),
        IpAddr(172, 16, static_cast<std::uint8_t>(id_for_ip >> 8),
               static_cast<std::uint8_t>(id_for_ip & 0xff)));
    net.device(id).ospf.enabled = true;
    net.device(id).ospf.advertise_loopback = true;
    return id;
  };

  if (devices <= 3) {
    // Tiny networks (VI, IX): routers in a line with a static default chain
    // pointing at the far end's loopback (recursive, self-resolving).
    for (int i = 0; i < devices; ++i) out.cores.push_back(add("r", i));
    for (int i = 0; i + 1 < devices; ++i) {
      net.topo.add_link(out.cores[i], out.cores[i + 1], 1);
    }
    out.subnets.push_back(Prefix(IpAddr(10, 1, 0, 0), 24));
    net.device(out.cores.back()).ospf.originated.push_back(out.subnets[0]);
    out.access.push_back(out.cores.front());
    if (devices > 1) {
      StaticRoute sr;  // recursive static: next hop is a loopback IP
      sr.dst = Prefix(IpAddr(10, 9, 0, 0), 16);
      sr.via_ip = net.device(out.cores.back()).loopback;
      net.device(out.cores.front()).statics.push_back(sr);
    }
    return out;
  }

  const int n_core = std::max(2, devices / 12);
  const int n_dist = std::max(2, devices / 4);
  const int n_access = devices - n_core - n_dist;

  std::vector<NodeId> dist;
  for (int i = 0; i < n_core; ++i) out.cores.push_back(add("core", i));
  for (int i = 0; i < n_dist; ++i) dist.push_back(add("dist", i));
  for (int i = 0; i < n_access; ++i) out.access.push_back(add("acc", i));

  // Core: full mesh (small) with unit-ish weights.
  for (int i = 0; i < n_core; ++i) {
    for (int j = i + 1; j < n_core; ++j) {
      net.topo.add_link(out.cores[i], out.cores[j], 1 + rng.below(3));
    }
  }
  // Distribution: dual-homed to two cores.
  for (int i = 0; i < n_dist; ++i) {
    const NodeId c1 = out.cores[rng.below(n_core)];
    net.topo.add_link(dist[i], c1, 2 + rng.below(4));
    const NodeId c2 = out.cores[(c1 + 1) % n_core];
    if (c2 != c1) net.topo.add_link(dist[i], c2, 2 + rng.below(4));
  }
  // Access: single- or dual-homed to distribution, each with one subnet.
  for (int i = 0; i < n_access; ++i) {
    const NodeId d1 = dist[rng.below(n_dist)];
    net.topo.add_link(out.access[i], d1, 5 + rng.below(5));
    if (rng.below(100) < 60) {
      const NodeId d2 = dist[rng.below(n_dist)];
      if (d2 != d1 && net.topo.find_link(out.access[i], d2) == kNoLink) {
        net.topo.add_link(out.access[i], d2, 5 + rng.below(5));
      }
    }
    const Prefix subnet(IpAddr(10, static_cast<std::uint8_t>(1 + (i >> 8)),
                               static_cast<std::uint8_t>(i & 0xff), 0),
                        24);
    out.subnets.push_back(subnet);
    net.device(out.access[i]).ospf.originated.push_back(subnet);
  }

  // Recursive routing trait #1: some access devices carry a static route for
  // a data-center prefix whose next hop is a core loopback (indirect static).
  const Prefix dc_prefix(IpAddr(10, 200, 0, 0), 16);
  net.device(out.cores[0]).ospf.originated.push_back(dc_prefix);
  for (int i = 0; i < n_access; i += 3) {
    StaticRoute sr;
    sr.dst = dc_prefix;
    sr.via_ip = net.device(out.cores[i % n_core]).loopback;
    net.device(out.access[i]).statics.push_back(sr);
  }

  // Recursive routing trait #2: iBGP between the cores carrying an external
  // prefix (present in the larger networks, as in the paper's orgs).
  if (devices >= 30) {
    out.has_ibgp = true;
    for (const NodeId c : out.cores) {
      auto& dev = net.device(c);
      dev.bgp.emplace();
      dev.bgp->asn = 64900;
    }
    for (int i = 0; i < n_core; ++i) {
      for (int j = i + 1; j < n_core; ++j) {
        BgpSession a;
        a.peer = out.cores[j];
        a.ibgp = true;
        net.device(out.cores[i]).bgp->sessions.push_back(a);
        BgpSession b;
        b.peer = out.cores[i];
        b.ibgp = true;
        net.device(out.cores[j]).bgp->sessions.push_back(b);
      }
    }
    net.device(out.cores[0]).bgp->originated.push_back(out.external);
    net.device(out.cores[1 % n_core]).bgp->originated.push_back(out.external);
  }

  // Self-loop PEC dependency trait: a static route whose next hop lies inside
  // the destination prefix itself (observed by the paper in real configs).
  if (n_access > 1) {
    StaticRoute sr;
    sr.dst = Prefix(IpAddr(10, 1, 0, 0), 16);  // covers access subnets
    sr.via_ip = IpAddr(10, 1, 0, 1);           // inside that prefix
    net.device(out.cores[n_core - 1]).statics.push_back(sr);
  }
  return out;
}

}  // namespace plankton
