// Packet Equivalence Class computation (paper §3.1).
//
// A PEC is a maximal range of destination addresses whose covering-prefix set
// (and hence whose network-wide behaviour) is constant. Each PEC keeps the
// contributing prefixes (most-specific first) together with the per-prefix
// slice of the configuration: which devices originate it into OSPF/BGP and
// which static routes target it. Keeping the original prefixes matters even
// inside a single PEC because prefix lengths participate in FIB longest-prefix
// match and in route-map matching (paper §3.1, last paragraph).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "config/network.hpp"
#include "netbase/ip.hpp"

namespace plankton {

using PecId = std::uint32_t;

/// Sentinel "no PEC" id (used by the dedup layer and report translation).
inline constexpr PecId kNoPec = std::numeric_limits<PecId>::max();

/// One contributing prefix inside a PEC, with its configuration slice.
struct PecPrefix {
  Prefix prefix;
  std::vector<NodeId> ospf_origins;
  std::vector<NodeId> bgp_origins;
  /// (device, index into device's `statics`) for routes whose dst == prefix.
  std::vector<std::pair<NodeId, std::uint32_t>> static_routes;

  [[nodiscard]] bool has_routing() const {
    return !ospf_origins.empty() || !bgp_origins.empty() || !static_routes.empty();
  }
};

struct Pec {
  IpAddr lo;
  IpAddr hi;
  /// Contributing prefixes sorted by descending length (most specific first),
  /// so FIB assembly can walk them in LPM order.
  std::vector<PecPrefix> prefixes;

  [[nodiscard]] IpAddr representative() const { return lo; }
  [[nodiscard]] bool has_routing() const {
    for (const auto& p : prefixes)
      if (p.has_routing()) return true;
    return false;
  }
  [[nodiscard]] std::string str() const;
};

class PecSet {
 public:
  std::vector<Pec> pecs;

  /// Index of the PEC containing `a` (the PECs tile the whole space).
  [[nodiscard]] PecId find(IpAddr a) const;

  /// Ids of PECs that carry any routing information (origination or statics);
  /// the rest are default-drop everywhere and need no model checking.
  [[nodiscard]] std::vector<PecId> routed() const;
};

/// Computes the PEC partition of the header space for `net` by inserting
/// every configuration-mentioned prefix into a trie and traversing it.
PecSet compute_pecs(const Network& net);

}  // namespace plankton
