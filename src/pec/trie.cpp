#include "pec/trie.hpp"

#include <algorithm>

namespace plankton {

PrefixTrie::PrefixTrie() : root_(std::make_unique<Node>()) {}

void PrefixTrie::insert(const Prefix& prefix, std::uint32_t value) {
  Node* node = root_.get();
  for (int depth = 0; depth < prefix.length(); ++depth) {
    const int bit = (prefix.addr().value() >> (31 - depth)) & 1;
    if (!node->child[bit]) node->child[bit] = std::make_unique<Node>();
    node = node->child[bit].get();
  }
  if (std::find(node->values.begin(), node->values.end(), value) ==
      node->values.end()) {
    node->values.push_back(value);
    ++prefix_count_;
  }
}

std::vector<PrefixTrie::Range> PrefixTrie::partition() const {
  std::vector<Range> raw;
  std::vector<std::uint32_t> active;
  walk(*root_, 0, 0, active, raw);
  std::sort(raw.begin(), raw.end(),
            [](const Range& x, const Range& y) { return x.lo < y.lo; });
  // Merge contiguous ranges whose covering set is identical (missing siblings
  // along a single-child chain produce adjacent ranges with equal sets).
  std::vector<Range> merged;
  for (auto& r : raw) {
    if (!merged.empty() && merged.back().values == r.values &&
        merged.back().hi.value() + 1 == r.lo.value()) {
      merged.back().hi = r.hi;
    } else {
      merged.push_back(std::move(r));
    }
  }
  return merged;
}

void PrefixTrie::walk(const Node& node, int depth, std::uint32_t base,
                      std::vector<std::uint32_t>& active,
                      std::vector<Range>& out) const {
  const std::size_t active_mark = active.size();
  active.insert(active.end(), node.values.begin(), node.values.end());

  // Width of the address block rooted at `depth` minus one; depth 32 is a
  // single address (shifting by >= 32 would be UB).
  const auto span_below = [](int d) {
    return d >= 32 ? 0u : (~std::uint32_t{0} >> d);
  };
  const bool leaf = !node.child[0] && !node.child[1];
  if (leaf || depth == 32) {
    Range r;
    r.lo = IpAddr(base);
    r.hi = IpAddr(base + span_below(depth));
    r.values.assign(active.begin(), active.end());
    std::sort(r.values.begin(), r.values.end());
    out.push_back(std::move(r));
  } else {
    for (const int bit : {0, 1}) {
      const std::uint32_t child_base =
          bit == 0 ? base : base + (std::uint32_t{1} << (31 - depth));
      if (node.child[bit]) {
        walk(*node.child[bit], depth + 1, child_base, active, out);
      } else {
        // Uncovered half below this node: one maximal range whose covering
        // set is exactly the prefixes active on the path so far.
        Range r;
        r.lo = IpAddr(child_base);
        r.hi = IpAddr(child_base + span_below(depth + 1));
        r.values.assign(active.begin(), active.end());
        std::sort(r.values.begin(), r.values.end());
        out.push_back(std::move(r));
      }
    }
  }
  active.resize(active_mark);
}

}  // namespace plankton
