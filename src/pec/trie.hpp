// Binary prefix trie over the IPv4 space, used to partition the header space
// into Packet Equivalence Classes (paper §3.1, Fig. 4).
//
// Prefixes are inserted bit by bit from the MSB. `partition()` performs the
// recursive traversal the paper describes: it walks the trie keeping track of
// where prefix boundaries divide the header space and emits maximal ranges,
// each annotated with the set of inserted prefixes covering it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "netbase/ip.hpp"

namespace plankton {

class PrefixTrie {
 public:
  struct Range {
    IpAddr lo;
    IpAddr hi;
    std::vector<std::uint32_t> values;  ///< ids of prefixes covering the range
  };

  PrefixTrie();

  /// Associates `value` with `prefix`. Duplicate (prefix, value) pairs are
  /// stored once.
  void insert(const Prefix& prefix, std::uint32_t value);

  [[nodiscard]] std::size_t prefix_count() const { return prefix_count_; }

  /// Partitions the entire 32-bit space into ranges whose covering-prefix set
  /// is constant, sorted by `lo` and back-to-back contiguous. Adjacent ranges
  /// with identical value sets are merged.
  [[nodiscard]] std::vector<Range> partition() const;

 private:
  struct Node {
    std::unique_ptr<Node> child[2];
    std::vector<std::uint32_t> values;  ///< prefixes terminating at this node
  };

  void walk(const Node& node, int depth, std::uint32_t base,
            std::vector<std::uint32_t>& active, std::vector<Range>& out) const;

  std::unique_ptr<Node> root_;
  std::size_t prefix_count_ = 0;
};

}  // namespace plankton
