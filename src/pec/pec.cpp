#include "pec/pec.hpp"

#include <algorithm>
#include <map>

#include "pec/trie.hpp"

namespace plankton {

std::string Pec::str() const {
  return "[" + lo.str() + ", " + hi.str() + "] (" +
         std::to_string(prefixes.size()) + " prefixes)";
}

PecId PecSet::find(IpAddr a) const {
  // PECs are sorted by lo and tile the space; binary search the range.
  auto it = std::upper_bound(pecs.begin(), pecs.end(), a,
                             [](IpAddr addr, const Pec& p) { return addr < p.lo; });
  const auto idx = static_cast<std::size_t>(it - pecs.begin());
  return static_cast<PecId>(idx == 0 ? 0 : idx - 1);
}

std::vector<PecId> PecSet::routed() const {
  std::vector<PecId> out;
  for (PecId id = 0; id < pecs.size(); ++id) {
    if (pecs[id].has_routing()) out.push_back(id);
  }
  return out;
}

PecSet compute_pecs(const Network& net) {
  // Gather every prefix mentioned anywhere, then build the per-prefix config
  // slices that PECs will reference.
  const std::vector<Prefix> prefixes = net.mentioned_prefixes();
  std::map<Prefix, PecPrefix> slices;
  for (const auto& p : prefixes) slices[p].prefix = p;

  for (NodeId n = 0; n < net.devices.size(); ++n) {
    const auto& dev = net.device(n);
    if (dev.ospf.enabled) {
      for (const auto& p : dev.ospf.originated) slices[p].ospf_origins.push_back(n);
      if (dev.ospf.advertise_loopback && dev.loopback != IpAddr()) {
        slices[Prefix::host(dev.loopback)].ospf_origins.push_back(n);
      }
      if (dev.ospf.redistribute_static) {
        for (const auto& sr : dev.statics) slices[sr.dst].ospf_origins.push_back(n);
      }
    }
    if (dev.bgp) {
      for (const auto& p : dev.bgp->originated) slices[p].bgp_origins.push_back(n);
      if (dev.bgp->redistribute_ospf && dev.ospf.enabled) {
        for (const auto& p : dev.ospf.originated) slices[p].bgp_origins.push_back(n);
      }
    }
    for (std::uint32_t i = 0; i < dev.statics.size(); ++i) {
      slices[dev.statics[i].dst].static_routes.emplace_back(n, i);
    }
  }
  // Dedup: redistribution can add a node that also originates natively.
  for (auto& [p, slice] : slices) {
    (void)p;
    auto dedup = [](std::vector<NodeId>& v) {
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
    };
    dedup(slice.ospf_origins);
    dedup(slice.bgp_origins);
  }

  PrefixTrie trie;
  for (std::uint32_t i = 0; i < prefixes.size(); ++i) trie.insert(prefixes[i], i);

  PecSet out;
  for (const auto& range : trie.partition()) {
    Pec pec;
    pec.lo = range.lo;
    pec.hi = range.hi;
    for (const std::uint32_t value : range.values) {
      pec.prefixes.push_back(slices.at(prefixes[value]));
    }
    std::sort(pec.prefixes.begin(), pec.prefixes.end(),
              [](const PecPrefix& x, const PecPrefix& y) {
                return x.prefix.length() > y.prefix.length();
              });
    out.pecs.push_back(std::move(pec));
  }
  return out;
}

}  // namespace plankton
