// Bonsai-style control-plane compression (paper §5 "Integration with
// Bonsai", Fig. 7f).
//
// Bonsai shrinks the network before verification by collapsing
// behaviorally-equivalent devices into abstract nodes. We reuse the DEC
// color-refinement machinery: nodes are colored by their configuration
// signature for one destination (origination of the destination prefix, OSPF
// role, plus caller-provided salts for policy sources), refined over the
// topology, and the quotient network carries one representative device per
// color with a single minimum-cost link per color pair.
//
// As in the paper, compression applies only when the policy is preserved by
// the abstraction and no link failures are being checked (§5: "Bonsai's
// network compression cannot be applied if the correctness is to be
// evaluated under link failures").
#pragma once

#include <span>
#include <stdexcept>
#include <vector>

#include "config/network.hpp"

namespace plankton {

struct BonsaiResult {
  Network net;                          ///< quotient network
  std::vector<std::uint32_t> color_of;  ///< original node -> quotient node
  std::size_t original_nodes = 0;

  [[nodiscard]] NodeId abstract_of(NodeId original) const {
    return color_of[original];
  }
};

/// Compresses an OSPF network for one destination prefix. `salted` nodes get
/// unique colors (policy sources / interesting nodes must not be merged).
/// Throws std::invalid_argument when the network uses BGP or static routes
/// (outside this compression's supported fragment, as in our Fig. 7f use).
BonsaiResult bonsai_compress_ospf(const Network& orig, const Prefix& dest,
                                  std::span<const NodeId> salted);

}  // namespace plankton
