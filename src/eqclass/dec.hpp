// Device and Link Equivalence Classes (paper §4.3), computed by color
// refinement — the same abstraction-by-symmetry idea as Bonsai.
//
// Devices start with a per-PEC configuration signature (role, origination,
// statics, policy source/interesting membership; interesting nodes get a
// unique color so they are never merged, §4.3). Refinement then hashes each
// node's color with the multiset of (link costs, neighbor color) over live
// links until the partition stabilizes. A LEC is the set of live links whose
// endpoint-color pair and cost pair coincide; Plankton explores one
// representative link failure per LEC and refines after each pick.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netbase/topology.hpp"

namespace plankton {

class DecPartition {
 public:
  /// Computes the coarsest stable refinement of `node_signature` over the
  /// non-failed subgraph of `topo`.
  static DecPartition compute(const Topology& topo,
                              std::span<const std::uint64_t> node_signature,
                              const FailureSet& failures);

  [[nodiscard]] std::uint32_t color(NodeId n) const { return colors_[n]; }
  [[nodiscard]] std::size_t num_colors() const { return num_colors_; }
  [[nodiscard]] std::size_t node_count() const { return colors_.size(); }

  /// One representative live link per Link Equivalence Class (lowest id).
  [[nodiscard]] std::vector<LinkId> lec_representatives(
      const Topology& topo, const FailureSet& failures) const;

  /// Members of each color class (indexed by color).
  [[nodiscard]] std::vector<std::vector<NodeId>> classes() const;

 private:
  std::vector<std::uint32_t> colors_;
  std::size_t num_colors_ = 0;
};

}  // namespace plankton
