#include "eqclass/bonsai.hpp"

#include <algorithm>
#include <map>

#include "eqclass/dec.hpp"
#include "netbase/hash.hpp"

namespace plankton {

BonsaiResult bonsai_compress_ospf(const Network& orig, const Prefix& dest,
                                  std::span<const NodeId> salted) {
  for (const auto& dev : orig.devices) {
    if (dev.bgp || !dev.statics.empty()) {
      throw std::invalid_argument(
          "bonsai_compress_ospf supports pure OSPF networks only");
    }
  }
  std::vector<std::uint64_t> sig(orig.topo.node_count());
  for (NodeId n = 0; n < orig.topo.node_count(); ++n) {
    const auto& dev = orig.device(n);
    std::uint64_t h = hash_mix(dev.ospf.enabled ? 2 : 1);
    const bool origin =
        std::find(dev.ospf.originated.begin(), dev.ospf.originated.end(), dest) !=
        dev.ospf.originated.end();
    h = hash_combine(h, origin ? 0xdead : 0x1);
    sig[n] = h;
  }
  for (std::size_t i = 0; i < salted.size(); ++i) {
    sig[salted[i]] = hash_combine(sig[salted[i]], 0xfa1cull + i);
  }

  const FailureSet none(orig.topo.link_count());
  const DecPartition dec = DecPartition::compute(orig.topo, sig, none);

  BonsaiResult out;
  out.original_nodes = orig.topo.node_count();
  out.color_of.resize(orig.topo.node_count());
  for (NodeId n = 0; n < orig.topo.node_count(); ++n) {
    out.color_of[n] = dec.color(n);
  }

  // One representative device per color.
  const auto classes = dec.classes();
  for (std::uint32_t c = 0; c < classes.size(); ++c) {
    const NodeId rep = classes[c].front();
    const auto& dev = orig.device(rep);
    const NodeId q = out.net.add_device("q" + std::to_string(c), dev.loopback);
    out.net.device(q).ospf = dev.ospf;
  }
  // One minimum-cost link per unordered color pair (self-pairs dropped:
  // intra-class links cannot lie on inter-class shortest paths in a
  // symmetric abstraction).
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::pair<std::uint32_t, std::uint32_t>>
      best;
  for (const Link& l : orig.topo.links()) {
    std::uint32_t ca = dec.color(l.a);
    std::uint32_t cb = dec.color(l.b);
    std::uint32_t wab = l.cost_ab;
    std::uint32_t wba = l.cost_ba;
    if (ca == cb) continue;
    if (cb < ca) {
      std::swap(ca, cb);
      std::swap(wab, wba);
    }
    const auto key = std::make_pair(ca, cb);
    const auto it = best.find(key);
    if (it == best.end() || wab + wba < it->second.first + it->second.second) {
      best[key] = {wab, wba};
    }
  }
  for (const auto& [pair, cost] : best) {
    out.net.topo.add_link(pair.first, pair.second, cost.first, cost.second);
  }
  return out;
}

}  // namespace plankton
