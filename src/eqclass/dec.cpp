#include "eqclass/dec.hpp"

#include <algorithm>
#include <map>

#include "netbase/hash.hpp"

namespace plankton {
namespace {

/// Renumbers arbitrary 64-bit color hashes to dense ids.
std::size_t densify(const std::vector<std::uint64_t>& hashes,
                    std::vector<std::uint32_t>& colors) {
  std::map<std::uint64_t, std::uint32_t> ids;
  colors.resize(hashes.size());
  for (std::size_t n = 0; n < hashes.size(); ++n) {
    auto [it, fresh] = ids.emplace(hashes[n], static_cast<std::uint32_t>(ids.size()));
    colors[n] = it->second;
    (void)fresh;
  }
  return ids.size();
}

}  // namespace

DecPartition DecPartition::compute(const Topology& topo,
                                   std::span<const std::uint64_t> node_signature,
                                   const FailureSet& failures) {
  DecPartition out;
  std::vector<std::uint64_t> hashes(node_signature.begin(), node_signature.end());
  std::size_t colors = densify(hashes, out.colors_);

  std::vector<std::uint64_t> next(hashes.size());
  // At most n rounds; each round either refines or reaches a fixpoint.
  for (std::size_t round = 0; round < topo.node_count(); ++round) {
    for (NodeId n = 0; n < topo.node_count(); ++n) {
      std::vector<std::uint64_t> neigh;
      for (const auto& adj : topo.neighbors(n)) {
        if (failures.is_failed(adj.link)) continue;
        const Link& l = topo.link(adj.link);
        std::uint64_t e = hash_combine(out.colors_[adj.neighbor], l.cost_from(n));
        e = hash_combine(e, l.cost_from(adj.neighbor));
        neigh.push_back(e);
      }
      std::sort(neigh.begin(), neigh.end());
      std::uint64_t h = hash_mix(out.colors_[n] + 1);
      for (const std::uint64_t e : neigh) h = hash_combine(h, e);
      next[n] = h;
    }
    std::vector<std::uint32_t> new_colors;
    const std::size_t new_count = densify(next, new_colors);
    if (new_count == colors) break;
    colors = new_count;
    out.colors_ = std::move(new_colors);
  }
  out.num_colors_ = colors;
  return out;
}

std::vector<LinkId> DecPartition::lec_representatives(
    const Topology& topo, const FailureSet& failures) const {
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t, std::uint32_t>, LinkId>
      reps;
  for (LinkId l = 0; l < topo.link_count(); ++l) {
    if (failures.is_failed(l)) continue;
    const Link& link = topo.link(l);
    std::uint32_t ca = colors_[link.a];
    std::uint32_t cb = colors_[link.b];
    std::uint32_t wa = link.cost_ab;
    std::uint32_t wb = link.cost_ba;
    if (cb < ca || (ca == cb && wb < wa)) {
      std::swap(ca, cb);
      std::swap(wa, wb);
    }
    reps.try_emplace({ca, cb, wa, wb}, l);
  }
  std::vector<LinkId> out;
  out.reserve(reps.size());
  for (const auto& [key, l] : reps) {
    (void)key;
    out.push_back(l);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::vector<NodeId>> DecPartition::classes() const {
  std::vector<std::vector<NodeId>> out(num_colors_);
  for (NodeId n = 0; n < colors_.size(); ++n) out[colors_[n]].push_back(n);
  return out;
}

}  // namespace plankton
