// Batch PEC verification: equivalence classes of isomorphic PECs (ROADMAP
// "Batch PEC verification", the Bonsai observation applied *across* PECs).
//
// On symmetric fabrics most PECs induce the same relevant configuration
// slice up to a renaming of devices — the fat-tree all-pairs workloads of
// Fig. 7a/7b differ per PEC only in which edge switch originates the prefix.
// Exploring each of those PECs repeats bit-for-bit isomorphic work. This
// module fingerprints every dedup-eligible PEC's relevant slice with a
// color-refinement canonical form (the same machinery as DEC/Bonsai, §4.3),
// groups PECs whose fingerprints coincide, and then *proves* each grouping
// by constructing an explicit node bijection and validating it as a full
// configuration isomorphism:
//
//   · topology automorphism (per-direction link costs, parallel links),
//   · per-device config equivalence (OSPF role, BGP sessions with
//     route maps canonicalized to their evaluation footprint on the PEC's
//     prefixes, static-route slices, /32 loopback delivery),
//   · per-prefix slice correspondence (origins, statics, prefix lengths),
//   · policy fixed points (every declared source/interesting node must map
//     to itself — the same contract §4.2/§4.3 pruning already relies on).
//
// A validated isomorphism guarantees the two PECs' exploration state graphs
// are isomorphic, so a clean "holds" verdict transfers soundly from the
// class representative to every member. Anything short of clean holds
// (violation, timeout, state cap) makes the verifier fall back to exploring
// the members natively, so reported counterexample trails stay bit-identical
// to a dedup-off run. PECs with cross-PEC dependencies (either direction,
// §3.2) or self-loops are never grouped: their explorations consume or
// produce per-PEC converged outcomes that do not transfer. Failed validation
// degrades to a singleton class — asymmetric networks pay only the
// fingerprinting cost.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "config/network.hpp"
#include "pec/pec.hpp"
#include "policy/policy.hpp"
#include "sched/deps.hpp"

namespace plankton {

struct PecDedupStats {
  std::size_t classes = 0;     ///< classes over dedup-eligible PECs
  std::size_t deduped = 0;     ///< member PECs riding on a representative
  std::size_t singletons = 0;  ///< classes with exactly one member
  /// Wall time spent fingerprinting + validating (the dedup overhead a
  /// fully-asymmetric workload pays for nothing).
  std::chrono::nanoseconds fingerprint_time{0};
};

/// The class partition over the needed PECs of one verification.
struct PecClassSet {
  /// rep_of[p]: class representative of PEC p — p itself for representatives,
  /// singletons, and every PEC dedup does not apply to (kNoPec when p was not
  /// considered, i.e. outside the needed set).
  std::vector<PecId> rep_of;
  /// members_of[r]: member PECs translated from representative r, excluding
  /// r itself. Non-empty only for representatives of multi-member classes.
  std::vector<std::vector<PecId>> members_of;
  PecDedupStats stats;

  [[nodiscard]] bool is_translated_member(PecId p) const {
    return p < rep_of.size() && rep_of[p] != kNoPec && rep_of[p] != p;
  }
};

/// Groups the needed target PECs of a verification into isomorphism classes.
/// `needed` / `is_target` are the dependency-closure masks Verifier computes
/// (sized to pecs.pecs.size()). Only PECs that are needed, policy-checked
/// targets, and free of cross-PEC dependencies in either direction are
/// considered; everything else keeps rep_of[p] == p semantics via singleton
/// treatment at the verifier (rep_of[p] is set to p for needed-but-ineligible
/// PECs so callers can treat the vector uniformly).
PecClassSet compute_pec_classes(const Network& net, const PecSet& pecs,
                                const PecDependencies& deps,
                                const Policy& policy,
                                std::span<const std::uint8_t> needed,
                                std::span<const std::uint8_t> is_target);

/// Stable per-PEC identity for the serve-layer verdict cache
/// (src/serve/verdict_cache.hpp). Two halves with opposite invariances:
///
///   · `canon` is the color-refinement canonical fingerprint (the same value
///     dedup buckets on, computed against an empty policy so it is
///     policy-independent) — renaming-invariant by construction.
///   · `residue` pins everything canon deliberately abstracts away: device
///     identities and names, concrete prefix values, ASNs, loopbacks,
///     redistribute flags, route-map contents, and per-link costs with
///     endpoint identities. It is *range-scoped*: globally-routed state
///     (names, loopbacks, ASNs, session topology, link costs) is shared by
///     every PEC, but prefix-valued config — originated prefixes, static
///     routes, route-map clause contents — folds in only where its address
///     range intersects the PEC's [lo, hi]. A delta touching prefix X moves
///     exactly the PECs X can influence, which is what keeps the serve
///     daemon's cache hot across deltas.
///
/// A cache key must combine both: canon alone would let a delta that renames
/// devices or renumbers an ASN — changing observable behaviour for an
/// identity-sensitive policy — collide with the pre-delta entry. Both halves
/// are built exclusively from netbase/hash.hpp constexpr mixers over config
/// *values* (never pointers), so they are bit-identical across processes,
/// runs, and ASLR — the property the warm-start disk cache depends on.
struct PecFingerprint {
  std::uint64_t canon = 0;
  std::uint64_t residue = 0;

  [[nodiscard]] std::uint64_t combined() const;
  bool operator==(const PecFingerprint&) const = default;
};

/// Computes the fingerprint of every PEC in the partition (index-aligned with
/// `pecs.pecs`). Deterministic: depends only on the network + PEC contents.
std::vector<PecFingerprint> compute_pec_fingerprints(const Network& net,
                                                     const PecSet& pecs);

}  // namespace plankton
