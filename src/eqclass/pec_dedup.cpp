#include "eqclass/pec_dedup.hpp"

#include <algorithm>
#include <string_view>
#include <unordered_map>

#include "netbase/hash.hpp"

namespace plankton {
namespace {

// ---------------------------------------------------------------------------
// Route-map canonicalization: the evaluation footprint on one PEC's prefixes.
//
// Only routes for the PEC's own prefixes ever flow through a session's maps
// during this PEC's exploration, so two maps are interchangeable iff they
// treat *those* prefixes identically. Clauses whose prefix match can never
// fire for any PEC prefix are inert here (first-match-wins falls through
// them) and are dropped; fireable clauses keep a per-prefix-index match
// bitmask in place of the concrete prefix value. This is what lets PECs that
// differ only in address bits — the classic many-prefixes-same-treatment
// configuration — share one canonical form.
// ---------------------------------------------------------------------------
std::uint64_t canonical_route_map(const RouteMap& rm, const Pec& pec) {
  std::uint64_t h = hash_mix(rm.default_permit ? 0xD1 : 0xD0);
  if (rm.clauses.empty()) return h;  // trivial map: one mix, no scan
  for (const RouteMapClause& c : rm.clauses) {
    std::uint64_t match_bits = 0;
    if (c.match.prefix) {
      for (std::size_t pi = 0; pi < pec.prefixes.size(); ++pi) {
        const Prefix& p = pec.prefixes[pi].prefix;
        const bool m = c.match.prefix_mode == RouteMapMatch::PrefixMode::kExact
                           ? *c.match.prefix == p
                           : c.match.prefix->covers(p);
        if (m) match_bits |= std::uint64_t{1} << pi;
      }
      if (match_bits == 0) continue;  // inert for every prefix of this PEC
    } else {
      match_bits = ~std::uint64_t{0};  // no prefix condition: all prefixes
    }
    h = hash_combine(h, match_bits);
    h = hash_combine(h, c.match.community ? 0x100u + *c.match.community : 1u);
    h = hash_combine(h, c.match.max_path_len ? 0x10000u + *c.match.max_path_len : 1u);
    h = hash_combine(h, c.action.permit ? 2u : 1u);
    h = hash_combine(h,
                     c.action.set_local_pref ? 0x1000000ull + *c.action.set_local_pref : 1u);
    h = hash_combine(h, c.action.add_community ? 0x200u + *c.action.add_community : 1u);
    h = hash_combine(h, c.action.prepend);
  }
  return h;
}

/// Caches canonical_route_map across the many per-PEC fingerprint passes of
/// one compute_pec_classes call. A map with no prefix-matching clause has a
/// PEC-independent canonical form (its footprint bitmask is all-ones for
/// every PEC) — hash it once; only prefix-matching maps re-canonicalize per
/// PEC. On map-heavy fabrics (eBGP on every link) this removes the dominant
/// fingerprinting cost.
class RouteMapCanon {
 public:
  std::uint64_t of(const RouteMap& rm, const Pec& pec) {
    const auto it = pec_free_.find(&rm);
    if (it != pec_free_.end()) {
      if (it->second.pec_independent) return it->second.hash;
      return canonical_route_map(rm, pec);
    }
    Entry e;
    e.pec_independent =
        std::none_of(rm.clauses.begin(), rm.clauses.end(),
                     [](const RouteMapClause& c) { return c.match.prefix.has_value(); });
    const std::uint64_t h = canonical_route_map(rm, pec);
    if (e.pec_independent) e.hash = h;
    pec_free_.emplace(&rm, e);
    return h;
  }

 private:
  struct Entry {
    bool pec_independent = false;
    std::uint64_t hash = 0;
  };
  std::unordered_map<const RouteMap*, Entry> pec_free_;
};

/// /32 loopback local delivery (dataplane/fib.cpp): node n delivers prefix
/// `pi` of `pec` locally when it owns the loopback.
bool loopback_delivers(const Network& net, const Pec& pec, std::size_t pi,
                       NodeId n) {
  const Prefix& p = pec.prefixes[pi].prefix;
  return p.length() == 32 && net.device(n).loopback == p.addr();
}

// ---------------------------------------------------------------------------
// Per-PEC canonical fingerprint via color refinement with hash-valued colors.
//
// Unlike DecPartition (which renumbers colors densely), the colors here stay
// raw hashes: a hash color is a pure function of the node's configuration
// role, its slice of the PEC, the policy salts, and the (recursively hashed)
// neighborhood — never of the node id — so equal structure yields equal
// color values across different PECs. That invariance is what makes the
// sorted color multiset a canonical form, and the (color, id) sort a
// canonical candidate bijection.
// ---------------------------------------------------------------------------

struct RefineEdge {
  NodeId to = kNoNode;
  std::uint64_t label = 0;  ///< costs / session maps / static-via relation
};

struct PecShape {
  std::vector<std::uint64_t> colors;  ///< final refined color per node
  std::uint64_t fingerprint = 0;
};

/// Topology-link refinement edges — PEC-independent, built once per
/// compute_pec_classes call and re-used as the base of every PEC's edge set.
std::vector<std::vector<RefineEdge>> topology_edges(const Network& net) {
  std::vector<std::vector<RefineEdge>> edges(net.topo.node_count());
  for (NodeId n = 0; n < edges.size(); ++n) {
    for (const Adjacency& adj : net.topo.neighbors(n)) {
      const Link& l = net.topo.link(adj.link);
      RefineEdge e;
      e.to = adj.neighbor;
      e.label = hash_combine(hash_combine(0x701070ull, adj.cost),
                             l.cost_from(adj.neighbor));
      edges[n].push_back(e);
    }
  }
  return edges;
}

PecShape pec_shape(const Network& net, const Pec& pec, const Policy& policy,
                   const std::vector<std::vector<RefineEdge>>& topo_edges,
                   RouteMapCanon& canon) {
  const std::size_t n_nodes = net.topo.node_count();
  PecShape shape;

  // Relational edges the refinement (and the exploration) sees: topology
  // links with per-direction costs, BGP sessions with footprint-canonical
  // maps, and static-route via-neighbor relations from this PEC's slice.
  std::vector<std::vector<RefineEdge>> edges = topo_edges;
  for (NodeId n = 0; n < n_nodes; ++n) {
    const auto& dev = net.device(n);
    if (dev.bgp) {
      for (const BgpSession& s : dev.bgp->sessions) {
        RefineEdge e;
        e.to = s.peer;
        std::uint64_t label = hash_mix(s.ibgp ? 0xB6B1ull : 0xB6B0ull);
        label = hash_combine(label, canon.of(s.import, pec));
        label = hash_combine(label, canon.of(s.export_, pec));
        e.label = label;
        edges[n].push_back(e);
      }
    }
  }
  for (std::size_t pi = 0; pi < pec.prefixes.size(); ++pi) {
    for (const auto& [dev, idx] : pec.prefixes[pi].static_routes) {
      const StaticRoute& sr = net.device(dev).statics[idx];
      if (sr.via_neighbor == kNoNode) continue;
      RefineEdge e;
      e.to = sr.via_neighbor;
      e.label = hash_combine(0x57A7ull, pi);
      edges[dev].push_back(e);
    }
  }

  // Base colors: configuration role + PEC slice + policy salts. Sources and
  // interesting nodes get position-unique salts, so they sit alone in their
  // color class and the canonical bijection can only map them to themselves.
  std::vector<std::uint64_t> color(n_nodes);
  for (NodeId n = 0; n < n_nodes; ++n) {
    const auto& dev = net.device(n);
    std::uint64_t h = hash_mix(dev.ospf.enabled ? 2 : 1);
    h = hash_combine(h, dev.bgp ? 2u : 1u);
    for (std::size_t pi = 0; pi < pec.prefixes.size(); ++pi) {
      const PecPrefix& pp = pec.prefixes[pi];
      if (std::find(pp.ospf_origins.begin(), pp.ospf_origins.end(), n) !=
          pp.ospf_origins.end()) {
        h = hash_combine(h, 0x10 + pi * 8);
      }
      if (std::find(pp.bgp_origins.begin(), pp.bgp_origins.end(), n) !=
          pp.bgp_origins.end()) {
        h = hash_combine(h, 0x11 + pi * 8);
      }
      if (loopback_delivers(net, pec, pi, n)) h = hash_combine(h, 0x12 + pi * 8);
      std::uint64_t statics_h = 0;
      for (const auto& [dev_id, idx] : pp.static_routes) {
        if (dev_id != n) continue;
        const StaticRoute& sr = net.device(n).statics[idx];
        // via_neighbor is a relation (edge above); drop/forward is a label.
        statics_h += hash_combine(0x13 + pi * 8, sr.drop ? 2u : 1u);
      }
      h = hash_combine(h, statics_h);  // order-free multiset sum
    }
    const auto sources = policy.sources();
    for (std::size_t i = 0; i < sources.size(); ++i) {
      if (sources[i] == n) h = hash_combine(h, 0x50AD0000ull + i);
    }
    const auto interesting = policy.interesting();
    for (std::size_t i = 0; i < interesting.size(); ++i) {
      if (interesting[i] == n) h = hash_combine(h, 0x17770000ull + i);
    }
    color[n] = h;
  }

  // Refine until the partition stabilizes. Each round's color is a function
  // of the previous round's, so the partition only ever gets finer; when the
  // number of distinct colors stops growing, it is stable.
  std::vector<std::uint64_t> next(n_nodes);
  std::vector<std::uint64_t> scratch;
  std::size_t distinct = 0;
  for (std::size_t round = 0; round <= n_nodes; ++round) {
    scratch.assign(color.begin(), color.end());
    std::sort(scratch.begin(), scratch.end());
    const std::size_t d =
        static_cast<std::size_t>(std::unique(scratch.begin(), scratch.end()) -
                                 scratch.begin());
    if (round > 0 && d == distinct) break;
    distinct = d;
    std::vector<std::uint64_t> sig;
    for (NodeId n = 0; n < n_nodes; ++n) {
      sig.clear();
      for (const RefineEdge& e : edges[n]) {
        sig.push_back(hash_combine(e.label, color[e.to]));
      }
      std::sort(sig.begin(), sig.end());
      std::uint64_t h = color[n];
      for (const std::uint64_t s : sig) h = hash_combine(h, s);
      next[n] = h;
    }
    color.swap(next);
  }

  // Canonical form: sorted color multiset + prefix structure. (Prefix
  // *values* are deliberately absent — only lengths and the footprints
  // already folded into the colors matter to the exploration.)
  scratch.assign(color.begin(), color.end());
  std::sort(scratch.begin(), scratch.end());
  std::uint64_t fp = hash_span(std::span<const std::uint64_t>(scratch));
  fp = hash_combine(fp, pec.prefixes.size());
  for (const PecPrefix& pp : pec.prefixes) {
    fp = hash_combine(fp, pp.prefix.length());
  }
  shape.colors = std::move(color);
  shape.fingerprint = fp;
  return shape;
}

/// Nodes ordered by (final color, id): the canonical order used to construct
/// the candidate bijection between two PECs with equal fingerprints.
std::vector<NodeId> canonical_order(const std::vector<std::uint64_t>& colors) {
  std::vector<NodeId> order(colors.size());
  for (NodeId n = 0; n < order.size(); ++n) order[n] = n;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return colors[a] != colors[b] ? colors[a] < colors[b] : a < b;
  });
  return order;
}

// ---------------------------------------------------------------------------
// Validation: prove the candidate bijection is a configuration isomorphism.
// The fingerprint is a hash — collisions and refinement-blind asymmetries
// both die here, degrading the member to its own class instead of producing
// an unsound verdict transfer.
// ---------------------------------------------------------------------------

bool sorted_equal_mapped(std::vector<std::uint64_t> a, std::vector<std::uint64_t> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

/// pi maps nodes of `a`'s exploration onto `b`'s.
bool validate_isomorphism(const Network& net, const Pec& a, const Pec& b,
                          const Policy& policy, std::span<const NodeId> pi,
                          RouteMapCanon& canon) {
  const std::size_t n_nodes = net.topo.node_count();

  // Policy fixed points: declared special nodes must be preserved exactly —
  // the policy predicate is only renaming-invariant over undeclared nodes
  // (the same contract policy pruning and DEC merging already assume).
  for (const NodeId s : policy.sources()) {
    if (pi[s] != s) return false;
  }
  for (const NodeId s : policy.interesting()) {
    if (pi[s] != s) return false;
  }

  // Prefix structure. Prefix lengths are pairwise distinct inside a PEC
  // (every contributing prefix covers the whole PEC range), so index-wise
  // pairing is the canonical one.
  if (a.prefixes.size() != b.prefixes.size()) return false;
  for (std::size_t i = 0; i < a.prefixes.size(); ++i) {
    if (a.prefixes[i].prefix.length() != b.prefixes[i].prefix.length()) {
      return false;
    }
  }

  // Topology automorphism, parallel-link safe: per node, the multiset of
  // (mapped neighbor, out-cost, return-cost) must be preserved.
  {
    std::vector<std::uint64_t> la, lb;
    for (NodeId n = 0; n < n_nodes; ++n) {
      la.clear();
      lb.clear();
      for (const Adjacency& adj : net.topo.neighbors(n)) {
        const Link& l = net.topo.link(adj.link);
        la.push_back(hash_combine(
            hash_combine(pi[adj.neighbor], adj.cost), l.cost_from(adj.neighbor)));
      }
      for (const Adjacency& adj : net.topo.neighbors(pi[n])) {
        const Link& l = net.topo.link(adj.link);
        lb.push_back(hash_combine(hash_combine(adj.neighbor, adj.cost),
                                  l.cost_from(adj.neighbor)));
      }
      if (!sorted_equal_mapped(la, lb)) return false;
    }
  }

  // Device configuration equivalence under pi.
  for (NodeId n = 0; n < n_nodes; ++n) {
    const auto& da = net.device(n);
    const auto& db = net.device(pi[n]);
    if (da.ospf.enabled != db.ospf.enabled) return false;
    if (da.bgp.has_value() != db.bgp.has_value()) return false;
    if (da.bgp) {
      std::vector<std::uint64_t> sa, sb;
      for (const BgpSession& s : da.bgp->sessions) {
        std::uint64_t h = hash_combine(pi[s.peer], s.ibgp ? 2u : 1u);
        h = hash_combine(h, canon.of(s.import, a));
        h = hash_combine(h, canon.of(s.export_, a));
        sa.push_back(h);
      }
      for (const BgpSession& s : db.bgp->sessions) {
        std::uint64_t h = hash_combine(s.peer, s.ibgp ? 2u : 1u);
        h = hash_combine(h, canon.of(s.import, b));
        h = hash_combine(h, canon.of(s.export_, b));
        sb.push_back(h);
      }
      if (!sorted_equal_mapped(std::move(sa), std::move(sb))) return false;
    }
  }

  // Per-prefix slice correspondence.
  for (std::size_t i = 0; i < a.prefixes.size(); ++i) {
    const PecPrefix& pa = a.prefixes[i];
    const PecPrefix& pb = b.prefixes[i];
    auto mapped_set = [&](const std::vector<NodeId>& v) {
      std::vector<std::uint64_t> out;
      out.reserve(v.size());
      for (const NodeId x : v) out.push_back(pi[x]);
      return out;
    };
    auto raw_set = [](const std::vector<NodeId>& v) {
      return std::vector<std::uint64_t>(v.begin(), v.end());
    };
    if (!sorted_equal_mapped(mapped_set(pa.ospf_origins), raw_set(pb.ospf_origins))) {
      return false;
    }
    if (!sorted_equal_mapped(mapped_set(pa.bgp_origins), raw_set(pb.bgp_origins))) {
      return false;
    }
    std::vector<std::uint64_t> sta, stb;
    for (const auto& [dev, idx] : pa.static_routes) {
      const StaticRoute& sr = net.device(dev).statics[idx];
      if (sr.via_ip) return false;  // recursive: outcome-coupled, never dedup
      sta.push_back(hash_combine(hash_combine(pi[dev], sr.drop ? 2u : 1u),
                                 sr.drop ? kNoNode : pi[sr.via_neighbor]));
    }
    for (const auto& [dev, idx] : pb.static_routes) {
      const StaticRoute& sr = net.device(dev).statics[idx];
      if (sr.via_ip) return false;
      stb.push_back(hash_combine(hash_combine(std::uint64_t{dev}, sr.drop ? 2u : 1u),
                                 sr.drop ? kNoNode : sr.via_neighbor));
    }
    if (!sorted_equal_mapped(std::move(sta), std::move(stb))) return false;
    // /32 loopback local delivery must be preserved node-by-node.
    if (pa.prefix.length() == 32 || pb.prefix.length() == 32) {
      for (NodeId n = 0; n < n_nodes; ++n) {
        if (loopback_delivers(net, a, i, n) != loopback_delivers(net, b, i, pi[n])) {
          return false;
        }
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Serve-layer fingerprints (PecFingerprint in the header): `canon` reuses
// pec_shape against an empty policy; `residue` pins the identities canon
// abstracts away. Everything hashes config *values* through the constexpr
// mixers so the result is stable across processes and runs.
// ---------------------------------------------------------------------------

/// check() never consulted — fingerprints only read sources()/interesting(),
/// both empty here so the canon half is policy-independent.
class NullFingerprintPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "fingerprint-null"; }
  [[nodiscard]] bool check(const ConvergedView&, std::string&) const override {
    return true;
  }
};

std::uint64_t hash_str(std::uint64_t h, std::string_view s) {
  h = hash_combine(h, s.size());
  for (const char c : s) h = hash_combine(h, static_cast<unsigned char>(c));
  return h;
}

std::uint64_t hash_prefix_value(std::uint64_t h, const Prefix& p) {
  return hash_combine(hash_combine(h, p.addr().value()), p.length());
}

/// True when `p`'s address range intersects [lo, hi] — the config entry can
/// influence routing for some address of the PEC.
bool intersects(const Prefix& p, IpAddr lo, IpAddr hi) {
  return p.first() <= hi && p.last() >= lo;
}

std::uint64_t hash_static_value(std::uint64_t h, const StaticRoute& sr) {
  h = hash_prefix_value(h, sr.dst);
  h = hash_combine(h, sr.via_neighbor);
  h = hash_combine(h, sr.via_ip ? sr.via_ip->value() : 0u);
  return hash_combine(h, sr.drop ? 2u : 1u);
}

/// Route-map residue restricted to one PEC: default-permit plus the full
/// concrete content of every clause that can *fire* for the PEC's range —
/// clauses with no prefix condition, or whose prefix range intersects it.
/// Routes flowing during a PEC's exploration carry prefixes that cover the
/// whole [lo, hi] range, so a clause whose prefix misses the range can never
/// match one (exact or or-longer) and first-match-wins falls through it:
/// editing such a clause must not move this PEC.
std::uint64_t route_map_residue(std::uint64_t h, const RouteMap& rm, IpAddr lo,
                                IpAddr hi) {
  h = hash_combine(h, rm.default_permit ? 2u : 1u);
  for (const RouteMapClause& c : rm.clauses) {
    if (c.match.prefix) {
      if (!intersects(*c.match.prefix, lo, hi)) continue;
      h = hash_prefix_value(hash_combine(h, 0xA1), *c.match.prefix);
      h = hash_combine(h, c.match.prefix_mode == RouteMapMatch::PrefixMode::kExact
                              ? 1u : 2u);
    } else {
      h = hash_combine(h, 0xA0);
    }
    h = hash_combine(h, c.match.community ? 0x100u + *c.match.community : 1u);
    h = hash_combine(h, c.match.max_path_len ? 0x10000u + *c.match.max_path_len : 1u);
    h = hash_combine(h, c.action.permit ? 2u : 1u);
    h = hash_combine(h, c.action.set_local_pref
                            ? 0x1000000ull + *c.action.set_local_pref : 1u);
    h = hash_combine(h, c.action.add_community ? 0x200u + *c.action.add_community : 1u);
    h = hash_combine(h, c.action.prepend);
  }
  return h;
}

/// Network-wide residue: device identities, protocol roles, session topology,
/// and link costs — the slice of config that feeds IGP path selection and
/// BGP propagation for *every* address, so a change here must move every
/// fingerprint. Prefix-valued config (originated prefixes, static routes,
/// route-map clause contents) is deliberately absent: it is folded into each
/// PEC's residue by range intersection below, so a delta touching prefix X
/// moves only the PECs X can influence. That scoping is what buys the serve
/// daemon its cache-hit ratio on deltas.
std::uint64_t network_residue(const Network& net) {
  std::uint64_t h = hash_mix(0x4E575245ull);  // "NWRE"
  h = hash_combine(h, net.topo.node_count());
  for (NodeId n = 0; n < net.topo.node_count(); ++n) {
    const DeviceConfig& dev = net.device(n);
    h = hash_str(h, dev.name);
    h = hash_combine(h, dev.loopback.value());
    h = hash_combine(h, dev.ospf.enabled ? 2u : 1u);
    h = hash_combine(h, dev.ospf.advertise_loopback ? 2u : 1u);
    h = hash_combine(h, dev.ospf.redistribute_static ? 2u : 1u);
    if (dev.bgp) {
      h = hash_combine(h, dev.bgp->asn);
      h = hash_combine(h, dev.bgp->redistribute_ospf ? 2u : 1u);
      h = hash_combine(h, dev.bgp->sessions.size());
      for (const BgpSession& s : dev.bgp->sessions) {
        h = hash_combine(h, s.peer);
        h = hash_combine(h, s.ibgp ? 2u : 1u);
      }
    } else {
      h = hash_combine(h, 0xB0);
    }
  }
  h = hash_combine(h, net.topo.link_count());
  for (const Link& l : net.topo.links()) {
    h = hash_combine(hash_combine(h, l.a), l.b);
    h = hash_combine(hash_combine(h, l.cost_ab), l.cost_ba);
  }
  return h;
}

/// The prefix-valued config visible from [lo, hi]: every originated prefix,
/// static route, and fireable route-map clause whose range intersects the
/// PEC's. Each entry is tagged with its device id and a category marker so
/// the fold is self-delimiting (an entry moving between devices or
/// categories cannot alias).
std::uint64_t scoped_residue(const Network& net, std::uint64_t h, IpAddr lo,
                             IpAddr hi) {
  for (NodeId n = 0; n < net.topo.node_count(); ++n) {
    const DeviceConfig& dev = net.device(n);
    for (const Prefix& p : dev.ospf.originated) {
      if (intersects(p, lo, hi)) {
        h = hash_prefix_value(hash_combine(hash_combine(h, 0xE1), n), p);
      }
    }
    for (const StaticRoute& sr : dev.statics) {
      if (intersects(sr.dst, lo, hi)) {
        h = hash_static_value(hash_combine(hash_combine(h, 0xE3), n), sr);
      }
    }
    if (!dev.bgp) continue;
    for (const Prefix& p : dev.bgp->originated) {
      if (intersects(p, lo, hi)) {
        h = hash_prefix_value(hash_combine(hash_combine(h, 0xE2), n), p);
      }
    }
    for (const BgpSession& s : dev.bgp->sessions) {
      h = hash_combine(hash_combine(h, 0xE4), n);
      h = hash_combine(h, s.peer);
      h = route_map_residue(h, s.import, lo, hi);
      h = route_map_residue(h, s.export_, lo, hi);
    }
  }
  return h;
}

}  // namespace

std::uint64_t PecFingerprint::combined() const {
  return hash_combine(canon, residue);
}

std::vector<PecFingerprint> compute_pec_fingerprints(const Network& net,
                                                     const PecSet& pecs) {
  std::vector<PecFingerprint> out(pecs.pecs.size());
  const NullFingerprintPolicy null_policy;
  RouteMapCanon canon;
  const auto topo_edges = topology_edges(net);
  const std::uint64_t net_res = network_residue(net);
  for (PecId p = 0; p < pecs.pecs.size(); ++p) {
    const Pec& pec = pecs.pecs[p];
    out[p].canon =
        pec_shape(net, pec, null_policy, topo_edges, canon).fingerprint;
    // Per-PEC residue: the address range, concrete prefix values, the
    // identity-bearing slice (who originates, which static routes by value),
    // and the range-intersecting prefix-valued config.
    std::uint64_t h = hash_combine(net_res, pec.lo.value());
    h = hash_combine(h, pec.hi.value());
    h = hash_combine(h, pec.prefixes.size());
    for (const PecPrefix& pp : pec.prefixes) {
      h = hash_prefix_value(h, pp.prefix);
      h = hash_combine(h, pp.ospf_origins.size());
      for (const NodeId n : pp.ospf_origins) h = hash_combine(h, n);
      h = hash_combine(h, pp.bgp_origins.size());
      for (const NodeId n : pp.bgp_origins) h = hash_combine(h, n);
      h = hash_combine(h, pp.static_routes.size());
      // By value, not index: deleting an unrelated static from the same
      // device shifts indices and must not move this PEC.
      for (const auto& [dev, idx] : pp.static_routes) {
        h = hash_static_value(hash_combine(h, dev),
                              net.device(dev).statics[idx]);
      }
    }
    out[p].residue = scoped_residue(net, h, pec.lo, pec.hi);
  }
  return out;
}

PecClassSet compute_pec_classes(const Network& net, const PecSet& pecs,
                                const PecDependencies& deps,
                                const Policy& policy,
                                std::span<const std::uint8_t> needed,
                                std::span<const std::uint8_t> is_target) {
  const auto start = std::chrono::steady_clock::now();
  PecClassSet out;
  out.rep_of.assign(pecs.pecs.size(), kNoPec);
  out.members_of.resize(pecs.pecs.size());

  // A PEC is dedup-eligible when its exploration is self-contained: it reads
  // no upstream converged outcomes (depends_on empty, no self-loop) and no
  // needed PEC will read its outcomes (record_outcomes stays off, so the
  // §4.2/§4.3 pruning configuration is identical across the whole class).
  auto eligible = [&](PecId p) {
    if (needed[p] == 0 || is_target[p] == 0) return false;
    if (!deps.depends_on[p].empty() || deps.self_loop[p] != 0) return false;
    for (const PecId q : deps.dependents[p]) {
      if (needed[q] != 0) return false;
    }
    for (const PecPrefix& pp : pecs.pecs[p].prefixes) {
      for (const auto& [dev, idx] : pp.static_routes) {
        if (net.device(dev).statics[idx].via_ip) return false;
      }
    }
    return true;
  };

  struct Class {
    PecId rep = 0;
    std::vector<std::uint64_t> colors;   ///< representative's refined colors
    std::vector<NodeId> canon;           ///< representative's canonical order
  };
  std::unordered_map<std::uint64_t, std::vector<Class>> buckets;
  std::vector<NodeId> pi(net.topo.node_count());
  RouteMapCanon map_canon;
  std::vector<std::vector<RefineEdge>> topo_edges;

  for (PecId p = 0; p < pecs.pecs.size(); ++p) {
    if (needed[p] == 0) continue;
    out.rep_of[p] = p;
    if (!eligible(p)) {
      if (is_target[p] != 0) ++out.stats.classes;  // ineligible target: singleton
      continue;
    }
    if (topo_edges.empty()) topo_edges = topology_edges(net);
    PecShape shape = pec_shape(net, pecs.pecs[p], policy, topo_edges, map_canon);
    auto& bucket = buckets[shape.fingerprint];
    const std::vector<NodeId> canon = canonical_order(shape.colors);
    bool joined = false;
    for (Class& cls : bucket) {
      // Candidate bijection: i-th node in the representative's canonical
      // (color, id) order maps to the i-th in the member's. Equal color
      // multisets (same fingerprint) make the pairing color-aligned.
      bool color_aligned = true;
      for (std::size_t i = 0; i < canon.size(); ++i) {
        if (cls.colors[cls.canon[i]] != shape.colors[canon[i]]) {
          color_aligned = false;
          break;
        }
        pi[cls.canon[i]] = canon[i];
      }
      if (!color_aligned) continue;  // hash-collision bucket: not the same shape
      if (!validate_isomorphism(net, pecs.pecs[cls.rep], pecs.pecs[p], policy,
                                pi, map_canon)) {
        continue;
      }
      out.rep_of[p] = cls.rep;
      out.members_of[cls.rep].push_back(p);
      ++out.stats.deduped;
      joined = true;
      break;
    }
    if (!joined) {
      Class cls;
      cls.rep = p;
      cls.canon = canon;
      cls.colors = std::move(shape.colors);
      bucket.push_back(std::move(cls));
      ++out.stats.classes;
    }
  }
  // Singletons = classes that never gained a member (ineligible targets and
  // unmatched eligible PECs alike) — the honest-fallback count.
  std::size_t multi = 0;
  for (const auto& members : out.members_of) {
    if (!members.empty()) ++multi;
  }
  out.stats.singletons = out.stats.classes - multi;
  out.stats.fingerprint_time = std::chrono::steady_clock::now() - start;
  return out;
}

}  // namespace plankton
