// Socket transport for plankton_serve: Unix-domain and/or TCP listeners
// speaking PKS1 frames (sched/shard.hpp), plus the client-side helpers the
// CLI uses. The accept loop multiplexes all connections through one
// select() with a periodic tick — request *processing* is sequential (the
// resident Verifier is single-threaded state), but a client stalled
// mid-frame can never block the others: overdue mid-frame reads and idle
// connections are closed by per-client deadlines.
#pragma once

#include <string>
#include <string_view>

#include "sched/fault.hpp"
#include "sched/shard.hpp"
#include "serve/serve.hpp"

namespace plankton::serve {

struct ServerOptions {
  std::string unix_path;  ///< empty = no Unix listener
  int tcp_port = 0;       ///< 0 = no TCP listener (binds 127.0.0.1)
  std::string cache_path; ///< warm-start/persist path; empty = in-memory only
  /// PKJ1 write-ahead journal path; empty = no crash durability. When the
  /// file already holds records the daemon replays them before accepting
  /// connections, rebuilding the pre-crash net state bit-identically.
  std::string journal_path;
  /// Socket faults (stall/drop-conn/torn-tcp/slow-read) the *server* acts
  /// out on client connections — the serve-side chaos hook; resolved via
  /// for_worker(0, 0). Process faults are ignored here.
  sched::FaultPlan fault_plan;
  /// Accepted connections beyond this are refused with a polite
  /// kVerdictReply error instead of queueing behind select().
  std::size_t max_clients = 64;
  /// A client stalled mid-frame longer than this is disconnected (the
  /// satellite fix for the stalled-writer wedge). 0 disables.
  int read_deadline_ms = 5000;
  /// A fully idle connection older than this is disconnected. 0 disables
  /// (default: clients may legitimately hold connections open).
  int idle_timeout_ms = 0;
  VerifyOptions verify;
};

/// Runs the daemon loop: accept → decode frames → dispatch → reply, until a
/// kShutdown frame arrives or SIGTERM/SIGINT lands (either way the in-flight
/// request finishes, the cache is persisted, the journal is compacted, and 0
/// is returned) or socket setup fails (message on stderr, non-zero return).
/// Malformed frames poison the connection (it is closed); the daemon itself
/// keeps serving.
int run_server(const ServerOptions& opts);

// -- client side ------------------------------------------------------------

/// Connect to a Unix socket path or 127.0.0.1:port. -1 + `error` on failure.
int connect_unix(const std::string& path, std::string& error);
int connect_tcp(int port, std::string& error);

bool send_frame(int fd, sched::MsgType type, std::string_view payload);

/// Blocks until one full frame arrives on `fd` (reading through `dec`).
/// False on EOF, I/O error, or a poisoned stream.
bool recv_frame(int fd, sched::FrameDecoder& dec, sched::Frame& out,
                std::string& error);

}  // namespace plankton::serve
