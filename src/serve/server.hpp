// Socket transport for plankton_serve: Unix-domain and/or TCP listeners
// speaking PKS1 frames (sched/shard.hpp), plus the client-side helpers the
// CLI uses. Connections are served sequentially — the resident Verifier is
// single-threaded state; the verdict cache underneath is already
// lock-striped for when the accept loop grows worker threads.
#pragma once

#include <string>
#include <string_view>

#include "sched/shard.hpp"
#include "serve/serve.hpp"

namespace plankton::serve {

struct ServerOptions {
  std::string unix_path;  ///< empty = no Unix listener
  int tcp_port = 0;       ///< 0 = no TCP listener (binds 127.0.0.1)
  std::string cache_path; ///< warm-start/persist path; empty = in-memory only
  VerifyOptions verify;
};

/// Runs the daemon loop: accept → decode frames → dispatch → reply, until a
/// kShutdown frame arrives (cache is persisted, 0 returned) or socket setup
/// fails (message on stderr, non-zero return). Malformed frames poison the
/// connection (it is closed); the daemon itself keeps serving.
int run_server(const ServerOptions& opts);

// -- client side ------------------------------------------------------------

/// Connect to a Unix socket path or 127.0.0.1:port. -1 + `error` on failure.
int connect_unix(const std::string& path, std::string& error);
int connect_tcp(int port, std::string& error);

bool send_frame(int fd, sched::MsgType type, std::string_view payload);

/// Blocks until one full frame arrives on `fd` (reading through `dec`).
/// False on EOF, I/O error, or a poisoned stream.
bool recv_frame(int fd, sched::FrameDecoder& dec, sched::Frame& out,
                std::string& error);

}  // namespace plankton::serve
