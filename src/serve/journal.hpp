// Crash-durable write-ahead journal for the plankton_serve daemon (PKJ1).
//
// Every accepted kLoadNet / kApplyDelta is appended and fsync'd *before* the
// daemon acks it, so a kill -9 at any instant loses at most the request that
// was never acknowledged. On restart the daemon replays the journal through
// the ordinary ServeState::load / apply_delta paths — cones and fingerprints
// are deterministic functions of the config text, so the rebuilt state is
// bit-identical to the pre-crash resident state.
//
// File layout (little-endian, wire.hpp primitives):
//
//   header:  u32 magic "PKJ1" | u16 version | u16 reserved
//   record:  u16 type | u16 reserved | u64 payload_len | payload bytes
//            | u64 checksum over (type, payload_len, payload)
//
// A torn tail — the header or payload of the final record cut short by the
// crash, or a checksum mismatch from a partial sector write — is detected
// during replay and dropped cleanly: every record before it applies, the
// tail is reported, and recovery truncates it away (truncate_tail) so later
// appends extend a clean journal instead of hiding behind unparseable bytes.
//
// Compaction rewrites the journal as a single kLoadNet record of the current
// resident config text (tmp + fsync + rename, like the PKC1 cache save):
// sound because replaying that one record reconstructs the identical state
// the full history would. It runs on every accepted kLoadNet (prior history
// is dead) and on graceful shutdown next to the cache save.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace plankton::serve {

inline constexpr std::uint32_t kJournalMagic = 0x504b4a31;  // "1JKP" on disk
inline constexpr std::uint16_t kJournalVersion = 1;

enum class JournalRecord : std::uint16_t {
  kLoadNet = 1,     ///< payload: raw config text
  kApplyDelta = 2,  ///< payload: encode_apply_delta bytes
};

class Journal {
 public:
  Journal() = default;
  ~Journal() { close(); }
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Opens `path` for appending, creating it (with a fresh header) when
  /// absent or empty. An existing file must carry a valid PKJ1 header.
  bool open(const std::string& path, std::string& error);

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Appends one record and fsyncs before returning — the durability point
  /// the ack-after-append contract rests on.
  bool append(JournalRecord type, std::string_view payload, std::string& error);

  /// Compaction: atomically replaces the journal with a single kLoadNet
  /// record of `config_text` (tmp + fsync + rename), then reopens for
  /// appending.
  bool rewrite(std::string_view config_text, std::string& error);

  /// Chops `dropped_bytes` off the end of the open journal — the torn tail
  /// replay reported. Without this, the next append would land *after* the
  /// unparseable bytes and be unreachable to every future replay.
  bool truncate_tail(std::uint64_t dropped_bytes, std::string& error);

  void close();

  struct ReplayResult {
    std::uint64_t applied = 0;        ///< records handed to `apply`
    std::uint64_t dropped_bytes = 0;  ///< torn/corrupt tail bytes ignored
    bool torn_tail = false;
  };

  /// Replays every intact record of `path` in order through `apply`. A
  /// missing file is an empty journal (true, applied=0). A torn or corrupt
  /// tail stops the replay cleanly (true, torn_tail set); a bad header or an
  /// `apply` callback returning false is an error (false + `error`).
  static bool replay(
      const std::string& path,
      const std::function<bool(JournalRecord, std::string_view)>& apply,
      ReplayResult& out, std::string& error);

  /// The record checksum: a deterministic fold of (type, payload_len,
  /// payload bytes). Exposed so tests can forge corrupt records.
  static std::uint64_t record_checksum(std::uint16_t type,
                                       std::string_view payload);

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace plankton::serve
