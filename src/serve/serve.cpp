#include "serve/serve.hpp"

#include <algorithm>
#include <chrono>
#include <span>

#include "eqclass/pec_dedup.hpp"
#include "netbase/hash.hpp"
#include "sched/wire.hpp"

namespace plankton::serve {

using wire::fits;
using wire::get_int;
using wire::get_string;
using wire::put_int;
using wire::put_string;

// ---------------------------------------------------------------------------
// Codecs — same contract as the shard ones (sched/shard.cpp): reset the
// output, validate every count against the bytes present, reject trailing
// garbage.
// ---------------------------------------------------------------------------

std::string encode_load_net(const LoadNetMsg& m) {
  std::string out;
  put_string(out, m.config_text);
  return out;
}

bool decode_load_net(std::string_view in, LoadNetMsg& out) {
  out = LoadNetMsg{};
  if (!get_string(in, out.config_text) || !in.empty()) {
    out = LoadNetMsg{};
    return false;
  }
  return true;
}

std::string encode_bootstrap(const BootstrapMsg& m) {
  std::string out;
  put_string(out, m.config_text);
  put_string(out, m.policy_spec);
  put_int(out, static_cast<std::uint32_t>(m.targets.size()));
  for (const std::uint32_t t : m.targets) put_int(out, t);
  put_int(out, m.pec_dedup);
  put_int(out, m.stop_on_violation);
  put_int(out, m.max_failures);
  put_int(out, m.consistent_only);
  put_int(out, m.deterministic_nodes);
  put_int(out, m.det_nodes_bgp);
  put_int(out, m.decision_independence);
  put_int(out, m.lec_failures);
  put_int(out, m.policy_pruning);
  put_int(out, m.suppress_equivalent);
  put_int(out, m.merge_updates);
  put_int(out, m.ad_cache);
  put_int(out, m.por);
  put_int(out, m.incremental_expand);
  put_int(out, m.find_all_violations);
  put_int(out, m.simulation);
  put_int(out, m.visited);
  put_int(out, m.bloom_bits);
  put_int(out, m.max_states);
  put_int(out, m.time_limit_ms);
  put_int(out, m.budget_max_states);
  put_int(out, m.budget_max_bytes);
  put_int(out, m.budget_degrade_visited);
  put_int(out, m.budget_deadline_ms);
  put_int(out, m.wall_remaining_ms);
  put_int(out, m.engine_kind);
  put_int(out, m.engine_seed);
  put_int(out, m.engine_split_every);
  put_int(out, m.engine_restart_policy);
  put_int(out, m.heartbeat_interval_ms);
  put_int(out, m.max_frame_payload);
  put_int(out, m.split_export);
  put_int(out, m.export_check_every);
  put_int(out, m.export_min_frontier);
  put_int(out, m.export_max_per_run);
  put_string(out, m.fault_plan);
  return out;
}

bool decode_bootstrap(std::string_view in, BootstrapMsg& out) {
  out = BootstrapMsg{};
  const auto fail = [&out] {
    out = BootstrapMsg{};
    return false;
  };
  std::uint32_t n = 0;
  if (!get_string(in, out.config_text) || !get_string(in, out.policy_spec) ||
      !get_int(in, n) || !fits(in, n, 4)) {
    return fail();
  }
  out.targets.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!get_int(in, out.targets[i])) return fail();
  }
  const bool fields_ok =
      get_int(in, out.pec_dedup) && get_int(in, out.stop_on_violation) &&
      get_int(in, out.max_failures) && get_int(in, out.consistent_only) &&
      get_int(in, out.deterministic_nodes) && get_int(in, out.det_nodes_bgp) &&
      get_int(in, out.decision_independence) &&
      get_int(in, out.lec_failures) && get_int(in, out.policy_pruning) &&
      get_int(in, out.suppress_equivalent) && get_int(in, out.merge_updates) &&
      get_int(in, out.ad_cache) && get_int(in, out.por) &&
      get_int(in, out.incremental_expand) &&
      get_int(in, out.find_all_violations) && get_int(in, out.simulation) &&
      get_int(in, out.visited) && get_int(in, out.bloom_bits) &&
      get_int(in, out.max_states) && get_int(in, out.time_limit_ms) &&
      get_int(in, out.budget_max_states) &&
      get_int(in, out.budget_max_bytes) &&
      get_int(in, out.budget_degrade_visited) &&
      get_int(in, out.budget_deadline_ms) &&
      get_int(in, out.wall_remaining_ms) && get_int(in, out.engine_kind) &&
      get_int(in, out.engine_seed) && get_int(in, out.engine_split_every) &&
      get_int(in, out.engine_restart_policy) &&
      get_int(in, out.heartbeat_interval_ms) &&
      get_int(in, out.max_frame_payload) && get_int(in, out.split_export) &&
      get_int(in, out.export_check_every) &&
      get_int(in, out.export_min_frontier) &&
      get_int(in, out.export_max_per_run) &&
      get_string(in, out.fault_plan) && in.empty();
  const auto flag_ok = [](std::uint8_t f) { return f <= 1; };
  if (!fields_ok || !flag_ok(out.pec_dedup) ||
      !flag_ok(out.stop_on_violation) || out.max_failures < 0 ||
      !flag_ok(out.consistent_only) || !flag_ok(out.deterministic_nodes) ||
      !flag_ok(out.det_nodes_bgp) || !flag_ok(out.decision_independence) ||
      !flag_ok(out.lec_failures) || !flag_ok(out.policy_pruning) ||
      !flag_ok(out.suppress_equivalent) || !flag_ok(out.merge_updates) ||
      !flag_ok(out.ad_cache) || !flag_ok(out.por) ||
      !flag_ok(out.incremental_expand) || !flag_ok(out.find_all_violations) ||
      !flag_ok(out.simulation) ||
      out.visited > static_cast<std::uint8_t>(VisitedKind::kBitstate) ||
      out.time_limit_ms < 0 || !flag_ok(out.budget_degrade_visited) ||
      out.budget_deadline_ms < 0 || out.wall_remaining_ms < 0 ||
      out.engine_kind >
          static_cast<std::uint8_t>(SearchEngineKind::kRandomRestart) ||
      out.engine_restart_policy >
          static_cast<std::uint8_t>(RestartPolicy::kLuby) ||
      out.heartbeat_interval_ms < 0 || !flag_ok(out.split_export) ||
      out.export_max_per_run < 0) {
    return fail();
  }
  return true;
}

std::string encode_apply_delta(const ApplyDeltaMsg& m) {
  std::string out;
  put_int(out, static_cast<std::uint32_t>(m.ops.size()));
  for (const DeltaOp& op : m.ops) {
    put_int(out, static_cast<std::uint8_t>(op.add ? 1 : 0));
    put_string(out, op.line);
  }
  return out;
}

bool decode_apply_delta(std::string_view in, ApplyDeltaMsg& out) {
  out = ApplyDeltaMsg{};
  const auto fail = [&out] {
    out = ApplyDeltaMsg{};
    return false;
  };
  std::uint32_t n = 0;
  if (!get_int(in, n) || !fits(in, n, 1 + 8)) return fail();
  out.ops.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint8_t add = 0;
    if (!get_int(in, add) || add > 1 || !get_string(in, out.ops[i].line)) {
      return fail();
    }
    out.ops[i].add = add == 1;
  }
  if (!in.empty()) return fail();
  return true;
}

std::string encode_query(const QueryMsg& m) {
  std::string out;
  put_string(out, m.policy_spec);
  put_int(out, m.max_failures);
  return out;
}

bool decode_query(std::string_view in, QueryMsg& out) {
  out = QueryMsg{};
  if (!get_string(in, out.policy_spec) || !get_int(in, out.max_failures) ||
      !in.empty()) {
    out = QueryMsg{};
    return false;
  }
  return true;
}

std::string encode_verdict_reply(const VerdictReplyMsg& m) {
  std::string out;
  put_int(out, static_cast<std::uint8_t>(m.ok ? 1 : 0));
  put_int(out, m.verdict);
  put_string(out, m.error);
  put_int(out, m.targets);
  put_int(out, m.cache_hits);
  put_int(out, m.reverified);
  put_int(out, m.moved);
  put_int(out, m.wall_ns);
  put_int(out, static_cast<std::uint32_t>(m.violations.size()));
  for (const ViolationText& v : m.violations) {
    put_string(out, v.pec);
    put_string(out, v.message);
  }
  return out;
}

bool decode_verdict_reply(std::string_view in, VerdictReplyMsg& out) {
  out = VerdictReplyMsg{};
  const auto fail = [&out] {
    out = VerdictReplyMsg{};
    return false;
  };
  std::uint8_t ok = 0;
  std::uint32_t n = 0;
  if (!get_int(in, ok) || ok > 1 || !get_int(in, out.verdict) ||
      out.verdict > static_cast<std::uint8_t>(Verdict::kError) ||
      !get_string(in, out.error) || !get_int(in, out.targets) ||
      !get_int(in, out.cache_hits) || !get_int(in, out.reverified) ||
      !get_int(in, out.moved) || !get_int(in, out.wall_ns) ||
      !get_int(in, n) || !fits(in, n, 8 + 8)) {
    return fail();
  }
  out.ok = ok == 1;
  out.violations.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!get_string(in, out.violations[i].pec) ||
        !get_string(in, out.violations[i].message)) {
      return fail();
    }
  }
  if (!in.empty()) return fail();
  return true;
}

std::string encode_cache_stats(const CacheStatsMsg& m) {
  std::string out;
  put_int(out, m.hits);
  put_int(out, m.misses);
  put_int(out, m.nonclean_bypass);
  put_int(out, m.insertions);
  put_int(out, m.warm_loaded);
  put_int(out, m.entries);
  return out;
}

bool decode_cache_stats(std::string_view in, CacheStatsMsg& out) {
  out = CacheStatsMsg{};
  if (!get_int(in, out.hits) || !get_int(in, out.misses) ||
      !get_int(in, out.nonclean_bypass) || !get_int(in, out.insertions) ||
      !get_int(in, out.warm_loaded) || !get_int(in, out.entries) ||
      !in.empty()) {
    out = CacheStatsMsg{};
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Policy specs
// ---------------------------------------------------------------------------

namespace {

std::vector<std::string_view> split_tokens(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && s[i] == ' ') ++i;
    const std::size_t start = i;
    while (i < s.size() && s[i] != ' ') ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

bool nodes_of(const Network& net, std::span<const std::string_view> names,
              std::vector<NodeId>& out, std::string& error) {
  for (const std::string_view name : names) {
    const auto id = net.find_device(name);
    if (!id) {
      error = "unknown node '" + std::string(name) + "'";
      return false;
    }
    out.push_back(*id);
  }
  return true;
}

}  // namespace

std::unique_ptr<Policy> make_policy(const Network& net, std::string_view spec,
                                    std::string& error) {
  const auto t = split_tokens(spec);
  if (t.empty()) {
    error = "empty policy spec";
    return nullptr;
  }
  const std::string_view kind = t[0];
  const std::span<const std::string_view> rest(t.data() + 1, t.size() - 1);
  std::vector<NodeId> nodes;
  if (kind == "loop") {
    if (!rest.empty()) {
      error = "loop takes no arguments";
      return nullptr;
    }
    return std::make_unique<LoopFreedomPolicy>();
  }
  if (kind == "reach") {
    if (rest.empty()) {
      error = "reach needs at least one source node";
      return nullptr;
    }
    if (!nodes_of(net, rest, nodes, error)) return nullptr;
    return std::make_unique<ReachabilityPolicy>(std::move(nodes));
  }
  if (kind == "blackhole") {
    if (!nodes_of(net, rest, nodes, error)) return nullptr;
    return std::make_unique<BlackholeFreedomPolicy>(std::move(nodes));
  }
  if (kind == "bounded") {
    if (rest.size() < 2) {
      error = "usage: bounded <limit> <node>...";
      return nullptr;
    }
    std::uint32_t limit = 0;
    for (const char c : rest[0]) {
      if (c < '0' || c > '9' || limit > 400000000u) {
        error = "bad bound '" + std::string(rest[0]) + "'";
        return nullptr;
      }
      limit = limit * 10 + static_cast<std::uint32_t>(c - '0');
    }
    if (!nodes_of(net, rest.subspan(1), nodes, error)) return nullptr;
    return std::make_unique<BoundedPathLengthPolicy>(std::move(nodes), limit);
  }
  if (kind == "waypoint") {
    if (rest.size() < 2) {
      error = "usage: waypoint <via> <source>...";
      return nullptr;
    }
    std::vector<NodeId> via;
    if (!nodes_of(net, rest.subspan(0, 1), via, error)) return nullptr;
    if (!nodes_of(net, rest.subspan(1), nodes, error)) return nullptr;
    return std::make_unique<WaypointPolicy>(std::move(nodes), std::move(via));
  }
  error = "unknown policy '" + std::string(kind) + "'";
  return nullptr;
}

// ---------------------------------------------------------------------------
// Config rendering
// ---------------------------------------------------------------------------

std::unordered_map<std::uint8_t, std::string> community_names_of(
    const std::map<std::string, std::uint8_t>& communities) {
  std::unordered_map<std::uint8_t, std::string> out;
  for (const auto& [name, bit] : communities) out.emplace(bit, name);
  return out;
}

namespace {

std::string community_name(
    const std::unordered_map<std::uint8_t, std::string>& names,
    std::uint8_t bit) {
  const auto it = names.find(bit);
  return it != names.end() ? it->second : "C" + std::to_string(bit);
}

void render_route_map(std::string& out, const Network& net, NodeId self,
                      NodeId peer, const char* dir, const RouteMap& rm,
                      const std::unordered_map<std::uint8_t, std::string>& cn) {
  const std::string head = "route-map " + net.topo.name(self) + " " +
                           net.topo.name(peer) + " " + dir + " ";
  for (const RouteMapClause& c : rm.clauses) {
    std::string line = head + (c.action.permit ? "permit" : "deny");
    if (c.match.prefix) {
      line += " match-prefix " + c.match.prefix->str();
      if (c.match.prefix_mode == RouteMapMatch::PrefixMode::kOrLonger) {
        line += " or-longer";
      }
    }
    if (c.match.community) {
      line += " match-community " + community_name(cn, *c.match.community);
    }
    if (c.match.max_path_len) {
      line += " match-max-path-len " + std::to_string(*c.match.max_path_len);
    }
    if (c.action.set_local_pref) {
      line += " set-local-pref " + std::to_string(*c.action.set_local_pref);
    }
    if (c.action.add_community) {
      line += " add-community " + community_name(cn, *c.action.add_community);
    }
    if (c.action.prepend != 0) {
      line += " prepend " + std::to_string(c.action.prepend);
    }
    out += line + "\n";
  }
  if (!rm.default_permit) out += head + "deny\n";  // route-map-default below
}

}  // namespace

std::string render_config(
    const Network& net,
    const std::unordered_map<std::uint8_t, std::string>& community_names) {
  std::string out;
  const std::size_t n_nodes = net.topo.node_count();
  for (NodeId n = 0; n < n_nodes; ++n) {
    const DeviceConfig& dev = net.device(n);
    out += "node " + dev.name;
    if (dev.loopback.value() != 0) out += " loopback " + dev.loopback.str();
    out += "\n";
  }
  for (const Link& l : net.topo.links()) {
    out += "link " + net.topo.name(l.a) + " " + net.topo.name(l.b) + " cost " +
           std::to_string(l.cost_ab) + " cost-ba " + std::to_string(l.cost_ba) +
           "\n";
  }
  for (NodeId n = 0; n < n_nodes; ++n) {
    const DeviceConfig& dev = net.device(n);
    const std::string name = net.topo.name(n);
    if (dev.ospf.enabled) out += "ospf " + name + " enable\n";
    if (!dev.ospf.advertise_loopback) out += "ospf " + name + " no-loopback\n";
    if (dev.ospf.redistribute_static) {
      out += "ospf " + name + " redistribute-static\n";
    }
    for (const Prefix& p : dev.ospf.originated) {
      out += "ospf " + name + " originate " + p.str() + "\n";
    }
    for (const StaticRoute& sr : dev.statics) {
      out += "static " + name + " " + sr.dst.str();
      if (sr.drop) {
        out += " drop";
      } else if (sr.via_ip) {
        out += " via-ip " + sr.via_ip->str();
      } else {
        out += " via " + net.topo.name(sr.via_neighbor);
      }
      out += "\n";
    }
  }
  for (NodeId n = 0; n < n_nodes; ++n) {
    const DeviceConfig& dev = net.device(n);
    if (!dev.bgp) continue;
    const std::string name = net.topo.name(n);
    if (dev.bgp->asn != 0) {
      out += "bgp " + name + " asn " + std::to_string(dev.bgp->asn) + "\n";
    }
    if (dev.bgp->redistribute_ospf) out += "bgp " + name + " redistribute-ospf\n";
    for (const Prefix& p : dev.bgp->originated) {
      out += "bgp " + name + " originate " + p.str() + "\n";
    }
  }
  // Sessions once per pair (the parser materializes both directions), then
  // route maps — map_for() requires the session lines to precede them.
  for (NodeId n = 0; n < n_nodes; ++n) {
    const DeviceConfig& dev = net.device(n);
    if (!dev.bgp) continue;
    for (const BgpSession& s : dev.bgp->sessions) {
      if (s.peer < n) continue;
      out += "bgp-session " + net.topo.name(n) + " " + net.topo.name(s.peer) +
             (s.ibgp ? " ibgp" : " ebgp") + "\n";
    }
  }
  for (NodeId n = 0; n < n_nodes; ++n) {
    const DeviceConfig& dev = net.device(n);
    if (!dev.bgp) continue;
    for (const BgpSession& s : dev.bgp->sessions) {
      render_route_map(out, net, n, s.peer, "import", s.import, community_names);
      render_route_map(out, net, n, s.peer, "export", s.export_, community_names);
      if (!s.import.default_permit) {
        out += "route-map-default " + net.topo.name(n) + " " +
               net.topo.name(s.peer) + " import deny\n";
      }
      if (!s.export_.default_permit) {
        out += "route-map-default " + net.topo.name(n) + " " +
               net.topo.name(s.peer) + " export deny\n";
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// ServeState
// ---------------------------------------------------------------------------

namespace {

std::uint64_t hash_str(std::uint64_t h, std::string_view s) {
  h = hash_combine(h, s.size());
  for (const char c : s) h = hash_combine(h, static_cast<unsigned char>(c));
  return h;
}

/// Format-version salt for cache ctx hashes: bump when the meaning of a
/// cached verdict changes (policy semantics, explorer fixes, ...).
constexpr std::uint64_t kCtxSalt = 0x53455256'00000001ull;  // "SERV" v1

}  // namespace

ServeState::ServeState(VerifyOptions opts, std::string cache_path)
    : opts_(std::move(opts)), cache_path_(std::move(cache_path)) {}

bool ServeState::make_resident(std::string config_text, std::string& error) {
  ParsedNetwork parsed;
  if (!parse_network_config(config_text, parsed, error)) return false;
  const auto problems = parsed.net.validate();
  if (!problems.empty()) {
    error = "invalid network: " + problems.front();
    return false;
  }
  // Commit point: nothing above mutated the resident state. The Verifier
  // holds a reference to the network, so the old one must be torn down
  // before parsed_ is replaced, and the new one built only afterwards.
  verifier_.reset();
  parsed_ = std::move(parsed);
  verifier_ = std::make_unique<Verifier>(parsed_.net, opts_);
  config_text_ = std::move(config_text);
  recompute_cones();
  return true;
}

void ServeState::recompute_cones() {
  const PecSet& pecs = verifier_->pecs();
  const PecDependencies& deps = verifier_->deps();
  const std::vector<PecFingerprint> fps =
      compute_pec_fingerprints(parsed_.net, pecs);
  cones_.assign(pecs.pecs.size(), 0);
  std::vector<std::uint8_t> seen(pecs.pecs.size(), 0);
  std::vector<PecId> frontier;
  std::vector<std::uint64_t> cone_fps;
  for (PecId p = 0; p < pecs.pecs.size(); ++p) {
    // BFS over depends_on: everything this PEC's verification can observe.
    cone_fps.clear();
    frontier.assign(1, p);
    std::fill(seen.begin(), seen.end(), 0);
    seen[p] = 1;
    while (!frontier.empty()) {
      const PecId q = frontier.back();
      frontier.pop_back();
      cone_fps.push_back(fps[q].combined());
      for (const PecId d : deps.depends_on[q]) {
        if (seen[d] == 0) {
          seen[d] = 1;
          frontier.push_back(d);
        }
      }
    }
    // Sort minus the self entry's position: the fold must not depend on BFS
    // order, only on the multiset of fingerprints in the cone.
    std::sort(cone_fps.begin(), cone_fps.end());
    std::uint64_t h = hash_combine(0xC04E, fps[p].combined());
    for (const std::uint64_t f : cone_fps) h = hash_combine(h, f);
    h = hash_combine(h, deps.self_loop[p] != 0 ? 2u : 1u);
    cones_[p] = h;
  }
}

bool ServeState::load(const std::string& config_text, std::string& error) {
  if (!make_resident(config_text, error)) return false;
  prev_cones_.clear();
  last_moved_ = 0;
  if (!warm_started_ && !cache_path_.empty()) {
    warm_started_ = true;
    std::string load_error;
    (void)cache_.load(cache_path_, load_error);  // absent/corrupt = cold start
  }
  // A full load obsoletes the journal history: compact to one kLoadNet
  // record (fsync'd inside rewrite — the caller's ack stays behind the
  // durability point). A journal failure fails the request so no ack can
  // ever claim durability the disk doesn't have.
  if (journal_.is_open() && !replaying_ &&
      !journal_.rewrite(config_text_, error)) {
    return false;
  }
  return true;
}

bool ServeState::apply_delta(const ApplyDeltaMsg& delta, std::string& error) {
  if (!loaded()) {
    error = "no network loaded";
    return false;
  }
  // Line-level editing of the resident config text.
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos <= config_text_.size()) {
    const std::size_t eol = config_text_.find('\n', pos);
    if (eol == std::string::npos) {
      if (pos < config_text_.size()) lines.push_back(config_text_.substr(pos));
      break;
    }
    lines.push_back(config_text_.substr(pos, eol - pos));
    pos = eol + 1;
  }
  for (const DeltaOp& op : delta.ops) {
    if (op.add) {
      lines.push_back(op.line);
      continue;
    }
    const auto it = std::find(lines.begin(), lines.end(), op.line);
    if (it == lines.end()) {
      error = "delta removes absent line '" + op.line + "'";
      return false;
    }
    lines.erase(it);
  }
  std::string next_text;
  for (const std::string& l : lines) {
    next_text += l;
    next_text += '\n';
  }

  // Snapshot the old cone map before the rebuild, then count moved PECs by
  // identity string — a PEC whose cone hash changed, appeared, or vanished.
  std::unordered_map<std::string, std::uint64_t> before;
  const PecSet& old_pecs = verifier_->pecs();
  for (PecId p = 0; p < old_pecs.pecs.size(); ++p) {
    before.emplace(old_pecs.pecs[p].str(), cones_[p]);
  }
  if (!make_resident(std::move(next_text), error)) return false;
  std::uint64_t moved = 0;
  const PecSet& new_pecs = verifier_->pecs();
  std::size_t matched = 0;
  for (PecId p = 0; p < new_pecs.pecs.size(); ++p) {
    const auto it = before.find(new_pecs.pecs[p].str());
    if (it == before.end()) {
      ++moved;  // new PEC
    } else {
      ++matched;
      if (it->second != cones_[p]) ++moved;
    }
  }
  moved += before.size() - matched;  // vanished PECs
  prev_cones_ = std::move(before);
  last_moved_ = moved;
  if (journal_.is_open() && !replaying_ &&
      !journal_.append(JournalRecord::kApplyDelta, encode_apply_delta(delta),
                       error)) {
    return false;
  }
  return true;
}

VerdictReplyMsg ServeState::query(const QueryMsg& q) {
  VerdictReplyMsg reply;
  reply.moved = last_moved_;
  const auto start = std::chrono::steady_clock::now();
  const auto finish = [&reply, start] {
    reply.wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  };
  if (!loaded()) {
    reply.error = "no network loaded";
    reply.verdict = static_cast<std::uint8_t>(Verdict::kError);
    finish();
    return reply;
  }
  std::string error;
  const std::unique_ptr<Policy> policy =
      make_policy(parsed_.net, q.policy_spec, error);
  if (policy == nullptr) {
    reply.error = error;
    reply.verdict = static_cast<std::uint8_t>(Verdict::kError);
    finish();
    return reply;
  }

  // ctx: everything about the *question* that can change a verdict. POR /
  // dedup / engine / core count are excluded on purpose — each is pinned
  // verdict-invariant by its own differential suite, and excluding them lets
  // a dedup-off differential arm hit the same entries.
  const std::uint64_t ctx_base =
      hash_combine(hash_str(kCtxSalt, q.policy_spec), q.max_failures);

  const PecSet& pecs = verifier_->pecs();
  const std::vector<PecId> targets = pecs.routed();
  reply.targets = targets.size();
  std::vector<PecId> misses;
  for (const PecId p : targets) {
    const CacheKey key{cones_[p], hash_str(ctx_base, pecs.pecs[p].str())};
    CacheEntry hit;
    if (cache_.lookup(key, hit)) {
      ++reply.cache_hits;
    } else {
      misses.push_back(p);
    }
  }
  reply.reverified = misses.size();
  reply.ok = true;
  if (misses.empty()) {
    reply.verdict = static_cast<std::uint8_t>(Verdict::kHolds);
    finish();
    return reply;
  }

  VerifyOptions qopts = opts_;
  qopts.explore.max_failures = q.max_failures;
  Verifier verifier(parsed_.net, qopts);
  const VerifyResult result = verifier.verify_pecs(misses, *policy);
  for (const PecReport& rep : result.reports) {
    CacheEntry entry;
    Verdict v = rep.result.verdict();
    // ExploreResult::verdict() does not consider `exhaustive`; a hold with
    // probabilistic coverage must never become a clean cached hold.
    if (v == Verdict::kHolds && !rep.result.exhaustive) {
      v = Verdict::kInconclusive;
    }
    entry.verdict = static_cast<std::uint8_t>(v);
    entry.translated = rep.translated_from != kNoPec ? 1 : 0;
    entry.states_explored = rep.result.stats.states_explored;
    entry.states_stored = rep.result.stats.states_stored;
    entry.policy_checks = rep.result.stats.policy_checks;
    std::uint64_t trail = 0;
    for (const Violation& viol : rep.result.violations) {
      trail = hash_str(hash_str(trail, viol.message), viol.trail_text);
      trail = hash_combine(trail, viol.failures.hash());
      if (!viol.message.empty() || !viol.trail_text.empty()) {
        if (reply.violations.size() < 64) {
          reply.violations.push_back(
              ViolationText{rep.pec_str, viol.message});
        }
      }
    }
    entry.trail_hash = trail;
    const CacheKey key{cones_[rep.pec], hash_str(ctx_base, rep.pec_str)};
    cache_.insert(key, entry);
  }
  reply.verdict = static_cast<std::uint8_t>(result.verdict);
  finish();
  return reply;
}

CacheStatsMsg ServeState::cache_stats() const {
  const CacheCounters c = cache_.counters();
  CacheStatsMsg m;
  m.hits = c.hits;
  m.misses = c.misses;
  m.nonclean_bypass = c.nonclean_bypass;
  m.insertions = c.insertions;
  m.warm_loaded = c.warm_loaded;
  m.entries = c.entries;
  return m;
}

bool ServeState::save_cache(std::string& error) {
  if (cache_path_.empty()) return true;
  return cache_.save(cache_path_, error);
}

bool ServeState::attach_journal(const std::string& path, std::string& error) {
  return journal_.open(path, error);
}

bool ServeState::replay_journal(Journal::ReplayResult& stats,
                                std::string& error) {
  if (!journal_.is_open()) {
    error = "no journal attached";
    return false;
  }
  replaying_ = true;
  std::string apply_error;
  const bool ok = Journal::replay(
      journal_.path(),
      [this, &apply_error](JournalRecord type, std::string_view payload) {
        if (type == JournalRecord::kLoadNet) {
          return load(std::string(payload), apply_error);
        }
        ApplyDeltaMsg delta;
        if (!decode_apply_delta(payload, delta)) {
          apply_error = "undecodable kApplyDelta record";
          return false;
        }
        return apply_delta(delta, apply_error);
      },
      stats, error);
  replaying_ = false;
  if (!ok && !apply_error.empty()) error += " (" + apply_error + ")";
  // Chop the torn tail off now: leaving it would put the next accepted
  // append *behind* unparseable bytes, where no future replay can reach it.
  if (ok && stats.torn_tail &&
      !journal_.truncate_tail(stats.dropped_bytes, error)) {
    return false;
  }
  return ok;
}

bool ServeState::compact_journal(std::string& error) {
  if (!journal_.is_open() || !loaded()) return true;
  return journal_.rewrite(config_text_, error);
}

}  // namespace plankton::serve
