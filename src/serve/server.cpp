#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/select.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <list>
#include <thread>

namespace plankton::serve {

namespace {

/// SIGTERM/SIGINT request a graceful drain: the loop notices the flag at the
/// next tick (or EINTR), finishes whatever request is in flight (dispatch is
/// synchronous, so "in flight" always completes before the flag is checked),
/// saves the cache, compacts the journal, and returns 0.
volatile std::sig_atomic_t g_drain_requested = 0;

void on_drain_signal(int) { g_drain_requested = 1; }

int listen_unix(const std::string& path, std::string& error) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    error = "unix socket path too long";
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    error = std::string("bind/listen '" + path + "': ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

int listen_tcp(int port, std::string& error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    error = std::string("bind/listen tcp port ") + std::to_string(port) + ": " +
            std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

bool write_all_fd(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    // MSG_NOSIGNAL: a client that disconnected mid-reply must surface as
    // EPIPE (drop the connection, keep the daemon), not SIGPIPE (whose
    // default disposition kills the whole process).
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

using Clock = std::chrono::steady_clock;

/// One multiplexed client connection.
struct ClientConn {
  int fd = -1;
  bool tcp = false;
  sched::FrameDecoder decoder;
  Clock::time_point last_activity;
  std::uint64_t reply_frames = 0;  ///< replies sent (socket-fault counter)
  std::uint64_t reads = 0;         ///< reads performed (slow-read counter)
};

/// Sends one PKS1 frame to a client, acting out any serve-side socket
/// faults. Returns false when the connection must be closed (fault fired or
/// the peer is gone).
bool send_client_frame(ClientConn& c, const sched::WorkerFaults& wf,
                       sched::MsgType type, std::string_view payload) {
  std::string out;
  sched::encode_frame(out, type, payload);
  ++c.reply_frames;
  if (wf.stall_at_frame != 0 && c.reply_frames == wf.stall_at_frame) {
    std::this_thread::sleep_for(std::chrono::milliseconds(wf.stall_ms));
  }
  if (wf.drop_conn_at_frame != 0 && c.reply_frames == wf.drop_conn_at_frame) {
    ::shutdown(c.fd, SHUT_RDWR);
    return false;
  }
  if (wf.torn_tcp_at_frame != 0 && c.reply_frames == wf.torn_tcp_at_frame) {
    (void)write_all_fd(c.fd, out.data(), out.size() / 2);
    ::shutdown(c.fd, SHUT_RDWR);
    return false;
  }
  return write_all_fd(c.fd, out.data(), out.size());
}

enum class Dispatch { kKeep, kClose, kShutdown };

/// One decoded frame: dispatch + reply. Processing is synchronous — the
/// resident Verifier is single-threaded state — so a kQuery blocks the loop
/// for its duration; the deadlines below are about *stalled sockets*, not
/// slow verification.
Dispatch dispatch_frame(ClientConn& c, const sched::Frame& frame,
                        ServeState& state, const sched::WorkerFaults& wf) {
  VerdictReplyMsg reply;
  std::string error;
  switch (frame.type) {
    case sched::MsgType::kLoadNet: {
      LoadNetMsg m;
      if (!decode_load_net(frame.payload, m)) {
        reply.error = "malformed kLoadNet payload";
      } else if (state.load(m.config_text, error)) {
        reply.ok = true;  // journal append + fsync already happened in load()
      } else {
        reply.error = error;
      }
      if (!reply.ok) reply.verdict = static_cast<std::uint8_t>(Verdict::kError);
      break;
    }
    case sched::MsgType::kApplyDelta: {
      ApplyDeltaMsg m;
      if (!decode_apply_delta(frame.payload, m)) {
        reply.error = "malformed kApplyDelta payload";
      } else if (state.apply_delta(m, error)) {
        reply.ok = true;  // ditto: the ack below is behind the fsync
        reply.moved = state.last_moved();
      } else {
        reply.error = error;
      }
      if (!reply.ok) reply.verdict = static_cast<std::uint8_t>(Verdict::kError);
      break;
    }
    case sched::MsgType::kQuery: {
      QueryMsg m;
      if (!decode_query(frame.payload, m)) {
        reply.error = "malformed kQuery payload";
        reply.verdict = static_cast<std::uint8_t>(Verdict::kError);
      } else {
        reply = state.query(m);
      }
      break;
    }
    case sched::MsgType::kCacheStats: {
      return send_client_frame(c, wf, sched::MsgType::kCacheStats,
                               encode_cache_stats(state.cache_stats()))
                 ? Dispatch::kKeep
                 : Dispatch::kClose;
    }
    case sched::MsgType::kShutdown: {
      // Persist before acking so a client that saw ok=true can rely on the
      // cache + compacted journal being on disk.
      std::string save_error;
      if (!state.save_cache(save_error)) {
        std::fprintf(stderr, "plankton_serve: cache save failed: %s\n",
                     save_error.c_str());
      }
      if (!state.compact_journal(save_error)) {
        std::fprintf(stderr, "plankton_serve: journal compaction failed: %s\n",
                     save_error.c_str());
      }
      reply.ok = true;
      (void)send_client_frame(c, wf, sched::MsgType::kVerdictReply,
                              encode_verdict_reply(reply));
      return Dispatch::kShutdown;
    }
    default: {
      // Shard-side frame types are valid PKS1 but meaningless here.
      reply.error = "unexpected frame type on serve socket";
      reply.verdict = static_cast<std::uint8_t>(Verdict::kError);
      break;
    }
  }
  return send_client_frame(c, wf, sched::MsgType::kVerdictReply,
                           encode_verdict_reply(reply))
             ? Dispatch::kKeep
             : Dispatch::kClose;
}

void enable_keepalive(int fd) {
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof(one));
#if defined(TCP_KEEPIDLE)
  // Aggressive-for-a-LAN probing: a half-open peer (yanked cable, frozen
  // VM) is detected in ~15 s instead of the kernel's two-hour default.
  const int idle = 5, intvl = 2, cnt = 5;
  ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPIDLE, &idle, sizeof(idle));
  ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPINTVL, &intvl, sizeof(intvl));
  ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPCNT, &cnt, sizeof(cnt));
#endif
}

}  // namespace

int run_server(const ServerOptions& opts) {
  // Belt and braces alongside MSG_NOSIGNAL: any write path that slips
  // through without the flag (or a platform that lacks it) still must not
  // let a disconnecting client kill the daemon.
  ::signal(SIGPIPE, SIG_IGN);
  // Graceful drain on SIGTERM/SIGINT. sigaction without SA_RESTART so a
  // signal interrupts select() instead of waiting out the tick.
  g_drain_requested = 0;
  struct sigaction sa {};
  sa.sa_handler = on_drain_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  std::string error;
  ServeState state(opts.verify, opts.cache_path);
  if (!opts.journal_path.empty()) {
    if (!state.attach_journal(opts.journal_path, error)) {
      std::fprintf(stderr, "plankton_serve: %s\n", error.c_str());
      return 3;
    }
    Journal::ReplayResult replayed;
    if (!state.replay_journal(replayed, error)) {
      std::fprintf(stderr, "plankton_serve: journal replay failed: %s\n",
                   error.c_str());
      return 3;
    }
    if (replayed.applied != 0 || replayed.torn_tail) {
      std::fprintf(stderr,
                   "plankton_serve: journal replayed %llu record(s)%s\n",
                   static_cast<unsigned long long>(replayed.applied),
                   replayed.torn_tail ? " (torn tail dropped)" : "");
    }
  }

  int unix_fd = -1;
  int tcp_fd = -1;
  if (!opts.unix_path.empty()) {
    unix_fd = listen_unix(opts.unix_path, error);
    if (unix_fd < 0) {
      std::fprintf(stderr, "plankton_serve: %s\n", error.c_str());
      return 3;
    }
  }
  if (opts.tcp_port != 0) {
    tcp_fd = listen_tcp(opts.tcp_port, error);
    if (tcp_fd < 0) {
      std::fprintf(stderr, "plankton_serve: %s\n", error.c_str());
      if (unix_fd >= 0) ::close(unix_fd);
      return 3;
    }
  }
  if (unix_fd < 0 && tcp_fd < 0) {
    std::fprintf(stderr, "plankton_serve: no listener configured\n");
    return 3;
  }

  const sched::WorkerFaults wf = opts.fault_plan.for_worker(0, 0);
  std::list<ClientConn> clients;
  bool shutdown = false;
  char buf[1 << 16];
  while (!shutdown && g_drain_requested == 0) {
    fd_set fds;
    FD_ZERO(&fds);
    int maxfd = -1;
    const auto arm = [&fds, &maxfd](int fd) {
      FD_SET(fd, &fds);
      if (fd > maxfd) maxfd = fd;
    };
    if (unix_fd >= 0) arm(unix_fd);
    if (tcp_fd >= 0) arm(tcp_fd);
    for (const ClientConn& c : clients) arm(c.fd);
    // The periodic tick: even with every client silent, the loop wakes to
    // enforce read/idle deadlines (the old null-timeout select slept forever
    // with a client stalled mid-frame, wedging everyone else).
    timeval tick{};
    tick.tv_usec = 50 * 1000;
    const int ready = ::select(maxfd + 1, &fds, nullptr, nullptr, &tick);
    if (ready < 0 && errno != EINTR) {
      std::fprintf(stderr, "plankton_serve: select: %s\n",
                   std::strerror(errno));
      break;
    }
    const auto now = Clock::now();

    // Accept new connections (both listeners may be ready in one tick).
    for (const int listener : {unix_fd, tcp_fd}) {
      if (ready <= 0 || listener < 0 || !FD_ISSET(listener, &fds)) continue;
      const int conn = ::accept(listener, nullptr, nullptr);
      if (conn < 0) continue;
      const bool is_tcp = listener == tcp_fd;
      if (clients.size() >= opts.max_clients) {
        // Graceful refusal: a parseable error reply, then close — the
        // client sees "capacity", not a hang or a RST.
        VerdictReplyMsg refuse;
        refuse.error = "server at connection capacity";
        refuse.verdict = static_cast<std::uint8_t>(Verdict::kError);
        std::string out;
        sched::encode_frame(out, sched::MsgType::kVerdictReply,
                            encode_verdict_reply(refuse));
        (void)write_all_fd(conn, out.data(), out.size());
        ::close(conn);
        continue;
      }
      if (is_tcp) enable_keepalive(conn);
      ClientConn c;
      c.fd = conn;
      c.tcp = is_tcp;
      c.last_activity = now;
      clients.push_back(std::move(c));
    }

    for (auto it = clients.begin(); it != clients.end() && !shutdown;) {
      ClientConn& c = *it;
      bool close_conn = false;
      if (ready > 0 && FD_ISSET(c.fd, &fds)) {
        ++c.reads;
        if (wf.slow_read_at != 0 && c.reads == wf.slow_read_at) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(wf.slow_read_ms));
        }
        const ssize_t r = ::read(c.fd, buf, sizeof buf);
        if (r <= 0) {
          close_conn = !(r < 0 && errno == EINTR);
        } else {
          c.last_activity = Clock::now();
          c.decoder.feed(buf, static_cast<std::size_t>(r));
          sched::Frame frame;
          for (;;) {
            const auto status = c.decoder.next(frame);
            if (status == sched::FrameDecoder::Status::kNeedMore) break;
            if (status == sched::FrameDecoder::Status::kError) {
              std::fprintf(stderr, "plankton_serve: bad frame: %s\n",
                           c.decoder.error().c_str());
              close_conn = true;
              break;
            }
            const Dispatch d = dispatch_frame(c, frame, state, wf);
            if (d == Dispatch::kShutdown) {
              shutdown = true;
              break;
            }
            if (d == Dispatch::kClose) {
              close_conn = true;
              break;
            }
          }
        }
      }
      if (!close_conn && !shutdown) {
        const auto age = std::chrono::duration_cast<std::chrono::milliseconds>(
                             now - c.last_activity)
                             .count();
        // Mid-frame stall: bytes are buffered but the frame never finishes.
        if (opts.read_deadline_ms > 0 && c.decoder.buffered() > 0 &&
            age > opts.read_deadline_ms) {
          close_conn = true;
        }
        if (opts.idle_timeout_ms > 0 && age > opts.idle_timeout_ms) {
          close_conn = true;
        }
      }
      if (close_conn || shutdown) {
        ::close(c.fd);
        it = clients.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Drain: identical for kShutdown (already persisted in dispatch, the
  // repeats are idempotent) and SIGTERM/SIGINT.
  std::string drain_error;
  if (!state.save_cache(drain_error)) {
    std::fprintf(stderr, "plankton_serve: cache save failed: %s\n",
                 drain_error.c_str());
  }
  if (!state.compact_journal(drain_error)) {
    std::fprintf(stderr, "plankton_serve: journal compaction failed: %s\n",
                 drain_error.c_str());
  }
  for (ClientConn& c : clients) ::close(c.fd);
  if (unix_fd >= 0) {
    ::close(unix_fd);
    ::unlink(opts.unix_path.c_str());
  }
  if (tcp_fd >= 0) ::close(tcp_fd);
  return 0;
}

int connect_unix(const std::string& path, std::string& error) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    error = "unix socket path too long";
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    error = std::string("connect '" + path + "': ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp(int port, std::string& error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    error = std::string("connect tcp port ") + std::to_string(port) + ": " +
            std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_frame(int fd, sched::MsgType type, std::string_view payload) {
  std::string out;
  sched::encode_frame(out, type, payload);
  return write_all_fd(fd, out.data(), out.size());
}

bool recv_frame(int fd, sched::FrameDecoder& dec, sched::Frame& out,
                std::string& error) {
  char buf[1 << 16];
  for (;;) {
    const auto status = dec.next(out);
    if (status == sched::FrameDecoder::Status::kFrame) return true;
    if (status == sched::FrameDecoder::Status::kError) {
      error = "stream poisoned: " + dec.error();
      return false;
    }
    const ssize_t r = ::read(fd, buf, sizeof buf);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) {
      error = r == 0 ? "connection closed" : std::strerror(errno);
      return false;
    }
    dec.feed(buf, static_cast<std::size_t>(r));
  }
}

}  // namespace plankton::serve
