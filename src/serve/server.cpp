#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/select.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace plankton::serve {

namespace {

int listen_unix(const std::string& path, std::string& error) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    error = "unix socket path too long";
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    error = std::string("bind/listen '" + path + "': ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

int listen_tcp(int port, std::string& error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    error = std::string("bind/listen tcp port ") + std::to_string(port) + ": " +
            std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

bool write_all_fd(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    // MSG_NOSIGNAL: a client that disconnected mid-reply must surface as
    // EPIPE (drop the connection, keep the daemon), not SIGPIPE (whose
    // default disposition kills the whole process).
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// One client connection: frames in, replies out. Returns true when the
/// daemon should shut down (kShutdown seen).
bool serve_connection(int fd, ServeState& state) {
  sched::FrameDecoder decoder;
  sched::Frame frame;
  char buf[1 << 16];
  for (;;) {
    const auto status = decoder.next(frame);
    if (status == sched::FrameDecoder::Status::kError) {
      std::fprintf(stderr, "plankton_serve: bad frame: %s\n",
                   decoder.error().c_str());
      return false;
    }
    if (status == sched::FrameDecoder::Status::kNeedMore) {
      const ssize_t r = ::read(fd, buf, sizeof buf);
      if (r < 0 && errno == EINTR) continue;
      if (r <= 0) return false;  // client went away
      decoder.feed(buf, static_cast<std::size_t>(r));
      continue;
    }
    VerdictReplyMsg reply;
    std::string error;
    switch (frame.type) {
      case sched::MsgType::kLoadNet: {
        LoadNetMsg m;
        if (!decode_load_net(frame.payload, m)) {
          reply.error = "malformed kLoadNet payload";
        } else if (state.load(m.config_text, error)) {
          reply.ok = true;
        } else {
          reply.error = error;
        }
        if (!reply.ok) {
          reply.verdict = static_cast<std::uint8_t>(Verdict::kError);
        }
        break;
      }
      case sched::MsgType::kApplyDelta: {
        ApplyDeltaMsg m;
        if (!decode_apply_delta(frame.payload, m)) {
          reply.error = "malformed kApplyDelta payload";
        } else if (state.apply_delta(m, error)) {
          reply.ok = true;
          reply.moved = state.last_moved();
        } else {
          reply.error = error;
        }
        if (!reply.ok) {
          reply.verdict = static_cast<std::uint8_t>(Verdict::kError);
        }
        break;
      }
      case sched::MsgType::kQuery: {
        QueryMsg m;
        if (!decode_query(frame.payload, m)) {
          reply.error = "malformed kQuery payload";
          reply.verdict = static_cast<std::uint8_t>(Verdict::kError);
        } else {
          reply = state.query(m);
        }
        break;
      }
      case sched::MsgType::kCacheStats: {
        std::string out;
        sched::encode_frame(out, sched::MsgType::kCacheStats,
                            encode_cache_stats(state.cache_stats()));
        if (!write_all_fd(fd, out.data(), out.size())) return false;
        continue;
      }
      case sched::MsgType::kShutdown: {
        std::string save_error;
        if (!state.save_cache(save_error)) {
          std::fprintf(stderr, "plankton_serve: cache save failed: %s\n",
                       save_error.c_str());
        }
        reply.ok = true;
        std::string out;
        sched::encode_frame(out, sched::MsgType::kVerdictReply,
                            encode_verdict_reply(reply));
        (void)write_all_fd(fd, out.data(), out.size());
        return true;
      }
      default: {
        // Shard-side frame types are valid PKS1 but meaningless here.
        reply.error = "unexpected frame type on serve socket";
        reply.verdict = static_cast<std::uint8_t>(Verdict::kError);
        break;
      }
    }
    std::string out;
    sched::encode_frame(out, sched::MsgType::kVerdictReply,
                        encode_verdict_reply(reply));
    if (!write_all_fd(fd, out.data(), out.size())) return false;
  }
}

}  // namespace

int run_server(const ServerOptions& opts) {
  // Belt and braces alongside MSG_NOSIGNAL: any write path that slips
  // through without the flag (or a platform that lacks it) still must not
  // let a disconnecting client kill the daemon.
  ::signal(SIGPIPE, SIG_IGN);
  std::string error;
  int unix_fd = -1;
  int tcp_fd = -1;
  if (!opts.unix_path.empty()) {
    unix_fd = listen_unix(opts.unix_path, error);
    if (unix_fd < 0) {
      std::fprintf(stderr, "plankton_serve: %s\n", error.c_str());
      return 3;
    }
  }
  if (opts.tcp_port != 0) {
    tcp_fd = listen_tcp(opts.tcp_port, error);
    if (tcp_fd < 0) {
      std::fprintf(stderr, "plankton_serve: %s\n", error.c_str());
      if (unix_fd >= 0) ::close(unix_fd);
      return 3;
    }
  }
  if (unix_fd < 0 && tcp_fd < 0) {
    std::fprintf(stderr, "plankton_serve: no listener configured\n");
    return 3;
  }

  ServeState state(opts.verify, opts.cache_path);
  bool shutdown = false;
  while (!shutdown) {
    fd_set fds;
    FD_ZERO(&fds);
    int maxfd = -1;
    if (unix_fd >= 0) {
      FD_SET(unix_fd, &fds);
      maxfd = unix_fd;
    }
    if (tcp_fd >= 0) {
      FD_SET(tcp_fd, &fds);
      if (tcp_fd > maxfd) maxfd = tcp_fd;
    }
    if (::select(maxfd + 1, &fds, nullptr, nullptr, nullptr) < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "plankton_serve: select: %s\n", std::strerror(errno));
      break;
    }
    int listener = -1;
    if (unix_fd >= 0 && FD_ISSET(unix_fd, &fds)) listener = unix_fd;
    if (tcp_fd >= 0 && FD_ISSET(tcp_fd, &fds)) listener = tcp_fd;
    if (listener < 0) continue;
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) continue;
    shutdown = serve_connection(conn, state);
    ::close(conn);
  }
  if (unix_fd >= 0) {
    ::close(unix_fd);
    ::unlink(opts.unix_path.c_str());
  }
  if (tcp_fd >= 0) ::close(tcp_fd);
  return 0;
}

int connect_unix(const std::string& path, std::string& error) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    error = "unix socket path too long";
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    error = std::string("connect '" + path + "': ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp(int port, std::string& error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    error = std::string("connect tcp port ") + std::to_string(port) + ": " +
            std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_frame(int fd, sched::MsgType type, std::string_view payload) {
  std::string out;
  sched::encode_frame(out, type, payload);
  return write_all_fd(fd, out.data(), out.size());
}

bool recv_frame(int fd, sched::FrameDecoder& dec, sched::Frame& out,
                std::string& error) {
  char buf[1 << 16];
  for (;;) {
    const auto status = dec.next(out);
    if (status == sched::FrameDecoder::Status::kFrame) return true;
    if (status == sched::FrameDecoder::Status::kError) {
      error = "stream poisoned: " + dec.error();
      return false;
    }
    const ssize_t r = ::read(fd, buf, sizeof buf);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) {
      error = r == 0 ? "connection closed" : std::strerror(errno);
      return false;
    }
    dec.feed(buf, static_cast<std::size_t>(r));
  }
}

}  // namespace plankton::serve
