#include "serve/verdict_cache.hpp"

#include <cstdio>
#include <vector>

#include "sched/wire.hpp"

namespace plankton::serve {

using wire::get_int;
using wire::put_int;

bool VerdictCache::lookup(const CacheKey& key, CacheEntry& out) {
  Stripe& s = stripe_of(key);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.map.find(key);
  if (it == s.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (!it->second.clean_hold()) {
    nonclean_bypass_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  out = it->second;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool VerdictCache::contains(const CacheKey& key) const {
  const Stripe& s = stripe_of(key);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.map.find(key) != s.map.end();
}

void VerdictCache::insert(const CacheKey& key, const CacheEntry& entry) {
  Stripe& s = stripe_of(key);
  std::lock_guard<std::mutex> lock(s.mu);
  s.map[key] = entry;
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

void VerdictCache::clear() {
  for (Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.map.clear();
  }
}

std::size_t VerdictCache::size() const {
  std::size_t n = 0;
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    n += s.map.size();
  }
  return n;
}

CacheCounters VerdictCache::counters() const {
  CacheCounters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.nonclean_bypass = nonclean_bypass_.load(std::memory_order_relaxed);
  c.insertions = insertions_.load(std::memory_order_relaxed);
  c.warm_loaded = warm_loaded_.load(std::memory_order_relaxed);
  c.entries = size();
  return c;
}

namespace {

constexpr std::size_t kEntryWireBytes =
    8 + 8 +              // key
    1 + 1 +              // verdict, translated
    8 + 8 + 8 + 8 + 8;   // stats digest + trail hash

void put_entry(std::string& out, const CacheKey& key, const CacheEntry& e) {
  put_int(out, key.cone);
  put_int(out, key.ctx);
  put_int(out, e.verdict);
  put_int(out, e.translated);
  put_int(out, e.states_explored);
  put_int(out, e.states_stored);
  put_int(out, e.policy_checks);
  put_int(out, e.elapsed_ns);
  put_int(out, e.trail_hash);
}

bool get_entry(std::string_view& in, CacheKey& key, CacheEntry& e) {
  return get_int(in, key.cone) && get_int(in, key.ctx) &&
         get_int(in, e.verdict) && get_int(in, e.translated) &&
         get_int(in, e.states_explored) && get_int(in, e.states_stored) &&
         get_int(in, e.policy_checks) && get_int(in, e.elapsed_ns) &&
         get_int(in, e.trail_hash);
}

bool read_file(const std::string& path, std::string& out, std::string& error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    error = "cannot open '" + path + "'";
    return false;
  }
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) error = "read error on '" + path + "'";
  return ok;
}

}  // namespace

bool VerdictCache::save(const std::string& path, std::string& error) const {
  std::string blob;
  put_int(blob, kCacheMagic);
  put_int(blob, kCacheVersion);
  put_int(blob, std::uint16_t{0});  // reserved
  std::uint64_t count = 0;
  const std::size_t count_pos = blob.size();
  put_int(blob, count);
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto& [key, entry] : s.map) {
      put_entry(blob, key, entry);
      ++count;
    }
  }
  std::string count_bytes;
  put_int(count_bytes, count);
  blob.replace(count_pos, count_bytes.size(), count_bytes);

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    error = "cannot create '" + tmp + "'";
    return false;
  }
  const bool wrote = std::fwrite(blob.data(), 1, blob.size(), f) == blob.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    error = "write error on '" + tmp + "'";
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    error = "cannot rename '" + tmp + "' to '" + path + "'";
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool VerdictCache::load(const std::string& path, std::string& error) {
  std::string blob;
  if (!read_file(path, blob, error)) return false;
  std::string_view in = blob;
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  std::uint16_t reserved = 0;
  std::uint64_t count = 0;
  if (!get_int(in, magic) || !get_int(in, version) || !get_int(in, reserved) ||
      !get_int(in, count)) {
    error = "truncated cache header in '" + path + "'";
    return false;
  }
  if (magic != kCacheMagic) {
    error = "bad cache magic in '" + path + "'";
    return false;
  }
  if (version != kCacheVersion) {
    error = "unsupported cache version in '" + path + "'";
    return false;
  }
  if (!wire::fits(in, count, kEntryWireBytes)) {
    error = "cache entry count exceeds file size in '" + path + "'";
    return false;
  }
  // Decode fully before touching the live cache: a corrupt tail must not
  // leave a half-loaded state behind.
  std::vector<std::pair<CacheKey, CacheEntry>> loaded;
  loaded.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    CacheKey key;
    CacheEntry e;
    if (!get_entry(in, key, e)) {
      error = "truncated cache entry in '" + path + "'";
      return false;
    }
    if (e.verdict > static_cast<std::uint8_t>(Verdict::kError) ||
        e.translated > 1) {
      error = "corrupt cache entry in '" + path + "'";
      return false;
    }
    loaded.emplace_back(key, e);
  }
  if (!in.empty()) {
    error = "trailing bytes in '" + path + "'";
    return false;
  }
  clear();
  for (const auto& [key, e] : loaded) {
    Stripe& s = stripe_of(key);
    std::lock_guard<std::mutex> lock(s.mu);
    s.map[key] = e;
  }
  warm_loaded_.fetch_add(count, std::memory_order_relaxed);
  return true;
}

}  // namespace plankton::serve
