// Verification-as-a-service: resident state and wire payloads for the
// plankton_serve daemon.
//
// The daemon keeps a parsed network resident and answers policy queries,
// consulting the fingerprint-keyed VerdictCache so an unchanged PEC never
// re-explores. Config deltas are line-level edits against the resident
// config text: apply_delta() re-parses, recomputes every PEC's dependency-
// cone fingerprint, and counts how many PECs *moved* (their cone hash
// changed, or they appeared/disappeared). Nothing is explicitly invalidated
// — a moved PEC simply keys to a fresh cache slot, and the next query
// re-verifies exactly the misses through the existing Verifier (budgets,
// dedup, POR, shards compose unchanged).
//
// Frame payloads ride the PKS1 framing (sched/shard.hpp MsgType 7..11); the
// codecs below follow the same decode contract as the shard ones — false on
// truncated/corrupt/hostile input, output left default-initialized, every
// count validated against the bytes present before it sizes an allocation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "config/parser.hpp"
#include "core/verifier.hpp"
#include "serve/journal.hpp"
#include "serve/verdict_cache.hpp"

namespace plankton::serve {

// ---------------------------------------------------------------------------
// Wire payloads
// ---------------------------------------------------------------------------

/// kLoadNet: full config text replacing any resident network.
struct LoadNetMsg {
  std::string config_text;
};

/// One line-level config edit. `add` appends the line to the resident config;
/// `!add` removes the first exact-match line (error if absent).
struct DeltaOp {
  bool add = true;
  std::string line;
};

/// kApplyDelta: ordered edit batch, applied atomically (all-or-nothing — a
/// batch whose result fails to parse/validate leaves the resident net as-is).
struct ApplyDeltaMsg {
  std::vector<DeltaOp> ops;
};

/// kQuery: policy spec (make_policy grammar below) + query knobs.
struct QueryMsg {
  std::string policy_spec;
  std::uint32_t max_failures = 0;
};

struct ViolationText {
  std::string pec;
  std::string message;
};

/// kVerdictReply: the daemon's answer to kLoadNet / kApplyDelta / kQuery.
struct VerdictReplyMsg {
  bool ok = false;            ///< request processed (false => see `error`)
  std::uint8_t verdict = 0;   ///< plankton::Verdict (queries only)
  std::string error;
  std::uint64_t targets = 0;      ///< PECs the query covered
  std::uint64_t cache_hits = 0;   ///< served from the verdict cache
  std::uint64_t reverified = 0;   ///< PECs actually explored
  std::uint64_t moved = 0;        ///< PECs whose cone moved (last delta)
  std::int64_t wall_ns = 0;
  std::vector<ViolationText> violations;
};

/// kCacheStats reply (the request direction carries an empty payload).
struct CacheStatsMsg {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t nonclean_bypass = 0;
  std::uint64_t insertions = 0;
  std::uint64_t warm_loaded = 0;
  std::uint64_t entries = 0;
};

/// kBootstrap: everything a remote shard worker (plankton_worker) needs to
/// rebuild the coordinator's verification plan from scratch — the network as
/// render_config text, the policy in make_policy grammar, the target PECs,
/// and the flattened exploration/supervision knobs. PEC partitioning,
/// dependency analysis, and dedup classing are deterministic functions of
/// the parsed network, so both sides derive the same task graph
/// independently; the kBootstrapAck plan hash proves they actually did.
struct BootstrapMsg {
  std::string config_text;            ///< render_config output
  std::string policy_spec;            ///< make_policy grammar
  std::vector<std::uint32_t> targets; ///< PecIds the query policy-checks
  std::uint8_t pec_dedup = 1;
  std::uint8_t stop_on_violation = 0;

  // VerifyOptions::explore, field-for-field (bools ride as u8 in {0,1}):
  std::int32_t max_failures = 0;
  std::uint8_t consistent_only = 1;
  std::uint8_t deterministic_nodes = 1;
  std::uint8_t det_nodes_bgp = 1;
  std::uint8_t decision_independence = 1;
  std::uint8_t lec_failures = 1;
  std::uint8_t policy_pruning = 1;
  std::uint8_t suppress_equivalent = 1;
  std::uint8_t merge_updates = 1;
  std::uint8_t ad_cache = 1;
  std::uint8_t por = 1;
  std::uint8_t incremental_expand = 1;
  std::uint8_t find_all_violations = 0;
  std::uint8_t simulation = 0;
  std::uint8_t visited = 0;           ///< VisitedKind, <= kBitstate
  std::uint64_t bloom_bits = 0;
  std::uint64_t max_states = 0;
  std::int64_t time_limit_ms = 0;
  std::uint64_t budget_max_states = 0;
  std::uint64_t budget_max_bytes = 0;
  std::uint8_t budget_degrade_visited = 0;
  /// Budget/wall deadlines travel as *remaining* milliseconds (0 = none):
  /// absolute time points do not survive a host boundary.
  std::int64_t budget_deadline_ms = 0;
  std::int64_t wall_remaining_ms = 0;
  std::uint8_t engine_kind = 0;       ///< SearchEngineKind, validated in decode
  std::uint64_t engine_seed = 1;
  std::uint32_t engine_split_every = 0;
  std::uint8_t engine_restart_policy = 0;  ///< RestartPolicy, <= kFixedPeriod

  // Worker-side shard session knobs (sched::ShardRunOptions subset):
  std::int32_t heartbeat_interval_ms = 0;
  std::uint64_t max_frame_payload = 0;  ///< 0 = the PKS1 default

  // Intra-PEC work export (0 = disabled on this worker):
  std::uint8_t split_export = 0;
  std::uint32_t export_check_every = 0;
  std::uint64_t export_min_frontier = 0;
  std::int32_t export_max_per_run = 0;

  /// Pre-resolved FaultPlan string this worker incarnation must act out
  /// (empty = no faults). The coordinator resolves its plan per slot +
  /// generation before shipping, because the remote session always runs as
  /// slot 0 / generation 1 locally — shipping the raw plan would silently
  /// mis-target every slot-scoped fault.
  std::string fault_plan;
};

std::string encode_bootstrap(const BootstrapMsg& m);
bool decode_bootstrap(std::string_view in, BootstrapMsg& out);

std::string encode_load_net(const LoadNetMsg& m);
bool decode_load_net(std::string_view in, LoadNetMsg& out);
std::string encode_apply_delta(const ApplyDeltaMsg& m);
bool decode_apply_delta(std::string_view in, ApplyDeltaMsg& out);
std::string encode_query(const QueryMsg& m);
bool decode_query(std::string_view in, QueryMsg& out);
std::string encode_verdict_reply(const VerdictReplyMsg& m);
bool decode_verdict_reply(std::string_view in, VerdictReplyMsg& out);
std::string encode_cache_stats(const CacheStatsMsg& m);
bool decode_cache_stats(std::string_view in, CacheStatsMsg& out);

// ---------------------------------------------------------------------------
// Policy specs and config rendering
// ---------------------------------------------------------------------------

/// Builds a policy from a one-line spec: `reach <node>...`, `loop`,
/// `blackhole [<node>...]`, `bounded <limit> <node>...`,
/// `waypoint <via> <source>...`. Returns nullptr and fills `error` on an
/// unknown form or node name.
std::unique_ptr<Policy> make_policy(const Network& net, std::string_view spec,
                                    std::string& error);

/// Renders a network back into parser syntax, deterministically (node-id
/// order). Idempotent through the parser: render(parse(render(net))) ==
/// render(net) — the property the fingerprint-stability tests lean on.
/// `communities` is the route-map community interning from ParsedNetwork
/// (bits without a name render as "C<bit>").
std::string render_config(
    const Network& net,
    const std::unordered_map<std::uint8_t, std::string>& community_names = {});

/// Reverses ParsedNetwork::communities for render_config.
std::unordered_map<std::uint8_t, std::string> community_names_of(
    const std::map<std::string, std::uint8_t>& communities);

// ---------------------------------------------------------------------------
// Resident daemon state
// ---------------------------------------------------------------------------

class ServeState {
 public:
  /// `cache_path` empty = in-memory only; otherwise load() warm-starts from
  /// it when present and save_cache() persists back.
  explicit ServeState(VerifyOptions opts, std::string cache_path = "");

  /// Parses + validates `config_text` and makes it resident. Warm-starts the
  /// verdict cache from `cache_path` on the first successful load.
  bool load(const std::string& config_text, std::string& error);

  /// Applies a line-edit batch. On success recomputes fingerprint cones and
  /// records how many PECs moved; on failure the resident state is unchanged.
  bool apply_delta(const ApplyDeltaMsg& delta, std::string& error);

  /// Answers a policy query over every routed PEC: cache hits (clean holds
  /// under the current cone hash) are served without exploration, the misses
  /// re-verify through the Verifier and their outcomes are inserted.
  VerdictReplyMsg query(const QueryMsg& q);

  [[nodiscard]] CacheStatsMsg cache_stats() const;
  bool save_cache(std::string& error);

  /// Attaches the PKJ1 write-ahead journal at `path`: every subsequent
  /// accepted load()/apply_delta() is appended + fsync'd before returning,
  /// so an ack sent after a successful call is durable by construction.
  bool attach_journal(const std::string& path, std::string& error);

  /// Replays an existing journal at the attached path through the normal
  /// load/apply_delta paths (appends suppressed), rebuilding the pre-crash
  /// resident state bit-identically. Torn/corrupt tails are dropped cleanly
  /// and reported via `stats`; call before serving traffic.
  bool replay_journal(Journal::ReplayResult& stats, std::string& error);

  /// Compacts the journal down to one kLoadNet record of the resident
  /// config (no-op without a journal or resident net).
  bool compact_journal(std::string& error);

  [[nodiscard]] bool journal_attached() const { return journal_.is_open(); }

  [[nodiscard]] bool loaded() const { return verifier_ != nullptr; }
  [[nodiscard]] const Network& net() const { return parsed_.net; }
  [[nodiscard]] const Verifier& verifier() const { return *verifier_; }
  [[nodiscard]] std::uint64_t last_moved() const { return last_moved_; }
  [[nodiscard]] const std::string& config_text() const { return config_text_; }
  [[nodiscard]] VerdictCache& cache() { return cache_; }

  /// Cone hash of PEC `p` under the resident net (exposed for tests).
  [[nodiscard]] std::uint64_t cone_of(PecId p) const { return cones_[p]; }

 private:
  bool make_resident(std::string config_text, std::string& error);
  void recompute_cones();

  VerifyOptions opts_;
  std::string cache_path_;
  bool warm_started_ = false;
  std::string config_text_;
  ParsedNetwork parsed_;
  std::unique_ptr<Verifier> verifier_;
  std::vector<std::uint64_t> cones_;  ///< per-PEC dependency-cone hash
  /// pec.str() -> cone hash before the last delta (moved-PEC accounting).
  std::unordered_map<std::string, std::uint64_t> prev_cones_;
  std::uint64_t last_moved_ = 0;
  VerdictCache cache_;
  Journal journal_;
  /// True while replay_journal() drives load/apply_delta — suppresses
  /// re-appending the records being replayed.
  bool replaying_ = false;
};

}  // namespace plankton::serve
