#include "serve/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "netbase/hash.hpp"
#include "sched/wire.hpp"

namespace plankton::serve {

namespace {

constexpr std::size_t kHeaderBytes =
    sizeof(std::uint32_t) + sizeof(std::uint16_t) + sizeof(std::uint16_t);
// type u16 + reserved u16 + payload_len u64 + checksum u64 around the payload.
constexpr std::size_t kRecordOverheadBytes =
    sizeof(std::uint16_t) + sizeof(std::uint16_t) + sizeof(std::uint64_t) +
    sizeof(std::uint64_t);

std::string errno_str(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool write_all_fd(int fd, std::string_view data, std::string& error) {
  std::size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      error = errno_str("journal write");
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string encode_header() {
  std::string out;
  wire::put_int(out, kJournalMagic);
  wire::put_int(out, kJournalVersion);
  wire::put_int(out, std::uint16_t{0});
  return out;
}

std::string encode_record(JournalRecord type, std::string_view payload) {
  std::string out;
  wire::put_int(out, static_cast<std::uint16_t>(type));
  wire::put_int(out, std::uint16_t{0});
  wire::put_int(out, static_cast<std::uint64_t>(payload.size()));
  out.append(payload);
  wire::put_int(out,
                Journal::record_checksum(static_cast<std::uint16_t>(type),
                                         payload));
  return out;
}

bool read_file(const std::string& path, std::string& out, bool& missing,
               std::string& error) {
  missing = false;
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      missing = true;
      return true;
    }
    error = errno_str("journal open");
    return false;
  }
  out.clear();
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      error = errno_str("journal read");
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return true;
}

bool check_header(std::string_view& in, std::string& error) {
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  std::uint16_t reserved = 0;
  if (!wire::get_int(in, magic) || !wire::get_int(in, version) ||
      !wire::get_int(in, reserved)) {
    error = "journal header truncated";
    return false;
  }
  if (magic != kJournalMagic) {
    error = "journal bad magic";
    return false;
  }
  if (version != kJournalVersion) {
    error = "journal unsupported version";
    return false;
  }
  return true;
}

}  // namespace

std::uint64_t Journal::record_checksum(std::uint16_t type,
                                       std::string_view payload) {
  std::uint64_t h = hash_combine(0x504b4a31ull, type);
  h = hash_combine(h, payload.size());
  for (unsigned char c : payload) h = hash_combine(h, c);
  return h;
}

bool Journal::open(const std::string& path, std::string& error) {
  close();
  // O_APPEND: every write lands at the true end-of-file at write time — in
  // particular *after* truncate_tail chops a torn tail, where a stale file
  // offset would otherwise leave a hole of zero bytes (an unreplayable gap).
  int fd = ::open(path.c_str(), O_RDWR | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    error = errno_str("journal open");
    return false;
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    error = errno_str("journal seek");
    ::close(fd);
    return false;
  }
  if (size == 0) {
    if (!write_all_fd(fd, encode_header(), error) || ::fsync(fd) != 0) {
      if (error.empty()) error = errno_str("journal fsync");
      ::close(fd);
      return false;
    }
  } else {
    // Validate the header without disturbing the append position.
    char hdr[kHeaderBytes];
    ssize_t n = ::pread(fd, hdr, sizeof(hdr), 0);
    std::string_view view(hdr, n > 0 ? static_cast<std::size_t>(n) : 0);
    if (!check_header(view, error)) {
      ::close(fd);
      return false;
    }
  }
  fd_ = fd;
  path_ = path;
  return true;
}

bool Journal::append(JournalRecord type, std::string_view payload,
                     std::string& error) {
  if (fd_ < 0) {
    error = "journal not open";
    return false;
  }
  if (!write_all_fd(fd_, encode_record(type, payload), error)) return false;
  if (::fsync(fd_) != 0) {
    error = errno_str("journal fsync");
    return false;
  }
  return true;
}

bool Journal::rewrite(std::string_view config_text, std::string& error) {
  if (fd_ < 0) {
    error = "journal not open";
    return false;
  }
  const std::string path = path_;
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    error = errno_str("journal tmp open");
    return false;
  }
  std::string blob = encode_header();
  blob += encode_record(JournalRecord::kLoadNet, config_text);
  if (!write_all_fd(fd, blob, error) || ::fsync(fd) != 0) {
    if (error.empty()) error = errno_str("journal tmp fsync");
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    error = errno_str("journal rename");
    ::unlink(tmp.c_str());
    return false;
  }
  // Swap the append fd over to the compacted file.
  return open(path, error);
}

bool Journal::truncate_tail(std::uint64_t dropped_bytes, std::string& error) {
  if (fd_ < 0) {
    error = "journal not open";
    return false;
  }
  const off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0 || static_cast<std::uint64_t>(size) < dropped_bytes) {
    error = "journal truncate: tail larger than file";
    return false;
  }
  if (::ftruncate(fd_, size - static_cast<off_t>(dropped_bytes)) != 0 ||
      ::fsync(fd_) != 0) {
    error = errno_str("journal truncate");
    return false;
  }
  return true;
}

void Journal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  path_.clear();
}

bool Journal::replay(
    const std::string& path,
    const std::function<bool(JournalRecord, std::string_view)>& apply,
    ReplayResult& out, std::string& error) {
  out = ReplayResult{};
  std::string data;
  bool missing = false;
  if (!read_file(path, data, missing, error)) return false;
  if (missing || data.empty()) return true;  // no journal yet — empty state

  std::string_view in(data);
  if (!check_header(in, error)) return false;

  while (!in.empty()) {
    std::string_view record_start = in;
    std::uint16_t type = 0;
    std::uint16_t reserved = 0;
    std::uint64_t len = 0;
    if (!wire::get_int(in, type) || !wire::get_int(in, reserved) ||
        !wire::get_int(in, len) || len > in.size() ||
        in.size() - len < sizeof(std::uint64_t)) {
      // Truncated mid-record: the torn tail of the crash. Drop it.
      out.torn_tail = true;
      out.dropped_bytes = record_start.size();
      return true;
    }
    std::string_view payload = in.substr(0, static_cast<std::size_t>(len));
    in.remove_prefix(static_cast<std::size_t>(len));
    std::uint64_t checksum = 0;
    wire::get_int(in, checksum);
    if (checksum != record_checksum(type, payload) ||
        (type != static_cast<std::uint16_t>(JournalRecord::kLoadNet) &&
         type != static_cast<std::uint16_t>(JournalRecord::kApplyDelta))) {
      // A corrupt record is only droppable as a *tail*: anything after it
      // has no trustworthy framing, so everything from here on is dropped.
      out.torn_tail = true;
      out.dropped_bytes = record_start.size();
      return true;
    }
    if (!apply(static_cast<JournalRecord>(type), payload)) {
      error = "journal replay: record " + std::to_string(out.applied + 1) +
              " rejected";
      return false;
    }
    ++out.applied;
  }
  return true;
}

}  // namespace plankton::serve
