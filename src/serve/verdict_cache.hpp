// Lock-striped concurrent verdict cache for the plankton_serve daemon.
//
// Keyed by (cone, ctx):
//
//   · `cone` is the invalidation half — a fold of the PEC's own
//     PecFingerprint (canon + residue, eqclass/pec_dedup.hpp) with the
//     fingerprints of every PEC in its transitive outcome-dependency cone.
//     A config delta that moves any fingerprint the PEC's verification can
//     observe changes `cone`, so stale entries are never *hit* — they are
//     simply unreachable under the new key. Invalidation is implicit in the
//     key, which is what makes the scheme sound under crashes: there is no
//     separate invalidation step to lose.
//   · `ctx` is the question half — the PEC identity string, the policy spec,
//     and the query knobs that can change a verdict (max failures). Options
//     that are verdict-invariant by construction (POR, dedup, engine kind,
//     core count — each pinned by its own differential suite) are
//     deliberately excluded so a dedup-off differential run hits the same
//     entries.
//
// Soundness rule enforced here, not at call sites: lookup() only ever
// returns clean kHolds entries. Violated / inconclusive / non-exhaustive
// entries are stored (so stats and warm starts see them) but a lookup that
// finds one reports a miss (counted as nonclean_bypass) — those PECs always
// re-verify, per the cache-never-masks-a-violation contract.
//
// Disk format ("PKC1", versioned like the PKS1 frame header): little-endian
// magic u32, version u16, reserved u16, entry count u64, then fixed-width
// entries. load() validates everything and refuses the whole file on any
// mismatch — a truncated or corrupt cache warm-starts empty instead of
// half-poisoned.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "checker/budget.hpp"
#include "netbase/hash.hpp"

namespace plankton::serve {

struct CacheKey {
  std::uint64_t cone = 0;
  std::uint64_t ctx = 0;
  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    return static_cast<std::size_t>(hash_combine(k.cone, k.ctx));
  }
};

/// One cached per-PEC outcome: the verdict plus a SearchStats digest and a
/// hash of the violation trail text (lets a warm hit report how much work it
/// saved, and differential arms compare trails without storing them).
struct CacheEntry {
  std::uint8_t verdict = 0;     ///< plankton::Verdict
  std::uint8_t translated = 0;  ///< verdict transferred from a dedup rep
  std::uint64_t states_explored = 0;
  std::uint64_t states_stored = 0;
  std::uint64_t policy_checks = 0;
  std::int64_t elapsed_ns = 0;
  std::uint64_t trail_hash = 0;

  [[nodiscard]] bool clean_hold() const {
    return verdict == static_cast<std::uint8_t>(Verdict::kHolds);
  }
  bool operator==(const CacheEntry&) const = default;
};

struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t nonclean_bypass = 0;  ///< present but not a clean hold
  std::uint64_t insertions = 0;
  std::uint64_t warm_loaded = 0;      ///< entries restored from disk
  std::uint64_t entries = 0;          ///< current size
};

class VerdictCache {
 public:
  /// True (and fills `out`) only for a present *clean-hold* entry. A present
  /// non-clean entry counts nonclean_bypass and returns false so the caller
  /// re-verifies.
  bool lookup(const CacheKey& key, CacheEntry& out);

  /// True when the key maps to any entry (test/introspection surface —
  /// deliberately not usable to skip verification).
  [[nodiscard]] bool contains(const CacheKey& key) const;

  void insert(const CacheKey& key, const CacheEntry& entry);
  void clear();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] CacheCounters counters() const;

  /// Whole-cache snapshot to/from disk. save() writes atomically
  /// (tmp + rename). load() replaces the cache contents on success; on a
  /// missing, truncated, or corrupt file it returns false, fills `error`,
  /// and leaves the cache unchanged.
  bool save(const std::string& path, std::string& error) const;
  bool load(const std::string& path, std::string& error);

  static constexpr std::uint32_t kCacheMagic = 0x504b4331;  // "PKC1"
  static constexpr std::uint16_t kCacheVersion = 1;

 private:
  static constexpr std::size_t kStripes = 16;
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<CacheKey, CacheEntry, CacheKeyHash> map;
  };

  Stripe& stripe_of(const CacheKey& key) {
    return stripes_[CacheKeyHash{}(key) % kStripes];
  }
  const Stripe& stripe_of(const CacheKey& key) const {
    return stripes_[CacheKeyHash{}(key) % kStripes];
  }

  std::array<Stripe, kStripes> stripes_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> nonclean_bypass_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> warm_loaded_{0};
};

}  // namespace plankton::serve
