// Bit-vector circuits compiled to CNF (Tseitin encoding) on top of the CDCL
// solver — the bit-blasting layer of the Minesweeper-style baseline.
//
// Minesweeper encodes the network's stable-state constraints as SMT over
// bit-vectors and lets Z3 bit-blast them; this layer provides the same
// vocabulary (constants, adders, comparators, multiplexers, boolean
// connectives) so the encoder in encoder.hpp can express identical
// constraints.
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/sat/solver.hpp"

namespace plankton::smt {

using sat::Lit;
using sat::Solver;
using sat::Var;

/// Boolean circuit helper: creates gate outputs as fresh variables with
/// Tseitin clauses.
class Circuit {
 public:
  explicit Circuit(Solver& s) : solver_(s) {
    true_lit_ = sat::pos(solver_.new_var());
    solver_.add_unit(true_lit_);
  }

  [[nodiscard]] Solver& solver() { return solver_; }
  [[nodiscard]] Lit true_lit() const { return true_lit_; }
  [[nodiscard]] Lit false_lit() const { return sat::negate(true_lit_); }
  [[nodiscard]] Lit constant(bool b) const { return b ? true_lit() : false_lit(); }

  [[nodiscard]] Lit fresh() { return sat::pos(solver_.new_var()); }

  Lit and2(Lit a, Lit b);
  Lit or2(Lit a, Lit b);
  Lit xor2(Lit a, Lit b);
  Lit and_all(const std::vector<Lit>& ls);
  Lit or_all(const std::vector<Lit>& ls);
  Lit ite(Lit cond, Lit then_lit, Lit else_lit);

  /// Exactly-one / at-most-k via sequential counters.
  void at_most_k(const std::vector<Lit>& ls, std::uint32_t k);
  void exactly_one(const std::vector<Lit>& ls);

  [[nodiscard]] bool lit_model(Lit l) const {
    return solver_.value(sat::var_of(l)) != sat::sign_of(l);
  }

 private:
  Solver& solver_;
  Lit true_lit_;
};

/// Unsigned bit-vector, little-endian (bits_[0] = LSB).
class BitVec {
 public:
  BitVec() = default;
  BitVec(Circuit& c, int width);  ///< fresh variables
  static BitVec constant(Circuit& c, std::uint64_t value, int width);

  [[nodiscard]] int width() const { return static_cast<int>(bits_.size()); }
  [[nodiscard]] Lit bit(int i) const { return bits_[static_cast<std::size_t>(i)]; }

  /// a + b (widths must match; overflow wraps — callers size widths so the
  /// maximum sum fits).
  static BitVec add(Circuit& c, const BitVec& a, const BitVec& b);
  static BitVec add_const(Circuit& c, const BitVec& a, std::uint64_t k);

  /// Comparison predicates (unsigned).
  static Lit ult(Circuit& c, const BitVec& a, const BitVec& b);
  static Lit ule(Circuit& c, const BitVec& a, const BitVec& b);
  static Lit eq(Circuit& c, const BitVec& a, const BitVec& b);
  static Lit eq_const(Circuit& c, const BitVec& a, std::uint64_t k);

  /// cond ? a : b, bitwise.
  static BitVec mux(Circuit& c, Lit cond, const BitVec& a, const BitVec& b);

  [[nodiscard]] std::uint64_t model_value(const Circuit& c) const;

 private:
  std::vector<Lit> bits_;
};

}  // namespace plankton::smt
