#include "baselines/smt/encoder.hpp"

#include <algorithm>

namespace plankton::smt {
namespace {

/// Tracks the wall budget across the per-prefix queries of one check.
class Budget {
 public:
  explicit Budget(std::chrono::milliseconds total) : total_(total) {
    start_ = std::chrono::steady_clock::now();
  }
  [[nodiscard]] bool timed_out() const {
    return total_.count() > 0 &&
           std::chrono::steady_clock::now() - start_ > total_;
  }
  [[nodiscard]] std::chrono::milliseconds remaining() const {
    if (total_.count() == 0) return std::chrono::milliseconds{0};
    const auto used = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start_);
    const auto left = total_ - used;
    return left.count() > 0 ? left : std::chrono::milliseconds{1};
  }
  [[nodiscard]] std::chrono::nanoseconds elapsed() const {
    return std::chrono::steady_clock::now() - start_;
  }

 private:
  std::chrono::milliseconds total_;
  std::chrono::steady_clock::time_point start_;
};

void absorb_stats(MsResult& r, const sat::Solver& s) {
  r.vars += s.num_vars();
  r.conflicts += s.conflicts();
  r.decisions += s.decisions();
  r.bytes = std::max(r.bytes, s.clause_bytes());
}

}  // namespace

int MsVerifier::cost_bits() const {
  std::uint64_t max_cost = 1;
  for (const Link& l : net_.topo.links()) {
    max_cost = std::max<std::uint64_t>(max_cost, std::max(l.cost_ab, l.cost_ba));
  }
  std::uint64_t bound = max_cost * std::max<std::size_t>(net_.topo.node_count(), 2);
  int bits = 1;
  while ((std::uint64_t{1} << bits) <= bound) ++bits;
  return std::min(bits + 1, 24);
}

std::vector<Lit> MsVerifier::make_failure_vars(Circuit& c) const {
  std::vector<Lit> fail;
  fail.reserve(net_.topo.link_count());
  if (opts_.max_failures == 0) {
    for (LinkId l = 0; l < net_.topo.link_count(); ++l) fail.push_back(c.false_lit());
    return fail;
  }
  for (LinkId l = 0; l < net_.topo.link_count(); ++l) fail.push_back(c.fresh());
  c.at_most_k(fail, static_cast<std::uint32_t>(opts_.max_failures));
  return fail;
}

MsVerifier::OspfLayer MsVerifier::encode_ospf(Circuit& c,
                                              std::span<const NodeId> origins,
                                              const std::vector<Lit>& fail) const {
  const int bits = cost_bits();
  const std::size_t n = net_.topo.node_count();
  OspfLayer layer;
  layer.reach.reserve(n);
  layer.cost.reserve(n);
  std::vector<std::uint8_t> is_origin(n, 0);
  for (const NodeId o : origins) is_origin[o] = 1;

  for (NodeId v = 0; v < n; ++v) {
    if (is_origin[v] != 0) {
      layer.reach.push_back(c.true_lit());
      layer.cost.push_back(BitVec::constant(c, 0, bits));
    } else {
      layer.reach.push_back(c.fresh());
      layer.cost.push_back(BitVec(c, bits));
    }
  }

  for (NodeId v = 0; v < n; ++v) {
    if (is_origin[v] != 0) continue;
    if (!net_.device(v).ospf.enabled) {
      c.solver().add_unit(sat::negate(layer.reach[v]));
      continue;
    }
    std::vector<Lit> usable_neighbors;
    std::vector<Lit> achieve;
    achieve.push_back(sat::negate(layer.reach[v]));
    for (const Adjacency& adj : net_.topo.neighbors(v)) {
      if (!net_.device(adj.neighbor).ospf.enabled) continue;
      const Lit up = sat::negate(fail[adj.link]);
      const Lit via = c.and2(up, layer.reach[adj.neighbor]);
      usable_neighbors.push_back(via);
      const BitVec through =
          BitVec::add_const(c, layer.cost[adj.neighbor],
                            net_.topo.link(adj.link).cost_from(v));
      // Optimality: reach_v ∧ via ⇒ cost_v ≤ cost_m + w.
      const Lit le = BitVec::ule(c, layer.cost[v], through);
      c.solver().add_ternary(sat::negate(layer.reach[v]), sat::negate(via), le);
      // Achievability disjunct: via ∧ cost_v == cost_m + w.
      achieve.push_back(c.and2(via, BitVec::eq(c, layer.cost[v], through)));
    }
    // Reachability: reach_v ⇔ some usable neighbor is reached.
    std::vector<Lit> def = usable_neighbors;
    def.push_back(sat::negate(layer.reach[v]));
    c.solver().add_clause(std::move(def));
    for (const Lit via : usable_neighbors) {
      c.solver().add_binary(sat::negate(via), layer.reach[v]);
    }
    // Achievability: reach_v ⇒ some usable neighbor realizes cost_v.
    c.solver().add_clause(std::move(achieve));
  }
  return layer;
}

Lit MsVerifier::fwd_lit(Circuit& c, const OspfLayer& layer,
                        const std::vector<Lit>& fail, NodeId n,
                        const Adjacency& adj, const Prefix& prefix,
                        std::span<const NodeId> origins) const {
  // Exact-match static routes shadow OSPF (admin distance 1 vs 110).
  for (const StaticRoute& sr : net_.device(n).statics) {
    if (sr.dst != prefix) continue;
    if (sr.drop) return c.false_lit();
    if (sr.via_neighbor != kNoNode) {
      const LinkId l = net_.topo.find_link(n, sr.via_neighbor);
      if (sr.via_neighbor == adj.neighbor && l == adj.link) {
        return sat::negate(fail[l]);
      }
      return c.false_lit();
    }
    // Recursive statics are outside this baseline's scope (as they are
    // outside Minesweeper-comparable benches).
    return c.false_lit();
  }
  const bool self_origin =
      std::find(origins.begin(), origins.end(), n) != origins.end();
  if (self_origin || !net_.device(n).ospf.enabled ||
      !net_.device(adj.neighbor).ospf.enabled) {
    return c.false_lit();
  }
  // OSPF/ECMP: forward to every reached neighbor that realizes the cost.
  const Lit up = sat::negate(fail[adj.link]);
  const BitVec through = BitVec::add_const(c, layer.cost[adj.neighbor],
                                           net_.topo.link(adj.link).cost_from(n));
  Lit f = c.and2(up, layer.reach[adj.neighbor]);
  f = c.and2(f, layer.reach[n]);
  f = c.and2(f, BitVec::eq(c, layer.cost[n], through));
  return f;
}

std::vector<std::pair<Prefix, std::vector<NodeId>>> MsVerifier::ospf_prefixes()
    const {
  std::vector<std::pair<Prefix, std::vector<NodeId>>> out;
  auto add = [&out](const Prefix& p, NodeId n) {
    for (auto& [prefix, origins] : out) {
      if (prefix == p) {
        origins.push_back(n);
        return;
      }
    }
    out.emplace_back(p, std::vector<NodeId>{n});
  };
  for (NodeId n = 0; n < net_.devices.size(); ++n) {
    const auto& dev = net_.device(n);
    if (!dev.ospf.enabled) continue;
    for (const Prefix& p : dev.ospf.originated) add(p, n);
    if (dev.ospf.advertise_loopback && dev.loopback != IpAddr()) {
      add(Prefix::host(dev.loopback), n);
    }
  }
  return out;
}

MsResult MsVerifier::check_loop() {
  MsResult result;
  Budget budget(opts_.budget);
  for (const auto& [prefix, origins] : ospf_prefixes()) {
    if (budget.timed_out()) {
      result.timed_out = true;
      break;
    }
    sat::Solver solver;
    Circuit c(solver);
    const std::vector<Lit> fail = make_failure_vars(c);
    const OspfLayer layer = encode_ospf(c, origins, fail);
    if (budget.timed_out()) {  // encoding alone can exhaust the budget
      absorb_stats(result, solver);
      result.timed_out = true;
      break;
    }
    // Cycle witness: y_v ⇒ some fwd successor with y; assert ∃ y.
    std::vector<Lit> y(net_.topo.node_count());
    for (NodeId v = 0; v < net_.topo.node_count(); ++v) y[v] = c.fresh();
    for (NodeId v = 0; v < net_.topo.node_count(); ++v) {
      std::vector<Lit> clause{sat::negate(y[v])};
      for (const Adjacency& adj : net_.topo.neighbors(v)) {
        const Lit f = fwd_lit(c, layer, fail, v, adj, prefix, origins);
        clause.push_back(c.and2(f, y[adj.neighbor]));
      }
      solver.add_clause(std::move(clause));
    }
    std::vector<Lit> some;
    some.reserve(y.size());
    for (const Lit l : y) some.push_back(l);
    solver.add_clause(std::move(some));

    const sat::Outcome oc = solver.solve(budget.remaining());
    absorb_stats(result, solver);
    if (oc == sat::Outcome::kTimeout) {
      result.timed_out = true;
      break;
    }
    if (oc == sat::Outcome::kSat) {
      result.holds = false;
      result.detail = "loop for prefix " + prefix.str();
      break;
    }
  }
  result.elapsed = budget.elapsed();
  return result;
}

MsResult MsVerifier::check_reachability(NodeId src) {
  MsResult result;
  Budget budget(opts_.budget);
  for (const auto& [prefix, origins] : ospf_prefixes()) {
    if (budget.timed_out()) {
      result.timed_out = true;
      break;
    }
    sat::Solver solver;
    Circuit c(solver);
    const std::vector<Lit> fail = make_failure_vars(c);
    const OspfLayer layer = encode_ospf(c, origins, fail);
    if (budget.timed_out()) {
      absorb_stats(result, solver);
      result.timed_out = true;
      break;
    }
    // Violation query: src unreachable under some ≤k-failure scenario.
    solver.add_unit(sat::negate(layer.reach[src]));
    const sat::Outcome oc = solver.solve(budget.remaining());
    absorb_stats(result, solver);
    if (oc == sat::Outcome::kTimeout) {
      result.timed_out = true;
      break;
    }
    if (oc == sat::Outcome::kSat) {
      result.holds = false;
      result.detail = "prefix " + prefix.str() + " unreachable from " +
                      net_.topo.name(src);
      break;
    }
  }
  result.elapsed = budget.elapsed();
  return result;
}

MsResult MsVerifier::check_bounded_length(NodeId src, std::uint32_t limit) {
  MsResult result;
  Budget budget(opts_.budget);
  const int bits = cost_bits();
  for (const auto& [prefix, origins] : ospf_prefixes()) {
    if (budget.timed_out()) {
      result.timed_out = true;
      break;
    }
    sat::Solver solver;
    Circuit c(solver);
    const std::vector<Lit> fail = make_failure_vars(c);
    const OspfLayer layer = encode_ospf(c, origins, fail);
    if (budget.timed_out()) {
      absorb_stats(result, solver);
      result.timed_out = true;
      break;
    }
    // Hop-count layer over a nondeterministically chosen forwarding branch.
    std::vector<std::uint8_t> is_origin(net_.topo.node_count(), 0);
    for (const NodeId o : origins) is_origin[o] = 1;
    std::vector<BitVec> hops;
    hops.reserve(net_.topo.node_count());
    for (NodeId v = 0; v < net_.topo.node_count(); ++v) {
      hops.push_back(is_origin[v] != 0 ? BitVec::constant(c, 0, bits)
                                       : BitVec(c, bits));
    }
    for (NodeId v = 0; v < net_.topo.node_count(); ++v) {
      if (is_origin[v] != 0) continue;
      // reach_v ⇒ hops_v = hops_m + 1 for some forwarding successor m.
      std::vector<Lit> choice{sat::negate(layer.reach[v])};
      for (const Adjacency& adj : net_.topo.neighbors(v)) {
        const Lit f = fwd_lit(c, layer, fail, v, adj, prefix, origins);
        const BitVec through = BitVec::add_const(c, hops[adj.neighbor], 1);
        choice.push_back(c.and2(f, BitVec::eq(c, hops[v], through)));
      }
      solver.add_clause(std::move(choice));
    }
    // Violation: src reached but some branch longer than `limit`.
    solver.add_unit(layer.reach[src]);
    const BitVec bound = BitVec::constant(c, limit, bits);
    solver.add_unit(BitVec::ult(c, bound, hops[src]));
    const sat::Outcome oc = solver.solve(budget.remaining());
    absorb_stats(result, solver);
    if (oc == sat::Outcome::kTimeout) {
      result.timed_out = true;
      break;
    }
    if (oc == sat::Outcome::kSat) {
      result.holds = false;
      result.detail = "path > " + std::to_string(limit) + " hops to " + prefix.str();
      break;
    }
  }
  result.elapsed = budget.elapsed();
  return result;
}

MsResult MsVerifier::check_ibgp_reachability(std::span<const NodeId> speakers,
                                             std::span<const NodeId> borders) {
  MsResult result;
  Budget budget(opts_.budget);
  sat::Solver solver;
  Circuit c(solver);
  const std::vector<Lit> fail = make_failure_vars(c);
  // The n+1-copies encoding: one IGP instance per speaker loopback.
  std::vector<OspfLayer> instances;
  instances.reserve(speakers.size());
  for (const NodeId s : speakers) {
    const std::vector<NodeId> origin{s};
    instances.push_back(encode_ospf(c, origin, fail));
    if (budget.timed_out()) {
      absorb_stats(result, solver);
      result.timed_out = true;
      result.elapsed = budget.elapsed();
      return result;
    }
  }
  auto instance_of = [&](NodeId speaker) -> const OspfLayer& {
    for (std::size_t i = 0; i < speakers.size(); ++i) {
      if (speakers[i] == speaker) return instances[i];
    }
    return instances[0];
  };
  // Speaker s has a usable route iff some border's loopback is mutually
  // reachable (session up ⇒ advertisement + resolvable next hop).
  std::vector<Lit> violated;
  for (const NodeId s : speakers) {
    const bool is_border =
        std::find(borders.begin(), borders.end(), s) != borders.end();
    if (is_border) continue;
    std::vector<Lit> has;
    for (const NodeId b : borders) {
      if (b == s) continue;
      const Lit up = c.and2(instance_of(b).reach[s], instance_of(s).reach[b]);
      has.push_back(up);
    }
    violated.push_back(sat::negate(c.or_all(has)));
  }
  solver.add_clause(std::move(violated));  // some speaker starves

  const sat::Outcome oc = solver.solve(budget.remaining());
  absorb_stats(result, solver);
  if (oc == sat::Outcome::kTimeout) result.timed_out = true;
  if (oc == sat::Outcome::kSat) {
    result.holds = false;
    result.detail = "an iBGP speaker has no usable route";
  }
  result.elapsed = budget.elapsed();
  return result;
}

MsResult MsVerifier::solve_shortest_paths(NodeId origin,
                                          std::vector<std::uint32_t>& costs_out) {
  MsResult result;
  Budget budget(opts_.budget);
  sat::Solver solver;
  Circuit c(solver);
  std::vector<Lit> fail(net_.topo.link_count(), c.false_lit());
  const std::vector<NodeId> origins{origin};
  const OspfLayer layer = encode_ospf(c, origins, fail);
  const sat::Outcome oc = solver.solve(budget.remaining());
  absorb_stats(result, solver);
  if (oc == sat::Outcome::kTimeout) {
    result.timed_out = true;
  } else if (oc == sat::Outcome::kSat) {
    costs_out.resize(net_.topo.node_count());
    for (NodeId v = 0; v < net_.topo.node_count(); ++v) {
      costs_out[v] = c.lit_model(layer.reach[v])
                         ? static_cast<std::uint32_t>(layer.cost[v].model_value(c))
                         : kInfiniteCost;
    }
  } else {
    result.holds = false;
    result.detail = "shortest-path constraints unsatisfiable";
  }
  result.elapsed = budget.elapsed();
  return result;
}

}  // namespace plankton::smt
