// "Mini-Minesweeper": an SMT-style configuration verifier used as the
// baseline in Figs. 2, 7a, 7d, 7e, 7f (DESIGN.md §3 documents the
// substitution for Z3-backed Minesweeper).
//
// Like Minesweeper, it encodes the *stable converged state* of the routing
// protocols as constraints — per-node reachability bits and bit-blasted cost
// vectors with optimality ("my cost is minimal over my neighbors") and
// achievability ("some neighbor realizes my cost") — plus link-failure
// variables under a cardinality bound, and asks a general-purpose solver for
// a satisfying assignment that violates the policy. UNSAT ⇒ the policy holds
// over every converged data plane with ≤ k failures.
//
// For iBGP (Fig. 7e) it replicates the IGP once per speaker loopback — the
// n+1-copies blowup the paper identifies as the reason Minesweeper falls
// behind ("sometimes over 300× larger").
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "baselines/smt/bitvec.hpp"
#include "config/network.hpp"

namespace plankton::smt {

struct MsOptions {
  int max_failures = 0;
  std::chrono::milliseconds budget{0};  ///< wall budget across all queries
};

struct MsResult {
  bool holds = true;
  bool timed_out = false;
  std::uint64_t vars = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::size_t bytes = 0;  ///< peak clause-database size
  std::chrono::nanoseconds elapsed{0};
  std::string detail;
};

class MsVerifier {
 public:
  MsVerifier(const Network& net, MsOptions opts) : net_(net), opts_(opts) {}

  /// Fig. 7a/7b: no converged state (≤ k failures) has a forwarding loop.
  MsResult check_loop();

  /// Fig. 7d: every origin-announced prefix stays reachable from `src`.
  MsResult check_reachability(NodeId src);

  /// Fig. 7f: all paths from `src` to each prefix have ≤ `limit` hops.
  MsResult check_bounded_length(NodeId src, std::uint32_t limit);

  /// Fig. 7e: every iBGP speaker obtains a usable route to the external
  /// prefix (replicates the IGP per speaker loopback).
  MsResult check_ibgp_reachability(std::span<const NodeId> speakers,
                                   std::span<const NodeId> borders);

  /// Fig. 2: plain single-source shortest paths as a constraint problem
  /// (the "SMT" side of the model-checker-vs-SMT comparison). Returns the
  /// model cost of every node in `costs_out`.
  MsResult solve_shortest_paths(NodeId origin, std::vector<std::uint32_t>& costs_out);

 private:
  struct OspfLayer {
    std::vector<Lit> reach;
    std::vector<BitVec> cost;
  };

  [[nodiscard]] int cost_bits() const;
  std::vector<Lit> make_failure_vars(Circuit& c) const;
  OspfLayer encode_ospf(Circuit& c, std::span<const NodeId> origins,
                        const std::vector<Lit>& fail) const;
  /// FIB forwarding literal n -> m for destination prefix `pi` (applies
  /// exact-match static routes, which shadow OSPF at lower admin distance).
  Lit fwd_lit(Circuit& c, const OspfLayer& layer, const std::vector<Lit>& fail,
              NodeId n, const Adjacency& adj, const Prefix& prefix,
              std::span<const NodeId> origins) const;

  /// Per-prefix groups: (prefix, OSPF origins).
  [[nodiscard]] std::vector<std::pair<Prefix, std::vector<NodeId>>> ospf_prefixes() const;

  const Network& net_;
  MsOptions opts_;
};

}  // namespace plankton::smt
