#include "baselines/smt/bitvec.hpp"

namespace plankton::smt {

Lit Circuit::and2(Lit a, Lit b) {
  if (a == true_lit()) return b;
  if (b == true_lit()) return a;
  if (a == false_lit() || b == false_lit()) return false_lit();
  if (a == b) return a;
  if (a == sat::negate(b)) return false_lit();
  const Lit out = fresh();
  solver_.add_binary(sat::negate(out), a);
  solver_.add_binary(sat::negate(out), b);
  solver_.add_ternary(out, sat::negate(a), sat::negate(b));
  return out;
}

Lit Circuit::or2(Lit a, Lit b) {
  return sat::negate(and2(sat::negate(a), sat::negate(b)));
}

Lit Circuit::xor2(Lit a, Lit b) {
  if (a == false_lit()) return b;
  if (b == false_lit()) return a;
  if (a == true_lit()) return sat::negate(b);
  if (b == true_lit()) return sat::negate(a);
  if (a == b) return false_lit();
  if (a == sat::negate(b)) return true_lit();
  const Lit out = fresh();
  solver_.add_ternary(sat::negate(out), a, b);
  solver_.add_ternary(sat::negate(out), sat::negate(a), sat::negate(b));
  solver_.add_ternary(out, sat::negate(a), b);
  solver_.add_ternary(out, a, sat::negate(b));
  return out;
}

Lit Circuit::and_all(const std::vector<Lit>& ls) {
  Lit acc = true_lit();
  for (const Lit l : ls) acc = and2(acc, l);
  return acc;
}

Lit Circuit::or_all(const std::vector<Lit>& ls) {
  Lit acc = false_lit();
  for (const Lit l : ls) acc = or2(acc, l);
  return acc;
}

Lit Circuit::ite(Lit cond, Lit then_lit, Lit else_lit) {
  if (cond == true_lit()) return then_lit;
  if (cond == false_lit()) return else_lit;
  if (then_lit == else_lit) return then_lit;
  const Lit out = fresh();
  solver_.add_ternary(sat::negate(cond), sat::negate(then_lit), out);
  solver_.add_ternary(sat::negate(cond), then_lit, sat::negate(out));
  solver_.add_ternary(cond, sat::negate(else_lit), out);
  solver_.add_ternary(cond, else_lit, sat::negate(out));
  return out;
}

void Circuit::at_most_k(const std::vector<Lit>& ls, std::uint32_t k) {
  // Sequential counter (Sinz encoding). s[i][j] = "at least j+1 of the first
  // i+1 literals are true".
  const std::size_t n = ls.size();
  if (n == 0 || k >= n) return;
  if (k == 0) {
    for (const Lit l : ls) solver_.add_unit(sat::negate(l));
    return;
  }
  std::vector<std::vector<Lit>> s(n, std::vector<Lit>(k));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < k; ++j) s[i][j] = fresh();
  }
  solver_.add_binary(sat::negate(ls[0]), s[0][0]);
  for (std::uint32_t j = 1; j < k; ++j) solver_.add_unit(sat::negate(s[0][j]));
  for (std::size_t i = 1; i < n; ++i) {
    solver_.add_binary(sat::negate(ls[i]), s[i][0]);
    solver_.add_binary(sat::negate(s[i - 1][0]), s[i][0]);
    for (std::uint32_t j = 1; j < k; ++j) {
      solver_.add_ternary(sat::negate(ls[i]), sat::negate(s[i - 1][j - 1]), s[i][j]);
      solver_.add_binary(sat::negate(s[i - 1][j]), s[i][j]);
    }
    solver_.add_binary(sat::negate(ls[i]), sat::negate(s[i - 1][k - 1]));
  }
}

void Circuit::exactly_one(const std::vector<Lit>& ls) {
  std::vector<Lit> copy = ls;
  solver_.add_clause(std::move(copy));
  at_most_k(ls, 1);
}

BitVec::BitVec(Circuit& c, int width) {
  bits_.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) bits_.push_back(c.fresh());
}

BitVec BitVec::constant(Circuit& c, std::uint64_t value, int width) {
  BitVec out;
  for (int i = 0; i < width; ++i) {
    out.bits_.push_back(c.constant(((value >> i) & 1) != 0));
  }
  return out;
}

BitVec BitVec::add(Circuit& c, const BitVec& a, const BitVec& b) {
  BitVec out;
  Lit carry = c.false_lit();
  for (int i = 0; i < a.width(); ++i) {
    const Lit x = a.bit(i);
    const Lit y = b.bit(i);
    const Lit s = c.xor2(c.xor2(x, y), carry);
    carry = c.or2(c.and2(x, y), c.and2(carry, c.xor2(x, y)));
    out.bits_.push_back(s);
  }
  return out;
}

BitVec BitVec::add_const(Circuit& c, const BitVec& a, std::uint64_t k) {
  return add(c, a, constant(c, k, a.width()));
}

Lit BitVec::ult(Circuit& c, const BitVec& a, const BitVec& b) {
  // From MSB down: a < b iff at the first differing bit, a=0, b=1.
  Lit lt = c.false_lit();
  Lit eq_so_far = c.true_lit();
  for (int i = a.width() - 1; i >= 0; --i) {
    const Lit a_lt_b = c.and2(sat::negate(a.bit(i)), b.bit(i));
    lt = c.or2(lt, c.and2(eq_so_far, a_lt_b));
    eq_so_far = c.and2(eq_so_far, sat::negate(c.xor2(a.bit(i), b.bit(i))));
  }
  return lt;
}

Lit BitVec::ule(Circuit& c, const BitVec& a, const BitVec& b) {
  return sat::negate(ult(c, b, a));
}

Lit BitVec::eq(Circuit& c, const BitVec& a, const BitVec& b) {
  Lit acc = c.true_lit();
  for (int i = 0; i < a.width(); ++i) {
    acc = c.and2(acc, sat::negate(c.xor2(a.bit(i), b.bit(i))));
  }
  return acc;
}

Lit BitVec::eq_const(Circuit& c, const BitVec& a, std::uint64_t k) {
  Lit acc = c.true_lit();
  for (int i = 0; i < a.width(); ++i) {
    const bool bit_set = ((k >> i) & 1) != 0;
    acc = c.and2(acc, bit_set ? a.bit(i) : sat::negate(a.bit(i)));
  }
  return acc;
}

BitVec BitVec::mux(Circuit& c, Lit cond, const BitVec& a, const BitVec& b) {
  BitVec out;
  for (int i = 0; i < a.width(); ++i) {
    out.bits_.push_back(c.ite(cond, a.bit(i), b.bit(i)));
  }
  return out;
}

std::uint64_t BitVec::model_value(const Circuit& c) const {
  std::uint64_t v = 0;
  for (int i = 0; i < width(); ++i) {
    if (c.lit_model(bit(i))) v |= std::uint64_t{1} << i;
  }
  return v;
}

}  // namespace plankton::smt
