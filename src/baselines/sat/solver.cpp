#include "baselines/sat/solver.hpp"

#include <algorithm>
#include <cmath>

namespace plankton::sat {
namespace {

/// Luby restart sequence (unit 256 conflicts).
std::uint64_t luby(std::uint64_t i) {
  std::uint64_t k = 1;
  while ((std::uint64_t{1} << k) - 1 < i + 1) ++k;
  while ((std::uint64_t{1} << (k - 1)) - 1 != i) {
    i -= (std::uint64_t{1} << (k - 1)) - 1;
    k = 1;
    while ((std::uint64_t{1} << k) - 1 < i + 1) ++k;
  }
  return std::uint64_t{1} << (k - 1);
}

}  // namespace

Solver::Solver() = default;

Var Solver::new_var() {
  const Var v = static_cast<Var>(assign_.size());
  assign_.push_back(0);
  phase_.push_back(0);
  level_.push_back(0);
  reason_.push_back(kNoReason);
  activity_.push_back(0.0);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_pos_.push_back(kNotInHeap);
  heap_insert(v);
  return v;
}

void Solver::heap_insert(Var v) {
  if (heap_pos_[v] != kNotInHeap) return;
  heap_pos_[v] = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(v);
  heap_sift_up(heap_.size() - 1);
}

void Solver::heap_sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!heap_less(heap_[parent], heap_[i])) break;
    std::swap(heap_[parent], heap_[i]);
    heap_pos_[heap_[parent]] = static_cast<std::uint32_t>(parent);
    heap_pos_[heap_[i]] = static_cast<std::uint32_t>(i);
    i = parent;
  }
}

void Solver::heap_sift_down(std::size_t i) {
  while (true) {
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    std::size_t best = i;
    if (l < heap_.size() && heap_less(heap_[best], heap_[l])) best = l;
    if (r < heap_.size() && heap_less(heap_[best], heap_[r])) best = r;
    if (best == i) break;
    std::swap(heap_[best], heap_[i]);
    heap_pos_[heap_[best]] = static_cast<std::uint32_t>(best);
    heap_pos_[heap_[i]] = static_cast<std::uint32_t>(i);
    i = best;
  }
}

bool Solver::add_clause(std::vector<Lit> lits) {
  if (unsat_) return false;
  // Incremental use: clauses may be added between solve() calls (e.g. model
  // blocking). Return to the root level first so simplification and the
  // watch invariant are sound.
  backtrack(0);
  // Deduplicate and drop tautologies / falsified literals (root level only).
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  std::vector<Lit> kept;
  for (const Lit l : lits) {
    if (std::find(kept.begin(), kept.end(), negate(l)) != kept.end()) {
      return true;  // tautology
    }
    const int v = lit_value(l);
    if (v == 1 && level_[var_of(l)] == 0) return true;  // already satisfied
    if (v == -1 && level_[var_of(l)] == 0) continue;    // falsified at root
    kept.push_back(l);
  }
  if (kept.empty()) {
    unsat_ = true;
    return false;
  }
  if (kept.size() == 1) {
    if (lit_value(kept[0]) == 0) {
      enqueue(kept[0], kNoReason);
      if (propagate() != kNoReason) {
        unsat_ = true;
        return false;
      }
    }
    return true;
  }
  clauses_.push_back(Clause{std::move(kept), false});
  attach(static_cast<ClauseRef>(clauses_.size() - 1));
  return true;
}

void Solver::attach(ClauseRef cr) {
  const auto& c = clauses_[cr].lits;
  watches_[negate(c[0])].push_back(cr);
  watches_[negate(c[1])].push_back(cr);
}

void Solver::enqueue(Lit l, ClauseRef reason) {
  const Var v = var_of(l);
  assign_[v] = sign_of(l) ? -1 : 1;
  phase_[v] = sign_of(l) ? 0 : 1;
  level_[v] = trail_lim_.empty() ? 0 : static_cast<std::uint32_t>(trail_lim_.size());
  reason_[v] = reason;
  trail_.push_back(l);
}

Solver::ClauseRef Solver::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++propagations_;
    auto& ws = watches_[p];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < ws.size(); ++i) {
      const ClauseRef cr = ws[i];
      auto& lits = clauses_[cr].lits;
      // Ensure the falsified literal is lits[1].
      const Lit false_lit = negate(p);
      if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
      if (lit_value(lits[0]) == 1) {
        ws[keep++] = cr;  // clause satisfied by the other watch
        continue;
      }
      // Look for a new watch.
      bool moved = false;
      for (std::size_t k = 2; k < lits.size(); ++k) {
        if (lit_value(lits[k]) != -1) {
          std::swap(lits[1], lits[k]);
          watches_[negate(lits[1])].push_back(cr);
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflict.
      ws[keep++] = cr;
      if (lit_value(lits[0]) == -1) {
        // Conflict: restore remaining watchers and report.
        for (std::size_t k = i + 1; k < ws.size(); ++k) ws[keep++] = ws[k];
        ws.resize(keep);
        qhead_ = trail_.size();
        return cr;
      }
      enqueue(lits[0], cr);
    }
    ws.resize(keep);
  }
  return kNoReason;
}

void Solver::bump(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
    // Activities rescaled uniformly: heap order is unchanged.
  }
  if (heap_pos_[v] != kNotInHeap) heap_sift_up(heap_pos_[v]);
}

void Solver::analyze(ClauseRef conflict, std::vector<Lit>& learned,
                     std::uint32_t& btlevel) {
  learned.clear();
  learned.push_back(0);  // placeholder for the asserting literal
  int counter = 0;
  Lit p = 0;
  bool have_p = false;
  ClauseRef reason = conflict;
  std::size_t index = trail_.size();
  const std::uint32_t current_level = static_cast<std::uint32_t>(trail_lim_.size());

  while (true) {
    const auto& lits = clauses_[reason].lits;
    for (std::size_t i = have_p ? 1 : 0; i < lits.size(); ++i) {
      const Lit q = lits[i];
      const Var v = var_of(q);
      if (seen_[v] != 0 || level_[v] == 0) continue;
      seen_[v] = 1;
      bump(v);
      if (level_[v] >= current_level) {
        ++counter;
      } else {
        learned.push_back(q);
      }
    }
    // Find the next literal on the trail to resolve on.
    while (seen_[var_of(trail_[index - 1])] == 0) --index;
    p = trail_[--index];
    seen_[var_of(p)] = 0;
    --counter;
    if (counter == 0) break;
    reason = reason_[var_of(p)];
    have_p = true;
    // When the reason clause has p as lits[0] we skip it via have_p.
    // Reason clauses always store the implied literal first? Not guaranteed:
    // put it first now.
    auto& rl = clauses_[reason].lits;
    for (std::size_t i = 0; i < rl.size(); ++i) {
      if (rl[i] == p) {
        std::swap(rl[0], rl[i]);
        break;
      }
    }
  }
  learned[0] = negate(p);

  // Recursive minimization: drop literals implied by the rest.
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < learned.size(); ++i) {
    abstract_levels |= std::uint32_t{1} << (level_[var_of(learned[i])] & 31);
  }
  to_clear_.clear();
  for (std::size_t i = 1; i < learned.size(); ++i) {
    seen_[var_of(learned[i])] = 1;
    to_clear_.push_back(var_of(learned[i]));
  }
  std::size_t keep = 1;
  for (std::size_t i = 1; i < learned.size(); ++i) {
    if (reason_[var_of(learned[i])] == kNoReason ||
        !redundant(learned[i], abstract_levels)) {
      learned[keep++] = learned[i];
    }
  }
  learned.resize(keep);
  for (const Var v : to_clear_) seen_[v] = 0;  // includes redundant()'s marks

  // Backtrack level: max level among learned[1..].
  btlevel = 0;
  std::size_t max_i = 1;
  for (std::size_t i = 1; i < learned.size(); ++i) {
    if (level_[var_of(learned[i])] > btlevel) {
      btlevel = level_[var_of(learned[i])];
      max_i = i;
    }
  }
  if (learned.size() > 1) std::swap(learned[1], learned[max_i]);
}

bool Solver::redundant(Lit l, std::uint32_t abstract_levels) {
  // DFS over the implication graph: l is redundant if every path terminates
  // in seen literals or level-0 assignments.
  std::vector<Lit> stack{l};
  const std::size_t mark = to_clear_.size();
  while (!stack.empty()) {
    const Lit cur = stack.back();
    stack.pop_back();
    const ClauseRef cr = reason_[var_of(cur)];
    if (cr == kNoReason) {
      // Roll back only the marks added during this (failed) probe.
      for (std::size_t i = mark; i < to_clear_.size(); ++i) seen_[to_clear_[i]] = 0;
      to_clear_.resize(mark);
      return false;
    }
    for (const Lit q : clauses_[cr].lits) {
      const Var v = var_of(q);
      if (v == var_of(cur) || seen_[v] != 0 || level_[v] == 0) continue;
      if (reason_[v] == kNoReason ||
          ((std::uint32_t{1} << (level_[v] & 31)) & abstract_levels) == 0) {
        for (std::size_t i = mark; i < to_clear_.size(); ++i) seen_[to_clear_[i]] = 0;
        to_clear_.resize(mark);
        return false;
      }
      seen_[v] = 1;
      to_clear_.push_back(v);
      stack.push_back(q);
    }
  }
  // Success: marks stay (memoization) and are cleared by analyze() at the end.
  return true;
}

void Solver::backtrack(std::uint32_t target) {
  if (trail_lim_.size() <= target) return;
  const std::uint32_t mark = trail_lim_[target];
  for (std::size_t i = trail_.size(); i > mark; --i) {
    const Var v = var_of(trail_[i - 1]);
    assign_[v] = 0;
    reason_[v] = kNoReason;
    heap_insert(v);
  }
  trail_.resize(mark);
  trail_lim_.resize(target);
  qhead_ = trail_.size();
}

Lit Solver::pick_branch() {
  while (!heap_.empty()) {
    const Var v = heap_[0];
    heap_pos_[v] = kNotInHeap;
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_pos_[heap_[0]] = 0;
      heap_sift_down(0);
    }
    if (assign_[v] == 0) return phase_[v] != 0 ? pos(v) : neg(v);
  }
  return ~Lit{0};
}

void Solver::reduce_learned() {
  // Clause deletion is deliberately omitted: our encodings stay small enough
  // and keeping all learned clauses makes runs deterministic.
}

Outcome Solver::solve(std::chrono::milliseconds budget) {
  if (unsat_) return Outcome::kUnsat;
  const bool timed = budget.count() > 0;
  const auto deadline = std::chrono::steady_clock::now() + budget;
  std::uint64_t restart_idx = 0;
  std::uint64_t conflict_budget = 256 * luby(restart_idx);
  std::uint64_t conflicts_here = 0;
  std::vector<Lit> learned;

  std::uint64_t steps = 0;
  while (true) {
    const ClauseRef conflict = propagate();
    if (conflict != kNoReason) {
      ++conflicts_;
      ++conflicts_here;
      if (trail_lim_.empty()) return Outcome::kUnsat;
      std::uint32_t btlevel = 0;
      analyze(conflict, learned, btlevel);
      backtrack(btlevel);
      if (learned.size() == 1) {
        enqueue(learned[0], kNoReason);
      } else {
        clauses_.push_back(Clause{learned, true});
        ++learned_count_;
        const auto cr = static_cast<ClauseRef>(clauses_.size() - 1);
        attach(cr);
        enqueue(learned[0], cr);
      }
      decay();
      continue;
    }
    if (timed && (++steps & 0x3ff) == 0 &&
        std::chrono::steady_clock::now() > deadline) {
      return Outcome::kTimeout;
    }
    if (conflicts_here >= conflict_budget) {
      conflicts_here = 0;
      conflict_budget = 256 * luby(++restart_idx);
      backtrack(0);
      continue;
    }
    const Lit next = pick_branch();
    if (next == ~Lit{0}) return Outcome::kSat;
    ++decisions_;
    trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
    enqueue(next, kNoReason);
  }
}

std::size_t Solver::clause_bytes() const {
  std::size_t total = 0;
  for (const auto& c : clauses_) {
    total += sizeof(Clause) + c.lits.capacity() * sizeof(Lit);
  }
  for (const auto& w : watches_) total += w.capacity() * sizeof(ClauseRef);
  return total;
}

}  // namespace plankton::sat
