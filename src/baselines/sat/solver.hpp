// A from-scratch CDCL SAT solver — the search engine of the Minesweeper-style
// baseline (DESIGN.md §3: Minesweeper bit-blasts its SMT constraints; our
// encoder produces the same constraint shape and this solver provides the
// same kind of general-purpose search whose scaling the paper compares
// against).
//
// Features: two-watched-literal propagation, first-UIP clause learning with
// recursive minimization, VSIDS branching with phase saving, Luby restarts,
// and a wall-clock budget (the paper reports Minesweeper timeouts).
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

namespace plankton::sat {

/// Literal: variable v (0-based) positive -> 2v, negated -> 2v+1.
using Lit = std::uint32_t;
using Var = std::uint32_t;

[[nodiscard]] constexpr Lit pos(Var v) { return v << 1; }
[[nodiscard]] constexpr Lit neg(Var v) { return (v << 1) | 1; }
[[nodiscard]] constexpr Lit negate(Lit l) { return l ^ 1; }
[[nodiscard]] constexpr Var var_of(Lit l) { return l >> 1; }
[[nodiscard]] constexpr bool sign_of(Lit l) { return (l & 1) != 0; }

enum class Outcome : std::uint8_t { kSat, kUnsat, kTimeout };

class Solver {
 public:
  Solver();

  Var new_var();
  [[nodiscard]] std::size_t num_vars() const { return assign_.size(); }

  /// Adds a clause; returns false if the database is already unsatisfiable.
  bool add_clause(std::vector<Lit> lits);
  bool add_unit(Lit l) { return add_clause({l}); }
  bool add_binary(Lit a, Lit b) { return add_clause({a, b}); }
  bool add_ternary(Lit a, Lit b, Lit c) { return add_clause({a, b, c}); }

  Outcome solve(std::chrono::milliseconds budget = std::chrono::milliseconds{0});

  /// Model value of a variable after kSat.
  [[nodiscard]] bool value(Var v) const { return assign_[v] == 1; }

  // Statistics.
  [[nodiscard]] std::uint64_t conflicts() const { return conflicts_; }
  [[nodiscard]] std::uint64_t decisions() const { return decisions_; }
  [[nodiscard]] std::uint64_t propagations() const { return propagations_; }
  [[nodiscard]] std::size_t clause_bytes() const;

 private:
  struct Clause {
    std::vector<Lit> lits;
    bool learned = false;
  };
  using ClauseRef = std::uint32_t;
  static constexpr ClauseRef kNoReason = ~ClauseRef{0};

  [[nodiscard]] int lit_value(Lit l) const {
    const std::int8_t a = assign_[var_of(l)];
    if (a == 0) return 0;
    return (a == 1) == !sign_of(l) ? 1 : -1;
  }

  void enqueue(Lit l, ClauseRef reason);
  ClauseRef propagate();
  void analyze(ClauseRef conflict, std::vector<Lit>& learned, std::uint32_t& btlevel);
  [[nodiscard]] bool redundant(Lit l, std::uint32_t abstract_levels);
  void backtrack(std::uint32_t level);
  [[nodiscard]] Lit pick_branch();
  void bump(Var v);
  void decay() { var_inc_ /= 0.95; }
  void attach(ClauseRef cr);
  void reduce_learned();

  std::vector<Clause> clauses_;
  std::vector<std::vector<ClauseRef>> watches_;  // per literal
  std::vector<std::int8_t> assign_;              // 0 unassigned, 1 true, -1 false
  std::vector<std::uint8_t> phase_;              // saved phases
  std::vector<std::uint32_t> level_;
  std::vector<ClauseRef> reason_;
  std::vector<Lit> trail_;
  std::vector<std::uint32_t> trail_lim_;
  std::size_t qhead_ = 0;

  // Indexed max-heap over variable activity (VSIDS).
  void heap_insert(Var v);
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);
  [[nodiscard]] bool heap_less(Var a, Var b) const {
    return activity_[a] < activity_[b];
  }

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  std::vector<Var> heap_;
  std::vector<std::uint32_t> heap_pos_;  // per var; kNotInHeap when absent
  static constexpr std::uint32_t kNotInHeap = ~std::uint32_t{0};
  std::vector<std::uint8_t> seen_;
  std::vector<Var> to_clear_;  // vars marked seen during minimization

  bool unsat_ = false;
  std::uint64_t conflicts_ = 0, decisions_ = 0, propagations_ = 0;
  std::uint64_t learned_count_ = 0;
};

}  // namespace plankton::sat
