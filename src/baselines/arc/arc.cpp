#include "baselines/arc/arc.hpp"

#include <algorithm>
#include <queue>

namespace plankton::arc {

MaxFlow::MaxFlow(std::size_t nodes) : graph_(nodes), level_(nodes), iter_(nodes) {}

void MaxFlow::add_undirected_edge(NodeId a, NodeId b) {
  // Undirected capacity 1 in each direction: max-flow equals the number of
  // edge-disjoint paths, i.e. the min number of link failures disconnecting
  // the pair.
  const std::size_t ia = graph_[a].size();
  const std::size_t ib = graph_[b].size();
  graph_[a].push_back(Arc{b, 1, ib});
  graph_[b].push_back(Arc{a, 1, ia});
}

bool MaxFlow::bfs(NodeId s, NodeId t) {
  std::fill(level_.begin(), level_.end(), -1);
  std::queue<NodeId> q;
  level_[s] = 0;
  q.push(s);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (const Arc& a : graph_[v]) {
      if (a.cap > 0 && level_[a.to] < 0) {
        level_[a.to] = level_[v] + 1;
        q.push(a.to);
      }
    }
  }
  return level_[t] >= 0;
}

std::uint32_t MaxFlow::dfs(NodeId v, NodeId t, std::uint32_t pushed) {
  if (v == t) return pushed;
  for (std::size_t& i = iter_[v]; i < graph_[v].size(); ++i) {
    Arc& a = graph_[v][i];
    if (a.cap == 0 || level_[a.to] != level_[v] + 1) continue;
    const std::uint32_t got = dfs(a.to, t, std::min(pushed, a.cap));
    if (got > 0) {
      a.cap -= got;
      graph_[a.to][a.rev].cap += got;
      return got;
    }
  }
  return 0;
}

std::uint32_t MaxFlow::run(NodeId s, NodeId t) {
  std::uint32_t flow = 0;
  while (bfs(s, t)) {
    std::fill(iter_.begin(), iter_.end(), 0);
    while (const std::uint32_t pushed = dfs(s, t, ~std::uint32_t{0})) {
      flow += pushed;
    }
  }
  return flow;
}

bool ArcVerifier::pair_reachable_under(NodeId src, NodeId dst, int k) const {
  // ARC builds the model per pair; replicate that cost structure.
  MaxFlow mf(net_.topo.node_count());
  for (const Link& l : net_.topo.links()) mf.add_undirected_edge(l.a, l.b);
  return mf.run(src, dst) > static_cast<std::uint32_t>(k);
}

ArcResult ArcVerifier::check_all_to_all(std::span<const NodeId> nodes, int k) {
  const auto start = std::chrono::steady_clock::now();
  ArcResult result;
  for (const NodeId s : nodes) {
    for (const NodeId t : nodes) {
      if (s == t) continue;
      ++result.pairs_checked;
      MaxFlow mf(net_.topo.node_count());
      for (const Link& l : net_.topo.links()) mf.add_undirected_edge(l.a, l.b);
      const std::uint32_t cut = mf.run(s, t);
      result.min_cut_min = std::min<std::uint64_t>(result.min_cut_min, cut);
      if (cut <= static_cast<std::uint32_t>(k)) {
        result.holds = false;
        result.detail = net_.topo.name(s) + " -> " + net_.topo.name(t) +
                        " separable by " + std::to_string(cut) + " failures";
        result.elapsed = std::chrono::steady_clock::now() - start;
        return result;
      }
    }
  }
  result.elapsed = std::chrono::steady_clock::now() - start;
  return result;
}

}  // namespace plankton::arc
