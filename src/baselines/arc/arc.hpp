// ARC-style baseline (paper §5, Fig. 7g; DESIGN.md §3).
//
// ARC verifies shortest-path routing under failures with graph algorithms:
// for each (source, destination) pair it builds an extended topology graph
// and decides "reachable under every ≤k link failures" via min-cut — the
// property holds iff the min cut exceeds k. Because OSPF falls back to any
// surviving path, the ETG for reachability is the unit-capacity topology and
// min-cut equals edge connectivity. Like ARC, this implementation builds a
// separate model per source-destination pair (the cost structure the paper
// calls out), computing max-flow with Dinic's algorithm.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "config/network.hpp"

namespace plankton::arc {

/// Dinic max-flow on a unit-capacity undirected graph. Exposed for tests.
class MaxFlow {
 public:
  explicit MaxFlow(std::size_t nodes);
  void add_undirected_edge(NodeId a, NodeId b);
  /// Max flow == min cut (edge connectivity when capacities are 1).
  std::uint32_t run(NodeId s, NodeId t);

 private:
  struct Arc {
    NodeId to;
    std::uint32_t cap;
    std::size_t rev;
  };
  bool bfs(NodeId s, NodeId t);
  std::uint32_t dfs(NodeId v, NodeId t, std::uint32_t pushed);

  std::vector<std::vector<Arc>> graph_;
  std::vector<std::int32_t> level_;
  std::vector<std::size_t> iter_;
};

struct ArcResult {
  bool holds = true;
  std::uint64_t pairs_checked = 0;
  std::uint64_t min_cut_min = ~std::uint64_t{0};
  std::chrono::nanoseconds elapsed{0};
  std::string detail;
};

class ArcVerifier {
 public:
  explicit ArcVerifier(const Network& net) : net_(net) {}

  /// All-to-all reachability among `nodes` under every failure scenario of at
  /// most `k` links.
  ArcResult check_all_to_all(std::span<const NodeId> nodes, int k);

  /// Single-pair variant.
  [[nodiscard]] bool pair_reachable_under(NodeId src, NodeId dst, int k) const;

 private:
  const Network& net_;
};

}  // namespace plankton::arc
