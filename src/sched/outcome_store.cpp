#include "sched/outcome_store.hpp"

#include <algorithm>

#include "netbase/hash.hpp"

namespace plankton {

/// One outcome per upstream PEC, answering IGP-cost and next-hop queries by
/// locating the PEC of the queried address.
class OutcomeStore::Composite final : public UpstreamResolver {
 public:
  Composite(const OutcomeStore& store, std::vector<std::pair<PecId, const PecOutcome*>> picks)
      : store_(store), picks_(std::move(picks)) {
    std::uint64_t h = 0x5eed;
    for (const auto& [pec, out] : picks_) {
      h = hash_combine(h, hash_combine(pec, out->hash));
    }
    hash_ = h;
  }

  [[nodiscard]] std::uint32_t igp_cost(NodeId from, IpAddr target) const override {
    const PecOutcome* out = outcome_for(target);
    if (out == nullptr || from >= out->igp_cost.size()) return kInfiniteCost;
    return out->igp_cost[from];
  }

  [[nodiscard]] std::span<const NodeId> nexthops_towards(
      NodeId from, IpAddr target) const override {
    const PecOutcome* out = outcome_for(target);
    if (out == nullptr) return {};
    const FibEntry& e = out->dp.at(from);
    if (e.kind != FwdKind::kForward) return {};
    return e.nexthops;
  }

  [[nodiscard]] std::uint64_t outcome_hash() const override { return hash_; }

 private:
  [[nodiscard]] const PecOutcome* outcome_for(IpAddr target) const {
    const PecId pec = store_.pecs_.find(target);
    for (const auto& [id, out] : picks_) {
      if (id == pec) return out;
    }
    return nullptr;
  }

  const OutcomeStore& store_;
  std::vector<std::pair<PecId, const PecOutcome*>> picks_;
  std::uint64_t hash_ = 0;
};

OutcomeStore::OutcomeStore(const Network& net, const PecSet& pecs)
    : net_(net), pecs_(pecs) {}

OutcomeStore::~OutcomeStore() = default;

void OutcomeStore::put(PecId pec, std::vector<PecOutcome> outcomes) {
  const std::scoped_lock lock(mu_);
  outcomes_[pec] = std::move(outcomes);
}

bool OutcomeStore::has(PecId pec) const {
  const std::scoped_lock lock(mu_);
  return outcomes_.contains(pec);
}

std::span<const PecOutcome> OutcomeStore::get(PecId pec) const {
  const std::scoped_lock lock(mu_);
  const auto it = outcomes_.find(pec);
  if (it == outcomes_.end()) return {};
  return it->second;
}

std::vector<const UpstreamResolver*> OutcomeStore::combos(
    std::span<const PecId> deps, const FailureSet& failures) const {
  const std::scoped_lock lock(mu_);
  // Collect, per dependency, the outcomes recorded under this failure set.
  std::vector<std::vector<const PecOutcome*>> choices;
  for (const PecId dep : deps) {
    const auto it = outcomes_.find(dep);
    if (it == outcomes_.end()) return {};
    std::vector<const PecOutcome*> matching;
    for (const PecOutcome& out : it->second) {
      if (out.failures == failures) matching.push_back(&out);
    }
    if (matching.empty()) return {};
    choices.push_back(std::move(matching));
  }
  // Cross product (usually 1x1x...x1: real networks converge deterministically
  // for the recursive PECs, §6).
  std::vector<const UpstreamResolver*> result;
  std::vector<std::size_t> idx(choices.size(), 0);
  while (true) {
    std::vector<std::pair<PecId, const PecOutcome*>> picks;
    picks.reserve(deps.size());
    for (std::size_t i = 0; i < deps.size(); ++i) {
      picks.emplace_back(deps[i], choices[i][idx[i]]);
    }
    resolvers_.push_back(std::make_unique<Composite>(*this, std::move(picks)));
    result.push_back(resolvers_.back().get());
    // Advance the mixed-radix counter.
    std::size_t i = 0;
    while (i < idx.size()) {
      if (++idx[i] < choices[i].size()) break;
      idx[i] = 0;
      ++i;
    }
    if (i == idx.size()) break;
  }
  return result;
}

}  // namespace plankton
