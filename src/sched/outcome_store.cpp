#include "sched/outcome_store.hpp"

#include <algorithm>
#include <cstring>

#include "netbase/hash.hpp"
#include "sched/wire.hpp"

namespace plankton {
namespace {

using wire::get_int;
using wire::put_int;

constexpr std::uint32_t kWireMagic = 0x504b4f31;  // "PKO1"

}  // namespace

/// One outcome per upstream PEC, answering IGP-cost and next-hop queries by
/// locating the PEC of the queried address.
class OutcomeStore::Composite final : public UpstreamResolver {
 public:
  Composite(const OutcomeStore& store, std::vector<std::pair<PecId, const PecOutcome*>> picks)
      : store_(store), picks_(std::move(picks)) {
    std::uint64_t h = 0x5eed;
    for (const auto& [pec, out] : picks_) {
      h = hash_combine(h, hash_combine(pec, out->hash));
    }
    hash_ = h;
  }

  [[nodiscard]] std::uint32_t igp_cost(NodeId from, IpAddr target) const override {
    const PecOutcome* out = outcome_for(target);
    if (out == nullptr || from >= out->igp_cost.size()) return kInfiniteCost;
    return out->igp_cost[from];
  }

  [[nodiscard]] std::span<const NodeId> nexthops_towards(
      NodeId from, IpAddr target) const override {
    const PecOutcome* out = outcome_for(target);
    if (out == nullptr) return {};
    const FibEntry& e = out->dp.at(from);
    if (e.kind != FwdKind::kForward) return {};
    return e.nexthops;
  }

  [[nodiscard]] std::uint64_t outcome_hash() const override { return hash_; }

 private:
  [[nodiscard]] const PecOutcome* outcome_for(IpAddr target) const {
    const PecId pec = store_.pecs_.find(target);
    for (const auto& [id, out] : picks_) {
      if (id == pec) return out;
    }
    return nullptr;
  }

  const OutcomeStore& store_;
  std::vector<std::pair<PecId, const PecOutcome*>> picks_;
  std::uint64_t hash_ = 0;
};

OutcomeStore::OutcomeStore(const Network& net, const PecSet& pecs)
    : net_(net), pecs_(pecs) {}

OutcomeStore::~OutcomeStore() = default;

void OutcomeStore::put(PecId pec, std::vector<PecOutcome> outcomes) {
  const std::scoped_lock lock(mu_);
  outcomes_[pec] = std::move(outcomes);
}

bool OutcomeStore::has(PecId pec) const {
  const std::scoped_lock lock(mu_);
  return outcomes_.contains(pec);
}

std::span<const PecOutcome> OutcomeStore::get(PecId pec) const {
  const std::scoped_lock lock(mu_);
  const auto it = outcomes_.find(pec);
  if (it == outcomes_.end()) return {};
  return it->second;
}

void OutcomeStore::evict(PecId pec) {
  const std::scoped_lock lock(mu_);
  outcomes_.erase(pec);
}

std::size_t OutcomeStore::bytes() const {
  const std::scoped_lock lock(mu_);
  std::size_t total = 0;
  for (const auto& [pec, outs] : outcomes_) {
    total += outs.capacity() * sizeof(PecOutcome);
    for (const PecOutcome& o : outs) {
      total += o.igp_cost.capacity() * sizeof(std::uint32_t);
      total += o.dp.bytes();
    }
  }
  return total;
}

std::string OutcomeStore::serialize(std::span<const PecOutcome> outcomes) const {
  std::string out;
  put_int(out, kWireMagic);
  put_int(out, static_cast<std::uint32_t>(net_.topo.link_count()));
  put_int(out, static_cast<std::uint64_t>(outcomes.size()));
  for (const PecOutcome& o : outcomes) {
    put_int(out, o.upstream_hash);
    put_int(out, o.hash);
    put_int(out, static_cast<std::uint32_t>(o.failures.count()));
    for (const LinkId l : o.failures.ids()) put_int(out, l);
    put_int(out, static_cast<std::uint32_t>(o.igp_cost.size()));
    for (const std::uint32_t c : o.igp_cost) put_int(out, c);
    put_int(out, static_cast<std::uint32_t>(o.dp.entries.size()));
    for (const FibEntry& e : o.dp.entries) {
      put_int(out, static_cast<std::uint8_t>(e.kind));
      put_int(out, static_cast<std::uint8_t>(e.source));
      put_int(out, e.prefix_idx);
      put_int(out, static_cast<std::uint32_t>(e.nexthops.size()));
      for (const NodeId n : e.nexthops) put_int(out, n);
    }
  }
  return out;
}

bool OutcomeStore::deserialize(std::string_view data,
                               std::vector<PecOutcome>& out) const {
  out.clear();
  // The contract: corrupt or truncated input returns false and leaves `out`
  // empty. Every length field is validated against the bytes actually left
  // before it sizes an allocation, so hostile counts cannot OOM the process.
  const auto fail = [&out] {
    out.clear();
    return false;
  };
  const auto fits = [&data](std::uint64_t count, std::size_t elem_size) {
    return count <= data.size() / elem_size;
  };
  std::uint32_t magic = 0;
  std::uint32_t links = 0;
  std::uint64_t count = 0;
  if (!get_int(data, magic) || magic != kWireMagic) return fail();
  if (!get_int(data, links) || links != net_.topo.link_count()) return fail();
  if (!get_int(data, count)) return fail();
  for (std::uint64_t i = 0; i < count; ++i) {
    PecOutcome o;
    std::uint32_t failed = 0;
    if (!get_int(data, o.upstream_hash) || !get_int(data, o.hash) ||
        !get_int(data, failed)) {
      return fail();
    }
    o.failures = FailureSet(links);
    if (!fits(failed, sizeof(LinkId))) return fail();
    for (std::uint32_t f = 0; f < failed; ++f) {
      LinkId l = kNoLink;
      if (!get_int(data, l) || l >= links) return fail();
      o.failures.fail(l);
    }
    // Consumers index igp_cost and dp.entries by NodeId (Composite resolvers
    // do so unchecked for the data plane), so both must cover every node.
    const auto nodes = static_cast<std::uint32_t>(net_.topo.node_count());
    std::uint32_t igp = 0;
    if (!get_int(data, igp) || igp != nodes ||
        !fits(igp, sizeof(std::uint32_t))) {
      return fail();
    }
    o.igp_cost.resize(igp);
    for (std::uint32_t c = 0; c < igp; ++c) {
      if (!get_int(data, o.igp_cost[c])) return fail();
    }
    std::uint32_t entries = 0;
    // 7 = the fixed bytes of one serialized entry (kind, source, prefix_idx,
    // nexthop count).
    if (!get_int(data, entries) || entries != nodes || !fits(entries, 7)) {
      return fail();
    }
    o.dp.entries.resize(entries);
    for (std::uint32_t e = 0; e < entries; ++e) {
      FibEntry& fe = o.dp.entries[e];
      std::uint8_t kind = 0;
      std::uint8_t source = 0;
      std::uint32_t nexthops = 0;
      if (!get_int(data, kind) || !get_int(data, source) ||
          !get_int(data, fe.prefix_idx) || !get_int(data, nexthops)) {
        return fail();
      }
      if (kind > static_cast<std::uint8_t>(FwdKind::kForward)) return fail();
      if (source > static_cast<std::uint8_t>(Protocol::kIbgp)) return fail();
      fe.kind = static_cast<FwdKind>(kind);
      fe.source = static_cast<Protocol>(source);
      if (!fits(nexthops, sizeof(NodeId))) return fail();
      fe.nexthops.resize(nexthops);
      for (std::uint32_t n = 0; n < nexthops; ++n) {
        if (!get_int(data, fe.nexthops[n])) return fail();
      }
    }
    out.push_back(std::move(o));
  }
  if (!data.empty()) return fail();  // trailing garbage
  return true;
}

std::vector<const UpstreamResolver*> OutcomeStore::combos(
    std::span<const PecId> deps, const FailureSet& failures) const {
  const std::scoped_lock lock(mu_);
  // Collect, per dependency, the outcomes recorded under this failure set.
  std::vector<std::vector<const PecOutcome*>> choices;
  for (const PecId dep : deps) {
    const auto it = outcomes_.find(dep);
    if (it == outcomes_.end()) return {};
    std::vector<const PecOutcome*> matching;
    for (const PecOutcome& out : it->second) {
      if (out.failures == failures) matching.push_back(&out);
    }
    if (matching.empty()) return {};
    choices.push_back(std::move(matching));
  }
  // Cross product (usually 1x1x...x1: real networks converge deterministically
  // for the recursive PECs, §6).
  std::vector<const UpstreamResolver*> result;
  std::vector<std::size_t> idx(choices.size(), 0);
  while (true) {
    std::vector<std::pair<PecId, const PecOutcome*>> picks;
    picks.reserve(deps.size());
    for (std::size_t i = 0; i < deps.size(); ++i) {
      picks.emplace_back(deps[i], choices[i][idx[i]]);
    }
    resolvers_.push_back(std::make_unique<Composite>(*this, std::move(picks)));
    result.push_back(resolvers_.back().get());
    // Advance the mixed-radix counter.
    std::size_t i = 0;
    while (i < idx.size()) {
      if (++idx[i] < choices[i].size()) break;
      idx[i] = 0;
      ++i;
    }
    if (i == idx.size()) break;
  }
  return result;
}

}  // namespace plankton
