// PEC dependency graph and SCC condensation (paper §3.2, Fig. 5).
//
// A PEC depends on another when resolving its routes requires the other's
// converged state: recursive static routes (next hop given as an IP) and
// iBGP (session liveness + next-hop resolution through the IGP's loopback
// PECs). Strongly connected components must be analyzed together; the
// condensation is scheduled dependencies-first, maximizing parallelism.
// Self-loops (a static route whose next hop lies inside the matched prefix)
// are recorded but need no special scheduling — FIB assembly resolves them
// internally.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "config/network.hpp"
#include "pec/pec.hpp"

namespace plankton {

struct PecDependencies {
  /// depends_on[p] = PECs whose converged states p's verification consumes.
  std::vector<std::vector<PecId>> depends_on;
  /// dependents[p] = inverse edges.
  std::vector<std::vector<PecId>> dependents;
  /// PECs with an edge to themselves (observed in real configs, §5).
  std::vector<std::uint8_t> self_loop;

  /// SCC id per PEC; SCC ids are numbered in reverse topological order such
  /// that iterating sccs in increasing id visits dependencies first.
  std::vector<std::uint32_t> scc_of;
  std::vector<std::vector<PecId>> sccs;
  /// scc_deps[s] = SCC ids s depends on (excluding itself).
  std::vector<std::vector<std::uint32_t>> scc_deps;

  [[nodiscard]] bool has_cross_pec_deps() const {
    return std::any_of(depends_on.begin(), depends_on.end(),
                       [](const std::vector<PecId>& d) { return !d.empty(); });
  }
};

/// Builds the dependency graph over all PECs of `pecs`.
PecDependencies compute_dependencies(const Network& net, const PecSet& pecs);

}  // namespace plankton
